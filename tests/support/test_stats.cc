/**
 * @file
 * Unit tests for StatSet and geoMean.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/stats.hh"

using namespace txrace;

TEST(StatSet, StartsEmpty)
{
    StatSet s;
    EXPECT_EQ(s.get("anything"), 0u);
    EXPECT_TRUE(s.all().empty());
}

TEST(StatSet, AddAccumulates)
{
    StatSet s;
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("x", 10);
    s.set("x", 3);
    EXPECT_EQ(s.get("x"), 3u);
}

TEST(StatSet, MergeSumsSharedNames)
{
    StatSet a, b;
    a.add("shared", 2);
    a.add("only-a", 1);
    b.add("shared", 3);
    b.add("only-b", 7);
    a.merge(b);
    EXPECT_EQ(a.get("shared"), 5u);
    EXPECT_EQ(a.get("only-a"), 1u);
    EXPECT_EQ(a.get("only-b"), 7u);
}

TEST(StatSet, ClearRemovesEverything)
{
    StatSet s;
    s.add("x", 2);
    s.clear();
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_TRUE(s.all().empty());
}

TEST(StatSet, IterationIsSorted)
{
    StatSet s;
    s.add("zebra");
    s.add("alpha");
    s.add("mid");
    std::vector<std::string> names;
    for (const auto &[name, value] : s.all())
        names.push_back(name);
    EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(GeoMean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

TEST(GeoMean, SingleValue)
{
    EXPECT_NEAR(geoMean({4.2}), 4.2, 1e-12);
}

TEST(GeoMean, KnownValue)
{
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(GeoMean, InvariantUnderPermutation)
{
    EXPECT_NEAR(geoMean({3.0, 5.0, 7.0}), geoMean({7.0, 3.0, 5.0}),
                1e-12);
}

TEST(GeoMeanDeathTest, PanicsOnNonPositive)
{
    EXPECT_DEATH(geoMean({1.0, 0.0}), "non-positive");
    EXPECT_DEATH(geoMean({-2.0}), "non-positive");
}
