/**
 * @file
 * Unit tests for logging helpers.
 */

#include <gtest/gtest.h>

#include "support/log.hh"

using namespace txrace;

TEST(Log, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "abc"), "x=3 y=abc");
    EXPECT_EQ(strprintf("plain"), "plain");
    EXPECT_EQ(strprintf("%llu", 18446744073709551615ull),
              "18446744073709551615");
}

TEST(Log, LevelRoundTrip)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(old);
}

TEST(Log, WarnAndInformDoNotCrash)
{
    warn("test warning %d", 1);
    inform("test info %s", "ok");
    debugLog("debug %d", 2);
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 9), "boom 9");
}

TEST(LogDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                testing::ExitedWithCode(1), "bad config x");
}
