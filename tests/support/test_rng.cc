/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.hh"

using namespace txrace;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LE(equal, 1);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[static_cast<size_t>(i)]);
}

TEST(Rng, CopyDivergesIndependently)
{
    // Snapshot/rollback relies on copies replaying identically.
    Rng a(5);
    a.next();
    Rng copy = a;
    uint64_t from_a = a.next();
    uint64_t from_copy = copy.next();
    EXPECT_EQ(from_a, from_copy);
}

TEST(Rng, BelowInBounds)
{
    Rng r(3);
    for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(9);
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        uint64_t v = r.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng child = a.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == child.next())
            ++equal;
    EXPECT_LE(equal, 1);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(29);
    constexpr uint64_t kBuckets = 8;
    int counts[kBuckets] = {};
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.below(kBuckets)];
    for (uint64_t b = 0; b < kBuckets; ++b)
        EXPECT_NEAR(counts[b], kDraws / kBuckets,
                    kDraws / kBuckets * 0.1);
}

TEST(Splitmix, DeterministicAndMixing)
{
    uint64_t s1 = 1, s2 = 1;
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
    EXPECT_EQ(s1, s2);
    uint64_t s3 = 2;
    EXPECT_NE(splitmix64(s3), splitmix64(s1));
}
