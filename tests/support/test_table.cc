/**
 * @file
 * Unit tests for the table/CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/table.hh"

using namespace txrace;

namespace {

Table
sampleTable()
{
    Table t({"name", "count", "factor"});
    t.newRow();
    t.cell(std::string("alpha"));
    t.cell(uint64_t{42});
    t.cellFactor(1.5);
    t.newRow();
    t.cell(std::string("b"));
    t.cell(uint64_t{7});
    t.cellFactor(10.25);
    return t;
}

} // namespace

TEST(Table, RowCount)
{
    Table t = sampleTable();
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, PrintAlignsColumns)
{
    std::ostringstream os;
    sampleTable().print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50x"), std::string::npos);
    EXPECT_NE(out.find("10.25x"), std::string::npos);
    // The separator line exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    std::ostringstream os;
    sampleTable().printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name,count,factor\n"), std::string::npos);
    EXPECT_NE(out.find("alpha,42,1.50x\n"), std::string::npos);
}

TEST(Table, DoubleCellPrecision)
{
    Table t({"v"});
    t.newRow();
    t.cell(3.14159, 3);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(Table, EmptyTablePrintsHeaderOnly)
{
    Table t({"a", "b"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("a"), std::string::npos);
}

TEST(TableDeathTest, CellBeforeRowPanics)
{
    Table t({"a"});
    EXPECT_DEATH(t.cell(std::string("x")), "before newRow");
}

TEST(TableDeathTest, TooManyCellsPanics)
{
    Table t({"a"});
    t.newRow();
    t.cell(std::string("x"));
    EXPECT_DEATH(t.cell(std::string("y")), "too many");
}

TEST(TableDeathTest, ShortRowDetectedAtNextRow)
{
    Table t({"a", "b"});
    t.newRow();
    t.cell(std::string("only-one"));
    EXPECT_DEATH(t.newRow(), "expected");
}

TEST(TableDeathTest, NoColumnsPanics)
{
    EXPECT_DEATH(Table{std::vector<std::string>{}}, "at least one");
}
