/**
 * @file
 * Unit tests for the best-effort HTM model: conflict detection at
 * line granularity, requester-wins resolution, strong isolation,
 * capacity geometry, the concurrent-transaction limit, and abort
 * status reporting.
 */

#include <gtest/gtest.h>

#include "htm/htm.hh"

using namespace txrace;
using namespace txrace::htm;

namespace {

HtmConfig
smallConfig()
{
    HtmConfig cfg;
    cfg.l1Sets = 4;
    cfg.l1Ways = 2;
    cfg.readSetMaxLines = 8;
    cfg.maxConcurrentTx = 4;
    return cfg;
}

} // namespace

TEST(Htm, BeginCommitLifecycle)
{
    HtmEngine h;
    EXPECT_FALSE(h.inTx(0));
    h.begin(0);
    EXPECT_TRUE(h.inTx(0));
    EXPECT_EQ(h.inFlightCount(), 1u);
    h.commit(0);
    EXPECT_FALSE(h.inTx(0));
    EXPECT_EQ(h.inFlightCount(), 0u);
    EXPECT_EQ(h.stats().get("htm.begins"), 1u);
    EXPECT_EQ(h.stats().get("htm.commits"), 1u);
}

TEST(Htm, TracksReadAndWriteSets)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, false);
    h.access(0, 0x140, false);
    h.access(0, 0x180, true);
    EXPECT_EQ(h.readSetLines(0), 2u);
    EXPECT_EQ(h.writeSetLines(0), 1u);
    // Repeat accesses to the same line do not grow the sets.
    h.access(0, 0x104, false);
    h.access(0, 0x184, true);
    EXPECT_EQ(h.readSetLines(0), 2u);
    EXPECT_EQ(h.writeSetLines(0), 1u);
}

TEST(Htm, WriteConflictsWithReaderTx)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, false);  // 0 reads the line
    h.begin(1);
    auto res = h.access(1, 0x100, true);  // 1 writes it
    ASSERT_EQ(res.victims.size(), 1u);
    EXPECT_EQ(res.victims[0], 0u);
    // Requester wins: thread 1 stays transactional, thread 0 aborted.
    EXPECT_TRUE(h.inTx(1));
    EXPECT_FALSE(h.inTx(0));
    EXPECT_EQ(h.lastAbortStatus(0), kAbortConflict | kAbortRetry);
}

TEST(Htm, WriteConflictsWithWriterTx)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, true);
    h.begin(1);
    auto res = h.access(1, 0x100, true);
    ASSERT_EQ(res.victims.size(), 1u);
    EXPECT_EQ(res.victims[0], 0u);
}

TEST(Htm, ReadConflictsOnlyWithWriterTx)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, false);
    h.begin(1);
    // Read-read: no conflict.
    EXPECT_TRUE(h.access(1, 0x100, false).victims.empty());
    // Reading a line someone has written: conflict.
    h.access(0, 0x140, true);
    auto res = h.access(1, 0x140, false);
    ASSERT_EQ(res.victims.size(), 1u);
    EXPECT_EQ(res.victims[0], 0u);
}

TEST(Htm, ConflictIsLineGranular)
{
    // False sharing: different granules of one 64-byte line conflict.
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, true);
    h.begin(1);
    auto res = h.access(1, 0x108, true);  // same line, other granule
    EXPECT_EQ(res.victims.size(), 1u);
    // Different lines never conflict.
    h.begin(2);
    EXPECT_TRUE(h.access(2, 0x140, true).victims.empty());
}

TEST(Htm, StrongIsolationNonTransactionalRequester)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, false);
    // Thread 1 is NOT in a transaction; its write still aborts 0.
    auto res = h.access(1, 0x100, true);
    ASSERT_EQ(res.victims.size(), 1u);
    EXPECT_EQ(res.victims[0], 0u);
    EXPECT_FALSE(h.inTx(1));
}

TEST(Htm, OneWriteAbortsAllConflictingTxs)
{
    // The TxFail protocol relies on a single non-transactional write
    // aborting every in-flight reader of the flag's line.
    HtmEngine h;
    for (Tid t = 0; t < 3; ++t) {
        h.begin(t);
        h.access(t, 0x40, false);
    }
    auto res = h.access(7, 0x40, true);
    EXPECT_EQ(res.victims.size(), 3u);
    EXPECT_EQ(h.inFlightCount(), 0u);
}

TEST(Htm, CommittedTxEscapesLaterConflict)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, false);
    h.commit(0);
    EXPECT_TRUE(h.access(1, 0x100, true).victims.empty());
}

TEST(Htm, NonTransactionalAccessersNeverConflictEachOther)
{
    HtmEngine h;
    EXPECT_TRUE(h.access(0, 0x100, true).victims.empty());
    EXPECT_TRUE(h.access(1, 0x100, true).victims.empty());
}

TEST(Htm, WriteCapacityPerSetAssociativity)
{
    // 4 sets x 2 ways: the third distinct write line mapping to one
    // set overflows.
    HtmEngine h(smallConfig());
    h.begin(0);
    // Lines 0, 4, 8 all map to set 0 (line % 4).
    EXPECT_FALSE(h.access(0, 0 * 64, true).selfCapacity);
    EXPECT_FALSE(h.access(0, 4 * 64, true).selfCapacity);
    auto res = h.access(0, 8 * 64, true);
    EXPECT_TRUE(res.selfCapacity);
    EXPECT_FALSE(h.inTx(0));
    EXPECT_EQ(h.lastAbortStatus(0), kAbortCapacity);
    EXPECT_EQ(h.stats().get("htm.aborts.capacity"), 1u);
}

TEST(Htm, WritesToDistinctSetsDoNotOverflow)
{
    HtmEngine h(smallConfig());
    h.begin(0);
    // Lines 0..3 map to distinct sets; two rounds fill every way.
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_FALSE(h.access(0, line * 64, true).selfCapacity);
    EXPECT_TRUE(h.inTx(0));
}

TEST(Htm, ReadSetCapacityIsTotalLines)
{
    HtmEngine h(smallConfig());
    h.begin(0);
    for (uint64_t line = 0; line < 8; ++line)
        EXPECT_FALSE(h.access(0, line * 64, false).selfCapacity);
    auto res = h.access(0, 8 * 64, false);
    EXPECT_TRUE(res.selfCapacity);
    EXPECT_EQ(h.lastAbortStatus(0), kAbortCapacity);
}

TEST(Htm, CapacityAbortProducesNoVictims)
{
    HtmEngine h(smallConfig());
    h.begin(1);
    h.access(1, 8 * 64, false);  // 1 reads the line that will overflow 0
    h.begin(0);
    for (uint64_t line = 0; line < 2; ++line)
        h.access(0, line * 256, true);  // fill set 0 (lines 0 and 4)
    auto res = h.access(0, 8 * 64, true);
    EXPECT_TRUE(res.selfCapacity);
    EXPECT_TRUE(res.victims.empty());
    EXPECT_TRUE(h.inTx(1));
}

TEST(Htm, ConcurrentTransactionLimit)
{
    HtmConfig cfg;
    cfg.maxConcurrentTx = 2;
    HtmEngine h(cfg);
    h.begin(0);
    h.begin(1);
    EXPECT_FALSE(h.canBegin());
    h.commit(0);
    EXPECT_TRUE(h.canBegin());
}

TEST(Htm, ExplicitAbortRecordsStatus)
{
    HtmEngine h;
    h.begin(0);
    h.abortTx(0, 0);  // unknown
    EXPECT_TRUE(isUnknownAbort(h.lastAbortStatus(0)));
    EXPECT_EQ(h.stats().get("htm.aborts.unknown"), 1u);
}

TEST(Htm, ResetClearsEverything)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, true);
    h.reset();
    EXPECT_FALSE(h.inTx(0));
    EXPECT_EQ(h.inFlightCount(), 0u);
    EXPECT_EQ(h.stats().get("htm.begins"), 0u);
}

TEST(Htm, InFlightTids)
{
    HtmEngine h;
    h.begin(0);
    h.begin(2);
    auto tids = h.inFlightTids();
    ASSERT_EQ(tids.size(), 2u);
    EXPECT_EQ(tids[0], 0u);
    EXPECT_EQ(tids[1], 2u);
}

TEST(HtmDeathTest, DoubleBeginPanics)
{
    HtmEngine h;
    h.begin(0);
    EXPECT_DEATH(h.begin(0), "already transactional");
}

TEST(HtmDeathTest, CommitWithoutBeginPanics)
{
    HtmEngine h;
    EXPECT_DEATH(h.commit(0), "not transactional");
}

TEST(HtmDeathTest, BeginBeyondLimitPanics)
{
    HtmConfig cfg;
    cfg.maxConcurrentTx = 1;
    HtmEngine h(cfg);
    h.begin(0);
    EXPECT_DEATH(h.begin(1), "limit");
}

TEST(HtmDeathTest, BadGeometryFatals)
{
    HtmConfig cfg;
    cfg.l1Sets = 3;  // not a power of two
    EXPECT_EXIT(HtmEngine{cfg}, testing::ExitedWithCode(1),
                "power of two");
}

TEST(AbortStatus, ToString)
{
    EXPECT_EQ(abortToString(0), "unknown");
    EXPECT_EQ(abortToString(kAbortConflict | kAbortRetry),
              "retry|conflict");
    EXPECT_EQ(abortToString(kAbortCapacity), "capacity");
    EXPECT_EQ(abortToString(kAbortDebug), "debug");
    EXPECT_EQ(abortToString(kAbortNested), "nested");
    EXPECT_EQ(abortToString(kAbortExplicit), "explicit");
}

TEST(Htm, InstructionTrackingOffByDefault)
{
    HtmEngine h;
    h.begin(0);
    h.noteAccessInstr(0, 0x100, 42);
    h.begin(1);
    h.access(1, 0x100, true);  // aborts 0
    EXPECT_EQ(h.lastConflictVictimInstr(0), ir::kNoInstr);
}

TEST(Htm, InstructionTrackingNamesTheVictimInstr)
{
    HtmConfig cfg;
    cfg.trackInstructions = true;
    HtmEngine h(cfg);
    h.begin(0);
    h.access(0, 0x100, false);
    h.noteAccessInstr(0, 0x100, 42);
    h.access(0, 0x140, true);
    h.noteAccessInstr(0, 0x140, 43);
    // Conflict on the first line names instruction 42, not 43.
    auto res = h.access(1, 0x100, true);
    ASSERT_EQ(res.victims.size(), 1u);
    EXPECT_EQ(h.lastConflictVictimInstr(0), 42u);
    EXPECT_EQ(h.lastConflictLine(0), mem::lineOf(0x100));
}

TEST(Htm, ConflictLineRecordedPerVictim)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x200, false);
    h.access(1, 0x200, true);
    EXPECT_EQ(h.lastConflictLine(0), mem::lineOf(0x200));
    EXPECT_EQ(h.lastConflictLine(5), HtmEngine::kNoLine);
}
