/**
 * @file
 * Differential test: the directory engine with the per-transaction
 * owned-line filter against the same engine with the filter disabled,
 * driven with identical randomized access streams. The unfiltered
 * engine is the oracle: for every operation both must agree on
 * victims (and their order), self-capacity decisions, per-thread
 * transactional status, abort status words, conflict-blame
 * lines/instructions, footprint sizes, and the final counters. This
 * is the proof obligation behind HtmConfig::accessFilter — a filter
 * hit must be a provable no-op on everything observable.
 *
 * The streams also exercise the jittered capacity boundary: a filter
 * hit must never skip an RNG draw the full path would have made
 * (write hits require the line already write-held, so the full path
 * would not have consulted effectiveWays() either), or the engines
 * fall out of lockstep and every later decision diverges.
 *
 * On a mismatch the test prints the tail of the operation log, which
 * is the shrunk reproducer: replaying those ops on a fresh pair
 * reproduces the divergence (streams are seeded and deterministic).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "htm/htm.hh"
#include "mem/layout.hh"
#include "support/rng.hh"

using namespace txrace;
using namespace txrace::htm;

namespace {

struct Op
{
    enum Kind { Begin, Access, Commit, Abort, Note } kind;
    Tid t;
    uint64_t addr = 0;
    bool write = false;
};

std::string
opToString(const Op &op)
{
    char buf[96];
    switch (op.kind) {
      case Op::Begin:
        std::snprintf(buf, sizeof(buf), "begin(%u)", op.t);
        break;
      case Op::Access:
        std::snprintf(buf, sizeof(buf), "access(%u, 0x%llx, %s)", op.t,
                      static_cast<unsigned long long>(op.addr),
                      op.write ? "W" : "R");
        break;
      case Op::Commit:
        std::snprintf(buf, sizeof(buf), "commit(%u)", op.t);
        break;
      case Op::Abort:
        std::snprintf(buf, sizeof(buf), "abortTx(%u)", op.t);
        break;
      case Op::Note:
        std::snprintf(buf, sizeof(buf), "noteInstr(%u, 0x%llx)", op.t,
                      static_cast<unsigned long long>(op.addr));
        break;
    }
    return buf;
}

std::string
logTail(const std::vector<Op> &log, size_t n = 40)
{
    std::string out;
    size_t from = log.size() > n ? log.size() - n : 0;
    for (size_t i = from; i < log.size(); ++i)
        out += "  [" + std::to_string(i) + "] " + opToString(log[i]) +
               "\n";
    return out;
}

struct StreamParams
{
    uint64_t seed;
    double capacityJitter;
    bool trackInstructions;
    /** Tid stride: >1 exercises tids far beyond the slot count. */
    Tid tidStride;
};

void
runStream(const StreamParams &p, int steps)
{
    HtmConfig base;
    base.l1Sets = 4;
    base.l1Ways = 3;
    base.readSetMaxLines = 12;
    base.maxConcurrentTx = 6;
    base.capacityJitter = p.capacityJitter;
    base.seed = p.seed;
    base.trackInstructions = p.trackInstructions;

    HtmConfig filtCfg = base;
    filtCfg.accessFilter = true;
    HtmConfig plainCfg = base;
    plainCfg.accessFilter = false;

    HtmEngine filt(filtCfg);
    HtmEngine plain(plainCfg);
    ASSERT_TRUE(filt.usesDirectory());
    ASSERT_TRUE(plain.usesDirectory());

    constexpr int kThreads = 8;
    constexpr uint64_t kLines = 24;  // small space -> heavy conflicts
    Rng rng(p.seed * 77 + 13);
    std::vector<Op> log;
    ir::InstrId nextInstr = 1;

    auto fail = [&](const std::string &what) {
        return "divergence at op " + std::to_string(log.size() - 1) +
               " (" + what + "); tail:\n" + logTail(log);
    };

    for (int i = 0; i < steps; ++i) {
        Tid t = static_cast<Tid>(rng.below(kThreads) * p.tidStride);
        uint64_t action = rng.below(100);
        Op op;
        if (action < 20 && !filt.inTx(t) && filt.canBegin()) {
            op = {Op::Begin, t};
        } else if (action < 82) {
            op = {Op::Access, t,
                  rng.below(kLines) * mem::kLineSize + rng.below(64),
                  rng.chance(0.4)};
        } else if (action < 90 && filt.inTx(t)) {
            op = {Op::Commit, t};
        } else if (action < 94 && filt.inTx(t)) {
            op = {Op::Abort, t};
        } else if (p.trackInstructions && filt.inTx(t)) {
            op = {Op::Note, t,
                  rng.below(kLines) * mem::kLineSize, false};
        } else {
            continue;
        }
        log.push_back(op);

        switch (op.kind) {
          case Op::Begin:
            filt.begin(op.t);
            plain.begin(op.t);
            break;
          case Op::Commit:
            filt.commit(op.t);
            plain.commit(op.t);
            break;
          case Op::Abort:
            filt.abortTx(op.t, kAbortExplicit);
            plain.abortTx(op.t, kAbortExplicit);
            break;
          case Op::Note: {
            ir::InstrId id = nextInstr++;
            filt.noteAccessInstr(op.t, op.addr, id);
            plain.noteAccessInstr(op.t, op.addr, id);
            break;
          }
          case Op::Access: {
            AccessResult rf = filt.access(op.t, op.addr, op.write);
            AccessResult rp = plain.access(op.t, op.addr, op.write);
            ASSERT_EQ(rf.selfCapacity, rp.selfCapacity)
                << fail("selfCapacity");
            ASSERT_EQ(rf.victims, rp.victims) << fail("victims");
            for (Tid v : rf.victims) {
                ASSERT_EQ(filt.lastAbortStatus(v),
                          plain.lastAbortStatus(v))
                    << fail("victim abort status");
                ASSERT_EQ(filt.lastConflictLine(v),
                          plain.lastConflictLine(v))
                    << fail("victim conflict line");
                ASSERT_EQ(filt.lastConflictVictimInstr(v),
                          plain.lastConflictVictimInstr(v))
                    << fail("victim conflict instr");
            }
            break;
          }
        }

        // Engine-wide invariants after every op.
        ASSERT_EQ(filt.inFlightCount(), plain.inFlightCount())
            << fail("inFlightCount");
        ASSERT_EQ(filt.canBegin(), plain.canBegin())
            << fail("canBegin");
        for (Tid u = 0; u < kThreads * p.tidStride;
             u += p.tidStride) {
            ASSERT_EQ(filt.inTx(u), plain.inTx(u)) << fail("inTx");
            ASSERT_EQ(filt.readSetLines(u), plain.readSetLines(u))
                << fail("readSetLines of " + std::to_string(u));
            ASSERT_EQ(filt.writeSetLines(u), plain.writeSetLines(u))
                << fail("writeSetLines of " + std::to_string(u));
            ASSERT_EQ(filt.lastAbortStatus(u),
                      plain.lastAbortStatus(u))
                << fail("lastAbortStatus of " + std::to_string(u));
        }
    }

    ASSERT_EQ(filt.inFlightTids(), plain.inFlightTids());
    EXPECT_EQ(filt.counters().begins, plain.counters().begins);
    EXPECT_EQ(filt.counters().commits, plain.counters().commits);
    EXPECT_EQ(filt.counters().abortsConflict,
              plain.counters().abortsConflict);
    EXPECT_EQ(filt.counters().abortsCapacity,
              plain.counters().abortsCapacity);
    EXPECT_EQ(filt.counters().abortsUnknown,
              plain.counters().abortsUnknown);
    EXPECT_EQ(filt.counters().abortsOther,
              plain.counters().abortsOther);
    EXPECT_EQ(filt.stats().all(), plain.stats().all());
    // The stream repeats lines inside transactions constantly, so the
    // filter must actually have absorbed traffic — otherwise this
    // test silently stops testing anything.
    EXPECT_GT(filt.counters().filterHits, 0u);
    EXPECT_EQ(plain.counters().filterHits, 0u);
}

} // namespace

class HtmDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HtmDifferential, DeterministicCapacityBoundary)
{
    runStream({GetParam(), 0.0, false, 1}, 2500);
}

TEST_P(HtmDifferential, JitteredCapacityBoundary)
{
    // Both engines draw from identically seeded jitter RNGs; the
    // draws must happen at the same operations for streams to agree.
    runStream({GetParam(), 0.3, false, 1}, 2500);
}

TEST_P(HtmDifferential, InstructionTracking)
{
    runStream({GetParam(), 0.0, true, 1}, 2500);
}

TEST_P(HtmDifferential, TidsBeyondSlotCount)
{
    // Thread ids up to 7 * 19 = 133: far past the 64 bitmask bits,
    // exercising slot allocation/reuse and the slot->tid mapping.
    runStream({GetParam(), 0.1, false, 19}, 2500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));
