/**
 * @file
 * Differential test: the reverse-directory conflict engine against
 * the legacy per-thread scan engine, driven with identical randomized
 * access streams. The legacy engine is the oracle: for every
 * operation both engines must agree on victims (and their order),
 * self-capacity decisions, per-thread transactional status, abort
 * status words, conflict-blame lines/instructions, footprint sizes,
 * and the final counters.
 *
 * On a mismatch the test prints the tail of the operation log, which
 * is the shrunk reproducer: replaying those ops on a fresh pair
 * reproduces the divergence (streams are seeded and deterministic).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "htm/htm.hh"
#include "mem/layout.hh"
#include "support/rng.hh"

using namespace txrace;
using namespace txrace::htm;

namespace {

struct Op
{
    enum Kind { Begin, Access, Commit, Abort, Note } kind;
    Tid t;
    uint64_t addr = 0;
    bool write = false;
};

std::string
opToString(const Op &op)
{
    char buf[96];
    switch (op.kind) {
      case Op::Begin:
        std::snprintf(buf, sizeof(buf), "begin(%u)", op.t);
        break;
      case Op::Access:
        std::snprintf(buf, sizeof(buf), "access(%u, 0x%llx, %s)", op.t,
                      static_cast<unsigned long long>(op.addr),
                      op.write ? "W" : "R");
        break;
      case Op::Commit:
        std::snprintf(buf, sizeof(buf), "commit(%u)", op.t);
        break;
      case Op::Abort:
        std::snprintf(buf, sizeof(buf), "abortTx(%u)", op.t);
        break;
      case Op::Note:
        std::snprintf(buf, sizeof(buf), "noteInstr(%u, 0x%llx)", op.t,
                      static_cast<unsigned long long>(op.addr));
        break;
    }
    return buf;
}

std::string
logTail(const std::vector<Op> &log, size_t n = 40)
{
    std::string out;
    size_t from = log.size() > n ? log.size() - n : 0;
    for (size_t i = from; i < log.size(); ++i)
        out += "  [" + std::to_string(i) + "] " + opToString(log[i]) +
               "\n";
    return out;
}

struct StreamParams
{
    uint64_t seed;
    double capacityJitter;
    bool trackInstructions;
    /** Tid stride: >1 exercises tids far beyond the slot count. */
    Tid tidStride;
};

void
runStream(const StreamParams &p, int steps)
{
    HtmConfig base;
    base.l1Sets = 4;
    base.l1Ways = 3;
    base.readSetMaxLines = 12;
    base.maxConcurrentTx = 6;
    base.capacityJitter = p.capacityJitter;
    base.seed = p.seed;
    base.trackInstructions = p.trackInstructions;

    HtmConfig dirCfg = base;
    dirCfg.engine = ConflictEngine::Directory;
    HtmConfig legCfg = base;
    legCfg.engine = ConflictEngine::LegacyScan;

    HtmEngine dir(dirCfg);
    HtmEngine leg(legCfg);
    ASSERT_TRUE(dir.usesDirectory());
    ASSERT_FALSE(leg.usesDirectory());

    constexpr int kThreads = 8;
    constexpr uint64_t kLines = 24;  // small space -> heavy conflicts
    Rng rng(p.seed * 77 + 13);
    std::vector<Op> log;
    ir::InstrId nextInstr = 1;

    auto fail = [&](const std::string &what) {
        return "divergence at op " + std::to_string(log.size() - 1) +
               " (" + what + "); tail:\n" + logTail(log);
    };

    for (int i = 0; i < steps; ++i) {
        Tid t = static_cast<Tid>(rng.below(kThreads) * p.tidStride);
        uint64_t action = rng.below(100);
        Op op;
        if (action < 20 && !dir.inTx(t) && dir.canBegin()) {
            op = {Op::Begin, t};
        } else if (action < 82) {
            op = {Op::Access, t,
                  rng.below(kLines) * mem::kLineSize + rng.below(64),
                  rng.chance(0.4)};
        } else if (action < 90 && dir.inTx(t)) {
            op = {Op::Commit, t};
        } else if (action < 94 && dir.inTx(t)) {
            op = {Op::Abort, t};
        } else if (p.trackInstructions && dir.inTx(t)) {
            op = {Op::Note, t,
                  rng.below(kLines) * mem::kLineSize, false};
        } else {
            continue;
        }
        log.push_back(op);

        switch (op.kind) {
          case Op::Begin:
            dir.begin(op.t);
            leg.begin(op.t);
            break;
          case Op::Commit:
            dir.commit(op.t);
            leg.commit(op.t);
            break;
          case Op::Abort:
            dir.abortTx(op.t, kAbortExplicit);
            leg.abortTx(op.t, kAbortExplicit);
            break;
          case Op::Note: {
            ir::InstrId id = nextInstr++;
            dir.noteAccessInstr(op.t, op.addr, id);
            leg.noteAccessInstr(op.t, op.addr, id);
            break;
          }
          case Op::Access: {
            AccessResult rd = dir.access(op.t, op.addr, op.write);
            AccessResult rl = leg.access(op.t, op.addr, op.write);
            ASSERT_EQ(rd.selfCapacity, rl.selfCapacity)
                << fail("selfCapacity");
            ASSERT_EQ(rd.victims, rl.victims) << fail("victims");
            for (Tid v : rd.victims) {
                ASSERT_EQ(dir.lastAbortStatus(v),
                          leg.lastAbortStatus(v))
                    << fail("victim abort status");
                ASSERT_EQ(dir.lastConflictLine(v),
                          leg.lastConflictLine(v))
                    << fail("victim conflict line");
                ASSERT_EQ(dir.lastConflictVictimInstr(v),
                          leg.lastConflictVictimInstr(v))
                    << fail("victim conflict instr");
            }
            break;
          }
        }

        // Engine-wide invariants after every op.
        ASSERT_EQ(dir.inFlightCount(), leg.inFlightCount())
            << fail("inFlightCount");
        ASSERT_EQ(dir.canBegin(), leg.canBegin()) << fail("canBegin");
        for (Tid u = 0; u < kThreads * p.tidStride;
             u += p.tidStride) {
            ASSERT_EQ(dir.inTx(u), leg.inTx(u)) << fail("inTx");
            ASSERT_EQ(dir.readSetLines(u), leg.readSetLines(u))
                << fail("readSetLines of " + std::to_string(u));
            ASSERT_EQ(dir.writeSetLines(u), leg.writeSetLines(u))
                << fail("writeSetLines of " + std::to_string(u));
            ASSERT_EQ(dir.lastAbortStatus(u), leg.lastAbortStatus(u))
                << fail("lastAbortStatus of " + std::to_string(u));
        }
    }

    ASSERT_EQ(dir.inFlightTids(), leg.inFlightTids());
    EXPECT_EQ(dir.counters().begins, leg.counters().begins);
    EXPECT_EQ(dir.counters().commits, leg.counters().commits);
    EXPECT_EQ(dir.counters().abortsConflict,
              leg.counters().abortsConflict);
    EXPECT_EQ(dir.counters().abortsCapacity,
              leg.counters().abortsCapacity);
    EXPECT_EQ(dir.counters().abortsUnknown,
              leg.counters().abortsUnknown);
    EXPECT_EQ(dir.counters().abortsOther, leg.counters().abortsOther);
    EXPECT_EQ(dir.stats().all(), leg.stats().all());
}

} // namespace

class HtmDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HtmDifferential, DeterministicCapacityBoundary)
{
    runStream({GetParam(), 0.0, false, 1}, 2500);
}

TEST_P(HtmDifferential, JitteredCapacityBoundary)
{
    // Both engines draw from identically seeded jitter RNGs; the
    // draws must happen at the same operations for streams to agree.
    runStream({GetParam(), 0.3, false, 1}, 2500);
}

TEST_P(HtmDifferential, InstructionTracking)
{
    runStream({GetParam(), 0.0, true, 1}, 2500);
}

TEST_P(HtmDifferential, TidsBeyondSlotCount)
{
    // Thread ids up to 7 * 19 = 133: far past the 64 bitmask bits,
    // exercising slot allocation/reuse and the slot->tid mapping.
    runStream({GetParam(), 0.1, false, 19}, 2500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));
