/**
 * @file
 * Unit tests for the reverse line directory and the directory-engine
 * internals the differential test cannot see in isolation: table
 * growth/rehash (with dead-key reclamation), epoch-stamped bulk
 * clears and epoch wraparound, bitmask victim selection with thread
 * ids far beyond the slot count, and the telemetry counters.
 */

#include <gtest/gtest.h>

#include "htm/htm.hh"
#include "htm/linedir.hh"
#include "mem/layout.hh"

using namespace txrace;
using namespace txrace::htm;

TEST(LineDirectory, FindMissesUntilInserted)
{
    LineDirectory d(8);
    EXPECT_EQ(d.find(42), nullptr);
    LineDirectory::Entry &e = d.findOrInsert(42);
    e.readers = 0x5;
    ASSERT_NE(d.find(42), nullptr);
    EXPECT_EQ(d.find(42)->readers, 0x5u);
    EXPECT_EQ(d.occupied(), 1u);
}

TEST(LineDirectory, GrowthRehashKeepsEveryLiveEntry)
{
    LineDirectory d(8);
    // Insert far past the initial capacity; every entry stays
    // reachable with its masks intact across however many rehashes.
    for (uint64_t line = 0; line < 500; ++line) {
        LineDirectory::Entry &e = d.findOrInsert(line * 977);
        e.writers = line + 1;
    }
    EXPECT_GE(d.capacity(), 512u);
    EXPECT_GT(d.stats().rehashes, 0u);
    for (uint64_t line = 0; line < 500; ++line) {
        LineDirectory::Entry *e = d.find(line * 977);
        ASSERT_NE(e, nullptr) << "line " << line;
        EXPECT_EQ(e->writers, line + 1);
    }
    // Load factor stays below 3/4 after growth.
    EXPECT_LT(d.occupied() * 4, d.capacity() * 3);
}

TEST(LineDirectory, RehashDropsDeadKeys)
{
    LineDirectory d(8);
    // Occupy with keys whose masks are then cleared (dead keys):
    // they keep probe chains alive until a rehash reclaims them.
    for (uint64_t line = 0; line < 6; ++line) {
        d.findOrInsert(line).readers = 1;
        d.clearSlot(line, 0);
    }
    EXPECT_EQ(d.occupied(), 6u);
    // The next insertion trips the 3/4 load threshold and rehashes;
    // every dead key is reclaimed, so only the new key is occupied.
    d.findOrInsert(100).writers = 2;
    EXPECT_GT(d.stats().rehashes, 0u);
    EXPECT_EQ(d.occupied(), 1u);
    ASSERT_NE(d.find(100), nullptr);
    EXPECT_EQ(d.find(100)->writers, 2u);
}

TEST(LineDirectory, BulkClearIsEpochBump)
{
    LineDirectory d(8);
    d.findOrInsert(7).readers = 3;
    uint32_t before = d.debugEpoch();
    d.bulkClear();
    EXPECT_EQ(d.debugEpoch(), before + 1);
    EXPECT_EQ(d.find(7), nullptr);
    EXPECT_EQ(d.occupied(), 0u);
    EXPECT_EQ(d.stats().epochClears, 1u);
    // The slot is reusable afterwards.
    d.findOrInsert(7).writers = 1;
    EXPECT_EQ(d.find(7)->writers, 1u);
    EXPECT_EQ(d.find(7)->readers, 0u);
}

TEST(LineDirectory, EpochWraparoundInvalidatesStaleCells)
{
    LineDirectory d(8);
    d.debugSetEpoch(~0u);  // one bump away from wrapping
    d.findOrInsert(9).readers = 1;
    ASSERT_NE(d.find(9), nullptr);
    d.bulkClear();
    EXPECT_EQ(d.debugEpoch(), 1u);
    // A cell stamped with the pre-wrap epoch must not read as valid
    // after the counter comes back around to any small value.
    EXPECT_EQ(d.find(9), nullptr);
    d.findOrInsert(9).writers = 2;
    EXPECT_EQ(d.find(9)->readers, 0u);
    EXPECT_EQ(d.find(9)->writers, 2u);
}

TEST(LineDirectory, ClearSlotOnMissingLineIsIgnored)
{
    LineDirectory d(8);
    d.clearSlot(1234, 3);  // may have died with an epoch clear
    EXPECT_EQ(d.occupied(), 0u);
}

TEST(LineDirectory, ProbeLengthHistogramRecordsLookups)
{
    LineDirectory d(8);
    d.findOrInsert(1);
    d.find(1);
    d.find(2);
    EXPECT_EQ(d.stats().probeLen.count(), 3u);
}

// --- Directory-engine behavior over the public HtmEngine API ---

TEST(HtmDirectoryEngine, VictimBitmaskWithTidsBeyondSlotCount)
{
    // Three readers with tids 70, 131, 200 — all far beyond the 64
    // bitmask bits — are found through the slot->tid mapping when a
    // fourth high-tid thread writes their line, in ascending order.
    HtmConfig cfg;
    cfg.engine = ConflictEngine::Directory;
    HtmEngine h(cfg);
    ASSERT_TRUE(h.usesDirectory());
    for (Tid t : {Tid{200}, Tid{70}, Tid{131}}) {
        h.begin(t);
        h.access(t, 0x1000, false);
    }
    auto res = h.access(999, 0x1000, true);
    ASSERT_EQ(res.victims.size(), 3u);
    EXPECT_EQ(res.victims[0], 70u);
    EXPECT_EQ(res.victims[1], 131u);
    EXPECT_EQ(res.victims[2], 200u);
    EXPECT_EQ(h.inFlightCount(), 0u);
}

TEST(HtmDirectoryEngine, SlotReuseAcrossTransactions)
{
    HtmConfig cfg;
    cfg.maxConcurrentTx = 2;
    HtmEngine h(cfg);
    // Serially run many transactions through the two slots; footprint
    // of a dead transaction must never leak into a successor that
    // reuses its slot.
    for (int round = 0; round < 50; ++round) {
        Tid a = 2 * round, b = 2 * round + 1;
        h.begin(a);
        h.access(a, 0x100, true);
        h.begin(b);
        EXPECT_TRUE(h.access(b, 0x200, false).victims.empty());
        h.commit(a);
        h.commit(b);
        // Slot fully recycled: no stale write bit aborts anyone.
        h.begin(a);
        EXPECT_TRUE(h.access(a, 0x200, true).victims.empty());
        h.commit(a);
    }
}

TEST(HtmDirectoryEngine, LastTxOutClearsViaEpochNotWalk)
{
    HtmEngine h;
    ASSERT_TRUE(h.usesDirectory());
    const LineDirectory *d = h.lineDirectory();
    ASSERT_NE(d, nullptr);
    h.begin(0);
    for (uint64_t line = 0; line < 8; ++line)
        h.access(0, line * mem::kLineSize, false);
    h.commit(0);
    // Sole transaction: commit takes the O(1) epoch clear, not the
    // per-line walk.
    EXPECT_EQ(d->stats().epochClears, 1u);
    EXPECT_EQ(d->stats().lineWalkClears, 0u);

    // Two in flight: the first closer walks its lines, the second
    // epoch-clears.
    h.begin(0);
    h.access(0, 0x100, false);
    h.access(0, 0x140, false);
    h.begin(1);
    h.access(1, 0x400, true);
    h.commit(0);
    EXPECT_EQ(d->stats().lineWalkClears, 2u);
    h.commit(1);
    EXPECT_EQ(d->stats().epochClears, 2u);
}

TEST(HtmDirectoryEngine, RejectsConfigsBeyondSlotLimit)
{
    // More in-flight transactions than one bitmask can carry used to
    // fall back to the legacy scan engine silently; with the scan
    // engine gone, such configs must fail loudly at construction.
    HtmConfig cfg;
    cfg.maxConcurrentTx = 65;
    EXPECT_DEATH(HtmEngine{cfg}, "maxConcurrentTx must be <= 64");
}

TEST(HtmDirectoryEngine, RejectsRetiredLegacyScanEnum)
{
    HtmConfig cfg;
    cfg.engine = ConflictEngine::LegacyScan;
    EXPECT_DEATH(HtmEngine{cfg}, "LegacyScan engine was removed");
}

TEST(HtmDirectoryEngine, ResetDropsDirectoryState)
{
    HtmEngine h;
    h.begin(0);
    h.access(0, 0x100, true);
    h.reset();
    EXPECT_EQ(h.inFlightCount(), 0u);
    EXPECT_EQ(h.lineDirectory()->stats().probeLen.count(), 0u);
    // No stale write bit from before the reset.
    h.begin(1);
    EXPECT_TRUE(h.access(1, 0x100, false).victims.empty());
    h.begin(0);
    EXPECT_TRUE(h.access(0, 0x100, false).victims.empty());
}
