/**
 * @file
 * Unit tests for the per-thread version log behind the windowed slow
 * path: ring-overflow surfaces as a capacity abort (never silent
 * truncation), versions publish at commit, pending windows track the
 * replay watermark, and beginTx/clear reset per-thread state.
 */

#include <gtest/gtest.h>

#include "htm/htm.hh"
#include "htm/versionlog.hh"

using namespace txrace;
using namespace txrace::htm;

namespace {

HtmConfig
loggingConfig(uint32_t ring_entries)
{
    HtmConfig cfg;
    cfg.versionLog = true;
    cfg.versionLogEntries = ring_entries;
    return cfg;
}

} // namespace

TEST(VersionLog, AppendsCarrySiteStepAndOrder)
{
    VersionLog vl(16);
    vl.beginTx(0);
    ASSERT_TRUE(vl.append(0, 0x100, 7, 10, false));
    ASSERT_TRUE(vl.append(0, 0x140, 8, 11, true));

    auto win = vl.pendingWindow(0);
    ASSERT_EQ(win.size(), 2u);
    EXPECT_EQ(win[0].addr, 0x100u);
    EXPECT_EQ(win[0].site, 7u);
    EXPECT_EQ(win[0].step, 10u);
    EXPECT_EQ(win[0].tid, 0u);
    EXPECT_FALSE(win[0].isWrite);
    EXPECT_TRUE(win[1].isWrite);
    EXPECT_EQ(vl.counters().entries, 2u);
}

TEST(VersionLog, RingFullRefusesInsteadOfTruncating)
{
    VersionLog vl(3);
    vl.beginTx(0);
    EXPECT_TRUE(vl.append(0, 0x000, 1, 1, true));
    EXPECT_TRUE(vl.append(0, 0x040, 2, 2, true));
    EXPECT_TRUE(vl.append(0, 0x080, 3, 3, true));
    // The fourth append is refused — not dropped: the window keeps
    // exactly the three accepted entries, and the refusal is counted.
    EXPECT_FALSE(vl.append(0, 0x0c0, 4, 4, true));
    EXPECT_EQ(vl.pendingWindow(0).size(), 3u);
    EXPECT_EQ(vl.counters().ringOverflows, 1u);
    EXPECT_EQ(vl.counters().entries, 3u);
}

TEST(VersionLog, CommitPublishesVersionsForWrittenLinesOnly)
{
    VersionLog vl(16);
    const uint64_t line_a = mem::lineOf(0x100);
    const uint64_t line_b = mem::lineOf(0x140);
    EXPECT_EQ(vl.versionOf(line_a), 0u);

    vl.beginTx(0);
    ASSERT_TRUE(vl.append(0, 0x100, 1, 1, true));   // write a
    ASSERT_TRUE(vl.append(0, 0x104, 2, 2, true));   // write a again
    ASSERT_TRUE(vl.append(0, 0x140, 3, 3, false));  // read b
    vl.commitTx(0);

    // Every logged write bumps its line (seqlock-style stamp); reads
    // publish nothing, and the committed window is gone.
    EXPECT_EQ(vl.versionOf(line_a), 2u);
    EXPECT_EQ(vl.versionOf(line_b), 0u);
    EXPECT_EQ(vl.counters().published, 2u);
    EXPECT_TRUE(vl.pendingWindow(0).empty());

    // A later transaction's entries stamp the published version.
    vl.beginTx(1);
    ASSERT_TRUE(vl.append(1, 0x108, 4, 5, false));
    auto win = vl.pendingWindow(1);
    ASSERT_EQ(win.size(), 1u);
    EXPECT_EQ(win[0].version, 2u);
}

TEST(VersionLog, MarkReplayedAdvancesTheWatermark)
{
    VersionLog vl(16);
    vl.beginTx(0);
    ASSERT_TRUE(vl.append(0, 0x100, 1, 1, true));
    ASSERT_TRUE(vl.append(0, 0x140, 2, 2, true));
    vl.markReplayed(0);

    // Replayed entries stay in the ring (they still bound capacity and
    // publish at commit) but leave the pending window.
    EXPECT_TRUE(vl.pendingWindow(0).empty());
    ASSERT_TRUE(vl.append(0, 0x180, 3, 3, true));
    auto win = vl.pendingWindow(0);
    ASSERT_EQ(win.size(), 1u);
    EXPECT_EQ(win[0].addr, 0x180u);
}

TEST(VersionLog, BeginTxAndClearDropTheWindow)
{
    VersionLog vl(16);
    vl.beginTx(0);
    ASSERT_TRUE(vl.append(0, 0x100, 1, 1, true));
    vl.beginTx(0);
    EXPECT_TRUE(vl.pendingWindow(0).empty());

    // clear() drops without publishing (abort fully replayed).
    ASSERT_TRUE(vl.append(0, 0x140, 2, 2, true));
    vl.clear(0);
    EXPECT_TRUE(vl.pendingWindow(0).empty());
    EXPECT_EQ(vl.versionOf(mem::lineOf(0x140)), 0u);

    // An unknown thread has an empty window, not UB.
    EXPECT_TRUE(vl.pendingWindow(9).empty());
    EXPECT_EQ(vl.entryCount(9), 0u);
}

TEST(VersionLog, EngineAbortsWithCapacityWhenTheRingFills)
{
    HtmEngine h(loggingConfig(2));
    h.begin(0);
    EXPECT_TRUE(h.logAccess(0, 0x100, 1, 1, true));
    EXPECT_TRUE(h.logAccess(0, 0x140, 2, 2, true));
    // Third entry overflows the two-entry ring: the engine aborts the
    // transaction with a capacity status, exactly like an overflowing
    // write set — the window is never silently truncated.
    EXPECT_FALSE(h.logAccess(0, 0x180, 3, 3, true));
    EXPECT_FALSE(h.inTx(0));
    EXPECT_EQ(h.lastAbortStatus(0) & kAbortCapacity, kAbortCapacity);
    EXPECT_EQ(h.counters().abortsCapacity, 1u);
    ASSERT_NE(h.versionLog(), nullptr);
    EXPECT_EQ(h.versionLog()->counters().ringOverflows, 1u);
}

TEST(VersionLog, EngineDoesNotChargeTheLogAgainstWriteSetCapacity)
{
    // A ring far larger than the write set: logging every access must
    // not move the L1-shaped capacity boundary. With 4 sets x 2 ways
    // the 9th distinct written line overflows whether or not each
    // access was also logged.
    HtmConfig cfg = loggingConfig(4096);
    cfg.l1Sets = 4;
    cfg.l1Ways = 2;
    HtmEngine h(cfg);
    h.begin(0);
    for (uint64_t i = 0; i < 8; ++i) {
        ir::Addr a = static_cast<ir::Addr>(0x40 * i);
        ASSERT_TRUE(h.logAccess(0, a, 1, i, true));
        ASSERT_FALSE(h.access(0, a, true).selfCapacity) << i;
    }
    EXPECT_TRUE(h.inTx(0));
    EXPECT_TRUE(h.access(0, 0x40 * 8, true).selfCapacity);
    EXPECT_EQ(h.lastAbortStatus(0) & kAbortCapacity, kAbortCapacity);
}

TEST(VersionLog, CommitThroughTheEnginePublishesAndResets)
{
    HtmEngine h(loggingConfig(16));
    h.begin(0);
    ASSERT_TRUE(h.logAccess(0, 0x100, 1, 1, true));
    h.commit(0);
    ASSERT_NE(h.versionLog(), nullptr);
    EXPECT_EQ(h.versionLog()->versionOf(mem::lineOf(0x100)), 1u);

    // reset() forgets published versions with the rest of the state.
    h.reset();
    EXPECT_EQ(h.versionLog()->versionOf(mem::lineOf(0x100)), 0u);
    EXPECT_EQ(h.versionLog()->counters().entries, 0u);
}
