/**
 * @file
 * Steady-state allocation test for the HTM hot path.
 *
 * The directory engine's begin/access/commit cycle must be heap-free
 * once warmed up: slots come from a bitmask, line footprints reuse
 * per-thread vectors, the directory only grows (and is pre-warmed by
 * the warmup rounds), and occupancy tracking is epoch-stamped instead
 * of reallocated. A global operator new/delete counter proves it — a
 * regression that reintroduces per-transaction churn (the old
 * setOccupancy.assign() on every begin, or per-access node allocation)
 * fails here, not in a profiler three PRs later.
 *
 * This binary intentionally does NOT link gtest_main-with-threads
 * extras; the counter is not thread-safe and the test is
 * single-threaded by construction.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "htm/htm.hh"
#include "mem/layout.hh"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

namespace {

using namespace txrace;
using namespace txrace::htm;

/** Allocations observed while running @p fn. */
template <typename Fn>
uint64_t
allocationsDuring(Fn &&fn)
{
    uint64_t before = g_allocs.load(std::memory_order_relaxed);
    fn();
    return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(HtmAllocation, WarmSteadyStateIsHeapFree)
{
    HtmConfig cfg;
    cfg.engine = ConflictEngine::Directory;
    HtmEngine h(cfg);
    ASSERT_TRUE(h.usesDirectory());

    constexpr int kThreads = 8;
    constexpr int kLinesPerThread = 16;
    auto oneRound = [&] {
        for (Tid t = 0; t < kThreads; ++t)
            h.begin(t);
        for (Tid t = 0; t < kThreads; ++t) {
            // Disjoint per-thread regions: conflict-free.
            uint64_t base = (t + 1) * 0x10000;
            for (int l = 0; l < kLinesPerThread; ++l)
                h.access(t, base + l * mem::kLineSize, l % 4 == 0);
        }
        for (Tid t = 0; t < kThreads; ++t)
            h.commit(t);
    };

    // Warm up: sizes the directory, the per-thread line lists, the
    // occupancy arrays, and the tid->state map.
    for (int i = 0; i < 3; ++i)
        oneRound();

    EXPECT_EQ(allocationsDuring([&] {
        for (int i = 0; i < 100; ++i)
            oneRound();
    }), 0u) << "begin/access/commit steady state must not allocate";
}

TEST(HtmAllocation, ConflictAbortPathAllocatesOnlyTheVictimList)
{
    HtmConfig cfg;
    cfg.engine = ConflictEngine::Directory;
    HtmEngine h(cfg);

    size_t victimTotal = 0;
    auto oneRound = [&] {
        for (Tid t = 0; t < 4; ++t) {
            h.begin(t);
            h.access(t, 0x4000, false);  // shared line
        }
        // Non-transactional write aborts all four readers.
        victimTotal += h.access(99, 0x4000, true).victims.size();
    };

    for (int i = 0; i < 3; ++i)
        oneRound();
    victimTotal = 0;

    uint64_t allocs = allocationsDuring([&] {
        for (int i = 0; i < 100; ++i)
            oneRound();
    });
    EXPECT_EQ(victimTotal, 400u);
    // The AccessResult::victims vector the caller receives is the only
    // thing allowed to allocate (growth to 4 elements); the engine's
    // own abort processing — slot release, line-list walk, directory
    // bit clears — must be heap-free.
    EXPECT_LE(allocs, 400u) << "conflict abort internals are churning";
}

TEST(HtmAllocation, FilterHitPathIsHeapFree)
{
    // Repeat accesses to held lines are answered by the owned-line
    // filter; the filter is fixed arrays in TxState, so a hit must
    // not allocate — and neither may its occEpoch-based invalidation
    // across begin/commit rounds.
    HtmConfig cfg;
    HtmEngine h(cfg);
    ASSERT_TRUE(cfg.accessFilter);

    auto oneRound = [&] {
        for (Tid t = 0; t < 4; ++t)
            h.begin(t);
        for (int rep = 0; rep < 8; ++rep)
            for (Tid t = 0; t < 4; ++t)
                for (int l = 0; l < 4; ++l)
                    h.access(t, (t + 1) * 0x10000 + l * mem::kLineSize,
                             rep % 2 == 0);
        for (Tid t = 0; t < 4; ++t)
            h.commit(t);
    };
    for (int i = 0; i < 3; ++i)
        oneRound();
    const uint64_t hitsBefore = h.counters().filterHits;

    EXPECT_EQ(allocationsDuring([&] {
        for (int i = 0; i < 100; ++i)
            oneRound();
    }), 0u) << "filter hit path must not allocate";
    EXPECT_GT(h.counters().filterHits, hitsBefore);
}

} // namespace
