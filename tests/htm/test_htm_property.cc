/**
 * @file
 * Property tests for the HTM engine against an independent mirror
 * model: random sequences of begin/access/commit operations are
 * replayed on both, and the mirror predicts exactly which
 * transactions each access must abort (requester-wins over line
 * sets) and what each transaction's footprint is.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "htm/htm.hh"
#include "mem/layout.hh"
#include "support/rng.hh"

using namespace txrace;
using namespace txrace::htm;

namespace {

/** Straightforward re-specification of the conflict rules. */
struct Mirror
{
    struct Tx
    {
        bool active = false;
        std::set<uint64_t> reads, writes;
    };
    std::map<Tid, Tx> txs;

    std::set<Tid>
    accessVictims(Tid requester, uint64_t line, bool is_write)
    {
        std::set<Tid> victims;
        for (auto &[tid, tx] : txs) {
            if (tid == requester || !tx.active)
                continue;
            bool hit = is_write
                ? (tx.reads.count(line) || tx.writes.count(line))
                : tx.writes.count(line) > 0;
            if (hit) {
                victims.insert(tid);
                tx.active = false;
            }
        }
        if (txs[requester].active) {
            if (is_write)
                txs[requester].writes.insert(line);
            else
                txs[requester].reads.insert(line);
        }
        return victims;
    }
};

} // namespace

/** Parameter: (stream seed, owned-line filter on/off). */
class HtmAgainstMirror
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>>
{
};

TEST_P(HtmAgainstMirror, VictimsAndFootprintsMatch)
{
    // Geometry big enough that capacity never interferes (capacity is
    // covered by dedicated unit tests).
    HtmConfig cfg;
    cfg.l1Ways = 64;
    cfg.readSetMaxLines = 1u << 20;
    cfg.maxConcurrentTx = 8;
    cfg.accessFilter = std::get<1>(GetParam());
    HtmEngine engine(cfg);
    EXPECT_TRUE(engine.usesDirectory());
    Mirror mirror;
    Rng rng(std::get<0>(GetParam()));

    constexpr Tid kThreads = 5;
    for (int step = 0; step < 2000; ++step) {
        Tid t = static_cast<Tid>(rng.below(kThreads));
        uint64_t action = rng.below(10);
        if (action == 0) {
            // Toggle transactional state.
            if (engine.inTx(t)) {
                engine.commit(t);
                mirror.txs[t] = {};
            } else if (engine.canBegin()) {
                engine.begin(t);
                mirror.txs[t].active = true;
                mirror.txs[t].reads.clear();
                mirror.txs[t].writes.clear();
            }
            continue;
        }
        bool is_write = rng.chance(0.5);
        uint64_t line = rng.below(6);  // few lines: heavy contention
        ir::Addr addr = line * mem::kLineSize + 8 * rng.below(8);

        auto result = engine.access(t, addr, is_write);
        ASSERT_FALSE(result.selfCapacity);
        std::set<Tid> got(result.victims.begin(),
                          result.victims.end());
        std::set<Tid> expected =
            mirror.accessVictims(t, line, is_write);
        ASSERT_EQ(got, expected) << "step " << step;

        // Footprints agree for every open transaction.
        for (Tid u = 0; u < kThreads; ++u) {
            ASSERT_EQ(engine.inTx(u), mirror.txs[u].active);
            if (engine.inTx(u)) {
                ASSERT_EQ(engine.readSetLines(u),
                          mirror.txs[u].reads.size());
                ASSERT_EQ(engine.writeSetLines(u),
                          mirror.txs[u].writes.size());
            }
        }
        ASSERT_EQ(engine.inFlightCount(),
                  static_cast<size_t>(std::count_if(
                      mirror.txs.begin(), mirror.txs.end(),
                      [](const auto &kv) {
                          return kv.second.active;
                      })));
    }
}

// The second axis distinguishes filter-on from filter-off: the mirror
// model knows nothing about the owned-line filter, so matching it in
// both configurations re-proves filter transparency against an
// independent oracle (the differential test proves it engine-vs-
// engine).
INSTANTIATE_TEST_SUITE_P(
    Seeds, HtmAgainstMirror,
    ::testing::Combine(::testing::Range<uint64_t>(1, 9),
                       ::testing::Values(true, false)),
    [](const auto &info) {
        return (std::get<1>(info.param)
                    ? std::string("Filtered")
                    : std::string("Unfiltered")) +
               "_seed" + std::to_string(std::get<0>(info.param));
    });
