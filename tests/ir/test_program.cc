/**
 * @file
 * Unit tests for Program: finalize, id assignment, loop matching,
 * refinalize stability, and the transactional-form checker.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/program.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

Instruction
op(OpCode code, uint64_t arg0 = 0, uint64_t arg1 = 0)
{
    Instruction i;
    i.op = code;
    i.arg0 = arg0;
    i.arg1 = arg1;
    return i;
}

Program
fromOps(std::vector<Instruction> body)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.body = std::move(body);
    p.addFunction(std::move(fn));
    p.finalize();
    return p;
}

} // namespace

TEST(Program, FinalizeAssignsSequentialIds)
{
    Program p = fromOps({op(OpCode::Compute, 1), op(OpCode::Nop),
                         op(OpCode::Compute, 2)});
    const auto &body = p.function(0).body;
    EXPECT_EQ(body[0].id, 0u);
    EXPECT_EQ(body[1].id, 1u);
    EXPECT_EQ(body[2].id, 2u);
    EXPECT_EQ(p.numInstructions(), 3u);
}

TEST(Program, InstrLookupById)
{
    Program p = fromOps({op(OpCode::Compute, 7), op(OpCode::Syscall, 3)});
    EXPECT_EQ(p.instr(0).arg0, 7u);
    EXPECT_EQ(p.instr(1).op, OpCode::Syscall);
    EXPECT_EQ(p.funcOf(1), 0u);
}

TEST(Program, NestedLoopMatching)
{
    Program p = fromOps({op(OpCode::LoopBegin, 2),
                         op(OpCode::LoopBegin, 3),
                         op(OpCode::Compute, 1), op(OpCode::LoopEnd),
                         op(OpCode::LoopEnd)});
    const auto &body = p.function(0).body;
    EXPECT_EQ(body[0].match, 4);
    EXPECT_EQ(body[1].match, 3);
    EXPECT_EQ(body[3].match, 1);
    EXPECT_EQ(body[4].match, 0);
}

TEST(Program, RefinalizeKeepsExistingIds)
{
    Program p = fromOps({op(OpCode::Compute, 1), op(OpCode::Compute, 2)});
    // Insert an instruction in front, as a pass would.
    auto &body = p.function(0).body;
    body.insert(body.begin(), op(OpCode::TxBegin));
    body.push_back(op(OpCode::TxEnd));
    p.refinalize();
    // Original instructions keep ids 0 and 1; new ones get fresh ids.
    EXPECT_EQ(body[1].id, 0u);
    EXPECT_EQ(body[2].id, 1u);
    EXPECT_GE(body[0].id, 2u);
    EXPECT_GE(body[3].id, 2u);
    EXPECT_NE(body[0].id, body[3].id);
    // Lookup still works for everyone.
    EXPECT_EQ(p.instr(body[0].id).op, OpCode::TxBegin);
}

TEST(ProgramDeathTest, FinalizeTwicePanics)
{
    Program p = fromOps({op(OpCode::Nop)});
    EXPECT_DEATH(p.finalize(), "twice");
}

TEST(ProgramDeathTest, UnknownInstrIdPanics)
{
    Program p = fromOps({op(OpCode::Nop)});
    EXPECT_DEATH(p.instr(55), "unknown id");
}

TEST(ProgramDeathTest, UnmatchedLoopEndFatals)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.body = {op(OpCode::LoopEnd)};
    p.addFunction(std::move(fn));
    EXPECT_EXIT(p.finalize(), testing::ExitedWithCode(1),
                "unmatched LoopEnd");
}

TEST(ProgramDeathTest, UnmatchedLoopBeginFatals)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.body = {op(OpCode::LoopBegin, 2)};
    p.addFunction(std::move(fn));
    EXPECT_EXIT(p.finalize(), testing::ExitedWithCode(1),
                "unmatched LoopBegin");
}

TEST(ProgramDeathTest, CreateOfUnknownFunctionFatals)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.body = {op(OpCode::ThreadCreate, 9)};
    p.addFunction(std::move(fn));
    EXPECT_EXIT(p.finalize(), testing::ExitedWithCode(1),
                "unknown function");
}

TEST(ProgramDeathTest, BarrierWithoutParticipantsFatals)
{
    Program p;
    Function fn;
    fn.name = "f";
    fn.body = {op(OpCode::Barrier, 0, 0)};
    p.addFunction(std::move(fn));
    EXPECT_EXIT(p.finalize(), testing::ExitedWithCode(1),
                "participants");
}

// ---- checkTransactionalForm ----------------------------------------

TEST(TxForm, AcceptsWellFormed)
{
    Program p = fromOps({op(OpCode::TxBegin), op(OpCode::Compute, 1),
                         op(OpCode::TxEnd), op(OpCode::Syscall, 1),
                         op(OpCode::TxBegin), op(OpCode::Compute, 1),
                         op(OpCode::TxEnd)});
    EXPECT_EQ(p.checkTransactionalForm(), "");
}

TEST(TxForm, AcceptsLoopInvariantCut)
{
    // loop { tx.end; sync; tx.begin } with the state equal at both
    // loop boundaries.
    Program p = fromOps({op(OpCode::TxBegin), op(OpCode::LoopBegin, 2),
                         op(OpCode::TxEnd), op(OpCode::Syscall, 1),
                         op(OpCode::TxBegin), op(OpCode::LoopEnd),
                         op(OpCode::TxEnd)});
    EXPECT_EQ(p.checkTransactionalForm(), "");
}

TEST(TxForm, RejectsNestedTxBegin)
{
    Program p = fromOps({op(OpCode::TxBegin), op(OpCode::TxBegin)});
    EXPECT_NE(p.checkTransactionalForm().find("nested"),
              std::string::npos);
}

TEST(TxForm, RejectsStrayTxEnd)
{
    Program p = fromOps({op(OpCode::TxEnd)});
    EXPECT_NE(p.checkTransactionalForm().find("outside"),
              std::string::npos);
}

TEST(TxForm, RejectsSyscallInsideTx)
{
    Program p = fromOps({op(OpCode::TxBegin), op(OpCode::Syscall, 1),
                         op(OpCode::TxEnd)});
    EXPECT_NE(p.checkTransactionalForm().find("system call"),
              std::string::npos);
}

TEST(TxForm, RejectsSyncInsideTx)
{
    Program p = fromOps({op(OpCode::TxBegin),
                         op(OpCode::LockAcquire, 0),
                         op(OpCode::TxEnd)});
    EXPECT_NE(p.checkTransactionalForm().find("inside transaction"),
              std::string::npos);
}

TEST(TxForm, RejectsLoopVariantState)
{
    // Transaction opens inside the loop but was closed at entry.
    Program p = fromOps({op(OpCode::LoopBegin, 2),
                         op(OpCode::TxBegin), op(OpCode::LoopEnd),
                         op(OpCode::TxEnd)});
    EXPECT_NE(p.checkTransactionalForm().find("loop-invariant"),
              std::string::npos);
}

TEST(TxForm, RejectsOpenAtFunctionEnd)
{
    Program p = fromOps({op(OpCode::TxBegin), op(OpCode::Compute, 1)});
    EXPECT_NE(p.checkTransactionalForm().find("falls off"),
              std::string::npos);
}

TEST(TxForm, RejectsLoopCutOutsideLoop)
{
    Program p = fromOps({op(OpCode::TxBegin), op(OpCode::LoopCut),
                         op(OpCode::TxEnd)});
    EXPECT_NE(p.checkTransactionalForm().find("outside loop"),
              std::string::npos);
}

TEST(TxForm, UninstrumentedProgramIsTriviallyValid)
{
    Program p = fromOps({op(OpCode::Compute, 1), op(OpCode::Syscall, 1)});
    EXPECT_EQ(p.checkTransactionalForm(), "");
}
