/**
 * @file
 * Tests for the .txr text format: parsing, diagnostics, and the
 * serialize/parse round-trip property over random programs, the
 * bundled workloads, and instrumented (transactionalized) programs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.hh"
#include "ir/text.hh"
#include "passes/passes.hh"
#include "support/rng.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

/** Structural equality of two programs (ids/matches recomputed by
 *  finalize, so compare the semantic payload per instruction). */
void
expectSamePrograms(const Program &a, const Program &b)
{
    ASSERT_EQ(a.numFunctions(), b.numFunctions());
    EXPECT_EQ(a.entry(), b.entry());
    EXPECT_EQ(a.addrSpaceSize(), b.addrSpaceSize());
    ASSERT_EQ(a.privateRanges().size(), b.privateRanges().size());
    for (size_t i = 0; i < a.privateRanges().size(); ++i) {
        EXPECT_EQ(a.privateRanges()[i].lo, b.privateRanges()[i].lo);
        EXPECT_EQ(a.privateRanges()[i].hi, b.privateRanges()[i].hi);
    }
    for (FuncId f = 0; f < a.numFunctions(); ++f) {
        const Function &fa = a.function(f);
        const Function &fb = b.function(f);
        EXPECT_EQ(fa.name, fb.name);
        ASSERT_EQ(fa.body.size(), fb.body.size()) << fa.name;
        for (size_t i = 0; i < fa.body.size(); ++i) {
            const Instruction &x = fa.body[i];
            const Instruction &y = fb.body[i];
            EXPECT_EQ(x.op, y.op) << fa.name << ":" << i;
            EXPECT_EQ(x.addr, y.addr) << fa.name << ":" << i;
            EXPECT_EQ(x.arg0, y.arg0) << fa.name << ":" << i;
            EXPECT_EQ(x.arg1, y.arg1) << fa.name << ":" << i;
            EXPECT_EQ(x.instrumented, y.instrumented)
                << fa.name << ":" << i;
            EXPECT_EQ(x.tag, y.tag) << fa.name << ":" << i;
        }
    }
}

Program
roundTrip(const Program &p)
{
    std::ostringstream os;
    writeProgramText(p, os);
    std::istringstream is(os.str());
    return parseProgramText(is);
}

} // namespace

TEST(TextFormat, ParsesAMinimalProgram)
{
    std::istringstream is(R"(# a comment
space 0x1000
func @main
  compute cost=7
  load [0x40]
end
entry @main
)");
    Program p = parseProgramText(is);
    EXPECT_EQ(p.numFunctions(), 1u);
    EXPECT_EQ(p.addrSpaceSize(), 0x1000u);
    ASSERT_EQ(p.function(0).body.size(), 2u);
    EXPECT_EQ(p.function(0).body[0].arg0, 7u);
    EXPECT_TRUE(p.finalized());
}

TEST(TextFormat, ParsesEveryAddressTerm)
{
    std::istringstream is(
        "func @main\n"
        "  store [0x40 + tid*8 + i1*512 + rnd(16)*64]  ; full expr\n"
        "end\n");
    Program p = parseProgramText(is);
    const AddrExpr &a = p.function(0).body[0].addr;
    EXPECT_EQ(a.base, 0x40u);
    EXPECT_EQ(a.threadStride, 8u);
    EXPECT_EQ(a.loopDepth, 1u);
    EXPECT_EQ(a.loopStride, 512u);
    EXPECT_EQ(a.randomCount, 16u);
    EXPECT_EQ(a.randomStride, 64u);
    EXPECT_EQ(p.function(0).body[0].tag, "full expr");
}

TEST(TextFormat, ParsesSyncAndControlForms)
{
    std::istringstream is(
        "func @w\n"
        "  lock id=3\n"
        "  unlock id=3\n"
        "  signal id=1\n"
        "  wait id=1\n"
        "  barrier id=2 n=4\n"
        "  syscall cost=2\n"
        "  loop.begin trips=5+rnd(3)\n"
        "    nop\n"
        "  loop.end\n"
        "end\n"
        "func @main\n"
        "  create fn=0\n"
        "  join all\n"
        "end\n"
        "entry @main\n");
    Program p = parseProgramText(is);
    const auto &body = p.function(0).body;
    EXPECT_EQ(body[4].arg1, 4u);
    EXPECT_EQ(body[6].arg0, 5u);
    EXPECT_EQ(body[6].arg1, 3u);
    EXPECT_EQ(p.function(1).body[1].arg0, ~0ull);
    EXPECT_EQ(p.entry(), 1u);
}

TEST(TextFormat, DefaultEntryIsLastFunction)
{
    std::istringstream is("func @a\n  nop\nend\nfunc @b\n  nop\nend\n");
    Program p = parseProgramText(is);
    EXPECT_EQ(p.entry(), 1u);
}

TEST(TextFormat, RoundTripSmallProgram)
{
    ProgramBuilder b;
    Addr priv = b.allocPrivate("p", 128);
    Addr shared = b.alloc("s", 256);
    FuncId worker = b.beginFunction("worker");
    b.loopJitter(5, 2, [&] {
        b.load(AddrExpr::randomIn(shared, 8, 8), "lookup");
        b.storePrivate(AddrExpr::perThread(priv, 8));
        b.compute(3);
    });
    b.barrier(0, 2);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    expectSamePrograms(p, roundTrip(p));
}

TEST(TextFormat, RoundTripInstrumentedProgram)
{
    ProgramBuilder b;
    Addr shared = b.alloc("s", 256);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        for (int i = 0; i < 6; ++i)
            b.load(AddrExpr::absolute(shared + 8 * i));
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = passes::preparedForTxRace(b.build());
    Program q = roundTrip(p);
    expectSamePrograms(p, q);
    EXPECT_EQ(q.checkTransactionalForm(), "");
}

TEST(TextFormat, RoundTripAllWorkloads)
{
    for (const std::string &name : workloads::appNames()) {
        workloads::WorkloadParams params;
        params.calibrate = false;
        workloads::AppModel app = workloads::makeApp(name, params);
        expectSamePrograms(app.program, roundTrip(app.program));
    }
}

class TextRoundTripProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TextRoundTripProperty, RandomProgramsSurvive)
{
    Rng rng(GetParam());
    for (int round = 0; round < 5; ++round) {
        ProgramBuilder b;
        Addr base = b.alloc("d", 4096);
        b.beginFunction("w");
        int depth = 0;
        size_t len = 5 + rng.below(25);
        for (size_t i = 0; i < len; ++i) {
            switch (rng.below(9)) {
              case 0:
                b.load(AddrExpr::randomIn(base, 64, 8),
                       rng.chance(0.3) ? "tagged load" : "");
                break;
              case 1: {
                AddrExpr e;
                e.base = base + rng.below(64) * 8;
                e.threadStride = rng.below(3) * 8;
                if (depth > 0) {
                    e.loopStride = rng.below(3) * 8;
                    // loopDepth is only meaningful (and serialized)
                    // alongside a nonzero stride.
                    if (e.loopStride != 0)
                        e.loopDepth =
                            static_cast<uint32_t>(rng.below(
                                static_cast<uint64_t>(depth)));
                }
                b.store(e);
                break;
              }
              case 2:
                b.compute(rng.below(20) + 1);
                break;
              case 3:
                b.syscall(rng.below(5));
                break;
              case 4:
                b.lock(rng.below(3));
                b.unlock(rng.below(3));
                break;
              case 5:
                b.signal(rng.below(2));
                break;
              case 6:
                if (depth < 3) {
                    b.loopBegin(1 + rng.below(6), rng.below(3));
                    ++depth;
                }
                break;
              case 7:
                if (depth > 0) {
                    b.loopEnd();
                    --depth;
                }
                break;
              default:
                b.loadPrivate(AddrExpr::absolute(base));
                break;
            }
        }
        while (depth-- > 0)
            b.loopEnd();
        b.endFunction();
        Program p = b.build();
        expectSamePrograms(p, roundTrip(p));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 9));

TEST(TextFormatDeathTest, DiagnosesBadInput)
{
    auto parse = [](const char *text) {
        std::istringstream is(text);
        parseProgramText(is);
    };
    EXPECT_EXIT(parse("func @f\n  bogus op\nend\n"),
                testing::ExitedWithCode(1), "unknown mnemonic");
    EXPECT_EXIT(parse("compute cost=1\n"),
                testing::ExitedWithCode(1), "outside func");
    EXPECT_EXIT(parse("func @f\n  compute cost=1\n"),
                testing::ExitedWithCode(1), "missing 'end'");
    EXPECT_EXIT(parse(""), testing::ExitedWithCode(1),
                "no functions");
    EXPECT_EXIT(parse("func @f\n  nop\nend\nentry @zzz\n"),
                testing::ExitedWithCode(1), "not defined");
    EXPECT_EXIT(parse("func @f\n  load [xyz]\nend\n"),
                testing::ExitedWithCode(1), "number");
    EXPECT_EXIT(parse("func @f\n  load [0x40] trailing\nend\n"),
                testing::ExitedWithCode(1), "trailing");
}

TEST(TextFormatDeathTest, UnbalancedLoopCaughtByFinalize)
{
    std::istringstream is("func @f\n  loop.end\nend\n");
    EXPECT_EXIT(parseProgramText(is), testing::ExitedWithCode(1),
                "unmatched LoopEnd");
}
