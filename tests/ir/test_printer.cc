/**
 * @file
 * Golden tests for the IR printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.hh"
#include "ir/printer.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

Instruction
make(OpCode code)
{
    Instruction i;
    i.op = code;
    return i;
}

} // namespace

TEST(Printer, FormatsLoadWithAddressParts)
{
    Instruction i = make(OpCode::Load);
    i.addr.base = 0x40;
    i.addr.threadStride = 8;
    i.addr.loopStride = 16;
    i.addr.loopDepth = 1;
    i.addr.randomCount = 4;
    i.addr.randomStride = 64;
    std::string s = formatInstr(i);
    EXPECT_EQ(s, "load [0x40 + tid*8 + i1*16 + rnd(4)*64]");
}

TEST(Printer, MarksUninstrumentedAccess)
{
    Instruction i = make(OpCode::Store);
    i.addr.base = 0x80;
    i.instrumented = false;
    EXPECT_EQ(formatInstr(i), "store [0x80] !noinstr");
}

TEST(Printer, FormatsSyncAndControl)
{
    Instruction lock = make(OpCode::LockAcquire);
    lock.arg0 = 3;
    EXPECT_EQ(formatInstr(lock), "lock id=3");

    Instruction barrier = make(OpCode::Barrier);
    barrier.arg0 = 1;
    barrier.arg1 = 4;
    EXPECT_EQ(formatInstr(barrier), "barrier id=1 n=4");

    Instruction join = make(OpCode::ThreadJoin);
    join.arg0 = ~0ull;
    EXPECT_EQ(formatInstr(join), "join all");

    Instruction join_one = make(OpCode::ThreadJoin);
    join_one.arg0 = 2;
    EXPECT_EQ(formatInstr(join_one), "join idx=2");

    Instruction loop = make(OpCode::LoopBegin);
    loop.arg0 = 5;
    loop.arg1 = 2;
    EXPECT_EQ(formatInstr(loop), "loop.begin trips=5+rnd(2)");

    Instruction slow = make(OpCode::TxBegin);
    slow.arg1 = 1;
    EXPECT_EQ(formatInstr(slow), "tx.begin slow");

    Instruction cut = make(OpCode::LoopCut);
    cut.arg0 = 17;
    EXPECT_EQ(formatInstr(cut), "loop.cut loop=17");
}

TEST(Printer, AppendsTagAsComment)
{
    Instruction i = make(OpCode::Compute);
    i.arg0 = 9;
    i.tag = "warmup";
    EXPECT_EQ(formatInstr(i), "compute cost=9  ; warmup");
}

TEST(Printer, ProgramDumpHasStructure)
{
    ProgramBuilder b;
    b.beginFunction("worker");
    b.loop(3, [&] { b.compute(1); });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(0, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    std::ostringstream os;
    printProgram(p, os);
    std::string out = os.str();
    EXPECT_NE(out.find("func @worker (#0)"), std::string::npos);
    EXPECT_NE(out.find("func @main (#1) [entry]"), std::string::npos);
    // Loop body is indented one extra level.
    EXPECT_NE(out.find("    compute cost=1"), std::string::npos);
}
