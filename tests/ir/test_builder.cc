/**
 * @file
 * Unit tests for ProgramBuilder: allocation, emission, structure.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "mem/layout.hh"

using namespace txrace;
using namespace txrace::ir;

TEST(Builder, AllocRespectsAlignment)
{
    ProgramBuilder b;
    Addr a = b.alloc("a", 10, 64);
    Addr c = b.alloc("c", 4, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(c, a + 10);
}

TEST(Builder, AllocAvoidsAddressZero)
{
    ProgramBuilder b;
    Addr a = b.alloc("first", 8, 8);
    EXPECT_GE(a, 64u);  // low line reserved (TxFail flag lives there)
}

TEST(Builder, AllocGrowsAddressSpace)
{
    ProgramBuilder b;
    b.alloc("x", 100);
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    Program p = b.build();
    EXPECT_GE(p.addrSpaceSize(), 164u);
}

TEST(Builder, AllocPrivateRecordsRange)
{
    ProgramBuilder b;
    Addr a = b.allocPrivate("priv", 128);
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    Program p = b.build();
    ASSERT_EQ(p.privateRanges().size(), 1u);
    EXPECT_EQ(p.privateRanges()[0].lo, a);
    EXPECT_EQ(p.privateRanges()[0].hi, a + 128);
    EXPECT_TRUE(p.privateRanges()[0].contains(a + 64));
    EXPECT_FALSE(p.privateRanges()[0].contains(a + 128));
}

TEST(Builder, EmitsExpectedOpcodes)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.load(AddrExpr::absolute(64));
    b.store(AddrExpr::absolute(72), "tagged");
    b.compute(5);
    b.lock(1);
    b.unlock(1);
    b.signal(2);
    b.wait(2);
    b.barrier(3, 4);
    b.syscall(9);
    b.endFunction();
    Program p = b.build();
    const auto &body = p.function(0).body;
    ASSERT_EQ(body.size(), 9u);
    EXPECT_EQ(body[0].op, OpCode::Load);
    EXPECT_EQ(body[1].op, OpCode::Store);
    EXPECT_EQ(body[1].tag, "tagged");
    EXPECT_EQ(body[2].op, OpCode::Compute);
    EXPECT_EQ(body[2].arg0, 5u);
    EXPECT_EQ(body[3].op, OpCode::LockAcquire);
    EXPECT_EQ(body[4].op, OpCode::LockRelease);
    EXPECT_EQ(body[5].op, OpCode::CondSignal);
    EXPECT_EQ(body[6].op, OpCode::CondWait);
    EXPECT_EQ(body[7].op, OpCode::Barrier);
    EXPECT_EQ(body[7].arg1, 4u);
    EXPECT_EQ(body[8].op, OpCode::Syscall);
}

TEST(Builder, PrivateAccessesNotInstrumented)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.loadPrivate(AddrExpr::absolute(64));
    b.storePrivate(AddrExpr::absolute(72));
    b.load(AddrExpr::absolute(80));
    b.endFunction();
    Program p = b.build();
    const auto &body = p.function(0).body;
    EXPECT_FALSE(body[0].instrumented);
    EXPECT_FALSE(body[1].instrumented);
    EXPECT_TRUE(body[2].instrumented);
}

TEST(Builder, StructuredLoop)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.loop(10, [&] { b.compute(1); });
    b.endFunction();
    Program p = b.build();
    const auto &body = p.function(0).body;
    ASSERT_EQ(body.size(), 3u);
    EXPECT_EQ(body[0].op, OpCode::LoopBegin);
    EXPECT_EQ(body[0].arg0, 10u);
    EXPECT_EQ(body[2].op, OpCode::LoopEnd);
    EXPECT_EQ(body[0].match, 2);
    EXPECT_EQ(body[2].match, 0);
}

TEST(Builder, SpawnEmitsOnePerCount)
{
    ProgramBuilder b;
    b.beginFunction("w");
    b.compute(1);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(0, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    const auto &body = p.function(1).body;
    ASSERT_EQ(body.size(), 4u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(body[static_cast<size_t>(i)].op,
                  OpCode::ThreadCreate);
        EXPECT_EQ(body[static_cast<size_t>(i)].arg0, 0u);
    }
    EXPECT_EQ(body[3].op, OpCode::ThreadJoin);
    EXPECT_EQ(body[3].arg0, ~0ull);
}

TEST(Builder, EntryDefaultsToLastFunction)
{
    ProgramBuilder b;
    b.beginFunction("w");
    b.compute(1);
    b.endFunction();
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    Program p = b.build();
    EXPECT_EQ(p.entry(), 1u);
}

TEST(Builder, SetEntryOverrides)
{
    ProgramBuilder b;
    FuncId first = b.beginFunction("first");
    b.compute(1);
    b.endFunction();
    b.beginFunction("second");
    b.compute(1);
    b.endFunction();
    b.setEntry(first);
    Program p = b.build();
    EXPECT_EQ(p.entry(), first);
}

TEST(Builder, ReusableAfterBuild)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    Program p1 = b.build();
    b.beginFunction("main2");
    b.compute(2);
    b.endFunction();
    Program p2 = b.build();
    EXPECT_EQ(p1.function(0).name, "main");
    EXPECT_EQ(p2.function(0).name, "main2");
}

TEST(BuilderDeathTest, UnbalancedLoopPanics)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.loopBegin(3);
    EXPECT_DEATH(b.endFunction(), "open loops");
}

TEST(BuilderDeathTest, LoopEndWithoutBeginPanics)
{
    ProgramBuilder b;
    b.beginFunction("f");
    EXPECT_DEATH(b.loopEnd(), "without loopBegin");
}

TEST(BuilderDeathTest, EmitOutsideFunctionPanics)
{
    ProgramBuilder b;
    EXPECT_DEATH(b.compute(1), "outside a function");
}

TEST(BuilderDeathTest, NestedBeginFunctionPanics)
{
    ProgramBuilder b;
    b.beginFunction("f");
    EXPECT_DEATH(b.beginFunction("g"), "still open");
}

TEST(BuilderDeathTest, BuildWithOpenFunctionPanics)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.compute(1);
    EXPECT_DEATH(b.build(), "still open");
}

TEST(BuilderDeathTest, EmptyProgramFatals)
{
    ProgramBuilder b;
    EXPECT_EXIT(b.build(), testing::ExitedWithCode(1), "empty program");
}

TEST(BuilderDeathTest, ZeroTripLoopFatals)
{
    ProgramBuilder b;
    b.beginFunction("f");
    EXPECT_EXIT(b.loopBegin(0), testing::ExitedWithCode(1),
                "zero-trip");
}

TEST(BuilderDeathTest, BadAlignmentFatals)
{
    ProgramBuilder b;
    EXPECT_EXIT(b.alloc("x", 8, 3), testing::ExitedWithCode(1),
                "power of two");
}
