/**
 * @file
 * End-to-end service tests: the kill-and-resume determinism contract
 * (an interrupted + resumed campaign emits byte-identical artifacts
 * to an uninterrupted one, for any --jobs and --shards), stream-mode
 * ingestion, cross-host store union, and the progress side channel.
 * In-process interruption uses the service's stop flag — the same
 * path the SIGTERM handler drives in txrace_hunt.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/campaign.hh"
#include "service/checkpoint.hh"
#include "service/service.hh"
#include "service/store.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::service;

namespace {

namespace fs = std::filesystem;

campaign::CampaignConfig
smallCampaign()
{
    campaign::CampaignConfig cfg;
    cfg.apps = {"raytrace", "canneal"};
    cfg.seedsPerApp = 2;
    cfg.masterSeed = 7;
    cfg.jobs = 2;
    return cfg;
}

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + "txrace_service_" + name;
    fs::remove_all(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::string out, error;
    EXPECT_TRUE(readFile(path, out, error)) << error;
    return out;
}

/** Run a service campaign start to finish in @p dir. */
ServiceResult
runToCompletion(const campaign::CampaignConfig &cfg,
                const std::string &dir, std::ostream *progress = nullptr)
{
    ServiceOptions opt;
    opt.cfg = cfg;
    opt.stateDir = dir;
    opt.checkpointEvery = 1;
    opt.progressJson = progress;
    ServiceResult res = runService(opt);
    EXPECT_TRUE(res.completed);
    return res;
}

} // namespace

TEST(Service, CampaignJsonMatchesRunCampaignByteExactly)
{
    campaign::CampaignConfig cfg = smallCampaign();
    const std::string dir = freshDir("vs_campaign");
    runToCompletion(cfg, dir);

    campaign::CampaignResult direct = campaign::runCampaign(cfg);
    std::ostringstream os;
    campaign::writeCampaignJson(os, cfg, direct);
    EXPECT_EQ(slurp(dir + "/campaign.json"), os.str());
    fs::remove_all(dir);
}

TEST(Service, KillAndResumeIsByteIdenticalForAnyJobsAndShards)
{
    campaign::CampaignConfig base = smallCampaign();
    const std::string refDir = freshDir("resume_ref");
    runToCompletion(base, refDir);
    const std::string wantCampaign = slurp(refDir + "/campaign.json");
    const std::string wantFindings = slurp(refDir + "/findings.json");

    const uint32_t jobsChoices[] = {1, 8};
    const uint32_t shardChoices[] = {1, 16};
    for (uint32_t jobs : jobsChoices) {
        for (uint32_t shards : shardChoices) {
            campaign::CampaignConfig cfg = base;
            cfg.jobs = jobs;
            cfg.shards = shards;
            const std::string dir = freshDir(
                "resume_" + std::to_string(jobs) + "_" +
                std::to_string(shards));

            // Interrupt almost immediately: the stop flag is already
            // raised, so the service folds one job, checkpoints, and
            // shuts down — exactly the SIGTERM path.
            std::atomic<bool> stop{true};
            ServiceOptions opt;
            opt.cfg = cfg;
            opt.stateDir = dir;
            opt.checkpointEvery = 1;
            opt.stopFlag = &stop;
            ServiceResult interrupted = runService(opt);
            EXPECT_FALSE(interrupted.completed);
            EXPECT_GT(interrupted.checkpoints, 0u);
            ASSERT_TRUE(fs::exists(dir + "/checkpoint.json"));

            // A second interrupted leg: resume, fold a bit, die again.
            opt.resume = true;
            ServiceResult again = runService(opt);
            EXPECT_FALSE(again.completed);

            // Final leg completes.
            stop.store(false);
            ServiceResult done = runService(opt);
            EXPECT_TRUE(done.completed);

            EXPECT_EQ(slurp(dir + "/campaign.json"), wantCampaign)
                << "jobs=" << jobs << " shards=" << shards;
            EXPECT_EQ(slurp(dir + "/findings.json"), wantFindings)
                << "jobs=" << jobs << " shards=" << shards;
            fs::remove_all(dir);
        }
    }
    fs::remove_all(refDir);
}

TEST(Service, AdaptiveStrategySurvivesMidCampaignKill)
{
    // abort-guided reseeds from round-0 history — resume must rebuild
    // that history from the checkpoint, not re-observe it.
    campaign::CampaignConfig cfg = smallCampaign();
    cfg.strategy = "abort-guided";
    cfg.seedsPerApp = 4;

    const std::string refDir = freshDir("adaptive_ref");
    runToCompletion(cfg, refDir);

    const std::string dir = freshDir("adaptive_resume");
    std::atomic<bool> stop{true};
    ServiceOptions opt;
    opt.cfg = cfg;
    opt.stateDir = dir;
    opt.checkpointEvery = 1;
    opt.stopFlag = &stop;
    EXPECT_FALSE(runService(opt).completed);
    stop.store(false);
    opt.resume = true;
    EXPECT_TRUE(runService(opt).completed);

    EXPECT_EQ(slurp(dir + "/campaign.json"),
              slurp(refDir + "/campaign.json"));
    fs::remove_all(dir);
    fs::remove_all(refDir);
}

TEST(Service, ResumeAfterCompletionIsAnIdempotentNoOp)
{
    campaign::CampaignConfig cfg = smallCampaign();
    const std::string dir = freshDir("noop_resume");
    runToCompletion(cfg, dir);
    const std::string campaignBytes = slurp(dir + "/campaign.json");
    const std::string findingsBytes = slurp(dir + "/findings.json");

    ServiceOptions opt;
    opt.cfg = cfg;
    opt.stateDir = dir;
    opt.resume = true;
    ServiceResult res = runService(opt);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.jobsFolded, 0u);
    EXPECT_EQ(slurp(dir + "/campaign.json"), campaignBytes);
    EXPECT_EQ(slurp(dir + "/findings.json"), findingsBytes);
    fs::remove_all(dir);
}

TEST(Service, SpoolIngestIsDeterministicAcrossJobsAndShards)
{
    const std::string spool = freshDir("spool_src");
    fs::create_directories(spool);
    std::ofstream(spool + "/001.ndjson")
        << "{\"app\": \"raytrace\", \"seed\": 3}\n"
        << "{\"app\": \"raytrace\", \"seed\": 4}\n";
    std::ofstream(spool + "/002.ndjson")
        << "{\"app\": \"canneal\", \"seed\": 7}\n";

    campaign::CampaignConfig cfg = smallCampaign();
    std::string want;
    for (uint32_t pass = 0; pass < 2; ++pass) {
        cfg.jobs = pass == 0 ? 1 : 4;
        cfg.shards = pass == 0 ? 1 : 8;
        const std::string dir =
            freshDir("spool_run" + std::to_string(pass));
        ServiceOptions opt;
        opt.cfg = cfg;
        opt.stateDir = dir;
        opt.spoolDir = spool;
        ServiceResult res = runService(opt);
        EXPECT_TRUE(res.completed);
        EXPECT_EQ(res.jobsFolded, 3u);
        std::string got = slurp(dir + "/findings.json");
        if (want.empty())
            want = got;
        EXPECT_EQ(got, want);
        fs::remove_all(dir);
    }
    fs::remove_all(spool);
}

TEST(Service, SpoolResumeKeepsJobIdsStable)
{
    const std::string spool = freshDir("spool_resume_src");
    fs::create_directories(spool);
    std::ofstream(spool + "/001.ndjson")
        << "{\"app\": \"raytrace\", \"seed\": 3}\n"
        << "{\"app\": \"canneal\", \"seed\": 7}\n";

    campaign::CampaignConfig cfg = smallCampaign();
    const std::string refDir = freshDir("spool_resume_ref");
    {
        ServiceOptions opt;
        opt.cfg = cfg;
        opt.stateDir = refDir;
        opt.spoolDir = spool;
        EXPECT_TRUE(runService(opt).completed);
    }

    const std::string dir = freshDir("spool_resume_run");
    std::atomic<bool> stop{true};
    ServiceOptions opt;
    opt.cfg = cfg;
    opt.stateDir = dir;
    opt.spoolDir = spool;
    opt.checkpointEvery = 1;
    opt.stopFlag = &stop;
    EXPECT_FALSE(runService(opt).completed);
    stop.store(false);
    opt.resume = true;
    ServiceResult res = runService(opt);
    EXPECT_TRUE(res.completed);
    // The interrupted leg folded some jobs; resume must skip exactly
    // those (stable spool id assignment), not re-fold them.
    EXPECT_GT(res.duplicatesSkipped, 0u);

    EXPECT_EQ(slurp(dir + "/findings.json"),
              slurp(refDir + "/findings.json"));
    fs::remove_all(dir);
    fs::remove_all(refDir);
    fs::remove_all(spool);
}

TEST(Service, StdinBatchesFoldLikeSpoolBatches)
{
    campaign::CampaignConfig cfg = smallCampaign();
    const std::string dir = freshDir("stdin_run");
    std::istringstream jobs(
        "{\"app\": \"raytrace\", \"seed\": 3}\n"
        "{\"app\": \"raytrace\", \"seed\": 4}\n"
        "\n"
        "{\"app\": \"canneal\", \"seed\": 7}\n");
    ServiceOptions opt;
    opt.cfg = cfg;
    opt.stateDir = dir;
    opt.jobStream = &jobs;
    ServiceResult res = runService(opt);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.jobsFolded, 3u);

    FindingsStore store;
    std::string error;
    ASSERT_TRUE(FindingsStore::parse(slurp(dir + "/findings.json"),
                                     store, error))
        << error;
    EXPECT_EQ(store.aggregate.runs(), 3u);
    fs::remove_all(dir);
}

TEST(Service, CrossHostStoresUnionIdenticallyInBothOrders)
{
    // Two hosts hunt disjoint halves of the same campaign via spools;
    // their stores must union into identical bytes in either order.
    campaign::CampaignConfig cfg = smallCampaign();
    const std::string spoolA = freshDir("host_a_spool");
    const std::string spoolB = freshDir("host_b_spool");
    fs::create_directories(spoolA);
    fs::create_directories(spoolB);
    std::ofstream(spoolA + "/001.ndjson")
        << "{\"app\": \"raytrace\", \"seed\": 3}\n"
        << "{\"app\": \"raytrace\", \"seed\": 4}\n";
    std::ofstream(spoolB + "/001.ndjson")
        << "{\"app\": \"canneal\", \"seed\": 7}\n"
        << "{\"app\": \"canneal\", \"seed\": 8}\n";

    const std::string dirA = freshDir("host_a");
    const std::string dirB = freshDir("host_b");
    for (auto [dir, spool] : {std::pair{dirA, spoolA},
                              std::pair{dirB, spoolB}}) {
        ServiceOptions opt;
        opt.cfg = cfg;
        opt.stateDir = dir;
        opt.spoolDir = spool;
        EXPECT_TRUE(runService(opt).completed);
    }

    FindingsStore a, b;
    std::string error;
    ASSERT_TRUE(FindingsStore::parse(slurp(dirA + "/findings.json"),
                                     a, error))
        << error;
    ASSERT_TRUE(FindingsStore::parse(slurp(dirB + "/findings.json"),
                                     b, error))
        << error;
    FindingsStore ab = a, ba = b;
    ASSERT_TRUE(ab.merge(b, error)) << error;
    ASSERT_TRUE(ba.merge(a, error)) << error;
    std::ostringstream osAB, osBA;
    ab.write(osAB);
    ba.write(osBA);
    EXPECT_EQ(osAB.str(), osBA.str());

    for (const std::string &d : {dirA, dirB, spoolA, spoolB})
        fs::remove_all(d);
}

TEST(Service, ProgressStreamCarriesGaugesAndFindingDeltas)
{
    campaign::CampaignConfig cfg = smallCampaign();
    cfg.progressEvery = 1;
    const std::string dir = freshDir("progress");
    std::ostringstream progress;
    runToCompletion(cfg, dir, &progress);
    const std::string stream = progress.str();

    EXPECT_NE(stream.find("\"event\":\"start\""), std::string::npos);
    EXPECT_NE(stream.find("\"event\":\"finding\""),
              std::string::npos);
    EXPECT_NE(stream.find("\"event\":\"checkpoint\""),
              std::string::npos);
    EXPECT_NE(stream.find("\"event\":\"end\""), std::string::npos);
    EXPECT_NE(stream.find("\"service\""), std::string::npos);
    EXPECT_NE(stream.find("\"jobs_ingested\""), std::string::npos);
    EXPECT_NE(stream.find("\"checkpoints\""), std::string::npos);
    EXPECT_NE(stream.find("\"fingerprint\""), std::string::npos);
    // NDJSON: every record is one line of valid compact JSON.
    std::istringstream lines(stream);
    std::string line;
    size_t records = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++records;
    }
    EXPECT_GT(records, 4u);
    fs::remove_all(dir);
}

TEST(ServiceE2E, AllWorkloadsShardDeterminism)
{
    // The full registry x 10 seeds, byte-identical across shard
    // counts — the heavyweight pin of the sharding contract.
    campaign::CampaignConfig cfg;
    cfg.apps = workloads::appNames();
    cfg.seedsPerApp = 10;
    cfg.masterSeed = 3;
    cfg.jobs = 4;
    std::string want;
    for (uint32_t shards : {1u, 4u, 16u}) {
        cfg.shards = shards;
        campaign::CampaignResult result = campaign::runCampaign(cfg);
        std::ostringstream os;
        campaign::writeCampaignJson(os, cfg, result);
        if (want.empty())
            want = os.str();
        EXPECT_EQ(os.str(), want) << shards << " shards";
    }
}
