/**
 * @file
 * Persistent-store and checkpoint tests: byte-exact round trips,
 * commutative cross-host merge, and the validation contract — every
 * versioned loader rejects truncated, wrong-version, or inconsistent
 * input with a structured error naming the offending path, and never
 * crashes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/aggregate.hh"
#include "core/fingerprint.hh"
#include "service/checkpoint.hh"
#include "service/ingest.hh"
#include "service/store.hh"
#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"
#include "telemetry/profile.hh"

using namespace txrace;
using namespace txrace::service;

namespace {

core::RaceSig
sig(const std::string &key)
{
    core::RaceSig s;
    // The stores persist sigs, and the loader cross-checks the hash
    // against the key — fabricated sigs must use the real hash.
    s.hash = core::fnv1a64(key);
    s.key = key;
    s.label = key;
    s.a = "a:" + key;
    s.b = "b:" + key;
    return s;
}

campaign::JobOutcome
outcome(uint64_t jobId, const std::string &app, uint64_t seed,
        std::vector<std::string> raceKeys)
{
    campaign::JobOutcome o;
    o.spec.id = jobId;
    o.spec.app = app;
    o.spec.seed = seed;
    o.repro = "txrace_run --app " + app;
    o.configDigest = 0xd1600 + jobId;
    o.txCommitted = 10;
    for (const std::string &key : raceKeys) {
        campaign::FoundRace f;
        f.sig = sig(key);
        f.hits = 1;
        o.races.push_back(f);
    }
    return o;
}

campaign::CampaignConfig
identity()
{
    campaign::CampaignConfig cfg;
    cfg.apps = {"raytrace", "canneal"};
    cfg.seedsPerApp = 2;
    cfg.masterSeed = 7;
    return cfg;
}

FindingsStore
storeWith(std::vector<campaign::JobOutcome> outcomes)
{
    FindingsStore store;
    store.campaign = identity();
    for (const campaign::JobOutcome &o : outcomes)
        store.aggregate.add(o);
    return store;
}

std::string
bytesOf(const FindingsStore &store)
{
    std::ostringstream os;
    store.write(os);
    return os.str();
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "txrace_store_test_" + name;
}

} // namespace

TEST(FindingsStore, RoundTripsByteExactly)
{
    FindingsStore store = storeWith(
        {outcome(0, "raytrace", 11, {"raytrace\x1dp1"}),
         outcome(1, "canneal", 12, {"canneal\x1dp2"})});
    const std::string bytes = bytesOf(store);

    FindingsStore back;
    std::string error;
    ASSERT_TRUE(FindingsStore::parse(bytes, back, error)) << error;
    EXPECT_EQ(bytesOf(back), bytes);
    EXPECT_TRUE(sameCampaignIdentity(back.campaign, store.campaign));
}

TEST(FindingsStore, MergeCommutesByteExactly)
{
    // Two hosts partition the job-id space and find overlapping races.
    FindingsStore a = storeWith(
        {outcome(0, "raytrace", 11, {"raytrace\x1dp1"}),
         outcome(2, "raytrace", 13, {"raytrace\x1dp3"})});
    FindingsStore b = storeWith(
        {outcome(1, "raytrace", 12, {"raytrace\x1dp1"}),
         outcome(3, "canneal", 14, {"canneal\x1dp2"})});

    FindingsStore ab = a, ba = b;
    std::string error;
    ASSERT_TRUE(ab.merge(b, error)) << error;
    ASSERT_TRUE(ba.merge(a, error)) << error;
    EXPECT_EQ(bytesOf(ab), bytesOf(ba));
}

TEST(FindingsStore, RefusesToMergeDifferentCampaigns)
{
    FindingsStore a = storeWith({outcome(0, "raytrace", 1, {})});
    FindingsStore b = storeWith({outcome(1, "raytrace", 2, {})});
    b.campaign.masterSeed = 99;
    std::string error;
    EXPECT_FALSE(a.merge(b, error));
    EXPECT_NE(error.find("different"), std::string::npos);
    EXPECT_NE(error.find("99"), std::string::npos);
}

TEST(FindingsStore, WrongVersionIsAStructuredError)
{
    std::string bytes = bytesOf(storeWith({}));
    size_t at = bytes.find("txrace-findings-v1");
    ASSERT_NE(at, std::string::npos);
    bytes.replace(at, 18, "txrace-findings-v9");

    FindingsStore out;
    std::string error;
    EXPECT_FALSE(FindingsStore::parse(bytes, out, error));
    EXPECT_NE(error.find("$.schema"), std::string::npos) << error;
    EXPECT_NE(error.find("txrace-findings-v9"), std::string::npos)
        << error;
    EXPECT_NE(error.find("expected \"txrace-findings-v1\""),
              std::string::npos)
        << error;
}

TEST(FindingsStore, MissingSchemaNamesThePath)
{
    FindingsStore out;
    std::string error;
    EXPECT_FALSE(FindingsStore::parse("{\"x\": 1}", out, error));
    EXPECT_NE(error.find("$.schema: missing"), std::string::npos)
        << error;
}

TEST(FindingsStore, TruncatedInputNeverCrashes)
{
    const std::string bytes = bytesOf(storeWith(
        {outcome(0, "raytrace", 11, {"raytrace\x1dp1"})}));
    // Every strict prefix (short of the closing brace) must fail
    // cleanly — a parse error, not a crash.
    for (size_t len = 0; len + 2 < bytes.size(); len += 7) {
        FindingsStore out;
        std::string error;
        EXPECT_FALSE(
            FindingsStore::parse(bytes.substr(0, len), out, error))
            << "prefix length " << len;
        EXPECT_FALSE(error.empty()) << "prefix length " << len;
    }
}

TEST(FindingsStore, CorruptFindingEntriesAreRejected)
{
    // A finding whose runs_seen is zero is internally inconsistent.
    std::string bytes = bytesOf(storeWith(
        {outcome(0, "raytrace", 11, {"raytrace\x1dp1"})}));
    size_t at = bytes.find("\"runs_seen\": 1");
    ASSERT_NE(at, std::string::npos);
    bytes.replace(at, 14, "\"runs_seen\": 0");
    FindingsStore out;
    std::string error;
    EXPECT_FALSE(FindingsStore::parse(bytes, out, error));
    EXPECT_FALSE(error.empty());
}

TEST(RaceSig, ReadRejectsHashKeyMismatch)
{
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    core::RaceSig s = sig("app\x1dp1");
    core::writeRaceSig(w, s);

    telemetry::JsonValue doc;
    std::string error;
    ASSERT_TRUE(telemetry::parseJson(os.str(), doc, error));
    core::RaceSig back;
    ASSERT_TRUE(core::readRaceSig(doc, back, error)) << error;
    EXPECT_EQ(back.key, s.key);

    // Tamper with the key: the stored hash no longer matches.
    std::string bytes = os.str();
    size_t at = bytes.find("p1");
    bytes.replace(at, 2, "p2");
    ASSERT_TRUE(telemetry::parseJson(bytes, doc, error));
    EXPECT_FALSE(core::readRaceSig(doc, back, error));
    EXPECT_NE(error.find("hash"), std::string::npos);
}

TEST(ProfileLoader, WrongVersionIsAStructuredError)
{
    telemetry::Profile out;
    std::string error;
    EXPECT_FALSE(telemetry::Profile::parse(
        "{\"schema\": \"txrace-profile-v0\", \"apps\": {}}", out,
        error));
    EXPECT_NE(error.find("$.schema"), std::string::npos) << error;
    EXPECT_NE(error.find("txrace-profile-v0"), std::string::npos)
        << error;
    EXPECT_FALSE(telemetry::Profile::parse("{\"apps\": {}}", out,
                                           error));
    EXPECT_NE(error.find("$.schema: missing"), std::string::npos)
        << error;
}

TEST(Checkpoint, RoundTripsByteExactly)
{
    Checkpoint ck;
    ck.campaign = identity();
    ck.nextId = 12;
    ck.roundsDone = 2;
    ck.jobsTotal = 12;
    ck.strategyName = "abort-guided";
    ck.strategyState = {{"round", 2}, {"probe_per_app", 1}};
    campaign::JobSpec spec;
    spec.id = 10;
    spec.round = 2;
    spec.app = "raytrace";
    spec.seed = 77;
    spec.variant = "reseed";
    ck.plan.push_back(spec);
    campaign::JobOutcome o =
        outcome(3, "raytrace", 31, {"raytrace\x1dp1"});
    o.abortConflict = 4;
    ck.history.push_back(OutcomeSummary::of(o));
    ck.spoolFirstId = {{"batch-000.ndjson", 0}};
    ck.aggregate.add(o);

    std::ostringstream os;
    ck.write(os);
    Checkpoint back;
    std::string error;
    ASSERT_TRUE(Checkpoint::parse(os.str(), back, error)) << error;
    std::ostringstream os2;
    back.write(os2);
    EXPECT_EQ(os2.str(), os.str());
    EXPECT_EQ(back.nextId, 12u);
    EXPECT_EQ(back.strategyState.at("round"), 2u);
    ASSERT_EQ(back.plan.size(), 1u);
    EXPECT_EQ(back.plan[0].variant, "reseed");
    ASSERT_EQ(back.history.size(), 1u);
    EXPECT_EQ(back.history[0].abortConflict, 4u);
    EXPECT_EQ(back.spoolFirstId.at("batch-000.ndjson"), 0u);
}

TEST(Checkpoint, WrongVersionAndTruncationAreCleanErrors)
{
    Checkpoint ck;
    ck.campaign = identity();
    std::ostringstream os;
    ck.write(os);
    std::string bytes = os.str();

    std::string wrong = bytes;
    size_t at = wrong.find("txrace-checkpoint-v1");
    wrong.replace(at, 20, "txrace-checkpoint-v2");
    Checkpoint out;
    std::string error;
    EXPECT_FALSE(Checkpoint::parse(wrong, out, error));
    EXPECT_NE(error.find("$.schema"), std::string::npos) << error;

    for (size_t len = 0; len + 2 < bytes.size(); len += 13) {
        EXPECT_FALSE(Checkpoint::parse(bytes.substr(0, len), out,
                                       error))
            << "prefix length " << len;
    }
}

TEST(Checkpoint, SummaryRoundTripKeepsStrategyVisibleFields)
{
    campaign::JobOutcome o =
        outcome(5, "canneal", 55, {"canneal\x1dp1"});
    o.spec.variant = "irq-x4";
    o.spec.interruptScale = 4.0;
    o.spec.governor = true;
    o.ok = false;
    o.abortConflict = 9;
    OutcomeSummary s = OutcomeSummary::of(o);
    campaign::JobOutcome back = s.toOutcome(identity());
    EXPECT_EQ(back.spec.id, 5u);
    EXPECT_EQ(back.spec.app, "canneal");
    EXPECT_EQ(back.spec.variant, "irq-x4");
    EXPECT_DOUBLE_EQ(back.spec.interruptScale, 4.0);
    EXPECT_TRUE(back.spec.governor);
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.abortConflict, 9u);
}

TEST(AtomicFile, WritesAreAllOrNothing)
{
    const std::string path = tempPath("atomic.json");
    std::string error;
    ASSERT_TRUE(writeFileAtomic(path, "first", error)) << error;
    ASSERT_TRUE(writeFileAtomic(path, "second", error)) << error;
    std::string content;
    ASSERT_TRUE(readFile(path, content, error)) << error;
    EXPECT_EQ(content, "second");
    // No tmp litter left behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::remove(path.c_str());

    EXPECT_FALSE(readFile(tempPath("absent.json"), content, error));
    EXPECT_FALSE(error.empty());
}

TEST(Ingest, JobLineDefaultsComeFromTheCampaign)
{
    campaign::CampaignConfig cfg = identity();
    cfg.workers = 6;
    cfg.scale = 3;
    campaign::JobSpec spec;
    std::string error;
    ASSERT_TRUE(parseJobLine("{\"app\": \"raytrace\"}", cfg, spec,
                             error))
        << error;
    EXPECT_EQ(spec.app, "raytrace");
    EXPECT_EQ(spec.workers, 6u);
    EXPECT_EQ(spec.scale, 3u);
    EXPECT_EQ(spec.variant, "base");
    EXPECT_EQ(spec.mode, cfg.mode);

    ASSERT_TRUE(parseJobLine(
        "{\"app\": \"vips\", \"seed\": 9, \"variant\": \"irq-x4\", "
        "\"irq_scale\": 4.0, \"workers\": 2, \"governor\": true}",
        cfg, spec, error))
        << error;
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_EQ(spec.variant, "irq-x4");
    EXPECT_DOUBLE_EQ(spec.interruptScale, 4.0);
    EXPECT_EQ(spec.workers, 2u);
    EXPECT_TRUE(spec.governor);
}

TEST(Ingest, BadLinesReportTheLineNumber)
{
    campaign::CampaignConfig cfg = identity();
    std::vector<campaign::JobSpec> specs;
    std::string error;
    EXPECT_FALSE(parseJobBatch(
        "{\"app\": \"raytrace\"}\n{\"seed\": 3}\n", cfg, specs,
        error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;

    EXPECT_FALSE(parseJobBatch("{\"app\": \"raytrace\"}\nnot json\n",
                               cfg, specs, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Ingest, SpoolListingIsSortedAndSkipsTempFiles)
{
    namespace fs = std::filesystem;
    const std::string dir = tempPath("spool");
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::ofstream(dir + "/b.ndjson") << "{}";
    std::ofstream(dir + "/a.ndjson") << "{}";
    std::ofstream(dir + "/c.ndjson.tmp") << "{}";
    std::vector<std::string> files = listSpoolFiles(dir);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], "a.ndjson");
    EXPECT_EQ(files[1], "b.ndjson");
    fs::remove_all(dir);

    EXPECT_TRUE(listSpoolFiles(tempPath("no_such_dir")).empty());
}
