/**
 * @file
 * Unit tests for the blocking synchronization tables.
 */

#include <gtest/gtest.h>

#include "sync/primitives.hh"

using namespace txrace;
using namespace txrace::sync;

TEST(Mutex, FreeLockAcquires)
{
    SyncTables s;
    EXPECT_TRUE(s.lockTryAcquire(1, 0));
    EXPECT_EQ(s.lockOwner(0), 1u);
}

TEST(Mutex, HeldLockRefuses)
{
    SyncTables s;
    ASSERT_TRUE(s.lockTryAcquire(1, 0));
    EXPECT_FALSE(s.lockTryAcquire(2, 0));
}

TEST(Mutex, ReleaseWithoutWaitersFreesLock)
{
    SyncTables s;
    ASSERT_TRUE(s.lockTryAcquire(1, 0));
    EXPECT_EQ(s.lockRelease(1, 0), kNoTid);
    EXPECT_EQ(s.lockOwner(0), kNoTid);
    EXPECT_TRUE(s.lockTryAcquire(2, 0));
}

TEST(Mutex, OwnershipTransfersFifo)
{
    SyncTables s;
    ASSERT_TRUE(s.lockTryAcquire(1, 0));
    s.lockEnqueue(2, 0);
    s.lockEnqueue(3, 0);
    EXPECT_EQ(s.lockRelease(1, 0), 2u);
    EXPECT_EQ(s.lockOwner(0), 2u);
    EXPECT_EQ(s.lockRelease(2, 0), 3u);
    EXPECT_EQ(s.lockRelease(3, 0), kNoTid);
}

TEST(Mutex, IndependentLockIds)
{
    SyncTables s;
    EXPECT_TRUE(s.lockTryAcquire(1, 10));
    EXPECT_TRUE(s.lockTryAcquire(2, 20));
    EXPECT_EQ(s.lockOwner(10), 1u);
    EXPECT_EQ(s.lockOwner(20), 2u);
}

TEST(MutexDeathTest, ReacquireByOwnerPanics)
{
    SyncTables s;
    ASSERT_TRUE(s.lockTryAcquire(1, 0));
    EXPECT_DEATH(s.lockTryAcquire(1, 0), "re-acquiring");
}

TEST(MutexDeathTest, ReleaseByNonOwnerPanics)
{
    SyncTables s;
    ASSERT_TRUE(s.lockTryAcquire(1, 0));
    EXPECT_DEATH(s.lockRelease(2, 0), "does not hold");
}

TEST(MutexDeathTest, ReleaseOfFreeLockPanics)
{
    SyncTables s;
    EXPECT_DEATH(s.lockRelease(1, 0), "does not hold");
}

TEST(Cond, WaitOnEmptyBlocks)
{
    SyncTables s;
    EXPECT_FALSE(s.condTryWait(0));
}

TEST(Cond, SignalBanksWithoutWaiter)
{
    SyncTables s;
    EXPECT_EQ(s.condSignal(0), kNoTid);
    EXPECT_TRUE(s.condTryWait(0));
    EXPECT_FALSE(s.condTryWait(0));  // consumed
}

TEST(Cond, SignalWakesOldestWaiter)
{
    SyncTables s;
    s.condEnqueue(5, 0);
    s.condEnqueue(6, 0);
    EXPECT_EQ(s.condSignal(0), 5u);
    EXPECT_EQ(s.condSignal(0), 6u);
    EXPECT_EQ(s.condSignal(0), kNoTid);  // banked now
}

TEST(Cond, BankedPostsAccumulate)
{
    SyncTables s;
    s.condSignal(0);
    s.condSignal(0);
    s.condSignal(0);
    EXPECT_TRUE(s.condTryWait(0));
    EXPECT_TRUE(s.condTryWait(0));
    EXPECT_TRUE(s.condTryWait(0));
    EXPECT_FALSE(s.condTryWait(0));
}

TEST(Barrier, ReleasesWhenFull)
{
    SyncTables s;
    EXPECT_TRUE(s.barrierArrive(1, 0, 3).empty());
    EXPECT_TRUE(s.barrierArrive(2, 0, 3).empty());
    auto released = s.barrierArrive(3, 0, 3);
    ASSERT_EQ(released.size(), 3u);
    EXPECT_EQ(released[0], 1u);
    EXPECT_EQ(released[1], 2u);
    EXPECT_EQ(released[2], 3u);
}

TEST(Barrier, ResetsAfterRelease)
{
    SyncTables s;
    s.barrierArrive(1, 0, 2);
    ASSERT_EQ(s.barrierArrive(2, 0, 2).size(), 2u);
    // Second generation works the same way.
    EXPECT_TRUE(s.barrierArrive(2, 0, 2).empty());
    EXPECT_EQ(s.barrierArrive(1, 0, 2).size(), 2u);
}

TEST(Barrier, SingleParticipantReleasesImmediately)
{
    SyncTables s;
    EXPECT_EQ(s.barrierArrive(1, 0, 1).size(), 1u);
}

TEST(BarrierDeathTest, ZeroParticipantsPanics)
{
    SyncTables s;
    EXPECT_DEATH(s.barrierArrive(1, 0, 0), "zero participants");
}

TEST(AnyWaiters, ReflectsAllObjectKinds)
{
    SyncTables s;
    EXPECT_FALSE(s.anyWaiters());

    s.lockTryAcquire(1, 0);
    s.lockEnqueue(2, 0);
    EXPECT_TRUE(s.anyWaiters());
    s.lockRelease(1, 0);
    s.lockRelease(2, 0);
    EXPECT_FALSE(s.anyWaiters());

    s.condEnqueue(3, 1);
    EXPECT_TRUE(s.anyWaiters());
    s.condSignal(1);
    EXPECT_FALSE(s.anyWaiters());

    s.barrierArrive(4, 2, 2);
    EXPECT_TRUE(s.anyWaiters());
    s.barrierArrive(5, 2, 2);
    EXPECT_FALSE(s.anyWaiters());
}
