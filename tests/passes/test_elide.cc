/**
 * @file
 * Unit tests for the static access-elision pipeline (passes/elide.cc):
 * dominance elision with its segment boundaries, read-after-write
 * downgrade, the thread-disjointness (privatization) analysis with its
 * slot-family safety conditions, elision statistics, and the
 * structural guarantee underpinning the soundness contract — elision
 * only ever clears `instrumented` bits, it never changes the
 * instruction stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.hh"
#include "mem/layout.hh"
#include "passes/passes.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::passes;

namespace {

/** The instruction carrying @p tag (asserts it is unique). */
const Instruction &
byTag(const Program &p, const std::string &tag)
{
    const Instruction *found = nullptr;
    for (FuncId f = 0; f < p.numFunctions(); ++f) {
        for (const Instruction &ins : p.function(f).body) {
            if (ins.tag == tag) {
                EXPECT_EQ(found, nullptr) << "duplicate tag " << tag;
                found = &ins;
            }
        }
    }
    EXPECT_NE(found, nullptr) << "tag not found: " << tag;
    return *found;
}

} // namespace

TEST(Elide, DominanceElidesRepeatedAccess)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(x), "first");
    b.compute(1);
    b.load(AddrExpr::absolute(x), "first");  // same expr, op, tag
    b.endFunction();
    Program p = b.build();

    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.dominated, 1u);
    EXPECT_EQ(stats.candidates, 2u);
    EXPECT_EQ(stats.elided(), 1u);

    const auto &body = p.function(0).body;
    EXPECT_TRUE(body[0].instrumented);
    EXPECT_FALSE(body[2].instrumented);
    // The elided access points at its surviving representative so the
    // slow path can attribute races to it.
    EXPECT_EQ(body[2].elisionRep, body[0].id);
}

TEST(Elide, DifferentTagIsNotDominated)
{
    // Distinct source tags are distinct report endpoints: eliding one
    // under the other would change what the developer sees.
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(x), "site A");
    b.load(AddrExpr::absolute(x), "site B");
    b.endFunction();
    Program p = b.build();
    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.dominated, 0u);
}

TEST(Elide, BoundariesResetTheDominanceWindow)
{
    // Sync ops, syscalls, and loop edges end an elision segment: the
    // repeated access after each boundary executes at a different
    // epoch (or in a different slow-path episode) and must stay
    // instrumented.
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(x), "a");
    b.syscall(1);
    b.load(AddrExpr::absolute(x), "a");
    b.lock(0);
    b.load(AddrExpr::absolute(x), "a");
    b.unlock(0);
    b.loop(3, [&] { b.load(AddrExpr::absolute(x), "a"); });
    b.endFunction();
    Program p = b.build();
    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.dominated, 0u);
}

TEST(Elide, RandomAddressesNeverParticipate)
{
    // A randomized address expression resolves differently on every
    // execution of the same static instruction: it can neither be
    // dominated nor serve as a representative.
    ProgramBuilder b;
    Addr t = b.alloc("t", 1024);
    b.beginFunction("main");
    b.load(AddrExpr::randomIn(t, 16, 8), "r");
    b.load(AddrExpr::randomIn(t, 16, 8), "r");
    b.endFunction();
    Program p = b.build();
    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.dominated, 0u);
    EXPECT_EQ(stats.rawDowngraded, 0u);
}

TEST(Elide, RawDowngradeElidesLoadBehindStore)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.store(AddrExpr::absolute(x), "the store");
    b.load(AddrExpr::absolute(x), "the load");
    b.endFunction();
    Program p = b.build();

    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.rawDowngraded, 1u);
    EXPECT_EQ(byTag(p, "the store").instrumented, true);
    EXPECT_FALSE(byTag(p, "the load").instrumented);
    EXPECT_EQ(byTag(p, "the load").elisionRep,
              byTag(p, "the store").id);
}

TEST(Elide, RawDowngradeRespectsItsSwitch)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.store(AddrExpr::absolute(x), "s");
    b.load(AddrExpr::absolute(x), "l");
    b.endFunction();
    Program p = b.build();
    ElideConfig cfg;
    cfg.rawDowngrade = false;
    ElisionStats stats = elide(p, cfg);
    EXPECT_EQ(stats.rawDowngraded, 0u);
    EXPECT_TRUE(byTag(p, "l").instrumented);
}

TEST(Elide, StoreAfterLoadIsNotDowngraded)
{
    // The reverse direction is not sound: the store creates the write
    // entry every later conflicting access is checked against.
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(x), "l");
    b.store(AddrExpr::absolute(x), "s");
    b.endFunction();
    Program p = b.build();
    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.rawDowngraded, 0u);
    EXPECT_TRUE(byTag(p, "s").instrumented);
}

TEST(Elide, PrivatizationElidesDisjointSlotFamily)
{
    // Granule-aligned per-thread slots, every access contained in its
    // own slot: no two threads can ever touch a common granule, so
    // the whole family is elided outright.
    ProgramBuilder b;
    Addr slots = b.alloc("slots", 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::perThread(slots, mem::kGranuleSize), "own");
    b.load(AddrExpr::perThread(slots, mem::kGranuleSize), "own rd");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    // Isolate the pass: with dominance/RAW on, the slot load would be
    // downgraded behind the slot store before privatization runs.
    ElideConfig cfg;
    cfg.dominance = false;
    cfg.rawDowngrade = false;
    ElisionStats stats = elide(p, cfg);
    EXPECT_EQ(stats.privatized, 2u);
    EXPECT_FALSE(byTag(p, "own").instrumented);
    EXPECT_FALSE(byTag(p, "own rd").instrumented);
    // Outright elision, not demotion to a representative.
    EXPECT_EQ(byTag(p, "own").elisionRep, kNoInstr);
}

TEST(Elide, PrivatizationBlockedByOverlappingAbsoluteAccess)
{
    // An absolute store into the slot range overlaps every thread's
    // slot; the family is no longer provably disjoint and every
    // member must stay instrumented.
    ProgramBuilder b;
    Addr slots = b.alloc("slots", 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::perThread(slots, mem::kGranuleSize), "own");
    b.store(AddrExpr::absolute(slots + mem::kGranuleSize),
            "intruder");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.privatized, 0u);
    EXPECT_TRUE(byTag(p, "own").instrumented);
    EXPECT_TRUE(byTag(p, "intruder").instrumented);
}

TEST(Elide, PrivatizationBlockedByUnalignedStride)
{
    // A sub-granule stride packs two threads' slots into one granule
    // (the false-sharing idiom): per-thread footprints share granules
    // and the detector must keep watching them.
    ProgramBuilder b;
    Addr slots = b.alloc("slots", 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::perThread(slots, mem::kGranuleSize / 2),
            "packed");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.privatized, 0u);
    EXPECT_TRUE(byTag(p, "packed").instrumented);
}

TEST(Elide, PrivatizationBlockedByTransitiveSpawning)
{
    // Thread creation outside the entry function defeats the static
    // thread bound; without a bound the footprint intervals are
    // unbounded and the pass must stand down entirely.
    ProgramBuilder b;
    Addr slots = b.alloc("slots", 16 * 64, 64);
    FuncId leaf = b.beginFunction("leaf");
    b.store(AddrExpr::perThread(slots, mem::kGranuleSize), "own");
    b.endFunction();
    b.beginFunction("mid");
    b.spawn(leaf, 2);
    b.joinAll();
    b.endFunction();
    b.beginFunction("main");
    b.spawn(1, 2);  // spawns "mid", which spawns again
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    ElisionStats stats = elide(p);
    EXPECT_EQ(stats.privatized, 0u);
    EXPECT_TRUE(byTag(p, "own").instrumented);
}

TEST(Elide, DisabledPipelineIsIdentity)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.store(AddrExpr::absolute(x), "s");
    b.load(AddrExpr::absolute(x), "l");
    b.load(AddrExpr::absolute(x), "l");
    b.endFunction();
    Program p = b.build();
    ElideConfig cfg;
    cfg.enabled = false;
    ElisionStats stats = elide(p, cfg);
    EXPECT_EQ(stats.candidates, 0u);
    EXPECT_EQ(stats.elided(), 0u);
    for (const Instruction &ins : p.function(0).body)
        if (isMemAccess(ins.op))
            EXPECT_TRUE(ins.instrumented);
}

TEST(Elide, PerFunctionStatsNameTheFunctions)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    FuncId worker = b.beginFunction("worker");
    b.load(AddrExpr::absolute(x), "w");
    b.load(AddrExpr::absolute(x), "w");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.load(AddrExpr::absolute(x), "m");
    b.load(AddrExpr::absolute(x), "m");
    b.endFunction();
    Program p = b.build();
    ElisionStats stats = elide(p);
    ASSERT_EQ(stats.perFunction.size(), 2u);
    EXPECT_EQ(stats.perFunction[0].first, "worker");
    EXPECT_EQ(stats.perFunction[0].second, 1u);
    EXPECT_EQ(stats.perFunction[1].first, "main");
    EXPECT_EQ(stats.perFunction[1].second, 1u);
}

// --- The structural half of the soundness contract ---

class ElideStructure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ElideStructure, OnlyInstrumentedBitsChange)
{
    // preparedForTxRace with and without elision must produce
    // position-for-position identical instruction streams — same ids,
    // opcodes, addresses, region structure — differing only in
    // `instrumented`. This is what makes elided and non-elided runs
    // schedule-identical (same steps, same RNG draws), which the
    // behavioral differential test then builds on.
    workloads::WorkloadParams params;
    params.calibrate = false;
    workloads::AppModel app = workloads::makeApp(GetParam(), params);

    PassConfig on;
    PassConfig off;
    off.elide.enabled = false;
    ElisionStats stats;
    ir::Program with = preparedForTxRace(app.program, on, &stats);
    ir::Program without = preparedForTxRace(app.program, off);

    ASSERT_EQ(with.numFunctions(), without.numFunctions());
    uint64_t demoted = 0;
    for (FuncId f = 0; f < with.numFunctions(); ++f) {
        const auto &fa = with.function(f).body;
        const auto &fb = without.function(f).body;
        ASSERT_EQ(fa.size(), fb.size()) << "function " << f;
        for (size_t i = 0; i < fa.size(); ++i) {
            ASSERT_EQ(fa[i].id, fb[i].id);
            ASSERT_EQ(fa[i].op, fb[i].op);
            ASSERT_TRUE(fa[i].addr == fb[i].addr);
            ASSERT_EQ(fa[i].tag, fb[i].tag);
            // Elision may only clear the bit, never set it.
            if (fa[i].instrumented)
                ASSERT_TRUE(fb[i].instrumented);
            else if (fb[i].instrumented)
                ++demoted;
        }
    }
    EXPECT_EQ(demoted, stats.elided());
}

INSTANTIATE_TEST_SUITE_P(Workloads, ElideStructure,
                         ::testing::ValuesIn(workloads::appNames()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });
