/**
 * @file
 * Unit and property tests for the transactionalization pass:
 * boundary placement, the small-region and uninstrumented-region
 * optimizations, loop-cut insertion, wrap-around safety (regression
 * for a real bug), and the structural post-condition over random
 * programs and all bundled workloads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.hh"
#include "ir/printer.hh"
#include "passes/passes.hh"
#include "support/rng.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::passes;

namespace {

std::vector<OpCode>
opcodes(const Program &p, FuncId f)
{
    std::vector<OpCode> out;
    for (const auto &ins : p.function(f).body)
        out.push_back(ins.op);
    return out;
}

/** A block of work big enough to stay above the K threshold. */
void
bigWork(ProgramBuilder &b, Addr base)
{
    for (int i = 0; i < 6; ++i)
        b.load(AddrExpr::absolute(base + 8 * i));
}

} // namespace

TEST(Transactionalize, WrapsPlainFunction)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    auto ops = opcodes(p, 0);
    EXPECT_EQ(ops.front(), OpCode::TxBegin);
    EXPECT_EQ(ops.back(), OpCode::TxEnd);
    EXPECT_EQ(p.checkTransactionalForm(), "");
}

TEST(Transactionalize, CutsAroundSyncOps)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.lock(0);
    bigWork(b, x);
    b.unlock(0);
    bigWork(b, x);
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    // Sync ops must be outside transactions.
    bool in_tx = false;
    for (const auto &ins : p.function(0).body) {
        if (ins.op == OpCode::TxBegin)
            in_tx = true;
        if (ins.op == OpCode::TxEnd)
            in_tx = false;
        if (isSyncOp(ins.op) || ins.op == OpCode::Syscall) {
            EXPECT_FALSE(in_tx);
        }
    }
    EXPECT_EQ(p.checkTransactionalForm(), "");
}

TEST(Transactionalize, CutsAroundSyscalls)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.syscall(1);
    bigWork(b, x);
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    size_t begins = 0, ends = 0;
    for (const auto &ins : p.function(0).body) {
        begins += ins.op == OpCode::TxBegin;
        ends += ins.op == OpCode::TxEnd;
    }
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
    EXPECT_EQ(p.checkTransactionalForm(), "");
}

TEST(Transactionalize, RemovesEmptyRegionBetweenAdjacentSyncs)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.lock(0);
    b.unlock(0);  // nothing in the critical section
    bigWork(b, x);
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    for (size_t i = 0; i + 1 < p.function(0).body.size(); ++i) {
        bool empty_pair =
            p.function(0).body[i].op == OpCode::TxBegin &&
            p.function(0).body[i + 1].op == OpCode::TxEnd;
        EXPECT_FALSE(empty_pair);
    }
}

TEST(Transactionalize, SmallRegionForcedSlow)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(x));  // 1 access < K=5
    b.compute(100);
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    const auto &body = p.function(0).body;
    ASSERT_EQ(body.front().op, OpCode::TxBegin);
    EXPECT_EQ(body.front().arg1, 1u);  // slow-forced
}

TEST(Transactionalize, LoopMultiplierLiftsRegionAboveK)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.loop(10, [&] { b.load(AddrExpr::absolute(x)); });  // est = 10
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    EXPECT_EQ(p.function(0).body.front().arg1, 0u);  // fast
}

TEST(Transactionalize, UninstrumentedRegionNotTransactionalized)
{
    ProgramBuilder b;
    Addr priv = b.allocPrivate("p", 256);
    b.beginFunction("main");
    for (int i = 0; i < 8; ++i)
        b.load(AddrExpr::absolute(priv + 8 * i));
    b.endFunction();
    Program p = b.build();
    privatize(p);
    transactionalize(p);
    for (const auto &ins : p.function(0).body) {
        EXPECT_NE(ins.op, OpCode::TxBegin);
        EXPECT_NE(ins.op, OpCode::TxEnd);
    }
}

TEST(Transactionalize, LoopCutInsertedInTransactionalLoops)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.loop(20, [&] { b.load(AddrExpr::absolute(x)); });
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    const auto &body = p.function(0).body;
    // A LoopCut sits right before the LoopEnd, naming the LoopBegin.
    bool found = false;
    for (size_t i = 0; i + 1 < body.size(); ++i) {
        if (body[i].op == OpCode::LoopCut) {
            EXPECT_EQ(body[i + 1].op, OpCode::LoopEnd);
            uint32_t begin_pc =
                static_cast<uint32_t>(body[i + 1].match);
            EXPECT_EQ(body[i].arg0, body[begin_pc].id);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Transactionalize, NoLoopCutWhenDisabled)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.loop(20, [&] { b.load(AddrExpr::absolute(x)); });
    b.endFunction();
    Program p = b.build();
    PassConfig cfg;
    cfg.insertLoopCuts = false;
    transactionalize(p, cfg);
    for (const auto &ins : p.function(0).body)
        EXPECT_NE(ins.op, OpCode::LoopCut);
}

TEST(Transactionalize, NoLoopCutForUninstrumentedLoops)
{
    ProgramBuilder b;
    Addr priv = b.allocPrivate("p", 64);
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.loop(20, [&] { b.loadPrivate(AddrExpr::absolute(priv)); });
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    for (const auto &ins : p.function(0).body)
        EXPECT_NE(ins.op, OpCode::LoopCut);
}

TEST(Transactionalize, WrapAroundTxEndIsPreserved)
{
    // Regression: a loop whose body ends a region mid-way (sync in
    // the body). The TxEnd at the top of the body also terminates the
    // region entered over the back edge and must survive the
    // empty-region cleanup.
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    b.loop(5, [&] {
        b.lock(0);
        bigWork(b, x);
        b.unlock(0);
        bigWork(b, x);  // executed between iterations' regions
    });
    b.endFunction();
    Program p = b.build();
    transactionalize(p);
    EXPECT_EQ(p.checkTransactionalForm(), "");
}

TEST(Transactionalize, PreservesInstructionPayloads)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.store(AddrExpr::absolute(x), "tagged store");
    b.compute(77);
    b.endFunction();
    Program p = b.build();
    Program copy = p;
    transactionalize(copy);
    bool found_store = false, found_compute = false;
    for (const auto &ins : copy.function(0).body) {
        if (ins.op == OpCode::Store && ins.tag == "tagged store")
            found_store = true;
        if (ins.op == OpCode::Compute && ins.arg0 == 77)
            found_compute = true;
    }
    EXPECT_TRUE(found_store);
    EXPECT_TRUE(found_compute);
}

TEST(Transactionalize, OriginalIdsStable)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 64);
    b.beginFunction("main");
    bigWork(b, x);
    b.endFunction();
    Program p = b.build();
    InstrId first_load = p.function(0).body[0].id;
    transactionalize(p);
    // The same static load keeps its id (race reports stay valid).
    EXPECT_EQ(p.instr(first_load).op, OpCode::Load);
}

// ---- property: post-condition over random programs -----------------

class TransactionalizeProperty
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TransactionalizeProperty, RandomProgramsSatisfyPostCondition)
{
    Rng rng(GetParam());
    for (int round = 0; round < 10; ++round) {
        ProgramBuilder b;
        Addr base = b.alloc("data", 4096);
        b.beginFunction("w");
        int depth = 0;
        size_t len = 10 + rng.below(30);
        for (size_t i = 0; i < len; ++i) {
            switch (rng.below(8)) {
              case 0:
                b.load(AddrExpr::randomIn(base, 64, 8));
                break;
              case 1:
                b.store(AddrExpr::randomIn(base, 64, 8));
                break;
              case 2:
                b.compute(rng.below(10) + 1);
                break;
              case 3:
                b.syscall(1);
                break;
              case 4:
                b.signal(rng.below(2));
                break;
              case 5:
                if (depth < 3) {
                    b.loopBegin(1 + rng.below(5));
                    ++depth;
                }
                break;
              case 6:
                if (depth > 0) {
                    b.loopEnd();
                    --depth;
                }
                break;
              default:
                b.loadPrivate(AddrExpr::randomIn(base, 64, 8));
                break;
            }
        }
        while (depth-- > 0)
            b.loopEnd();
        b.endFunction();
        Program p = b.build();
        transactionalize(p);  // panics internally if malformed
        EXPECT_EQ(p.checkTransactionalForm(), "");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransactionalizeProperty,
                         ::testing::Range<uint64_t>(1, 11));

TEST(Transactionalize, AllWorkloadsSatisfyPostCondition)
{
    for (const std::string &name : workloads::appNames()) {
        for (uint32_t workers : {2u, 4u, 8u}) {
            workloads::WorkloadParams params;
            params.nWorkers = workers;
            params.calibrate = false;
            workloads::AppModel app = workloads::makeApp(name, params);
            Program prepared = preparedForTxRace(app.program);
            EXPECT_EQ(prepared.checkTransactionalForm(), "")
                << name << " with " << workers << " workers";
        }
    }
}
