/**
 * @file
 * Unit tests for the privatization pass (TSan static-elision stand-in).
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "passes/passes.hh"

using namespace txrace;
using namespace txrace::ir;

TEST(Privatize, ClearsAccessesInsidePrivateRanges)
{
    ProgramBuilder b;
    Addr priv = b.allocPrivate("priv", 256);
    Addr shared = b.alloc("shared", 256);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(priv));
    b.load(AddrExpr::absolute(priv + 248));
    b.load(AddrExpr::absolute(shared));
    b.store(AddrExpr::perThread(priv, 8));
    b.endFunction();
    Program p = b.build();

    passes::privatize(p);
    const auto &body = p.function(0).body;
    EXPECT_FALSE(body[0].instrumented);
    EXPECT_FALSE(body[1].instrumented);
    EXPECT_TRUE(body[2].instrumented);
    EXPECT_FALSE(body[3].instrumented);
}

TEST(Privatize, NoRangesIsANoOp)
{
    ProgramBuilder b;
    Addr shared = b.alloc("shared", 64);
    b.beginFunction("main");
    b.load(AddrExpr::absolute(shared));
    b.endFunction();
    Program p = b.build();
    passes::privatize(p);
    EXPECT_TRUE(p.function(0).body[0].instrumented);
}

TEST(Privatize, DoesNotTouchNonMemoryOps)
{
    ProgramBuilder b;
    b.allocPrivate("priv", 64);
    b.beginFunction("main");
    b.compute(3);
    b.syscall(1);
    b.endFunction();
    Program p = b.build();
    passes::privatize(p);  // must not crash or alter anything
    EXPECT_EQ(p.function(0).body.size(), 2u);
}

TEST(Privatize, AlreadyUninstrumentedStaysCleared)
{
    ProgramBuilder b;
    Addr shared = b.alloc("shared", 64);
    b.beginFunction("main");
    b.loadPrivate(AddrExpr::absolute(shared));
    b.endFunction();
    Program p = b.build();
    passes::privatize(p);
    EXPECT_FALSE(p.function(0).body[0].instrumented);
}

TEST(PrivatizeDeathTest, RequiresFinalizedProgram)
{
    Program p;
    Function fn;
    fn.name = "f";
    p.addFunction(std::move(fn));
    EXPECT_EXIT(passes::privatize(p), testing::ExitedWithCode(1),
                "not finalized");
}
