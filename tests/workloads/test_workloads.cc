/**
 * @file
 * Tests of the application models: every app builds and validates at
 * each evaluated thread count, the TSan baseline detects exactly the
 * planted races, TxRace never reports a race TSan does not (the
 * completeness property on realistic programs), the calibration hits
 * the paper's TSan overhead, and the expected miss patterns
 * (initialization idiom) hold.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::workloads;

namespace {

core::RunConfig
configFor(const AppModel &app, core::RunMode mode, uint64_t seed = 1)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine = app.machine;
    cfg.machine.seed = seed;
    return cfg;
}

} // namespace

TEST(Workloads, RegistryHasFourteenApps)
{
    EXPECT_EQ(appNames().size(), 14u);
    EXPECT_EQ(appNames().front(), "blackscholes");
    EXPECT_EQ(appNames().back(), "apache");
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeApp("quake3"), testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(WorkloadsDeathTest, NeedsTwoWorkers)
{
    WorkloadParams params;
    params.nWorkers = 1;
    EXPECT_EXIT(makeApp("vips", params), testing::ExitedWithCode(1),
                "two workers");
}

class PerApp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PerApp, BuildsAtEveryThreadCount)
{
    for (uint32_t workers : {2u, 4u, 8u}) {
        WorkloadParams params;
        params.nWorkers = workers;
        params.calibrate = false;
        AppModel app = makeApp(GetParam(), params);
        EXPECT_TRUE(app.program.finalized());
        EXPECT_GT(app.program.numInstructions(), 0u);
        EXPECT_EQ(app.name, GetParam());
    }
}

TEST_P(PerApp, TSanFindsExactlyThePlantedRaces)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp(GetParam(), params);
    core::RunResult tsan = core::runProgram(
        app.program, configFor(app, core::RunMode::TSan));
    EXPECT_EQ(tsan.races.count(), app.plantedRaces) << app.name;
}

TEST_P(PerApp, TxRaceIsCompleteAndSubsetOfTSan)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp(GetParam(), params);
    core::RunResult tsan = core::runProgram(
        app.program, configFor(app, core::RunMode::TSan));
    core::RunResult txr = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceProfLoopcut));
    // Every TxRace report appears in the happens-before ground truth:
    // no false positives, despite all the false-sharing conflicts.
    EXPECT_EQ(txr.races.intersectCount(tsan.races), txr.races.count())
        << app.name;
}

TEST_P(PerApp, TxRaceIsFasterThanTSan)
{
    WorkloadParams params;
    AppModel app = makeApp(GetParam(), params);  // calibrated
    core::RunResult native = core::runProgram(
        app.program, configFor(app, core::RunMode::Native));
    core::RunResult tsan = core::runProgram(
        app.program, configFor(app, core::RunMode::TSan));
    core::RunResult txr = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceProfLoopcut));
    EXPECT_LE(txr.overheadVs(native), tsan.overheadVs(native) * 1.05)
        << app.name;
}

TEST_P(PerApp, CalibrationApproximatesPaperTSanOverhead)
{
    WorkloadParams params;
    AppModel app = makeApp(GetParam(), params);
    core::RunResult native = core::runProgram(
        app.program, configFor(app, core::RunMode::Native));
    core::RunResult tsan = core::runProgram(
        app.program, configFor(app, core::RunMode::TSan));
    double measured = tsan.overheadVs(native);
    EXPECT_NEAR(measured, app.paper.tsanOverhead,
                app.paper.tsanOverhead * 0.15 + 0.3)
        << app.name;
}

TEST_P(PerApp, DeterministicForFixedSeed)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp(GetParam(), params);
    core::RunResult a = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceDynLoopcut, 3));
    core::RunResult b = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceDynLoopcut, 3));
    EXPECT_EQ(a.totalCost, b.totalCost);
    EXPECT_EQ(a.races.keys(), b.races.keys());
}

INSTANTIATE_TEST_SUITE_P(
    Apps, PerApp,
    ::testing::ValuesIn(appNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Workloads, InitIdiomRacesMissedByTxRace)
{
    // bodytrack misses its two initialization-idiom races; facesim
    // misses one (paper §8.3). Whether the init write and the late
    // reads land in overlapping transactions is schedule luck, so the
    // seed is pinned to one verified to produce the paper's outcome
    // (other seeds may catch them — see VipsFindsDifferentSubsetsPerSeed
    // for the flip side).
    for (const char *name : {"bodytrack", "facesim"}) {
        WorkloadParams params;
        params.calibrate = false;
        AppModel app = makeApp(name, params);
        ASSERT_GT(app.initIdiomRaces, 0u);
        core::RunResult txr = core::runProgram(
            app.program,
            configFor(app, core::RunMode::TxRaceProfLoopcut, 2));
        EXPECT_LE(txr.races.count(),
                  app.plantedRaces - app.initIdiomRaces)
            << name;
    }
}

TEST(Workloads, VipsFindsDifferentSubsetsPerSeed)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp("vips", params);
    detector::RaceSet seen;
    size_t first_run = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        core::RunResult txr = core::runProgram(
            app.program,
            configFor(app, core::RunMode::TxRaceProfLoopcut, seed));
        if (seed == 1)
            first_run = txr.races.count();
        seen.merge(txr.races);
        // Subset per run, as in the paper.
        EXPECT_LT(txr.races.count(), app.plantedRaces);
        EXPECT_GT(txr.races.count(), app.plantedRaces / 3);
    }
    // The union across seeds strictly grows (schedule sensitivity).
    EXPECT_GT(seen.count(), first_run);
}

TEST(Workloads, FreqmineBenefitsFromSingleThreadElision)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp("freqmine", params);
    core::RunResult txr = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceProfLoopcut));
    EXPECT_GT(txr.stats.get("txrace.elided"), 0u);
}

TEST(Workloads, BodytrackUnknownAbortsDominate)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp("bodytrack", params);
    core::RunResult txr = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceProfLoopcut));
    EXPECT_GT(txr.stats.get("tx.abort.unknown"),
              txr.stats.get("tx.abort.conflict"));
    EXPECT_GT(txr.stats.get("tx.abort.unknown"),
              txr.stats.get("tx.abort.capacity"));
}

TEST(Workloads, StreamclusterConflictsWithoutRacesBeyondPlanted)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp("streamcluster", params);
    core::RunResult txr = core::runProgram(
        app.program, configFor(app, core::RunMode::TxRaceProfLoopcut));
    // Lots of false-sharing conflicts...
    EXPECT_GT(txr.stats.get("tx.abort.conflict"), 20u);
    // ...but never more races than actually exist.
    EXPECT_LE(txr.races.count(), app.plantedRaces);
}

TEST(Workloads, ScaleGrowsWork)
{
    WorkloadParams small, big;
    small.calibrate = big.calibrate = false;
    big.scale = 3;
    AppModel a = makeApp("swaptions", small);
    AppModel b = makeApp("swaptions", big);
    core::RunResult ra = core::runProgram(
        a.program, configFor(a, core::RunMode::Native));
    core::RunResult rb = core::runProgram(
        b.program, configFor(b, core::RunMode::Native));
    EXPECT_GT(rb.totalCost, 2 * ra.totalCost);
}
