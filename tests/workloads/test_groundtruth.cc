/**
 * @file
 * Tests of the ground-truth race annotations: the label tables the
 * campaign scores precision/recall against. The load-bearing
 * property is exactness — for every app, a full-detection TSan run's
 * races map one-to-one onto the annotation labels, so a campaign
 * score of 1.0/1.0 means "found everything, invented nothing" and
 * not "the table happens to be the right size".
 */

#include <gtest/gtest.h>

#include <set>

#include "core/driver.hh"
#include "core/fingerprint.hh"
#include "workloads/patterns.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::workloads;

class GroundTruthPerApp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GroundTruthPerApp, AnnotationCountsMatchPlantedRaces)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp(GetParam(), params);
    EXPECT_EQ(app.groundTruth.size(), app.plantedRaces) << app.name;
    size_t init_idiom = 0;
    for (const RaceLabel &label : app.groundTruth)
        init_idiom += label.initIdiom ? 1 : 0;
    EXPECT_EQ(init_idiom, app.initIdiomRaces) << app.name;
}

TEST_P(GroundTruthPerApp, LabelsAreDistinct)
{
    std::set<std::string> keys;
    for (const RaceLabel &label : groundTruthRaces(GetParam()))
        EXPECT_TRUE(
            keys.insert(core::raceLabelKey(label.a, label.b)).second)
            << GetParam() << ": duplicate annotation " << label.a
            << " / " << label.b;
}

TEST_P(GroundTruthPerApp, TSanRacesMapExactlyOntoAnnotations)
{
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp(GetParam(), params);

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TSan;
    cfg.machine = app.machine;
    cfg.machine.seed = 1;
    core::RunResult tsan = core::runProgram(app.program, cfg);

    std::set<std::string> expected;
    for (const RaceLabel &label : app.groundTruth)
        expected.insert(core::raceLabelKey(label.a, label.b));

    std::set<std::string> detected;
    for (const auto &[sig, race] :
         core::fingerprintedRaces(app.program, tsan.races))
        detected.insert(sig.label);

    EXPECT_EQ(detected, expected) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, GroundTruthPerApp,
                         ::testing::ValuesIn(appNames()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(GroundTruthPatterns, RacyPatternsAreAnnotated)
{
    for (const std::string &name : patternNames()) {
        Pattern pattern = makePattern(name);
        EXPECT_EQ(pattern.groundTruth.size(), pattern.trueRaces)
            << name;
    }
}

TEST(GroundTruthPatterns, TSanMatchesPatternAnnotations)
{
    for (const std::string &name : patternNames()) {
        Pattern pattern = makePattern(name);
        if (pattern.groundTruth.empty())
            continue;

        core::RunConfig cfg;
        cfg.mode = core::RunMode::TSan;
        cfg.machine.seed = 1;
        core::RunResult tsan =
            core::runProgram(pattern.program, cfg);

        std::set<std::string> expected;
        for (const RaceLabel &label : pattern.groundTruth)
            expected.insert(core::raceLabelKey(label.a, label.b));
        std::set<std::string> detected;
        for (const auto &[sig, race] :
             core::fingerprintedRaces(pattern.program, tsan.races))
            detected.insert(sig.label);
        EXPECT_EQ(detected, expected) << name;
    }
}

TEST(GroundTruthDeathTest, UnknownAppIsFatal)
{
    EXPECT_EXIT(groundTruthRaces("quake3"),
                testing::ExitedWithCode(1), "unknown workload");
}
