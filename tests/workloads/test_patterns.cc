/**
 * @file
 * The detector validation matrix: every cataloged concurrency-bug
 * pattern is run under TSan, TxRace, and Eraser, and the observed
 * outcome must match the documented expectation — including the
 * documented misses and false alarms, which are the interesting rows.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "workloads/patterns.hh"

using namespace txrace;
using namespace txrace::workloads;

namespace {

core::RunResult
runPattern(const Pattern &pattern, core::RunMode mode, uint64_t seed)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine.seed = seed;
    cfg.machine.interruptPerStep = 0.0;
    return core::runProgram(pattern.program, cfg);
}

void
checkExpectation(const Pattern &pattern, Expectation expected,
                 const core::RunResult &r, const char *tool)
{
    switch (expected) {
      case Expectation::Detects:
        EXPECT_GE(r.races.count(), 1u)
            << pattern.name << " under " << tool;
        break;
      case Expectation::Misses:
      case Expectation::Silent:
        EXPECT_EQ(r.races.count(), 0u)
            << pattern.name << " under " << tool;
        break;
      case Expectation::FalseAlarm:
        EXPECT_GE(r.races.count(), 1u)
            << pattern.name << " under " << tool
            << " (expected a false alarm)";
        break;
    }
}

} // namespace

TEST(Patterns, CatalogIsNonTrivial)
{
    auto catalog = buildPatternCatalog();
    EXPECT_GE(catalog.size(), 8u);
    for (const Pattern &p : catalog) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_FALSE(p.description.empty());
        EXPECT_TRUE(p.program.finalized());
    }
    EXPECT_EQ(patternNames().size(), catalog.size());
}

TEST(Patterns, MakePatternByName)
{
    Pattern p = makePattern("unlocked-counter");
    EXPECT_EQ(p.trueRaces, 1u);
}

TEST(PatternsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makePattern("heisenbug"), testing::ExitedWithCode(1),
                "unknown pattern");
}

class PatternMatrix : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PatternMatrix, TSanMatchesGroundTruth)
{
    Pattern p = makePattern(GetParam());
    core::RunResult r = runPattern(p, core::RunMode::TSan, 1);
    checkExpectation(p, p.tsan, r, "TSan");
    // TSan is the happens-before ground truth: its count equals the
    // documented number of true races exactly.
    EXPECT_EQ(r.races.count(), p.trueRaces) << p.name;
}

TEST_P(PatternMatrix, TxRaceMatchesExpectation)
{
    Pattern p = makePattern(GetParam());
    core::RunResult r =
        runPattern(p, core::RunMode::TxRaceProfLoopcut, 1);
    checkExpectation(p, p.txrace, r, "TxRace");
    // And TxRace never invents races: subset of the ground truth.
    core::RunResult tsan = runPattern(p, core::RunMode::TSan, 1);
    EXPECT_EQ(r.races.intersectCount(tsan.races), r.races.count())
        << p.name;
}

TEST_P(PatternMatrix, EraserMatchesExpectation)
{
    Pattern p = makePattern(GetParam());
    core::RunResult r = runPattern(p, core::RunMode::Eraser, 1);
    checkExpectation(p, p.eraser, r, "Eraser");
}

TEST_P(PatternMatrix, RaceTmMatchesExpectation)
{
    Pattern p = makePattern(GetParam());
    core::RunResult r = runPattern(p, core::RunMode::RaceTM, 1);
    checkExpectation(p, p.racetm, r, "RaceTM");
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, PatternMatrix, ::testing::ValuesIn(patternNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Patterns, ExpectationsStableAcrossSeeds)
{
    // The documented outcomes are not one-seed flukes: check the
    // schedule-sensitive rows on several seeds.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Pattern pub = makePattern("unsafe-publication");
        EXPECT_EQ(runPattern(pub, core::RunMode::TxRaceProfLoopcut,
                             seed)
                      .races.count(),
                  0u)
            << "seed " << seed;
        Pattern spin = makePattern("racy-flag-spin");
        EXPECT_GE(runPattern(spin, core::RunMode::TxRaceProfLoopcut,
                             seed)
                      .races.count(),
                  1u)
            << "seed " << seed;
    }
}
