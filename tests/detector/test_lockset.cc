/**
 * @file
 * Unit tests for the Eraser-style lockset detector: the state
 * machine, candidate-set refinement, the initialization allowance,
 * and the characteristic false positive on non-mutex synchronization
 * that distinguishes it from happens-before detection.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "detector/lockset.hh"
#include "ir/builder.hh"

using namespace txrace;
using namespace txrace::detector;

TEST(Lockset, HeldSetTracksAcquireRelease)
{
    LocksetDetector d;
    d.lockAcquire(1, 10);
    d.lockAcquire(1, 11);
    EXPECT_EQ(d.heldBy(1).size(), 2u);
    d.lockRelease(1, 10);
    EXPECT_EQ(d.heldBy(1).count(11), 1u);
    EXPECT_EQ(d.heldBy(1).count(10), 0u);
    EXPECT_TRUE(d.heldBy(2).empty());
}

TEST(Lockset, ThreadLocalDataNeverWarns)
{
    LocksetDetector d;
    for (int i = 0; i < 10; ++i) {
        d.write(1, 0x40, 1);
        d.read(1, 0x40, 2);
    }
    EXPECT_EQ(d.races().count(), 0u);
}

TEST(Lockset, ConsistentLockingNeverWarns)
{
    LocksetDetector d;
    for (Tid t = 1; t <= 3; ++t) {
        d.lockAcquire(t, 7);
        d.read(t, 0x40, 10);
        d.write(t, 0x40, 11);
        d.lockRelease(t, 7);
    }
    EXPECT_EQ(d.races().count(), 0u);
}

TEST(Lockset, UnlockedSharedWriteWarnsOnce)
{
    LocksetDetector d;
    d.write(1, 0x40, 10);
    d.write(2, 0x40, 20);  // second thread, no locks: warn
    EXPECT_EQ(d.races().count(), 1u);
    EXPECT_TRUE(d.races().contains(10, 20));
    // Eraser warns once per location.
    d.write(3, 0x40, 30);
    EXPECT_EQ(d.races().count(), 1u);
}

TEST(Lockset, InconsistentLocksWarn)
{
    // The initialization allowance means candidate tracking starts at
    // the second thread's first access, so the inconsistency becomes
    // visible at the third access.
    LocksetDetector d;
    d.lockAcquire(1, 7);
    d.write(1, 0x40, 10);
    d.lockRelease(1, 7);
    d.lockAcquire(2, 8);   // different lock: candidates become {8}
    d.write(2, 0x40, 20);
    d.lockRelease(2, 8);
    EXPECT_EQ(d.races().count(), 0u);
    d.lockAcquire(1, 7);   // {8} ∩ {7} = {}: warn
    d.write(1, 0x40, 11);
    d.lockRelease(1, 7);
    EXPECT_EQ(d.races().count(), 1u);
}

TEST(Lockset, CandidateSetIsIntersection)
{
    LocksetDetector d;
    // Both threads hold {7,8} and {7}: candidate survives as {7}.
    d.lockAcquire(1, 7);
    d.lockAcquire(1, 8);
    d.write(1, 0x40, 10);
    d.lockRelease(1, 8);
    d.lockRelease(1, 7);
    d.lockAcquire(2, 7);
    d.write(2, 0x40, 20);
    d.lockRelease(2, 7);
    EXPECT_EQ(d.races().count(), 0u);
    // A third thread holding only {8} drains it.
    d.lockAcquire(3, 8);
    d.write(3, 0x40, 30);
    EXPECT_EQ(d.races().count(), 1u);
}

TEST(Lockset, InitializationThenReadSharingIsAllowed)
{
    // One thread initializes without locks; others only read: the
    // Shared state never escalates, no warning (Eraser's published
    // refinement).
    LocksetDetector d;
    d.write(1, 0x40, 10);
    d.write(1, 0x40, 10);
    d.read(2, 0x40, 20);
    d.read(3, 0x40, 21);
    EXPECT_EQ(d.races().count(), 0u);
}

TEST(Lockset, WriteAfterReadSharingEscalates)
{
    LocksetDetector d;
    d.write(1, 0x40, 10);
    d.read(2, 0x40, 20);   // Shared
    d.write(2, 0x40, 21);  // SharedModified, no locks anywhere
    EXPECT_EQ(d.races().count(), 1u);
}

TEST(Lockset, GranuleSeparation)
{
    LocksetDetector d;
    d.write(1, 0x40, 10);
    d.write(2, 0x48, 20);  // same line, different granule
    EXPECT_EQ(d.races().count(), 0u);
}

TEST(Lockset, BarrierOrderedSharingIsAFalsePositive)
{
    // The blind spot: Eraser cannot see barrier/condvar ordering.
    // This access pattern is race-free (verified against the
    // happens-before detector below) yet Eraser warns.
    ir::ProgramBuilder b;
    ir::Addr cells = b.alloc("cells", 5 * 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(5, [&] {
        b.store(ir::AddrExpr::perThread(cells, 64), "fill");
        b.barrier(0, 3);
        b.load(ir::AddrExpr::perThread(cells + 64, 64), "consume");
        b.barrier(1, 3);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    ir::Program p = b.build();

    core::RunConfig cfg;
    cfg.machine.seed = 5;
    cfg.mode = core::RunMode::TSan;
    core::RunResult tsan = core::runProgram(p, cfg);
    cfg.mode = core::RunMode::Eraser;
    core::RunResult eraser = core::runProgram(p, cfg);

    EXPECT_EQ(tsan.races.count(), 0u);   // ground truth: race-free
    EXPECT_GE(eraser.races.count(), 1u); // Eraser warns anyway
}

TEST(Lockset, EraserModeRunsViaDriver)
{
    ir::ProgramBuilder b;
    ir::Addr counter = b.alloc("counter", 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] { b.store(ir::AddrExpr::absolute(counter), "c"); });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    ir::Program p = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::Eraser;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_EQ(r.races.count(), 1u);
    EXPECT_GT(r.stats.get("lockset.writes"), 0u);
    EXPECT_EQ(r.stats.get("lockset.warnings"), 1u);

    // Cheaper than the happens-before baseline on the same program.
    cfg.mode = core::RunMode::TSan;
    core::RunResult tsan = core::runProgram(p, cfg);
    EXPECT_LT(r.totalCost, tsan.totalCost);
}

TEST(Lockset, StatsCountAccesses)
{
    LocksetDetector d;
    d.read(1, 0x40, 1);
    d.write(1, 0x48, 2);
    d.write(2, 0x48, 3);
    EXPECT_EQ(d.stats().get("lockset.reads"), 1u);
    EXPECT_EQ(d.stats().get("lockset.writes"), 2u);
}
