/**
 * @file
 * Unit tests for RaceSet: normalization, dedup, merge, recall math.
 */

#include <gtest/gtest.h>

#include "detector/report.hh"

using namespace txrace;
using namespace txrace::detector;

TEST(RaceSet, StartsEmpty)
{
    RaceSet s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(s.all().empty());
}

TEST(RaceSet, RecordsAndNormalizesPair)
{
    RaceSet s;
    s.record(9, 3, RaceKind::WriteWrite, 0x40);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_TRUE(s.contains(3, 9));
    EXPECT_TRUE(s.contains(9, 3));
    Race r = s.all()[0];
    EXPECT_EQ(r.first, 3u);
    EXPECT_EQ(r.second, 9u);
    EXPECT_EQ(r.addr, 0x40u);
    EXPECT_EQ(r.hits, 1u);
}

TEST(RaceSet, DuplicatesFoldIntoHits)
{
    RaceSet s;
    s.record(1, 2, RaceKind::WriteRead, 0x40);
    s.record(2, 1, RaceKind::ReadWrite, 0x80);
    s.record(1, 2, RaceKind::WriteWrite, 0xc0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.all()[0].hits, 3u);
    // First-seen kind and address stick.
    EXPECT_EQ(s.all()[0].kind, RaceKind::WriteRead);
    EXPECT_EQ(s.all()[0].addr, 0x40u);
}

TEST(RaceSet, SelfPairAllowed)
{
    // The same static instruction racing with itself across threads
    // (e.g., canneal's swap store) is a single static race.
    RaceSet s;
    s.record(5, 5, RaceKind::WriteWrite, 0x40);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_TRUE(s.contains(5, 5));
}

TEST(RaceSet, DistinctPairsCounted)
{
    RaceSet s;
    s.record(1, 2, RaceKind::WriteWrite, 0);
    s.record(1, 3, RaceKind::WriteWrite, 0);
    s.record(2, 3, RaceKind::WriteWrite, 0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(RaceSet, MergeAccumulates)
{
    RaceSet a, b;
    a.record(1, 2, RaceKind::WriteWrite, 0);
    b.record(1, 2, RaceKind::WriteWrite, 0);
    b.record(3, 4, RaceKind::WriteRead, 0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.all()[0].hits, 2u);
}

TEST(RaceSet, IntersectCount)
{
    RaceSet tool, reference;
    reference.record(1, 2, RaceKind::WriteWrite, 0);
    reference.record(3, 4, RaceKind::WriteWrite, 0);
    reference.record(5, 6, RaceKind::WriteWrite, 0);
    tool.record(2, 1, RaceKind::WriteWrite, 0);   // hit (normalized)
    tool.record(5, 6, RaceKind::ReadWrite, 0);    // hit
    tool.record(7, 8, RaceKind::WriteWrite, 0);   // not in reference
    EXPECT_EQ(tool.intersectCount(reference), 2u);
    EXPECT_EQ(reference.intersectCount(tool), 2u);
}

TEST(RaceSet, KeysAreSortedPairs)
{
    RaceSet s;
    s.record(9, 3, RaceKind::WriteWrite, 0);
    s.record(1, 2, RaceKind::WriteWrite, 0);
    auto keys = s.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_TRUE(keys.count({1, 2}));
    EXPECT_TRUE(keys.count({3, 9}));
}

TEST(RaceSet, ClearEmpties)
{
    RaceSet s;
    s.record(1, 2, RaceKind::WriteWrite, 0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_FALSE(s.contains(1, 2));
}
