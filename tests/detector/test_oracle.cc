/**
 * @file
 * Property test: the FastTrack detector against an independent
 * happens-before oracle on randomized traces.
 *
 * The oracle builds the happens-before DAG explicitly (program order,
 * release -> later acquire of the same lock, signal -> later wait of
 * the same condvar, create edges) and computes its transitive closure
 * by BFS — no vector clocks involved — then enumerates every racy
 * pair (same granule, at least one write, different threads,
 * unordered both ways).
 *
 * Checked properties, per random trace:
 *  - completeness: every race the detector reports is a race by the
 *    oracle (no false positives, the property TxRace's slow path
 *    relies on);
 *  - per-granule soundness: every granule with an oracle race gets at
 *    least one detector report (FastTrack guarantees at least one
 *    race per racy variable, not every pair).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "detector/fasttrack.hh"
#include "mem/layout.hh"
#include "support/rng.hh"

using namespace txrace;
using namespace txrace::detector;

namespace {

enum class Kind { Read, Write, Acquire, Release, Signal, Wait };

struct Event
{
    Kind kind;
    Tid tid;
    uint64_t object;  ///< granule index, lock id, or cond id
    uint32_t id;      ///< unique event id == instruction id
};

struct Trace
{
    uint32_t nThreads;
    std::vector<Event> events;
};

/** Generate a random legal trace (locks respect discipline, waits
 *  only fire when a post is available). */
Trace
randomTrace(uint64_t seed, uint32_t n_threads, size_t length)
{
    Rng rng(seed);
    Trace trace;
    trace.nThreads = n_threads;
    std::map<uint64_t, Tid> lock_owner;
    std::map<Tid, std::vector<uint64_t>> held;
    std::map<uint64_t, int> cond_posts;
    uint32_t next_id = 1;

    while (trace.events.size() < length) {
        Tid t = 1 + static_cast<Tid>(rng.below(n_threads));
        uint64_t pick = rng.below(10);
        Event e{};
        e.tid = t;
        e.id = next_id;
        if (pick < 4) {
            e.kind = rng.chance(0.5) ? Kind::Read : Kind::Write;
            e.object = rng.below(4);  // few granules: collisions
        } else if (pick < 6) {
            uint64_t lock = rng.below(2);
            if (lock_owner.count(lock)) {
                if (lock_owner[lock] != t)
                    continue;  // would block; skip
                e.kind = Kind::Release;
                e.object = lock;
                lock_owner.erase(lock);
            } else {
                e.kind = Kind::Acquire;
                e.object = lock;
                lock_owner[lock] = t;
            }
        } else if (pick < 8) {
            e.kind = Kind::Signal;
            e.object = rng.below(2);
            ++cond_posts[e.object];
        } else {
            uint64_t cond = rng.below(2);
            if (cond_posts[cond] == 0)
                continue;  // would block; skip
            e.kind = Kind::Wait;
            e.object = cond;
            --cond_posts[cond];
        }
        ++next_id;
        trace.events.push_back(e);
    }
    // Release all held locks so the trace is complete.
    for (auto &[lock, owner] : lock_owner) {
        trace.events.push_back(
            Event{Kind::Release, owner, lock, next_id++});
    }
    return trace;
}

/** All racy pairs according to the explicit-DAG oracle. */
std::set<std::pair<uint32_t, uint32_t>>
oracleRaces(const Trace &trace)
{
    size_t n = trace.events.size();
    std::vector<std::vector<size_t>> succ(n);

    // Program order.
    std::map<Tid, size_t> last_of;
    for (size_t i = 0; i < n; ++i) {
        Tid t = trace.events[i].tid;
        if (last_of.count(t))
            succ[last_of[t]].push_back(i);
        last_of[t] = i;
    }
    // Sync edges (to every later matching consumer: clocks are
    // monotone, so the conservative closure matches the detector).
    for (size_t i = 0; i < n; ++i) {
        const Event &a = trace.events[i];
        for (size_t j = i + 1; j < n; ++j) {
            const Event &b = trace.events[j];
            if (a.kind == Kind::Release && b.kind == Kind::Acquire &&
                a.object == b.object)
                succ[i].push_back(j);
            if (a.kind == Kind::Signal && b.kind == Kind::Wait &&
                a.object == b.object)
                succ[i].push_back(j);
        }
    }
    // Transitive closure by BFS from each node.
    std::vector<std::vector<bool>> reach(n,
                                         std::vector<bool>(n, false));
    for (size_t i = n; i-- > 0;) {
        for (size_t j : succ[i]) {
            reach[i][j] = true;
            for (size_t k = 0; k < n; ++k)
                if (reach[j][k])
                    reach[i][k] = true;
        }
    }

    std::set<std::pair<uint32_t, uint32_t>> races;
    for (size_t i = 0; i < n; ++i) {
        const Event &a = trace.events[i];
        if (a.kind != Kind::Read && a.kind != Kind::Write)
            continue;
        for (size_t j = i + 1; j < n; ++j) {
            const Event &b = trace.events[j];
            if (b.kind != Kind::Read && b.kind != Kind::Write)
                continue;
            if (a.tid == b.tid || a.object != b.object)
                continue;
            if (a.kind == Kind::Read && b.kind == Kind::Read)
                continue;
            if (reach[i][j] || reach[j][i])
                continue;
            races.insert({std::min(a.id, b.id), std::max(a.id, b.id)});
        }
    }
    return races;
}

/** Drive the detector with the same trace. */
HbDetector
runDetector(const Trace &trace)
{
    HbDetector det;
    det.rootThread(0);
    for (Tid t = 1; t <= trace.nThreads; ++t)
        det.threadCreated(0, t);
    for (const Event &e : trace.events) {
        ir::Addr addr = e.object * mem::kGranuleSize + 64;
        switch (e.kind) {
          case Kind::Read:
            det.read(e.tid, addr, e.id);
            break;
          case Kind::Write:
            det.write(e.tid, addr, e.id);
            break;
          case Kind::Acquire:
            det.lockAcquire(e.tid, e.object);
            break;
          case Kind::Release:
            det.lockRelease(e.tid, e.object);
            break;
          case Kind::Signal:
            det.condSignal(e.tid, e.object);
            break;
          case Kind::Wait:
            det.condWait(e.tid, e.object);
            break;
        }
    }
    return det;
}

/** Granules involved in any race of a pair set. */
std::set<uint64_t>
racyGranules(const Trace &trace,
             const std::set<std::pair<uint32_t, uint32_t>> &pairs)
{
    std::map<uint32_t, uint64_t> obj_of;
    for (const Event &e : trace.events)
        if (e.kind == Kind::Read || e.kind == Kind::Write)
            obj_of[e.id] = e.object;
    std::set<uint64_t> out;
    for (const auto &[a, b] : pairs)
        out.insert(obj_of.at(a));
    return out;
}

} // namespace

class OracleProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OracleProperty, DetectorAgreesWithOracle)
{
    for (int round = 0; round < 8; ++round) {
        uint64_t seed = GetParam() * 1000 + static_cast<uint64_t>(round);
        Trace trace = randomTrace(seed, 3, 60);
        auto expected = oracleRaces(trace);
        HbDetector det = runDetector(trace);
        auto reported = det.races().keys();

        // Completeness: no false positives.
        for (const auto &pair : reported) {
            EXPECT_TRUE(expected.count(pair))
                << "false positive (" << pair.first << ","
                << pair.second << ") seed " << seed;
        }
        // Per-granule soundness.
        auto expected_granules = racyGranules(trace, expected);
        auto reported_granules = racyGranules(trace, reported);
        EXPECT_EQ(reported_granules, expected_granules)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProperty,
                         ::testing::Range<uint64_t>(1, 13));
