/**
 * @file
 * Unit and property tests for vector clocks: the join operation must
 * form a lattice (commutative, associative, idempotent), covers()
 * must agree with the component order, and leq must be a partial
 * order. The property tests sweep randomized clocks via TEST_P.
 */

#include <gtest/gtest.h>

#include "detector/vectorclock.hh"
#include "support/rng.hh"

using namespace txrace;
using namespace txrace::detector;

TEST(VectorClock, DefaultIsZero)
{
    VectorClock vc;
    EXPECT_EQ(vc.get(0), 0u);
    EXPECT_EQ(vc.get(100), 0u);
}

TEST(VectorClock, SetGetRoundTrip)
{
    VectorClock vc;
    vc.set(3, 17);
    EXPECT_EQ(vc.get(3), 17u);
    EXPECT_EQ(vc.get(2), 0u);
    EXPECT_EQ(vc.get(4), 0u);
}

TEST(VectorClock, TickIncrements)
{
    VectorClock vc;
    vc.tick(2);
    vc.tick(2);
    EXPECT_EQ(vc.get(2), 2u);
}

TEST(VectorClock, JoinTakesPointwiseMax)
{
    VectorClock a, b;
    a.set(0, 5);
    a.set(1, 1);
    b.set(1, 7);
    b.set(2, 2);
    a.join(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 7u);
    EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, CoversEpoch)
{
    VectorClock vc;
    vc.set(1, 10);
    EXPECT_TRUE(vc.covers(Epoch{1, 10}));
    EXPECT_TRUE(vc.covers(Epoch{1, 9}));
    EXPECT_FALSE(vc.covers(Epoch{1, 11}));
    EXPECT_FALSE(vc.covers(Epoch{2, 1}));
    // The empty epoch (clock 0) is covered by everything.
    EXPECT_TRUE(vc.covers(Epoch{5, 0}));
}

TEST(VectorClock, LeqBasic)
{
    VectorClock a, b;
    a.set(0, 1);
    b.set(0, 2);
    b.set(1, 1);
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, ConcurrentClocksNeitherLeq)
{
    VectorClock a, b;
    a.set(0, 2);
    b.set(1, 2);
    EXPECT_FALSE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros)
{
    VectorClock a, b;
    a.set(0, 1);
    b.set(0, 1);
    b.set(5, 0);
    EXPECT_TRUE(a == b);
}

TEST(VectorClock, EpochOf)
{
    VectorClock vc;
    vc.set(2, 9);
    Epoch e = vc.epochOf(2);
    EXPECT_EQ(e.tid, 2u);
    EXPECT_EQ(e.clock, 9u);
    EXPECT_TRUE(vc.epochOf(7).empty());
}

// --------- randomized lattice-law properties ------------------------

class VectorClockLaws : public ::testing::TestWithParam<uint64_t>
{
  protected:
    VectorClock
    randomClock(Rng &rng)
    {
        VectorClock vc;
        Tid width = static_cast<Tid>(rng.range(1, 6));
        for (Tid t = 0; t < width; ++t)
            vc.set(t, rng.below(20));
        return vc;
    }
};

TEST_P(VectorClockLaws, JoinCommutative)
{
    Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        VectorClock a = randomClock(rng);
        VectorClock b = randomClock(rng);
        VectorClock ab = a;
        ab.join(b);
        VectorClock ba = b;
        ba.join(a);
        EXPECT_TRUE(ab == ba);
    }
}

TEST_P(VectorClockLaws, JoinAssociative)
{
    Rng rng(GetParam() ^ 0x1111);
    for (int i = 0; i < 50; ++i) {
        VectorClock a = randomClock(rng);
        VectorClock b = randomClock(rng);
        VectorClock c = randomClock(rng);
        VectorClock left = a;
        left.join(b);
        left.join(c);
        VectorClock bc = b;
        bc.join(c);
        VectorClock right = a;
        right.join(bc);
        EXPECT_TRUE(left == right);
    }
}

TEST_P(VectorClockLaws, JoinIdempotent)
{
    Rng rng(GetParam() ^ 0x2222);
    for (int i = 0; i < 50; ++i) {
        VectorClock a = randomClock(rng);
        VectorClock aa = a;
        aa.join(a);
        EXPECT_TRUE(aa == a);
    }
}

TEST_P(VectorClockLaws, JoinIsUpperBound)
{
    Rng rng(GetParam() ^ 0x3333);
    for (int i = 0; i < 50; ++i) {
        VectorClock a = randomClock(rng);
        VectorClock b = randomClock(rng);
        VectorClock j = a;
        j.join(b);
        EXPECT_TRUE(a.leq(j));
        EXPECT_TRUE(b.leq(j));
    }
}

TEST_P(VectorClockLaws, LeqAntisymmetricAndTransitive)
{
    Rng rng(GetParam() ^ 0x4444);
    for (int i = 0; i < 50; ++i) {
        VectorClock a = randomClock(rng);
        VectorClock b = randomClock(rng);
        VectorClock c = randomClock(rng);
        if (a.leq(b) && b.leq(a)) {
            EXPECT_TRUE(a == b);
        }
        if (a.leq(b) && b.leq(c)) {
            EXPECT_TRUE(a.leq(c));
        }
        EXPECT_TRUE(a.leq(a));
    }
}

TEST_P(VectorClockLaws, CoversMatchesComponent)
{
    Rng rng(GetParam() ^ 0x5555);
    for (int i = 0; i < 50; ++i) {
        VectorClock a = randomClock(rng);
        Tid t = static_cast<Tid>(rng.below(6));
        uint64_t clk = rng.below(25);
        EXPECT_EQ(a.covers(Epoch{t, clk}), clk <= a.get(t));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockLaws,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
