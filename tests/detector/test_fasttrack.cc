/**
 * @file
 * Unit tests for the FastTrack-style happens-before detector:
 * detection of each race kind, suppression by every synchronization
 * idiom, the Figure 6 scenario (sync tracked while accesses are not
 * checked), and the bounded-shadow eviction mode.
 */

#include <gtest/gtest.h>

#include "detector/fasttrack.hh"

using namespace txrace;
using namespace txrace::detector;

namespace {

/** Two threads below one parent, ready to race. */
HbDetector
twoThreads()
{
    HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    det.threadCreated(0, 2);
    return det;
}

} // namespace

TEST(FastTrack, WriteWriteRace)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.write(2, 0x40, 20);
    ASSERT_EQ(det.races().count(), 1u);
    EXPECT_TRUE(det.races().contains(10, 20));
}

TEST(FastTrack, WriteReadRace)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.read(2, 0x40, 20);
    ASSERT_EQ(det.races().count(), 1u);
    Race r = det.races().all()[0];
    EXPECT_EQ(r.kind, RaceKind::WriteRead);
}

TEST(FastTrack, ReadWriteRace)
{
    HbDetector det = twoThreads();
    det.read(1, 0x40, 10);
    det.write(2, 0x40, 20);
    ASSERT_EQ(det.races().count(), 1u);
    EXPECT_EQ(det.races().all()[0].kind, RaceKind::ReadWrite);
}

TEST(FastTrack, ReadReadIsNotARace)
{
    HbDetector det = twoThreads();
    det.read(1, 0x40, 10);
    det.read(2, 0x40, 20);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, SameThreadSequentialIsNotARace)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.write(1, 0x40, 10);
    det.read(1, 0x40, 11);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, DifferentGranulesDoNotRace)
{
    // Two variables in the same cache line but different granules —
    // the false-sharing case the slow path must NOT report.
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.write(2, 0x48, 20);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, LockOrderSuppressesRace)
{
    HbDetector det = twoThreads();
    det.lockAcquire(1, 7);
    det.write(1, 0x40, 10);
    det.lockRelease(1, 7);
    det.lockAcquire(2, 7);
    det.write(2, 0x40, 20);
    det.lockRelease(2, 7);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, DifferentLocksDoNotOrder)
{
    HbDetector det = twoThreads();
    det.lockAcquire(1, 7);
    det.write(1, 0x40, 10);
    det.lockRelease(1, 7);
    det.lockAcquire(2, 8);
    det.write(2, 0x40, 20);
    det.lockRelease(2, 8);
    EXPECT_EQ(det.races().count(), 1u);
}

TEST(FastTrack, CondSignalWaitOrders)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.condSignal(1, 3);
    det.condWait(2, 3);
    det.write(2, 0x40, 20);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, WaitWithoutMatchingSignalDoesNotOrder)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    // Thread 2 "waits" on a condvar nobody signaled (banked post from
    // elsewhere): no edge from thread 1.
    det.condWait(2, 99);
    det.write(2, 0x40, 20);
    EXPECT_EQ(det.races().count(), 1u);
}

TEST(FastTrack, BarrierOrdersBothDirections)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.barrierRelease({1, 2});
    det.write(2, 0x40, 20);
    det.read(1, 0x48, 11);
    det.write(2, 0x48, 21);  // racy: same epoch-era, no order
    // 0x40 ordered by the barrier; 0x48 (accessed after) races.
    EXPECT_EQ(det.races().count(), 1u);
    EXPECT_TRUE(det.races().contains(11, 21));
}

TEST(FastTrack, CreateOrdersParentBeforeChild)
{
    HbDetector det;
    det.rootThread(0);
    det.write(0, 0x40, 5);
    det.threadCreated(0, 1);
    det.write(1, 0x40, 15);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, ParentWriteAfterCreateRacesChild)
{
    // The initialization idiom (§8.3): parent writes after spawning.
    HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    det.write(0, 0x40, 5);
    det.read(1, 0x40, 15);
    EXPECT_EQ(det.races().count(), 1u);
}

TEST(FastTrack, JoinOrdersChildBeforeParent)
{
    HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    det.write(1, 0x40, 15);
    det.threadJoined(0, 1);
    det.write(0, 0x40, 5);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, TransitiveOrderingThroughThirdThread)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.lockAcquire(1, 0);
    det.lockRelease(1, 0);
    det.lockAcquire(2, 0);
    det.lockRelease(2, 0);
    // Thread 2 is now ordered after thread 1's release.
    det.write(2, 0x40, 20);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, MultipleConcurrentReadersAllRaceWithWriter)
{
    HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    det.threadCreated(0, 2);
    det.threadCreated(0, 3);
    det.read(1, 0x40, 11);
    det.read(2, 0x40, 12);
    det.write(3, 0x40, 13);
    EXPECT_EQ(det.races().count(), 2u);
    EXPECT_TRUE(det.races().contains(11, 13));
    EXPECT_TRUE(det.races().contains(12, 13));
}

TEST(FastTrack, Figure6NoStaleFalsePositive)
{
    // Paper Fig. 6: accesses checked only in "slow" episodes, but
    // sync is tracked continuously. T1 writes X (checked), then a
    // signal->wait edge happens during an unchecked (fast) interval,
    // then T2 writes X (checked): no warning may be reported.
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);       // slow episode on T1
    det.condSignal(1, 4);         // fast path, but still tracked
    det.condWait(2, 4);
    det.write(2, 0x40, 20);       // slow episode on T2
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, UncheckedAccessesAreInvisible)
{
    // If sync were NOT tracked (the naive fast path), the same
    // scenario yields a false warning — the detector must only know
    // what it is told. This documents why TxRace pays the fast-path
    // sync-tracking cost.
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    // signal/wait happened on the fast path but was not tracked:
    det.write(2, 0x40, 20);
    EXPECT_EQ(det.races().count(), 1u);  // false warning
}

TEST(FastTrack, ReadSetCompactionKeepsConcurrentReads)
{
    HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    det.threadCreated(0, 2);
    det.threadCreated(0, 3);
    det.read(1, 0x40, 11);
    det.read(2, 0x40, 12);
    // Reader 3 is ordered after reader 1 via a lock, then reads: 1's
    // entry may be dropped, but 2's must survive.
    det.lockAcquire(1, 0);
    det.lockRelease(1, 0);
    det.lockAcquire(3, 0);
    det.lockRelease(3, 0);
    det.read(3, 0x40, 13);
    det.write(2, 0x48, 99);  // unrelated
    det.write(3, 0x40, 14);  // races with reader 2 only
    EXPECT_TRUE(det.races().contains(12, 14));
    EXPECT_FALSE(det.races().contains(11, 14));
}

TEST(FastTrack, WriteClearsReadSet)
{
    HbDetector det = twoThreads();
    det.read(1, 0x40, 11);
    det.write(1, 0x40, 12);  // same thread: no race, clears reads
    det.write(2, 0x40, 22);  // races with the write, not the read
    EXPECT_TRUE(det.races().contains(12, 22));
    EXPECT_FALSE(det.races().contains(11, 22));
}

TEST(FastTrack, BoundedShadowCanMissRaces)
{
    // With a 1-entry read set, concurrent readers evict each other
    // and a later writer can miss one of the read-write races —
    // modeling stock TSan's bounded shadow cells (§5).
    DetectorConfig cfg;
    cfg.maxShadowCells = 1;
    cfg.seed = 3;
    HbDetector det(cfg);
    det.rootThread(0);
    for (Tid t = 1; t <= 4; ++t)
        det.threadCreated(0, t);
    for (Tid t = 1; t <= 4; ++t)
        det.read(t, 0x40, 10 + t);
    det.write(0, 0x40, 9);
    // Only the surviving shadow entry can be reported.
    EXPECT_LE(det.races().count(), 2u);
    EXPECT_GE(det.stats().get("detector.evictions"), 1u);
}

TEST(FastTrack, StatsCountChecks)
{
    HbDetector det = twoThreads();
    det.read(1, 0x40, 1);
    det.read(1, 0x48, 1);
    det.write(2, 0x40, 2);
    EXPECT_EQ(det.stats().get("detector.reads"), 2u);
    EXPECT_EQ(det.stats().get("detector.writes"), 1u);
    EXPECT_EQ(det.stats().get("detector.race_hits"), 1u);
}

TEST(FastTrack, DropShadowForgetsAccessesButKeepsClocks)
{
    HbDetector det = twoThreads();
    det.write(1, 0x40, 10);
    det.dropShadow();
    det.write(2, 0x40, 20);
    EXPECT_EQ(det.races().count(), 0u);
}

TEST(FastTrack, EpochSufficiencyStatistics)
{
    // Ordered same-thread rereads stay in the single-epoch
    // representation; concurrent readers force a promotion —
    // FastTrack's core empirical observation, surfaced as counters.
    HbDetector det = twoThreads();
    det.read(1, 0x40, 1);
    det.read(1, 0x40, 1);
    det.read(1, 0x40, 1);
    EXPECT_EQ(det.stats().get("detector.read_epoch_sufficient"), 3u);
    EXPECT_EQ(det.stats().get("detector.read_vc_promoted"), 0u);
    det.read(2, 0x40, 2);  // concurrent second reader: promotion
    EXPECT_EQ(det.stats().get("detector.read_vc_promoted"), 1u);
}
