/**
 * @file
 * Contract tests for the decoded step loop (threaded-code dispatch,
 * quantum batching, O(1) runnable set): seeded determinism down to the
 * schedule hash and the full stats dump, agreement between the decoded
 * and classic lanes on schedule-independent outcomes, full-registry
 * ground-truth recall under the new scheduler, and structured
 * BadAccess errors instead of process death on malformed workloads.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace txrace;
using namespace txrace::sim;
using namespace txrace::workloads;

namespace {

/** Two workers mixing shared, per-thread, and loop-indexed traffic —
 *  exercises every address shape the decoder specializes. */
ir::Program
mixedProgram()
{
    ir::ProgramBuilder b;
    ir::Addr shared = b.alloc("shared", 64, 64);
    ir::Addr slots = b.alloc("slots", 4 * 64, 64);
    ir::Addr table = b.alloc("table", 64 * 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        b.compute(3);
        b.store(ir::AddrExpr::perThread(slots, 64));
        b.loop(4, [&] {
            b.load(ir::AddrExpr::perIter(table, 8));
            b.compute(1);
        });
        b.store(ir::AddrExpr::absolute(shared));
        b.load(ir::AddrExpr::randomIn(table, 8, 8));
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    return b.build();
}

MachineConfig
quietConfig(uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.seed = seed;
    cfg.interruptPerStep = 0.0;
    return cfg;
}

} // namespace

TEST(SimCore, ScheduleHashAndStatsDeterministicPerSeed)
{
    ir::Program p = mixedProgram();
    auto once = [&](uint64_t seed) {
        core::TsanPolicy policy(1.0, 7);
        Machine m(p, quietConfig(seed), policy);
        EXPECT_TRUE(m.run().ok());
        return std::pair<uint64_t, uint64_t>(m.scheduleHash(),
                                             m.totalCost());
    };
    auto [hash_a, cost_a] = once(5);
    auto [hash_b, cost_b] = once(5);
    EXPECT_EQ(hash_a, hash_b);
    EXPECT_EQ(cost_a, cost_b);
    // A different seed produces a different (equally valid) schedule.
    auto [hash_c, cost_c] = once(6);
    EXPECT_NE(hash_a, hash_c);
    (void)cost_c;
}

TEST(SimCore, GoldenStatsDumpIsByteIdentical)
{
    // The full string-keyed stats dump — every exported counter,
    // gauge, and histogram summary — must be identical across
    // same-seed runs under the quantum loop, not just the headline
    // numbers. This is the contract campaign byte-determinism and the
    // profile `cmp` checks in CI build on.
    WorkloadParams params;
    params.calibrate = false;
    AppModel app = makeApp("vips", params);
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine = app.machine;
    cfg.machine.seed = 3;
    core::RunResult a = core::runProgram(app.program, cfg);
    core::RunResult b = core::runProgram(app.program, cfg);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    EXPECT_EQ(a.races.keys(), b.races.keys());
    EXPECT_EQ(a.totalCost, b.totalCost);
}

TEST(SimCore, ClassicAndDecodedAgreeOnFinalMemory)
{
    // Stores accumulate commutatively (granule += arg0 + 1), so final
    // memory is schedule-independent: the classic and decoded lanes
    // must agree exactly even though their schedules differ. This is
    // the differential oracle for the decoded handlers' store path.
    ir::Program p = mixedProgram();
    auto finalMemory = [&](StepLoop lane) {
        MachineConfig cfg = quietConfig();
        cfg.stepLoop = lane;
        core::NativePolicy policy;
        Machine m(p, cfg, policy);
        EXPECT_TRUE(m.run().ok());
        std::vector<uint64_t> image;
        for (ir::Addr a = 0; a < p.addrSpaceSize(); a += 8)
            image.push_back(m.memory().load(a));
        return image;
    };
    EXPECT_EQ(finalMemory(StepLoop::Decoded),
              finalMemory(StepLoop::Classic));
}

TEST(SimCore, QuantumIsBehaviorAffectingButDeterministic)
{
    // schedQuantum is part of the run's identity like the seed: each
    // value is deterministic, different values give different (valid)
    // schedules, and final memory agrees regardless.
    ir::Program p = mixedProgram();
    auto run = [&](uint32_t quantum) {
        MachineConfig cfg = quietConfig();
        cfg.schedQuantum = quantum;
        core::NativePolicy policy;
        Machine m(p, cfg, policy);
        EXPECT_TRUE(m.run().ok());
        std::vector<uint64_t> image;
        for (ir::Addr a = 0; a < p.addrSpaceSize(); a += 8)
            image.push_back(m.memory().load(a));
        return std::pair<uint64_t, std::vector<uint64_t>>(
            m.scheduleHash(), image);
    };
    auto [h1a, mem1a] = run(1);
    auto [h1b, mem1b] = run(1);
    auto [h32, mem32] = run(32);
    EXPECT_EQ(h1a, h1b);
    EXPECT_EQ(mem1a, mem1b);
    EXPECT_NE(h1a, h32);
    EXPECT_EQ(mem1a, mem32);
}

TEST(SimCore, GroundTruthRecallAcrossRegistry)
{
    // The always-on happens-before baseline must still find exactly
    // the planted races for every app in the registry under the
    // decoded quantum loop, at more than one seed. This is the recall
    // floor the campaign precision/recall gates build on.
    for (const std::string &name : appNames()) {
        WorkloadParams params;
        params.calibrate = false;
        AppModel app = makeApp(name, params);
        for (uint64_t seed : {1ull, 2ull}) {
            core::RunConfig cfg;
            cfg.mode = core::RunMode::TSan;
            cfg.machine = app.machine;
            cfg.machine.seed = seed;
            core::RunResult tsan = core::runProgram(app.program, cfg);
            EXPECT_EQ(tsan.races.count(), app.plantedRaces)
                << name << " seed " << seed;
        }
    }
}

TEST(SimCore, BadAccessSurfacesThroughDriver)
{
    // A worker whose thread-strided address walks off the end of the
    // address space: the run must end with a structured BadAccess
    // error through the full driver pipeline — campaign workers
    // survive malformed workloads.
    ir::ProgramBuilder b;
    ir::Addr small = b.alloc("small", 128, 64);
    ir::FuncId worker = b.beginFunction("worker");
    ir::AddrExpr e;
    e.base = small;
    e.threadStride = 4096;  // tid >= 1 lands beyond the allocation
    b.load(e);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    ir::Program p = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine.interruptPerStep = 0.0;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_EQ(r.error.kind, RunError::Kind::BadAccess);
    EXPECT_FALSE(r.error.ok());
    EXPECT_FALSE(r.error.threads.empty());
}

TEST(SimCore, ClassicLaneRaisesBadAccessToo)
{
    ir::ProgramBuilder b;
    ir::Addr small = b.alloc("small", 64, 64);
    b.beginFunction("main");
    ir::AddrExpr e;
    e.base = small;
    e.loopStride = 4096;
    b.loopBegin(3);
    b.load(e);
    b.loopEnd();
    b.endFunction();
    ir::Program p = b.build();
    core::NativePolicy policy;
    MachineConfig cfg = quietConfig();
    cfg.stepLoop = StepLoop::Classic;
    Machine m(p, cfg, policy);
    EXPECT_EQ(m.run().kind, RunError::Kind::BadAccess);
}
