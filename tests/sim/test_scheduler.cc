/**
 * @file
 * Statistical properties of the seeded scheduler: fairness among
 * runnable threads, sensitivity to the seed, and interrupt-rate
 * scaling under oversubscription.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/driver.hh"
#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::sim;

namespace {

/** Counts scheduled memory accesses per thread. */
class StepCounter : public ExecutionPolicy
{
  public:
    std::map<Tid, uint64_t> steps;
    bool
    onMemAccess(Machine &, Tid t, const Instruction &, Addr,
                bool) override
    {
        ++steps[t];
        return true;
    }
};

Program
spinningWorkers(uint32_t workers, uint64_t iters)
{
    ProgramBuilder b;
    Addr a = b.alloc("a", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(iters, [&] { b.load(AddrExpr::randomIn(a, 64, 8)); });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, workers);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

TEST(Scheduler, RoughlyFairAmongEqualWorkers)
{
    Program p = spinningWorkers(4, 500);
    StepCounter policy;
    MachineConfig cfg;
    cfg.seed = 17;
    cfg.interruptPerStep = 0.0;
    Machine m(p, cfg, policy);
    m.run();
    // Everyone finishes the same amount of work...
    for (Tid t = 1; t <= 4; ++t)
        EXPECT_EQ(policy.steps[t], 500u);
}

TEST(Scheduler, InterleavingIsFineGrained)
{
    // With random per-step picking, no thread should run to
    // completion before the others start: capture the tid sequence
    // and check the first thread's accesses do not all come first.
    // This deliberately asserts per-instruction granularity, so pin
    // the quantum to 1 (the default quantum batches uncontended
    // native-phase accesses and would alternate per quantum instead).
    Program p = spinningWorkers(2, 200);

    class OrderProbe : public ExecutionPolicy
    {
      public:
        std::vector<Tid> order;
        bool
        onMemAccess(Machine &, Tid t, const Instruction &, Addr,
                    bool) override
        {
            order.push_back(t);
            return true;
        }
    } policy;
    MachineConfig cfg;
    cfg.seed = 23;
    cfg.interruptPerStep = 0.0;
    cfg.schedQuantum = 1;
    Machine m(p, cfg, policy);
    m.run();

    // Count alternations between consecutive accesses.
    int switches = 0;
    for (size_t i = 1; i < policy.order.size(); ++i)
        switches += policy.order[i] != policy.order[i - 1];
    EXPECT_GT(switches, 50);  // ~200 expected for a fair coin
}

TEST(Scheduler, SeedChangesTheInterleaving)
{
    Program p = spinningWorkers(3, 100);
    auto trace_of = [&](uint64_t seed) {
        class OrderProbe : public ExecutionPolicy
        {
          public:
            std::vector<Tid> order;
            bool
            onMemAccess(Machine &, Tid t, const Instruction &, Addr,
                        bool) override
            {
                order.push_back(t);
                return true;
            }
        } policy;
        MachineConfig cfg;
        cfg.seed = seed;
        cfg.interruptPerStep = 0.0;
        Machine m(p, cfg, policy);
        m.run();
        return policy.order;
    };
    EXPECT_EQ(trace_of(1), trace_of(1));
    EXPECT_NE(trace_of(1), trace_of(2));
}

TEST(Scheduler, OversubscriptionScalesInterrupts)
{
    // Same per-thread work; 8 workers on 4 cores must see a much
    // higher interrupt-abort rate than 3 workers.
    auto interrupts_with = [&](uint32_t workers) {
        ProgramBuilder b;
        Addr a = b.alloc("a", 4096);
        FuncId worker = b.beginFunction("worker");
        b.loop(20, [&] {
            for (int k = 0; k < 8; ++k)
                b.load(AddrExpr::randomIn(a, 64, 8));
            b.syscall(1);
        });
        b.endFunction();
        b.beginFunction("main");
        b.spawn(worker, workers);
        b.joinAll();
        b.endFunction();
        Program p = b.build();

        core::RunConfig cfg;
        cfg.mode = core::RunMode::TxRaceNoOpt;
        cfg.machine.seed = 9;
        cfg.machine.interruptPerStep = 2e-3;
        cfg.machine.oversubInterruptFactor = 8.0;
        core::RunResult r = core::runProgram(p, cfg);
        // Normalize per worker.
        return static_cast<double>(r.stats.get("tx.abort.unknown")) /
               workers;
    };
    double low = interrupts_with(3);
    double high = interrupts_with(8);
    EXPECT_GT(high, low * 2.0);
}
