/**
 * @file
 * Tests of the machine <-> policy contract: hook ordering, step
 * consumption via beforeStep, rollback on self-abort from
 * onMemAccess, interrupt injection, and cost-bucket attribution.
 */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::sim;

namespace {

MachineConfig
quietConfig(uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.seed = seed;
    cfg.interruptPerStep = 0.0;
    return cfg;
}

} // namespace

TEST(MachinePolicy, HookOrderForSimpleRun)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::absolute(x));
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 1);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    class Sequencer : public ExecutionPolicy
    {
      public:
        std::vector<std::string> log;
        void onRunStart(Machine &) override { log.push_back("start"); }
        void onRunEnd(Machine &) override { log.push_back("end"); }
        void
        onThreadStart(Machine &, Tid t) override
        {
            log.push_back("tstart" + std::to_string(t));
        }
        void
        onThreadExit(Machine &, Tid t) override
        {
            log.push_back("texit" + std::to_string(t));
        }
        void
        onThreadCreated(Machine &, Tid p_, Tid c) override
        {
            log.push_back("create" + std::to_string(p_) +
                          std::to_string(c));
        }
        void
        onThreadJoined(Machine &, Tid j, Tid t) override
        {
            log.push_back("join" + std::to_string(j) +
                          std::to_string(t));
        }
        bool
        onMemAccess(Machine &, Tid t, const Instruction &, Addr,
                    bool) override
        {
            log.push_back("mem" + std::to_string(t));
            return true;
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();

    std::vector<std::string> expect = {"start",   "tstart0", "create01",
                                       "tstart1", "mem1",    "texit1",
                                       "join01",  "texit0",  "end"};
    EXPECT_EQ(policy.log, expect);
}

TEST(MachinePolicy, BeforeStepConsumesSteps)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    Program p = b.build();

    class Delayer : public ExecutionPolicy
    {
      public:
        int delays = 3;
        bool
        beforeStep(Machine &, Tid) override
        {
            if (delays > 0) {
                --delays;
                return true;
            }
            return false;
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(policy.delays, 0);
    EXPECT_EQ(m.totalCost(), 1u);  // instruction still ran afterwards
}

TEST(MachinePolicy, SelfAbortRollsBackAndReexecutes)
{
    // The policy vetoes the first execution of the store; the machine
    // must restore the snapshot and re-run from there.
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main");
    b.compute(2);  // pre-region work
    // Hand-instrumented region:
    Instruction txb;
    txb.op = OpCode::TxBegin;
    b.raw(txb);
    b.compute(5);
    b.store(AddrExpr::absolute(x));
    Instruction txe;
    txe.op = OpCode::TxEnd;
    b.raw(txe);
    b.endFunction();
    Program p = b.build();

    class VetoOnce : public ExecutionPolicy
    {
      public:
        bool vetoed = false;
        int store_attempts = 0;
        void
        onTxBegin(Machine &m, Tid t, const Instruction &) override
        {
            m.context(t).takeSnapshot(m.context(t).pc + 1);
        }
        bool
        onMemAccess(Machine &m, Tid t, const Instruction &, Addr,
                    bool) override
        {
            ++store_attempts;
            if (!vetoed) {
                vetoed = true;
                m.rollback(t, Bucket::Capacity);
                return false;
            }
            return true;
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(policy.store_attempts, 2);
    // Pre-region work (2), the vetoed attempt (5 + 1), the successful
    // re-execution (5 + 1), and the rollback fee. No cost is
    // reclassified because no HTM transaction was ever open.
    EXPECT_EQ(m.totalCost(),
              2u + 6u + 6u + m.config().cost.rollbackCost);
}

TEST(MachinePolicy, WastedWorkReclassifiedOnRollback)
{
    // Same scenario but with a real HTM transaction: the aborted
    // attempt's base cost must move into the abort bucket.
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main2");
    Instruction txb;
    txb.op = OpCode::TxBegin;
    b.raw(txb);
    b.compute(5);
    b.store(AddrExpr::absolute(x));
    Instruction txe;
    txe.op = OpCode::TxEnd;
    b.raw(txe);
    b.endFunction();
    Program p = b.build();

    class CapacityOnce : public ExecutionPolicy
    {
      public:
        bool aborted = false;
        void
        onTxBegin(Machine &m, Tid t, const Instruction &) override
        {
            if (!m.htm().inTx(t)) {
                m.htm().begin(t);
                m.context(t).takeSnapshot(m.context(t).pc + 1);
                m.context(t).baseSinceTxBegin = 0;
            }
        }
        void
        onTxEnd(Machine &m, Tid t, const Instruction &) override
        {
            if (m.htm().inTx(t))
                m.htm().commit(t);
        }
        bool
        onMemAccess(Machine &m, Tid t, const Instruction &, Addr,
                    bool) override
        {
            if (!aborted) {
                aborted = true;
                m.htm().abortTx(t, htm::kAbortCapacity);
                m.rollback(t, Bucket::Capacity);
                // Re-enter the transaction for the retry.
                m.htm().begin(t);
                m.context(t).takeSnapshot(m.context(t).pc);
                return false;
            }
            return true;
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    uint64_t base = m.buckets()[static_cast<size_t>(Bucket::Base)];
    uint64_t cap = m.buckets()[static_cast<size_t>(Bucket::Capacity)];
    // One clean execution's worth of base cost (5 + 1), the wasted
    // first attempt (5 + 1) plus the rollback fee in Capacity.
    EXPECT_EQ(base, 6u);
    EXPECT_EQ(cap, 6u + m.config().cost.rollbackCost);
}

TEST(MachinePolicy, InterruptAbortsOnlyTransactionalThreads)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.loop(100, [&] { b.compute(1); });
    b.endFunction();
    Program p = b.build();

    class CountIntr : public ExecutionPolicy
    {
      public:
        int interrupts = 0;
        void
        onInterruptAbort(Machine &, Tid) override
        {
            ++interrupts;
        }
    } policy;
    MachineConfig cfg = quietConfig();
    cfg.interruptPerStep = 1.0;  // every step, were we transactional
    Machine m(p, cfg, policy);
    m.run();
    // Never in a transaction, so no interrupts are delivered.
    EXPECT_EQ(policy.interrupts, 0);
}

TEST(MachinePolicy, InterruptDeliveredInsideTransactions)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main");
    Instruction txb;
    txb.op = OpCode::TxBegin;
    b.raw(txb);
    b.loop(10, [&] { b.load(AddrExpr::absolute(x)); });
    Instruction txe;
    txe.op = OpCode::TxEnd;
    b.raw(txe);
    b.endFunction();
    Program p = b.build();

    class IntrPolicy : public ExecutionPolicy
    {
      public:
        int interrupts = 0;
        void
        onTxBegin(Machine &m, Tid t, const Instruction &) override
        {
            m.htm().begin(t);
            m.context(t).takeSnapshot(m.context(t).pc + 1);
        }
        void
        onTxEnd(Machine &m, Tid t, const Instruction &) override
        {
            if (m.htm().inTx(t))
                m.htm().commit(t);
        }
        void
        onInterruptAbort(Machine &m, Tid t) override
        {
            ++interrupts;
            EXPECT_TRUE(
                htm::isUnknownAbort(m.htm().lastAbortStatus(t)));
            m.rollback(t, Bucket::Unknown);
            // Give up on the transaction; run the region bare.
        }
    } policy;
    MachineConfig cfg = quietConfig();
    cfg.interruptPerStep = 0.5;
    Machine m(p, cfg, policy);
    m.run();
    EXPECT_GE(policy.interrupts, 1);
}

TEST(MachinePolicy, CostBucketsSumToTotal)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(30, [&] {
        b.store(AddrExpr::absolute(x));
        b.compute(2);
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::TsanPolicy policy(1.0, 5);
    Machine m(p, quietConfig(), policy);
    m.run();
    uint64_t sum = 0;
    for (uint64_t v : m.buckets())
        sum += v;
    EXPECT_EQ(sum, m.totalCost());
    EXPECT_GT(m.buckets()[static_cast<size_t>(Bucket::Check)], 0u);
}
