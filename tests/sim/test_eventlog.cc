/**
 * @file
 * Tests of the structured event log: disabled by default, ordered
 * stamps, the TxFail protocol sequence of paper Figure 3, and the
 * truncation guard.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/driver.hh"
#include "ir/builder.hh"
#include "sim/eventlog.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

Program
conflictingProgram()
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        for (int i = 0; i < 6; ++i)
            b.load(AddrExpr::absolute(data + 8 * i), "pad");
        b.store(AddrExpr::absolute(racy), "unlocked");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

TEST(EventLog, DisabledByDefault)
{
    Program p = conflictingProgram();
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine.interruptPerStep = 0.0;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_TRUE(r.events.events().empty());
}

TEST(EventLog, RecordsTheTxFailProtocolSequence)
{
    Program p = conflictingProgram();
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    // The TxFail broadcast only exists in region mode; the windowed
    // default answers conflicts with a log replay instead.
    cfg.slowpath = core::SlowPathKind::Region;
    cfg.machine.interruptPerStep = 0.0;
    cfg.machine.recordEvents = true;
    core::RunResult r = core::runProgram(p, cfg);

    const auto &events = r.events.events();
    ASSERT_FALSE(events.empty());

    // Steps are monotone.
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].step, events[i].step);

    // The Figure-3 sequence appears in order for some conflict:
    // conflict-abort -> txfail-write (same thread) -> slow-enter of
    // another thread -> its slow-exit.
    auto find_after = [&](size_t from, const std::string &kind) {
        for (size_t i = from; i < events.size(); ++i)
            if (events[i].kind == kind)
                return i;
        return events.size();
    };
    size_t abort_at = find_after(0, "conflict-abort");
    ASSERT_LT(abort_at, events.size());
    size_t txfail_at = find_after(abort_at, "txfail-write");
    ASSERT_LT(txfail_at, events.size());
    EXPECT_EQ(events[abort_at].tid, events[txfail_at].tid);
    size_t enter_at = find_after(txfail_at, "slow-enter");
    ASSERT_LT(enter_at, events.size());
    EXPECT_NE(events[enter_at].tid, events[txfail_at].tid);
    size_t exit_at = find_after(enter_at, "slow-exit");
    EXPECT_LT(exit_at, events.size());

    // Commits were recorded too.
    EXPECT_LT(find_after(0, "xbegin"), events.size());
    EXPECT_LT(find_after(0, "commit"), events.size());
}

TEST(EventLog, PrintLimitsAndCounts)
{
    sim::EventLog log;
    log.enable();
    for (uint64_t i = 0; i < 10; ++i)
        log.record(i, 1, "tick", "detail");
    std::ostringstream os;
    log.print(os, 3);
    EXPECT_NE(os.str().find("[0] t1 tick: detail"), std::string::npos);
    EXPECT_NE(os.str().find("(7 more)"), std::string::npos);
}

TEST(EventLog, RecordIsNoOpWhenDisabled)
{
    sim::EventLog log;
    log.record(1, 1, "tick");
    EXPECT_TRUE(log.events().empty());
    // A disabled log never accepts; there is no point building args.
    EXPECT_FALSE(log.accepting());
}

TEST(EventLog, CountsDroppedEventsPastTheCap)
{
    sim::EventLog log;
    log.enable();
    EXPECT_TRUE(log.accepting());
    constexpr uint64_t kExtra = 37;
    for (uint64_t i = 0; i < sim::EventLog::kMaxEvents + kExtra; ++i)
        log.record(i, 2, "tick");

    // Storage stops exactly at the cap; the overflow is counted, not
    // silently discarded, and accepting() tells hot call sites to stop
    // building string arguments.
    EXPECT_EQ(log.events().size(), sim::EventLog::kMaxEvents);
    EXPECT_EQ(log.dropped(), kExtra);
    EXPECT_FALSE(log.accepting());

    // The printed timeline ends with the truncation marker carrying
    // the drop total and the step where recording stopped.
    std::ostringstream os;
    log.print(os, 1);
    std::string expected =
        "[" + std::to_string(sim::EventLog::kMaxEvents) +
        "] t2 truncated: event cap reached, " +
        std::to_string(kExtra) + " event(s) dropped";
    EXPECT_NE(os.str().find(expected), std::string::npos) << os.str();
}
