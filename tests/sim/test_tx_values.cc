/**
 * @file
 * Atomicity and isolation of transactional stores: speculative
 * writes buffer per thread, publish on commit, and vanish on abort —
 * the all-or-nothing semantics real HTM guarantees and the TxRace
 * runtime relies on when re-executing rolled-back regions.
 *
 * Store semantics: each Store adds (arg0 + 1) to its granule, so a
 * default store is an increment and final memory values are exact,
 * schedule-independent counters.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::sim;

namespace {

MachineConfig
quietConfig(uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.seed = seed;
    cfg.interruptPerStep = 0.0;
    return cfg;
}

Instruction
rawOp(OpCode op)
{
    Instruction i;
    i.op = op;
    return i;
}

} // namespace

TEST(TxValues, NativeStoresIncrementMemory)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main");
    b.loop(5, [&] { b.store(AddrExpr::absolute(x)); });
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.memory().load(x), 5u);
}

TEST(TxValues, StoreDeltaUsesArg0)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main");
    Instruction st = rawOp(OpCode::Store);
    st.addr = AddrExpr::absolute(x);
    st.arg0 = 9;  // adds arg0 + 1 = 10
    b.raw(st);
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.memory().load(x), 10u);
}

TEST(TxValues, CommittedTransactionPublishes)
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main");
    b.raw(rawOp(OpCode::TxBegin));
    b.loop(3, [&] { b.store(AddrExpr::absolute(x)); });
    b.raw(rawOp(OpCode::TxEnd));
    b.endFunction();
    Program p = b.build();

    class TxPolicy : public ExecutionPolicy
    {
      public:
        uint64_t mid_tx_value = 99;
        void
        onTxBegin(Machine &m, Tid t, const Instruction &) override
        {
            m.htm().begin(t);
            m.context(t).takeSnapshot(m.context(t).pc + 1);
        }
        void
        onTxEnd(Machine &m, Tid t, const Instruction &) override
        {
            // Isolation: just before commit, memory still holds the
            // pre-transaction value.
            mid_tx_value = m.memory().load(64);
            m.commitTx(t);
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(policy.mid_tx_value, 0u);   // invisible until commit
    EXPECT_EQ(m.memory().load(x), 3u);    // atomic publish
}

TEST(TxValues, AbortDiscardsSpeculativeStores)
{
    // A capacity-overflowing region under TxRace-NoOpt: the first
    // attempt's stores must leave no trace; the slow-path
    // re-execution publishes exactly one set of increments.
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr wide = b.alloc("wide", 16 * 4096 + 1024, 64);
    FuncId worker = b.beginFunction("worker");
    b.loop(4, [&] {
        for (int i = 0; i < 6; ++i)
            b.load(AddrExpr::absolute(data + 8 * i), "pad");
        b.loop(12, [&] {
            AddrExpr e = AddrExpr::perThread(wide, 64);
            e.loopStride = 4096;
            b.store(e, "stream");
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceNoOpt;
    cfg.machine.seed = 1;
    cfg.machine.interruptPerStep = 0.0;

    // Run through the driver... but we need the memory, so drive the
    // pieces directly.
    ir::Program prepared = passes::preparedForTxRace(p, [] {
        passes::PassConfig pc;
        pc.insertLoopCuts = false;
        return pc;
    }());
    core::TxRacePolicy policy(core::TxRacePolicy::Scheme::NoOpt);
    Machine m(prepared, cfg.machine, policy);
    m.run();

    EXPECT_GE(m.stats().get("tx.abort.capacity") +
                  m.htm().stats().get("htm.aborts.capacity"),
              1u);
    // Every row was incremented exactly 4 times per worker despite
    // all the aborted attempts: no double-publish, no loss.
    for (uint64_t row = 0; row < 12; ++row) {
        for (Tid tid = 1; tid <= 2; ++tid) {
            Addr a = wide + tid * 64 + row * 4096;
            EXPECT_EQ(m.memory().load(a), 4u)
                << "row " << row << " tid " << tid;
        }
    }
}

TEST(TxValues, ConflictVictimRepublishesExactlyOnce)
{
    // Two workers increment a shared counter inside regions that
    // conflict; after all rollbacks and slow-path re-executions the
    // counter equals the total number of executed stores.
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr counter = b.alloc("counter", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        for (int i = 0; i < 6; ++i)
            b.load(AddrExpr::absolute(data + 8 * i), "pad");
        b.store(AddrExpr::absolute(counter), "increment");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    ir::Program prepared = passes::preparedForTxRace(p);
    core::TxRacePolicy policy(core::TxRacePolicy::Scheme::Dyn);
    MachineConfig cfg = quietConfig(5);
    Machine m(prepared, cfg, policy);
    m.run();
    EXPECT_GT(m.stats().get("tx.abort.conflict") +
                  m.htm().stats().get("htm.aborts.conflict"),
              0u);
    EXPECT_EQ(m.memory().load(counter), 30u);
}

TEST(TxValues, TransactionReadsItsOwnBufferedValue)
{
    // (Documented via the machine's store semantics: a second store
    // in the same transaction accumulates on the buffered value.)
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    b.beginFunction("main");
    b.raw(rawOp(OpCode::TxBegin));
    b.store(AddrExpr::absolute(x));
    b.store(AddrExpr::absolute(x));
    b.raw(rawOp(OpCode::TxEnd));
    b.endFunction();
    Program p = b.build();

    class TxPolicy : public ExecutionPolicy
    {
      public:
        void
        onTxBegin(Machine &m, Tid t, const Instruction &) override
        {
            m.htm().begin(t);
            m.context(t).takeSnapshot(m.context(t).pc + 1);
        }
        void
        onTxEnd(Machine &m, Tid t, const Instruction &) override
        {
            m.commitTx(t);
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.memory().load(x), 2u);
}
