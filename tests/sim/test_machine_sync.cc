/**
 * @file
 * Integration tests of the machine's synchronization semantics —
 * blocking, wakeup ordering, and the happens-before edges they feed
 * to the detector (via TsanPolicy).
 */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::sim;

namespace {

MachineConfig
quietConfig(uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.seed = seed;
    cfg.interruptPerStep = 0.0;
    return cfg;
}

/** Run under the full TSan policy; return detected races. */
size_t
racesIn(const Program &p, uint64_t seed = 1)
{
    core::TsanPolicy policy(1.0, 99);
    Machine m(p, quietConfig(seed), policy);
    m.run();
    return m.det().races().count();
}

} // namespace

TEST(MachineSync, LockProtectedCounterHasNoRaces)
{
    ProgramBuilder b;
    Addr counter = b.alloc("counter", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        b.lock(0);
        b.load(AddrExpr::absolute(counter));
        b.store(AddrExpr::absolute(counter));
        b.unlock(0);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    for (uint64_t seed = 1; seed <= 5; ++seed)
        EXPECT_EQ(racesIn(p, seed), 0u);
}

TEST(MachineSync, UnlockedCounterRaces)
{
    ProgramBuilder b;
    Addr counter = b.alloc("counter", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] { b.store(AddrExpr::absolute(counter)); });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    EXPECT_EQ(racesIn(p), 1u);  // one static pair
}

TEST(MachineSync, LockSerializesCriticalSections)
{
    // Verify mutual exclusion mechanically: a policy asserts that at
    // most one thread is between lock and unlock at any time.
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        b.lock(0);
        b.store(AddrExpr::absolute(x));
        b.compute(3);
        b.store(AddrExpr::absolute(x));
        b.unlock(0);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    class MutexCheck : public ExecutionPolicy
    {
      public:
        int inside = 0;
        bool violated = false;
        void
        onSyncPerformed(Machine &, Tid, const Instruction &ins) override
        {
            if (ins.op == OpCode::LockAcquire) {
                ++inside;
                if (inside > 1)
                    violated = true;
            } else if (ins.op == OpCode::LockRelease) {
                --inside;
            }
        }
    } policy;
    Machine m(p, quietConfig(3), policy);
    m.run();
    EXPECT_FALSE(policy.violated);
}

TEST(MachineSync, ProducerConsumerViaCondvar)
{
    ProgramBuilder b;
    Addr slot = b.alloc("slot", 8);
    FuncId consumer = b.beginFunction("consumer");
    b.loop(10, [&] {
        b.wait(0);
        b.load(AddrExpr::absolute(slot));
        b.signal(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(consumer, 1);
    b.loop(10, [&] {
        b.store(AddrExpr::absolute(slot));
        b.signal(0);
        b.wait(1);
    });
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    // Fully synchronized handoff: no races, no deadlock.
    for (uint64_t seed = 1; seed <= 5; ++seed)
        EXPECT_EQ(racesIn(p, seed), 0u);
}

TEST(MachineSync, BarrierSeparatesPhases)
{
    // Worker k writes cell k in phase 1; reads cell k+1 in phase 2.
    // The barrier orders the phases, so there is no race.
    ProgramBuilder b;
    Addr cells = b.alloc("cells", 6 * 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::perThread(cells, 64));
    b.barrier(0, 3);
    AddrExpr next = AddrExpr::perThread(cells + 64, 64);
    b.load(next);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    for (uint64_t seed = 1; seed <= 5; ++seed)
        EXPECT_EQ(racesIn(p, seed), 0u);
}

TEST(MachineSync, MissingBarrierWouldRace)
{
    // Same shape without the barrier: neighbor read races the write.
    ProgramBuilder b;
    Addr cells = b.alloc("cells", 6 * 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::perThread(cells, 64));
    b.compute(50);
    b.load(AddrExpr::perThread(cells + 64, 64));
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    size_t total = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed)
        total += racesIn(p, seed);
    EXPECT_GT(total, 0u);
}

TEST(MachineSync, BarrierReleasesAllParticipants)
{
    ProgramBuilder b;
    FuncId worker = b.beginFunction("worker");
    b.loop(5, [&] {
        b.compute(2);
        b.barrier(0, 4);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();  // would deadlock if any participant were lost
    EXPECT_EQ(m.liveThreads(), 0u);
}

TEST(MachineSync, SemaphoreCountingPreventsLostWakeups)
{
    // Main posts all tokens before the workers even start waiting.
    ProgramBuilder b;
    FuncId worker = b.beginFunction("worker");
    b.loop(5, [&] { b.wait(0); });
    b.endFunction();
    b.beginFunction("main");
    b.loop(10, [&] { b.signal(0); });
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.liveThreads(), 0u);
}
