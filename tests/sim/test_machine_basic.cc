/**
 * @file
 * Unit tests for the machine core: cost accounting, loop execution,
 * address evaluation, thread lifecycle, determinism, and failure
 * modes (deadlock, out-of-bounds access, livelock guard).
 */

#include <gtest/gtest.h>

#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::sim;

namespace {

/** Policy recording every memory access address per thread. */
class RecordingPolicy : public ExecutionPolicy
{
  public:
    bool
    onMemAccess(Machine &, Tid t, const Instruction &, Addr addr,
                bool is_write) override
    {
        accesses.push_back({t, addr, is_write});
        return true;
    }

    struct Access
    {
        Tid tid;
        Addr addr;
        bool write;
    };
    std::vector<Access> accesses;
};

MachineConfig
quietConfig(uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.seed = seed;
    cfg.interruptPerStep = 0.0;  // no noise unless a test wants it
    return cfg;
}

} // namespace

TEST(Machine, ComputeCostAccrues)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.compute(10);
    b.compute(5);
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.totalCost(), 15u);
    EXPECT_EQ(m.buckets()[static_cast<size_t>(Bucket::Base)], 15u);
}

TEST(Machine, LoopRunsExactTripCount)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.loop(7, [&] { b.compute(1); });
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.totalCost(), 7u);
}

TEST(Machine, NestedLoopsMultiply)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.loop(3, [&] { b.loop(4, [&] { b.compute(1); }); });
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.totalCost(), 12u);
}

TEST(Machine, JitteredLoopWithinBounds)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.loopJitter(5, 3, [&] { b.compute(1); });
    b.endFunction();
    Program p = b.build();
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        core::NativePolicy policy;
        Machine m(p, quietConfig(seed), policy);
        m.run();
        EXPECT_GE(m.totalCost(), 5u);
        EXPECT_LE(m.totalCost(), 8u);
    }
}

TEST(Machine, PerThreadAddressing)
{
    ProgramBuilder b;
    Addr base = b.alloc("arr", 1024);
    FuncId worker = b.beginFunction("worker");
    b.store(AddrExpr::perThread(base, 64));
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    RecordingPolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    ASSERT_EQ(policy.accesses.size(), 3u);
    std::set<Addr> addrs;
    for (const auto &a : policy.accesses) {
        EXPECT_EQ(a.addr, base + a.tid * 64);
        addrs.insert(a.addr);
    }
    EXPECT_EQ(addrs.size(), 3u);  // tids 1..3, all distinct
}

TEST(Machine, LoopIndexedAddressing)
{
    ProgramBuilder b;
    Addr base = b.alloc("arr", 1024);
    b.beginFunction("main");
    b.loop(4, [&] { b.load(AddrExpr::perIter(base, 8)); });
    b.endFunction();
    Program p = b.build();
    RecordingPolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    ASSERT_EQ(policy.accesses.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(policy.accesses[i].addr, base + i * 8);
}

TEST(Machine, OuterLoopDepthAddressing)
{
    ProgramBuilder b;
    Addr base = b.alloc("arr", 4096);
    b.beginFunction("main");
    b.loopBegin(2);
    b.loopBegin(2);
    AddrExpr e;
    e.base = base;
    e.loopStride = 512;
    e.loopDepth = 1;  // indexes the outer loop
    b.load(e);
    b.loopEnd();
    b.loopEnd();
    b.endFunction();
    Program p = b.build();
    RecordingPolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    ASSERT_EQ(policy.accesses.size(), 4u);
    EXPECT_EQ(policy.accesses[0].addr, base);
    EXPECT_EQ(policy.accesses[1].addr, base);
    EXPECT_EQ(policy.accesses[2].addr, base + 512);
    EXPECT_EQ(policy.accesses[3].addr, base + 512);
}

TEST(Machine, RandomAddressingStaysInRange)
{
    ProgramBuilder b;
    Addr base = b.alloc("arr", 16 * 8);
    b.beginFunction("main");
    b.loop(100, [&] { b.load(AddrExpr::randomIn(base, 16, 8)); });
    b.endFunction();
    Program p = b.build();
    RecordingPolicy policy;
    Machine m(p, quietConfig(7), policy);
    m.run();
    std::set<Addr> seen;
    for (const auto &a : policy.accesses) {
        EXPECT_GE(a.addr, base);
        EXPECT_LT(a.addr, base + 16 * 8);
        seen.insert(a.addr);
    }
    EXPECT_GT(seen.size(), 8u);  // actually random
}

TEST(Machine, ThreadCreateAndJoinAll)
{
    ProgramBuilder b;
    FuncId worker = b.beginFunction("worker");
    b.compute(100);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.compute(1);
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.numThreads(), 5u);
    EXPECT_EQ(m.stats().get("machine.threads_created"), 4u);
    // 4 workers x 100 + main's compute + thread ops.
    EXPECT_GE(m.totalCost(), 401u);
}

TEST(Machine, JoinSpecificThread)
{
    ProgramBuilder b;
    FuncId worker = b.beginFunction("worker");
    b.compute(10);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.join(1);  // join the second spawned thread only
    b.join(0);
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.liveThreads(), 0u);
}

TEST(Machine, DeterministicAcrossRuns)
{
    ProgramBuilder b;
    Addr arr = b.alloc("arr", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.load(AddrExpr::randomIn(arr, 64, 8));
        b.compute(3);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    auto run_once = [&](uint64_t seed) {
        RecordingPolicy policy;
        Machine m(p, quietConfig(seed), policy);
        m.run();
        std::vector<std::pair<Tid, Addr>> tr;
        for (const auto &a : policy.accesses)
            tr.emplace_back(a.tid, a.addr);
        return std::make_pair(m.totalCost(), tr);
    };
    auto [cost1, trace1] = run_once(5);
    auto [cost2, trace2] = run_once(5);
    auto [cost3, trace3] = run_once(6);
    EXPECT_EQ(cost1, cost2);
    EXPECT_EQ(trace1, trace2);
    EXPECT_NE(trace1, trace3);  // different seed, different schedule
}

TEST(Machine, RunnableThreadsExcludesBlockedMain)
{
    ProgramBuilder b;
    FuncId worker = b.beginFunction("worker");
    b.compute(1000);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    class Probe : public ExecutionPolicy
    {
      public:
        uint32_t maxRunnable = 0;
        bool
        onMemAccess(Machine &, Tid, const Instruction &, Addr,
                    bool) override
        {
            return true;
        }
        void
        onThreadCreated(Machine &m, Tid, Tid) override
        {
            maxRunnable = std::max(maxRunnable, m.runnableThreads());
        }
    } policy;
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_LE(policy.maxRunnable, 3u);
}

TEST(Machine, DeadlockReturnsStructuredError)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.wait(0);  // nobody will ever signal
    b.endFunction();
    Program p = b.build();
    core::NativePolicy policy;
    Machine m(p, quietConfig(), policy);
    const RunError &err = m.run();
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.kind, RunError::Kind::Deadlock);
    ASSERT_EQ(err.threads.size(), 1u);
    EXPECT_EQ(err.threads[0].tid, 0u);
    // Blocked-on state names the function and the offending wait.
    EXPECT_NE(err.threads[0].where.find("main"), std::string::npos);
    EXPECT_EQ(err.threads[0].state, ThreadState::Blocked);
    EXPECT_EQ(m.stats().get("machine.deadlocks"), 1u);
    // The machine survives; error() returns the same report.
    EXPECT_EQ(m.error().kind, RunError::Kind::Deadlock);
}

TEST(Machine, OutOfBoundsAccessIsStructuredError)
{
    // The static base check already triggers at finalize for absolute
    // addresses, so construct the violation dynamically. A malformed
    // workload must end the run with a structured BadAccess error, not
    // kill the process — campaign and service workers keep going.
    ProgramBuilder b2;
    Addr base = b2.alloc("small", 64);
    b2.beginFunction("main");
    AddrExpr e;
    e.base = base;
    e.loopStride = 4096;
    b2.loopBegin(3);
    b2.load(e);
    b2.loopEnd();
    b2.endFunction();
    Program p2 = b2.build();
    core::NativePolicy policy;
    Machine m(p2, quietConfig(), policy);
    const RunError &err = m.run();
    EXPECT_EQ(err.kind, RunError::Kind::BadAccess);
    EXPECT_FALSE(err.ok());
    EXPECT_GT(err.stepsExecuted, 0u);
    ASSERT_EQ(err.threads.size(), 1u);
    EXPECT_EQ(err.threads[0].tid, 0u);
    EXPECT_STREQ(runErrorKindName(err.kind), "bad-access");
}

TEST(Machine, StepLimitTruncatesInsteadOfAborting)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.loop(1000000, [&] { b.compute(1); });
    b.endFunction();
    Program p = b.build();
    MachineConfig cfg = quietConfig();
    cfg.maxSteps = 100;
    core::NativePolicy policy;
    Machine m(p, cfg, policy);
    const RunError &err = m.run();
    EXPECT_TRUE(err.truncated());
    EXPECT_EQ(err.kind, RunError::Kind::Truncated);
    EXPECT_EQ(err.stepsExecuted, 100u);
    // The runaway thread is reported still runnable, mid-loop.
    ASSERT_EQ(err.threads.size(), 1u);
    EXPECT_EQ(err.threads[0].state, ThreadState::Runnable);
    EXPECT_EQ(m.stats().get("machine.truncated"), 1u);
    EXPECT_EQ(m.stats().get("machine.steps"), 100u);
    // Partial cost accounting is still coherent.
    uint64_t sum = 0;
    for (uint64_t c : m.buckets())
        sum += c;
    EXPECT_EQ(sum, m.totalCost());
    EXPECT_GT(m.totalCost(), 0u);
}

TEST(MachineDeathTest, UnfinalizedProgramIsFatal)
{
    Program p;
    Function fn;
    fn.name = "main";
    p.addFunction(std::move(fn));
    core::NativePolicy policy;
    EXPECT_EXIT(Machine(p, quietConfig(), policy),
                testing::ExitedWithCode(1), "not finalized");
}
