/**
 * @file
 * Profile-store tests: the merge algebra (commutative, associative,
 * identity) proven at the byte level via write(), and the
 * parse → merge → rewrite round trip that cross-run accumulation
 * (`--profile-in` / `--profile-out`) depends on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/profile.hh"

using namespace txrace;
using telemetry::AppProfile;
using telemetry::Profile;
using telemetry::SiteProfile;

namespace {

std::string
bytes(const Profile &p)
{
    std::ostringstream ss;
    p.write(ss);
    return ss.str();
}

Profile
sample(uint64_t salt)
{
    Profile p;
    AppProfile &a = p.apps["vips"];
    a.runs = 1;
    a.filterHits = 1000 + salt;
    a.txBegins = 500 + salt;
    a.txCommitted = 480 + salt;
    a.slowRegions = 20;
    a.monitorGatedChecks = salt;
    SiteProfile &s1 = a.sites[12];
    s1.conflictAborts = 3 + salt;
    s1.slowChecks = 7;
    s1.slowCost = 7000;
    s1.monitorShiftMax = salt % 5;
    SiteProfile &s2 = a.sites[40 + uint32_t(salt % 3)];
    s2.capacityAborts = 1;
    s2.otherAborts = salt;
    AppProfile &b = p.apps["x264"];
    b.runs = 1;
    b.txBegins = 9 + salt;
    return p;
}

} // namespace

TEST(Profile, MergeIsCommutativeByteExact)
{
    Profile ab = sample(1);
    ab.merge(sample(2));
    Profile ba = sample(2);
    ba.merge(sample(1));
    EXPECT_EQ(bytes(ab), bytes(ba));
}

TEST(Profile, MergeIsAssociativeByteExact)
{
    Profile left = sample(1);
    left.merge(sample(2));
    left.merge(sample(3));

    Profile bc = sample(2);
    bc.merge(sample(3));
    Profile right = sample(1);
    right.merge(bc);

    EXPECT_EQ(bytes(left), bytes(right));
}

TEST(Profile, EmptyIsMergeIdentity)
{
    Profile p = sample(4);
    std::string before = bytes(p);
    p.merge(Profile{});
    EXPECT_EQ(bytes(p), before);

    Profile e;
    e.merge(sample(4));
    EXPECT_EQ(bytes(e), before);
}

TEST(Profile, SumsAndMaxMergeSemantics)
{
    Profile a = sample(1);
    a.apps["vips"].sites[12].monitorShiftMax = 4;
    Profile b = sample(1);
    b.apps["vips"].sites[12].monitorShiftMax = 2;
    a.merge(b);
    const AppProfile &m = a.apps.at("vips");
    EXPECT_EQ(m.runs, 2u);
    EXPECT_EQ(m.filterHits, 2002u);
    // Counters sum; the sampling shift keeps the deepest mark.
    EXPECT_EQ(m.sites.at(12).conflictAborts, 8u);
    EXPECT_EQ(m.sites.at(12).monitorShiftMax, 4u);
}

TEST(Profile, ParseRoundTripIsByteExact)
{
    Profile p = sample(7);
    std::string text = bytes(p);
    Profile back;
    std::string error;
    ASSERT_TRUE(Profile::parse(text, back, error)) << error;
    EXPECT_EQ(bytes(back), text);
}

TEST(Profile, ParseMergeRewriteMatchesDirectMerge)
{
    // The CLI path: run A writes, run B reads A's file via
    // --profile-in, merges its own counters, writes again. The file
    // must equal merging both runs in memory.
    Profile a = sample(1), b = sample(2);
    Profile direct = sample(1);
    direct.merge(sample(2));

    Profile reread;
    std::string error;
    ASSERT_TRUE(Profile::parse(bytes(a), reread, error)) << error;
    reread.merge(b);
    EXPECT_EQ(bytes(reread), bytes(direct));
}

TEST(Profile, ParseRejectsWrongSchema)
{
    Profile out;
    std::string error;
    EXPECT_FALSE(Profile::parse(
        "{\"schema\": \"txrace-metrics-v1\", \"apps\": {}}", out,
        error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Profile::parse("not json at all", out, error));
    EXPECT_FALSE(Profile::parse("{\"apps\": {}}", out, error));
}

TEST(Profile, LargeCountersSurviveRoundTrip)
{
    // Counters above 2^53 must not be squeezed through a double.
    Profile p;
    AppProfile &a = p.apps["big"];
    a.runs = 1;
    a.filterHits = 0xFFFFFFFFFFFFFFFFull;
    a.sites[1].slowCost = (1ull << 60) + 12345;
    Profile back;
    std::string error;
    ASSERT_TRUE(Profile::parse(bytes(p), back, error)) << error;
    EXPECT_EQ(back.apps.at("big").filterHits, 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(back.apps.at("big").sites.at(1).slowCost,
              (1ull << 60) + 12345);
}
