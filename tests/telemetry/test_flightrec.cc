/**
 * @file
 * Flight-recorder unit tests: ring semantics (wrap, oldest-first
 * windows, lazy per-thread growth), the enable gate, and the
 * forensics assembly helpers (footprints, last-writer chain).
 */

#include <gtest/gtest.h>

#include "telemetry/flightrec.hh"

using namespace txrace;
using telemetry::FlightRecorder;
using telemetry::ForensicsThread;
using telemetry::ForensicsWrite;
using telemetry::FrAbort;
using telemetry::FrBudget;
using telemetry::FrEvent;
using telemetry::FrKind;

TEST(FlightRec, DisabledRecordsNothing)
{
    FlightRecorder rec;
    EXPECT_FALSE(rec.enabled());
    rec.note(0, FrKind::Access, 1, 7, 0x40, 1);
    EXPECT_EQ(rec.threads(), 0u);
    EXPECT_EQ(rec.offered(0), 0u);
    EXPECT_TRUE(rec.window(0).empty());
}

TEST(FlightRec, CompiledInMatchesBuildFlag)
{
    // The tier-1 suite builds with the recorder compiled in; the gate
    // is exercised by the TXRACE_FLIGHTREC=OFF CI configuration.
#ifdef TXRACE_NO_FLIGHTREC
    EXPECT_FALSE(FlightRecorder::kCompiledIn);
    FlightRecorder rec;
    rec.enable();
    EXPECT_FALSE(rec.enabled());
#else
    EXPECT_TRUE(FlightRecorder::kCompiledIn);
    FlightRecorder rec;
    rec.enable();
    EXPECT_TRUE(rec.enabled());
#endif
}

#ifndef TXRACE_NO_FLIGHTREC

TEST(FlightRec, WindowIsOldestFirst)
{
    FlightRecorder rec;
    rec.enable();
    for (uint64_t i = 0; i < 10; ++i)
        rec.note(0, FrKind::Access, /*step=*/100 + i, /*site=*/7,
                 /*arg=*/i);
    std::vector<FrEvent> window = rec.window(0);
    ASSERT_EQ(window.size(), 10u);
    for (uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(window[i].step, 100 + i);
        EXPECT_EQ(window[i].arg, i);
    }
}

TEST(FlightRec, RingWrapsKeepingNewest)
{
    FlightRecorder rec;
    rec.enable();
    const uint64_t total = FlightRecorder::kCapacity + 37;
    for (uint64_t i = 0; i < total; ++i)
        rec.note(0, FrKind::Access, i);
    EXPECT_EQ(rec.offered(0), total);
    std::vector<FrEvent> window = rec.window(0);
    ASSERT_EQ(window.size(), size_t(FlightRecorder::kCapacity));
    // The oldest retained event is total - kCapacity; newest last.
    EXPECT_EQ(window.front().step, total - FlightRecorder::kCapacity);
    EXPECT_EQ(window.back().step, total - 1);
    for (size_t i = 1; i < window.size(); ++i)
        EXPECT_EQ(window[i].step, window[i - 1].step + 1);
}

TEST(FlightRec, ThreadsGrowLazilyAndIndependently)
{
    FlightRecorder rec;
    rec.enable();
    rec.note(3, FrKind::TxBegin, 5);
    EXPECT_EQ(rec.threads(), 4u);
    EXPECT_EQ(rec.offered(3), 1u);
    EXPECT_EQ(rec.offered(0), 0u);
    rec.note(1, FrKind::TxCommit, 9, ~0u, 42);
    EXPECT_EQ(rec.offered(1), 1u);
    EXPECT_EQ(rec.window(1).front().arg, 42u);
    rec.clear();
    EXPECT_EQ(rec.offered(3), 0u);
    EXPECT_TRUE(rec.window(3).empty());
}

TEST(FlightRec, DrainThreadComputesFootprints)
{
    FlightRecorder rec;
    rec.enable();
    // Reads on granules 0x40, 0x80 (0x40 twice); write on 0x80, 0xc0.
    rec.note(2, FrKind::Access, 1, 10, 0x40, 0);
    rec.note(2, FrKind::Access, 2, 11, 0x80, 0);
    rec.note(2, FrKind::Access, 3, 12, 0x40, 0);
    rec.note(2, FrKind::Access, 4, 13, 0x80, 1);
    rec.note(2, FrKind::Access, 5, 14, 0xc0, 1);
    // Non-access events must not pollute the footprints.
    rec.note(2, FrKind::TxAbort, 6, 15,
             uint64_t(FrAbort::Conflict));
    ForensicsThread ft = telemetry::drainThread(rec, 2);
    EXPECT_EQ(ft.tid, 2u);
    EXPECT_EQ(ft.window.size(), 6u);
    EXPECT_EQ(ft.readGranules, (std::vector<uint64_t>{0x40, 0x80}));
    EXPECT_EQ(ft.writeGranules, (std::vector<uint64_t>{0x80, 0xc0}));
}

TEST(FlightRec, LastWriterChainStepOrderedAndCapped)
{
    FlightRecorder rec;
    rec.enable();
    // Thread 0 writes granule 0x40 at steps 3, 9; thread 1 at step 6.
    rec.note(0, FrKind::Access, 3, 100, 0x40, 1);
    rec.note(0, FrKind::Access, 9, 101, 0x40, 1);
    rec.note(1, FrKind::Access, 6, 200, 0x40, 1);
    // Reads and other granules are never writers.
    rec.note(1, FrKind::Access, 7, 201, 0x40, 0);
    rec.note(1, FrKind::Access, 8, 202, 0x80, 1);
    std::vector<ForensicsThread> threads = {
        telemetry::drainThread(rec, 0),
        telemetry::drainThread(rec, 1),
    };
    std::vector<ForensicsWrite> chain =
        telemetry::lastWriterChain(threads, 0x40);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0].step, 3u);
    EXPECT_EQ(chain[0].tid, 0u);
    EXPECT_EQ(chain[1].step, 6u);
    EXPECT_EQ(chain[1].tid, 1u);
    EXPECT_EQ(chain[2].step, 9u);
    EXPECT_EQ(chain[2].site, 101u);

    // The cap keeps the NEWEST entries.
    std::vector<ForensicsWrite> capped =
        telemetry::lastWriterChain(threads, 0x40, 2);
    ASSERT_EQ(capped.size(), 2u);
    EXPECT_EQ(capped.front().step, 6u);
    EXPECT_EQ(capped.back().step, 9u);
}

TEST(FlightRec, EventNamesAreStable)
{
    EXPECT_STREQ(telemetry::frKindName(FrKind::Access), "access");
    EXPECT_STREQ(telemetry::frKindName(FrKind::TxAbort), "tx_abort");
    EXPECT_STREQ(telemetry::frKindName(FrKind::Gov), "gov");
    EXPECT_STREQ(telemetry::frAbortName(FrAbort::Conflict),
                 "conflict");
    EXPECT_STREQ(telemetry::frAbortName(FrAbort::TxFail), "txfail");
    EXPECT_STREQ(telemetry::frAbortName(FrAbort::HwLimit), "hwlimit");
    EXPECT_STREQ(telemetry::frBudgetName(FrBudget::RegionGated),
                 "region_gated");
}

#endif // !TXRACE_NO_FLIGHTREC
