/**
 * @file
 * Schema tests of the telemetry exporters: the txrace-metrics-v1
 * document written by `txrace_run --metrics-json` and the Chrome
 * trace-event timeline written by `--trace-json`. These are the
 * stability contract external consumers parse, so the required keys
 * are asserted explicitly (a lightweight golden-schema check).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/driver.hh"
#include "core/metrics_export.hh"
#include "ir/builder.hh"

using namespace txrace;

namespace {

ir::Program
racyProgram()
{
    ir::ProgramBuilder b;
    ir::Addr shared = b.alloc("shared", 64);
    ir::Addr data = b.alloc("data", 4096);
    ir::FuncId worker = b.beginFunction("worker");
    // The syscall splits each iteration into its own transactional
    // region, so the run has both commits and conflict aborts.
    b.loop(40, [&] {
        for (int i = 0; i < 6; ++i)
            b.load(ir::AddrExpr::absolute(data + 8 * i), "pad");
        b.store(ir::AddrExpr::absolute(shared), "racy-store");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    return b.build();
}

core::RunResult
runTxRace(const ir::Program &prog, bool record_trace)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    cfg.machine.seed = 11;
    cfg.machine.interruptPerStep = 0.0;
    cfg.machine.recordTrace = record_trace;
    return core::runProgram(prog, cfg);
}

std::string
metricsDocument(const ir::Program &prog, const core::RunResult &result)
{
    core::MetricsMeta meta;
    meta.app = "unit-test";
    meta.mode = "txrace";
    meta.seed = 11;
    meta.workers = 3;
    meta.scale = 1;
    std::ostringstream ss;
    core::writeMetricsJson(ss, meta, &prog, result);
    return ss.str();
}

} // namespace

TEST(MetricsJson, ContainsEveryRequiredSection)
{
    ir::Program prog = racyProgram();
    core::RunResult r = runTxRace(prog, false);
    ASSERT_TRUE(r.error.ok());
    std::string doc = metricsDocument(prog, r);

    for (const char *needle :
         {"\"schema\": \"txrace-metrics-v1\"", "\"run\":",
          "\"app\": \"unit-test\"", "\"mode\": \"txrace\"",
          "\"cost_buckets\":", "\"counters\":", "\"histograms\":",
          "\"phases\":", "\"total_steps\":", "\"per_thread\":",
          "\"abort_causes\":", "\"conflicts\":", "\"top_lines\":",
          "\"races\":"}) {
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle << " in:\n" << doc;
    }
    // The per-mode phase breakdown carries all four phase keys.
    for (const char *phase :
         {"\"fast\":", "\"slow\":", "\"degraded\":", "\"native\":"})
        EXPECT_NE(doc.find(phase), std::string::npos) << phase;
    // Counters flow through under their legacy names.
    EXPECT_NE(doc.find("\"tx.committed\":"), std::string::npos);
    EXPECT_NE(doc.find("\"machine.steps\":"), std::string::npos);
    // Committed-transaction cost histogram is populated.
    EXPECT_NE(doc.find("\"tx.cost.committed\":"), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\":"), std::string::npos);
}

TEST(MetricsJson, PhaseCountsSumToTotalSteps)
{
    ir::Program prog = racyProgram();
    core::RunResult r = runTxRace(prog, false);
    ASSERT_TRUE(r.error.ok());
    const auto &phases = r.telemetry.phases;
    uint64_t sum = 0;
    for (size_t p = 0; p < telemetry::kNumPhases; ++p)
        sum += phases.count(static_cast<telemetry::Phase>(p));
    EXPECT_EQ(sum, phases.total());
    EXPECT_EQ(phases.total(), r.error.stepsExecuted);
    // And the document reports the same step total in both places.
    std::string doc = metricsDocument(prog, r);
    std::string steps =
        "\"steps\": " + std::to_string(r.error.stepsExecuted);
    std::string total =
        "\"total_steps\": " + std::to_string(phases.total());
    EXPECT_NE(doc.find(steps), std::string::npos) << doc;
    EXPECT_NE(doc.find(total), std::string::npos) << doc;
}

TEST(MetricsJson, ConflictHeatmapAttributesContendedLine)
{
    ir::Program prog = racyProgram();
    core::RunResult r = runTxRace(prog, false);
    ASSERT_TRUE(r.error.ok());
    // Three workers share one cache line: conflicts must be recorded
    // and attributed to a site inside @worker.
    EXPECT_GT(r.telemetry.conflicts.total(), 0u);
    auto top = r.telemetry.conflicts.topN(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_GT(top[0].conflicts, 0u);
    std::string doc = metricsDocument(prog, r);
    EXPECT_NE(doc.find("(in @worker)"), std::string::npos) << doc;
}

TEST(TraceJson, IsAChromeTraceEventArray)
{
    ir::Program prog = racyProgram();
    core::RunResult r = runTxRace(prog, true);
    ASSERT_TRUE(r.error.ok());
    ASSERT_FALSE(r.telemetry.trace.events().empty());

    std::ostringstream ss;
    r.telemetry.trace.writeChromeTrace(ss);
    std::string doc = ss.str();

    // A JSON array of event objects...
    ASSERT_FALSE(doc.empty());
    EXPECT_EQ(doc.front(), '[');
    EXPECT_EQ(doc[doc.find_last_not_of(" \n")], ']');
    // ...with thread-name metadata, complete (duration) spans, and the
    // per-event fields the trace viewers require.
    EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    for (const char *field :
         {"\"pid\":", "\"tid\":", "\"ts\":", "\"dur\":", "\"name\":",
          "\"cat\":"})
        EXPECT_NE(doc.find(field), std::string::npos) << field;
}

TEST(TraceJson, DisabledBufferRecordsNothing)
{
    core::RunResult r = runTxRace(racyProgram(), false);
    ASSERT_TRUE(r.error.ok());
    EXPECT_TRUE(r.telemetry.trace.events().empty());
    EXPECT_EQ(r.telemetry.trace.dropped(), 0u);
}
