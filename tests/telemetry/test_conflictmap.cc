/**
 * @file
 * Conflict-heatmap tests, focused on the false-sharing classifier:
 * a line whose conflicts span distinct sub-line granules is flagged
 * as a false-sharing candidate, a line hammered on one granule is
 * not, and the exported top-N carries the verdict.
 */

#include <gtest/gtest.h>

#include "telemetry/conflictmap.hh"

using namespace txrace;
using telemetry::ConflictHotLine;
using telemetry::ConflictMap;

TEST(ConflictMap, DistinctGranulesFlagFalseSharing)
{
    ConflictMap map;
    // Two different variables packed into line 5 (granules 0x140 and
    // 0x148): the classic false-sharing shape.
    map.record(5, 0x140, 10);
    map.record(5, 0x148, 11);
    const auto &line = map.lines().at(5);
    EXPECT_EQ(line.conflicts, 2u);
    EXPECT_EQ(line.granules.size(), 2u);
    EXPECT_TRUE(line.falseSharingCandidate());
}

TEST(ConflictMap, SameGranuleIsNotFlagged)
{
    ConflictMap map;
    // Many conflicts, all on ONE granule of line 9: true sharing on a
    // single variable, however hot — never a false-sharing candidate.
    for (int i = 0; i < 50; ++i)
        map.record(9, 0x240, 10 + (i % 3));
    const auto &line = map.lines().at(9);
    EXPECT_EQ(line.conflicts, 50u);
    EXPECT_EQ(line.granules.size(), 1u);
    EXPECT_FALSE(line.falseSharingCandidate());
}

TEST(ConflictMap, VerdictIsPerLine)
{
    ConflictMap map;
    map.record(1, 0x40, 1);   // line 1: single granule
    map.record(1, 0x40, 2);
    map.record(2, 0x80, 3);   // line 2: two granules
    map.record(2, 0x88, 3);
    EXPECT_FALSE(map.lines().at(1).falseSharingCandidate());
    EXPECT_TRUE(map.lines().at(2).falseSharingCandidate());
    EXPECT_EQ(map.total(), 4u);
    EXPECT_EQ(map.lineCount(), 2u);
}

TEST(ConflictMap, TopNCarriesVerdictAndGranuleCount)
{
    ConflictMap map;
    for (int i = 0; i < 5; ++i)
        map.record(7, 0x1c0, 20);        // hottest, true sharing
    map.record(3, 0xc0, 21);
    map.record(3, 0xc8, 22);             // cooler, false sharing
    std::vector<ConflictHotLine> top = map.topN(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].line, 7u);
    EXPECT_EQ(top[0].conflicts, 5u);
    EXPECT_EQ(top[0].distinctGranules, 1u);
    EXPECT_FALSE(top[0].falseSharingCandidate);
    EXPECT_EQ(top[1].line, 3u);
    EXPECT_EQ(top[1].distinctGranules, 2u);
    EXPECT_TRUE(top[1].falseSharingCandidate);
}
