/**
 * @file
 * Unit tests of the typed metrics registry and the log-bucket
 * histogram: bucket boundaries, merging, interned-id determinism, and
 * the StatSet compatibility export.
 */

#include <gtest/gtest.h>

#include "support/stats.hh"
#include "telemetry/registry.hh"

using namespace txrace;
using telemetry::LogHistogram;
using telemetry::MetricId;
using telemetry::MetricKind;
using telemetry::MetricRegistry;

TEST(LogHistogram, BucketBoundaries)
{
    // Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(LogHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LogHistogram::bucketOf(1), 1u);
    EXPECT_EQ(LogHistogram::bucketOf(2), 2u);
    EXPECT_EQ(LogHistogram::bucketOf(3), 2u);
    EXPECT_EQ(LogHistogram::bucketOf(4), 3u);
    EXPECT_EQ(LogHistogram::bucketOf(1023), 10u);
    EXPECT_EQ(LogHistogram::bucketOf(1024), 11u);
    EXPECT_EQ(LogHistogram::bucketOf(~0ull), 64u);

    for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
        // Every bucket's lower bound maps back into the bucket.
        EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketLo(i)), i);
    }
    // Upper bounds are exclusive: hi(i) lands in bucket i+1.
    EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketHi(3)), 4u);
}

TEST(LogHistogram, ObserveAndStats)
{
    LogHistogram h;
    h.observe(0);
    h.observe(1);
    h.observe(5);
    h.observe(5);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 11u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 11.0 / 4.0);
    EXPECT_EQ(h.bucketCount(0), 1u);  // the 0
    EXPECT_EQ(h.bucketCount(1), 1u);  // the 1
    EXPECT_EQ(h.bucketCount(3), 2u);  // the 5s: [4, 8)
}

TEST(LogHistogram, MergeIsElementwise)
{
    LogHistogram a, b;
    a.observe(3);
    a.observe(100);
    b.observe(3);
    b.observe(7);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 113u);
    EXPECT_EQ(a.max(), 100u);
    EXPECT_EQ(a.bucketCount(LogHistogram::bucketOf(3)), 2u);
    EXPECT_EQ(a.bucketCount(LogHistogram::bucketOf(7)), 1u);
    EXPECT_EQ(a.bucketCount(LogHistogram::bucketOf(100)), 1u);
}

TEST(MetricRegistry, InternedIdsAreDenseAndDeterministic)
{
    // Two registries fed the same registration sequence hand out the
    // same ids — the property run-to-run determinism rests on.
    MetricRegistry a, b;
    for (MetricRegistry *r : {&a, &b}) {
        EXPECT_EQ(r->counter("x.first"), MetricId{0});
        EXPECT_EQ(r->gauge("x.second"), MetricId{1});
        EXPECT_EQ(r->histogram("x.third"), MetricId{2});
        // Re-registration returns the existing id.
        EXPECT_EQ(r->counter("x.first"), MetricId{0});
    }
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.metrics()[1].name, "x.second");
    EXPECT_EQ(a.metrics()[1].kind, MetricKind::Gauge);
}

TEST(MetricRegistry, HotPathUpdatesAndLookup)
{
    MetricRegistry reg;
    MetricId c = reg.counter("c");
    MetricId g = reg.gauge("g");
    MetricId h = reg.histogram("h");
    reg.add(c);
    reg.add(c, 4);
    reg.set(g, 17);
    reg.observe(h, 9);
    EXPECT_EQ(reg.value(c), 5u);
    EXPECT_EQ(reg.value(g), 17u);
    EXPECT_EQ(reg.hist(h).count(), 1u);
    EXPECT_EQ(reg.valueByName("c"), 5u);
    EXPECT_EQ(reg.valueByName("nope"), 0u);
    EXPECT_EQ(reg.find("g"), g);
    EXPECT_EQ(reg.find("nope"), telemetry::kNoMetric);
}

TEST(MetricRegistry, ExportSkipsZerosAndHistograms)
{
    MetricRegistry reg;
    MetricId touched = reg.counter("touched");
    reg.counter("never.touched");
    reg.histogram("a.histogram");
    MetricId gz = reg.gauge("gauge.set");
    reg.add(touched, 3);
    reg.set(gz, 8);

    StatSet out;
    reg.exportTo(out);
    EXPECT_EQ(out.get("touched"), 3u);
    EXPECT_EQ(out.get("gauge.set"), 8u);
    // Zero-valued and histogram metrics never appear: the dump keeps
    // the legacy "counters spring into existence at first touch" shape.
    EXPECT_EQ(out.all().count("never.touched"), 0u);
    EXPECT_EQ(out.all().count("a.histogram"), 0u);

    // set() semantics: exporting twice does not double.
    reg.exportTo(out);
    EXPECT_EQ(out.get("touched"), 3u);
}
