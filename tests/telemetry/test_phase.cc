/**
 * @file
 * Phase-profiler accounting tests: every executed scheduler step is
 * attributed to exactly one (thread, phase) cell, so the cells sum to
 * the run's step count — under every detection mode.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "core/governor.hh"
#include "core/policies.hh"
#include "ir/builder.hh"
#include "telemetry/phase.hh"

using namespace txrace;
using telemetry::Phase;

namespace {

/** Two workers hammering one shared line: plenty of transactions and
 *  conflicts, so fast and slow phases both occur under TxRace. */
ir::Program
contendedProgram(uint32_t workers = 2)
{
    ir::ProgramBuilder b;
    ir::Addr shared = b.alloc("shared", 64);
    ir::Addr own = b.alloc("own", 16 * 512);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(40, [&] {
        b.store(ir::AddrExpr::absolute(shared), "racy-store");
        b.load(ir::AddrExpr::perThread(own, 512));
        b.compute(3);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, workers);
    b.joinAll();
    b.endFunction();
    return b.build();
}

core::RunConfig
config(core::RunMode mode)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine.seed = 7;
    cfg.machine.interruptPerStep = 0.0;
    return cfg;
}

uint64_t
cellSum(const telemetry::PhaseProfiler &phases)
{
    uint64_t sum = 0;
    for (const auto &per : phases.perThread())
        for (uint64_t c : per)
            sum += c;
    return sum;
}

} // namespace

TEST(PhaseProfiler, NoteAccumulatesPerThreadAndPhase)
{
    telemetry::PhaseProfiler p;
    p.note(0, Phase::Fast);
    p.note(0, Phase::Fast);
    p.note(2, Phase::Slow);
    p.note(1, Phase::Native);
    EXPECT_EQ(p.total(), 4u);
    EXPECT_EQ(p.count(Phase::Fast), 2u);
    EXPECT_EQ(p.count(Phase::Slow), 1u);
    EXPECT_EQ(p.count(Phase::Degraded), 0u);
    EXPECT_EQ(p.count(Phase::Native), 1u);
    ASSERT_EQ(p.perThread().size(), 3u);
    EXPECT_EQ(p.perThread()[0][static_cast<size_t>(Phase::Fast)], 2u);
    EXPECT_EQ(p.perThread()[2][static_cast<size_t>(Phase::Slow)], 1u);
    EXPECT_EQ(cellSum(p), p.total());
}

TEST(PhaseProfiler, StepsSumToTotalUnderEveryMode)
{
    ir::Program prog = contendedProgram();
    for (core::RunMode mode :
         {core::RunMode::Native, core::RunMode::TSan,
          core::RunMode::TxRaceProfLoopcut, core::RunMode::TxRaceNoOpt}) {
        core::RunResult r = core::runProgram(prog, config(mode));
        ASSERT_TRUE(r.error.ok());
        const auto &phases = r.telemetry.phases;
        // One note per executed step; the per-(thread, phase) cells
        // partition the run exactly.
        EXPECT_EQ(phases.total(), r.error.stepsExecuted)
            << "mode " << core::runModeName(mode);
        EXPECT_EQ(cellSum(phases), phases.total());
        uint64_t by_phase = 0;
        for (size_t p = 0; p < telemetry::kNumPhases; ++p)
            by_phase += phases.count(static_cast<Phase>(p));
        EXPECT_EQ(by_phase, phases.total());
    }
}

TEST(PhaseProfiler, TxRaceSpendsStepsInFastPath)
{
    core::RunResult r = core::runProgram(
        contendedProgram(), config(core::RunMode::TxRaceProfLoopcut));
    ASSERT_TRUE(r.error.ok());
    // The transactionalized workers must spend time inside HTM.
    EXPECT_GT(r.telemetry.phases.count(Phase::Fast), 0u);
    // Spawning/joining happens outside any monitored region.
    EXPECT_GT(r.telemetry.phases.count(Phase::Native), 0u);
}

TEST(PhaseProfiler, CostCellsPartitionTotalCostUnderEveryMode)
{
    // The cost dimension mirrors the step dimension: every unit of
    // virtual cost lands in exactly one (thread, phase) cell, so the
    // cells sum to the run's total cost — the invariant monitor-mode
    // budget accounting leans on.
    ir::Program prog = contendedProgram();
    for (core::RunMode mode :
         {core::RunMode::Native, core::RunMode::TSan,
          core::RunMode::TxRaceProfLoopcut, core::RunMode::TxRaceNoOpt}) {
        core::RunResult r = core::runProgram(prog, config(mode));
        ASSERT_TRUE(r.error.ok());
        const auto &phases = r.telemetry.phases;
        EXPECT_EQ(phases.totalCost(), r.totalCost)
            << "mode " << core::runModeName(mode);
        uint64_t cells = 0;
        for (const auto &per : phases.perThreadCost())
            for (uint64_t c : per)
                cells += c;
        EXPECT_EQ(cells, phases.totalCost());
        uint64_t by_phase = 0;
        for (size_t p = 0; p < telemetry::kNumPhases; ++p)
            by_phase += phases.costOf(static_cast<Phase>(p));
        EXPECT_EQ(by_phase, phases.totalCost());
    }
}

TEST(PhaseProfiler, GovernorBackoffStallIsDegradedCost)
{
    // The in-place retry stall is time spent *because of* degradation
    // management — it must land in the degraded cost bucket, not get
    // mistaken for productive fast-path time.
    ir::Program prog = contendedProgram();
    core::NativePolicy policy;
    sim::MachineConfig mcfg;
    sim::Machine m(prog, mcfg, policy);

    core::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.maxBackoffRetries = 2;
    core::FallbackGovernor gov(cfg, 1);

    ASSERT_EQ(m.tel().phases.costOf(Phase::Degraded), 0u);
    ASSERT_EQ(gov.onAbort(m, 0, sim::Bucket::Unknown),
              core::GovernorAction::RetryBackoff);
    EXPECT_EQ(m.tel().phases.costOf(Phase::Degraded),
              cfg.backoffBaseCost);
    EXPECT_EQ(m.tel().phases.costOf(Phase::Fast), 0u);
}

TEST(PhaseProfiler, NativeModeIsAllNative)
{
    core::RunResult r = core::runProgram(contendedProgram(),
                                         config(core::RunMode::Native));
    ASSERT_TRUE(r.error.ok());
    const auto &phases = r.telemetry.phases;
    EXPECT_EQ(phases.count(Phase::Native), phases.total());
    EXPECT_EQ(phases.count(Phase::Fast), 0u);
    EXPECT_EQ(phases.count(Phase::Slow), 0u);
    EXPECT_EQ(phases.count(Phase::Degraded), 0u);
}
