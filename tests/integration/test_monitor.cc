/**
 * @file
 * Monitor-mode acceptance: the sustained-server soak behind
 * `txrace_run --monitor`. The apache-stream scenario serves
 * keep-alive request streams across worker-pool generations while
 * adjacent workers race on per-slot connection-table entries; under a
 * hard 5% budget the controller must hold EVERY window — clean and
 * under fault storms — while keeping recall high, inventing no races,
 * reopening the gates after storms, and staying byte-deterministic.
 * A budget no amount of shedding can satisfy must end the run with a
 * structured error, not thrash.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/driver.hh"
#include "core/fingerprint.hh"
#include "fault/fault.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

constexpr double kBudgetPct = 5.0;

workloads::AppModel
streamApp(uint32_t workers = 4)
{
    workloads::WorkloadParams params;
    params.nWorkers = workers;
    params.calibrate = true;  // pin the paper-row overhead regime
    return workloads::makeApp("apache-stream", params);
}

core::RunConfig
monitorConfig(const workloads::AppModel &app, uint64_t seed,
              double budget_pct = kBudgetPct)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    cfg.machine = app.machine;
    cfg.machine.seed = seed;
    cfg.governor.enabled = true;
    cfg.budget.enabled = true;
    cfg.budget.budgetPct = budget_pct;
    return cfg;
}

std::set<std::string>
detectedLabels(const workloads::AppModel &app,
               const core::RunResult &r)
{
    std::set<std::string> out;
    for (const auto &[sig, race] :
         core::fingerprintedRaces(app.program, r.races))
        out.insert(sig.label);
    return out;
}

std::set<std::string>
truthLabels(const workloads::AppModel &app)
{
    std::set<std::string> out;
    for (const workloads::RaceLabel &label : app.groundTruth)
        out.insert(core::raceLabelKey(label.a, label.b));
    return out;
}

/** Budget holds in every complete window; detected ⊆ ground truth
 *  (zero false positives); recall ≥ 80% of the planted families. */
void
checkAcceptance(const workloads::AppModel &app,
                const core::RunResult &r, const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_TRUE(r.error.ok()) << sim::runErrorKindName(r.error.kind);
    ASSERT_TRUE(r.budget.enabled);
    ASSERT_GE(r.budget.windows.size(), 40u);

    const uint64_t allowed = static_cast<uint64_t>(
        r.budget.budgetPct / 100.0 *
        static_cast<double>(r.budget.windowBase));
    for (size_t i = 0; i < r.budget.windows.size(); ++i) {
        const core::BudgetWindow &w = r.budget.windows[i];
        EXPECT_LE(w.overhead, allowed) << "window " << i;
        EXPECT_FALSE(w.hardOver) << "window " << i;
    }

    std::set<std::string> truth = truthLabels(app);
    std::set<std::string> found = detectedLabels(app, r);
    for (const std::string &label : found)
        EXPECT_TRUE(truth.count(label))
            << "false positive: " << label;
    EXPECT_GE(static_cast<double>(found.size()),
              0.8 * static_cast<double>(truth.size()))
        << "recall " << found.size() << "/" << truth.size();
}

} // namespace

TEST(Monitor, TSanFindsExactlyThePlantedStreamFamilies)
{
    // Ground-truth exactness first: the HB oracle on the soak
    // scenario reports the 24 planted connection-table families, all
    // of them, and nothing else.
    workloads::AppModel app = streamApp();
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TSan;
    cfg.machine = app.machine;
    cfg.machine.seed = 1;
    core::RunResult tsan = core::runProgram(app.program, cfg);
    ASSERT_TRUE(tsan.error.ok());
    EXPECT_EQ(detectedLabels(app, tsan), truthLabels(app));
    EXPECT_EQ(app.groundTruth.size(), 24u);
}

TEST(Monitor, BudgetHoldsEveryWindowOnTheCleanSoak)
{
    workloads::AppModel app = streamApp();
    core::RunResult r =
        core::runProgram(app.program, monitorConfig(app, 1));
    checkAcceptance(app, r, "clean soak");

    // The adaptive machinery actually engaged: sites were cut,
    // sampling skipped work, and probes climbed back up.
    EXPECT_GT(r.budget.siteCuts, 0u);
    EXPECT_GT(r.budget.sampledSkips, 0u);
    EXPECT_GT(r.budget.siteProbes, 0u);
}

TEST(Monitor, BudgetHoldsUnderFaultStorms)
{
    workloads::AppModel app = streamApp();
    for (const char *scenario : {"slowpath-stall", "chaos"}) {
        core::RunConfig cfg = monitorConfig(app, 1);
        // Horizon well inside the ~40k-step run so every episode ends
        // with plenty of run left to observe the recovery.
        cfg.machine.faults = fault::makeScenario(scenario, 30'000);
        core::RunResult r = core::runProgram(app.program, cfg);
        checkAcceptance(app, r, scenario);

        // Post-storm recovery within bounded windows: by the final
        // quarter of the run the admission gates have reopened — the
        // budget is no longer refusing most of what it sees.
        const auto &w = r.budget.windows;
        size_t tail = w.size() / 4;
        size_t open = 0;
        for (size_t i = w.size() - tail; i < w.size(); ++i)
            open += w[i].refused ? 0 : 1;
        EXPECT_GE(open * 2, tail)
            << scenario << ": gates still mostly closed at run end";
    }
}

TEST(Monitor, SamplingTradesRecallNeverPrecision)
{
    // Even at a budget tight enough to gate most checking, whatever
    // the monitor still reports must be real: detection under
    // pressure is a subset of the fault-free HB oracle.
    workloads::AppModel app = streamApp();

    core::RunConfig tsan_cfg;
    tsan_cfg.mode = core::RunMode::TSan;
    tsan_cfg.machine = app.machine;
    tsan_cfg.machine.seed = 3;
    core::RunResult tsan = core::runProgram(app.program, tsan_cfg);

    for (double pct : {2.0, 5.0, 10.0}) {
        core::RunConfig cfg = monitorConfig(app, 3, pct);
        core::RunResult r = core::runProgram(app.program, cfg);
        EXPECT_EQ(r.races.intersectCount(tsan.races), r.races.count())
            << "budget " << pct << "%: reported a race TSan refutes";
    }
}

TEST(Monitor, RunsAreByteIdenticalGivenSeedAndBudget)
{
    workloads::AppModel app = streamApp();
    auto runOnce = [&](uint64_t seed) {
        return core::runProgram(app.program, monitorConfig(app, seed));
    };
    core::RunResult a = runOnce(7);
    core::RunResult b = runOnce(7);
    core::RunResult c = runOnce(8);

    ASSERT_EQ(a.budget.windows.size(), b.budget.windows.size());
    for (size_t i = 0; i < a.budget.windows.size(); ++i) {
        EXPECT_EQ(a.budget.windows[i].overhead,
                  b.budget.windows[i].overhead) << "window " << i;
    }
    EXPECT_EQ(a.budget.siteShifts, b.budget.siteShifts);
    EXPECT_EQ(a.budget.sampledSkips, b.budget.sampledSkips);

    auto dump = [](const core::RunResult &r) {
        std::ostringstream os;
        for (const auto &[k, v] : r.stats.all())
            os << k << '=' << v << '\n';
        return os.str();
    };
    EXPECT_EQ(dump(a), dump(b));
    EXPECT_NE(dump(a), dump(c));  // the seed does matter
}

TEST(Monitor, UnsatisfiableBudgetEndsWithAStructuredError)
{
    // At 0.5% the un-gateable floor (sync tracking, gate branches)
    // alone exceeds the hard line: after enough consecutive blown
    // windows the run must end with RunError::Kind::Budget instead of
    // thrashing to completion.
    workloads::AppModel app = streamApp();
    core::RunResult r =
        core::runProgram(app.program, monitorConfig(app, 1, 0.5));
    EXPECT_EQ(r.error.kind, sim::RunError::Kind::Budget);
}

TEST(Monitor, DisabledBudgetLeavesTheRunUntouched)
{
    // --monitor off: the controller must be fully inert — identical
    // stats to a run that never constructed it.
    workloads::AppModel app = streamApp();
    core::RunConfig cfg = monitorConfig(app, 5);
    cfg.budget.enabled = false;
    cfg.governor.enabled = false;
    core::RunConfig plain;
    plain.mode = core::RunMode::TxRaceProfLoopcut;
    plain.machine = app.machine;
    plain.machine.seed = 5;

    core::RunResult a = core::runProgram(app.program, cfg);
    core::RunResult b = core::runProgram(app.program, plain);
    EXPECT_FALSE(a.budget.enabled);
    EXPECT_TRUE(a.budget.windows.empty());
    EXPECT_EQ(a.totalCost, b.totalCost);
    EXPECT_EQ(a.races.count(), b.races.count());
}
