/**
 * @file
 * Behavioral soundness differential for the windowed slow path: every
 * registry workload (all application models with their planted
 * ground-truth races, plus the concurrency-pattern catalog) is run
 * under both conflict-repair modes — `--slowpath window` (replay only
 * the aborting window from the version log) and `--slowpath region`
 * (the paper's TxFail broadcast demotion) — across ten seeds each.
 *
 * Unlike the elision differential, the two modes take different
 * control flow after a conflict (a replayed re-begin versus a
 * broadcast slow region), so schedules and step counts legitimately
 * diverge per seed. The contract is therefore on the detection
 * outcome: over the seed sweep the windowed mode must report every
 * race region mode reports (zero recall loss from windowing — the
 * acceptance bar), precision stays pinned to the planted ground
 * truth, and a campaign hunting in window mode produces the same
 * findings and the same precision/recall scores as one hunting in
 * region mode. The containment is allowed to be strict in one
 * direction only: the windowed mode's watched-line residue keeps
 * checking a conflicted line after its window closes, which catches
 * temporally-separated re-accesses that region mode's bounded slow
 * region can miss (facesim's init-idiom pair is the live example) —
 * extra planted races are a recall win, never a soundness hole, and
 * the precision assertion keeps them honest.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "campaign/campaign.hh"
#include "core/driver.hh"
#include "core/fingerprint.hh"
#include "workloads/patterns.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

constexpr uint64_t kSeeds = 10;

std::set<std::string>
fingerprintKeys(const ir::Program &prog, const core::RunResult &r)
{
    std::set<std::string> keys;
    for (const auto &[sig, race] :
         core::fingerprintedRaces(prog, r.races))
        keys.insert(sig.key);
    return keys;
}

/** Union of fingerprint keys over the seed sweep in one mode. */
std::set<std::string>
sweepKeys(const ir::Program &prog, const sim::MachineConfig &machine,
          core::SlowPathKind slowpath)
{
    std::set<std::string> keys;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        core::RunConfig cfg;
        cfg.mode = core::RunMode::TxRaceDynLoopcut;
        cfg.slowpath = slowpath;
        cfg.machine = machine;
        cfg.machine.seed = seed;
        core::RunResult r = core::runProgram(prog, cfg);
        keys.merge(fingerprintKeys(prog, r));
    }
    return keys;
}

} // namespace

class SlowpathDifferentialPerApp
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SlowpathDifferentialPerApp, SweepLosesNoRaceVsRegionMode)
{
    workloads::WorkloadParams params;
    params.calibrate = false;
    workloads::AppModel app = workloads::makeApp(GetParam(), params);

    std::set<std::string> window =
        sweepKeys(app.program, app.machine, core::SlowPathKind::Window);
    std::set<std::string> region =
        sweepKeys(app.program, app.machine, core::SlowPathKind::Region);
    for (const std::string &key : region)
        EXPECT_TRUE(window.count(key))
            << app.name << ": windowing lost a race region mode finds";

    // Precision is pinned too: everything either mode reports maps
    // onto a planted ground-truth annotation, so window mode cannot
    // trade its speed for false positives.
    std::set<std::string> truth;
    for (const workloads::RaceLabel &label : app.groundTruth)
        truth.insert(core::raceLabelKey(label.a, label.b));
    core::RunConfig probe;
    probe.mode = core::RunMode::TxRaceDynLoopcut;
    probe.slowpath = core::SlowPathKind::Window;
    probe.machine = app.machine;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        probe.machine.seed = seed;
        core::RunResult r = core::runProgram(app.program, probe);
        for (const auto &[sig, race] :
             core::fingerprintedRaces(app.program, r.races))
            EXPECT_TRUE(truth.count(sig.label))
                << app.name << ": unplanted race " << sig.label;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SlowpathDifferentialPerApp,
    ::testing::ValuesIn(workloads::appNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

class SlowpathDifferentialPerPattern
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SlowpathDifferentialPerPattern, SweepUnionIdenticalToRegionMode)
{
    workloads::Pattern pat = workloads::makePattern(GetParam());
    sim::MachineConfig machine;
    EXPECT_EQ(
        sweepKeys(pat.program, machine, core::SlowPathKind::Window),
        sweepKeys(pat.program, machine, core::SlowPathKind::Region))
        << pat.name;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SlowpathDifferentialPerPattern,
    ::testing::ValuesIn(workloads::patternNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-' || c == ' ')
                c = '_';
        return name;
    });

TEST(SlowpathDifferential, CampaignOutputMatchesRegionMode)
{
    // The same hunt in both modes: identical findings (by
    // fingerprint), identical ground-truth verdicts, identical
    // precision/recall scores. Repro commands and per-mode stats
    // legitimately differ (the config digest covers the slow path),
    // so the comparison is struct-level, not byte-level.
    campaign::CampaignConfig cfg;
    cfg.apps = {"raytrace", "canneal"};
    cfg.seedsPerApp = 2;
    cfg.masterSeed = 7;

    cfg.slowpath = core::SlowPathKind::Window;
    campaign::CampaignResult window = campaign::runCampaign(cfg);
    cfg.slowpath = core::SlowPathKind::Region;
    campaign::CampaignResult region = campaign::runCampaign(cfg);

    ASSERT_EQ(window.findings.size(), region.findings.size());
    for (size_t i = 0; i < window.findings.size(); ++i) {
        EXPECT_EQ(window.findings[i].sig.key, region.findings[i].sig.key);
        EXPECT_EQ(window.findings[i].app, region.findings[i].app);
        EXPECT_EQ(window.findings[i].inGroundTruth,
                  region.findings[i].inGroundTruth);
    }
    ASSERT_EQ(window.scores.size(), region.scores.size());
    for (size_t i = 0; i < window.scores.size(); ++i) {
        EXPECT_EQ(window.scores[i].app, region.scores[i].app);
        EXPECT_EQ(window.scores[i].matched, region.scores[i].matched);
        EXPECT_DOUBLE_EQ(window.scores[i].precision,
                         region.scores[i].precision);
        EXPECT_DOUBLE_EQ(window.scores[i].recall,
                         region.scores[i].recall);
    }
    EXPECT_EQ(window.errors, 0u);
    EXPECT_EQ(region.errors, 0u);

    // The mode is part of each finding's repro line exactly when it
    // is not the windowed default.
    for (const campaign::Finding &f : region.findings)
        EXPECT_NE(f.repro.find("--slowpath region"), std::string::npos)
            << f.repro;
    for (const campaign::Finding &f : window.findings)
        EXPECT_EQ(f.repro.find("--slowpath"), std::string::npos)
            << f.repro;
}
