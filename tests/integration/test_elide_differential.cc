/**
 * @file
 * Behavioral soundness differential for the elision stack: every
 * registry workload (all application models with their planted
 * ground-truth races, plus the concurrency-pattern catalog) is run
 * with the full elision stack on and off — static elision, the HTM
 * owned-line filter, and the FastTrack same-epoch fast path, exactly
 * the set `txrace_run --no-elide` disables — across ten seeds each.
 *
 * The contract is byte-identical race-fingerprint sets per (workload,
 * seed): elision may change how much work finds a race, never which
 * races are found. Zero recall loss, zero new false positives — which
 * also pins campaign precision/recall, since campaigns score the same
 * fingerprint labels against the same ground truth. Schedule identity
 * (equal step counts) is asserted too: it is the mechanism that makes
 * the fingerprint equality hold per-seed rather than just in the
 * limit, and its failure is the early-warning signal that an elision
 * pass started perturbing execution instead of just skipping checks.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/driver.hh"
#include "core/fingerprint.hh"
#include "workloads/patterns.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

constexpr uint64_t kSeeds = 10;

std::set<std::string>
fingerprintKeys(const ir::Program &prog, const core::RunResult &r)
{
    std::set<std::string> keys;
    for (const auto &[sig, race] :
         core::fingerprintedRaces(prog, r.races))
        keys.insert(sig.key);
    return keys;
}

/** Run @p prog elide-on and elide-off on one seed and assert the
 *  observable race behavior is identical. Returns the common
 *  fingerprint key set. */
std::set<std::string>
assertSeedIdentical(const ir::Program &prog,
                    const sim::MachineConfig &machine, uint64_t seed,
                    const std::string &what)
{
    core::RunConfig on;
    on.mode = core::RunMode::TxRaceDynLoopcut;
    on.machine = machine;
    on.machine.seed = seed;

    core::RunConfig off = on;
    off.passes.elide.enabled = false;
    off.machine.htm.accessFilter = false;
    off.machine.det.epochFastPath = false;

    core::RunResult ron = core::runProgram(prog, on);
    core::RunResult roff = core::runProgram(prog, off);

    std::set<std::string> kon = fingerprintKeys(prog, ron);
    std::set<std::string> koff = fingerprintKeys(prog, roff);
    EXPECT_EQ(kon, koff) << what << " seed " << seed
                         << ": elision changed the reported races";
    // Schedule identity: the elided run takes exactly the same steps.
    EXPECT_EQ(ron.stats.get("machine.steps"),
              roff.stats.get("machine.steps"))
        << what << " seed " << seed;
    EXPECT_EQ(ron.stats.get("tx.abort.conflict"),
              roff.stats.get("tx.abort.conflict"))
        << what << " seed " << seed;
    return kon;
}

} // namespace

class ElideDifferentialPerApp
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ElideDifferentialPerApp, FingerprintSetsIdenticalAcrossSeeds)
{
    workloads::WorkloadParams params;
    params.calibrate = false;
    workloads::AppModel app = workloads::makeApp(GetParam(), params);

    // Ground-truth label coverage accumulated across seeds must come
    // out the same both ways; per-seed key equality implies it, but
    // this is the quantity campaign recall is computed from, so pin
    // it explicitly.
    std::set<std::string> labels_on, labels_off;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        core::RunConfig on;
        on.mode = core::RunMode::TxRaceDynLoopcut;
        on.machine = app.machine;
        on.machine.seed = seed;
        core::RunConfig off = on;
        off.passes.elide.enabled = false;
        off.machine.htm.accessFilter = false;
        off.machine.det.epochFastPath = false;

        core::RunResult ron = core::runProgram(app.program, on);
        core::RunResult roff = core::runProgram(app.program, off);
        EXPECT_EQ(fingerprintKeys(app.program, ron),
                  fingerprintKeys(app.program, roff))
            << app.name << " seed " << seed;
        EXPECT_EQ(ron.stats.get("machine.steps"),
                  roff.stats.get("machine.steps"))
            << app.name << " seed " << seed;
        for (const auto &[sig, race] :
             core::fingerprintedRaces(app.program, ron.races))
            labels_on.insert(sig.label);
        for (const auto &[sig, race] :
             core::fingerprintedRaces(app.program, roff.races))
            labels_off.insert(sig.label);
    }
    EXPECT_EQ(labels_on, labels_off) << app.name;

    // Precision is pinned as well: everything either variant reports
    // maps onto a planted ground-truth race.
    std::set<std::string> truth;
    for (const workloads::RaceLabel &label : app.groundTruth)
        truth.insert(core::raceLabelKey(label.a, label.b));
    for (const std::string &label : labels_on)
        EXPECT_TRUE(truth.count(label))
            << app.name << ": unplanted race " << label;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ElideDifferentialPerApp,
    ::testing::ValuesIn(workloads::appNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

class ElideDifferentialPerPattern
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ElideDifferentialPerPattern, FingerprintSetsIdentical)
{
    workloads::Pattern pat = workloads::makePattern(GetParam());
    sim::MachineConfig machine;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed)
        assertSeedIdentical(pat.program, machine, seed, pat.name);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ElideDifferentialPerPattern,
    ::testing::ValuesIn(workloads::patternNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-' || c == ' ')
                c = '_';
        return name;
    });
