/**
 * @file
 * Soak test: every workload at a larger scale and worker counts, in
 * every detection mode, must complete without panics/deadlocks and
 * keep the core invariants (no false positives, buckets sum to
 * total). Coarser than the unit tests and the last line of defense
 * against latent interactions.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "workloads/workloads.hh"

using namespace txrace;

TEST(Soak, AllAppsAllModesAtScaleTwo)
{
    for (const std::string &name : workloads::appNames()) {
        workloads::WorkloadParams params;
        params.nWorkers = 8;
        params.scale = 2;
        params.calibrate = false;
        workloads::AppModel app = workloads::makeApp(name, params);

        core::RunConfig cfg;
        cfg.machine = app.machine;
        cfg.machine.seed = 99;

        cfg.mode = core::RunMode::TSan;
        core::RunResult tsan = core::runProgram(app.program, cfg);

        for (core::RunMode mode :
             {core::RunMode::Native, core::RunMode::Eraser,
              core::RunMode::RaceTM, core::RunMode::TxRaceNoOpt,
              core::RunMode::TxRaceDynLoopcut,
              core::RunMode::TxRaceProfLoopcut}) {
            cfg.mode = mode;
            core::RunResult r = core::runProgram(app.program, cfg);
            uint64_t sum = 0;
            for (uint64_t v : r.buckets)
                sum += v;
            EXPECT_EQ(sum, r.totalCost)
                << name << " " << core::runModeName(mode);
            if (core::isTxRaceMode(mode)) {
                EXPECT_EQ(r.races.intersectCount(tsan.races),
                          r.races.count())
                    << name << " " << core::runModeName(mode)
                    << ": reported a race TSan refutes";
            }
        }
    }
}
