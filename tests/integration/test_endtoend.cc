/**
 * @file
 * End-to-end integration properties across the full pipeline
 * (builder -> passes -> machine -> policies -> reports), including
 * the completeness property on randomized racy programs and the
 * base-cost identity that underpins every overhead number in the
 * benchmark harnesses.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "ir/builder.hh"
#include "support/rng.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

core::RunConfig
config(core::RunMode mode, uint64_t seed = 1)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine.seed = seed;
    cfg.machine.interruptPerStep = 0.0;
    return cfg;
}

/**
 * Random multithreaded program with a controlled set of potentially
 * racy variables: every cross-thread shared write goes to a
 * dedicated "racy" pool; all other traffic is per-thread or
 * read-only. The TSan race set is therefore the ground truth and
 * TxRace's reports must be a subset of it.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b;
    Addr ro = b.alloc("readonly", 2048);
    Addr own = b.alloc("own", 16 * 512);
    Addr racy = b.alloc("racy", 8 * 64, 64);
    uint32_t workers = 2 + static_cast<uint32_t>(rng.below(3));

    FuncId worker = b.beginFunction("worker");
    size_t blocks = 4 + rng.below(6);
    for (size_t i = 0; i < blocks; ++i) {
        b.loop(2 + rng.below(8), [&] {
            for (int k = 0; k < 4; ++k)
                b.load(AddrExpr::randomIn(ro, 256, 8));
            b.store(AddrExpr::perThread(own, 512));
            if (rng.chance(0.3))
                b.compute(rng.below(5) + 1);
        });
        if (rng.chance(0.5))
            b.store(AddrExpr::absolute(racy + 64 * rng.below(8)),
                    "racy#" + std::to_string(i));
        if (rng.chance(0.5))
            b.syscall(1);
        if (rng.chance(0.3))
            b.barrier(0, workers);
    }
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, workers);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

class EndToEnd : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EndToEnd, TxRaceNeverReportsFalsePositives)
{
    // Ground truth by construction: the only accesses that can race
    // are the stores into the dedicated racy pool (everything else is
    // thread-private or read-only). Every report from every tool must
    // involve exactly those instructions. (An exact set comparison
    // against one TSan run would be too strong: FastTrack-style
    // shadow summarization legitimately reports different — equally
    // true — pairs under different schedules.)
    Program p = randomProgram(GetParam());
    auto all_racy_tagged = [&](const core::RunResult &r) {
        for (const auto &race : r.races.all()) {
            if (p.instr(race.first).tag.rfind("racy#", 0) != 0)
                return false;
            if (p.instr(race.second).tag.rfind("racy#", 0) != 0)
                return false;
        }
        return true;
    };
    core::RunResult tsan =
        core::runProgram(p, config(core::RunMode::TSan));
    EXPECT_TRUE(all_racy_tagged(tsan));
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        core::RunResult txr = core::runProgram(
            p, config(core::RunMode::TxRaceDynLoopcut, seed));
        EXPECT_TRUE(all_racy_tagged(txr))
            << "program " << GetParam() << " seed " << seed;
    }
}

TEST_P(EndToEnd, BaseCostMatchesNativeRun)
{
    // The Base bucket of any instrumented run must equal the native
    // run's total: tools add work, they never change the application.
    Program p = randomProgram(GetParam());
    core::RunResult native =
        core::runProgram(p, config(core::RunMode::Native));
    for (core::RunMode mode :
         {core::RunMode::TSan, core::RunMode::TxRaceDynLoopcut}) {
        core::RunResult r = core::runProgram(p, config(mode));
        EXPECT_EQ(r.buckets[static_cast<size_t>(sim::Bucket::Base)],
                  native.totalCost)
            << core::runModeName(mode) << " on program " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, EndToEnd,
                         ::testing::Range<uint64_t>(100, 112));

TEST(EndToEnd, QuickstartScenario)
{
    // The repository quickstart, as a regression test.
    ProgramBuilder b;
    Addr table = b.alloc("shared-table", 1024 * 8);
    Addr counter = b.alloc("hit-counter", 8);
    Addr slots = b.alloc("packed-slots", 5 * 8, 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(8, [&] {
        b.loop(5, [&] {
            b.loop(8, [&] {
                b.load(AddrExpr::randomIn(table, 1024, 8));
                b.compute(5);
            });
            b.syscall(1);
        });
        b.store(AddrExpr::perThread(slots, 8));
        b.load(AddrExpr::absolute(counter), "counter read");
        b.store(AddrExpr::absolute(counter), "counter write");
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg;
    cfg.machine.seed = 42;
    cfg.mode = core::RunMode::Native;
    core::RunResult native = core::runProgram(p, cfg);
    cfg.mode = core::RunMode::TSan;
    core::RunResult tsan = core::runProgram(p, cfg);
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    core::RunResult txr = core::runProgram(p, cfg);

    EXPECT_EQ(tsan.races.count(), 2u);
    EXPECT_EQ(txr.races.count(), 2u);
    EXPECT_LT(txr.overheadVs(native), tsan.overheadVs(native));
    EXPECT_GT(txr.stats.get("tx.committed"), 0u);
    EXPECT_GT(txr.stats.get("tx.abort.conflict"), 0u);
}

TEST(EndToEnd, RepeatedRunsAccumulateRaceSets)
{
    // The Fig. 10 mechanism at integration level: merging RaceSets
    // across seeds never loses races and is monotone.
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 4 * 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.loop(6, [&] {
        for (int i = 0; i < 6; ++i)
            b.load(AddrExpr::randomIn(data, 64, 8));
        for (int s = 0; s < 4; ++s)
            b.store(AddrExpr::absolute(racy + 64 * s),
                    "racy " + std::to_string(s));
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    detector::RaceSet cumulative;
    size_t prev = 0;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        core::RunResult txr = core::runProgram(
            p, config(core::RunMode::TxRaceDynLoopcut, seed));
        cumulative.merge(txr.races);
        EXPECT_GE(cumulative.count(), prev);
        prev = cumulative.count();
    }
    core::RunResult tsan =
        core::runProgram(p, config(core::RunMode::TSan));
    EXPECT_LE(prev, tsan.races.count() == 0 ? 4u : tsan.races.count());
}
