/**
 * @file
 * Observability acceptance tests: the forensics contract on the
 * apache-stream planted races (captures exist, the last-writer chain
 * names the racing sites, the serialized block and the --explain
 * rendering are byte-deterministic), and the campaign profile
 * pipeline (fleet profile independent of --jobs, equal to the merged
 * per-run profiles).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "campaign/campaign.hh"
#include "core/driver.hh"
#include "core/metrics_export.hh"
#include "core/report_format.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/profile.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

workloads::AppModel
apacheStream()
{
    workloads::WorkloadParams params;
    params.calibrate = false;
    return workloads::makeApp("apache-stream", params);
}

core::RunConfig
flightConfig(const workloads::AppModel &app, uint64_t seed)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    cfg.machine = app.machine;
    cfg.machine.seed = seed;
    cfg.machine.recordFlight = true;
    return cfg;
}

std::string
metricsBytes(const ir::Program &prog, const core::RunResult &result)
{
    core::MetricsMeta meta;
    meta.app = "apache-stream";
    meta.mode = "txrace";
    std::ostringstream ss;
    core::writeMetricsJson(ss, meta, &prog, result);
    return ss.str();
}

} // namespace

#ifndef TXRACE_NO_FLIGHTREC

TEST(Observability, RaceReportCarriesForensics)
{
    workloads::AppModel app = apacheStream();
    core::RunResult result =
        core::runProgram(app.program, flightConfig(app, 3));
    ASSERT_GT(result.races.count(), 0u);
    ASSERT_FALSE(result.telemetry.forensics.empty());
    EXPECT_LE(result.telemetry.forensics.size(),
              telemetry::Telemetry::kMaxForensics);

    for (const telemetry::ForensicsCapture &cap :
         result.telemetry.forensics) {
        EXPECT_EQ(cap.trigger, "race");
        EXPECT_FALSE(cap.kind.empty());
        EXPECT_NE(cap.siteA, ir::kNoInstr);
        EXPECT_NE(cap.siteB, ir::kNoInstr);
        // The capture's site pair is one of the reported races.
        bool matches = false;
        for (const detector::Race &race : result.races.all())
            if (race.first == cap.siteA && race.second == cap.siteB)
                matches = true;
        EXPECT_TRUE(matches)
            << "capture sites #" << cap.siteA << "/#" << cap.siteB
            << " not in the race report";
        ASSERT_FALSE(cap.threads.empty());
        for (const telemetry::ForensicsThread &ft : cap.threads)
            EXPECT_FALSE(ft.window.empty());
    }
}

TEST(Observability, LastWriterChainNamesRacingSites)
{
    workloads::AppModel app = apacheStream();
    core::RunResult result =
        core::runProgram(app.program, flightConfig(app, 3));
    ASSERT_FALSE(result.telemetry.forensics.empty());

    // At least one capture's chain must end at one of its racing
    // sites: the race was detected at the access recorded last on
    // that granule. (Read endpoints never appear in a write chain,
    // so we assert over write endpoints.)
    size_t withChain = 0, naming = 0;
    for (const telemetry::ForensicsCapture &cap :
         result.telemetry.forensics) {
        if (cap.lastWriters.empty())
            continue;
        ++withChain;
        for (const telemetry::ForensicsWrite &lw : cap.lastWriters) {
            EXPECT_EQ(lw.granule, cap.granule);
            if (lw.site == cap.siteA || lw.site == cap.siteB) {
                ++naming;
                break;
            }
        }
    }
    ASSERT_GT(withChain, 0u);
    EXPECT_EQ(naming, withChain)
        << "some last-writer chain never names a racing site";
}

TEST(Observability, ForensicsAreByteDeterministic)
{
    workloads::AppModel app = apacheStream();
    core::RunResult r1 =
        core::runProgram(app.program, flightConfig(app, 5));
    core::RunResult r2 =
        core::runProgram(app.program, flightConfig(app, 5));
    ASSERT_FALSE(r1.telemetry.forensics.empty());
    // Same seed -> byte-identical metrics JSON (which embeds the
    // txrace-forensics-v1 block) and --explain rendering.
    EXPECT_EQ(metricsBytes(app.program, r1),
              metricsBytes(app.program, r2));
    std::ostringstream e1, e2;
    core::printForensics(app.program, r1, e1);
    core::printForensics(app.program, r2, e2);
    EXPECT_EQ(e1.str(), e2.str());
    EXPECT_NE(e1.str().find("txrace-forensics-v1"), std::string::npos);
    EXPECT_NE(e1.str().find("last-writer chain"), std::string::npos);
}

TEST(Observability, FlightRecorderIsObserveOnly)
{
    // Toggling the recorder must not change detection or cost: the
    // run is a pure function of (program, config, seed) and the
    // recorder only watches.
    workloads::AppModel app = apacheStream();
    core::RunConfig on = flightConfig(app, 7);
    core::RunConfig off = flightConfig(app, 7);
    off.machine.recordFlight = false;
    core::RunResult r_on = core::runProgram(app.program, on);
    core::RunResult r_off = core::runProgram(app.program, off);
    EXPECT_EQ(r_on.races.count(), r_off.races.count());
    EXPECT_EQ(r_on.totalCost, r_off.totalCost);
    EXPECT_EQ(r_on.stats.get("tx.committed"),
              r_off.stats.get("tx.committed"));
    EXPECT_TRUE(r_off.telemetry.forensics.empty());
}

#endif // !TXRACE_NO_FLIGHTREC

TEST(Observability, RunProfileMatchesRunCounters)
{
    workloads::AppModel app = apacheStream();
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    cfg.machine = app.machine;
    cfg.machine.seed = 3;
    core::RunResult result = core::runProgram(app.program, cfg);
    telemetry::Profile p =
        core::buildRunProfile("apache-stream", result);
    ASSERT_EQ(p.apps.size(), 1u);
    const telemetry::AppProfile &a = p.apps.at("apache-stream");
    EXPECT_EQ(a.runs, 1u);
    EXPECT_EQ(a.txBegins, result.stats.get("tx.begins"));
    EXPECT_EQ(a.txCommitted, result.stats.get("tx.committed"));
    EXPECT_EQ(a.filterHits, result.stats.get("htm.dir.filter_hit"));
}

TEST(Observability, CampaignProfileIndependentOfJobs)
{
    campaign::CampaignConfig cfg;
    cfg.apps = {"vips", "x264"};
    cfg.seedsPerApp = 2;
    cfg.jobs = 1;
    campaign::CampaignResult one = campaign::runCampaign(cfg);
    cfg.jobs = 4;
    campaign::CampaignResult four = campaign::runCampaign(cfg);

    std::ostringstream b1, b4;
    one.profile.write(b1);
    four.profile.write(b4);
    EXPECT_FALSE(one.profile.empty());
    EXPECT_EQ(b1.str(), b4.str());
    // Each app accumulated exactly its seed budget.
    EXPECT_EQ(one.profile.apps.at("vips").runs, cfg.seedsPerApp);
    EXPECT_EQ(one.profile.apps.at("x264").runs, cfg.seedsPerApp);
}

TEST(Observability, ProgressStreamHeartbeats)
{
    campaign::CampaignConfig cfg;
    cfg.apps = {"vips"};
    cfg.seedsPerApp = 4;
    cfg.jobs = 2;
    cfg.progressEvery = 2;
    std::ostringstream stream;
    campaign::CampaignResult result =
        campaign::runCampaign(cfg, nullptr, &stream);
    ASSERT_EQ(result.runs, 4u);

    // 4 jobs at cadence 2 -> heartbeats at 2 and 4, plus the end
    // record: the record COUNT is a pure function of the config.
    std::istringstream lines(stream.str());
    std::string line;
    size_t records = 0, ends = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++records;
        EXPECT_NE(line.find("\"schema\":\"txrace-progress-v1\""),
                  std::string::npos);
        if (line.find("\"event\":\"end\"") != std::string::npos)
            ++ends;
    }
    EXPECT_EQ(records, 3u);
    EXPECT_EQ(ends, 1u);
    // The end record carries the final totals.
    EXPECT_NE(stream.str().find("\"jobs_done\":4"),
              std::string::npos);
}

TEST(Observability, TraceExportHasOneSpanPerJob)
{
    campaign::CampaignConfig cfg;
    cfg.apps = {"vips"};
    cfg.seedsPerApp = 3;
    cfg.jobs = 2;
    campaign::CampaignResult result = campaign::runCampaign(cfg);
    ASSERT_EQ(result.timing.spans.size(), result.runs);
    std::ostringstream ss;
    campaign::writeCampaignTrace(ss, result);
    std::string trace = ss.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    size_t spans = 0, pos = 0;
    while ((pos = trace.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        ++spans;
        pos += 1;
    }
    EXPECT_EQ(spans, result.runs);
}
