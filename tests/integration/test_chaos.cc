/**
 * @file
 * Chaos soak: run real workloads under the "chaos" fault scenario —
 * every pathology class at once, staggered and overlapping — with and
 * without the adaptive governor, and check the run-integrity
 * invariants hold throughout: clean termination, coherent cost
 * accounting, byte-identical determinism, no false positives, and
 * observable fault/governor activity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/driver.hh"
#include "fault/fault.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

core::RunConfig
chaosConfig(uint64_t seed, bool governor)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine.seed = seed;
    cfg.machine.faults = fault::makeScenario("chaos", 30'000);
    cfg.governor.enabled = governor;
    return cfg;
}

} // namespace

TEST(Chaos, SoakSurvivesEveryPathologyAtOnce)
{
    for (const std::string &name :
         {std::string("vips"), std::string("streamcluster"),
          std::string("dedup")}) {
        workloads::WorkloadParams params;
        params.nWorkers = 8;
        params.calibrate = false;
        workloads::AppModel app = workloads::makeApp(name, params);

        // Fault-free TSan reference for the no-false-positive check.
        core::RunConfig tsan_cfg;
        tsan_cfg.machine = app.machine;
        tsan_cfg.machine.seed = 7;
        tsan_cfg.mode = core::RunMode::TSan;
        core::RunResult tsan = core::runProgram(app.program, tsan_cfg);

        for (bool governor : {false, true}) {
            core::RunConfig cfg = chaosConfig(7, governor);
            cfg.machine = [&] {
                sim::MachineConfig m = app.machine;
                m.seed = 7;
                m.faults = fault::makeScenario("chaos", 30'000);
                return m;
            }();
            core::RunResult r = core::runProgram(app.program, cfg);

            EXPECT_TRUE(r.error.ok())
                << name << " gov=" << governor << ": "
                << sim::runErrorKindName(r.error.kind);
            uint64_t sum = 0;
            for (uint64_t v : r.buckets)
                sum += v;
            EXPECT_EQ(sum, r.totalCost) << name << " gov=" << governor;
            // The injected episodes actually fired and were recorded.
            EXPECT_GE(r.stats.get("fault.episodes_begun"), 1u)
                << name << " gov=" << governor;
            // Even under chaos, TxRace must not invent races.
            EXPECT_EQ(r.races.intersectCount(tsan.races),
                      r.races.count())
                << name << " gov=" << governor
                << ": reported a race TSan refutes";
        }
    }
}

TEST(Chaos, RunsAreByteIdenticalGivenSeedAndPlan)
{
    // The acceptance bar for determinism: identical (program, config
    // including FaultPlan and governor, seed) produce byte-identical
    // stats — fault injection and adaptation add no hidden
    // nondeterminism.
    workloads::WorkloadParams params;
    params.nWorkers = 8;
    params.calibrate = false;
    workloads::AppModel app = workloads::makeApp("vips", params);

    auto runOnce = [&](uint64_t seed) {
        core::RunConfig cfg = chaosConfig(seed, /*governor=*/true);
        sim::MachineConfig m = app.machine;
        m.seed = seed;
        m.faults = fault::makeScenario("chaos", 30'000);
        cfg.machine = m;
        return core::runProgram(app.program, cfg);
    };

    core::RunResult a = runOnce(21);
    core::RunResult b = runOnce(21);
    core::RunResult c = runOnce(22);

    EXPECT_EQ(a.totalCost, b.totalCost);
    EXPECT_EQ(a.buckets, b.buckets);
    ASSERT_EQ(a.stats.all(), b.stats.all());

    // Serialize both counter maps and compare the bytes, literally.
    auto dump = [](const core::RunResult &r) {
        std::ostringstream os;
        for (const auto &[k, v] : r.stats.all())
            os << k << '=' << v << '\n';
        return os.str();
    };
    EXPECT_EQ(dump(a), dump(b));
    EXPECT_NE(dump(a), dump(c));  // the seed does matter
}

TEST(Chaos, GovernorActivityIsObservable)
{
    // Under a storm the governor must leave an audit trail: counters
    // in the stats and events in the timeline.
    workloads::WorkloadParams params;
    params.nWorkers = 8;
    params.calibrate = false;
    workloads::AppModel app = workloads::makeApp("vips", params);

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine = app.machine;
    cfg.machine.seed = 3;
    cfg.machine.recordEvents = true;
    cfg.machine.faults = fault::makeScenario("interrupt-storm", 20'000);
    cfg.governor.enabled = true;
    core::RunResult r = core::runProgram(app.program, cfg);

    EXPECT_TRUE(r.error.ok());
    EXPECT_GE(r.stats.get("txrace.gov.demotions"), 1u);
    EXPECT_GE(r.stats.get("txrace.gov.backoff_retries"), 1u);

    std::ostringstream os;
    r.events.print(os, 100000);
    std::string trace = os.str();
    EXPECT_NE(trace.find("fault-begin"), std::string::npos);
    EXPECT_NE(trace.find("fault-end"), std::string::npos);
    EXPECT_NE(trace.find("gov-demote"), std::string::npos);
}
