/**
 * @file
 * Unit tests for the human-readable race report formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report_format.hh"
#include "ir/builder.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

Program
taggedProgram()
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    FuncId worker = b.beginFunction("worker");
    b.load(AddrExpr::absolute(x), "reader site");
    b.store(AddrExpr::absolute(x), "writer site");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

TEST(ReportFormat, SingleRaceMentionsBothSites)
{
    Program p = taggedProgram();
    detector::Race race{0, 1, detector::RaceKind::WriteRead, 0x40, 3};
    std::string text = core::formatRace(p, race);
    EXPECT_NE(text.find("WARNING: data race"), std::string::npos);
    EXPECT_NE(text.find("write-read"), std::string::npos);
    EXPECT_NE(text.find("reader site"), std::string::npos);
    EXPECT_NE(text.find("writer site"), std::string::npos);
    EXPECT_NE(text.find("@worker"), std::string::npos);
    EXPECT_NE(text.find("3 dynamic occurrences"), std::string::npos);
    EXPECT_NE(text.find("0x40"), std::string::npos);
}

TEST(ReportFormat, SelfRaceReadsNaturally)
{
    Program p = taggedProgram();
    detector::Race race{1, 1, detector::RaceKind::WriteWrite, 0x40, 1};
    std::string text = core::formatRace(p, race);
    EXPECT_NE(text.find("and itself on another thread"),
              std::string::npos);
    EXPECT_NE(text.find("1 dynamic occurrence)"), std::string::npos);
}

TEST(ReportFormat, FullReportHasSummaryLine)
{
    Program p = taggedProgram();
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TSan;
    cfg.machine.seed = 4;
    core::RunResult r = core::runProgram(p, cfg);

    std::ostringstream os;
    core::printRaceReport(p, r, os);
    std::string text = os.str();
    EXPECT_NE(text.find("TSan:"), std::string::npos);
    EXPECT_NE(text.find("distinct data race"), std::string::npos);
}

TEST(ReportFormat, RaceFreeReportIsJustTheSummary)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.compute(5);
    b.endFunction();
    Program p = b.build();
    core::RunConfig cfg;
    cfg.mode = core::RunMode::Native;
    core::RunResult r = core::runProgram(p, cfg);
    std::ostringstream os;
    core::printRaceReport(p, r, os);
    EXPECT_NE(os.str().find("0 distinct data race(s)"),
              std::string::npos);
    EXPECT_EQ(os.str().find("WARNING"), std::string::npos);
}
