/**
 * @file
 * Unit tests for the TSan baseline policy, including sampling.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;
using namespace txrace::ir;
using namespace txrace::sim;

namespace {

/** Two workers hammering an unlocked counter. */
Program
racyProgram()
{
    ProgramBuilder b;
    Addr counter = b.alloc("counter", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(30, [&] {
        b.store(AddrExpr::absolute(counter));
        b.compute(2);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    return b.build();
}

MachineConfig
quietConfig(uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.seed = seed;
    cfg.interruptPerStep = 0.0;
    return cfg;
}

} // namespace

TEST(TsanPolicy, FindsTheRace)
{
    Program p = racyProgram();
    core::TsanPolicy policy(1.0, 9);
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.det().races().count(), 1u);
}

TEST(TsanPolicy, ZeroSamplingFindsNothingButStillCosts)
{
    Program p = racyProgram();
    core::TsanPolicy policy(0.0, 9);
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.det().races().count(), 0u);
    // Unsampled accesses still pay the sampling branch.
    EXPECT_GT(m.buckets()[static_cast<size_t>(Bucket::Check)], 0u);
}

TEST(TsanPolicy, SamplingCostScalesWithRate)
{
    Program p = racyProgram();
    uint64_t cost_low, cost_full;
    {
        core::TsanPolicy policy(0.1, 9);
        Machine m(p, quietConfig(), policy);
        m.run();
        cost_low = m.totalCost();
    }
    {
        core::TsanPolicy policy(1.0, 9);
        Machine m(p, quietConfig(), policy);
        m.run();
        cost_full = m.totalCost();
    }
    EXPECT_LT(cost_low, cost_full);
}

TEST(TsanPolicy, SamplingChecksApproximateRate)
{
    Program p = racyProgram();
    core::TsanPolicy policy(0.5, 9);
    Machine m(p, quietConfig(), policy);
    m.run();
    uint64_t checked = m.det().stats().get("detector.reads") +
                       m.det().stats().get("detector.writes");
    // 60 instrumented accesses at 50%.
    EXPECT_GT(checked, 15u);
    EXPECT_LT(checked, 45u);
}

TEST(TsanPolicy, UninstrumentedAccessesAreFree)
{
    ProgramBuilder b;
    Addr priv = b.allocPrivate("p", 256);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] { b.storePrivate(AddrExpr::perThread(priv, 64)); });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::TsanPolicy policy(1.0, 9);
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_EQ(m.det().stats().get("detector.reads"), 0u);
    EXPECT_EQ(m.det().stats().get("detector.writes"), 0u);
}

TEST(TsanPolicy, SyncTrackingCostsGoToCheckBucket)
{
    ProgramBuilder b;
    FuncId worker = b.beginFunction("worker");
    b.loop(5, [&] {
        b.lock(0);
        b.unlock(0);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::TsanPolicy policy(1.0, 9);
    Machine m(p, quietConfig(), policy);
    m.run();
    EXPECT_GT(m.buckets()[static_cast<size_t>(Bucket::Check)], 0u);
}

TEST(TsanPolicyDeathTest, RejectsBadRate)
{
    EXPECT_EXIT(core::TsanPolicy(1.5), testing::ExitedWithCode(1),
                "out of");
    EXPECT_EXIT(core::TsanPolicy(-0.1), testing::ExitedWithCode(1),
                "out of");
}
