/**
 * @file
 * Unit tests for the loop-cut threshold table (§4.3 learning rules).
 */

#include <gtest/gtest.h>

#include "core/loopcut.hh"

using namespace txrace::core;

TEST(LoopCut, InactiveByDefault)
{
    LoopCutTable t;
    EXPECT_EQ(t.threshold(7), 0u);
}

TEST(LoopCut, FirstAbortActivatesAtInitial)
{
    LoopCutTable t(2);
    t.onCapacityAbort(7);
    EXPECT_EQ(t.threshold(7), 2u);
}

TEST(LoopCut, CommitsGrowThreshold)
{
    LoopCutTable t(2);
    t.onCapacityAbort(7);
    t.onCommit(7);
    t.onCommit(7);
    EXPECT_EQ(t.threshold(7), 4u);
}

TEST(LoopCut, CommitOnUnknownLoopIsIgnored)
{
    LoopCutTable t;
    t.onCommit(9);
    EXPECT_EQ(t.threshold(9), 0u);
}

TEST(LoopCut, AbortShrinksAndPinsCeiling)
{
    LoopCutTable t(2);
    t.onCapacityAbort(7);            // thr=2
    for (int i = 0; i < 10; ++i)
        t.onCommit(7);               // thr grows to 12
    EXPECT_EQ(t.threshold(7), 12u);
    t.onCapacityAbort(7);            // thr=11, ceiling=11
    EXPECT_EQ(t.threshold(7), 11u);
    for (int i = 0; i < 10; ++i)
        t.onCommit(7);               // capped at the ceiling
    EXPECT_EQ(t.threshold(7), 11u);
}

TEST(LoopCut, ConvergesToLargestCommittingSegment)
{
    // Simulated capacity boundary: segments of more than 8 iterations
    // abort. The paper's +1/-1 scheme must settle at 8.
    LoopCutTable t(2);
    constexpr uint64_t kFits = 8;
    t.onCapacityAbort(1);
    int aborts = 0;
    for (int round = 0; round < 50; ++round) {
        uint64_t thr = t.threshold(1);
        if (thr > kFits) {
            t.onCapacityAbort(1);
            ++aborts;
        } else {
            t.onCommit(1);
        }
    }
    EXPECT_EQ(t.threshold(1), kFits);
    EXPECT_LE(aborts, 2);
}

TEST(LoopCut, ThresholdNeverBelowOne)
{
    LoopCutTable t(1);
    t.onCapacityAbort(3);
    for (int i = 0; i < 5; ++i)
        t.onCapacityAbort(3);
    EXPECT_EQ(t.threshold(3), 1u);
}

TEST(LoopCut, PreloadActsAsProfiledCeiling)
{
    LoopCutTable t(2);
    t.preload(5, 9);
    EXPECT_EQ(t.threshold(5), 9u);
    // Commits do not grow past the profiled value...
    t.onCommit(5);
    EXPECT_EQ(t.threshold(5), 9u);
    // ...so the very first capacity abort is avoided (paper claim).
}

TEST(LoopCut, PreloadZeroIsIgnored)
{
    LoopCutTable t;
    t.preload(5, 0);
    EXPECT_EQ(t.threshold(5), 0u);
}

TEST(LoopCut, IndependentLoops)
{
    LoopCutTable t(2);
    t.onCapacityAbort(1);
    t.onCapacityAbort(2);
    t.onCommit(1);
    EXPECT_EQ(t.threshold(1), 3u);
    EXPECT_EQ(t.threshold(2), 2u);
}

TEST(LoopCut, ExportImportRoundTrip)
{
    LoopCutTable prof(2);
    prof.onCapacityAbort(1);
    prof.onCommit(1);
    prof.onCapacityAbort(9);

    LoopCutTable real(2);
    for (const auto &[loop, entry] : prof.all())
        real.preload(loop, entry.threshold);
    EXPECT_EQ(real.threshold(1), 3u);
    EXPECT_EQ(real.threshold(9), 2u);
}
