/**
 * @file
 * Unit tests for the monitor-mode budget controller: window
 * accounting against the machine's cost buckets, prospective
 * admission at the soft line, deepest-spender-first cuts, probe
 * backoff doubling, deterministic sampling draws, and the
 * unsatisfiable-budget declaration — driven against a machine that is
 * never run, by adding bucket cost by hand.
 */

#include <gtest/gtest.h>

#include "core/budget.hh"
#include "core/policies.hh"
#include "ir/builder.hh"

using namespace txrace;
using core::BudgetConfig;
using core::BudgetController;
using core::BudgetReport;
using sim::Bucket;
using sim::Machine;

namespace {

ir::Program
tinyProgram()
{
    ir::ProgramBuilder b;
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    return b.build();
}

/** A machine used only as a pair of cost-bucket clocks. */
struct BudgetHarness
{
    ir::Program prog = tinyProgram();
    core::NativePolicy policy;
    sim::MachineConfig mcfg;
    Machine m;

    BudgetHarness() : m(prog, mcfg, policy) {}

    void base(uint64_t c) { m.addCost(0, c, Bucket::Base); }
    void overhead(uint64_t c) { m.addCost(0, c, Bucket::Check); }
};

/** windowBase 1000 at 5% -> hard 50, soft 30. */
BudgetConfig
smallConfig()
{
    BudgetConfig cfg;
    cfg.enabled = true;
    cfg.budgetPct = 5.0;
    cfg.windowBase = 1000;
    cfg.softFactor = 0.6;
    return cfg;
}

} // namespace

TEST(Budget, DisabledAdmitsEverything)
{
    BudgetHarness h;
    BudgetController b(BudgetConfig{}, 1);
    EXPECT_FALSE(b.enabled());
    h.overhead(100000);
    EXPECT_TRUE(b.admitRegion(h.m, 0));
    EXPECT_TRUE(b.admitCheck(h.m, 0, 7, 100000));
    EXPECT_TRUE(b.report().windows.empty());
}

TEST(Budget, WindowsCloseOnBaseCrossingsOnly)
{
    BudgetHarness h;
    BudgetController b(smallConfig(), 1);
    b.onRunStart(h.m);

    // Overhead alone never closes a window: the clock is native time.
    h.overhead(500);
    EXPECT_FALSE(b.admitRegion(h.m, 0, 0));  // way past soft, refused
    EXPECT_TRUE(b.report().windows.empty());

    // Two windows of base: both close, overhead lands in the first.
    h.base(2000);
    b.admitRegion(h.m, 0, 0);
    BudgetReport r = b.report();
    ASSERT_EQ(r.windows.size(), 2u);
    EXPECT_EQ(r.windows[0].overhead, 500u);
    EXPECT_TRUE(r.windows[0].hardOver);
    EXPECT_EQ(r.windows[1].overhead, 0u);
    EXPECT_FALSE(r.windows[1].hardOver);
}

TEST(Budget, TrailingPartialWindowIsNotRecorded)
{
    BudgetHarness h;
    BudgetController b(smallConfig(), 1);
    b.onRunStart(h.m);
    h.base(999);
    h.overhead(10000);
    b.admitRegion(h.m, 0, 0);
    EXPECT_TRUE(b.report().windows.empty());
}

TEST(Budget, AdmissionGatesAtTheSoftLine)
{
    BudgetHarness h;
    BudgetController b(smallConfig(), 1);
    b.onRunStart(h.m);

    h.overhead(29);  // below soft (30)
    EXPECT_TRUE(b.admitCheck(h.m, 0, 1, 0));
    h.overhead(1);  // at soft
    EXPECT_FALSE(b.admitCheck(h.m, 0, 1, 0));
    EXPECT_FALSE(b.admitRegion(h.m, 0, 0));
    EXPECT_TRUE(b.underPressure());

    BudgetReport r = b.report();
    EXPECT_EQ(r.gatedChecks, 1u);
    EXPECT_EQ(r.gatedRegions, 1u);
}

TEST(Budget, AdmissionIsProspective)
{
    // The gate sees the price of the work it is about to admit — a
    // storm-inflated check cannot ride a nearly-spent window over the
    // line. The whole soft-to-hard gap stays reserved for overhead no
    // gate can refuse.
    BudgetHarness h;
    BudgetController b(smallConfig(), 1);
    b.onRunStart(h.m);

    EXPECT_FALSE(b.admitCheck(h.m, 0, 1, 31));  // 0 + 31 > soft 30
    EXPECT_TRUE(b.admitCheck(h.m, 0, 1, 30));
    h.overhead(20);
    EXPECT_FALSE(b.admitCheck(h.m, 0, 1, 11));  // 20 + 11 > 30
    EXPECT_TRUE(b.admitCheck(h.m, 0, 1, 10));
    EXPECT_FALSE(b.admitRegion(h.m, 0, 11));
}

TEST(Budget, CutsDeepestSpenderFirstUntilExcessCovered)
{
    BudgetHarness h;
    BudgetConfig cfg = smallConfig();
    BudgetController b(cfg, 1);
    b.onRunStart(h.m);

    // Window overhead 60: excess over soft is 30. Site 5 spent 40 (it
    // alone covers the excess), site 9 spent 20: only 5 is cut.
    h.overhead(60);
    b.chargeSite(5, 40);
    b.chargeSite(9, 20);
    h.base(1000);
    b.admitRegion(h.m, 0, 0);

    EXPECT_EQ(b.siteShift(5), cfg.cutShift);
    EXPECT_EQ(b.siteShift(9), 0u);
    BudgetReport r = b.report();
    EXPECT_EQ(r.siteCuts, 1u);
    ASSERT_EQ(r.siteShifts.size(), 1u);
    EXPECT_EQ(r.siteShifts[0].first, ir::InstrId{5});
}

TEST(Budget, RepeatedCutsClampAtTheFloor)
{
    BudgetHarness h;
    BudgetConfig cfg = smallConfig();
    BudgetController b(cfg, 1);
    b.onRunStart(h.m);

    for (int i = 0; i < 10; ++i) {
        h.overhead(60);
        b.chargeSite(5, 60);
        h.base(1000);
        b.admitRegion(h.m, 0, 0);
    }
    EXPECT_EQ(b.siteShift(5), cfg.floorShift);
}

TEST(Budget, ProbeIntervalDoublesPerFailureAndCaps)
{
    BudgetHarness h;
    BudgetConfig cfg = smallConfig();
    BudgetController b(cfg, 1);
    b.onRunStart(h.m);

    auto stormWindow = [&] {
        h.overhead(60);
        b.chargeSite(5, 60);
        h.base(1000);
        b.admitRegion(h.m, 0, 0);
    };
    auto cleanWindow = [&] {
        h.base(1000);
        b.admitRegion(h.m, 0, 0);
    };
    // Count the clean windows until the cut site is probed one step
    // back up (its shift drops below @p from).
    auto windowsUntilProbe = [&](uint32_t from) {
        int n = 0;
        while (b.siteShift(5) >= from) {
            cleanWindow();
            ++n;
            EXPECT_LE(n, 200) << "probe never came";
        }
        return n;
    };

    // Drive the site to the floor, then let every probe fail against
    // a persistent storm: the re-probe interval must double each time
    // until the backoff cap, and hold there.
    for (int i = 0; i < 3; ++i)
        stormWindow();
    ASSERT_EQ(b.siteShift(5), cfg.floorShift);

    std::vector<int> gaps;
    for (int probe = 0; probe < 6; ++probe) {
        gaps.push_back(windowsUntilProbe(cfg.floorShift));
        stormWindow();  // the probe window blows the budget: failure
        ASSERT_EQ(b.siteShift(5), cfg.floorShift);
    }
    const int base = static_cast<int>(cfg.reprobeWindows);
    std::vector<int> expected;
    for (int probe = 0; probe < 6; ++probe) {
        uint32_t exp = std::min(static_cast<uint32_t>(probe),
                                cfg.maxProbeBackoffExp);
        expected.push_back(base << exp);
    }
    EXPECT_EQ(gaps, expected);  // 3, 6, 12, 24, 48, 48

    // Storm over: one clean probe resets the backoff entirely and the
    // next probe comes at the base interval again.
    windowsUntilProbe(cfg.floorShift);
    ASSERT_EQ(b.siteShift(5), cfg.floorShift - 1);
    cleanWindow();  // probe survives: backoff forgotten
    int gap = windowsUntilProbe(cfg.floorShift - 1);
    EXPECT_LE(gap, base + 1);
}

TEST(Budget, SamplingDrawsAreDeterministicPerSeed)
{
    BudgetHarness ha, hb, hc;
    BudgetConfig cfg = smallConfig();
    BudgetController a(cfg, 42), b(cfg, 42), c(cfg, 43);

    // Cut site 5 once in each controller so draws actually happen.
    auto cutOnce = [](BudgetHarness &h, BudgetController &ctl) {
        h.overhead(60);
        ctl.chargeSite(5, 60);
        h.base(1000);
        ctl.admitRegion(h.m, 0, 0);
    };
    cutOnce(ha, a);
    cutOnce(hb, b);
    cutOnce(hc, c);

    int same = 0, diffMatches = 0, admitted = 0;
    for (int i = 0; i < 512; ++i) {
        bool da = a.admitCheck(ha.m, 0, 5, 0);
        bool db = b.admitCheck(hb.m, 0, 5, 0);
        bool dc = c.admitCheck(hc.m, 0, 5, 0);
        same += da == db;
        diffMatches += da == dc;
        admitted += da;
    }
    EXPECT_EQ(same, 512);
    EXPECT_LT(diffMatches, 512);  // different seed, different stream
    // shift = cutShift (2): roughly one draw in four is admitted.
    EXPECT_GT(admitted, 512 / 8);
    EXPECT_LT(admitted, 512 / 2);
}

TEST(Budget, UnsatisfiableAfterConsecutiveHardRefusedWindows)
{
    BudgetHarness h;
    BudgetConfig cfg = smallConfig();
    BudgetController b(cfg, 1);
    b.onRunStart(h.m);

    // Un-gateable overhead alone blows the hard budget, window after
    // window, while the gate refuses all it can.
    for (uint32_t i = 0; i < cfg.unsatisfiableWindows; ++i) {
        SCOPED_TRACE(i);
        EXPECT_FALSE(b.unsatisfiable());
        h.overhead(100);
        EXPECT_FALSE(b.admitCheck(h.m, 0, 1, 0));  // refused
        h.base(1000);
        b.admitRegion(h.m, 0, 0);
    }
    EXPECT_TRUE(b.unsatisfiable());
}

TEST(Budget, HardOverWithoutRefusalIsNotUnsatisfiable)
{
    // Overruns with the gate never consulted mid-window (the only
    // admit calls land right after a close, when the fresh window has
    // spent nothing) do not declare defeat: the controller was never
    // actually refusing work while the budget blew.
    BudgetHarness h;
    BudgetConfig cfg = smallConfig();
    BudgetController b(cfg, 1);
    b.onRunStart(h.m);

    for (uint32_t i = 0; i < 3 * cfg.unsatisfiableWindows; ++i) {
        h.overhead(100);
        h.base(1000);
        b.admitRegion(h.m, 0, 0);  // closes the window, then admits
    }
    BudgetReport r = b.report();
    ASSERT_GE(r.windows.size(), cfg.unsatisfiableWindows);
    for (const core::BudgetWindow &w : r.windows)
        EXPECT_TRUE(w.hardOver);
    EXPECT_FALSE(b.unsatisfiable());

    // Refused-but-hard-over windows broken up by clean ones never
    // accumulate the consecutive streak either.
    BudgetHarness h2;
    BudgetController b2(cfg, 1);
    b2.onRunStart(h2.m);
    for (uint32_t i = 0; i < 3 * cfg.unsatisfiableWindows; ++i) {
        bool storm = i % 2 == 0;
        if (storm) {
            h2.overhead(100);
            b2.admitCheck(h2.m, 0, 1, 0);
        }
        h2.base(1000);
        b2.admitRegion(h2.m, 0, 0);
    }
    EXPECT_FALSE(b2.unsatisfiable());
}
