/**
 * @file
 * Unit tests for race fingerprints and reproduction metadata: the
 * identities every campaign decision keys on.
 */

#include <gtest/gtest.h>

#include "core/fingerprint.hh"
#include "core/repro.hh"
#include "ir/builder.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

Program
taggedProgram()
{
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    FuncId worker = b.beginFunction("worker");
    b.load(AddrExpr::absolute(x), "reader site");
    b.store(AddrExpr::absolute(x), "writer site");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

TEST(Fingerprint, OrderIndependent)
{
    Program p = taggedProgram();
    detector::Race ab{0, 1, detector::RaceKind::ReadWrite, 0x40, 1};
    detector::Race ba{1, 0, detector::RaceKind::ReadWrite, 0x40, 1};
    core::RaceSig sa = core::raceSig(p, ab);
    core::RaceSig sb = core::raceSig(p, ba);
    EXPECT_EQ(sa.hash, sb.hash);
    EXPECT_EQ(sa.key, sb.key);
    EXPECT_EQ(sa.label, sb.label);
    EXPECT_EQ(sa.a, sb.a);
    EXPECT_EQ(sa.b, sb.b);
}

TEST(Fingerprint, ScopeSeparatesApps)
{
    Program p = taggedProgram();
    detector::Race race{0, 1, detector::RaceKind::ReadWrite, 0x40, 1};
    core::RaceSig vips = core::raceSig(p, race, "vips");
    core::RaceSig facesim = core::raceSig(p, race, "facesim");
    EXPECT_NE(vips.hash, facesim.hash);
    EXPECT_NE(vips.key, facesim.key);
    // The label (ground-truth matching key) is scope-free: each app
    // scores against its own annotation table anyway.
    EXPECT_EQ(vips.label, facesim.label);
}

TEST(Fingerprint, SelfRaceHasEqualEndpoints)
{
    Program p = taggedProgram();
    detector::Race race{1, 1, detector::RaceKind::WriteWrite, 0x40, 1};
    core::RaceSig sig = core::raceSig(p, race);
    EXPECT_EQ(sig.a, sig.b);
    EXPECT_EQ(sig.label,
              core::raceLabelKey("writer site", "writer site"));
}

TEST(Fingerprint, LabelMatchesRaceLabelKey)
{
    Program p = taggedProgram();
    detector::Race race{0, 1, detector::RaceKind::ReadWrite, 0x40, 1};
    core::RaceSig sig = core::raceSig(p, race);
    EXPECT_EQ(sig.label,
              core::raceLabelKey("reader site", "writer site"));
    // And label keys are themselves symmetric.
    EXPECT_EQ(core::raceLabelKey("reader site", "writer site"),
              core::raceLabelKey("writer site", "reader site"));
}

TEST(Fingerprint, FingerprintedRacesSorted)
{
    Program p = taggedProgram();
    detector::RaceSet races;
    races.record(0, 1, detector::RaceKind::ReadWrite, 0x40);
    races.record(1, 1, detector::RaceKind::WriteWrite, 0x40);
    auto sorted = core::fingerprintedRaces(p, races);
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_LE(sorted[0].first.hash, sorted[1].first.hash);
}

TEST(Repro, DigestStableAndSeedSensitive)
{
    core::RunConfig a;
    core::RunConfig b;
    EXPECT_EQ(core::configDigest(a), core::configDigest(b));
    b.machine.seed ^= 1;
    EXPECT_NE(core::configDigest(a), core::configDigest(b));
}

TEST(Repro, DigestSeesEveryLayer)
{
    core::RunConfig base;
    uint64_t d0 = core::configDigest(base);

    core::RunConfig m = base;
    m.mode = core::RunMode::TSan;
    EXPECT_NE(core::configDigest(m), d0);

    core::RunConfig irq = base;
    irq.machine.interruptPerStep *= 2.0;
    EXPECT_NE(core::configDigest(irq), d0);

    core::RunConfig htm = base;
    htm.machine.htm.l1Ways += 1;
    EXPECT_NE(core::configDigest(htm), d0);

    core::RunConfig pass = base;
    pass.passes.insertLoopCuts = false;
    EXPECT_NE(core::configDigest(pass), d0);

    core::RunConfig gov = base;
    gov.governor.enabled = true;
    EXPECT_NE(core::configDigest(gov), d0);

    core::RunConfig flt = base;
    flt.machine.faults.name = "storm";
    EXPECT_NE(core::configDigest(flt), d0);
}

TEST(Repro, SampleRateInertOutsideSampling)
{
    // Front ends default sampleRate differently; the digest must not
    // disagree when the field cannot affect the run.
    core::RunConfig a;
    core::RunConfig b;
    a.sampleRate = 1.0;
    b.sampleRate = 0.5;
    EXPECT_EQ(core::configDigest(a), core::configDigest(b));
    a.mode = b.mode = core::RunMode::TSanSampling;
    EXPECT_NE(core::configDigest(a), core::configDigest(b));
}

TEST(Repro, CommandRendersEveryKnob)
{
    core::RunIdentity id;
    id.name = "vips";
    id.mode = "txrace-dyn";
    id.workers = 8;
    id.scale = 2;
    id.seed = 42;
    id.fault = "interrupt-storm";
    id.faultHorizon = 5000;
    id.governor = true;
    id.irqScale = 4.0;
    id.calibrated = false;
    EXPECT_EQ(core::reproCommand(id),
              "txrace_run --app vips --mode txrace-dyn --workers 8 "
              "--scale 2 --seed 42 --fault interrupt-storm "
              "--fault-horizon 5000 --governor --irq-scale 4 "
              "--no-calibrate");
}

TEST(Repro, CommandDefaultsAreMinimal)
{
    core::RunIdentity id;
    id.name = "raytrace";
    id.seed = 7;
    EXPECT_EQ(core::reproCommand(id),
              "txrace_run --app raytrace --mode txrace --workers 4 "
              "--scale 1 --seed 7");
}

TEST(Repro, ParseSeedList)
{
    EXPECT_EQ(core::parseSeedList("1"),
              (std::vector<uint64_t>{1}));
    EXPECT_EQ(core::parseSeedList("3,1,18446744073709551615"),
              (std::vector<uint64_t>{3, 1, 18446744073709551615ull}));
}
