/**
 * @file
 * Unit tests for the adaptive fallback governor: the degradation
 * ladder, livelock escalation, bounded backoff retries, and the
 * re-probation machinery — exercised directly against a machine that
 * is never run, by driving the per-thread virtual clock by hand.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/budget.hh"
#include "core/governor.hh"
#include "core/policies.hh"
#include "ir/builder.hh"

using namespace txrace;
using core::FallbackGovernor;
using core::GovernorAction;
using core::GovernorConfig;
using sim::Bucket;
using sim::Machine;

namespace {

ir::Program
tinyProgram()
{
    ir::ProgramBuilder b;
    b.beginFunction("main");
    b.compute(1);
    b.endFunction();
    return b.build();
}

GovernorConfig
enabledConfig()
{
    GovernorConfig cfg;
    cfg.enabled = true;
    return cfg;
}

/** A machine we only use as a clock + stats + event sink. */
struct GovHarness
{
    ir::Program prog = tinyProgram();
    core::NativePolicy policy;
    sim::MachineConfig mcfg;
    Machine m;

    GovHarness() : m(prog, mcfg, policy) {}

    void tick(uint64_t cost) { m.context(0).myCost += cost; }
};

} // namespace

TEST(Governor, DisabledIsInert)
{
    GovHarness h;
    FallbackGovernor gov(GovernorConfig{}, 1);
    EXPECT_FALSE(gov.enabled());
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kFast);
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Unknown),
              GovernorAction::FallBack);
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Conflict),
              GovernorAction::FallBack);
    EXPECT_EQ(h.m.stats().get("txrace.gov.demotions"), 0u);
}

TEST(Governor, CapacityAbortRateDemotesToShortTx)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;  // isolate the window logic
    FallbackGovernor gov(cfg, 1);

    // demoteAbortsPerWindow aborts inside one window: demote. The
    // first rung for capacity pressure is shorter transactions.
    for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
        gov.onAbort(h.m, 0, Bucket::Capacity);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kShortTx);
    EXPECT_EQ(h.m.stats().get("txrace.gov.demotions"), 1u);
    EXPECT_EQ(gov.demoteReasonFor(0), Bucket::Capacity);
    EXPECT_EQ(gov.loopcutDivisorFor(0), 2u);
}

TEST(Governor, UnknownAbortRateSkipsStraightToSlowStart)
{
    // Interrupts strike per step no matter how short the transaction
    // is, so the ShortTx rung is skipped for unknown-dominated storms.
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);

    for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
        gov.onAbort(h.m, 0, Bucket::Unknown);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kSlowStart);
    EXPECT_EQ(gov.demoteReasonFor(0), Bucket::Unknown);
}

TEST(Governor, ShortTxRungSkippedWithoutLoopCuts)
{
    // When the program carries no loop-cut instrumentation there is
    // nothing to shorten, so even capacity pressure lands on
    // slow-start directly.
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);
    gov.setShortTxUseful(false);

    for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
        gov.onAbort(h.m, 0, Bucket::Capacity);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kSlowStart);
}

TEST(Governor, SparseAbortsNeverDemote)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);

    // One abort per window, forever: the window keeps rolling over.
    for (int i = 0; i < 50; ++i) {
        gov.onAbort(h.m, 0, Bucket::Capacity);
        h.tick(cfg.windowCost + 1);
    }
    EXPECT_EQ(gov.level(0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.demotions"), 0u);
}

TEST(Governor, LivelockEscalatesStraightToSlowStart)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    FallbackGovernor gov(cfg, 1);

    for (uint32_t i = 0; i < cfg.livelockK; ++i) {
        gov.onAbort(h.m, 0, Bucket::Conflict, /*primary=*/true);
        h.tick(cfg.windowCost + 1);  // keep the rate window quiet
    }
    EXPECT_EQ(gov.level(0), FallbackGovernor::kSlowStart);
    EXPECT_EQ(h.m.stats().get("txrace.gov.livelock_escalations"), 1u);
    EXPECT_EQ(gov.demoteReasonFor(0), Bucket::Conflict);
}

TEST(Governor, CommitResetsTheLivelockCounter)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    FallbackGovernor gov(cfg, 1);

    for (int round = 0; round < 5; ++round) {
        for (uint32_t i = 0; i + 1 < cfg.livelockK; ++i) {
            gov.onAbort(h.m, 0, Bucket::Conflict, true);
            h.tick(cfg.windowCost + 1);
        }
        gov.onCommit(0);  // a commit interrupts the streak
    }
    EXPECT_EQ(gov.level(0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.livelock_escalations"), 0u);
}

TEST(Governor, CollateralConflictsDoNotCountTowardLivelock)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    FallbackGovernor gov(cfg, 1);

    // TxFail-broadcast victims (primary=false), spaced so the abort
    // window never trips either.
    for (int i = 0; i < 20; ++i) {
        gov.onAbort(h.m, 0, Bucket::Conflict, /*primary=*/false);
        h.tick(cfg.windowCost + 1);
    }
    EXPECT_EQ(gov.level(0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.livelock_escalations"), 0u);
}

TEST(Governor, UnknownAbortsGetBoundedBackoffRetries)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 2;
    FallbackGovernor gov(cfg, 1);

    uint64_t before = h.m.context(0).myCost;
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Unknown),
              GovernorAction::RetryBackoff);
    EXPECT_EQ(h.m.context(0).myCost - before, cfg.backoffBaseCost);

    // A second abort in the SAME window is a storm, not a transient:
    // the in-place retry is refused even with budget left.
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Unknown),
              GovernorAction::FallBack);

    // Quiet window again: the second retry goes through, with the
    // stall doubled.
    h.tick(cfg.windowCost + 1);
    before = h.m.context(0).myCost;
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Unknown),
              GovernorAction::RetryBackoff);
    EXPECT_EQ(h.m.context(0).myCost - before, 2 * cfg.backoffBaseCost);

    // Budget exhausted: surrender to the slow path.
    h.tick(cfg.windowCost + 1);
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Unknown),
              GovernorAction::FallBack);
    EXPECT_EQ(h.m.stats().get("txrace.gov.backoff_retries"), 2u);

    // A commit refills the per-region budget.
    gov.onCommit(0);
    h.tick(cfg.windowCost + 1);
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Unknown),
              GovernorAction::RetryBackoff);
}

TEST(Governor, ConflictAbortsNeverRetryInPlace)
{
    GovHarness h;
    FallbackGovernor gov(enabledConfig(), 1);
    // The TxFail protocol must run: both sides get re-checked.
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Conflict),
              GovernorAction::FallBack);
    EXPECT_EQ(gov.onAbort(h.m, 0, Bucket::Capacity),
              GovernorAction::FallBack);
}

TEST(Governor, ReprobationClimbsAndBacksOffExponentially)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);

    auto demoteOnce = [&] {
        for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
            gov.onAbort(h.m, 0, Bucket::Capacity);
    };
    demoteOnce();
    ASSERT_EQ(gov.level(0), FallbackGovernor::kShortTx);

    // Not yet cooled down: stays put.
    h.tick(cfg.reprobateAfterCost - 1);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kShortTx);

    // Cooldown elapsed: probes one level up.
    h.tick(2);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.reprobations"), 1u);

    // The storm is still raging: the probe fails...
    demoteOnce();
    EXPECT_EQ(gov.level(0), FallbackGovernor::kShortTx);
    EXPECT_EQ(h.m.stats().get("txrace.gov.failed_probes"), 1u);

    // ...so the next probe needs twice the cooldown.
    h.tick(cfg.reprobateAfterCost + 1);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kShortTx);
    h.tick(cfg.reprobateAfterCost);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.reprobations"), 2u);

    // This time the storm has passed: two calm windows clear the
    // backoff entirely.
    h.tick(2 * cfg.windowCost);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.probe_successes"), 1u);
}

TEST(Governor, SlowCostBudgetDemotesToSampling)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    FallbackGovernor gov(cfg, 1);

    // Reach slow-start via livelock.
    for (uint32_t i = 0; i < cfg.livelockK; ++i) {
        gov.onAbort(h.m, 0, Bucket::Conflict, true);
        h.tick(cfg.windowCost + 1);
    }
    ASSERT_EQ(gov.level(0), FallbackGovernor::kSlowStart);

    // The hardware is still aborting under us in this window...
    gov.onAbort(h.m, 0, Bucket::Capacity);
    // ...and the slow path is stalling too (per-check cost far above
    // the configured baseline): cornered, so sampled checking is the
    // only bounded option left.
    gov.onSlowCheckCost(h.m, 0, cfg.demoteSlowCostPerWindow - 1);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kSlowStart);
    gov.onSlowCheckCost(h.m, 0, 1);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kSampling);
    // The sampling rung keeps the original demotion attribution.
    EXPECT_EQ(gov.demoteReasonFor(0), Bucket::Conflict);
}

TEST(Governor, QuietStalledSlowPathProbesBackUp)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    FallbackGovernor gov(cfg, 1);

    // Reach slow-start via livelock.
    for (uint32_t i = 0; i < cfg.livelockK; ++i) {
        gov.onAbort(h.m, 0, Bucket::Conflict, true);
        h.tick(cfg.windowCost + 1);
    }
    ASSERT_EQ(gov.level(0), FallbackGovernor::kSlowStart);

    // A stalled check with the hardware silent all window: the
    // expensive part is the fallback itself, so the governor climbs
    // back up rather than sinking to sampling.
    h.tick(cfg.windowCost + 1);
    gov.onSlowCheckCost(h.m, 0, cfg.demoteSlowCostPerWindow);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kShortTx);
    EXPECT_EQ(h.m.stats().get("txrace.gov.stall_promotions"), 1u);
    EXPECT_EQ(h.m.stats().get("txrace.gov.demotions"), 1u);  // livelock only
}

TEST(Governor, SamplingDrawsAreDeterministicPerSeed)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    FallbackGovernor a(cfg, 42), b(cfg, 42), c(cfg, 43);
    int same = 0, diffMatches = 0;
    for (int i = 0; i < 256; ++i) {
        bool da = a.sampleThisAccess(0);
        bool db = b.sampleThisAccess(0);
        bool dc = c.sampleThisAccess(0);
        same += da == db;
        diffMatches += da == dc;
    }
    EXPECT_EQ(same, 256);
    EXPECT_LT(diffMatches, 256);  // different seed, different stream
}

TEST(Governor, ProbeIntervalExactlyDoublesUnderPersistentStorm)
{
    // The full backoff staircase: every failed probe doubles the
    // cooldown until maxProbeBackoffExp caps it, and the cap holds.
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);

    auto demoteOnce = [&] {
        for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
            gov.onAbort(h.m, 0, Bucket::Capacity);
    };
    // Count the ticks until the next probe fires, advancing one cost
    // unit at a time so the observed delay is exact.
    auto ticksUntilProbe = [&] {
        uint64_t n = 0;
        uint64_t limit =
            2 * (cfg.reprobateAfterCost << cfg.maxProbeBackoffExp);
        while (gov.levelForRegion(h.m, 0) != FallbackGovernor::kFast) {
            h.tick(1);
            ++n;
            if (n > limit)
                break;
        }
        return n;
    };

    demoteOnce();
    ASSERT_EQ(gov.level(0), FallbackGovernor::kShortTx);

    std::vector<uint64_t> delays;
    for (int probe = 0;
         probe < static_cast<int>(cfg.maxProbeBackoffExp) + 2;
         ++probe) {
        delays.push_back(ticksUntilProbe());
        demoteOnce();  // the storm is still raging: probe fails
        ASSERT_EQ(gov.level(0), FallbackGovernor::kShortTx);
    }
    std::vector<uint64_t> expected;
    for (int probe = 0;
         probe < static_cast<int>(cfg.maxProbeBackoffExp) + 2;
         ++probe) {
        uint32_t exp = std::min(static_cast<uint32_t>(probe),
                                cfg.maxProbeBackoffExp);
        expected.push_back(cfg.reprobateAfterCost << exp);
    }
    EXPECT_EQ(delays, expected);  // 800, 1600, 3200, 6400, 6400
}

TEST(Governor, EscalationIsDeterministicAcrossSeeds)
{
    // The ladder reacts to abort sequences, not to the sampling seed:
    // ten governors with ten different seeds, driven by the same
    // abort trace, must walk the same level trajectory.
    GovernorConfig cfg = enabledConfig();
    std::vector<std::vector<uint32_t>> trajectories;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        GovHarness h;
        FallbackGovernor gov(cfg, seed);
        std::vector<uint32_t> levels;
        for (int i = 0; i < 40; ++i) {
            Bucket reason = i % 3 == 0 ? Bucket::Unknown
                          : i % 3 == 1 ? Bucket::Capacity
                                       : Bucket::Conflict;
            gov.onAbort(h.m, 0, reason, /*primary=*/i % 2 == 0);
            gov.onSlowCheckCost(h.m, 0, 40);
            if (i % 7 == 0)
                gov.onCommit(0);
            h.tick(13);
            levels.push_back(gov.levelForRegion(h.m, 0));
        }
        trajectories.push_back(std::move(levels));
    }
    for (size_t i = 1; i < trajectories.size(); ++i)
        EXPECT_EQ(trajectories[i], trajectories[0])
            << "seed " << i + 1 << " diverged";
}

TEST(Governor, BudgetPressureVetoesPromotions)
{
    // Monitor mode composes with the ladder: while the budget window
    // is past its soft admission level, re-probation is deferred (and
    // counted), and resumes once the pressure clears.
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);

    core::BudgetConfig bcfg;
    bcfg.enabled = true;
    bcfg.budgetPct = 5.0;
    bcfg.windowBase = 1'000'000;  // one window spans the whole test
    core::BudgetController budget(bcfg, 1);
    budget.onRunStart(h.m);
    gov.setBudget(&budget);

    for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
        gov.onAbort(h.m, 0, Bucket::Capacity);
    ASSERT_EQ(gov.level(0), FallbackGovernor::kShortTx);

    // Refusing an over-budget check puts the window under pressure.
    uint64_t soft = static_cast<uint64_t>(
        bcfg.budgetPct / 100.0 * bcfg.windowBase * bcfg.softFactor);
    EXPECT_FALSE(budget.admitCheck(h.m, 0, 1, soft + 1));
    ASSERT_TRUE(budget.underPressure());

    // Cooldown elapses, but the budget outranks the ladder: no
    // promotion, and the veto restarts the cooldown.
    h.tick(cfg.reprobateAfterCost + 1);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kShortTx);
    EXPECT_EQ(h.m.stats().get("txrace.gov.budget_vetoes"), 1u);
    EXPECT_EQ(h.m.stats().get("txrace.gov.reprobations"), 0u);

    // Pressure clears with the next window roll (overhead stayed
    // below the soft level), and the deferred probe goes through.
    h.m.addCost(0, bcfg.windowBase, sim::Bucket::Base);
    EXPECT_TRUE(budget.admitCheck(h.m, 0, 1, 0));
    EXPECT_FALSE(budget.underPressure());
    h.tick(cfg.reprobateAfterCost + 1);
    EXPECT_EQ(gov.levelForRegion(h.m, 0), FallbackGovernor::kFast);
    EXPECT_EQ(h.m.stats().get("txrace.gov.reprobations"), 1u);
}

TEST(Governor, ThreadsAreIndependent)
{
    GovHarness h;
    GovernorConfig cfg = enabledConfig();
    cfg.maxBackoffRetries = 0;
    FallbackGovernor gov(cfg, 1);
    for (uint32_t i = 0; i < cfg.demoteAbortsPerWindow; ++i)
        gov.onAbort(h.m, 0, Bucket::Capacity);
    EXPECT_EQ(gov.level(0), FallbackGovernor::kShortTx);
    EXPECT_EQ(gov.level(1), FallbackGovernor::kFast);
    EXPECT_EQ(gov.loopcutDivisorFor(1), 1u);
}
