/**
 * @file
 * Unit tests for the experiment driver: mode dispatch, overhead
 * ordering, recall computation, and the ProfLoopcut profiling pre-run.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "ir/builder.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

/** Memory-heavy multithreaded program with one race. */
Program
benchmarkProgram()
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(6, [&] {
        // Mostly clean regions; the contended store is rare enough
        // that the fast path carries the bulk of the run.
        b.loop(6, [&] {
            for (int i = 0; i < 8; ++i)
                b.load(AddrExpr::randomIn(data, 64, 8));
            b.syscall(1);
        });
        for (int i = 0; i < 6; ++i)
            b.load(AddrExpr::randomIn(data, 64, 8));
        b.store(AddrExpr::absolute(racy), "racy store");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    return b.build();
}

core::RunConfig
config(core::RunMode mode, uint64_t seed = 1)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine.seed = seed;
    cfg.machine.interruptPerStep = 0.0;
    return cfg;
}

} // namespace

TEST(Driver, NativeRunHasOnlyBaseCost)
{
    Program p = benchmarkProgram();
    core::RunResult r =
        core::runProgram(p, config(core::RunMode::Native));
    EXPECT_GT(r.totalCost, 0u);
    EXPECT_EQ(r.buckets[static_cast<size_t>(sim::Bucket::Base)],
              r.totalCost);
    EXPECT_EQ(r.races.count(), 0u);
}

TEST(Driver, OverheadOrderingNativeTxRaceTSan)
{
    Program p = benchmarkProgram();
    core::RunResult native =
        core::runProgram(p, config(core::RunMode::Native));
    core::RunResult tsan =
        core::runProgram(p, config(core::RunMode::TSan));
    core::RunResult txr =
        core::runProgram(p, config(core::RunMode::TxRaceProfLoopcut));
    EXPECT_GT(tsan.totalCost, native.totalCost);
    EXPECT_GT(txr.totalCost, native.totalCost);
    EXPECT_LT(txr.totalCost, tsan.totalCost);
    EXPECT_NEAR(tsan.overheadVs(native),
                static_cast<double>(tsan.totalCost) /
                    static_cast<double>(native.totalCost),
                1e-12);
}

TEST(Driver, AllModesFindOrMissTheRaceAsExpected)
{
    Program p = benchmarkProgram();
    core::RunResult tsan =
        core::runProgram(p, config(core::RunMode::TSan));
    EXPECT_EQ(tsan.races.count(), 1u);
    core::RunResult txr =
        core::runProgram(p, config(core::RunMode::TxRaceDynLoopcut));
    EXPECT_EQ(txr.races.count(), 1u);  // wide windows: found
    core::RunResult none = core::runProgram(
        p, [] {
            core::RunConfig c = config(core::RunMode::TSanSampling);
            c.sampleRate = 0.0;
            return c;
        }());
    EXPECT_EQ(none.races.count(), 0u);
}

TEST(Driver, SamplingRateInterpolatesCost)
{
    Program p = benchmarkProgram();
    core::RunConfig half = config(core::RunMode::TSanSampling);
    half.sampleRate = 0.5;
    core::RunResult r_half = core::runProgram(p, half);
    core::RunResult r_full =
        core::runProgram(p, config(core::RunMode::TSan));
    core::RunResult r_native =
        core::runProgram(p, config(core::RunMode::Native));
    EXPECT_GT(r_half.totalCost, r_native.totalCost);
    EXPECT_LT(r_half.totalCost, r_full.totalCost);
}

TEST(Driver, RecallOf)
{
    detector::RaceSet reference, tool;
    EXPECT_DOUBLE_EQ(core::recallOf(tool, reference), 1.0);  // empty ref
    reference.record(1, 2, detector::RaceKind::WriteWrite, 0);
    reference.record(3, 4, detector::RaceKind::WriteWrite, 0);
    EXPECT_DOUBLE_EQ(core::recallOf(tool, reference), 0.0);
    tool.record(1, 2, detector::RaceKind::WriteWrite, 0);
    EXPECT_DOUBLE_EQ(core::recallOf(tool, reference), 0.5);
    tool.record(3, 4, detector::RaceKind::WriteWrite, 0);
    tool.record(9, 9, detector::RaceKind::WriteWrite, 0);  // extra
    EXPECT_DOUBLE_EQ(core::recallOf(tool, reference), 1.0);
}

TEST(Driver, TxRaceModesShareInstrumentation)
{
    // All three TxRace variants run the same program shape; NoOpt
    // just lacks LoopCut instructions.
    Program p = benchmarkProgram();
    for (core::RunMode mode :
         {core::RunMode::TxRaceNoOpt, core::RunMode::TxRaceDynLoopcut,
          core::RunMode::TxRaceProfLoopcut}) {
        core::RunResult r = core::runProgram(p, config(mode));
        EXPECT_GT(r.stats.get("tx.committed"), 0u)
            << core::runModeName(mode);
    }
}

TEST(Driver, RunModeNames)
{
    EXPECT_STREQ(core::runModeName(core::RunMode::Native), "Native");
    EXPECT_STREQ(core::runModeName(core::RunMode::TSan), "TSan");
    EXPECT_STREQ(core::runModeName(core::RunMode::TSanSampling),
                 "TSan+Sampling");
    EXPECT_STREQ(core::runModeName(core::RunMode::TxRaceNoOpt),
                 "TxRace-NoOpt");
    EXPECT_STREQ(core::runModeName(core::RunMode::TxRaceDynLoopcut),
                 "TxRace-DynLoopcut");
    EXPECT_STREQ(core::runModeName(core::RunMode::TxRaceProfLoopcut),
                 "TxRace-ProfLoopcut");
    EXPECT_TRUE(core::isTxRaceMode(core::RunMode::TxRaceNoOpt));
    EXPECT_FALSE(core::isTxRaceMode(core::RunMode::TSan));
}

TEST(DriverDeathTest, UnfinalizedProgramIsFatal)
{
    Program p;
    Function fn;
    fn.name = "main";
    p.addFunction(std::move(fn));
    EXPECT_EXIT(core::runProgram(p, config(core::RunMode::Native)),
                testing::ExitedWithCode(1), "not finalized");
}
