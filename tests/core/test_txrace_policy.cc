/**
 * @file
 * Behavioral tests of the TxRace two-phase runtime: the fast path,
 * every abort-dispatch rule of §4.2, the optimizations of §4.3, the
 * completeness guarantee, and each false-negative source of §6.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "ir/builder.hh"
#include "mem/layout.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

core::RunConfig
txraceConfig(uint64_t seed = 1)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine.seed = seed;
    cfg.machine.interruptPerStep = 0.0;
    return cfg;
}

/** Six instrumented loads: enough to stay above the K threshold. */
void
pad(ProgramBuilder &b, Addr base)
{
    for (int i = 0; i < 6; ++i)
        b.load(AddrExpr::absolute(base + 8 * i), "pad");
}

} // namespace

TEST(TxRace, CleanRunCommitsEverything)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        pad(b, data);
        b.store(AddrExpr::perThread(data + 1024, 64), "own cell");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunResult r = core::runProgram(p, txraceConfig());
    EXPECT_EQ(r.races.count(), 0u);
    EXPECT_EQ(r.stats.get("tx.abort.conflict"), 0u);
    EXPECT_EQ(r.stats.get("tx.abort.capacity"), 0u);
    EXPECT_EQ(r.stats.get("tx.abort.unknown"), 0u);
    EXPECT_GE(r.stats.get("tx.committed"), 30u);
    // No software checking happened at all.
    EXPECT_EQ(r.stats.get("detector.reads"), 0u);
    EXPECT_EQ(r.stats.get("detector.writes"), 0u);
}

TEST(TxRace, ConflictTriggersSlowPathAndPinpointsRace)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(racy), "unlocked store");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    // Region mode: this pins the paper's TxFail broadcast protocol
    // (the windowed default never publishes TxFail; its detection
    // equivalence is covered by the slowpath differential test).
    core::RunConfig cfg = txraceConfig();
    cfg.slowpath = core::SlowPathKind::Region;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("tx.abort.conflict"), 1u);
    EXPECT_GE(r.stats.get("txrace.txfail_writes"), 1u);
    ASSERT_EQ(r.races.count(), 1u);
    // The reported pair is the unlocked store against itself.
    detector::Race race = r.races.all()[0];
    EXPECT_EQ(race.first, race.second);
    EXPECT_EQ(p.instr(race.first).tag, "unlocked store");
}

TEST(TxRace, FalseSharingIsFilteredBySlowPath)
{
    // Per-thread slots packed in one cache line: the fast path must
    // conflict, the slow path must stay silent (completeness).
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr slots = b.alloc("slots", 64, 64);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        pad(b, data);
        b.store(AddrExpr::perThread(slots, 8), "own slot");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    // With the elision stack on, the per-thread slot store is proven
    // thread-disjoint statically and never reaches the detector: the
    // false-sharing conflict is filtered at compile time.
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        core::RunResult r = core::runProgram(p, txraceConfig(seed));
        EXPECT_GE(r.stats.get("tx.abort.conflict"), 1u);
        EXPECT_EQ(r.races.count(), 0u) << "seed " << seed;
        EXPECT_GT(r.stats.get("pass.elide.privatized"), 0u);
    }
    // With elision off, the slow path must check the accesses and
    // still stay silent (the original completeness guarantee).
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        core::RunConfig cfg = txraceConfig(seed);
        cfg.passes.elide.enabled = false;
        cfg.machine.htm.accessFilter = false;
        cfg.machine.det.epochFastPath = false;
        core::RunResult r = core::runProgram(p, cfg);
        EXPECT_GE(r.stats.get("tx.abort.conflict"), 1u);
        EXPECT_EQ(r.races.count(), 0u) << "seed " << seed;
        EXPECT_GT(r.stats.get("detector.writes"), 0u);
    }
}

TEST(TxRace, CapacityAbortFallsBackAlone)
{
    // Worker 1 overflows its write set; workers keep committing.
    // Capacity aborts must not write TxFail (no artificial aborts).
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr wide = b.alloc("wide", 16 * 4096 + 1024, 64);
    FuncId worker = b.beginFunction("worker");
    b.loop(6, [&] {
        pad(b, data);
        b.loop(12, [&] {
            AddrExpr e = AddrExpr::perThread(wide, 64);
            e.loopStride = 4096;  // same-set strided stores
            b.store(e, "stream");
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.mode = core::RunMode::TxRaceNoOpt;  // no loop-cut rescue
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("tx.abort.capacity"), 6u);
    EXPECT_EQ(r.stats.get("txrace.artificial_aborts"), 0u);
    EXPECT_EQ(r.stats.get("txrace.txfail_writes"), 0u);
    EXPECT_EQ(r.races.count(), 0u);
}

TEST(TxRace, DynLoopcutEliminatesRepeatedCapacityAborts)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr wide = b.alloc("wide", 16 * 4096 + 1024, 64);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        pad(b, data);
        b.loop(12, [&] {
            AddrExpr e = AddrExpr::perThread(wide, 64);
            e.loopStride = 4096;
            b.store(e, "stream");
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig noopt = txraceConfig();
    noopt.mode = core::RunMode::TxRaceNoOpt;
    core::RunResult r_noopt = core::runProgram(p, noopt);

    core::RunConfig dyn = txraceConfig();
    dyn.mode = core::RunMode::TxRaceDynLoopcut;
    core::RunResult r_dyn = core::runProgram(p, dyn);

    core::RunConfig prof = txraceConfig();
    prof.mode = core::RunMode::TxRaceProfLoopcut;
    core::RunResult r_prof = core::runProgram(p, prof);

    // NoOpt aborts on every execution of the loop; Dyn learns after a
    // couple; Prof avoids even the first.
    EXPECT_GE(r_noopt.stats.get("tx.abort.capacity"), 18u);
    EXPECT_LE(r_dyn.stats.get("tx.abort.capacity"), 4u);
    EXPECT_EQ(r_prof.stats.get("tx.abort.capacity"), 0u);
    EXPECT_GT(r_dyn.stats.get("txrace.loop_cuts"), 0u);
    EXPECT_LE(r_prof.totalCost, r_noopt.totalCost);
}

TEST(TxRace, SingleThreadedExecutionIsElided)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    b.beginFunction("main");
    b.loop(50, [&] {
        pad(b, data);
        b.syscall(1);
    });
    b.endFunction();
    Program p = b.build();

    core::RunResult r = core::runProgram(p, txraceConfig());
    EXPECT_GE(r.stats.get("txrace.elided"), 50u);
    EXPECT_EQ(r.stats.get("tx.begins"), 0u);
    EXPECT_EQ(r.stats.get("tx.committed"), 0u);

    core::RunConfig native = txraceConfig();
    native.mode = core::RunMode::Native;
    core::RunResult n = core::runProgram(p, native);
    // Elision makes TxRace nearly free here.
    EXPECT_LT(r.overheadVs(n), 1.05);
}

TEST(TxRace, SmallRegionRunsOnSlowPath)
{
    ProgramBuilder b;
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        b.store(AddrExpr::absolute(racy), "tiny region store");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunResult r = core::runProgram(p, txraceConfig());
    EXPECT_GE(r.stats.get("txrace.small_slow_regions"), 20u);
    EXPECT_EQ(r.stats.get("tx.begins"), 0u);
    // Slow-forced regions are software-checked every time, so the
    // race is found without needing transactional overlap.
    EXPECT_EQ(r.races.count(), 1u);
}

TEST(TxRace, HardwareThreadLimitFallsBackToSlowPath)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        pad(b, data);
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.machine.hwThreads = 2;  // only two concurrent transactions
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("txrace.hwlimit_aborts"), 1u);
    EXPECT_GT(r.stats.get("tx.committed"), 0u);
}

TEST(TxRace, Figure6NoFalseWarningAcrossPathAlternation)
{
    // T1 writes X in a checked (slow-forced) region, then signals;
    // T2 waits — an edge established while both are otherwise on the
    // fast path — and then writes X in a checked region. TxRace must
    // not warn.
    ProgramBuilder b;
    Addr x = b.alloc("x", 8);
    FuncId t1 = b.beginFunction("t1");
    b.store(AddrExpr::absolute(x), "x=1");
    b.syscall(1);
    b.signal(0);
    b.compute(50);
    b.endFunction();
    FuncId t2 = b.beginFunction("t2");
    b.wait(0);
    b.store(AddrExpr::absolute(x), "x=2");
    b.syscall(1);
    b.compute(50);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(t1, 1);
    b.spawn(t2, 1);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    for (uint64_t seed = 1; seed <= 10; ++seed) {
        core::RunResult r = core::runProgram(p, txraceConfig(seed));
        EXPECT_EQ(r.races.count(), 0u) << "seed " << seed;
    }
}

TEST(TxRace, NonOverlappingRaceIsMissed)
{
    // §6 false-negative source one: the racing accesses sit in fast
    // transactions that never overlap in time (one at the very start,
    // one at the very end of long-running workers).
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr early_late = b.alloc("el", 8);
    FuncId t1 = b.beginFunction("t1");
    pad(b, data);
    b.store(AddrExpr::absolute(early_late), "early write");
    b.syscall(1);
    b.loop(60, [&] {
        pad(b, data);
        b.syscall(1);
    });
    b.endFunction();
    FuncId t2 = b.beginFunction("t2");
    b.loop(60, [&] {
        pad(b, data);
        b.syscall(1);
    });
    pad(b, data);
    b.load(AddrExpr::absolute(early_late), "late read");
    b.syscall(1);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(t1, 1);
    b.spawn(t2, 1);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    // TxRace misses it on every seed (accesses are ~60 regions apart)…
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        core::RunResult r = core::runProgram(p, txraceConfig(seed));
        EXPECT_EQ(r.races.count(), 0u) << "seed " << seed;
    }
    // …while the happens-before baseline reports it.
    core::RunConfig tsan = txraceConfig();
    tsan.mode = core::RunMode::TSan;
    core::RunResult r_tsan = core::runProgram(p, tsan);
    EXPECT_EQ(r_tsan.races.count(), 1u);
}

TEST(TxRace, FastSlowConcurrencyDetectsOneDirection)
{
    // §4.2 / Fig. 5: a capacity-stuck thread on the slow path races a
    // fast-path thread. When the slow access comes first and the fast
    // transaction touches the line afterwards, strong isolation does
    // not fire (nothing is in any write set at fast-access time) —
    // unless the slow write lands while the fast transaction is live.
    // Across seeds, detection happens in some runs but not reliably:
    // the key assertion is that it is *possible* (the paper's Fig. 5)
    // and that nothing false is ever reported.
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr wide = b.alloc("wide", 16 * 4096 + 1024, 64);
    Addr x = b.alloc("x", 8);
    FuncId slow = b.beginFunction("slowpoke");
    b.loop(12, [&] {
        pad(b, data);
        // Capacity overflow forces this whole region slow; the region
        // also writes the contested variable.
        b.loop(12, [&] {
            AddrExpr e = AddrExpr::perThread(wide, 64);
            e.loopStride = 4096;
            b.store(e, "stream");
        });
        b.store(AddrExpr::absolute(x), "slow write");
        b.syscall(1);
    });
    b.endFunction();
    FuncId fast = b.beginFunction("fastpath");
    b.loop(40, [&] {
        pad(b, data);
        b.load(AddrExpr::absolute(x), "fast read");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(slow, 1);
    b.spawn(fast, 1);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.mode = core::RunMode::TxRaceNoOpt;
    size_t found = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        cfg.machine.seed = seed;
        core::RunResult r = core::runProgram(p, cfg);
        EXPECT_LE(r.races.count(), 1u);
        found += r.races.count();
    }
    EXPECT_GE(found, 1u);
}

TEST(TxRace, DeterministicGivenSeed)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(15, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(racy));
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunResult a = core::runProgram(p, txraceConfig(123));
    core::RunResult b2 = core::runProgram(p, txraceConfig(123));
    EXPECT_EQ(a.totalCost, b2.totalCost);
    EXPECT_EQ(a.stats.all(), b2.stats.all());
    EXPECT_EQ(a.races.keys(), b2.races.keys());
}

TEST(TxRace, BucketsSumToTotalCost)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(15, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(racy));
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.machine.interruptPerStep = 1e-3;  // some unknown aborts too
    core::RunResult r = core::runProgram(p, cfg);
    uint64_t sum = 0;
    for (uint64_t v : r.buckets)
        sum += v;
    EXPECT_EQ(sum, r.totalCost);
}

TEST(TxRace, UnknownAbortsFallBackAndStayComplete)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(30, [&] {
        pad(b, data);
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.machine.interruptPerStep = 0.05;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("tx.abort.unknown"), 5u);
    EXPECT_EQ(r.races.count(), 0u);  // race-free program stays clean
}

TEST(TxRace, RetryAbortsAreRetriedInPlace)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(25, [&] {
        pad(b, data);
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.machine.retryAbortPerStep = 0.02;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("tx.abort.retry"), 5u);
    EXPECT_GE(r.stats.get("txrace.retries"), 5u);
    // Retried regions still commit; the program completes cleanly
    // with no detection noise.
    EXPECT_GT(r.stats.get("tx.committed"), 0u);
    EXPECT_EQ(r.races.count(), 0u);

    // Retrying is invisible to correctness: a racy variant still
    // finds its race under heavy retry pressure.
    ProgramBuilder b2;
    Addr data2 = b2.alloc("data", 4096);
    Addr racy = b2.alloc("racy", 8);
    FuncId worker2 = b2.beginFunction("worker");
    b2.loop(25, [&] {
        pad(b2, data2);
        b2.store(AddrExpr::absolute(racy), "retry racy store");
        b2.syscall(1);
    });
    b2.endFunction();
    b2.beginFunction("main");
    b2.spawn(worker2, 3);
    b2.joinAll();
    b2.endFunction();
    Program p2 = b2.build();
    core::RunResult r2 = core::runProgram(p2, cfg);
    EXPECT_EQ(r2.races.count(), 1u);
}

TEST(TxRace, RetryBudgetExhaustionFallsBackToSlowPath)
{
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    FuncId worker = b.beginFunction("worker");
    b.loop(10, [&] {
        pad(b, data);
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.machine.retryAbortPerStep = 0.6;  // hopeless glitch storm
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("txrace.retry_exhausted"), 1u);
    // The run still terminates and reports nothing false.
    EXPECT_EQ(r.races.count(), 0u);
}

TEST(TxRace, ConflictAddressHintsKeepTheTriggeringRace)
{
    // §9 extension: with address hints the slow path only re-checks
    // the conflicting line. The race that caused the episode is on
    // that line, so it must still be found — while the bulk of the
    // region's accesses are only filter-checked.
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(racy), "hinted racy store");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    // Hints scope region-mode slow episodes; the windowed default
    // answers conflicts with replays and rarely enters one at all.
    core::RunConfig plain = txraceConfig();
    plain.slowpath = core::SlowPathKind::Region;
    core::RunResult r_plain = core::runProgram(p, plain);

    core::RunConfig hinted = txraceConfig();
    hinted.slowpath = core::SlowPathKind::Region;
    hinted.conflictAddressHints = true;
    core::RunResult r_hint = core::runProgram(p, hinted);

    EXPECT_EQ(r_plain.races.count(), 1u);
    EXPECT_EQ(r_hint.races.count(), 1u);
    EXPECT_GT(r_hint.stats.get("txrace.hint_filtered"), 0u);
    EXPECT_LE(r_hint.totalCost, r_plain.totalCost);
}

TEST(TxRace, HintsDoNotLeakIntoCapacityEpisodes)
{
    // Capacity/unknown fallbacks carry no conflict address, so they
    // must keep checking the whole region even with hints enabled.
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr wide = b.alloc("wide", 16 * 4096 + 1024, 64);
    Addr racy = b.alloc("racy", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(8, [&] {
        pad(b, data);
        b.loop(12, [&] {
            AddrExpr e = AddrExpr::perThread(wide, 64);
            e.loopStride = 4096;
            b.store(e, "stream");
        });
        // The racy store lives in the overflowing region; only the
        // capacity fallback's full re-check can record it.
        b.store(AddrExpr::absolute(racy), "capacity racy store");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.mode = core::RunMode::TxRaceNoOpt;  // capacity abort each time
    cfg.conflictAddressHints = true;
    core::RunResult r = core::runProgram(p, cfg);
    EXPECT_GE(r.stats.get("tx.abort.capacity"), 8u);
    EXPECT_EQ(r.races.count(), 1u);
}

TEST(TxRace, RetryAbortsAreRetriedInPlaceThenFallBack)
{
    // retryAbortPerStep = 1.0: every transactional step raises a
    // RETRY-only abort, so each non-elided region burns its full
    // in-place retry budget (maxRetries = 4) and then falls back to
    // the slow path like an unknown abort (§4.2).
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    FuncId worker = b.beginFunction("worker");
    pad(b, data);
    b.store(AddrExpr::perThread(data + 1024, 64), "own cell");
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 2);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = txraceConfig();
    cfg.machine.retryAbortPerStep = 1.0;
    core::RunResult r = core::runProgram(p, cfg);

    uint64_t exhausted = r.stats.get("txrace.retry_exhausted");
    EXPECT_GE(exhausted, 1u);
    // Every retry abort the machine injected reached the handler.
    EXPECT_EQ(r.stats.get("tx.abort.retry"),
              r.stats.get("machine.retry_aborts"));
    // Each exhausted region made exactly maxRetries (4) in-place
    // retries and aborted maxRetries + 1 times in total.
    EXPECT_EQ(r.stats.get("txrace.retries"), 4 * exhausted);
    EXPECT_EQ(r.stats.get("tx.abort.retry"), 5 * exhausted);
    // RETRY-only aborts are not conflicts, capacity, or interrupts.
    EXPECT_EQ(r.stats.get("tx.abort.conflict"), 0u);
    EXPECT_EQ(r.stats.get("tx.abort.capacity"), 0u);
    EXPECT_EQ(r.stats.get("tx.abort.unknown"), 0u);
    // Disjoint per-thread data: the slow-path re-checks stay quiet.
    EXPECT_EQ(r.races.count(), 0u);
    EXPECT_TRUE(r.error.ok());
}
