/**
 * @file
 * Tests of the campaign aggregator: dedup semantics, first-seen
 * attribution, ground-truth scoring. All pure logic — outcomes are
 * hand-built, no Machine runs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "campaign/aggregate.hh"

using namespace txrace;
using namespace txrace::campaign;

namespace {

core::RaceSig
sig(const std::string &key, uint64_t hash,
    const std::string &label = "")
{
    core::RaceSig s;
    s.hash = hash;
    s.key = key;
    s.label = label.empty() ? key : label;
    s.a = "a:" + key;
    s.b = "b:" + key;
    return s;
}

JobOutcome
outcome(uint64_t jobId, const std::string &app, uint64_t seed,
        std::vector<FoundRace> races,
        const std::string &variant = "base")
{
    JobOutcome o;
    o.spec.id = jobId;
    o.spec.app = app;
    o.spec.seed = seed;
    o.spec.variant = variant;
    o.repro = "txrace_run --app " + app;
    o.configDigest = 0xd1600 + jobId;
    o.races = std::move(races);
    return o;
}

FoundRace
race(const core::RaceSig &s, uint64_t hits = 1)
{
    FoundRace f;
    f.sig = s;
    f.hits = hits;
    return f;
}

CampaignConfig
cfgFor(std::vector<std::string> apps)
{
    CampaignConfig cfg;
    cfg.apps = std::move(apps);
    return cfg;
}

} // namespace

TEST(Aggregator, DedupsByKeyAcrossRuns)
{
    Aggregator agg;
    core::RaceSig r = sig("app\x1dpair1", 111);
    agg.add(outcome(0, "app", 1, {race(r, 2)}));
    agg.add(outcome(1, "app", 2, {race(r, 3)}));

    CampaignResult result = agg.finalize(cfgFor({"app"}), {});
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].runsSeen, 2u);
    EXPECT_EQ(result.findings[0].totalHits, 5u);
    EXPECT_EQ(result.rawReports, 2u);
    EXPECT_DOUBLE_EQ(result.dedupRatio, 2.0);
}

TEST(Aggregator, HashCollisionStaysTwoFindings)
{
    // Same 64-bit hash, different keys: the aggregator must keep
    // them apart — dedup is by full key, the hash is cosmetic.
    Aggregator agg;
    agg.add(outcome(0, "app", 1,
                    {race(sig("app\x1dpairA", 42)),
                     race(sig("app\x1dpairB", 42))}));

    CampaignResult result = agg.finalize(cfgFor({"app"}), {});
    ASSERT_EQ(result.findings.size(), 2u);
    EXPECT_EQ(result.findings[0].sig.hash,
              result.findings[1].sig.hash);
    EXPECT_NE(result.findings[0].sig.key,
              result.findings[1].sig.key);
    // Equal hashes: the key must break the sort tie deterministically.
    EXPECT_LT(result.findings[0].sig.key, result.findings[1].sig.key);
}

TEST(Aggregator, FirstSeenIsLowestJobIdNotArrivalOrder)
{
    core::RaceSig r = sig("app\x1dpair1", 7);
    std::vector<JobOutcome> outcomes;
    for (uint64_t id : {5u, 2u, 9u, 0u, 3u})
        outcomes.push_back(
            outcome(id, "app", 100 + id, {race(r)}, "v" +
                    std::to_string(id)));

    // Every arrival order must agree on first-seen metadata.
    std::sort(outcomes.begin(), outcomes.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.spec.id < b.spec.id;
              });
    do {
        Aggregator agg;
        for (const JobOutcome &o : outcomes)
            agg.add(o);
        CampaignResult result = agg.finalize(cfgFor({"app"}), {});
        ASSERT_EQ(result.findings.size(), 1u);
        EXPECT_EQ(result.findings[0].firstJob, 0u);
        EXPECT_EQ(result.findings[0].firstSeed, 100u);
        EXPECT_EQ(result.findings[0].firstVariant, "v0");
        EXPECT_EQ(result.findings[0].firstConfigDigest,
                  uint64_t(0xd1600));
    } while (std::next_permutation(
        outcomes.begin(), outcomes.end(),
        [](const JobOutcome &a, const JobOutcome &b) {
            return a.spec.id < b.spec.id;
        }));
}

TEST(Aggregator, FindingsSortedByFingerprint)
{
    Aggregator agg;
    agg.add(outcome(0, "app", 1,
                    {race(sig("app\x1dz", 900)),
                     race(sig("app\x1da", 100)),
                     race(sig("app\x1dm", 500))}));
    CampaignResult result = agg.finalize(cfgFor({"app"}), {});
    ASSERT_EQ(result.findings.size(), 3u);
    EXPECT_LT(result.findings[0].sig.hash, result.findings[1].sig.hash);
    EXPECT_LT(result.findings[1].sig.hash, result.findings[2].sig.hash);
}

TEST(Aggregator, PrecisionRecallAgainstGroundTruth)
{
    Aggregator agg;
    // Two true races found, one false positive, one annotation missed.
    agg.add(outcome(0, "app", 1,
                    {race(sig("app\x1dtrue1", 1, "L1")),
                     race(sig("app\x1dtrue2", 2, "L2")),
                     race(sig("app\x1dbogus", 3, "LX"))}));
    std::map<std::string, std::set<std::string>> gt;
    gt["app"] = {"L1", "L2", "L3"};

    CampaignResult result = agg.finalize(cfgFor({"app"}), gt);
    ASSERT_EQ(result.scores.size(), 1u);
    const AppScore &s = result.scores[0];
    EXPECT_EQ(s.expected, 3u);
    EXPECT_EQ(s.found, 3u);
    EXPECT_EQ(s.matched, 2u);
    EXPECT_EQ(s.falsePositives, 1u);
    EXPECT_DOUBLE_EQ(s.precision, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.recall, 2.0 / 3.0);
    EXPECT_EQ(result.stats.get("campaign.gt_matched"), 2u);
    EXPECT_EQ(result.stats.get("campaign.false_positives"), 1u);
}

TEST(Aggregator, AppWithNoRunsScoresZeroRecall)
{
    Aggregator agg;
    std::map<std::string, std::set<std::string>> gt;
    gt["quiet"] = {"L1"};
    CampaignResult result = agg.finalize(cfgFor({"quiet"}), gt);
    ASSERT_EQ(result.scores.size(), 1u);
    EXPECT_EQ(result.scores[0].found, 0u);
    EXPECT_DOUBLE_EQ(result.scores[0].recall, 0.0);
    // Nothing reported, nothing wrong: precision stays 1.0.
    EXPECT_DOUBLE_EQ(result.scores[0].precision, 1.0);
}

TEST(Aggregator, VariantYieldAttributesFirstFinder)
{
    core::RaceSig r1 = sig("app\x1dpair1", 1);
    core::RaceSig r2 = sig("app\x1dpair2", 2);
    Aggregator agg;
    agg.add(outcome(0, "app", 1, {race(r1)}, "base"));
    agg.add(outcome(1, "app", 2, {race(r1), race(r2)}, "irq-x4"));
    CampaignResult result = agg.finalize(cfgFor({"app"}), {});

    ASSERT_EQ(result.variants.size(), 2u);
    uint64_t baseFirst = 0, irqFirst = 0;
    for (const VariantYield &vy : result.variants) {
        if (vy.variant == "base")
            baseFirst = vy.firstFound;
        else if (vy.variant == "irq-x4")
            irqFirst = vy.firstFound;
    }
    EXPECT_EQ(baseFirst, 1u);  // r1: first seen by job 0 (base)
    EXPECT_EQ(irqFirst, 1u);   // r2: only the perturbed run saw it
}

TEST(Aggregator, ErrorsAndAbortTotalsAccumulate)
{
    Aggregator agg;
    JobOutcome bad = outcome(0, "app", 1, {});
    bad.ok = false;
    bad.error = "deadlock";
    bad.abortConflict = 5;
    agg.add(bad);
    JobOutcome good = outcome(1, "app", 2, {});
    good.txCommitted = 10;
    good.abortConflict = 2;
    agg.add(good);

    CampaignResult result = agg.finalize(cfgFor({"app"}), {});
    EXPECT_EQ(result.runs, 2u);
    EXPECT_EQ(result.errors, 1u);
    EXPECT_EQ(result.txCommitted, 10u);
    EXPECT_EQ(result.abortConflict, 7u);
    EXPECT_EQ(result.stats.get("campaign.errors"), 1u);
}
