/**
 * @file
 * End-to-end campaign tests: the determinism contract (byte-identical
 * reports for any --jobs count), strategy behaviour, and scoring on
 * real workload runs. Small matrices keep it fast; the apps chosen
 * (raytrace, canneal, streamcluster) are the cheapest in the
 * registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/campaign.hh"
#include "campaign/strategy.hh"

using namespace txrace;
using namespace txrace::campaign;

namespace {

CampaignConfig
smallCampaign(const std::string &strategy)
{
    CampaignConfig cfg;
    cfg.apps = {"raytrace", "canneal"};
    cfg.seedsPerApp = 2;
    cfg.masterSeed = 7;
    cfg.strategy = strategy;
    cfg.queueCapacity = 4;  // exercise backpressure
    return cfg;
}

std::string
reportFor(CampaignConfig cfg, uint32_t jobs)
{
    cfg.jobs = jobs;
    CampaignResult result = runCampaign(cfg);
    std::ostringstream os;
    writeCampaignJson(os, cfg, result);
    return os.str();
}

} // namespace

TEST(Campaign, ReportByteIdenticalAcrossJobCounts)
{
    CampaignConfig cfg = smallCampaign("sweep");
    std::string one = reportFor(cfg, 1);
    EXPECT_EQ(one, reportFor(cfg, 4));
    EXPECT_EQ(one, reportFor(cfg, 8));
}

TEST(Campaign, AdaptiveStrategyStaysDeterministic)
{
    // abort-guided reseeds from round-0 results — the hard case for
    // worker-count independence.
    CampaignConfig cfg = smallCampaign("abort-guided");
    std::string one = reportFor(cfg, 1);
    EXPECT_EQ(one, reportFor(cfg, 4));
    EXPECT_EQ(one, reportFor(cfg, 8));
}

TEST(Campaign, RepeatedRunsAreIdentical)
{
    CampaignConfig cfg = smallCampaign("sweep");
    EXPECT_EQ(reportFor(cfg, 2), reportFor(cfg, 2));
}

TEST(Campaign, MasterSeedChangesTheSeedMatrix)
{
    CampaignConfig cfg = smallCampaign("sweep");
    CampaignResult a = runCampaign(cfg);
    cfg.masterSeed = 8;
    CampaignResult b = runCampaign(cfg);
    ASSERT_FALSE(a.findings.empty());
    ASSERT_FALSE(b.findings.empty());
    // Different job seeds, hence different repro lines.
    EXPECT_NE(a.findings[0].firstSeed, b.findings[0].firstSeed);
}

TEST(Campaign, ScoresPerfectOnEasyApps)
{
    // raytrace/canneal races reproduce on essentially every schedule,
    // and the models plant nothing that is not annotated: the union
    // over two seeds must score 1.0/1.0.
    CampaignConfig cfg = smallCampaign("sweep");
    CampaignResult result = runCampaign(cfg);
    ASSERT_EQ(result.scores.size(), 2u);
    for (const AppScore &s : result.scores) {
        EXPECT_DOUBLE_EQ(s.precision, 1.0) << s.app;
        EXPECT_DOUBLE_EQ(s.recall, 1.0) << s.app;
    }
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.runs, 4u);
}

TEST(Campaign, FindingsCarryReproMetadata)
{
    CampaignConfig cfg = smallCampaign("sweep");
    CampaignResult result = runCampaign(cfg);
    ASSERT_FALSE(result.findings.empty());
    for (const Finding &f : result.findings) {
        EXPECT_NE(f.repro.find("txrace_run --app " + f.app),
                  std::string::npos);
        EXPECT_NE(f.repro.find("--seed "), std::string::npos);
        EXPECT_NE(f.firstConfigDigest, 0u);
        EXPECT_GE(f.runsSeen, 1u);
    }
}

TEST(Campaign, PerturbVariantsAllRun)
{
    CampaignConfig cfg = smallCampaign("perturb");
    cfg.seedsPerApp = 1;
    CampaignResult result = runCampaign(cfg);
    EXPECT_EQ(result.runs, 2u * 1u * 5u);  // apps x seeds x variants
    EXPECT_EQ(result.variants.size(), 5u);
    for (const VariantYield &vy : result.variants)
        EXPECT_EQ(vy.runs, 2u);
}

TEST(Campaign, TimingIsOutsideTheReport)
{
    CampaignConfig cfg = smallCampaign("sweep");
    cfg.jobs = 2;
    CampaignResult result = runCampaign(cfg);
    std::ostringstream os;
    writeCampaignJson(os, cfg, result);
    EXPECT_EQ(os.str().find("wall"), std::string::npos);
    EXPECT_EQ(os.str().find("\"jobs\""), std::string::npos);
    EXPECT_GT(result.timing.wallSeconds, 0.0);
    EXPECT_EQ(result.timing.jobs, 2u);
}

TEST(Campaign, DeriveSeedIsStableAndSpreads)
{
    uint64_t s1 = deriveSeed(1, "vips", 0, 0);
    EXPECT_EQ(s1, deriveSeed(1, "vips", 0, 0));
    EXPECT_NE(s1, deriveSeed(1, "vips", 0, 1));
    EXPECT_NE(s1, deriveSeed(1, "vips", 1, 0));
    EXPECT_NE(s1, deriveSeed(1, "x264", 0, 0));
    EXPECT_NE(s1, deriveSeed(2, "vips", 0, 0));
}

TEST(CampaignDeathTest, UnknownStrategyIsFatal)
{
    CampaignConfig cfg = smallCampaign("simulated-annealing");
    EXPECT_EXIT(runCampaign(cfg), testing::ExitedWithCode(1),
                "unknown strategy");
}

TEST(CampaignDeathTest, EmptyAppListIsFatal)
{
    CampaignConfig cfg;
    EXPECT_EXIT(runCampaign(cfg), testing::ExitedWithCode(1),
                "no apps");
}
