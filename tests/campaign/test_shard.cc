/**
 * @file
 * Sharded aggregation tests: collapse() must be byte-identical to the
 * single aggregator for any shard count and any shard-merge order,
 * add() must be idempotent on job id, and the resumable pieces
 * (aggregator state round-trip, strategy save/restore, pool early
 * stop) must reproduce exactly the state they saved.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "campaign/aggregate.hh"
#include "campaign/campaign.hh"
#include "campaign/pool.hh"
#include "campaign/queue.hh"
#include "campaign/shard.hh"
#include "campaign/strategy.hh"
#include "core/fingerprint.hh"
#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"

using namespace txrace;
using namespace txrace::campaign;

namespace {

core::RaceSig
sig(const std::string &key)
{
    core::RaceSig s;
    s.hash = core::fnv1a64(key);
    s.key = key;
    s.label = key;
    s.a = "a:" + key;
    s.b = "b:" + key;
    return s;
}

FoundRace
race(const core::RaceSig &s, uint64_t hits = 1)
{
    FoundRace f;
    f.sig = s;
    f.hits = hits;
    return f;
}

JobOutcome
outcome(uint64_t jobId, const std::string &app, uint64_t seed,
        std::vector<FoundRace> races)
{
    JobOutcome o;
    o.spec.id = jobId;
    o.spec.app = app;
    o.spec.seed = seed;
    o.repro = "txrace_run --app " + app;
    o.configDigest = 0xd1600 + jobId;
    o.races = std::move(races);
    o.txCommitted = 10 + jobId;
    o.abortConflict = jobId % 3;
    return o;
}

/** A spread of outcomes whose races collide and interleave across
 *  shards: several keys per hash bucket, several jobs per key. */
std::vector<JobOutcome>
mixedOutcomes()
{
    std::vector<JobOutcome> out;
    for (uint64_t id = 0; id < 24; ++id) {
        std::vector<FoundRace> races;
        races.push_back(race(
            sig("app\x1dpair" + std::to_string(id % 5)), 1 + id % 3));
        if (id % 2 == 0)
            races.push_back(race(sig("app\x1dshared"), 2));
        out.push_back(outcome(id, "app", 1000 + id, races));
    }
    return out;
}

std::string
stateBytes(const Aggregator &agg)
{
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    agg.writeState(w);
    return os.str();
}

} // namespace

TEST(ShardedAggregator, CollapseMatchesSingleAggregatorForAnyN)
{
    Aggregator single;
    for (const JobOutcome &o : mixedOutcomes())
        single.add(o);
    const std::string want = stateBytes(single);

    for (uint32_t n : {1u, 2u, 4u, 16u, 64u}) {
        ShardedAggregator sharded(n);
        for (const JobOutcome &o : mixedOutcomes())
            EXPECT_TRUE(sharded.add(o));
        EXPECT_EQ(stateBytes(sharded.collapse()), want)
            << n << " shards";
    }
}

TEST(ShardedAggregator, AnyShardMergeOrderYieldsIdenticalBytes)
{
    ShardedAggregator sharded(4);
    for (const JobOutcome &o : mixedOutcomes())
        sharded.add(o);

    std::vector<uint32_t> order(sharded.shardCount());
    std::iota(order.begin(), order.end(), 0);
    std::string want;
    do {
        Aggregator total;
        for (uint32_t i : order)
            total.merge(sharded.shard(i));
        std::string got = stateBytes(total);
        if (want.empty())
            want = got;
        EXPECT_EQ(got, want);
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(ShardedAggregator, DuplicateAddChangesNothing)
{
    ShardedAggregator sharded(4);
    std::vector<JobOutcome> outcomes = mixedOutcomes();
    for (const JobOutcome &o : outcomes)
        ASSERT_TRUE(sharded.add(o));
    const std::string before = stateBytes(sharded.collapse());
    const uint64_t runs = sharded.runs();

    // At-least-once delivery: every outcome redelivered, same bytes.
    for (const JobOutcome &o : outcomes)
        EXPECT_FALSE(sharded.add(o));
    EXPECT_EQ(stateBytes(sharded.collapse()), before);
    EXPECT_EQ(sharded.runs(), runs);
}

TEST(ShardedAggregator, SeenTracksFoldedJobIds)
{
    ShardedAggregator sharded(3);
    EXPECT_FALSE(sharded.seen(5));
    sharded.add(outcome(5, "app", 1, {}));
    EXPECT_TRUE(sharded.seen(5));
    EXPECT_FALSE(sharded.seen(6));
}

TEST(ShardedAggregator, NewFindingsReportedExactlyOnce)
{
    ShardedAggregator sharded(4);
    std::vector<const FoundRace *> fresh;
    JobOutcome first = outcome(
        0, "app", 1, {race(sig("app\x1dx")), race(sig("app\x1dy"))});
    sharded.add(first, &fresh);
    EXPECT_EQ(fresh.size(), 2u);

    fresh.clear();
    // Same races from another job: already-known, no deltas.
    sharded.add(outcome(1, "app", 2,
                        {race(sig("app\x1dx")), race(sig("app\x1dy"))}),
                &fresh);
    EXPECT_TRUE(fresh.empty());
}

TEST(ShardedAggregator, SeedRestoresDuplicateDetectionAndBytes)
{
    Aggregator base;
    std::vector<JobOutcome> outcomes = mixedOutcomes();
    for (size_t i = 0; i < outcomes.size() / 2; ++i)
        base.add(outcomes[i]);

    for (uint32_t n : {1u, 4u, 16u}) {
        ShardedAggregator sharded(n);
        sharded.seed(base);
        // The first half was already folded before the checkpoint.
        for (size_t i = 0; i < outcomes.size() / 2; ++i)
            EXPECT_FALSE(sharded.add(outcomes[i]));
        for (size_t i = outcomes.size() / 2; i < outcomes.size(); ++i)
            EXPECT_TRUE(sharded.add(outcomes[i]));

        Aggregator full;
        for (const JobOutcome &o : outcomes)
            full.add(o);
        EXPECT_EQ(stateBytes(sharded.collapse()), stateBytes(full))
            << n << " shards";
    }
}

TEST(Aggregator, StateRoundTripsByteExactly)
{
    Aggregator agg;
    for (const JobOutcome &o : mixedOutcomes())
        agg.add(o);
    const std::string bytes = stateBytes(agg);

    telemetry::JsonValue doc;
    std::string error;
    ASSERT_TRUE(telemetry::parseJson(bytes, doc, error)) << error;
    Aggregator restored;
    ASSERT_TRUE(restored.loadState(doc, error)) << error;
    EXPECT_EQ(stateBytes(restored), bytes);
}

TEST(Aggregator, MergeIsCommutativeOnFirstSightingTies)
{
    // Two halves that both saw the same race; the merged first-seen
    // metadata must not depend on merge direction.
    JobOutcome lo = outcome(3, "app", 30, {race(sig("app\x1dr"))});
    JobOutcome hi = outcome(8, "app", 80, {race(sig("app\x1dr"))});

    Aggregator a, b;
    a.add(lo);
    b.add(hi);
    Aggregator ab = a;
    ab.merge(b);
    Aggregator ba = b;
    ba.merge(a);
    EXPECT_EQ(stateBytes(ab), stateBytes(ba));
    CampaignConfig cfg;
    cfg.apps = {"app"};
    EXPECT_EQ(ab.finalize(cfg, {}).findings[0].firstJob, 3u);
}

TEST(Strategy, SaveRestoreContinuesWhereTheOriginalStopped)
{
    CampaignConfig cfg;
    cfg.apps = {"raytrace", "canneal"};
    cfg.seedsPerApp = 4;
    for (const std::string &name : strategyNames()) {
        cfg.strategy = name;
        std::unique_ptr<Strategy> original = makeStrategy(name);
        uint64_t nextId = 0;
        std::vector<JobOutcome> history;
        std::vector<JobSpec> round0 =
            original->nextRound(cfg, history, nextId);
        ASSERT_FALSE(round0.empty()) << name;
        for (const JobSpec &spec : round0) {
            JobOutcome o = outcome(spec.id, spec.app, spec.seed, {});
            o.spec = spec;
            o.abortConflict = spec.id % 4;
            history.push_back(o);
        }

        // Kill here: a resumed strategy must emit the same round 1.
        std::map<std::string, uint64_t> state;
        original->saveState(state);
        std::unique_ptr<Strategy> resumed = makeStrategy(name);
        resumed->restoreState(state);

        uint64_t idA = nextId, idB = nextId;
        std::vector<JobSpec> wantRound =
            original->nextRound(cfg, history, idA);
        std::vector<JobSpec> gotRound =
            resumed->nextRound(cfg, history, idB);
        EXPECT_EQ(idA, idB) << name;
        ASSERT_EQ(wantRound.size(), gotRound.size()) << name;
        for (size_t i = 0; i < wantRound.size(); ++i) {
            EXPECT_EQ(wantRound[i].id, gotRound[i].id) << name;
            EXPECT_EQ(wantRound[i].app, gotRound[i].app) << name;
            EXPECT_EQ(wantRound[i].seed, gotRound[i].seed) << name;
            EXPECT_EQ(wantRound[i].variant, gotRound[i].variant)
                << name;
        }
    }
}

TEST(Pool, StopAndJoinAbandonsQueuedJobsButFinishesRunning)
{
    ResultQueue queue(64);
    WorkStealingPool pool(
        2,
        [](const JobSpec &spec, uint32_t) {
            JobOutcome o;
            o.spec = spec;
            return o;
        },
        queue);
    std::vector<JobSpec> jobs(100);
    for (size_t i = 0; i < jobs.size(); ++i)
        jobs[i].id = i;
    pool.submit(jobs);
    pool.stopAndJoin();
    pool.stopAndJoin();  // idempotent

    // Whatever was produced is a prefix-free subset of the 100 jobs;
    // each appears at most once and the queue is drainable.
    queue.close();
    JobOutcome o;
    std::set<uint64_t> seen;
    size_t produced = 0;
    while (queue.pop(o)) {
        EXPECT_TRUE(seen.insert(o.spec.id).second);
        ++produced;
    }
    EXPECT_LE(produced, jobs.size());
}

TEST(CampaignE2E, ReportByteIdenticalAcrossShardCounts)
{
    CampaignConfig cfg;
    cfg.apps = {"raytrace", "canneal"};
    cfg.seedsPerApp = 2;
    cfg.masterSeed = 7;
    cfg.jobs = 4;
    std::string want;
    for (uint32_t shards : {1u, 4u, 16u}) {
        cfg.shards = shards;
        CampaignResult result = runCampaign(cfg);
        std::ostringstream os;
        writeCampaignJson(os, cfg, result);
        if (want.empty())
            want = os.str();
        EXPECT_EQ(os.str(), want) << shards << " shards";
    }
}
