/**
 * @file
 * Tests of the campaign plumbing: the bounded result queue and the
 * work-stealing pool. These are the only concurrent components in
 * the engine, so they also run under the CI ThreadSanitizer build.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "campaign/pool.hh"
#include "campaign/queue.hh"

using namespace txrace;
using namespace txrace::campaign;

namespace {

JobSpec
job(uint64_t id)
{
    JobSpec spec;
    spec.id = id;
    spec.app = "test";
    return spec;
}

} // namespace

TEST(ResultQueue, FifoWithinOneProducer)
{
    ResultQueue q(4);
    for (uint64_t i = 0; i < 3; ++i) {
        JobOutcome o;
        o.spec = job(i);
        q.push(std::move(o));
    }
    JobOutcome out;
    for (uint64_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out.spec.id, i);
    }
}

TEST(ResultQueue, PopReturnsFalseAfterCloseAndDrain)
{
    ResultQueue q(2);
    JobOutcome o;
    o.spec = job(9);
    q.push(std::move(o));
    q.close();
    JobOutcome out;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out.spec.id, 9u);
    EXPECT_FALSE(q.pop(out));
}

TEST(ResultQueue, BoundedPushBlocksUntilPop)
{
    ResultQueue q(1);
    JobOutcome first;
    first.spec = job(0);
    q.push(std::move(first));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        JobOutcome second;
        second.spec = job(1);
        q.push(std::move(second));  // must block: queue is full
        pushed.store(true);
    });
    // Give the producer a chance to (wrongly) complete.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());

    JobOutcome out;
    ASSERT_TRUE(q.pop(out));
    producer.join();
    EXPECT_TRUE(pushed.load());
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.spec.id, 1u);
}

TEST(WorkStealingPool, EveryJobRunsExactlyOnce)
{
    ResultQueue q(8);
    WorkStealingPool pool(
        4,
        [](const JobSpec &spec, uint32_t) {
            JobOutcome o;
            o.spec = spec;
            return o;
        },
        q);

    std::vector<JobSpec> jobs;
    for (uint64_t i = 0; i < 100; ++i)
        jobs.push_back(job(i));
    pool.submit(jobs);

    std::set<uint64_t> seen;
    JobOutcome out;
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_TRUE(seen.insert(out.spec.id).second)
            << "job " << out.spec.id << " ran twice";
    }
    EXPECT_EQ(seen.size(), 100u);
}

TEST(WorkStealingPool, UnevenLoadIsStolen)
{
    // One worker's jobs are slow; with stealing the fast workers
    // should take over some of the backlog. Runner sleeps so the
    // imbalance is visible even on a single-core host.
    ResultQueue q(64);
    std::atomic<uint32_t> ranOn[4] = {};
    WorkStealingPool pool(
        4,
        [&](const JobSpec &spec, uint32_t worker) {
            ranOn[worker].fetch_add(1);
            if (spec.id % 4 == 0)  // worker 0's home jobs
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            JobOutcome o;
            o.spec = spec;
            return o;
        },
        q);

    std::vector<JobSpec> jobs;
    for (uint64_t i = 0; i < 40; ++i)
        jobs.push_back(job(i));
    pool.submit(jobs);
    JobOutcome out;
    for (size_t i = 0; i < jobs.size(); ++i)
        ASSERT_TRUE(q.pop(out));

    uint32_t total = 0;
    for (const auto &c : ranOn)
        total += c.load();
    EXPECT_EQ(total, 40u);
    // Stealing is opportunistic: we can only assert it is *possible*,
    // not that it happened on this machine — but the counter must be
    // consistent with the outcomes.
    EXPECT_EQ(pool.steals(), pool.steals());
}

TEST(WorkStealingPool, MultipleBatchesReuseWorkers)
{
    ResultQueue q(8);
    WorkStealingPool pool(
        2,
        [](const JobSpec &spec, uint32_t) {
            JobOutcome o;
            o.spec = spec;
            return o;
        },
        q);
    JobOutcome out;
    for (int round = 0; round < 3; ++round) {
        std::vector<JobSpec> jobs;
        for (uint64_t i = 0; i < 10; ++i)
            jobs.push_back(job(uint64_t(round) * 10 + i));
        pool.submit(jobs);
        for (size_t i = 0; i < jobs.size(); ++i)
            ASSERT_TRUE(q.pop(out));
    }
}
