/**
 * @file
 * Unit tests for the fault-injection library: plans, named scenarios,
 * and the incremental injector (transitions + modifier stacking).
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "fault/injector.hh"

using namespace txrace::fault;

TEST(FaultPlan, EmptyByDefault)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.name, "none");
    FaultInjector inj(plan);
    EXPECT_TRUE(inj.empty());
    EXPECT_FALSE(inj.anyActive());
}

TEST(FaultPlan, EpisodeWindowIsHalfOpen)
{
    FaultEpisode ep;
    ep.start = 10;
    ep.duration = 5;
    EXPECT_EQ(ep.end(), 15u);
    EXPECT_FALSE(ep.activeAt(9));
    EXPECT_TRUE(ep.activeAt(10));
    EXPECT_TRUE(ep.activeAt(14));
    EXPECT_FALSE(ep.activeAt(15));
}

TEST(FaultScenario, AllNamedScenariosBuild)
{
    for (const std::string &name : scenarioNames()) {
        FaultPlan plan = makeScenario(name, 50'000);
        EXPECT_EQ(plan.name, name);
        if (name == "none") {
            EXPECT_TRUE(plan.empty());
            continue;
        }
        EXPECT_FALSE(plan.empty()) << name;
        for (const FaultEpisode &ep : plan.episodes) {
            EXPECT_GT(ep.duration, 0u) << name;
            EXPECT_LE(ep.end(), 2 * 50'000u) << name;
        }
    }
}

TEST(FaultScenario, WindowsScaleWithHorizon)
{
    FaultPlan small = makeScenario("interrupt-storm", 10'000);
    FaultPlan large = makeScenario("interrupt-storm", 100'000);
    ASSERT_EQ(small.episodes.size(), large.episodes.size());
    EXPECT_EQ(small.episodes[0].start * 10, large.episodes[0].start);
    EXPECT_EQ(small.episodes[0].duration * 10,
              large.episodes[0].duration);
    // Severity does not scale with horizon.
    EXPECT_EQ(small.episodes[0].magnitude, large.episodes[0].magnitude);
}

TEST(FaultScenario, ChaosCoversEveryKind)
{
    FaultPlan plan = makeScenario("chaos", 100'000);
    bool seen[5] = {};
    for (const FaultEpisode &ep : plan.episodes)
        seen[static_cast<size_t>(ep.kind)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(FaultScenario, UnknownNameDies)
{
    EXPECT_EXIT(makeScenario("no-such-scenario"),
                testing::ExitedWithCode(1), "scenario");
}

TEST(FaultInjector, ReportsBeginAndEndTransitions)
{
    FaultPlan plan;
    FaultEpisode ep;
    ep.kind = FaultKind::InterruptStorm;
    ep.start = 100;
    ep.duration = 50;
    ep.magnitude = 10.0;
    ep.addProb = 0.01;
    plan.add(ep);

    FaultInjector inj(plan);
    EXPECT_TRUE(inj.advance(0).empty());
    EXPECT_TRUE(inj.advance(99).empty());
    EXPECT_DOUBLE_EQ(inj.interruptMult(), 1.0);

    const auto &begun = inj.advance(100);
    ASSERT_EQ(begun.size(), 1u);
    EXPECT_TRUE(begun[0].begin);
    EXPECT_EQ(begun[0].episode->kind, FaultKind::InterruptStorm);
    EXPECT_TRUE(inj.anyActive());
    EXPECT_DOUBLE_EQ(inj.interruptMult(), 10.0);
    EXPECT_DOUBLE_EQ(inj.interruptAdd(), 0.01);

    EXPECT_TRUE(inj.advance(149).empty());
    const auto &ended = inj.advance(150);
    ASSERT_EQ(ended.size(), 1u);
    EXPECT_FALSE(ended[0].begin);
    EXPECT_FALSE(inj.anyActive());
    EXPECT_DOUBLE_EQ(inj.interruptMult(), 1.0);
    EXPECT_DOUBLE_EQ(inj.interruptAdd(), 0.0);
}

TEST(FaultInjector, SkippingOverAWholeEpisodeStillNeutralizes)
{
    // The machine advances once per step, but a sparse caller that
    // jumps past an entire window must still land on neutral state.
    FaultPlan plan;
    FaultEpisode ep;
    ep.kind = FaultKind::SlowPathStall;
    ep.start = 10;
    ep.duration = 5;
    ep.magnitude = 8.0;
    plan.add(ep);

    FaultInjector inj(plan);
    inj.advance(12);
    EXPECT_DOUBLE_EQ(inj.slowPathCostMult(), 8.0);
    inj.advance(1000);
    EXPECT_FALSE(inj.anyActive());
    EXPECT_DOUBLE_EQ(inj.slowPathCostMult(), 1.0);
}

TEST(FaultInjector, OverlappingModifiersStack)
{
    FaultPlan plan;
    FaultEpisode storm1;
    storm1.kind = FaultKind::InterruptStorm;
    storm1.start = 0;
    storm1.duration = 100;
    storm1.magnitude = 4.0;
    storm1.addProb = 0.01;
    FaultEpisode storm2 = storm1;
    storm2.magnitude = 3.0;
    storm2.addProb = 0.02;
    FaultEpisode cliff1;
    cliff1.kind = FaultKind::CapacityCliff;
    cliff1.start = 0;
    cliff1.duration = 100;
    cliff1.param = 2;
    FaultEpisode cliff2 = cliff1;
    cliff2.param = 3;
    FaultEpisode delay1;
    delay1.kind = FaultKind::TxFailDelay;
    delay1.start = 0;
    delay1.duration = 100;
    delay1.param = 7;
    FaultEpisode delay2 = delay1;
    delay2.param = 21;
    plan.add(storm1).add(storm2).add(cliff1).add(cliff2)
        .add(delay1).add(delay2);

    FaultInjector inj(plan);
    inj.advance(0);
    // Storms multiply; cliffs add ways; delays take the max.
    EXPECT_DOUBLE_EQ(inj.interruptMult(), 12.0);
    EXPECT_DOUBLE_EQ(inj.interruptAdd(), 0.03);
    EXPECT_EQ(inj.capacityWaysPenalty(), 5u);
    EXPECT_EQ(inj.txFailDelaySteps(), 21u);
}

TEST(FaultInjector, ZeroDurationEpisodesAreIgnored)
{
    FaultPlan plan;
    FaultEpisode ep;
    ep.kind = FaultKind::RetryGlitch;
    ep.start = 0;
    ep.duration = 0;
    ep.addProb = 0.5;
    plan.add(ep);
    FaultInjector inj(plan);
    inj.advance(0);
    EXPECT_FALSE(inj.anyActive());
    EXPECT_DOUBLE_EQ(inj.retryAdd(), 0.0);
}

TEST(FaultKindNames, AreStableStrings)
{
    EXPECT_STREQ(faultKindName(FaultKind::InterruptStorm),
                 "interrupt-storm");
    EXPECT_STREQ(faultKindName(FaultKind::CapacityCliff),
                 "capacity-cliff");
    EXPECT_STREQ(faultKindName(FaultKind::RetryGlitch),
                 "retry-glitch");
    EXPECT_STREQ(faultKindName(FaultKind::TxFailDelay),
                 "txfail-delay");
    EXPECT_STREQ(faultKindName(FaultKind::SlowPathStall),
                 "slowpath-stall");
}
