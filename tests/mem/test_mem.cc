/**
 * @file
 * Unit tests for address geometry and VirtualMemory.
 */

#include <gtest/gtest.h>

#include "mem/layout.hh"
#include "mem/memory.hh"

using namespace txrace;
using namespace txrace::mem;

TEST(Layout, LineMath)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineOf(128), 2u);
    EXPECT_EQ(lineBase(2), 128u);
    EXPECT_EQ(kLineSize, 64u);
}

TEST(Layout, GranuleMath)
{
    EXPECT_EQ(granuleOf(0), 0u);
    EXPECT_EQ(granuleOf(7), 0u);
    EXPECT_EQ(granuleOf(8), 1u);
    EXPECT_EQ(kGranuleSize, 8u);
}

TEST(Layout, GranulesPerLine)
{
    EXPECT_EQ(kLineSize / kGranuleSize, 8u);
    // All eight granules of line 1 map back to line 1.
    for (Addr a = 64; a < 128; a += 8)
        EXPECT_EQ(lineOf(a), 1u);
}

TEST(Layout, FalseSharingPredicate)
{
    // Same line, different granules: false sharing.
    EXPECT_TRUE(falseSharing(64, 72));
    // Same granule: true sharing.
    EXPECT_FALSE(falseSharing(64, 67));
    // Different lines: no sharing at all.
    EXPECT_FALSE(falseSharing(64, 128));
}

TEST(VirtualMemory, UntouchedReadsZero)
{
    VirtualMemory m;
    EXPECT_EQ(m.load(0x1234), 0u);
    EXPECT_EQ(m.footprint(), 0u);
}

TEST(VirtualMemory, StoreLoadRoundTrip)
{
    VirtualMemory m;
    m.store(0x100, 42);
    EXPECT_EQ(m.load(0x100), 42u);
    EXPECT_EQ(m.footprint(), 1u);
}

TEST(VirtualMemory, GranuleAliasing)
{
    VirtualMemory m;
    m.store(0x100, 1);
    // Same 8-byte granule: overwrites.
    m.store(0x104, 2);
    EXPECT_EQ(m.load(0x100), 2u);
    // Different granule: independent.
    m.store(0x108, 3);
    EXPECT_EQ(m.load(0x100), 2u);
    EXPECT_EQ(m.load(0x108), 3u);
    EXPECT_EQ(m.footprint(), 2u);
}

TEST(VirtualMemory, ClearEmpties)
{
    VirtualMemory m;
    m.store(8, 9);
    m.clear();
    EXPECT_EQ(m.load(8), 0u);
    EXPECT_EQ(m.footprint(), 0u);
}
