/**
 * @file
 * Address-space geometry shared by the HTM model, the detector's
 * shadow memory, and the simulator.
 *
 * Two granularities matter in this system, exactly as in the paper:
 *  - the HTM detects conflicts at cache-line granularity (64 bytes on
 *    Haswell), which is the source of false-sharing false positives;
 *  - the software detector tracks happens-before state per 8-byte
 *    granule (TSan's shadow granularity), which is what makes the
 *    slow path complete (no false positives).
 */

#ifndef TXRACE_MEM_LAYOUT_HH
#define TXRACE_MEM_LAYOUT_HH

#include <cstdint>

#include "ir/addr.hh"

namespace txrace::mem {

using ir::Addr;

/** log2 of the cache-line size (64 B, Intel Haswell L1d). */
constexpr unsigned kLineBits = 6;
/** Cache-line size in bytes. */
constexpr uint64_t kLineSize = 1ull << kLineBits;

/** log2 of the shadow granule size (8 B, as in TSan). */
constexpr unsigned kGranuleBits = 3;
/** Shadow granule size in bytes. */
constexpr uint64_t kGranuleSize = 1ull << kGranuleBits;

/** Cache-line index of a byte address. */
constexpr uint64_t
lineOf(Addr a)
{
    return a >> kLineBits;
}

/** Shadow-granule index of a byte address. */
constexpr uint64_t
granuleOf(Addr a)
{
    return a >> kGranuleBits;
}

/** First byte address of cache line @p line. */
constexpr Addr
lineBase(uint64_t line)
{
    return line << kLineBits;
}

/** True if two byte addresses share a cache line but not a granule —
 *  the false-sharing situation the fast path cannot distinguish from
 *  a real conflict. */
constexpr bool
falseSharing(Addr a, Addr b)
{
    return lineOf(a) == lineOf(b) && granuleOf(a) != granuleOf(b);
}

} // namespace txrace::mem

#endif // TXRACE_MEM_LAYOUT_HH
