/**
 * @file
 * Flat simulated data memory.
 *
 * Race detection itself is value-agnostic, so the simulator only
 * materializes values when a program opts in; examples and tests use
 * VirtualMemory directly to give workloads observable state.
 *
 * Storage is paged: granules live in flat 4 KiB pages found through a
 * page map, with a one-entry cache in front of it. Workload address
 * streams are strongly page-local, so the common load/store is an
 * array index instead of the per-granule hash-map probe the old
 * unordered_map<granule, value> store paid.
 */

#ifndef TXRACE_MEM_MEMORY_HH
#define TXRACE_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mem/layout.hh"

namespace txrace::mem {

/**
 * Sparse 64-bit-granule memory. Reads of untouched granules return 0.
 */
class VirtualMemory
{
  public:
    /** Read the 8-byte granule containing @p addr. */
    uint64_t
    load(Addr addr) const
    {
        uint64_t granule = granuleOf(addr);
        const Page *page = findPage(granule >> kPageGranuleBits);
        return page ? page->cells[granule & kPageGranuleMask] : 0;
    }

    /** Overwrite the 8-byte granule containing @p addr. */
    void
    store(Addr addr, uint64_t value)
    {
        uint64_t granule = granuleOf(addr);
        Page &page = getPage(granule >> kPageGranuleBits);
        size_t idx = granule & kPageGranuleMask;
        page.cells[idx] = value;
        uint64_t bit = uint64_t{1} << (idx & 63);
        uint64_t &word = page.written[idx >> 6];
        if (!(word & bit)) {
            word |= bit;
            ++footprint_;
        }
    }

    /** Number of granules ever written. */
    size_t footprint() const { return footprint_; }

    /** Drop all contents. */
    void
    clear()
    {
        pages_.clear();
        cachedNo_ = kNoPage;
        cachedPage_ = nullptr;
        footprint_ = 0;
    }

  private:
    /** 512 granules = 4 KiB of data per page. */
    static constexpr unsigned kPageGranuleBits = 9;
    static constexpr uint64_t kPageGranules = 1ull << kPageGranuleBits;
    static constexpr uint64_t kPageGranuleMask = kPageGranules - 1;
    static constexpr uint64_t kNoPage = ~0ull;

    struct Page
    {
        std::array<uint64_t, kPageGranules> cells{};
        /** Written-granule bitmap: zero-valued stores still count
         *  toward the footprint, exactly as map insertion did. */
        std::array<uint64_t, kPageGranules / 64> written{};
    };

    const Page *
    findPage(uint64_t pageNo) const
    {
        if (pageNo == cachedNo_)
            return cachedPage_;
        auto it = pages_.find(pageNo);
        if (it == pages_.end())
            return nullptr;
        cachedNo_ = pageNo;
        cachedPage_ = it->second.get();
        return cachedPage_;
    }

    Page &
    getPage(uint64_t pageNo)
    {
        if (pageNo == cachedNo_)
            return *cachedPage_;
        auto &slot = pages_[pageNo];
        if (!slot)
            slot = std::make_unique<Page>();
        cachedNo_ = pageNo;
        cachedPage_ = slot.get();
        return *cachedPage_;
    }

    /** unique_ptr pages: stable addresses across page-map growth,
     *  which the one-entry cache relies on. */
    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    mutable uint64_t cachedNo_ = kNoPage;
    mutable Page *cachedPage_ = nullptr;
    size_t footprint_ = 0;
};

} // namespace txrace::mem

#endif // TXRACE_MEM_MEMORY_HH
