/**
 * @file
 * Flat simulated data memory.
 *
 * Race detection itself is value-agnostic, so the simulator only
 * materializes values when a program opts in; examples and tests use
 * VirtualMemory directly to give workloads observable state.
 */

#ifndef TXRACE_MEM_MEMORY_HH
#define TXRACE_MEM_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "mem/layout.hh"

namespace txrace::mem {

/**
 * Sparse 64-bit-granule memory. Reads of untouched granules return 0.
 */
class VirtualMemory
{
  public:
    /** Read the 8-byte granule containing @p addr. */
    uint64_t
    load(Addr addr) const
    {
        auto it = cells_.find(granuleOf(addr));
        return it == cells_.end() ? 0 : it->second;
    }

    /** Overwrite the 8-byte granule containing @p addr. */
    void
    store(Addr addr, uint64_t value)
    {
        cells_[granuleOf(addr)] = value;
    }

    /** Number of granules ever written. */
    size_t footprint() const { return cells_.size(); }

    /** Drop all contents. */
    void clear() { cells_.clear(); }

  private:
    std::unordered_map<uint64_t, uint64_t> cells_;
};

} // namespace txrace::mem

#endif // TXRACE_MEM_MEMORY_HH
