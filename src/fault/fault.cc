#include "fault/fault.hh"

#include "support/log.hh"

namespace txrace::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::InterruptStorm:
        return "interrupt-storm";
      case FaultKind::CapacityCliff:
        return "capacity-cliff";
      case FaultKind::RetryGlitch:
        return "retry-glitch";
      case FaultKind::TxFailDelay:
        return "txfail-delay";
      case FaultKind::SlowPathStall:
        return "slowpath-stall";
    }
    return "?";
}

namespace {

FaultEpisode
episode(FaultKind kind, uint64_t start, uint64_t duration,
        double magnitude, double add_prob, uint64_t param)
{
    FaultEpisode ep;
    ep.kind = kind;
    ep.start = start;
    ep.duration = duration;
    ep.magnitude = magnitude;
    ep.addProb = add_prob;
    ep.param = param;
    return ep;
}

} // namespace

FaultPlan
makeScenario(const std::string &name, uint64_t horizon)
{
    if (horizon == 0)
        fatal("makeScenario: horizon must be nonzero");
    FaultPlan plan;
    plan.name = name;
    // Window helpers, proportional to the expected run length.
    auto at = [&](double f) {
        return static_cast<uint64_t>(f * static_cast<double>(horizon));
    };

    if (name == "none")
        return plan;

    if (name == "interrupt-storm") {
        // One sustained storm covering the middle half of the run:
        // severe enough that a fast-path-only runtime degenerates
        // into an abort-rollback-slow-path treadmill.
        plan.add(episode(FaultKind::InterruptStorm, at(0.2), at(0.5),
                         50.0, 0.08, 0));
        return plan;
    }
    if (name == "capacity-cliff") {
        // Most of the write-set associativity disappears mid-run.
        plan.add(episode(FaultKind::CapacityCliff, at(0.25), at(0.4),
                         1.0, 0.0, 6));
        return plan;
    }
    if (name == "retry-glitch") {
        plan.add(episode(FaultKind::RetryGlitch, at(0.3), at(0.3),
                         1.0, 0.05, 0));
        return plan;
    }
    if (name == "txfail-delay") {
        // Active for the whole run: every conflict victim publishes
        // TxFail late, widening the escape window for winners.
        plan.add(episode(FaultKind::TxFailDelay, 0, horizon * 2,
                         1.0, 0.0, 24));
        return plan;
    }
    if (name == "slowpath-stall") {
        plan.add(episode(FaultKind::SlowPathStall, at(0.2), at(0.5),
                         8.0, 0.0, 0));
        return plan;
    }
    if (name == "chaos") {
        // Everything, staggered with overlaps: the soak-test diet.
        plan.add(episode(FaultKind::InterruptStorm, at(0.05), at(0.3),
                         30.0, 0.05, 0));
        plan.add(episode(FaultKind::CapacityCliff, at(0.2), at(0.35),
                         1.0, 0.0, 5));
        plan.add(episode(FaultKind::RetryGlitch, at(0.4), at(0.25),
                         1.0, 0.03, 0));
        plan.add(episode(FaultKind::TxFailDelay, at(0.1), at(0.6),
                         1.0, 0.0, 16));
        plan.add(episode(FaultKind::SlowPathStall, at(0.5), at(0.35),
                         6.0, 0.0, 0));
        return plan;
    }
    fatal("makeScenario: unknown scenario '%s' (none, interrupt-storm, "
          "capacity-cliff, retry-glitch, txfail-delay, slowpath-stall, "
          "chaos)", name.c_str());
}

const std::vector<std::string> &
scenarioNames()
{
    static const std::vector<std::string> names = {
        "none",          "interrupt-storm", "capacity-cliff",
        "retry-glitch",  "txfail-delay",    "slowpath-stall",
        "chaos",
    };
    return names;
}

} // namespace txrace::fault
