#include "fault/injector.hh"

#include <algorithm>
#include <limits>

namespace txrace::fault {

namespace {

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan) : plan_(plan)
{
    active_.assign(plan_.episodes.size(), false);
    // First boundary of interest: the earliest episode start.
    nextBoundary_ = kNever;
    for (const FaultEpisode &ep : plan_.episodes)
        if (ep.duration > 0)
            nextBoundary_ = std::min(nextBoundary_, ep.start);
}

const std::vector<FaultTransition> &
FaultInjector::advance(uint64_t step)
{
    transitions_.clear();
    if (step < nextBoundary_)
        return transitions_;

    // Rescan: flip episodes whose boundary we crossed and find the
    // next step at which anything changes again.
    nextBoundary_ = kNever;
    for (size_t i = 0; i < plan_.episodes.size(); ++i) {
        const FaultEpisode &ep = plan_.episodes[i];
        if (ep.duration == 0)
            continue;
        bool now = ep.activeAt(step);
        if (now != static_cast<bool>(active_[i])) {
            active_[i] = now;
            activeCount_ += now ? 1 : -1;
            transitions_.push_back({&plan_.episodes[i], now});
        }
        if (!now && step < ep.start)
            nextBoundary_ = std::min(nextBoundary_, ep.start);
        else if (now)
            nextBoundary_ = std::min(nextBoundary_, ep.end());
    }
    if (!transitions_.empty())
        recomputeModifiers();
    return transitions_;
}

void
FaultInjector::recomputeModifiers()
{
    interruptMult_ = 1.0;
    interruptAdd_ = 0.0;
    retryAdd_ = 0.0;
    waysPenalty_ = 0;
    txFailDelay_ = 0;
    slowPathMult_ = 1.0;
    for (size_t i = 0; i < plan_.episodes.size(); ++i) {
        if (!active_[i])
            continue;
        const FaultEpisode &ep = plan_.episodes[i];
        switch (ep.kind) {
          case FaultKind::InterruptStorm:
            interruptMult_ *= ep.magnitude;
            interruptAdd_ += ep.addProb;
            break;
          case FaultKind::CapacityCliff:
            waysPenalty_ += static_cast<uint32_t>(ep.param);
            break;
          case FaultKind::RetryGlitch:
            retryAdd_ += ep.addProb;
            break;
          case FaultKind::TxFailDelay:
            txFailDelay_ = std::max(txFailDelay_, ep.param);
            break;
          case FaultKind::SlowPathStall:
            slowPathMult_ *= ep.magnitude;
            break;
        }
    }
}

} // namespace txrace::fault
