/**
 * @file
 * The FaultInjector: turns a FaultPlan into per-step modifier state
 * the simulator consults from its scheduler loop.
 *
 * The injector is advanced once per scheduler step. It maintains the
 * set of currently active episodes incrementally (O(1) per step away
 * from episode boundaries) and reports every begin/end transition so
 * the machine can record it in the EventLog and count it in StatSet —
 * injected events are first-class observable facts of a run.
 */

#ifndef TXRACE_FAULT_INJECTOR_HH
#define TXRACE_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/fault.hh"

namespace txrace::fault {

/** One episode boundary crossed during advance(). */
struct FaultTransition
{
    const FaultEpisode *episode = nullptr;
    bool begin = false;  ///< false = the episode just ended
};

/**
 * Stateful evaluator of one FaultPlan over one run. Owned by the
 * simulated machine; a fresh machine gets a fresh injector, so runs
 * stay pure functions of their configuration.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /** True when the plan schedules no episodes at all (fast path:
     *  the machine skips injection work entirely). */
    bool empty() const { return plan_.empty(); }

    /**
     * Advance to scheduler step @p step (monotonically increasing).
     * Returns the episode boundaries crossed since the previous call;
     * the active modifier state below reflects @p step afterwards.
     */
    const std::vector<FaultTransition> &advance(uint64_t step);

    /** @name Active modifier state */
    /** @{ */
    /** Multiplier on the machine's interruptPerStep. */
    double interruptMult() const { return interruptMult_; }
    /** Additive per-step interrupt probability. */
    double interruptAdd() const { return interruptAdd_; }
    /** Additive per-step retry-abort probability. */
    double retryAdd() const { return retryAdd_; }
    /** L1d ways currently unavailable to transactional write sets. */
    uint32_t capacityWaysPenalty() const { return waysPenalty_; }
    /** Scheduler steps a TxFail publication is delayed right now. */
    uint64_t txFailDelaySteps() const { return txFailDelay_; }
    /** Multiplier on the software-check (slow-path) cost. */
    double slowPathCostMult() const { return slowPathMult_; }
    /** True while at least one episode is active. */
    bool anyActive() const { return activeCount_ > 0; }
    /** @} */

  private:
    void recomputeModifiers();

    FaultPlan plan_;
    /** Parallel to plan_.episodes: is episode i currently active? */
    std::vector<bool> active_;
    uint64_t nextBoundary_ = 0;  ///< earliest step needing rescan
    uint32_t activeCount_ = 0;
    std::vector<FaultTransition> transitions_;

    double interruptMult_ = 1.0;
    double interruptAdd_ = 0.0;
    double retryAdd_ = 0.0;
    uint32_t waysPenalty_ = 0;
    uint64_t txFailDelay_ = 0;
    double slowPathMult_ = 1.0;
};

} // namespace txrace::fault

#endif // TXRACE_FAULT_INJECTOR_HH
