/**
 * @file
 * Fault-injection plans: deterministic, seeded schedules of HTM
 * pathology episodes over virtual time.
 *
 * The paper's evaluation (§8, Figures 8-9) shows that TxRace's
 * overhead is dominated by how the runtime copes with the HTM
 * misbehaving: interrupt-driven unknown-abort spikes at 8 threads,
 * capacity cliffs on irregular data, and conflict ping-pong. The
 * MachineConfig knobs can only express a *stationary* noise level; a
 * FaultPlan expresses the transient storms — each episode multiplies
 * or adds to a machine/HTM parameter for a window of scheduler steps
 * and then lets it recover, which is exactly the shape the adaptive
 * fallback governor must ride out (see core/governor.hh).
 *
 * Plans are plain data: a run remains a pure function of
 * (program, config incl. FaultPlan, seed).
 */

#ifndef TXRACE_FAULT_FAULT_HH
#define TXRACE_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace txrace::fault {

/** The injectable pathology classes. */
enum class FaultKind : uint8_t {
    /**
     * Interrupt storm: timer/IPI pressure. Multiplies the machine's
     * interruptPerStep by `magnitude` and adds `addProb` on top (the
     * additive term lets storms bite even in configs whose baseline
     * interrupt rate is zero). Models the Figure-8 unknown-abort
     * spike when threads exceed physical cores.
     */
    InterruptStorm,
    /**
     * Capacity cliff: `param` L1d ways are transiently unavailable to
     * transactional write sets (victim lines, hyperthread twin,
     * prefetcher pressure), shrinking the capacity boundary mid-run.
     * Models the Figure-9 capacity tail on irregular data structures.
     */
    CapacityCliff,
    /**
     * Retry glitch: the RETRY bit is set spuriously (TLB shootdowns
     * and similar transient conditions). Adds `addProb` per-step
     * retry-abort probability while transactional; during the episode
     * the bit is effectively sticky — immediate re-execution hits the
     * same glitch, so bounded retry loops are expected to exhaust.
     */
    RetryGlitch,
    /**
     * TxFail publication delay: the conflict victim's non-transactional
     * write of the TxFail flag is delayed by `param` scheduler steps,
     * widening the window in which concurrent winners commit and
     * escape slow-path re-execution (false-negative source two, §6).
     */
    TxFailDelay,
    /**
     * Slow-path stall: software-check cost inflated by `magnitude`
     * (shadow-memory contention, paging, a perf pathology in the
     * detector). Stresses the governor's last rung: even "fall back
     * to TSan" can be pathologically expensive.
     */
    SlowPathStall,
};

/** Display name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** One pathology window over virtual time. */
struct FaultEpisode
{
    FaultKind kind = FaultKind::InterruptStorm;
    /** First scheduler step at which the episode is active. */
    uint64_t start = 0;
    /** Steps the episode lasts (active in [start, start+duration)). */
    uint64_t duration = 0;
    /** Multiplicative severity (kind-specific; 1.0 = neutral). */
    double magnitude = 1.0;
    /** Additive per-step probability (kind-specific; 0 = none). */
    double addProb = 0.0;
    /** Integer parameter (ways removed, delay steps; kind-specific). */
    uint64_t param = 0;

    uint64_t end() const { return start + duration; }

    bool
    activeAt(uint64_t step) const
    {
        return step >= start && step < end();
    }
};

/** A named, ordered schedule of episodes. Empty = no injection. */
struct FaultPlan
{
    std::string name = "none";
    std::vector<FaultEpisode> episodes;

    bool empty() const { return episodes.empty(); }

    /** Append one episode (keeps construction code terse). */
    FaultPlan &
    add(const FaultEpisode &ep)
    {
        episodes.push_back(ep);
        return *this;
    }
};

/**
 * Build a named scenario. Episode windows are laid out proportionally
 * to @p horizon (the expected run length in scheduler steps), so the
 * same scenario name stresses both a short pattern run and a long
 * application run. fatal()s on unknown names.
 *
 * Scenarios:
 *  - "none":            no injection;
 *  - "interrupt-storm": one long interrupt storm mid-run (Fig. 8);
 *  - "capacity-cliff":  L1 ways shrink for a window (Fig. 9 tail);
 *  - "retry-glitch":    sticky retry-bit window;
 *  - "txfail-delay":    delayed TxFail publication all run;
 *  - "slowpath-stall":  inflated software-check cost window;
 *  - "chaos":           all of the above, staggered and overlapping.
 */
FaultPlan makeScenario(const std::string &name,
                       uint64_t horizon = 200'000);

/** All scenario names accepted by makeScenario (CLI listings). */
const std::vector<std::string> &scenarioNames();

} // namespace txrace::fault

#endif // TXRACE_FAULT_FAULT_HH
