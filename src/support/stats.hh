/**
 * @file
 * Lightweight named statistics counters plus small numeric helpers
 * (geometric mean) used throughout the experiment harnesses.
 */

#ifndef TXRACE_SUPPORT_STATS_HH
#define TXRACE_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace txrace {

/**
 * A bag of named 64-bit counters.
 *
 * Counters spring into existence at first touch. The map is ordered so
 * that dumps are stable across runs, which the determinism tests rely
 * on.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Value of @p name, or zero if never touched. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Set @p name to an absolute value. */
    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Merge another set into this one (summing shared names). */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Remove all counters. */
    void clear() { counters_.clear(); }

    /** Stable iteration over (name, value) pairs. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

  private:
    std::map<std::string, uint64_t> counters_;
};

/**
 * Geometric mean of a vector of positive values. Returns 0 for an
 * empty input; non-positive entries are a caller bug and trip panic().
 */
double geoMean(const std::vector<double> &values);

} // namespace txrace

#endif // TXRACE_SUPPORT_STATS_HH
