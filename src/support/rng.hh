/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator (scheduling, abort
 * injection, workload address streams, sampling) draws from an
 * explicitly seeded Rng so that a run is a pure function of its
 * configuration. The generator is xoshiro256**, seeded through
 * SplitMix64 as its authors recommend.
 */

#ifndef TXRACE_SUPPORT_RNG_HH
#define TXRACE_SUPPORT_RNG_HH

#include <cstdint>

namespace txrace {

/** SplitMix64 step; used for seeding and as a cheap stateless mixer. */
constexpr uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Deterministic xoshiro256** generator.
 *
 * Cheap to copy; copies diverge independently, which snapshot/rollback
 * in the simulator relies on (an aborted transaction restores the Rng
 * state it began with, exactly as re-executing the region would).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x1234567890abcdefULL) { reseed(seed); }

    /** Re-initialize the state from @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in the closed interval [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Derive an independent child generator (for per-thread streams). */
    Rng
    split()
    {
        return Rng(next() ^ 0x5851f42d4c957f2dULL);
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
};

} // namespace txrace

#endif // TXRACE_SUPPORT_RNG_HH
