/**
 * @file
 * Small shared vocabulary types.
 */

#ifndef TXRACE_SUPPORT_TYPES_HH
#define TXRACE_SUPPORT_TYPES_HH

#include <cstdint>

namespace txrace {

/** Simulated thread id; dense, 0 is the main thread. */
using Tid = uint32_t;

/** Sentinel for "no thread". */
constexpr Tid kNoTid = ~0u;

} // namespace txrace

#endif // TXRACE_SUPPORT_TYPES_HH
