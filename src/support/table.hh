/**
 * @file
 * Column-aligned ASCII table and CSV writers used by the benchmark
 * harnesses to print paper-style result tables.
 */

#ifndef TXRACE_SUPPORT_TABLE_HH
#define TXRACE_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace txrace {

/**
 * A simple table: a header row plus data rows of strings.
 *
 * Cells are stored as strings; numeric helpers format with a fixed
 * precision. print() pads each column to its widest cell.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. Subsequent cell() calls append to it. */
    void newRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &text);

    /** Append an integer cell. */
    void cell(uint64_t value);

    /** Append a floating-point cell rendered with @p precision digits. */
    void cell(double value, int precision = 2);

    /** Append a cell like "4.65x" (overhead factors). */
    void cellFactor(double value, int precision = 2);

    /** Number of data rows so far. */
    size_t rowCount() const { return rows_.size(); }

    /** Write the table, space-padded, to @p os. */
    void print(std::ostream &os) const;

    /** Write the table as CSV to @p os. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace txrace

#endif // TXRACE_SUPPORT_TABLE_HH
