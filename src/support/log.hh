/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user/configuration errors,
 * warn()/inform() for status messages that never stop execution.
 */

#ifndef TXRACE_SUPPORT_LOG_HH
#define TXRACE_SUPPORT_LOG_HH

#include <cstdarg>
#include <string>

namespace txrace {

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel {
    Quiet,   ///< only fatal/panic output
    Normal,  ///< warn + inform
    Debug,   ///< everything, including debugLog()
};

/** Set the global verbosity. Thread-safe with respect to loggers. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an unrecoverable internal error (a bug in this library) and
 * abort the process. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad configuration or
 * arguments) and exit(1). Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose diagnostics, only emitted at LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace txrace

#endif // TXRACE_SUPPORT_LOG_HH
