#include "support/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/log.hh"

namespace txrace {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("Table: need at least one column");
}

void
Table::newRow()
{
    if (!rows_.empty() && rows_.back().size() != headers_.size())
        panic("Table: previous row has %zu cells, expected %zu",
              rows_.back().size(), headers_.size());
    rows_.emplace_back();
}

void
Table::cell(const std::string &text)
{
    if (rows_.empty())
        panic("Table: cell() before newRow()");
    if (rows_.back().size() >= headers_.size())
        panic("Table: too many cells in row");
    rows_.back().push_back(text);
}

void
Table::cell(uint64_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    cell(ss.str());
}

void
Table::cellFactor(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value << "x";
    cell(ss.str());
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace txrace
