#include "support/stats.hh"

#include <cmath>

#include "support/log.hh"

namespace txrace {

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geoMean: non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace txrace
