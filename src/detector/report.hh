/**
 * @file
 * Race reports: deduplicated static racy-instruction pairs.
 *
 * The paper counts races as *static instances* — distinct pairs of
 * racy instructions — which is what RaceSet stores. Dynamic recurrence
 * of the same pair is folded into a hit counter.
 */

#ifndef TXRACE_DETECTOR_REPORT_HH
#define TXRACE_DETECTOR_REPORT_HH

#include <cstdint>
#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "ir/instruction.hh"

namespace txrace::detector {

/** Kind of access pairing in a reported race. */
enum class RaceKind : uint8_t {
    WriteWrite,
    ReadWrite,  ///< earlier read, later write
    WriteRead,  ///< earlier write, later read
};

/** Display name of a race kind ("write-write" etc., stable in JSON). */
const char *raceKindName(RaceKind kind);

/** Inverse of raceKindName; false (out untouched) on unknown names. */
bool raceKindFromName(std::string_view name, RaceKind &out);

/** One deduplicated race: an unordered static instruction pair. */
struct Race
{
    ir::InstrId first;   ///< smaller instruction id of the pair
    ir::InstrId second;  ///< larger instruction id of the pair
    RaceKind kind;       ///< kind at first detection
    ir::Addr addr;       ///< address at first detection
    uint64_t hits;       ///< dynamic occurrences observed
};

/** A set of races keyed by the unordered instruction pair. */
class RaceSet
{
  public:
    /** Record a race between static instructions @p a and @p b.
     *  Returns true when the pair is new (first static detection),
     *  false when an existing race's hit counter was bumped — the
     *  forensics layer captures only on first detections. */
    bool record(ir::InstrId a, ir::InstrId b, RaceKind kind,
                ir::Addr addr);

    /** Number of distinct static races. */
    size_t count() const { return races_.size(); }

    /** True if the pair {a, b} has been recorded. */
    bool contains(ir::InstrId a, ir::InstrId b) const;

    /** All races, ordered by instruction pair (stable). */
    std::vector<Race> all() const;

    /** Keys only, for set algebra in the harnesses. */
    std::set<std::pair<ir::InstrId, ir::InstrId>> keys() const;

    /** Merge another RaceSet into this one. */
    void merge(const RaceSet &other);

    /** Number of races in this set whose pair also appears in
     *  @p reference (used for recall computation). */
    size_t intersectCount(const RaceSet &reference) const;

    /** Drop everything. */
    void clear() { races_.clear(); }

  private:
    using Key = std::pair<ir::InstrId, ir::InstrId>;
    std::map<Key, Race> races_;
};

} // namespace txrace::detector

#endif // TXRACE_DETECTOR_REPORT_HH
