/**
 * @file
 * Eraser-style lockset race detector (Savage et al., TOCS 1997) —
 * the classic alternative the paper's related-work section contrasts
 * with happens-before detection (§9): locksets are cheap and
 * schedule-insensitive but *incomplete*: they ignore non-mutex
 * synchronization (condvars, barriers, fork/join ordering beyond
 * initialization), so they report false races that TxRace's slow
 * path, by design, never does. This module exists for the ablation
 * benchmark that reproduces that comparison.
 *
 * Per 8-byte granule, the detector keeps Eraser's state machine:
 *
 *   Virgin -> Exclusive (first access, owner thread recorded)
 *          -> Shared (read by a second thread; candidate set tracked,
 *                     no reports — read sharing after init is fine)
 *          -> SharedModified (written by a second thread, or written
 *                     while Shared; reports when the candidate
 *                     lockset goes empty)
 *
 * The candidate lockset C(v) starts as "all locks" and is refined to
 * C(v) ∩ locksHeld(thread) on each access in the Shared states.
 */

#ifndef TXRACE_DETECTOR_LOCKSET_HH
#define TXRACE_DETECTOR_LOCKSET_HH

#include <cstdint>
#include <set>
#include <unordered_map>

#include "detector/report.hh"
#include "mem/layout.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace txrace::detector {

/** Fixed-layout counters for the lockset hot path; stats()
 *  materializes the string-keyed view on demand. */
struct LocksetCounters
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t warnings = 0;
};

/** Eraser's lockset algorithm over 8-byte granules. */
class LocksetDetector
{
  public:
    /** @name Lock tracking */
    /** @{ */
    void lockAcquire(Tid t, uint64_t lock_id);
    void lockRelease(Tid t, uint64_t lock_id);
    /** @} */

    /** @name Memory access checking */
    /** @{ */
    void read(Tid t, ir::Addr addr, ir::InstrId instr);
    void write(Tid t, ir::Addr addr, ir::InstrId instr);
    /** @} */

    /** Warnings so far (static instruction pairs, like HbDetector's
     *  reports, so the ablation can compare sets directly). */
    const RaceSet &races() const { return races_; }

    /** Locks currently held by @p t (tests). */
    const std::set<uint64_t> &heldBy(Tid t);

    /** Raw counters (checks, warnings). */
    const LocksetCounters &counters() const { return counters_; }

    /** String-keyed view of counters() under the lockset.* names
     *  (zero-valued counters omitted, matching first-touch shape). */
    StatSet stats() const;

  private:
    enum class State : uint8_t {
        Virgin,
        Exclusive,
        Shared,
        SharedModified,
    };

    struct Shadow
    {
        State state = State::Virgin;
        Tid owner = kNoTid;
        /** Candidate lockset; meaningful once past Exclusive. The
         *  conceptual initial value is "all locks", represented by
         *  universe = true. */
        bool universe = true;
        std::set<uint64_t> candidates;
        /** Last access (for pair-style reporting). */
        ir::InstrId lastInstr = ir::kNoInstr;
        bool reported = false;
    };

    void access(Tid t, ir::Addr addr, ir::InstrId instr,
                bool is_write);
    void refine(Shadow &sh, Tid t);

    std::unordered_map<Tid, std::set<uint64_t>> held_;
    std::unordered_map<uint64_t, Shadow> shadow_;
    RaceSet races_;
    LocksetCounters counters_;
};

} // namespace txrace::detector

#endif // TXRACE_DETECTOR_LOCKSET_HH
