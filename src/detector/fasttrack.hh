/**
 * @file
 * FastTrack-style sound and complete happens-before race detector —
 * the reproduction of the paper's slow path (ThreadSanitizer) and of
 * the TSan baseline it is compared against.
 *
 * The detector has two halves:
 *  - synchronization tracking (lock / condvar / barrier / thread
 *    lifecycle vector-clock updates), which TxRace keeps running even
 *    on the fast path so that later slow-path episodes see correct
 *    happens-before order (paper §5, Figure 6);
 *  - per-granule shadow-memory access checking, which only runs for
 *    accesses the active policy chooses to check (always under TSan,
 *    only in slow-path episodes under TxRace, probabilistically under
 *    TSan+sampling).
 *
 * Shadow cells hold the last write epoch and a set of concurrent read
 * epochs. With `maxShadowCells == 0` the read set is unbounded and the
 * detector is sound for the analyzed execution (the paper configures
 * TSan "to have enough shadow cells to be sound"); a positive bound
 * models stock TSan's fixed shadow (random eviction ⇒ possible false
 * negatives).
 */

#ifndef TXRACE_DETECTOR_FASTTRACK_HH
#define TXRACE_DETECTOR_FASTTRACK_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "detector/report.hh"
#include "detector/vectorclock.hh"
#include "mem/layout.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace txrace::detector {

/** Tunables for HbDetector. */
struct DetectorConfig
{
    /** 0 = unbounded (sound); N > 0 caps read epochs per granule. */
    uint32_t maxShadowCells = 0;
    /** Seed for the eviction RNG (only used when bounded). */
    uint64_t seed = 1;
    /**
     * FastTrack same-epoch fast paths: return before the shadow-cell
     * scan when this thread already recorded an identical access (same
     * epoch, same instruction) and the full path would provably change
     * nothing — no race recorded, no shadow state changed, no
     * counter other than the check count moved. Off only for ablation
     * (txrace_run --no-elide) and the differential soundness test.
     */
    bool epochFastPath = true;
};

/**
 * Fixed-layout detector counters. read()/write() run once per checked
 * access — the hottest detector code — so they bump plain integers;
 * stats() materializes the string-keyed view on demand (cold path:
 * result merging and dumps only).
 */
struct DetCounters
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t raceHits = 0;
    /** Read state collapsed to a single epoch (FastTrack's O(1)
     *  representation; the paper reports >99% of reads stay here). */
    uint64_t readEpochSufficient = 0;
    /** Read state held multiple concurrent epochs (promoted VC). */
    uint64_t readVcPromoted = 0;
    /** Bounded-shadow random evictions (maxShadowCells > 0 only). */
    uint64_t evictions = 0;
    /** Checks answered by the same-epoch fast path (scan skipped). */
    uint64_t epochFastHits = 0;
    /** Checks performed through the windowed-replay entry (also
     *  counted in reads/writes; this isolates replay volume). */
    uint64_t replayChecks = 0;
};

/** Sound (configurable) and complete happens-before detector. */
class HbDetector
{
  public:
    explicit HbDetector(const DetectorConfig &cfg = {});

    /** @name Thread lifecycle */
    /** @{ */
    /** Register the root thread (no parent). */
    void rootThread(Tid t);
    /** Child inherits the parent's clock; both sides tick. */
    void threadCreated(Tid parent, Tid child);
    /** Joiner acquires the joined thread's final clock. */
    void threadJoined(Tid joiner, Tid joined);
    /** @} */

    /** @name Synchronization (vector-clock updates) */
    /** @{ */
    void lockAcquire(Tid t, uint64_t lock_id);
    void lockRelease(Tid t, uint64_t lock_id);
    /** Release half of a condvar/semaphore post. */
    void condSignal(Tid t, uint64_t cond_id);
    /** Acquire half, called when the waiter resumes. */
    void condWait(Tid t, uint64_t cond_id);
    /** All @p participants arrived; merge and redistribute clocks. */
    void barrierRelease(const std::vector<Tid> &participants);
    /** @} */

    /** @name Memory access checking */
    /** @{ */
    /** Check+record a read of the granule containing @p addr. */
    void read(Tid t, ir::Addr addr, ir::InstrId instr);
    /** Check+record a write of the granule containing @p addr. */
    void write(Tid t, ir::Addr addr, ir::InstrId instr);
    /**
     * Window-scoped entry: check one access replayed from a version
     * log. Detection semantics are identical to read()/write() — the
     * replaying thread's clock is its live clock, which is exact
     * because transactional regions are synchronization-free (the
     * clock cannot have advanced between the logged access and the
     * replay) — but the volume is counted separately
     * (detector.replay_checks) so telemetry can attribute it.
     */
    void
    replayAccess(Tid t, ir::Addr addr, ir::InstrId instr,
                 bool is_write)
    {
        ++counters_.replayChecks;
        if (is_write)
            write(t, addr, instr);
        else
            read(t, addr, instr);
    }
    /** @} */

    /** Races found so far. */
    const RaceSet &races() const { return races_; }
    RaceSet &races() { return races_; }

    /**
     * Callback fired on each *new* static race (not on hit-counter
     * bumps): the recorded race, the thread whose access triggered the
     * detection, and the other endpoint's thread (recovered from the
     * shadow cell's epoch). The forensics layer hooks here to drain
     * flight-recorder windows at the exact detection instant.
     * First-detection-only keeps the hook deterministic and off the
     * per-hit hot path.
     */
    using RaceObserver =
        std::function<void(const Race &, Tid current, Tid other)>;
    void setRaceObserver(RaceObserver obs) { observer_ = std::move(obs); }

    /** Current clock of thread @p t (tests, runtime diagnostics). */
    const VectorClock &clockOf(Tid t) const;

    /** Raw counters (checks performed, races, evictions). */
    const DetCounters &counters() const { return counters_; }

    /** String-keyed view of counters() under the detector.* names
     *  (compatibility surface for dumps and tests; zero-valued
     *  counters are omitted, matching StatSet's first-touch shape). */
    StatSet stats() const;

    /** Forget all shadow state but keep clocks (tests only). */
    void
    dropShadow()
    {
        shadow_.clear();
        cachedNo_ = kNoPage;
        cachedPage_ = nullptr;
        cellCache_.clear();  // cached ShadowCell pointers are dead
    }

  private:
    struct Access
    {
        Epoch epoch;
        ir::InstrId instr = ir::kNoInstr;
    };

    struct ShadowCell
    {
        Access write;
        std::vector<Access> reads;
    };

    /**
     * Shadow cells are paged like VirtualMemory: 128 granules (1 KiB
     * of address space) per page, one hash lookup per page switch
     * instead of per check. The slow path checks runs of neighboring
     * granules, so the one-entry cache absorbs almost every lookup.
     */
    static constexpr unsigned kShadowPageBits = 7;
    static constexpr uint64_t kShadowPageGranules =
        1ull << kShadowPageBits;
    static constexpr uint64_t kShadowPageMask =
        kShadowPageGranules - 1;
    static constexpr uint64_t kNoPage = ~0ull;

    struct ShadowPage
    {
        std::array<ShadowCell, kShadowPageGranules> cells;
    };

    /** The shadow cell of @p granule (created on first touch). */
    ShadowCell &shadowCell(uint64_t granule);

    /**
     * Per-thread direct-mapped granule -> ShadowCell* cache in front
     * of shadowCell()'s page lookup. ShadowCell addresses are stable
     * (fixed arrays inside heap-allocated ShadowPages that are never
     * erased except by dropShadow(), which clears the cache), so a
     * hit returns the pointer with no hashing at all. Per-thread
     * because each thread's working set is what repeats; a shared
     * cache would thrash under interleaving.
     */
    static constexpr uint32_t kCellCacheSize = 64;
    struct CellCache
    {
        std::array<uint64_t, kCellCacheSize> granule{};
        std::array<ShadowCell *, kCellCacheSize> cell{};
    };
    ShadowCell &cellFor(Tid t, uint64_t granule);

    VectorClock &clock(Tid t);

    DetectorConfig cfg_;
    Rng rng_;
    std::vector<VectorClock> clocks_;
    std::unordered_map<uint64_t, VectorClock> lockClocks_;
    std::unordered_map<uint64_t, VectorClock> condClocks_;
    std::unordered_map<uint64_t, std::unique_ptr<ShadowPage>> shadow_;
    uint64_t cachedNo_ = kNoPage;
    ShadowPage *cachedPage_ = nullptr;
    std::vector<CellCache> cellCache_;
    /** Record + notify helper shared by the three detection sites. */
    void reportRace(ir::InstrId a, ir::InstrId b, RaceKind kind,
                    ir::Addr addr, Tid current, Tid other);

    RaceSet races_;
    DetCounters counters_;
    RaceObserver observer_;
};

} // namespace txrace::detector

#endif // TXRACE_DETECTOR_FASTTRACK_HH
