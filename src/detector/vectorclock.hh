/**
 * @file
 * Vector clocks and epochs for happens-before tracking, in the style
 * of FastTrack (Flanagan & Freund, PLDI'09), which the paper's slow
 * path (ThreadSanitizer) implements.
 */

#ifndef TXRACE_DETECTOR_VECTORCLOCK_HH
#define TXRACE_DETECTOR_VECTORCLOCK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace txrace {
namespace detector {

/** A (thread, clock) pair — FastTrack's scalar clock sample. */
struct Epoch
{
    Tid tid = 0;
    uint64_t clock = 0;

    /** True if this epoch denotes "no access yet". */
    bool empty() const { return clock == 0; }

    bool operator==(const Epoch &other) const = default;
};

/**
 * A grow-on-demand vector clock. Component t holds the latest clock
 * of thread t known to the owning thread/object.
 */
class VectorClock
{
  public:
    /** Clock component for thread @p t (0 if never set). */
    uint64_t
    get(Tid t) const
    {
        return t < c_.size() ? c_[t] : 0;
    }

    /** Set component @p t to @p v. */
    void
    set(Tid t, uint64_t v)
    {
        grow(t);
        c_[t] = v;
    }

    /** Increment this thread's own component. */
    void
    tick(Tid t)
    {
        grow(t);
        ++c_[t];
    }

    /** Pointwise maximum with @p other (the join / ⊔ operation). */
    void
    join(const VectorClock &other)
    {
        if (other.c_.size() > c_.size())
            c_.resize(other.c_.size(), 0);
        for (size_t i = 0; i < other.c_.size(); ++i)
            c_[i] = std::max(c_[i], other.c_[i]);
    }

    /** True if epoch @p e happens-before (or equals) this clock. */
    bool
    covers(const Epoch &e) const
    {
        return e.clock <= get(e.tid);
    }

    /** Pointwise ≤ comparison (partial order on clocks). */
    bool
    leq(const VectorClock &other) const
    {
        for (size_t i = 0; i < c_.size(); ++i)
            if (c_[i] > other.get(static_cast<Tid>(i)))
                return false;
        return true;
    }

    /** The epoch (t, this[t]). */
    Epoch
    epochOf(Tid t) const
    {
        return Epoch{t, get(t)};
    }

    /** Reset to the all-zero clock. */
    void clear() { c_.clear(); }

    bool operator==(const VectorClock &other) const
    {
        size_t n = std::max(c_.size(), other.c_.size());
        for (size_t i = 0; i < n; ++i)
            if (get(static_cast<Tid>(i)) !=
                other.get(static_cast<Tid>(i)))
                return false;
        return true;
    }

  private:
    void
    grow(Tid t)
    {
        if (t >= c_.size())
            c_.resize(t + 1, 0);
    }

    std::vector<uint64_t> c_;
};

} // namespace detector
} // namespace txrace

#endif // TXRACE_DETECTOR_VECTORCLOCK_HH
