#include "detector/lockset.hh"

#include <algorithm>

#include "support/log.hh"

namespace txrace::detector {

void
LocksetDetector::lockAcquire(Tid t, uint64_t lock_id)
{
    held_[t].insert(lock_id);
}

void
LocksetDetector::lockRelease(Tid t, uint64_t lock_id)
{
    held_[t].erase(lock_id);
}

const std::set<uint64_t> &
LocksetDetector::heldBy(Tid t)
{
    return held_[t];
}

void
LocksetDetector::refine(Shadow &sh, Tid t)
{
    const std::set<uint64_t> &locks = held_[t];
    if (sh.universe) {
        sh.universe = false;
        sh.candidates = locks;
        return;
    }
    std::set<uint64_t> intersection;
    std::set_intersection(sh.candidates.begin(), sh.candidates.end(),
                          locks.begin(), locks.end(),
                          std::inserter(intersection,
                                        intersection.begin()));
    sh.candidates = std::move(intersection);
}

StatSet
LocksetDetector::stats() const
{
    StatSet out;
    auto put = [&](const char *name, uint64_t v) {
        if (v)
            out.set(name, v);
    };
    put("lockset.reads", counters_.reads);
    put("lockset.writes", counters_.writes);
    put("lockset.warnings", counters_.warnings);
    return out;
}

void
LocksetDetector::access(Tid t, ir::Addr addr, ir::InstrId instr,
                        bool is_write)
{
    if (is_write)
        ++counters_.writes;
    else
        ++counters_.reads;
    Shadow &sh = shadow_[mem::granuleOf(addr)];

    switch (sh.state) {
      case State::Virgin:
        sh.state = State::Exclusive;
        sh.owner = t;
        sh.lastInstr = instr;
        return;

      case State::Exclusive:
        if (sh.owner == t) {
            sh.lastInstr = instr;
            return;  // still thread-local: initialization is free
        }
        // Second thread arrives: start tracking candidate locks from
        // this access on (Eraser's initialization allowance).
        sh.state = is_write ? State::SharedModified : State::Shared;
        refine(sh, t);
        break;

      case State::Shared:
        if (is_write)
            sh.state = State::SharedModified;
        refine(sh, t);
        break;

      case State::SharedModified:
        refine(sh, t);
        break;
    }

    if (sh.state == State::SharedModified && !sh.universe &&
        sh.candidates.empty() && !sh.reported) {
        races_.record(sh.lastInstr == ir::kNoInstr ? instr
                                                   : sh.lastInstr,
                      instr, is_write ? RaceKind::WriteWrite
                                      : RaceKind::WriteRead,
                      addr);
        ++counters_.warnings;
        sh.reported = true;  // one warning per location, as in Eraser
    }
    sh.lastInstr = instr;
}

void
LocksetDetector::read(Tid t, ir::Addr addr, ir::InstrId instr)
{
    access(t, addr, instr, false);
}

void
LocksetDetector::write(Tid t, ir::Addr addr, ir::InstrId instr)
{
    access(t, addr, instr, true);
}

} // namespace txrace::detector
