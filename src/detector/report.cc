#include "detector/report.hh"

#include <algorithm>

namespace txrace::detector {

const char *
raceKindName(RaceKind kind)
{
    switch (kind) {
      case RaceKind::WriteWrite: return "write-write";
      case RaceKind::ReadWrite:  return "read-write";
      case RaceKind::WriteRead:  return "write-read";
    }
    return "?";
}

bool
raceKindFromName(std::string_view name, RaceKind &out)
{
    for (RaceKind k : {RaceKind::WriteWrite, RaceKind::ReadWrite,
                       RaceKind::WriteRead}) {
        if (name == raceKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

bool
RaceSet::record(ir::InstrId a, ir::InstrId b, RaceKind kind,
                ir::Addr addr)
{
    Key key{std::min(a, b), std::max(a, b)};
    auto it = races_.find(key);
    if (it != races_.end()) {
        ++it->second.hits;
        return false;
    }
    races_.emplace(key, Race{key.first, key.second, kind, addr, 1});
    return true;
}

bool
RaceSet::contains(ir::InstrId a, ir::InstrId b) const
{
    return races_.count({std::min(a, b), std::max(a, b)}) > 0;
}

std::vector<Race>
RaceSet::all() const
{
    std::vector<Race> out;
    out.reserve(races_.size());
    for (const auto &[key, race] : races_)
        out.push_back(race);
    return out;
}

std::set<std::pair<ir::InstrId, ir::InstrId>>
RaceSet::keys() const
{
    std::set<Key> out;
    for (const auto &[key, race] : races_)
        out.insert(key);
    return out;
}

void
RaceSet::merge(const RaceSet &other)
{
    for (const auto &[key, race] : other.races_) {
        auto it = races_.find(key);
        if (it == races_.end())
            races_.emplace(key, race);
        else
            it->second.hits += race.hits;
    }
}

size_t
RaceSet::intersectCount(const RaceSet &reference) const
{
    size_t n = 0;
    for (const auto &[key, race] : races_)
        if (reference.races_.count(key))
            ++n;
    return n;
}

} // namespace txrace::detector
