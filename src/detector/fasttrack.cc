#include "detector/fasttrack.hh"

#include <algorithm>

#include "support/log.hh"

namespace txrace::detector {

HbDetector::HbDetector(const DetectorConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

VectorClock &
HbDetector::clock(Tid t)
{
    // NOTE: growing clocks_ invalidates previously returned
    // references; callers needing two clocks at once must grow for
    // the larger tid first (see threadCreated/threadJoined).
    if (t >= clocks_.size())
        clocks_.resize(static_cast<size_t>(t) + 1);
    return clocks_[t];
}

const VectorClock &
HbDetector::clockOf(Tid t) const
{
    static const VectorClock empty;
    return t < clocks_.size() ? clocks_[t] : empty;
}

void
HbDetector::rootThread(Tid t)
{
    clock(t).tick(t);
}

void
HbDetector::threadCreated(Tid parent, Tid child)
{
    clock(std::max(parent, child));  // grow once, up front
    VectorClock &p = clock(parent);
    VectorClock &c = clock(child);
    c.join(p);
    c.tick(child);
    p.tick(parent);
}

void
HbDetector::threadJoined(Tid joiner, Tid joined)
{
    clock(std::max(joiner, joined));  // grow once, up front
    clock(joiner).join(clock(joined));
}

void
HbDetector::lockAcquire(Tid t, uint64_t lock_id)
{
    clock(t).join(lockClocks_[lock_id]);
}

void
HbDetector::lockRelease(Tid t, uint64_t lock_id)
{
    VectorClock &vc = clock(t);
    lockClocks_[lock_id] = vc;
    vc.tick(t);
}

void
HbDetector::condSignal(Tid t, uint64_t cond_id)
{
    VectorClock &vc = clock(t);
    condClocks_[cond_id].join(vc);
    vc.tick(t);
}

void
HbDetector::condWait(Tid t, uint64_t cond_id)
{
    clock(t).join(condClocks_[cond_id]);
}

void
HbDetector::barrierRelease(const std::vector<Tid> &participants)
{
    VectorClock merged;
    for (Tid t : participants)
        merged.join(clock(t));
    for (Tid t : participants) {
        VectorClock &vc = clock(t);
        vc.join(merged);
        vc.tick(t);
    }
}

HbDetector::ShadowCell &
HbDetector::shadowCell(uint64_t granule)
{
    uint64_t pageNo = granule >> kShadowPageBits;
    if (pageNo != cachedNo_) {
        auto &slot = shadow_[pageNo];
        if (!slot)
            slot = std::make_unique<ShadowPage>();
        cachedNo_ = pageNo;
        cachedPage_ = slot.get();
    }
    return cachedPage_->cells[granule & kShadowPageMask];
}

HbDetector::ShadowCell &
HbDetector::cellFor(Tid t, uint64_t granule)
{
    if (t >= cellCache_.size())
        cellCache_.resize(static_cast<size_t>(t) + 1);
    CellCache &cc = cellCache_[t];
    const uint32_t idx = granule & (kCellCacheSize - 1);
    // cell[idx] is null until first fill, so the zero-initialized
    // granule entries cannot falsely match granule 0.
    if (cc.granule[idx] == granule && cc.cell[idx])
        return *cc.cell[idx];
    ShadowCell &cell = shadowCell(granule);
    cc.granule[idx] = granule;
    cc.cell[idx] = &cell;
    return cell;
}

StatSet
HbDetector::stats() const
{
    StatSet out;
    auto put = [&](const char *name, uint64_t v) {
        if (v)
            out.set(name, v);
    };
    put("detector.reads", counters_.reads);
    put("detector.writes", counters_.writes);
    put("detector.race_hits", counters_.raceHits);
    put("detector.read_epoch_sufficient",
        counters_.readEpochSufficient);
    put("detector.read_vc_promoted", counters_.readVcPromoted);
    put("detector.evictions", counters_.evictions);
    put("detector.epoch_fast_hits", counters_.epochFastHits);
    put("detector.replay_checks", counters_.replayChecks);
    return out;
}

void
HbDetector::read(Tid t, ir::Addr addr, ir::InstrId instr)
{
    ++counters_.reads;
    ShadowCell &cell = cellFor(t, mem::granuleOf(addr));
    const VectorClock &vc = clockOf(t);
    const Epoch mine = vc.epochOf(t);

    // Same-epoch fast path: this thread already recorded this exact
    // read (same epoch, same instruction) as the sole read entry, and
    // no unordered remote write is pending (so the full path would
    // record no race). Then the full path is a provable no-op on the
    // shadow state — skip the prune/append scan. The epoch-sufficient
    // counter still moves: the full path would have counted it.
    if (cfg_.epochFastPath && cell.reads.size() == 1 &&
        cell.reads[0].epoch == mine && cell.reads[0].instr == instr &&
        (cell.write.epoch.empty() || cell.write.epoch.tid == t ||
         vc.covers(cell.write.epoch))) {
        ++counters_.epochFastHits;
        ++counters_.readEpochSufficient;
        return;
    }

    if (!cell.write.epoch.empty() && cell.write.epoch.tid != t &&
        !vc.covers(cell.write.epoch)) {
        reportRace(cell.write.instr, instr, RaceKind::WriteRead, addr, t,
                   cell.write.epoch.tid);
        ++counters_.raceHits;
    }

    // Update the read set: replace this thread's entry, drop entries
    // that are now ordered before us (they can no longer race with any
    // future access that we are ordered with), and append.
    auto &reads = cell.reads;
    for (size_t i = 0; i < reads.size();) {
        if (reads[i].epoch.tid == t ||
            (reads[i].epoch.tid != t && vc.covers(reads[i].epoch))) {
            reads[i] = reads.back();
            reads.pop_back();
        } else {
            ++i;
        }
    }
    reads.push_back({mine, instr});
    // FastTrack's adaptive-representation statistic: when the read
    // state collapses to a single epoch, the O(1) fast path suffices;
    // multiple survivors mean a promoted vector clock (FastTrack
    // reports >99% of reads stay in the epoch case).
    if (reads.size() == 1)
        ++counters_.readEpochSufficient;
    else
        ++counters_.readVcPromoted;
    if (cfg_.maxShadowCells > 0 && reads.size() > cfg_.maxShadowCells) {
        size_t victim = rng_.below(reads.size());
        reads[victim] = reads.back();
        reads.pop_back();
        ++counters_.evictions;
    }
}

void
HbDetector::write(Tid t, ir::Addr addr, ir::InstrId instr)
{
    ++counters_.writes;
    ShadowCell &cell = cellFor(t, mem::granuleOf(addr));
    const VectorClock &vc = clockOf(t);
    const Epoch mine = vc.epochOf(t);

    // Same-epoch fast path: this thread already owns the write entry
    // at this exact epoch and instruction and no reads are recorded —
    // the full path would find no race (write epoch is ours) and
    // store back the identical entry.
    if (cfg_.epochFastPath && cell.write.epoch == mine &&
        cell.write.instr == instr && cell.reads.empty()) {
        ++counters_.epochFastHits;
        return;
    }

    if (!cell.write.epoch.empty() && cell.write.epoch.tid != t &&
        !vc.covers(cell.write.epoch)) {
        reportRace(cell.write.instr, instr, RaceKind::WriteWrite, addr,
                   t, cell.write.epoch.tid);
        ++counters_.raceHits;
    }
    for (const Access &r : cell.reads) {
        if (r.epoch.tid != t && !vc.covers(r.epoch)) {
            reportRace(r.instr, instr, RaceKind::ReadWrite, addr, t,
                       r.epoch.tid);
            ++counters_.raceHits;
        }
    }

    cell.write = {mine, instr};
    cell.reads.clear();
}

void
HbDetector::reportRace(ir::InstrId a, ir::InstrId b, RaceKind kind,
                       ir::Addr addr, Tid current, Tid other)
{
    bool isNew = races_.record(a, b, kind, addr);
    if (isNew && observer_) {
        Race race{std::min(a, b), std::max(a, b), kind, addr, 1};
        observer_(race, current, other);
    }
}

} // namespace txrace::detector
