#include "detector/fasttrack.hh"

#include <algorithm>

#include "support/log.hh"

namespace txrace::detector {

HbDetector::HbDetector(const DetectorConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

VectorClock &
HbDetector::clock(Tid t)
{
    // NOTE: growing clocks_ invalidates previously returned
    // references; callers needing two clocks at once must grow for
    // the larger tid first (see threadCreated/threadJoined).
    if (t >= clocks_.size())
        clocks_.resize(static_cast<size_t>(t) + 1);
    return clocks_[t];
}

const VectorClock &
HbDetector::clockOf(Tid t) const
{
    static const VectorClock empty;
    return t < clocks_.size() ? clocks_[t] : empty;
}

void
HbDetector::rootThread(Tid t)
{
    clock(t).tick(t);
}

void
HbDetector::threadCreated(Tid parent, Tid child)
{
    clock(std::max(parent, child));  // grow once, up front
    VectorClock &p = clock(parent);
    VectorClock &c = clock(child);
    c.join(p);
    c.tick(child);
    p.tick(parent);
}

void
HbDetector::threadJoined(Tid joiner, Tid joined)
{
    clock(std::max(joiner, joined));  // grow once, up front
    clock(joiner).join(clock(joined));
}

void
HbDetector::lockAcquire(Tid t, uint64_t lock_id)
{
    clock(t).join(lockClocks_[lock_id]);
}

void
HbDetector::lockRelease(Tid t, uint64_t lock_id)
{
    VectorClock &vc = clock(t);
    lockClocks_[lock_id] = vc;
    vc.tick(t);
}

void
HbDetector::condSignal(Tid t, uint64_t cond_id)
{
    VectorClock &vc = clock(t);
    condClocks_[cond_id].join(vc);
    vc.tick(t);
}

void
HbDetector::condWait(Tid t, uint64_t cond_id)
{
    clock(t).join(condClocks_[cond_id]);
}

void
HbDetector::barrierRelease(const std::vector<Tid> &participants)
{
    VectorClock merged;
    for (Tid t : participants)
        merged.join(clock(t));
    for (Tid t : participants) {
        VectorClock &vc = clock(t);
        vc.join(merged);
        vc.tick(t);
    }
}

HbDetector::ShadowCell &
HbDetector::shadowCell(uint64_t granule)
{
    uint64_t pageNo = granule >> kShadowPageBits;
    if (pageNo != cachedNo_) {
        auto &slot = shadow_[pageNo];
        if (!slot)
            slot = std::make_unique<ShadowPage>();
        cachedNo_ = pageNo;
        cachedPage_ = slot.get();
    }
    return cachedPage_->cells[granule & kShadowPageMask];
}

void
HbDetector::read(Tid t, ir::Addr addr, ir::InstrId instr)
{
    stats_.add("detector.reads");
    ShadowCell &cell = shadowCell(mem::granuleOf(addr));
    const VectorClock &vc = clockOf(t);

    if (!cell.write.epoch.empty() && cell.write.epoch.tid != t &&
        !vc.covers(cell.write.epoch)) {
        races_.record(cell.write.instr, instr, RaceKind::WriteRead, addr);
        stats_.add("detector.race_hits");
    }

    // Update the read set: replace this thread's entry, drop entries
    // that are now ordered before us (they can no longer race with any
    // future access that we are ordered with), and append.
    Epoch mine = vc.epochOf(t);
    auto &reads = cell.reads;
    for (size_t i = 0; i < reads.size();) {
        if (reads[i].epoch.tid == t ||
            (reads[i].epoch.tid != t && vc.covers(reads[i].epoch))) {
            reads[i] = reads.back();
            reads.pop_back();
        } else {
            ++i;
        }
    }
    reads.push_back({mine, instr});
    // FastTrack's adaptive-representation statistic: when the read
    // state collapses to a single epoch, the O(1) fast path suffices;
    // multiple survivors mean a promoted vector clock (FastTrack
    // reports >99% of reads stay in the epoch case).
    if (reads.size() == 1)
        stats_.add("detector.read_epoch_sufficient");
    else
        stats_.add("detector.read_vc_promoted");
    if (cfg_.maxShadowCells > 0 && reads.size() > cfg_.maxShadowCells) {
        size_t victim = rng_.below(reads.size());
        reads[victim] = reads.back();
        reads.pop_back();
        stats_.add("detector.evictions");
    }
}

void
HbDetector::write(Tid t, ir::Addr addr, ir::InstrId instr)
{
    stats_.add("detector.writes");
    ShadowCell &cell = shadowCell(mem::granuleOf(addr));
    const VectorClock &vc = clockOf(t);

    if (!cell.write.epoch.empty() && cell.write.epoch.tid != t &&
        !vc.covers(cell.write.epoch)) {
        races_.record(cell.write.instr, instr, RaceKind::WriteWrite,
                      addr);
        stats_.add("detector.race_hits");
    }
    for (const Access &r : cell.reads) {
        if (r.epoch.tid != t && !vc.covers(r.epoch)) {
            races_.record(r.instr, instr, RaceKind::ReadWrite, addr);
            stats_.add("detector.race_hits");
        }
    }

    cell.write = {vc.epochOf(t), instr};
    cell.reads.clear();
}

} // namespace txrace::detector
