#include "telemetry/json.hh"

#include <cmath>

#include "support/log.hh"

namespace txrace::telemetry {

void
JsonWriter::newline()
{
    if (!pretty_)
        return;
    os_ << "\n";
    for (size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::preValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (stack_.back() == Scope::Object)
        panic("JsonWriter: value without key inside object");
    if (hasElement_.back())
        os_ << ",";
    hasElement_.back() = true;
    newline();
}

void
JsonWriter::preKey()
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: key outside object");
    if (pendingKey_)
        panic("JsonWriter: two keys in a row");
    if (hasElement_.back())
        os_ << ",";
    hasElement_.back() = true;
    newline();
}

void
JsonWriter::beginObject()
{
    preValue();
    os_ << "{";
    stack_.push_back(Scope::Object);
    hasElement_.push_back(false);
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: endObject outside object");
    bool had = hasElement_.back();
    stack_.pop_back();
    hasElement_.pop_back();
    if (had)
        newline();
    os_ << "}";
}

void
JsonWriter::beginArray()
{
    preValue();
    os_ << "[";
    stack_.push_back(Scope::Array);
    hasElement_.push_back(false);
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        panic("JsonWriter: endArray outside array");
    bool had = hasElement_.back();
    stack_.pop_back();
    hasElement_.pop_back();
    if (had)
        newline();
    os_ << "]";
}

void
JsonWriter::key(const std::string &name)
{
    preKey();
    writeEscaped(name);
    os_ << (pretty_ ? ": " : ":");
    pendingKey_ = true;
}

void
JsonWriter::writeEscaped(const std::string &s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\r':
            os_ << "\\r";
            break;
          case '\t':
            os_ << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

void
JsonWriter::value(const std::string &s)
{
    preValue();
    writeEscaped(s);
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(uint64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(int64_t v)
{
    preValue();
    os_ << v;
}

void
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN literal; clamp to null.
        os_ << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << buf;
}

void
JsonWriter::value(bool b)
{
    preValue();
    os_ << (b ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    preValue();
    os_ << "null";
}

} // namespace txrace::telemetry
