#include "jsonparse.hh"

#include <cerrno>
#include <cstdlib>

namespace txrace::telemetry {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

uint64_t
JsonValue::asU64() const
{
    if (type != Type::Number || number.empty() || number[0] == '-')
        return 0;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(number.c_str(), &end, 10);
    if (errno || !end || *end != '\0')
        return 0;
    return v;
}

double
JsonValue::asDouble() const
{
    if (type != Type::Number)
        return 0.0;
    return std::strtod(number.c_str(), nullptr);
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        error_ = std::string(what) + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.type = JsonValue::Type::String;
            return string(out.str);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return number(out);
            return fail("unexpected character");
        }
    }

    bool
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!value(member))
                return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue elem;
            if (!value(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("short \\u escape");
                uint32_t cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        cp |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        cp |= h - 'A' + 10;
                    else
                        return fail("bad \\u escape");
                }
                // Our writer only emits \u00XX for control bytes; emit
                // the UTF-8 encoding of whatever code point arrives.
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        out.type = JsonValue::Type::Number;
        size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            size_t n = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (!digits())
            return fail("bad number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("bad fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("bad exponent");
        }
        out.number.assign(text_.substr(start, pos_ - start));
        return true;
    }

    std::string_view text_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    error.clear();
    return Parser(text, error).parse(out);
}

bool
checkSchema(const JsonValue &doc, std::string_view expect,
            std::string &error)
{
    const std::string want(expect);
    if (!doc.isObject()) {
        error = "$: document is not an object (expected a \"" + want +
                "\" document)";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema) {
        error = "$.schema: missing (expected \"" + want + "\")";
        return false;
    }
    if (!schema->isString()) {
        error = "$.schema: not a string (expected \"" + want + "\")";
        return false;
    }
    if (schema->str != expect) {
        error = "$.schema: unknown version \"" + schema->str +
                "\" (expected \"" + want + "\")";
        return false;
    }
    return true;
}

} // namespace txrace::telemetry
