/**
 * @file
 * Operational gauges of the hunting service, rendered into the
 * `service` object of txrace-progress-v1 heartbeats.
 *
 * Counters only — everything here is an execution fact (like pool
 * worker lanes or steals) and never feeds the deterministic report.
 * Wall-clock derived rates live here too, which is fine for the
 * heartbeat side channel: the record COUNT stays config-determined,
 * the contents reflect live operation.
 */

#ifndef TXRACE_TELEMETRY_SERVICESTATS_HH
#define TXRACE_TELEMETRY_SERVICESTATS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace txrace::telemetry {

struct ServiceStats
{
    uint64_t jobsIngested = 0;      ///< outcomes folded
    uint64_t duplicatesSkipped = 0; ///< seen-set hits (resume overlap)
    uint64_t batches = 0;           ///< spool files / stdin batches
    uint64_t checkpoints = 0;
    uint64_t checkpointLastMicros = 0;
    uint64_t checkpointMaxMicros = 0;
    uint64_t deltasEmitted = 0;     ///< incremental finding records
    uint64_t resumes = 0;           ///< checkpoints restored

    void
    noteCheckpoint(uint64_t micros)
    {
        ++checkpoints;
        checkpointLastMicros = micros;
        checkpointMaxMicros = std::max(checkpointMaxMicros, micros);
    }

    /**
     * Render as ordered (name, value) gauges for a ProgressRecord.
     * @p shardDepths is the per-shard finding count;
     * @p ingestPerSec the jobs/s over the service's lifetime.
     */
    std::vector<std::pair<std::string, uint64_t>>
    gauges(const std::vector<uint64_t> &shardDepths,
           uint64_t ingestPerSec) const;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_SERVICESTATS_HH
