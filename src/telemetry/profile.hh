/**
 * @file
 * Persistent, mergeable per-site observability profiles.
 *
 * A Profile aggregates per-IR-site counters — conflict / capacity /
 * other aborts, slow-path entries and their cost, owned-line filter
 * hits, monitor sampling state — keyed by workload name, and merges
 * commutatively: every field is either a uint64 sum or a max, so
 * merge(A, B) == merge(B, A) and merging is associative. Combined
 * with sorted-map iteration and integer-only serialization, the
 * `txrace-profile-v1` JSON is byte-deterministic: accumulating the
 * same set of runs in any order or across any worker count produces
 * identical bytes, which makes cross-run and cross-fleet aggregation
 * testable by `cmp`.
 *
 * This is the input contract for profile-guided transaction reshaping
 * (ROADMAP): the reshaping pass reads exactly this file to decide
 * which sites deserve widened windows, split transactions, or bigger
 * owned-line filters.
 *
 * Profiles carry only numeric site ids, not descriptions: ids are
 * stable for a given (workload, params) program build, and keeping
 * strings out of the file keeps parse → merge → rewrite byte-exact.
 * Join against the `sites` descriptions in a metrics JSON of the same
 * workload when human-readable output is needed.
 */

#ifndef TXRACE_TELEMETRY_PROFILE_HH
#define TXRACE_TELEMETRY_PROFILE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace txrace::telemetry {

class JsonWriter;
struct JsonValue;

/** Accumulated counters for one static IR site. */
struct SiteProfile
{
    uint64_t conflictAborts = 0;  ///< aborts where this site requested
    uint64_t capacityAborts = 0;  ///< own-footprint overflows at this site
    uint64_t otherAborts = 0;     ///< interrupt/retry aborts attributed here
    uint64_t slowChecks = 0;      ///< slow-path detector checks at this site
    uint64_t slowCost = 0;        ///< virtual cost of those checks
    /** Deepest monitor sampling shift ever applied (max-merged; a
     *  site that was ever cut to 1/2^k sampling keeps that mark). */
    uint64_t monitorShiftMax = 0;
    /** Windowed replays this site triggered as the conflicting
     *  requester (input for reshaping: a site that keeps forcing
     *  replays is a transaction-boundary candidate). */
    uint64_t windowReplays = 0;

    void merge(const SiteProfile &o);
    bool empty() const;
};

/** Accumulated counters for one workload (app) across runs. */
struct AppProfile
{
    uint64_t runs = 0;            ///< runs folded into this entry
    uint64_t filterHits = 0;      ///< owned-line filter hits (htm.dir.filter_hit)
    uint64_t txBegins = 0;
    uint64_t txCommitted = 0;
    uint64_t slowRegions = 0;
    uint64_t monitorSiteCuts = 0;
    uint64_t monitorSiteProbes = 0;
    uint64_t monitorGatedChecks = 0;
    uint64_t monitorSampledSkips = 0;
    uint64_t windowReplays = 0;   ///< windowed slow-path replays
    uint64_t windowFallbacks = 0; ///< replay-cap solo-slow fallbacks
    std::map<uint32_t, SiteProfile> sites;

    void merge(const AppProfile &o);
};

/** A whole profile file: app name -> accumulated counters. */
struct Profile
{
    std::map<std::string, AppProfile> apps;

    /** Fold @p o into this profile (commutative, associative). */
    void merge(const Profile &o);

    bool empty() const { return apps.empty(); }

    /** Serialize as txrace-profile-v1 (byte-deterministic). */
    void write(std::ostream &os) const;

    /**
     * Emit the fields of the profile body (`apps`) into an object
     * @p w has already opened. Lets other documents (the
     * txrace-findings-v1 store) embed a profile without nesting a
     * second schema header.
     */
    void writeBody(JsonWriter &w) const;

    /**
     * Parse a txrace-profile-v1 document. Returns true on success;
     * false with a message in @p error on malformed input or a
     * schema/version mismatch. Unknown fields are ignored so later
     * minor versions stay readable.
     */
    static bool parse(const std::string &text, Profile &out,
                      std::string &error);

    /** Inverse of writeBody: restore from a parsed body object. */
    static bool parseBody(const JsonValue &body, Profile &out,
                          std::string &error);
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_PROFILE_HH
