#include "profile.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <ostream>

#include "json.hh"
#include "jsonparse.hh"

namespace txrace::telemetry {

namespace {

/** Current (and only) schema identifier. */
constexpr const char *kSchema = "txrace-profile-v1";

uint64_t
getU64(const JsonValue &obj, std::string_view key)
{
    const JsonValue *v = obj.find(key);
    return v ? v->asU64() : 0;
}

} // namespace

void
SiteProfile::merge(const SiteProfile &o)
{
    conflictAborts += o.conflictAborts;
    capacityAborts += o.capacityAborts;
    otherAborts += o.otherAborts;
    slowChecks += o.slowChecks;
    slowCost += o.slowCost;
    monitorShiftMax = std::max(monitorShiftMax, o.monitorShiftMax);
    windowReplays += o.windowReplays;
}

bool
SiteProfile::empty() const
{
    return !conflictAborts && !capacityAborts && !otherAborts &&
           !slowChecks && !slowCost && !monitorShiftMax &&
           !windowReplays;
}

void
AppProfile::merge(const AppProfile &o)
{
    runs += o.runs;
    filterHits += o.filterHits;
    txBegins += o.txBegins;
    txCommitted += o.txCommitted;
    slowRegions += o.slowRegions;
    monitorSiteCuts += o.monitorSiteCuts;
    monitorSiteProbes += o.monitorSiteProbes;
    monitorGatedChecks += o.monitorGatedChecks;
    monitorSampledSkips += o.monitorSampledSkips;
    windowReplays += o.windowReplays;
    windowFallbacks += o.windowFallbacks;
    for (const auto &[site, sp] : o.sites)
        sites[site].merge(sp);
}

void
Profile::merge(const Profile &o)
{
    for (const auto &[name, app] : o.apps)
        apps[name].merge(app);
}

void
Profile::write(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kSchema);
    writeBody(w);
    w.endObject();
    os << "\n";
}

void
Profile::writeBody(JsonWriter &w) const
{
    w.key("apps");
    w.beginObject();
    for (const auto &[name, app] : apps) {
        w.key(name);
        w.beginObject();
        w.field("runs", app.runs);
        w.field("filter_hits", app.filterHits);
        w.field("tx_begins", app.txBegins);
        w.field("tx_committed", app.txCommitted);
        w.field("slow_regions", app.slowRegions);
        w.field("monitor_site_cuts", app.monitorSiteCuts);
        w.field("monitor_site_probes", app.monitorSiteProbes);
        w.field("monitor_gated_checks", app.monitorGatedChecks);
        w.field("monitor_sampled_skips", app.monitorSampledSkips);
        w.field("window_replays", app.windowReplays);
        w.field("window_fallbacks", app.windowFallbacks);
        w.key("sites");
        w.beginObject();
        for (const auto &[site, sp] : app.sites) {
            if (sp.empty())
                continue;
            w.key(std::to_string(site));
            w.beginObject();
            w.field("conflict_aborts", sp.conflictAborts);
            w.field("capacity_aborts", sp.capacityAborts);
            w.field("other_aborts", sp.otherAborts);
            w.field("slow_checks", sp.slowChecks);
            w.field("slow_cost", sp.slowCost);
            w.field("monitor_shift_max", sp.monitorShiftMax);
            w.field("window_replays", sp.windowReplays);
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();
}

bool
Profile::parse(const std::string &text, Profile &out, std::string &error)
{
    out = Profile{};
    JsonValue doc;
    if (!parseJson(text, doc, error))
        return false;
    if (!checkSchema(doc, kSchema, error))
        return false;
    return parseBody(doc, out, error);
}

bool
Profile::parseBody(const JsonValue &body, Profile &out,
                   std::string &error)
{
    out = Profile{};
    if (!body.isObject()) {
        error = "profile body is not an object";
        return false;
    }
    const JsonValue *apps = body.find("apps");
    if (!apps || !apps->isObject()) {
        error = "missing apps object";
        return false;
    }
    for (const auto &[name, appv] : apps->object) {
        if (!appv.isObject()) {
            error = "app entry '" + name + "' is not an object";
            return false;
        }
        AppProfile &app = out.apps[name];
        app.runs = getU64(appv, "runs");
        app.filterHits = getU64(appv, "filter_hits");
        app.txBegins = getU64(appv, "tx_begins");
        app.txCommitted = getU64(appv, "tx_committed");
        app.slowRegions = getU64(appv, "slow_regions");
        app.monitorSiteCuts = getU64(appv, "monitor_site_cuts");
        app.monitorSiteProbes = getU64(appv, "monitor_site_probes");
        app.monitorGatedChecks = getU64(appv, "monitor_gated_checks");
        app.monitorSampledSkips = getU64(appv, "monitor_sampled_skips");
        app.windowReplays = getU64(appv, "window_replays");
        app.windowFallbacks = getU64(appv, "window_fallbacks");
        const JsonValue *sites = appv.find("sites");
        if (!sites)
            continue;
        if (!sites->isObject()) {
            error = "sites of '" + name + "' is not an object";
            return false;
        }
        for (const auto &[sitekey, sitev] : sites->object) {
            if (!sitev.isObject()) {
                error = "site entry '" + sitekey + "' is not an object";
                return false;
            }
            errno = 0;
            char *end = nullptr;
            unsigned long long id =
                std::strtoull(sitekey.c_str(), &end, 10);
            if (errno || !end || *end != '\0' || id > 0xffffffffULL) {
                error = "bad site id '" + sitekey + "'";
                return false;
            }
            SiteProfile &sp = app.sites[static_cast<uint32_t>(id)];
            sp.conflictAborts = getU64(sitev, "conflict_aborts");
            sp.capacityAborts = getU64(sitev, "capacity_aborts");
            sp.otherAborts = getU64(sitev, "other_aborts");
            sp.slowChecks = getU64(sitev, "slow_checks");
            sp.slowCost = getU64(sitev, "slow_cost");
            sp.monitorShiftMax = getU64(sitev, "monitor_shift_max");
            sp.windowReplays = getU64(sitev, "window_replays");
        }
    }
    return true;
}

} // namespace txrace::telemetry
