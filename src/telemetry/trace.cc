#include "telemetry/trace.hh"

#include <set>

#include "telemetry/json.hh"

namespace txrace::telemetry {

TraceBuffer::OpenSpan &
TraceBuffer::slot(Tid t, SpanKind kind)
{
    if (t >= open_.size())
        open_.resize(t + 1);
    return open_[t][static_cast<size_t>(kind)];
}

void
TraceBuffer::push(const TraceEvent &ev)
{
    if (events_.size() >= kMaxEvents) {
        ++dropped_;
        return;
    }
    events_.push_back(ev);
}

void
TraceBuffer::beginSpan(Tid t, SpanKind kind, uint64_t ts,
                       const char *name, const char *category)
{
    if (!enabled_)
        return;
    OpenSpan &s = slot(t, kind);
    if (s.open)
        endSpan(t, kind, ts);
    s.open = true;
    s.start = ts;
    s.name = name;
    s.category = category;
}

void
TraceBuffer::endSpan(Tid t, SpanKind kind, uint64_t ts,
                     const char *outcome)
{
    if (!enabled_)
        return;
    OpenSpan &s = slot(t, kind);
    if (!s.open)
        return;
    s.open = false;
    TraceEvent ev;
    ev.ts = s.start;
    ev.dur = ts >= s.start ? ts - s.start : 0;
    ev.tid = t;
    ev.span = true;
    ev.name = s.name;
    ev.category = s.category;
    ev.detail = outcome;
    push(ev);
}

void
TraceBuffer::instant(Tid t, uint64_t ts, const char *name,
                     const char *category, const char *detail)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = t;
    ev.span = false;
    ev.name = name;
    ev.category = category;
    ev.detail = detail;
    push(ev);
}

void
TraceBuffer::closeAll(uint64_t ts)
{
    if (!enabled_)
        return;
    for (Tid t = 0; t < open_.size(); ++t) {
        endSpan(t, SpanKind::Tx, ts, "run-end");
        endSpan(t, SpanKind::Slow, ts, "run-end");
    }
}

void
TraceBuffer::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os, /*pretty=*/false);
    w.beginArray();

    // Thread-name metadata so the viewer labels the tracks.
    std::set<Tid> tids;
    for (const TraceEvent &ev : events_)
        tids.insert(ev.tid);
    for (Tid t : tids) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", uint64_t{1});
        w.field("tid", uint64_t{t});
        w.key("args");
        w.beginObject();
        w.field("name", "thread " + std::to_string(t));
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &ev : events_) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", ev.category);
        w.field("ph", ev.span ? "X" : "i");
        w.field("pid", uint64_t{1});
        w.field("tid", uint64_t{ev.tid});
        w.field("ts", ev.ts);
        if (ev.span)
            w.field("dur", ev.dur);
        else
            w.field("s", "t");  // instant scope: thread
        if (ev.detail != nullptr) {
            w.key("args");
            w.beginObject();
            w.field("detail", ev.detail);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    os << "\n";
}

} // namespace txrace::telemetry
