/**
 * @file
 * The telemetry bundle a Machine owns and a RunResult carries out:
 * typed metrics registry, phase profiler, conflict-attribution map,
 * the trace-span buffer, the flight recorder with its drained
 * forensics captures, and per-site abort/slow-path statistics. One
 * instance per run; the driver moves it from the machine into the
 * RunResult so exporters (metrics JSON, Chrome trace, forensics,
 * profiles) can read it after the machine is gone.
 */

#ifndef TXRACE_TELEMETRY_TELEMETRY_HH
#define TXRACE_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <map>
#include <vector>

#include "telemetry/conflictmap.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/phase.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace txrace::telemetry {

/** Per-static-site counters feeding the persistent profile. */
struct SiteStats
{
    uint64_t conflictAborts = 0;
    uint64_t capacityAborts = 0;
    uint64_t otherAborts = 0;
    uint64_t slowChecks = 0;
    uint64_t slowCost = 0;
    /** Windowed replays triggered at this site (requester side). */
    uint64_t windowReplays = 0;
};

/** Ordered map: deterministic iteration for exporters. */
using SiteStatsMap = std::map<uint32_t, SiteStats>;

struct Telemetry
{
    /** Captures retained per run; later triggers are dropped (the
     *  first few are the interesting ones, and the cap bounds both
     *  report size and capture cost on pathological workloads — each
     *  capture drains and sorts the involved threads' windows, which
     *  is the flight recorder's dominant cost on very racy runs). */
    static constexpr size_t kMaxForensics = 8;

    MetricRegistry registry;
    PhaseProfiler phases;
    ConflictMap conflicts;
    TraceBuffer trace;
    FlightRecorder flight;
    std::vector<ForensicsCapture> forensics;
    SiteStatsMap siteStats;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_TELEMETRY_HH
