/**
 * @file
 * The telemetry bundle a Machine owns and a RunResult carries out:
 * typed metrics registry, phase profiler, conflict-attribution map,
 * and the trace-span buffer. One instance per run; the driver moves
 * it from the machine into the RunResult so exporters (metrics JSON,
 * Chrome trace) can read it after the machine is gone.
 */

#ifndef TXRACE_TELEMETRY_TELEMETRY_HH
#define TXRACE_TELEMETRY_TELEMETRY_HH

#include "telemetry/conflictmap.hh"
#include "telemetry/phase.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace txrace::telemetry {

struct Telemetry
{
    MetricRegistry registry;
    PhaseProfiler phases;
    ConflictMap conflicts;
    TraceBuffer trace;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_TELEMETRY_HH
