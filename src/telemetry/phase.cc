#include "telemetry/phase.hh"

namespace txrace::telemetry {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Fast:
        return "fast";
      case Phase::Slow:
        return "slow";
      case Phase::Degraded:
        return "degraded";
      case Phase::Native:
        return "native";
      case Phase::NumPhases:
        break;
    }
    return "?";
}

uint64_t
PhaseProfiler::count(Phase p) const
{
    uint64_t n = 0;
    for (const PerPhase &row : perThread_)
        n += row[static_cast<size_t>(p)];
    return n;
}

uint64_t
PhaseProfiler::costOf(Phase p) const
{
    uint64_t n = 0;
    for (const PerPhase &row : perThreadCost_)
        n += row[static_cast<size_t>(p)];
    return n;
}

} // namespace txrace::telemetry
