/**
 * @file
 * Per-thread flight recorder: a fixed-capacity, allocation-free ring
 * buffer of recent execution events, recorded from the policy and
 * scheduler hot paths, drained into a causal forensics block when a
 * race is reported or a run ends with a structured RunError.
 *
 * The recorder exists to turn a detection into an explanation: a race
 * report names two static instructions, but the *window* around the
 * detection — the accesses that preceded it, the transaction that
 * aborted, the governor/budget state at the instant — is what a
 * developer (or the replay-based related work) needs to reconstruct
 * cause. Rings are per-thread and bounded (kCapacity events), so the
 * hot-path cost is one branch plus a masked store; nothing allocates
 * after the first event of a thread.
 *
 * Compile-out gate: building with -DTXRACE_NO_FLIGHTREC reduces
 * record() to an empty inline body, so production builds that do not
 * want even the branch pay literally nothing (the bench row
 * BM_EndToEndFlightRec / BM_EndToEndNoFlightRec holds the enabled
 * cost ≤ 3% and the compiled-out cost at zero).
 */

#ifndef TXRACE_TELEMETRY_FLIGHTREC_HH
#define TXRACE_TELEMETRY_FLIGHTREC_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace txrace::telemetry {

/** Kind of one recorded flight event. */
enum class FrKind : uint8_t {
    Access,     ///< instrumented memory access (site + granule)
    TxBegin,    ///< fast-path transaction began
    TxCommit,   ///< transaction committed (arg = base cost inside)
    TxAbort,    ///< transaction aborted (arg = FrAbort reason)
    Sync,       ///< synchronization op performed (site)
    SlowEnter,  ///< thread entered a slow-path episode (arg = reason)
    SlowExit,   ///< slow-path episode ended
    Gov,        ///< governor ladder transition (arg = new level)
    Budget,     ///< budget gate fired (arg = FrBudget detail)
    WindowReplay, ///< windowed slow path replayed (arg = entries)
};

/** Abort reasons carried in FrKind::TxAbort's arg. */
enum class FrAbort : uint8_t {
    Conflict,   ///< real data conflict (victim of requester-wins)
    TxFail,     ///< collateral abort of the TxFail broadcast
    Capacity,   ///< own write/read set overflowed
    Interrupt,  ///< timer interrupt / unknown status
    Retry,      ///< transient retry-bit abort
    HwLimit,    ///< xbegin refused: out of hardware threads
};

/** Budget-gate details carried in FrKind::Budget's arg. */
enum class FrBudget : uint8_t {
    RegionGated,  ///< region admitted uninstrumented
    CheckGated,   ///< slow-path check refused by the window gate
    Unsatisfiable ///< budget declared unsatisfiable
};

/** Display name of a flight-event kind (stable, used in JSON). */
const char *frKindName(FrKind kind);
/** Display name of an abort reason (stable, used in JSON). */
const char *frAbortName(FrAbort reason);
/** Display name of a budget-gate detail (stable, used in JSON). */
const char *frBudgetName(FrBudget detail);

/**
 * One recorded event, packed to 16 bytes (4 per cache line) so a full
 * ring stays small: per-thread ring traffic is the recorder's dominant
 * cost, and it shows up as cache pressure on the simulator's own hot
 * structures, not as store latency. Site/kind/flags share one word;
 * the step is truncated to 32 bits (rings only ever hold a recent
 * window, so relative order within a window is what matters).
 */
struct FrEvent
{
    /** Kind-dependent payload: Access = memory granule; TxAbort =
     *  FrAbort; SlowEnter = sim cost-bucket reason; Gov = new level;
     *  Budget = FrBudget; TxCommit = base cost inside the tx. */
    uint64_t arg = 0;
    /** Scheduler step of the event (low 32 bits). */
    uint32_t step = 0;
    /** site:24 | kind:4 | flags:4; site 0xffffff means "none". */
    uint32_t meta = kNoSite;

    static constexpr uint32_t kNoSite = 0xffffffu;

    static FrEvent
    make(uint64_t step, uint64_t arg, uint32_t site, FrKind kind,
         uint8_t flags)
    {
        FrEvent e;
        e.arg = arg;
        e.step = static_cast<uint32_t>(step);
        e.meta = (site & kNoSite) |
                 (static_cast<uint32_t>(kind) << 24) |
                 (static_cast<uint32_t>(flags & 0xf) << 28);
        return e;
    }

    /** Static IR site (Access/Sync), ~0u when not applicable. */
    uint32_t site() const
    {
        uint32_t s = meta & kNoSite;
        return s == kNoSite ? ~0u : s;
    }
    FrKind kind() const
    {
        return static_cast<FrKind>((meta >> 24) & 0xf);
    }
    /** Bit 0: the access was a write (Access events only). */
    bool isWrite() const { return (meta >> 28) & 1; }
};
static_assert(sizeof(FrEvent) == 16, "FrEvent must stay 16 bytes");

/**
 * The recorder. One instance per Machine (inside the Telemetry
 * bundle); per-thread rings grow lazily on the first event of each
 * thread and are fixed-size after that.
 */
class FlightRecorder
{
  public:
    /** Ring capacity per thread (power of two; the window a
     *  forensics capture can drain). */
    static constexpr uint32_t kCapacity = 64;

#ifdef TXRACE_NO_FLIGHTREC
    static constexpr bool kCompiledIn = false;
#else
    static constexpr bool kCompiledIn = true;
#endif

    /** Turn recording on (MachineConfig::recordFlight). */
    void enable() { enabled_ = kCompiledIn; }

    /** True when record() stores events. */
    bool enabled() const { return enabled_; }

    /** Record one event for thread @p tid. Hot path: one branch, a
     *  possible lazy ring allocation on a thread's first event, then
     *  a masked store. Compiles to nothing under TXRACE_NO_FLIGHTREC. */
    void
    record(uint32_t tid, const FrEvent &e)
    {
#ifdef TXRACE_NO_FLIGHTREC
        (void)tid;
        (void)e;
#else
        if (!enabled_)
            return;
        if (tid >= rings_.size())
            rings_.resize(tid + 1);
        Ring &r = rings_[tid];
        r.ev[r.n & (kCapacity - 1)] = e;
        ++r.n;
#endif
    }

    /** Convenience spelling of record() for call sites. */
    void
    note(uint32_t tid, FrKind kind, uint64_t step, uint32_t site = ~0u,
         uint64_t arg = 0, uint8_t flags = 0)
    {
#ifdef TXRACE_NO_FLIGHTREC
        (void)tid; (void)kind; (void)step; (void)site; (void)arg;
        (void)flags;
#else
        if (!enabled_)
            return;
        record(tid, FrEvent::make(step, arg, site, kind, flags));
#endif
    }

    /** Number of threads that ever recorded an event. */
    size_t threads() const { return rings_.size(); }

    /** Events ever offered by thread @p tid (≥ kept: the ring keeps
     *  the newest kCapacity). */
    uint64_t offered(uint32_t tid) const
    {
        return tid < rings_.size() ? rings_[tid].n : 0;
    }

    /** The retained window of thread @p tid, oldest first. */
    std::vector<FrEvent> window(uint32_t tid) const;

    /** Drop all recorded state (rings stay allocated). */
    void clear();

  private:
    struct Ring
    {
        std::array<FrEvent, kCapacity> ev{};
        uint64_t n = 0;  ///< events ever offered; head = n % kCapacity
    };

    bool enabled_ = false;
    /** vector, not deque: operator[] is on the per-access hot path
     *  and no caller holds a Ring reference across record() calls,
     *  so the cheaper indexing wins and growth may relocate. */
    std::vector<Ring> rings_;
};

/** One thread's contribution to a forensics capture. */
struct ForensicsThread
{
    uint32_t tid = 0;
    /** Governor ladder level at capture time (0 = full fast path). */
    uint64_t govLevel = 0;
    /** Budget sampling shift of the racing site for this thread's
     *  endpoint (0 when monitor mode is off). */
    uint64_t siteShift = 0;
    /** The drained ring, oldest first. */
    std::vector<FrEvent> window;
    /** Distinct granules read / written inside the window (the
     *  aborting transaction's footprint, over-approximated to the
     *  whole retained window). Sorted ascending. */
    std::vector<uint64_t> readGranules;
    std::vector<uint64_t> writeGranules;
};

/** One entry of a capture's last-writer chain. */
struct ForensicsWrite
{
    uint64_t step = 0;
    uint32_t tid = 0;
    uint32_t site = ~0u;
    uint64_t granule = 0;
};

/**
 * A causal snapshot taken at the instant a race was reported or a
 * structured RunError ended the run: the involved threads' retained
 * windows plus the write chain on the racing granule. Serialized as
 * the txrace-forensics-v1 block of the metrics JSON and rendered by
 * `txrace_run --explain`.
 */
struct ForensicsCapture
{
    /** "race" or a RunError kind name (deadlock/truncated/budget). */
    std::string trigger;
    /** Scheduler step of the capture. */
    uint64_t step = 0;
    /** Racing static sites (race trigger only; ~0u otherwise). */
    uint32_t siteA = ~0u;
    uint32_t siteB = ~0u;
    /** Race kind name at detection ("" for RunError triggers). */
    std::string kind;
    /** Racing memory granule (race trigger only). */
    uint64_t granule = 0;
    /** Involved threads' windows, ordered by tid. */
    std::vector<ForensicsThread> threads;
    /** Write events on the racing granule across the drained windows,
     *  step-ordered (the last-writer chain; newest last). */
    std::vector<ForensicsWrite> lastWriters;
};

/**
 * Assemble the per-thread half of a capture from @p rec: drain
 * @p tid's window and compute its read/write footprints.
 */
ForensicsThread drainThread(const FlightRecorder &rec, uint32_t tid);

/**
 * Compute the last-writer chain over already-drained @p threads:
 * every Access-write event on @p granule, step-ordered, capped to the
 * newest @p limit entries.
 */
std::vector<ForensicsWrite>
lastWriterChain(const std::vector<ForensicsThread> &threads,
                uint64_t granule, size_t limit = 8);

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_FLIGHTREC_HH
