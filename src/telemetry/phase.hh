/**
 * @file
 * The phase profiler: attributes every executed scheduler step to the
 * detection mode the acting thread was in, per thread — the data
 * behind the paper's Figure 10 "time in fast path vs slow path"
 * breakdown, generalized with the governor's degraded modes.
 */

#ifndef TXRACE_TELEMETRY_PHASE_HH
#define TXRACE_TELEMETRY_PHASE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace txrace::telemetry {

/** Execution mode a thread occupies during one scheduler step. */
enum class Phase : uint8_t {
    Fast,      ///< inside an HTM-monitored transaction
    Slow,      ///< software happens-before checking episode
    Degraded,  ///< governor-forced slow/sampled region
    Native,    ///< outside any monitored region (or untransacted run)
    NumPhases,
};

constexpr size_t kNumPhases = static_cast<size_t>(Phase::NumPhases);

/** Display name of a phase. */
const char *phaseName(Phase p);

/**
 * Per-thread step attribution. One note() per executed scheduler
 * step; the counts over all threads and phases sum to exactly the
 * number of steps noted (total()), which the accounting tests assert.
 *
 * A second, independent dimension attributes virtual *cost* the same
 * way (noteCost, fed from Machine::addCost): per-(thread, phase) cost
 * cells partition the run's total cost exactly, so budget accounting
 * can ask "how much was spent while degraded" and trust the answer.
 */
class PhaseProfiler
{
  public:
    using PerPhase = std::array<uint64_t, kNumPhases>;

    /** Attribute one step of thread @p t to phase @p p. */
    void
    note(Tid t, Phase p)
    {
        if (t >= perThread_.size())
            perThread_.resize(t + 1);
        ++perThread_[t][static_cast<size_t>(p)];
        ++total_;
    }

    /** Attribute @p c cost units of thread @p t to phase @p p. */
    void
    noteCost(Tid t, Phase p, uint64_t c)
    {
        if (t >= perThreadCost_.size())
            perThreadCost_.resize(t + 1);
        perThreadCost_[t][static_cast<size_t>(p)] += c;
        totalCost_ += c;
    }

    /** Steps noted in total (== sum over threads and phases). */
    uint64_t total() const { return total_; }

    /** Steps attributed to @p p across all threads. */
    uint64_t count(Phase p) const;

    /** Cost noted in total (== sum over threads and phases). */
    uint64_t totalCost() const { return totalCost_; }

    /** Cost attributed to @p p across all threads. */
    uint64_t costOf(Phase p) const;

    /** Per-thread breakdown, indexed by tid. */
    const std::vector<PerPhase> &perThread() const { return perThread_; }

    /** Per-thread cost breakdown, indexed by tid. */
    const std::vector<PerPhase> &
    perThreadCost() const
    {
        return perThreadCost_;
    }

  private:
    std::vector<PerPhase> perThread_;
    std::vector<PerPhase> perThreadCost_;
    uint64_t total_ = 0;
    uint64_t totalCost_ = 0;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_PHASE_HH
