#include "telemetry/conflictmap.hh"

#include <algorithm>

namespace txrace::telemetry {

void
ConflictMap::record(uint64_t line, uint64_t granule, uint32_t site)
{
    LineConflicts &lc = lines_[line];
    lc.line = line;
    ++lc.conflicts;
    lc.granules.insert(granule);
    if (site != ~0u)
        ++lc.sites[site];
    ++total_;
}

std::vector<ConflictHotLine>
ConflictMap::topN(size_t n, size_t sitesPerLine) const
{
    std::vector<const LineConflicts *> order;
    order.reserve(lines_.size());
    for (const auto &[line, lc] : lines_)
        order.push_back(&lc);
    std::sort(order.begin(), order.end(),
              [](const LineConflicts *a, const LineConflicts *b) {
                  if (a->conflicts != b->conflicts)
                      return a->conflicts > b->conflicts;
                  return a->line < b->line;
              });
    if (order.size() > n)
        order.resize(n);

    std::vector<ConflictHotLine> out;
    out.reserve(order.size());
    for (const LineConflicts *lc : order) {
        ConflictHotLine hot;
        hot.line = lc->line;
        hot.conflicts = lc->conflicts;
        hot.distinctGranules = lc->granules.size();
        hot.falseSharingCandidate = lc->falseSharingCandidate();
        hot.sites.assign(lc->sites.begin(), lc->sites.end());
        std::sort(hot.sites.begin(), hot.sites.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });
        if (hot.sites.size() > sitesPerLine)
            hot.sites.resize(sitesPerLine);
        out.push_back(std::move(hot));
    }
    return out;
}

} // namespace txrace::telemetry
