/**
 * @file
 * Metric primitives of the telemetry layer: interned metric ids and
 * the log-bucket histogram.
 *
 * The registry (registry.hh) hands out dense integer ids at
 * registration time; hot paths then update metrics by indexing a
 * plain vector — no string hashing or map lookup per event, which is
 * what the old string-keyed StatSet cost on every counter bump.
 */

#ifndef TXRACE_TELEMETRY_METRIC_HH
#define TXRACE_TELEMETRY_METRIC_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace txrace::telemetry {

/** Dense id of a registered metric (index into registry storage). */
using MetricId = uint32_t;

/** Sentinel for "no metric registered". */
constexpr MetricId kNoMetric = ~0u;

/** What a registered metric is. */
enum class MetricKind : uint8_t {
    Counter,    ///< monotonically accumulated 64-bit sum
    Gauge,      ///< last-written 64-bit value
    Histogram,  ///< log-bucket value distribution
};

/** Display name of a metric kind. */
const char *metricKindName(MetricKind kind);

/**
 * HDR-style log-bucket histogram of non-negative 64-bit values.
 *
 * Bucket 0 holds exactly the value 0; bucket i >= 1 holds the
 * half-open range [2^(i-1), 2^i). Recording is O(1) (one bit-width
 * computation and a vector increment), merging is element-wise, and
 * the bucket boundaries are identical across runs and platforms, so
 * exported histograms are deterministic.
 */
class LogHistogram
{
  public:
    /** Bucket 0 plus one bucket per possible bit width of uint64_t. */
    static constexpr size_t kNumBuckets = 65;

    /** Bucket index the value @p v falls into. */
    static size_t
    bucketOf(uint64_t v)
    {
        return static_cast<size_t>(std::bit_width(v));
    }

    /** Inclusive lower bound of bucket @p i. */
    static uint64_t
    bucketLo(size_t i)
    {
        return i == 0 ? 0 : uint64_t{1} << (i - 1);
    }

    /** Exclusive upper bound of bucket @p i (0 has the single value 0). */
    static uint64_t
    bucketHi(size_t i)
    {
        return i == 0 ? 1 : uint64_t{1} << i;
    }

    /** Record one observation. */
    void
    observe(uint64_t v)
    {
        ++counts_[bucketOf(v)];
        ++count_;
        sum_ += v;
        max_ = std::max(max_, v);
    }

    /** Record @p n identical observations of @p v in O(1). */
    void
    observeMany(uint64_t v, uint64_t n)
    {
        if (n == 0)
            return;
        counts_[bucketOf(v)] += n;
        count_ += n;
        sum_ += v * n;
        max_ = std::max(max_, v);
    }

    /** Element-wise merge of another histogram into this one. */
    void
    merge(const LogHistogram &other)
    {
        for (size_t i = 0; i < kNumBuckets; ++i)
            counts_[i] += other.counts_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        max_ = std::max(max_, other.max_);
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t max() const { return max_; }

    /** Observations in bucket @p i. */
    uint64_t bucketCount(size_t i) const { return counts_[i]; }

    /** Mean of all observations (0 when empty). */
    double
    mean() const
    {
        return count_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(count_);
    }

  private:
    std::array<uint64_t, kNumBuckets> counts_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_METRIC_HH
