#include "flightrec.hh"

#include <algorithm>

namespace txrace::telemetry {

const char *
frKindName(FrKind kind)
{
    switch (kind) {
      case FrKind::Access:    return "access";
      case FrKind::TxBegin:   return "tx_begin";
      case FrKind::TxCommit:  return "tx_commit";
      case FrKind::TxAbort:   return "tx_abort";
      case FrKind::Sync:      return "sync";
      case FrKind::SlowEnter: return "slow_enter";
      case FrKind::SlowExit:  return "slow_exit";
      case FrKind::Gov:       return "gov";
      case FrKind::Budget:    return "budget";
      case FrKind::WindowReplay: return "window_replay";
    }
    return "?";
}

const char *
frAbortName(FrAbort reason)
{
    switch (reason) {
      case FrAbort::Conflict:  return "conflict";
      case FrAbort::TxFail:    return "txfail";
      case FrAbort::Capacity:  return "capacity";
      case FrAbort::Interrupt: return "interrupt";
      case FrAbort::Retry:     return "retry";
      case FrAbort::HwLimit:   return "hwlimit";
    }
    return "?";
}

const char *
frBudgetName(FrBudget detail)
{
    switch (detail) {
      case FrBudget::RegionGated:   return "region_gated";
      case FrBudget::CheckGated:    return "check_gated";
      case FrBudget::Unsatisfiable: return "unsatisfiable";
    }
    return "?";
}

std::vector<FrEvent>
FlightRecorder::window(uint32_t tid) const
{
#ifdef TXRACE_NO_FLIGHTREC
    (void)tid;
    return {};
#else
    std::vector<FrEvent> out;
    if (tid >= rings_.size())
        return out;
    const Ring &r = rings_[tid];
    uint64_t kept = std::min<uint64_t>(r.n, kCapacity);
    out.reserve(kept);
    for (uint64_t i = r.n - kept; i < r.n; ++i)
        out.push_back(r.ev[i & (kCapacity - 1)]);
    return out;
#endif
}

void
FlightRecorder::clear()
{
    for (Ring &r : rings_) {
        r.ev.fill(FrEvent{});
        r.n = 0;
    }
}

ForensicsThread
drainThread(const FlightRecorder &rec, uint32_t tid)
{
    ForensicsThread t;
    t.tid = tid;
    t.window = rec.window(tid);
    for (const FrEvent &e : t.window) {
        if (e.kind() != FrKind::Access)
            continue;
        auto &set = e.isWrite() ? t.writeGranules : t.readGranules;
        set.push_back(e.arg);
    }
    auto uniq = [](std::vector<uint64_t> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    uniq(t.readGranules);
    uniq(t.writeGranules);
    return t;
}

std::vector<ForensicsWrite>
lastWriterChain(const std::vector<ForensicsThread> &threads,
                uint64_t granule, size_t limit)
{
    std::vector<ForensicsWrite> chain;
    for (const ForensicsThread &t : threads)
        for (const FrEvent &e : t.window)
            if (e.kind() == FrKind::Access && e.isWrite() &&
                e.arg == granule)
                chain.push_back(
                    ForensicsWrite{e.step, t.tid, e.site(), e.arg});
    // Step order; ties broken by tid so the chain is deterministic even
    // if two threads touched the granule on the same scheduler step.
    std::sort(chain.begin(), chain.end(),
              [](const ForensicsWrite &a, const ForensicsWrite &b) {
                  if (a.step != b.step)
                      return a.step < b.step;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.site < b.site;
              });
    if (chain.size() > limit)
        chain.erase(chain.begin(), chain.end() - limit);
    return chain;
}

} // namespace txrace::telemetry
