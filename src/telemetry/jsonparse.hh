/**
 * @file
 * Minimal recursive-descent JSON reader for the telemetry layer.
 *
 * The writer side (json.hh) streams; nothing in the repo could *read*
 * JSON until --profile-in needed to. This parser covers exactly the
 * subset our own writer emits — objects, arrays, strings with the
 * standard escapes, numbers, booleans, null — and two deliberate
 * choices for the profile use case:
 *
 *  - Numbers keep their raw token text and are converted on demand
 *    (asU64 via strtoull), so 64-bit counters round-trip exactly;
 *    routing through double would corrupt values above 2^53.
 *  - Object members preserve insertion order (vector of pairs, not a
 *    map), so a parse → rewrite cycle of our own deterministic output
 *    stays byte-stable.
 */

#ifndef TXRACE_TELEMETRY_JSONPARSE_HH
#define TXRACE_TELEMETRY_JSONPARSE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace txrace::telemetry {

/** A parsed JSON value. */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Object, Array };

    Type type = Type::Null;
    bool boolean = false;
    /** Raw number token, e.g. "18446744073709551615" or "-1.5e3". */
    std::string number;
    std::string str;
    std::vector<std::pair<std::string, JsonValue>> object;
    std::vector<JsonValue> array;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** The number as uint64_t (0 when not a non-negative integer). */
    uint64_t asU64() const;
    /** The number as double (0.0 when not a number). */
    double asDouble() const;
};

/**
 * Parse @p text as one JSON document. Returns true and fills @p out
 * on success; returns false and describes the problem in @p error
 * (with a byte offset) on malformed input.
 */
bool parseJson(std::string_view text, JsonValue &out, std::string &error);

/**
 * Validate the `schema` member of a versioned document root against
 * @p expect (e.g. "txrace-profile-v1"). On mismatch the error names
 * the offending JSON path and what was actually found — missing key,
 * wrong type, or unknown version — so fleet tooling can tell a stale
 * file from a corrupt one. Every versioned loader goes through this;
 * none of them may crash on foreign input.
 */
bool checkSchema(const JsonValue &doc, std::string_view expect,
                 std::string &error);

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_JSONPARSE_HH
