#include "telemetry/registry.hh"

#include "support/log.hh"

namespace txrace::telemetry {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

MetricId
MetricRegistry::intern(const std::string &name, MetricKind kind)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        const MetricInfo &info = metrics_[it->second];
        if (info.kind != kind)
            panic("MetricRegistry: '%s' re-registered as %s but is a %s",
                  name.c_str(), metricKindName(kind),
                  metricKindName(info.kind));
        return it->second;
    }
    MetricId id = static_cast<MetricId>(metrics_.size());
    uint32_t slot;
    if (kind == MetricKind::Histogram) {
        slot = static_cast<uint32_t>(hists_.size());
        hists_.emplace_back();
    } else {
        slot = static_cast<uint32_t>(values_.size());
        values_.push_back(0);
    }
    metrics_.push_back({name, kind, slot});
    index_.emplace(name, id);
    return id;
}

MetricId
MetricRegistry::counter(const std::string &name)
{
    return intern(name, MetricKind::Counter);
}

MetricId
MetricRegistry::gauge(const std::string &name)
{
    return intern(name, MetricKind::Gauge);
}

MetricId
MetricRegistry::histogram(const std::string &name)
{
    return intern(name, MetricKind::Histogram);
}

MetricId
MetricRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? kNoMetric : it->second;
}

uint64_t
MetricRegistry::valueByName(const std::string &name) const
{
    MetricId id = find(name);
    if (id == kNoMetric || metrics_[id].kind == MetricKind::Histogram)
        return 0;
    return value(id);
}

void
MetricRegistry::exportTo(StatSet &out) const
{
    for (const MetricInfo &info : metrics_) {
        if (info.kind == MetricKind::Histogram)
            continue;
        uint64_t v = values_[info.slot];
        if (v != 0)
            out.set(info.name, v);
    }
}

} // namespace txrace::telemetry
