/**
 * @file
 * Minimal streaming JSON writer for the telemetry exporters. No
 * external dependency; emits strictly valid JSON (escaped strings,
 * comma placement handled by a nesting stack).
 */

#ifndef TXRACE_TELEMETRY_JSON_HH
#define TXRACE_TELEMETRY_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace txrace::telemetry {

/**
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("steps"); w.value(uint64_t{42});
 *   w.key("modes"); w.beginArray(); w.value("fast"); w.endArray();
 *   w.endObject();
 *
 * Keys must be emitted before each value inside an object; values
 * inside arrays are emitted directly. Misuse (value without key in an
 * object, unbalanced end) trips panic() — exporters are covered by
 * the schema tests, so this is a development guard, not error
 * handling.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {
    }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next value (objects only). */
    void key(const std::string &name);

    void value(const std::string &s);
    void value(const char *s);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(double v);
    void value(bool b);
    void valueNull();

    /** Shorthand: key + value. */
    template <typename T>
    void
    field(const std::string &name, T v)
    {
        key(name);
        value(v);
    }

  private:
    enum class Scope : uint8_t { Object, Array };

    /** Comma/indent bookkeeping before any value or key. */
    void preValue();
    void preKey();
    void newline();
    void writeEscaped(const std::string &s);

    std::ostream &os_;
    bool pretty_;
    std::vector<Scope> stack_;
    /** Whether the current scope already holds an element. */
    std::vector<bool> hasElement_;
    /** A key was just written; next value belongs to it. */
    bool pendingKey_ = false;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_JSON_HH
