#include "telemetry/servicestats.hh"

namespace txrace::telemetry {

std::vector<std::pair<std::string, uint64_t>>
ServiceStats::gauges(const std::vector<uint64_t> &shardDepths,
                     uint64_t ingestPerSec) const
{
    uint64_t mn = 0, mx = 0;
    if (!shardDepths.empty()) {
        mn = *std::min_element(shardDepths.begin(), shardDepths.end());
        mx = *std::max_element(shardDepths.begin(), shardDepths.end());
    }
    return {
        {"jobs_ingested", jobsIngested},
        {"duplicates_skipped", duplicatesSkipped},
        {"batches", batches},
        {"ingest_per_sec", ingestPerSec},
        {"shards", uint64_t(shardDepths.size())},
        {"shard_depth_min", mn},
        {"shard_depth_max", mx},
        {"checkpoints", checkpoints},
        {"checkpoint_last_us", checkpointLastMicros},
        {"checkpoint_max_us", checkpointMaxMicros},
        {"deltas_emitted", deltasEmitted},
        {"resumes", resumes},
    };
}

} // namespace txrace::telemetry
