/**
 * @file
 * Bounded timeline of transaction/slow-path spans and abort instants,
 * exportable as Chrome trace-event JSON (chrome://tracing, Perfetto).
 *
 * Virtual time (scheduler steps) maps to the trace format's
 * microsecond timestamps 1:1. Transactions and slow-path episodes
 * become complete ("ph":"X") duration events on their thread's track;
 * aborts, TxFail publications, loop cuts, and fault-plan transitions
 * become instant ("ph":"i") events. Disabled (the default) it costs
 * one branch per would-be record.
 */

#ifndef TXRACE_TELEMETRY_TRACE_HH
#define TXRACE_TELEMETRY_TRACE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "support/types.hh"

namespace txrace::telemetry {

/** One recorded trace event (span when dur is meaningful). */
struct TraceEvent
{
    uint64_t ts = 0;   ///< start step
    uint64_t dur = 0;  ///< steps covered (spans only)
    Tid tid = 0;
    bool span = false;
    /** Static names: callers pass string literals only. */
    const char *name = "";
    const char *category = "";
    /** Optional static detail (e.g. span outcome); nullptr = none. */
    const char *detail = nullptr;
};

class TraceBuffer
{
  public:
    /** Hard cap on stored events; further records count as dropped. */
    static constexpr size_t kMaxEvents = 1 << 20;

    /** Kinds of per-thread open spans tracked concurrently. */
    enum class SpanKind : uint8_t { Tx = 0, Slow = 1 };

    void enable() { enabled_ = true; }
    bool enabled() const { return enabled_; }

    /** Open a span of @p kind for thread @p t at step @p ts. An
     *  already-open span of the same kind is closed first (zero-length
     *  spans are kept: they mark immediate aborts). */
    void beginSpan(Tid t, SpanKind kind, uint64_t ts,
                   const char *name, const char *category);

    /** Close thread @p t's open span of @p kind at step @p ts with an
     *  optional outcome label. No-op if none is open. */
    void endSpan(Tid t, SpanKind kind, uint64_t ts,
                 const char *outcome = nullptr);

    /** Record an instant event. */
    void instant(Tid t, uint64_t ts, const char *name,
                 const char *category, const char *detail = nullptr);

    /** Close every still-open span at @p ts (end of run). */
    void closeAll(uint64_t ts);

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events rejected because the buffer was full. */
    uint64_t dropped() const { return dropped_; }

    /**
     * Emit the buffer as a Chrome trace-event JSON array. Includes
     * one metadata ("ph":"M") thread-name record per thread seen, a
     * complete ("ph":"X") event per span, and an instant ("ph":"i")
     * event per instant.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    struct OpenSpan
    {
        bool open = false;
        uint64_t start = 0;
        const char *name = "";
        const char *category = "";
    };

    /** Append with capacity check; counts drops past the cap. */
    void push(const TraceEvent &ev);
    OpenSpan &slot(Tid t, SpanKind kind);

    bool enabled_ = false;
    uint64_t dropped_ = 0;
    std::vector<TraceEvent> events_;
    /** Per-thread open spans, indexed [tid][kind]. */
    std::vector<std::array<OpenSpan, 2>> open_;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_TRACE_HH
