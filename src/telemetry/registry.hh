/**
 * @file
 * The typed metrics registry: counters, gauges, and log-bucket
 * histograms registered once by name, updated through dense interned
 * ids.
 *
 * Registration happens at machine/policy construction (cold);
 * updates happen in the scheduler step loop (hot) and cost one vector
 * index. Ids are assigned in registration order, so identical
 * (machine, policy) setups produce identical id assignments across
 * runs — the determinism the byte-identical-stats tests rely on.
 *
 * The registry exports into the legacy string-keyed StatSet
 * (exportTo) so every existing consumer of RunResult::stats — the
 * bench harnesses, `txrace_run --stats`, the determinism tests —
 * keeps working unchanged, with identical counter names.
 */

#ifndef TXRACE_TELEMETRY_REGISTRY_HH
#define TXRACE_TELEMETRY_REGISTRY_HH

#include <map>
#include <string>
#include <vector>

#include "support/stats.hh"
#include "telemetry/metric.hh"

namespace txrace::telemetry {

/** Name + kind + storage slot of one registered metric. */
struct MetricInfo
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** Index into the value or histogram store (by kind). */
    uint32_t slot = 0;
};

class MetricRegistry
{
  public:
    /**
     * Intern @p name as a counter and return its id. Re-registering
     * the same name returns the same id; registering it under a
     * different kind is a caller bug and panics.
     */
    MetricId counter(const std::string &name);

    /** Intern @p name as a gauge (set() semantics on export). */
    MetricId gauge(const std::string &name);

    /** Intern @p name as a log-bucket histogram. */
    MetricId histogram(const std::string &name);

    /** Add @p delta to counter/gauge @p id. Hot path: one index. */
    void
    add(MetricId id, uint64_t delta = 1)
    {
        values_[metrics_[id].slot] += delta;
    }

    /** Set counter/gauge @p id to an absolute value. */
    void
    set(MetricId id, uint64_t value)
    {
        values_[metrics_[id].slot] = value;
    }

    /** Record one observation into histogram @p id. */
    void
    observe(MetricId id, uint64_t value)
    {
        hists_[metrics_[id].slot].observe(value);
    }

    /**
     * Merge a histogram accumulated outside the registry into
     * histogram @p id (bulk transfer of pre-aggregated subsystem
     * telemetry, e.g. the HTM line directory's probe lengths, at
     * end of run).
     */
    void
    mergeHistogram(MetricId id, const LogHistogram &other)
    {
        hists_[metrics_[id].slot].merge(other);
    }

    /** Current value of counter/gauge @p id. */
    uint64_t
    value(MetricId id) const
    {
        return values_[metrics_[id].slot];
    }

    /** Histogram @p id (must have been registered as one). */
    const LogHistogram &
    hist(MetricId id) const
    {
        return hists_[metrics_[id].slot];
    }

    /** Id of @p name, or kNoMetric if never registered. */
    MetricId find(const std::string &name) const;

    /** Value of counter/gauge @p name; 0 if unregistered. */
    uint64_t valueByName(const std::string &name) const;

    /** All registered metrics in id order. */
    const std::vector<MetricInfo> &metrics() const { return metrics_; }

    /** Number of registered metrics. */
    size_t size() const { return metrics_.size(); }

    /**
     * Write every non-zero counter and gauge into @p out under its
     * registered name (set semantics: safe to call more than once).
     * Zero-valued metrics are skipped so dumps keep the old StatSet
     * "counters spring into existence at first touch" shape.
     */
    void exportTo(StatSet &out) const;

  private:
    MetricId intern(const std::string &name, MetricKind kind);

    std::vector<MetricInfo> metrics_;
    /** Registration-time name -> id index (never touched when hot). */
    std::map<std::string, MetricId> index_;
    std::vector<uint64_t> values_;
    std::vector<LogHistogram> hists_;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_REGISTRY_HH
