/**
 * @file
 * Conflict-abort attribution: which cache lines the HTM's conflicts
 * land on, which static IR sites touch them, and whether a line looks
 * like a false-sharing hotspot.
 *
 * TxRace's slow path exists to separate true races from cache-line
 * false sharing (paper Table 2); this map gives the same signal
 * observationally, without a slow-path episode: a line whose
 * conflicts involve several distinct sub-line granules is a
 * false-sharing candidate (different variables packed into one 64 B
 * line), while single-granule conflict lines point at true sharing.
 */

#ifndef TXRACE_TELEMETRY_CONFLICTMAP_HH
#define TXRACE_TELEMETRY_CONFLICTMAP_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace txrace::telemetry {

/** Aggregated conflict telemetry for one cache line. */
struct LineConflicts
{
    uint64_t line = 0;       ///< cache-line index
    uint64_t conflicts = 0;  ///< conflict aborts attributed to it
    /** Distinct sub-line granules the winning accesses touched. */
    std::set<uint64_t> granules;
    /** Winning (requester) static instruction -> conflicts caused. */
    std::map<uint32_t, uint64_t> sites;

    /** Conflicts spread over >1 granule of one line: the classic
     *  false-sharing shape. */
    bool falseSharingCandidate() const { return granules.size() > 1; }
};

/** One entry of the exported top-N heatmap. */
struct ConflictHotLine
{
    uint64_t line = 0;
    uint64_t conflicts = 0;
    uint64_t distinctGranules = 0;
    bool falseSharingCandidate = false;
    /** (instruction id, conflicts) pairs, hottest first. */
    std::vector<std::pair<uint32_t, uint64_t>> sites;
};

class ConflictMap
{
  public:
    /**
     * Attribute one conflict abort to cache line @p line. @p granule
     * is the memory granule the winning access hit (sub-line
     * position) and @p site its static instruction id (~0u when
     * unknown, e.g. the TxFail broadcast).
     */
    void record(uint64_t line, uint64_t granule, uint32_t site);

    /** Total conflicts recorded. */
    uint64_t total() const { return total_; }

    /** Lines attributed so far. */
    size_t lineCount() const { return lines_.size(); }

    /** Per-line data (keyed and iterated by line: deterministic). */
    const std::map<uint64_t, LineConflicts> &lines() const
    {
        return lines_;
    }

    /**
     * The @p n hottest lines by conflict count (ties broken by line
     * index: deterministic), each with its @p sitesPerLine hottest
     * sites.
     */
    std::vector<ConflictHotLine> topN(size_t n,
                                      size_t sitesPerLine = 3) const;

  private:
    std::map<uint64_t, LineConflicts> lines_;
    uint64_t total_ = 0;
};

} // namespace txrace::telemetry

#endif // TXRACE_TELEMETRY_CONFLICTMAP_HH
