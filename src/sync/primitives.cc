#include "sync/primitives.hh"

#include "support/log.hh"

namespace txrace::sync {

bool
SyncTables::lockTryAcquire(Tid t, uint64_t id)
{
    Mutex &m = mutexes_[id];
    if (m.owner == kNoTid) {
        m.owner = t;
        return true;
    }
    if (m.owner == t)
        panic("SyncTables: thread %u re-acquiring mutex %llu", t,
              static_cast<unsigned long long>(id));
    return false;
}

void
SyncTables::lockEnqueue(Tid t, uint64_t id)
{
    mutexes_[id].waiters.push_back(t);
}

Tid
SyncTables::lockRelease(Tid t, uint64_t id)
{
    auto it = mutexes_.find(id);
    if (it == mutexes_.end() || it->second.owner != t)
        panic("SyncTables: thread %u releasing mutex %llu it does not "
              "hold", t, static_cast<unsigned long long>(id));
    Mutex &m = it->second;
    if (m.waiters.empty()) {
        m.owner = kNoTid;
        return kNoTid;
    }
    Tid next = m.waiters.front();
    m.waiters.pop_front();
    m.owner = next;
    return next;
}

Tid
SyncTables::lockOwner(uint64_t id) const
{
    auto it = mutexes_.find(id);
    return it == mutexes_.end() ? kNoTid : it->second.owner;
}

bool
SyncTables::condTryWait(uint64_t id)
{
    Cond &c = conds_[id];
    if (c.banked > 0) {
        --c.banked;
        return true;
    }
    return false;
}

void
SyncTables::condEnqueue(Tid t, uint64_t id)
{
    conds_[id].waiters.push_back(t);
}

Tid
SyncTables::condSignal(uint64_t id)
{
    Cond &c = conds_[id];
    if (!c.waiters.empty()) {
        Tid woken = c.waiters.front();
        c.waiters.pop_front();
        return woken;
    }
    ++c.banked;
    return kNoTid;
}

std::vector<Tid>
SyncTables::barrierArrive(Tid t, uint64_t id, uint64_t participants)
{
    if (participants == 0)
        panic("SyncTables: barrier %llu with zero participants",
              static_cast<unsigned long long>(id));
    Barrier &b = barriers_[id];
    b.arrived.push_back(t);
    if (b.arrived.size() < participants)
        return {};
    std::vector<Tid> released = std::move(b.arrived);
    b.arrived.clear();
    return released;
}

bool
SyncTables::anyWaiters() const
{
    for (const auto &[id, m] : mutexes_)
        if (!m.waiters.empty())
            return true;
    for (const auto &[id, c] : conds_)
        if (!c.waiters.empty())
            return true;
    for (const auto &[id, b] : barriers_)
        if (!b.arrived.empty())
            return true;
    return false;
}

} // namespace txrace::sync
