/**
 * @file
 * Blocking synchronization objects of the simulated machine: mutexes,
 * counting condvars (semaphore semantics, so no lost wakeups), and
 * barriers.
 *
 * This module owns *who waits and who runs*; the happens-before
 * consequences of these operations are tracked separately by the
 * detector, which both the TSan baseline and TxRace keep running even
 * on the fast path (paper §5).
 */

#ifndef TXRACE_SYNC_PRIMITIVES_HH
#define TXRACE_SYNC_PRIMITIVES_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace txrace::sync {

/**
 * The synchronization-object tables of one simulated machine.
 *
 * All wake decisions are FIFO, keeping runs deterministic for a given
 * scheduler seed.
 */
class SyncTables
{
  public:
    /** @name Mutexes */
    /** @{ */
    /** Try to take mutex @p id; false means the caller must block. */
    bool lockTryAcquire(Tid t, uint64_t id);

    /** Queue @p t as waiting for mutex @p id. */
    void lockEnqueue(Tid t, uint64_t id);

    /**
     * Release mutex @p id held by @p t. If a waiter exists, ownership
     * transfers to it and its tid is returned (the caller unblocks
     * it); otherwise returns kNoTid. Panics if @p t is not the owner.
     */
    Tid lockRelease(Tid t, uint64_t id);

    /** Current owner of mutex @p id (kNoTid if free). */
    Tid lockOwner(uint64_t id) const;
    /** @} */

    /** @name Counting condvars (semaphores) */
    /** @{ */
    /** Consume a banked post if available; false = caller blocks. */
    bool condTryWait(uint64_t id);

    /** Queue @p t as waiting on condvar @p id. */
    void condEnqueue(Tid t, uint64_t id);

    /**
     * Post condvar @p id. Wakes and returns the oldest waiter, or
     * banks the post and returns kNoTid.
     */
    Tid condSignal(uint64_t id);
    /** @} */

    /** @name Barriers */
    /** @{ */
    /**
     * Thread @p t arrives at barrier @p id expecting @p participants
     * arrivals. When the arrival completes the barrier, the full
     * participant list (including @p t) is returned and the barrier
     * resets; otherwise the caller blocks and an empty vector is
     * returned.
     */
    std::vector<Tid> barrierArrive(Tid t, uint64_t id,
                                   uint64_t participants);
    /** @} */

    /** True if any object has blocked waiters (deadlock diagnosis). */
    bool anyWaiters() const;

  private:
    struct Mutex
    {
        Tid owner = kNoTid;
        std::deque<Tid> waiters;
    };

    struct Cond
    {
        uint64_t banked = 0;
        std::deque<Tid> waiters;
    };

    struct Barrier
    {
        std::vector<Tid> arrived;
    };

    std::unordered_map<uint64_t, Mutex> mutexes_;
    std::unordered_map<uint64_t, Cond> conds_;
    std::unordered_map<uint64_t, Barrier> barriers_;
};

} // namespace txrace::sync

#endif // TXRACE_SYNC_PRIMITIVES_HH
