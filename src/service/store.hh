/**
 * @file
 * The persistent findings store: txrace-findings-v1.
 *
 * One store file is the durable form of an Aggregator plus the
 * campaign identity that produced it. Like the profile store it is
 * byte-deterministic (sorted maps, integer counters) and merges
 * commutatively — two stores produced independently on different
 * hosts union into the same bytes in either merge order, provided
 * they describe the SAME campaign identity (merging unrelated
 * campaigns is refused: their job-id spaces and ground truths are
 * incomparable).
 *
 * The campaign identity block holds exactly the fields that
 * determine the deterministic report — master seed, strategy, mode,
 * slow path, apps, seed budget, workers, scale, calibration — and
 * none of the execution facts (jobs, shards, state dir), so a store
 * written under `--jobs 8 --shards 16` is byte-identical to one
 * written under `--jobs 1 --shards 1`.
 */

#ifndef TXRACE_SERVICE_STORE_HH
#define TXRACE_SERVICE_STORE_HH

#include <ostream>
#include <string>

#include "campaign/aggregate.hh"
#include "campaign/campaign.hh"

namespace txrace::telemetry {
class JsonWriter;
struct JsonValue;
} // namespace txrace::telemetry

namespace txrace::service {

/** Write the campaign identity fields into an open object. */
void writeCampaignIdentity(telemetry::JsonWriter &w,
                           const campaign::CampaignConfig &cfg);

/**
 * Read identity fields written by writeCampaignIdentity into @p cfg
 * (execution knobs — jobs, shards, queue — are left untouched).
 */
bool readCampaignIdentity(const telemetry::JsonValue &v,
                          campaign::CampaignConfig &cfg,
                          std::string &error);

/** Whether two configs name the same campaign (identity subset). */
bool sameCampaignIdentity(const campaign::CampaignConfig &a,
                          const campaign::CampaignConfig &b);

/** A findings store: campaign identity + accumulated aggregate. */
struct FindingsStore
{
    campaign::CampaignConfig campaign;
    campaign::Aggregator aggregate;

    /** Serialize as txrace-findings-v1 (byte-deterministic). */
    void write(std::ostream &os) const;

    /**
     * Parse a txrace-findings-v1 document. False with a message in
     * @p error on malformed input, schema/version mismatch, or an
     * internally inconsistent aggregate.
     */
    static bool parse(const std::string &text, FindingsStore &out,
                      std::string &error);

    /**
     * Union @p o into this store (cross-host merge). Commutative:
     * merge(A, B) and merge(B, A) serialize to identical bytes.
     * False when the identities differ — the error names both
     * campaigns. The two stores must cover disjoint job-id sets
     * (hosts partition the matrix); see Aggregator::merge.
     */
    bool merge(const FindingsStore &o, std::string &error);
};

} // namespace txrace::service

#endif // TXRACE_SERVICE_STORE_HH
