#include "service/checkpoint.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "service/store.hh"
#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"

namespace txrace::service {

namespace {

constexpr const char *kSchema = "txrace-checkpoint-v1";

uint64_t
getU64(const telemetry::JsonValue &obj, std::string_view key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v ? v->asU64() : 0;
}

double
getDouble(const telemetry::JsonValue &obj, std::string_view key,
          double fallback)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v && v->isNumber() ? v->asDouble() : fallback;
}

std::string
getStr(const telemetry::JsonValue &obj, std::string_view key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v && v->isString() ? v->str : std::string();
}

bool
getBool(const telemetry::JsonValue &obj, std::string_view key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v && v->type == telemetry::JsonValue::Type::Bool &&
           v->boolean;
}

void
writeSpecFields(telemetry::JsonWriter &w, uint64_t id, uint32_t round,
                const std::string &app, uint64_t seed,
                const std::string &variant, uint32_t workers,
                uint64_t scale, double irqScale, bool governor)
{
    w.field("id", id);
    w.field("round", uint64_t(round));
    w.field("app", app);
    w.field("seed", seed);
    w.field("variant", variant);
    w.field("workers", uint64_t(workers));
    w.field("scale", scale);
    w.field("irq_scale", irqScale);
    w.field("governor", governor);
}

bool
readSpec(const telemetry::JsonValue &v,
         const campaign::CampaignConfig &cfg, campaign::JobSpec &spec,
         std::string &error)
{
    if (!v.isObject()) {
        error = "checkpoint: plan entry is not an object";
        return false;
    }
    spec.id = getU64(v, "id");
    spec.round = uint32_t(getU64(v, "round"));
    spec.app = getStr(v, "app");
    if (spec.app.empty()) {
        error = "checkpoint: plan entry without app";
        return false;
    }
    spec.seed = getU64(v, "seed");
    spec.variant = getStr(v, "variant");
    if (spec.variant.empty())
        spec.variant = "base";
    spec.workers = uint32_t(getU64(v, "workers"));
    spec.scale = getU64(v, "scale");
    spec.interruptScale = getDouble(v, "irq_scale", 1.0);
    spec.governor = getBool(v, "governor");
    spec.mode = cfg.mode;
    return true;
}

} // namespace

OutcomeSummary
OutcomeSummary::of(const campaign::JobOutcome &o)
{
    OutcomeSummary s;
    s.id = o.spec.id;
    s.round = o.spec.round;
    s.app = o.spec.app;
    s.seed = o.spec.seed;
    s.variant = o.spec.variant;
    s.workers = o.spec.workers;
    s.scale = o.spec.scale;
    s.irqScale = o.spec.interruptScale;
    s.governor = o.spec.governor;
    s.ok = o.ok;
    s.abortConflict = o.abortConflict;
    s.rawReports = o.races.size();
    return s;
}

campaign::JobOutcome
OutcomeSummary::toOutcome(const campaign::CampaignConfig &cfg) const
{
    campaign::JobOutcome o;
    o.spec.id = id;
    o.spec.round = round;
    o.spec.app = app;
    o.spec.seed = seed;
    o.spec.variant = variant;
    o.spec.workers = workers;
    o.spec.scale = scale;
    o.spec.interruptScale = irqScale;
    o.spec.governor = governor;
    o.spec.mode = cfg.mode;
    o.ok = ok;
    o.abortConflict = abortConflict;
    return o;
}

void
Checkpoint::write(std::ostream &os) const
{
    telemetry::JsonWriter w(os);
    w.beginObject();
    w.field("schema", kSchema);
    w.key("campaign");
    w.beginObject();
    writeCampaignIdentity(w, campaign);
    w.endObject();
    w.field("next_id", nextId);
    w.field("rounds_done", roundsDone);
    w.field("jobs_total", jobsTotal);
    w.key("strategy");
    w.beginObject();
    w.field("name", strategyName);
    w.key("state");
    w.beginObject();
    for (const auto &[key, value] : strategyState)
        w.field(key, value);
    w.endObject();
    w.endObject();
    w.key("plan");
    w.beginArray();
    for (const campaign::JobSpec &spec : plan) {
        w.beginObject();
        writeSpecFields(w, spec.id, spec.round, spec.app, spec.seed,
                        spec.variant, spec.workers, spec.scale,
                        spec.interruptScale, spec.governor);
        w.endObject();
    }
    w.endArray();
    w.key("history");
    w.beginArray();
    {
        std::vector<const OutcomeSummary *> sorted;
        sorted.reserve(history.size());
        for (const OutcomeSummary &s : history)
            sorted.push_back(&s);
        std::sort(sorted.begin(), sorted.end(),
                  [](const OutcomeSummary *x, const OutcomeSummary *y) {
                      return x->id < y->id;
                  });
        for (const OutcomeSummary *s : sorted) {
            w.beginObject();
            writeSpecFields(w, s->id, s->round, s->app, s->seed,
                            s->variant, s->workers, s->scale,
                            s->irqScale, s->governor);
            w.field("ok", s->ok);
            w.field("abort_conflict", s->abortConflict);
            w.field("raw_reports", s->rawReports);
            w.endObject();
        }
    }
    w.endArray();
    w.key("spool");
    w.beginObject();
    for (const auto &[file, firstId] : spoolFirstId)
        w.field(file, firstId);
    w.endObject();
    w.key("aggregate");
    aggregate.writeState(w);
    w.endObject();
    os << "\n";
}

bool
Checkpoint::parse(const std::string &text, Checkpoint &out,
                  std::string &error)
{
    out = Checkpoint{};
    telemetry::JsonValue doc;
    if (!telemetry::parseJson(text, doc, error))
        return false;
    if (!telemetry::checkSchema(doc, kSchema, error))
        return false;
    const telemetry::JsonValue *id = doc.find("campaign");
    if (!id || !readCampaignIdentity(*id, out.campaign, error)) {
        if (error.empty())
            error = "checkpoint: missing campaign identity";
        return false;
    }
    out.nextId = getU64(doc, "next_id");
    out.roundsDone = getU64(doc, "rounds_done");
    out.jobsTotal = getU64(doc, "jobs_total");

    const telemetry::JsonValue *strat = doc.find("strategy");
    if (!strat || !strat->isObject()) {
        error = "checkpoint: missing strategy object";
        return false;
    }
    out.strategyName = getStr(*strat, "name");
    if (const telemetry::JsonValue *state = strat->find("state");
        state && state->isObject())
        for (const auto &[key, value] : state->object)
            out.strategyState[key] = value.asU64();

    const telemetry::JsonValue *plan = doc.find("plan");
    if (!plan || !plan->isArray()) {
        error = "checkpoint: missing plan array";
        return false;
    }
    for (const telemetry::JsonValue &entry : plan->array) {
        campaign::JobSpec spec;
        if (!readSpec(entry, out.campaign, spec, error))
            return false;
        out.plan.push_back(std::move(spec));
    }

    const telemetry::JsonValue *history = doc.find("history");
    if (!history || !history->isArray()) {
        error = "checkpoint: missing history array";
        return false;
    }
    for (const telemetry::JsonValue &entry : history->array) {
        campaign::JobSpec spec;
        if (!readSpec(entry, out.campaign, spec, error))
            return false;
        OutcomeSummary s;
        s.id = spec.id;
        s.round = spec.round;
        s.app = spec.app;
        s.seed = spec.seed;
        s.variant = spec.variant;
        s.workers = spec.workers;
        s.scale = spec.scale;
        s.irqScale = spec.interruptScale;
        s.governor = spec.governor;
        s.ok = getBool(entry, "ok");
        s.abortConflict = getU64(entry, "abort_conflict");
        s.rawReports = getU64(entry, "raw_reports");
        out.history.push_back(std::move(s));
    }

    if (const telemetry::JsonValue *spool = doc.find("spool");
        spool && spool->isObject())
        for (const auto &[file, firstId] : spool->object)
            out.spoolFirstId[file] = firstId.asU64();

    const telemetry::JsonValue *agg = doc.find("aggregate");
    if (!agg) {
        error = "checkpoint: missing aggregate object";
        return false;
    }
    return out.aggregate.loadState(*agg, error);
}

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string &error)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        error = "cannot write " + tmp;
        return false;
    }
    bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
            content.size() &&
        std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        error = "short write to " + tmp;
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace txrace::service
