#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/execute.hh"
#include "campaign/pool.hh"
#include "campaign/progress.hh"
#include "campaign/queue.hh"
#include "campaign/shard.hh"
#include "campaign/strategy.hh"
#include "core/repro.hh"
#include "detector/report.hh"
#include "service/checkpoint.hh"
#include "service/ingest.hh"
#include "service/store.hh"
#include "support/log.hh"
#include "telemetry/json.hh"
#include "telemetry/servicestats.hh"
#include "workloads/workloads.hh"

namespace txrace::service {

namespace {

std::string
hex64(uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  (unsigned long long)v);
    return buf;
}

/** The whole service loop as one object so the batch runner, the
 *  checkpointer, and the shutdown path share state naturally. */
class ServiceRunner
{
  public:
    explicit ServiceRunner(const ServiceOptions &opt) : opt_(opt) {}

    ServiceResult run();

  private:
    bool stopRequested() const
    {
        return opt_.stopFlag &&
               opt_.stopFlag->load(std::memory_order_relaxed);
    }

    void restoreOrInit();
    void startPool();
    /** Submit unseen jobs of @p batch and fold their outcomes.
     *  Returns false when a stop was requested (shutdown already
     *  checkpointed). */
    bool runBatch(const std::vector<campaign::JobSpec> &batch);
    void foldOutcome(campaign::JobOutcome outcome);
    void checkpointNow();
    void emitHeartbeat(const std::string &event);
    void emitDelta(const campaign::JobOutcome &outcome,
                   const campaign::FoundRace &race);
    void shutdownPoolAndDrain();
    bool strategyLoop();
    bool streamLoop();
    void writeFinal(ServiceResult &res);

    ServiceOptions opt_;
    campaign::CampaignConfig cfg_;
    std::map<std::string, std::set<std::string>> groundTruth_;

    std::unique_ptr<campaign::ShardedAggregator> agg_;
    std::unique_ptr<campaign::Strategy> strategy_;
    std::vector<campaign::JobOutcome> history_;
    std::vector<OutcomeSummary> summaries_;
    std::map<std::string, uint64_t> spoolFirstId_;
    /** Spool files fully folded by THIS process: skipped silently on
     *  re-scan so follow-mode polling doesn't re-count them as
     *  redelivered duplicates every tick. */
    std::set<std::string> spoolDrained_;
    std::vector<campaign::JobSpec> plan_;
    uint64_t nextId_ = 0;
    uint64_t roundsDone_ = 0;
    uint64_t jobsTotal_ = 0;
    uint64_t jobsFolded_ = 0;
    uint64_t duplicates_ = 0;

    std::unique_ptr<campaign::ResultQueue> queue_;
    std::unique_ptr<campaign::WorkStealingPool> pool_;
    std::vector<campaign::WorkerCache> caches_;
    std::vector<std::atomic<uint8_t>> busy_;
    std::vector<uint64_t> workerDone_;

    telemetry::ServiceStats stats_;
    std::chrono::steady_clock::time_point wall0_;
    bool poolStopped_ = false;
};

void
ServiceRunner::restoreOrInit()
{
    cfg_ = opt_.cfg;
    if (opt_.resume) {
        const std::string path = opt_.stateDir + "/checkpoint.json";
        std::string text, error;
        if (!readFile(path, text, error))
            fatal("--resume: %s", error.c_str());
        Checkpoint ck;
        if (!Checkpoint::parse(text, ck, error))
            fatal("--resume: %s: %s", path.c_str(), error.c_str());
        // Identity comes from the checkpoint; execution knobs (jobs,
        // shards, cadence) stay with the CLI.
        cfg_.masterSeed = ck.campaign.masterSeed;
        cfg_.strategy = ck.campaign.strategy;
        cfg_.mode = ck.campaign.mode;
        cfg_.slowpath = ck.campaign.slowpath;
        cfg_.apps = ck.campaign.apps;
        cfg_.seedsPerApp = ck.campaign.seedsPerApp;
        cfg_.workers = ck.campaign.workers;
        cfg_.scale = ck.campaign.scale;
        cfg_.calibrate = ck.campaign.calibrate;

        nextId_ = ck.nextId;
        roundsDone_ = ck.roundsDone;
        jobsTotal_ = ck.jobsTotal;
        plan_ = std::move(ck.plan);
        summaries_ = std::move(ck.history);
        spoolFirstId_ = std::move(ck.spoolFirstId);

        agg_ = std::make_unique<campaign::ShardedAggregator>(
            cfg_.shards);
        agg_->seed(ck.aggregate);

        strategy_ = campaign::makeStrategy(cfg_.strategy);
        strategy_->restoreState(ck.strategyState);
        for (const OutcomeSummary &s : summaries_)
            history_.push_back(s.toOutcome(cfg_));
        std::sort(history_.begin(), history_.end(),
                  [](const campaign::JobOutcome &x,
                     const campaign::JobOutcome &y) {
                      return x.spec.id < y.spec.id;
                  });
        ++stats_.resumes;
        if (opt_.chatter)
            *opt_.chatter << "resumed: " << summaries_.size()
                          << " outcome(s), next id " << nextId_
                          << ", " << plan_.size()
                          << " job(s) in the pending round\n";
    } else {
        agg_ = std::make_unique<campaign::ShardedAggregator>(
            cfg_.shards);
        strategy_ = campaign::makeStrategy(cfg_.strategy);
    }

    if (cfg_.apps.empty())
        fatal("--serve: no apps selected");
    for (const std::string &app : cfg_.apps) {
        std::set<std::string> &labels = groundTruth_[app];
        for (const workloads::RaceLabel &label :
             workloads::groundTruthRaces(app))
            labels.insert(core::raceLabelKey(label.a, label.b));
    }
}

void
ServiceRunner::startPool()
{
    caches_ = std::vector<campaign::WorkerCache>(cfg_.jobs);
    busy_ = std::vector<std::atomic<uint8_t>>(cfg_.jobs);
    workerDone_.assign(cfg_.jobs, 0);
    queue_ = std::make_unique<campaign::ResultQueue>(
        cfg_.queueCapacity);
    const bool calibrate = cfg_.calibrate;
    const core::SlowPathKind slowpath = cfg_.slowpath;
    pool_ = std::make_unique<campaign::WorkStealingPool>(
        cfg_.jobs,
        [this, calibrate, slowpath](const campaign::JobSpec &spec,
                                    uint32_t worker) {
            busy_[worker].store(1, std::memory_order_relaxed);
            campaign::JobOutcome outcome = campaign::executeJob(
                spec, caches_[worker], calibrate, slowpath);
            outcome.worker = worker;
            busy_[worker].store(0, std::memory_order_relaxed);
            return outcome;
        },
        *queue_);
}

void
ServiceRunner::emitHeartbeat(const std::string &event)
{
    if (!opt_.progressJson)
        return;
    campaign::ProgressRecord rec;
    rec.event = event;
    rec.round = roundsDone_;
    rec.jobsTotal = jobsTotal_;
    rec.jobsDone = agg_->runs();
    rec.findings = agg_->findingCount();
    rec.rawReports = agg_->rawReports();
    rec.errors = agg_->errorCount();
    rec.variants = agg_->variantCounters();
    for (size_t i = 0; i < workerDone_.size(); ++i)
        rec.workers.emplace_back(
            workerDone_[i],
            busy_[i].load(std::memory_order_relaxed) != 0);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall0_)
                      .count();
    uint64_t rate =
        secs > 0.0 ? uint64_t(double(jobsFolded_) / secs) : 0;
    rec.service = stats_.gauges(agg_->shardDepths(), rate);
    campaign::writeProgressRecord(*opt_.progressJson, rec);
}

void
ServiceRunner::emitDelta(const campaign::JobOutcome &outcome,
                         const campaign::FoundRace &race)
{
    ++stats_.deltasEmitted;
    if (!opt_.progressJson)
        return;
    telemetry::JsonWriter w(*opt_.progressJson, /*pretty=*/false);
    w.beginObject();
    w.field("schema", "txrace-progress-v1");
    w.field("event", "finding");
    w.field("job", outcome.spec.id);
    w.field("app", outcome.spec.app);
    w.field("fingerprint", hex64(race.sig.hash));
    w.field("kind", detector::raceKindName(race.kind));
    w.field("a", race.sig.a);
    w.field("b", race.sig.b);
    w.endObject();
    *opt_.progressJson << "\n" << std::flush;
}

void
ServiceRunner::checkpointNow()
{
    auto t0 = std::chrono::steady_clock::now();
    Checkpoint ck;
    ck.campaign = cfg_;
    ck.nextId = nextId_;
    ck.roundsDone = roundsDone_;
    ck.jobsTotal = jobsTotal_;
    ck.strategyName = strategy_ ? strategy_->name() : "";
    if (strategy_)
        strategy_->saveState(ck.strategyState);
    ck.plan = plan_;
    ck.history = summaries_;
    ck.spoolFirstId = spoolFirstId_;
    ck.aggregate = agg_->collapse();

    std::ostringstream ss;
    ck.write(ss);
    std::string error;
    if (!writeFileAtomic(opt_.stateDir + "/checkpoint.json", ss.str(),
                         error))
        fatal("checkpoint: %s", error.c_str());
    auto t1 = std::chrono::steady_clock::now();
    stats_.noteCheckpoint(uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    emitHeartbeat("checkpoint");
}

void
ServiceRunner::foldOutcome(campaign::JobOutcome outcome)
{
    std::vector<const campaign::FoundRace *> fresh;
    if (!agg_->add(outcome, &fresh)) {
        ++duplicates_;
        ++stats_.duplicatesSkipped;
        return;
    }
    ++jobsFolded_;
    ++stats_.jobsIngested;
    if (outcome.worker < workerDone_.size())
        ++workerDone_[outcome.worker];
    for (const campaign::FoundRace *race : fresh)
        emitDelta(outcome, *race);
    summaries_.push_back(OutcomeSummary::of(outcome));
    if (opt_.progressJson && cfg_.progressEvery > 0 &&
        jobsFolded_ % cfg_.progressEvery == 0)
        emitHeartbeat("progress");
    history_.push_back(std::move(outcome));
}

void
ServiceRunner::shutdownPoolAndDrain()
{
    // An in-flight worker may be blocked pushing into a full queue;
    // join from the side while this thread keeps draining.
    std::thread joiner([this] {
        pool_->stopAndJoin();
        queue_->close();
    });
    campaign::JobOutcome outcome;
    while (queue_->pop(outcome))
        foldOutcome(std::move(outcome));
    joiner.join();
    poolStopped_ = true;
}

bool
ServiceRunner::runBatch(const std::vector<campaign::JobSpec> &batch)
{
    std::vector<campaign::JobSpec> todo;
    for (const campaign::JobSpec &spec : batch) {
        if (agg_->seen(spec.id)) {
            ++duplicates_;
            ++stats_.duplicatesSkipped;
            continue;
        }
        todo.push_back(spec);
    }
    if (!todo.empty())
        pool_->submit(todo);

    uint64_t sinceCkpt = 0;
    for (size_t i = 0; i < todo.size(); ++i) {
        campaign::JobOutcome outcome;
        if (!queue_->pop(outcome))
            fatal("service: result queue closed early");
        foldOutcome(std::move(outcome));
        ++sinceCkpt;
        if (opt_.checkpointEvery > 0 &&
            sinceCkpt >= opt_.checkpointEvery) {
            checkpointNow();
            sinceCkpt = 0;
        }
        if (stopRequested()) {
            if (opt_.chatter)
                *opt_.chatter
                    << "stop requested: draining in-flight jobs\n";
            shutdownPoolAndDrain();
            checkpointNow();
            emitHeartbeat("shutdown");
            return false;
        }
    }
    std::sort(history_.begin(), history_.end(),
              [](const campaign::JobOutcome &x,
                 const campaign::JobOutcome &y) {
                  return x.spec.id < y.spec.id;
              });
    return true;
}

bool
ServiceRunner::strategyLoop()
{
    // A pending plan from the checkpoint runs first; afterwards the
    // restored strategy state machine continues from its next round.
    if (plan_.empty())
        plan_ = strategy_->nextRound(cfg_, history_, nextId_);
    while (!plan_.empty()) {
        jobsTotal_ = std::max(
            jobsTotal_,
            plan_.empty() ? nextId_ : plan_.back().id + 1);
        if (opt_.chatter)
            *opt_.chatter << "round " << roundsDone_ << ": "
                          << plan_.size() << " job(s) ["
                          << strategy_->name() << "]\n";
        // Persist the plan before running it: a kill mid-round
        // resumes THIS round, not a rederived one.
        checkpointNow();
        if (!runBatch(plan_))
            return false;
        ++roundsDone_;
        plan_.clear();
        checkpointNow();
        if (stopRequested()) {
            emitHeartbeat("shutdown");
            return false;
        }
        plan_ = strategy_->nextRound(cfg_, history_, nextId_);
    }
    return true;
}

bool
ServiceRunner::streamLoop()
{
    strategy_.reset(); // jobs come from the stream, not a strategy
    for (;;) {
        bool ingested = false;
        if (!opt_.spoolDir.empty()) {
            for (const std::string &name :
                 listSpoolFiles(opt_.spoolDir)) {
                if (spoolDrained_.count(name))
                    continue;
                std::string text, error;
                if (!readFile(opt_.spoolDir + "/" + name, text,
                              error))
                    fatal("spool: %s", error.c_str());
                std::vector<campaign::JobSpec> specs;
                if (!parseJobBatch(text, cfg_, specs, error))
                    fatal("spool: %s: %s", name.c_str(),
                          error.c_str());
                // Stable id assignment across resumes: the first id
                // ever given to this file is recorded and reused.
                auto it = spoolFirstId_.find(name);
                uint64_t base;
                if (it != spoolFirstId_.end()) {
                    base = it->second;
                } else {
                    base = nextId_;
                    nextId_ += specs.size();
                    spoolFirstId_[name] = base;
                    ++stats_.batches;
                }
                bool anyNew = false;
                for (size_t i = 0; i < specs.size(); ++i) {
                    specs[i].id = base + i;
                    specs[i].round = uint32_t(roundsDone_);
                    anyNew |= !agg_->seen(specs[i].id);
                }
                if (!anyNew) {
                    // Redelivered batch, fully folded already (e.g.
                    // before the checkpoint we resumed from): still
                    // duplicates from the ingest point of view.
                    duplicates_ += specs.size();
                    stats_.duplicatesSkipped += specs.size();
                    spoolDrained_.insert(name);
                    continue;
                }
                ingested = true;
                jobsTotal_ = std::max(jobsTotal_, nextId_);
                if (opt_.chatter)
                    *opt_.chatter
                        << "spool batch " << name << ": "
                        << specs.size() << " job(s)\n";
                plan_ = specs;
                checkpointNow();
                bool ok = runBatch(plan_);
                plan_.clear();
                if (!ok)
                    return false;
                spoolDrained_.insert(name);
                ++roundsDone_;
                checkpointNow();
            }
        }
        if (opt_.jobStream) {
            std::string line, batchText;
            auto flush = [&]() -> bool {
                if (batchText.empty())
                    return true;
                std::vector<campaign::JobSpec> specs;
                std::string error;
                if (!parseJobBatch(batchText, cfg_, specs, error))
                    fatal("stdin batch: %s", error.c_str());
                batchText.clear();
                if (specs.empty())
                    return true;
                for (campaign::JobSpec &spec : specs) {
                    spec.id = nextId_++;
                    spec.round = uint32_t(roundsDone_);
                }
                ++stats_.batches;
                ingested = true;
                jobsTotal_ = std::max(jobsTotal_, nextId_);
                plan_ = specs;
                checkpointNow();
                bool ok = runBatch(plan_);
                plan_.clear();
                if (!ok)
                    return false;
                ++roundsDone_;
                checkpointNow();
                return true;
            };
            while (std::getline(*opt_.jobStream, line)) {
                if (line.find_first_not_of(" \t\r") ==
                    std::string::npos) {
                    if (!flush())
                        return false;
                } else {
                    batchText += line;
                    batchText += "\n";
                }
                if (stopRequested())
                    break;
            }
            if (!flush())
                return false;
            opt_.jobStream = nullptr; // EOF: stream is done
        }
        if (stopRequested()) {
            checkpointNow();
            emitHeartbeat("shutdown");
            return false;
        }
        if (!ingested && !opt_.jobStream) {
            if (!opt_.follow)
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }
}

void
ServiceRunner::writeFinal(ServiceResult &res)
{
    campaign::Aggregator total = agg_->collapse();
    res.report = total.finalize(cfg_, groundTruth_);
    res.report.timing.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0_)
            .count();
    res.report.timing.jobs = cfg_.jobs;

    FindingsStore store;
    store.campaign = cfg_;
    store.aggregate = std::move(total);
    std::ostringstream fs;
    store.write(fs);
    std::string error;
    if (!writeFileAtomic(opt_.stateDir + "/findings.json", fs.str(),
                         error))
        fatal("findings store: %s", error.c_str());

    std::ostringstream cs;
    campaign::writeCampaignJson(cs, cfg_, res.report);
    if (!writeFileAtomic(opt_.stateDir + "/campaign.json", cs.str(),
                         error))
        fatal("campaign report: %s", error.c_str());

    // Final checkpoint: plan empty, everything folded — a further
    // --resume re-emits the identical outputs and exits.
    checkpointNow();
    emitHeartbeat("end");
}

ServiceResult
ServiceRunner::run()
{
    if (opt_.stateDir.empty())
        fatal("--serve needs --state-dir");
    if (opt_.cfg.jobs == 0)
        fatal("--serve: need at least one job slot");
    std::error_code ec;
    std::filesystem::create_directories(opt_.stateDir, ec);
    if (ec)
        fatal("cannot create state dir %s", opt_.stateDir.c_str());

    wall0_ = std::chrono::steady_clock::now();
    restoreOrInit();
    startPool();
    emitHeartbeat(opt_.resume ? "resume" : "start");

    const bool stream =
        !opt_.spoolDir.empty() || opt_.jobStream != nullptr;
    bool completed = stream ? streamLoop() : strategyLoop();

    ServiceResult res;
    res.jobsFolded = jobsFolded_;
    res.duplicatesSkipped = duplicates_;
    res.completed = completed;
    if (completed)
        writeFinal(res);
    res.checkpoints = stats_.checkpoints;

    if (!poolStopped_)
        shutdownPoolAndDrain();
    return res;
}

} // namespace

ServiceResult
runService(const ServiceOptions &opt)
{
    ServiceRunner runner(opt);
    return runner.run();
}

} // namespace txrace::service
