#include "service/store.hh"

#include "core/repro.hh"
#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"

namespace txrace::service {

namespace {

constexpr const char *kSchema = "txrace-findings-v1";

} // namespace

void
writeCampaignIdentity(telemetry::JsonWriter &w,
                      const campaign::CampaignConfig &cfg)
{
    w.field("master_seed", cfg.masterSeed);
    w.field("strategy", cfg.strategy);
    w.field("mode", core::cliModeName(cfg.mode));
    w.field("slowpath", core::slowPathKindName(cfg.slowpath));
    w.key("apps");
    w.beginArray();
    for (const std::string &app : cfg.apps)
        w.value(app);
    w.endArray();
    w.field("seeds_per_app", cfg.seedsPerApp);
    w.field("workers", uint64_t(cfg.workers));
    w.field("scale", cfg.scale);
    w.field("calibrate", cfg.calibrate);
}

bool
readCampaignIdentity(const telemetry::JsonValue &v,
                     campaign::CampaignConfig &cfg, std::string &error)
{
    if (!v.isObject()) {
        error = "campaign identity is not an object";
        return false;
    }
    const telemetry::JsonValue *seed = v.find("master_seed");
    const telemetry::JsonValue *strategy = v.find("strategy");
    const telemetry::JsonValue *mode = v.find("mode");
    const telemetry::JsonValue *apps = v.find("apps");
    if (!seed || !strategy || !strategy->isString() || !mode ||
        !mode->isString() || !apps || !apps->isArray()) {
        error = "campaign identity: missing "
                "master_seed/strategy/mode/apps";
        return false;
    }
    cfg.masterSeed = seed->asU64();
    cfg.strategy = strategy->str;
    if (!core::cliModeFromName(mode->str, cfg.mode)) {
        error = "campaign identity: unknown mode '" + mode->str + "'";
        return false;
    }
    if (const telemetry::JsonValue *sp = v.find("slowpath")) {
        if (!sp->isString() ||
            !core::slowPathKindFromName(sp->str, cfg.slowpath)) {
            error = "campaign identity: unknown slowpath";
            return false;
        }
    }
    cfg.apps.clear();
    for (const telemetry::JsonValue &app : apps->array) {
        if (!app.isString() || app.str.empty()) {
            error = "campaign identity: bad apps entry";
            return false;
        }
        cfg.apps.push_back(app.str);
    }
    if (const telemetry::JsonValue *n = v.find("seeds_per_app"))
        cfg.seedsPerApp = n->asU64();
    if (const telemetry::JsonValue *n = v.find("workers"))
        cfg.workers = uint32_t(n->asU64());
    if (const telemetry::JsonValue *n = v.find("scale"))
        cfg.scale = n->asU64();
    if (const telemetry::JsonValue *c = v.find("calibrate"))
        cfg.calibrate = c->type == telemetry::JsonValue::Type::Bool &&
                        c->boolean;
    return true;
}

bool
sameCampaignIdentity(const campaign::CampaignConfig &a,
                     const campaign::CampaignConfig &b)
{
    return a.masterSeed == b.masterSeed && a.strategy == b.strategy &&
           a.mode == b.mode && a.slowpath == b.slowpath &&
           a.apps == b.apps && a.seedsPerApp == b.seedsPerApp &&
           a.workers == b.workers && a.scale == b.scale &&
           a.calibrate == b.calibrate;
}

void
FindingsStore::write(std::ostream &os) const
{
    telemetry::JsonWriter w(os);
    w.beginObject();
    w.field("schema", kSchema);
    w.key("campaign");
    w.beginObject();
    writeCampaignIdentity(w, campaign);
    w.endObject();
    w.key("aggregate");
    aggregate.writeState(w);
    w.endObject();
    os << "\n";
}

bool
FindingsStore::parse(const std::string &text, FindingsStore &out,
                     std::string &error)
{
    out = FindingsStore{};
    telemetry::JsonValue doc;
    if (!telemetry::parseJson(text, doc, error))
        return false;
    if (!telemetry::checkSchema(doc, kSchema, error))
        return false;
    const telemetry::JsonValue *id = doc.find("campaign");
    if (!id || !readCampaignIdentity(*id, out.campaign, error)) {
        if (error.empty())
            error = "missing campaign identity";
        return false;
    }
    const telemetry::JsonValue *agg = doc.find("aggregate");
    if (!agg) {
        error = "missing aggregate object";
        return false;
    }
    return out.aggregate.loadState(*agg, error);
}

bool
FindingsStore::merge(const FindingsStore &o, std::string &error)
{
    if (!sameCampaignIdentity(campaign, o.campaign)) {
        error = "refusing to merge findings stores of different "
                "campaigns (strategy '" +
                campaign.strategy + "' seed " +
                std::to_string(campaign.masterSeed) + " vs '" +
                o.campaign.strategy + "' seed " +
                std::to_string(o.campaign.masterSeed) + ")";
        return false;
    }
    aggregate.merge(o.aggregate);
    return true;
}

} // namespace txrace::service
