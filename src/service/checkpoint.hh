/**
 * @file
 * Service checkpoints: txrace-checkpoint-v1.
 *
 * A checkpoint is everything the service needs to continue a
 * campaign after being killed: the campaign identity, the job-id
 * allocator, the strategy's state machine, the CURRENT round's full
 * plan, compact per-job outcome summaries (what adaptive strategies
 * read from history), spool-ingest bookkeeping, and the complete
 * aggregate. Resume re-submits plan jobs whose ids the aggregate has
 * not seen; re-running a job whose outcome WAS checkpointed is
 * harmless because Aggregator::add is idempotent — at-least-once
 * delivery, exactly-once folding.
 *
 * Checkpoints are written atomically (tmp file + rename), so a kill
 * mid-write leaves the previous checkpoint intact, never a torn
 * file.
 */

#ifndef TXRACE_SERVICE_CHECKPOINT_HH
#define TXRACE_SERVICE_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/aggregate.hh"
#include "campaign/campaign.hh"
#include "campaign/job.hh"

namespace txrace::service {

/**
 * What a checkpoint keeps of one folded outcome: the spec fields
 * plus the two outcome facts any strategy reads from history
 * (abort-guided reseeding weighs conflict aborts). Everything a
 * strategy is ALLOWED to see survives the round trip; everything
 * else (races, profiles) lives aggregated in the store.
 */
struct OutcomeSummary
{
    uint64_t id = 0;
    uint32_t round = 0;
    std::string app;
    uint64_t seed = 0;
    std::string variant = "base";
    uint32_t workers = 4;
    uint64_t scale = 1;
    double irqScale = 1.0;
    bool governor = false;
    bool ok = true;
    uint64_t abortConflict = 0;
    uint64_t rawReports = 0;

    static OutcomeSummary of(const campaign::JobOutcome &o);
    /** Rebuild the strategy-visible JobOutcome (mode from @p cfg). */
    campaign::JobOutcome
    toOutcome(const campaign::CampaignConfig &cfg) const;
};

/** Resumable service state. */
struct Checkpoint
{
    campaign::CampaignConfig campaign;
    /** Job-id allocator value AFTER the current plan was drawn. */
    uint64_t nextId = 0;
    /** Completed round barriers. */
    uint64_t roundsDone = 0;
    uint64_t jobsTotal = 0;
    std::string strategyName;
    std::map<std::string, uint64_t> strategyState;
    /** The round in flight: full specs, including already-run jobs
     *  (the seen-set decides what resume actually re-submits). */
    std::vector<campaign::JobSpec> plan;
    /** Every folded outcome, id-sorted on write. */
    std::vector<OutcomeSummary> history;
    /** Spool bookkeeping: file name -> first job id assigned to it,
     *  so a resumed service reassigns identical ids. */
    std::map<std::string, uint64_t> spoolFirstId;
    campaign::Aggregator aggregate;

    /** Serialize as txrace-checkpoint-v1 (byte-deterministic). */
    void write(std::ostream &os) const;

    /** Parse; false with @p error on malformed/wrong-version input. */
    static bool parse(const std::string &text, Checkpoint &out,
                      std::string &error);
};

/**
 * Write @p content to @p path atomically: write `path.tmp`, fsync,
 * rename over @p path. False with @p error on I/O failure.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content, std::string &error);

/** Slurp @p path. False with @p error when unreadable. */
bool readFile(const std::string &path, std::string &out,
              std::string &error);

} // namespace txrace::service

#endif // TXRACE_SERVICE_CHECKPOINT_HH
