/**
 * @file
 * NDJSON job ingestion for the hunting service.
 *
 * A job batch is NDJSON: one job request per line,
 *
 *   {"app": "vips", "seed": 7, "variant": "irq-x4",
 *    "irq_scale": 4.0, "workers": 4, "scale": 1, "governor": false}
 *
 * Only `app` is required; everything else defaults from the campaign
 * identity. Batches arrive on stdin or as files in a spool
 * directory; spool files are processed in sorted-filename order and
 * line order within a file, so job-id assignment — hence the final
 * report — is a pure function of the spool contents, independent of
 * arrival timing. Blank lines separate stdin batches.
 */

#ifndef TXRACE_SERVICE_INGEST_HH
#define TXRACE_SERVICE_INGEST_HH

#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/job.hh"

namespace txrace::service {

/**
 * Parse one NDJSON job line into a spec (no id assigned; the service
 * allocates ids in ingest order). Defaults come from @p cfg. False
 * with a message in @p error on malformed input or a missing app.
 */
bool parseJobLine(const std::string &line,
                  const campaign::CampaignConfig &cfg,
                  campaign::JobSpec &spec, std::string &error);

/**
 * Parse a whole NDJSON batch (blank lines skipped). False on the
 * first bad line; @p error includes the 1-based line number.
 */
bool parseJobBatch(const std::string &text,
                   const campaign::CampaignConfig &cfg,
                   std::vector<campaign::JobSpec> &specs,
                   std::string &error);

/** Regular files in @p dir, sorted by name (the spool order). */
std::vector<std::string> listSpoolFiles(const std::string &dir);

} // namespace txrace::service

#endif // TXRACE_SERVICE_INGEST_HH
