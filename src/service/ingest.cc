#include "service/ingest.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "telemetry/jsonparse.hh"

namespace txrace::service {

bool
parseJobLine(const std::string &line,
             const campaign::CampaignConfig &cfg,
             campaign::JobSpec &spec, std::string &error)
{
    telemetry::JsonValue doc;
    if (!telemetry::parseJson(line, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "job record is not an object";
        return false;
    }
    spec = campaign::JobSpec{};
    spec.mode = cfg.mode;
    spec.workers = cfg.workers;
    spec.scale = cfg.scale;

    const telemetry::JsonValue *app = doc.find("app");
    if (!app || !app->isString() || app->str.empty()) {
        error = "job record without app";
        return false;
    }
    spec.app = app->str;
    if (const telemetry::JsonValue *v = doc.find("seed"))
        spec.seed = v->asU64();
    if (const telemetry::JsonValue *v = doc.find("variant");
        v && v->isString() && !v->str.empty())
        spec.variant = v->str;
    if (const telemetry::JsonValue *v = doc.find("workers"))
        spec.workers = uint32_t(v->asU64());
    if (const telemetry::JsonValue *v = doc.find("scale"))
        spec.scale = v->asU64();
    if (const telemetry::JsonValue *v = doc.find("irq_scale");
        v && v->isNumber())
        spec.interruptScale = v->asDouble();
    if (const telemetry::JsonValue *v = doc.find("governor"))
        spec.governor =
            v->type == telemetry::JsonValue::Type::Bool && v->boolean;
    return true;
}

bool
parseJobBatch(const std::string &text,
              const campaign::CampaignConfig &cfg,
              std::vector<campaign::JobSpec> &specs, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        campaign::JobSpec spec;
        if (!parseJobLine(line, cfg, spec, error)) {
            error = "line " + std::to_string(lineNo) + ": " + error;
            return false;
        }
        specs.push_back(std::move(spec));
    }
    return true;
}

std::vector<std::string>
listSpoolFiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string name = entry.path().filename().string();
        // Skip partially written files by convention: producers write
        // `name.tmp` and rename into place.
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0)
            continue;
        files.push_back(std::move(name));
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace txrace::service
