/**
 * @file
 * The continuous hunting service: resumable campaigns, spool/stdin
 * job ingestion, incremental findings, graceful shutdown.
 *
 * `txrace_hunt --serve --state-dir=D` promotes the one-shot campaign
 * into a long-running backend. The lifecycle:
 *
 *   ingest   — jobs come from the campaign strategy (default), from
 *              NDJSON batches on stdin, or from a spool directory
 *              processed in sorted-filename order;
 *   shard    — outcomes fold into a ShardedAggregator (fingerprint-
 *              hash partitioned; N shards never change the bytes);
 *   emit     — txrace-progress-v1 heartbeats with service gauges
 *              plus one `"event":"finding"` delta per NEW finding;
 *   checkpoint — txrace-checkpoint-v1 written atomically to the
 *              state dir every N folded jobs and at every round
 *              barrier;
 *   resume   — `--resume` restores the checkpoint (identity,
 *              strategy state machine, pending plan, aggregate) and
 *              re-submits only unseen jobs; idempotent folding makes
 *              at-least-once delivery safe;
 *   merge    — the final findings store unions across hosts via
 *              FindingsStore::merge (commutative, `cmp`-testable).
 *
 * Determinism: the final campaign report and findings store are a
 * pure function of the campaign identity (strategy mode) or of
 * identity + spool contents (stream mode). Kill points, `--jobs`,
 * `--shards`, and checkpoint cadence are invisible in the bytes.
 */

#ifndef TXRACE_SERVICE_SERVICE_HH
#define TXRACE_SERVICE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "campaign/campaign.hh"

namespace txrace::service {

struct ServiceOptions
{
    /** Campaign identity + execution knobs (jobs, shards, cadence).
     *  On resume the identity subset is REPLACED by the checkpoint's;
     *  execution knobs always come from here. */
    campaign::CampaignConfig cfg;
    /** Directory holding checkpoint.json / findings.json /
     *  campaign.json. Created if missing. Required. */
    std::string stateDir;
    /** Restore state from stateDir instead of starting fresh. */
    bool resume = false;
    /** Checkpoint cadence in folded jobs (also checkpoints at every
     *  round barrier and on shutdown). 0 = barriers/shutdown only. */
    uint64_t checkpointEvery = 16;
    /** Spool directory of NDJSON batch files (stream mode). */
    std::string spoolDir;
    /** NDJSON batches on a stream, blank-line separated (stream
     *  mode; typically stdin). */
    std::istream *jobStream = nullptr;
    /** Keep polling the spool for new files after draining it;
     *  otherwise exit once every known job is folded. */
    bool follow = false;
    /** Heartbeats + finding deltas (txrace-progress-v1 NDJSON). */
    std::ostream *progressJson = nullptr;
    /** Human chatter. */
    std::ostream *chatter = nullptr;
    /** Set asynchronously (SIGTERM handler) to request a graceful
     *  stop: finish in-flight jobs, checkpoint, exit. */
    const std::atomic<bool> *stopFlag = nullptr;
};

struct ServiceResult
{
    /** False when stopped early (stopFlag); a checkpoint was
     *  written and `--resume` will continue the campaign. */
    bool completed = false;
    uint64_t jobsFolded = 0;
    uint64_t duplicatesSkipped = 0;
    uint64_t checkpoints = 0;
    /** The deterministic report; only valid when completed. */
    campaign::CampaignResult report;
};

/**
 * Run the service until the campaign completes, the stream drains
 * (stream mode, unless follow), or the stop flag is raised. fatal()s
 * on unusable options (missing state dir path, unknown strategy);
 * returns normally on graceful stop.
 */
ServiceResult runService(const ServiceOptions &opt);

} // namespace txrace::service

#endif // TXRACE_SERVICE_SERVICE_HH
