/**
 * @file
 * Work-stealing thread pool for campaign runs.
 *
 * Each worker owns a deque: its own jobs come off the front, and an
 * idle worker steals from the *back* of a victim's deque (classic
 * Arora-Blumofe-Plumtree shape — thieves take the work the owner
 * would reach last). Jobs are seconds of simulation, so per-deque
 * mutexes are plenty; what matters is that no worker idles while
 * another still has a backlog, which a static partition cannot
 * guarantee when per-job cost varies by app and seed.
 *
 * Finished outcomes flow into a shared ResultQueue. The pool imposes
 * NO ordering — determinism is the aggregator's problem (it keys
 * everything by job id).
 */

#ifndef TXRACE_CAMPAIGN_POOL_HH
#define TXRACE_CAMPAIGN_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/job.hh"
#include "campaign/queue.hh"

namespace txrace::campaign {

class WorkStealingPool
{
  public:
    /** Executes one job on a worker thread; @p worker is the index
     *  of the executing worker (per-worker caches, tests). */
    using Runner =
        std::function<JobOutcome(const JobSpec &spec, uint32_t worker)>;

    /** Spawns @p nWorkers threads immediately (>= 1 enforced). */
    WorkStealingPool(uint32_t nWorkers, Runner runner,
                     ResultQueue &out);

    /** Stops workers and joins. Jobs still queued are abandoned —
     *  callers drain every submitted job before destruction. */
    ~WorkStealingPool();

    /**
     * Graceful early stop (service shutdown): workers finish the job
     * they are executing, abandon everything still queued, and are
     * joined before this returns. Abandoned jobs never produce an
     * outcome — the caller must count pops against ids actually
     * folded, not against ids submitted. Call from a thread that is
     * NOT the result-queue consumer (an in-flight worker may be
     * blocked pushing into a full queue; someone must keep
     * draining). Idempotent; the destructor afterwards is a no-op.
     */
    void stopAndJoin();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /**
     * Enqueue a batch, round-robin across the workers' deques, and
     * return immediately. One outcome per job will eventually appear
     * in the ResultQueue; the caller counts pops to find the barrier.
     */
    void submit(const std::vector<JobSpec> &jobs);

    uint32_t workerCount() const { return uint32_t(workers_.size()); }

    /** Jobs executed by a thief rather than their home worker. */
    uint64_t steals() const { return steals_.load(); }

  private:
    /** One worker's deque; mu guards q. */
    struct Worker
    {
        std::mutex mu;
        std::deque<JobSpec> q;
    };

    void workerLoop(uint32_t self);
    /** Pop from own front, else steal from a victim's back. */
    bool takeJob(uint32_t self, JobSpec &job, bool &stolen);
    bool anyQueued();

    Runner runner_;
    ResultQueue &out_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex wakeMu_;
    std::condition_variable wake_;
    bool stop_ = false;
    /** Early-stop: abandon queued jobs instead of draining them. */
    std::atomic<bool> abandon_{false};

    std::atomic<uint64_t> steals_{0};
};

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_POOL_HH
