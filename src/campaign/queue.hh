/**
 * @file
 * Bounded multi-producer single-consumer outcome queue: the channel
 * between the pool's workers and the aggregator thread.
 *
 * A fixed-capacity ring under one mutex with two condition variables
 * — deliberately boring. The critical sections are a handful of
 * moves, the queue is never on a simulated hot path, and the whole
 * engine must be clean under real ThreadSanitizer (CI dog-foods the
 * pool through a TSan build), which rules out clever unverified
 * lock-free code. Bounded so a fast fleet cannot run unboundedly
 * ahead of a slow aggregator.
 */

#ifndef TXRACE_CAMPAIGN_QUEUE_HH
#define TXRACE_CAMPAIGN_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "campaign/job.hh"
#include "support/log.hh"

namespace txrace::campaign {

class ResultQueue
{
  public:
    explicit ResultQueue(size_t capacity) : ring_(capacity)
    {
        if (capacity == 0)
            fatal("ResultQueue: capacity must be nonzero");
    }

    /** Blocks while full. fatal()s if called after close(). */
    void
    push(JobOutcome outcome)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notFull_.wait(lock,
                      [&] { return size_ < ring_.size() || closed_; });
        if (closed_)
            fatal("ResultQueue: push after close");
        ring_[(head_ + size_) % ring_.size()] = std::move(outcome);
        ++size_;
        notEmpty_.notify_one();
    }

    /**
     * Pop the oldest outcome into @p out. Blocks while empty; returns
     * false once the queue is closed and drained.
     */
    bool
    pop(JobOutcome &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock, [&] { return size_ > 0 || closed_; });
        if (size_ == 0)
            return false;
        out = std::move(ring_[head_]);
        head_ = (head_ + 1) % ring_.size();
        --size_;
        notFull_.notify_one();
        return true;
    }

    /** No further pushes; pending outcomes stay poppable. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

  private:
    std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::vector<JobOutcome> ring_;
    size_t head_ = 0;
    size_t size_ = 0;
    bool closed_ = false;
};

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_QUEUE_HH
