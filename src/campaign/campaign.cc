#include "campaign/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>

#include "campaign/aggregate.hh"
#include "campaign/execute.hh"
#include "campaign/pool.hh"
#include "campaign/progress.hh"
#include "campaign/queue.hh"
#include "campaign/shard.hh"
#include "campaign/strategy.hh"
#include "core/repro.hh"
#include "support/log.hh"
#include "workloads/workloads.hh"

namespace txrace::campaign {

namespace {

void
emitProgress(std::ostream &os, const char *event, uint64_t round,
             uint64_t jobsTotal, uint64_t jobsDone,
             const ShardedAggregator &agg,
             const std::vector<uint64_t> &workerDone,
             const std::vector<std::atomic<uint8_t>> &workerBusy)
{
    ProgressRecord rec;
    rec.event = event;
    rec.round = round;
    rec.jobsTotal = jobsTotal;
    rec.jobsDone = jobsDone;
    rec.findings = agg.findingCount();
    rec.rawReports = agg.rawReports();
    rec.errors = agg.errorCount();
    rec.variants = agg.variantCounters();
    for (size_t i = 0; i < workerDone.size(); ++i)
        rec.workers.emplace_back(
            workerDone[i],
            workerBusy[i].load(std::memory_order_relaxed) != 0);
    writeProgressRecord(os, rec);
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg, std::ostream *progress,
            std::ostream *progressJson)
{
    if (cfg.apps.empty())
        fatal("runCampaign: no apps selected");
    if (cfg.jobs == 0)
        fatal("runCampaign: need at least one job slot");

    // Ground truth up front — also validates every app name before
    // any thread spawns.
    std::map<std::string, std::set<std::string>> groundTruth;
    for (const std::string &app : cfg.apps) {
        std::set<std::string> &labels = groundTruth[app];
        for (const workloads::RaceLabel &label :
             workloads::groundTruthRaces(app))
            labels.insert(core::raceLabelKey(label.a, label.b));
    }

    std::vector<WorkerCache> caches(cfg.jobs);
    ResultQueue queue(cfg.queueCapacity);
    bool calibrate = cfg.calibrate;
    core::SlowPathKind slowpath = cfg.slowpath;
    // Live per-worker phase gauges for the heartbeat stream.
    std::vector<std::atomic<uint8_t>> workerBusy(cfg.jobs);
    auto wall0 = std::chrono::steady_clock::now();
    WorkStealingPool pool(
        cfg.jobs,
        [&caches, &workerBusy, calibrate, slowpath,
         wall0](const JobSpec &spec, uint32_t worker) {
            workerBusy[worker].store(1, std::memory_order_relaxed);
            auto t0 = std::chrono::steady_clock::now();
            JobOutcome outcome =
                executeJob(spec, caches[worker], calibrate, slowpath);
            outcome.worker = worker;
            outcome.startMicros = uint64_t(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    t0 - wall0)
                    .count());
            workerBusy[worker].store(0, std::memory_order_relaxed);
            return outcome;
        },
        queue);

    std::unique_ptr<Strategy> strategy = makeStrategy(cfg.strategy);
    ShardedAggregator aggregator(cfg.shards);
    std::vector<JobOutcome> history;
    uint64_t nextId = 0;
    uint64_t rounds = 0;
    uint64_t jobsTotal = 0;
    uint64_t jobsDone = 0;
    std::vector<uint64_t> workerDone(cfg.jobs, 0);

    for (;;) {
        std::vector<JobSpec> jobs =
            strategy->nextRound(cfg, history, nextId);
        if (jobs.empty())
            break;
        if (progress)
            *progress << "round " << rounds << ": " << jobs.size()
                      << " job(s) [" << strategy->name() << "]\n";
        jobsTotal += jobs.size();
        pool.submit(jobs);

        // Round barrier: exactly one outcome per submitted job.
        for (size_t i = 0; i < jobs.size(); ++i) {
            JobOutcome outcome;
            if (!queue.pop(outcome))
                fatal("runCampaign: result queue closed early");
            aggregator.add(outcome);
            if (outcome.worker < workerDone.size())
                ++workerDone[outcome.worker];
            ++jobsDone;
            // Heartbeat on a job-count cadence — no wall clock, so
            // the number of records depends only on the config.
            if (progressJson && cfg.progressEvery > 0 &&
                jobsDone % cfg.progressEvery == 0)
                emitProgress(*progressJson, "progress", rounds,
                             jobsTotal, jobsDone, aggregator,
                             workerDone, workerBusy);
            history.push_back(std::move(outcome));
        }
        // Strategies see id order, never completion order.
        std::sort(history.begin(), history.end(),
                  [](const JobOutcome &x, const JobOutcome &y) {
                      return x.spec.id < y.spec.id;
                  });
        ++rounds;
    }
    auto wall1 = std::chrono::steady_clock::now();
    if (progressJson)
        emitProgress(*progressJson, "end", rounds, jobsTotal, jobsDone,
                     aggregator, workerDone, workerBusy);

    CampaignResult result =
        aggregator.collapse().finalize(cfg, groundTruth);
    result.timing.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    result.timing.runsPerSec =
        result.timing.wallSeconds > 0.0
            ? double(result.runs) / result.timing.wallSeconds
            : 0.0;
    result.timing.jobs = cfg.jobs;
    result.timing.steals = pool.steals();
    // History is already sorted by job id; the spans inherit that
    // order so the trace is stable modulo the timing values.
    result.timing.spans.reserve(history.size());
    for (const JobOutcome &o : history) {
        JobSpan span;
        span.job = o.spec.id;
        span.round = o.spec.round;
        span.app = o.spec.app;
        span.variant = o.spec.variant;
        span.seed = o.spec.seed;
        span.worker = o.worker;
        span.startMicros = o.startMicros;
        span.wallMicros = o.wallMicros;
        span.rawReports = o.races.size();
        result.timing.spans.push_back(std::move(span));
    }
    return result;
}

} // namespace txrace::campaign
