#include "campaign/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <tuple>

#include "campaign/aggregate.hh"
#include "campaign/pool.hh"
#include "campaign/queue.hh"
#include "campaign/strategy.hh"
#include "core/driver.hh"
#include "core/metrics_export.hh"
#include "core/repro.hh"
#include "support/log.hh"
#include "telemetry/json.hh"
#include "workloads/workloads.hh"

namespace txrace::campaign {

namespace {

/**
 * Per-worker workload cache. Building an AppModel (program synthesis
 * + optional calibration) dwarfs many short runs, and the same app
 * recurs across seeds; each worker keeps its own cache so no lock
 * sits between the fleet and the registry.
 */
class WorkerCache
{
  public:
    const workloads::AppModel &
    get(const std::string &app, uint32_t workers, uint64_t scale,
        bool calibrate)
    {
        Key key{app, workers, scale};
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        workloads::WorkloadParams params;
        params.nWorkers = workers;
        params.scale = scale;
        params.calibrate = calibrate;
        return cache_.emplace(key, workloads::makeApp(app, params))
            .first->second;
    }

  private:
    using Key = std::tuple<std::string, uint32_t, uint64_t>;
    std::map<Key, workloads::AppModel> cache_;
};

JobOutcome
executeJob(const JobSpec &spec, WorkerCache &cache, bool calibrate,
           core::SlowPathKind slowpath)
{
    const workloads::AppModel &app =
        cache.get(spec.app, spec.workers, spec.scale, calibrate);

    core::RunConfig rc;
    rc.mode = spec.mode;
    rc.machine = app.machine;
    rc.machine.seed = spec.seed;
    rc.machine.interruptPerStep *= spec.interruptScale;
    rc.governor.enabled = spec.governor;
    rc.slowpath = slowpath;

    core::RunIdentity identity;
    identity.target = core::RunTarget::App;
    identity.name = spec.app;
    identity.mode = core::cliModeName(spec.mode);
    identity.workers = spec.workers;
    identity.scale = spec.scale;
    identity.seed = spec.seed;
    identity.governor = spec.governor;
    identity.irqScale = spec.interruptScale;
    identity.calibrated = calibrate;
    identity.slowpath = slowpath;

    JobOutcome outcome;
    outcome.spec = spec;
    outcome.configDigest = core::configDigest(rc);
    outcome.repro = core::reproCommand(identity);

    auto t0 = std::chrono::steady_clock::now();
    core::RunResult result = core::runProgram(app.program, rc);
    auto t1 = std::chrono::steady_clock::now();
    outcome.wallMicros = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());

    outcome.ok = result.error.ok();
    outcome.error = sim::runErrorKindName(result.error.kind);
    outcome.totalCost = result.totalCost;
    outcome.txCommitted = result.stats.get("tx.committed");
    outcome.abortConflict = result.stats.get("tx.abort.conflict");
    outcome.abortCapacity = result.stats.get("tx.abort.capacity");
    outcome.abortUnknown = result.stats.get("tx.abort.unknown");

    // Race ids reference instructions of the source program (passes
    // insert but never renumber), so fingerprinting against
    // app.program is exact. Scope by app name: identical tags exist
    // in different apps.
    for (const auto &[sig, race] :
         core::fingerprintedRaces(app.program, result.races, spec.app)) {
        FoundRace found;
        found.sig = sig;
        found.kind = race.kind;
        found.hits = race.hits;
        found.addr = race.addr;
        outcome.races.push_back(std::move(found));
    }
    outcome.profile = core::buildRunProfile(spec.app, result);
    return outcome;
}

/**
 * One NDJSON heartbeat record. Compact single-line JSON; cadence is
 * decided by the caller (every cfg.progressEvery completions).
 */
void
emitProgress(std::ostream &os, const char *event, uint64_t round,
             uint64_t jobsTotal, uint64_t jobsDone,
             const Aggregator &agg,
             const std::vector<uint64_t> &workerDone,
             const std::vector<std::atomic<uint8_t>> &workerBusy)
{
    telemetry::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("schema", "txrace-progress-v1");
    w.field("event", event);
    w.field("round", round);
    w.field("jobs_total", jobsTotal);
    w.field("jobs_done", jobsDone);
    w.field("in_flight", jobsTotal - jobsDone);
    w.field("findings", agg.findingCount());
    w.field("raw_reports", agg.rawReports());
    w.field("dedup_ratio",
            agg.findingCount()
                ? double(agg.rawReports()) / double(agg.findingCount())
                : 1.0);
    w.field("errors", agg.errorCount());
    w.key("variants");
    w.beginObject();
    for (const auto &[name, runs, raw] : agg.variantCounters()) {
        w.key(name);
        w.beginObject();
        w.field("runs", runs);
        w.field("raw_reports", raw);
        w.endObject();
    }
    w.endObject();
    w.key("workers");
    w.beginArray();
    for (size_t i = 0; i < workerDone.size(); ++i) {
        w.beginObject();
        w.field("worker", uint64_t(i));
        w.field("done", workerDone[i]);
        w.field("phase", workerBusy[i].load(std::memory_order_relaxed)
                             ? "run"
                             : "idle");
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n" << std::flush;
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg, std::ostream *progress,
            std::ostream *progressJson)
{
    if (cfg.apps.empty())
        fatal("runCampaign: no apps selected");
    if (cfg.jobs == 0)
        fatal("runCampaign: need at least one job slot");

    // Ground truth up front — also validates every app name before
    // any thread spawns.
    std::map<std::string, std::set<std::string>> groundTruth;
    for (const std::string &app : cfg.apps) {
        std::set<std::string> &labels = groundTruth[app];
        for (const workloads::RaceLabel &label :
             workloads::groundTruthRaces(app))
            labels.insert(core::raceLabelKey(label.a, label.b));
    }

    std::vector<WorkerCache> caches(cfg.jobs);
    ResultQueue queue(cfg.queueCapacity);
    bool calibrate = cfg.calibrate;
    core::SlowPathKind slowpath = cfg.slowpath;
    // Live per-worker phase gauges for the heartbeat stream.
    std::vector<std::atomic<uint8_t>> workerBusy(cfg.jobs);
    auto wall0 = std::chrono::steady_clock::now();
    WorkStealingPool pool(
        cfg.jobs,
        [&caches, &workerBusy, calibrate, slowpath,
         wall0](const JobSpec &spec, uint32_t worker) {
            workerBusy[worker].store(1, std::memory_order_relaxed);
            auto t0 = std::chrono::steady_clock::now();
            JobOutcome outcome =
                executeJob(spec, caches[worker], calibrate, slowpath);
            outcome.worker = worker;
            outcome.startMicros = uint64_t(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    t0 - wall0)
                    .count());
            workerBusy[worker].store(0, std::memory_order_relaxed);
            return outcome;
        },
        queue);

    std::unique_ptr<Strategy> strategy = makeStrategy(cfg.strategy);
    Aggregator aggregator;
    std::vector<JobOutcome> history;
    uint64_t nextId = 0;
    uint64_t rounds = 0;
    uint64_t jobsTotal = 0;
    uint64_t jobsDone = 0;
    std::vector<uint64_t> workerDone(cfg.jobs, 0);

    for (;;) {
        std::vector<JobSpec> jobs =
            strategy->nextRound(cfg, history, nextId);
        if (jobs.empty())
            break;
        if (progress)
            *progress << "round " << rounds << ": " << jobs.size()
                      << " job(s) [" << strategy->name() << "]\n";
        jobsTotal += jobs.size();
        pool.submit(jobs);

        // Round barrier: exactly one outcome per submitted job.
        for (size_t i = 0; i < jobs.size(); ++i) {
            JobOutcome outcome;
            if (!queue.pop(outcome))
                fatal("runCampaign: result queue closed early");
            aggregator.add(outcome);
            if (outcome.worker < workerDone.size())
                ++workerDone[outcome.worker];
            ++jobsDone;
            // Heartbeat on a job-count cadence — no wall clock, so
            // the number of records depends only on the config.
            if (progressJson && cfg.progressEvery > 0 &&
                jobsDone % cfg.progressEvery == 0)
                emitProgress(*progressJson, "progress", rounds,
                             jobsTotal, jobsDone, aggregator,
                             workerDone, workerBusy);
            history.push_back(std::move(outcome));
        }
        // Strategies see id order, never completion order.
        std::sort(history.begin(), history.end(),
                  [](const JobOutcome &x, const JobOutcome &y) {
                      return x.spec.id < y.spec.id;
                  });
        ++rounds;
    }
    auto wall1 = std::chrono::steady_clock::now();
    if (progressJson)
        emitProgress(*progressJson, "end", rounds, jobsTotal, jobsDone,
                     aggregator, workerDone, workerBusy);

    CampaignResult result = aggregator.finalize(cfg, groundTruth);
    result.timing.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    result.timing.runsPerSec =
        result.timing.wallSeconds > 0.0
            ? double(result.runs) / result.timing.wallSeconds
            : 0.0;
    result.timing.jobs = cfg.jobs;
    result.timing.steals = pool.steals();
    // History is already sorted by job id; the spans inherit that
    // order so the trace is stable modulo the timing values.
    result.timing.spans.reserve(history.size());
    for (const JobOutcome &o : history) {
        JobSpan span;
        span.job = o.spec.id;
        span.round = o.spec.round;
        span.app = o.spec.app;
        span.variant = o.spec.variant;
        span.seed = o.spec.seed;
        span.worker = o.worker;
        span.startMicros = o.startMicros;
        span.wallMicros = o.wallMicros;
        span.rawReports = o.races.size();
        result.timing.spans.push_back(std::move(span));
    }
    return result;
}

} // namespace txrace::campaign
