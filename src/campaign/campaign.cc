#include "campaign/campaign.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <tuple>

#include "campaign/aggregate.hh"
#include "campaign/pool.hh"
#include "campaign/queue.hh"
#include "campaign/strategy.hh"
#include "core/driver.hh"
#include "core/repro.hh"
#include "support/log.hh"
#include "workloads/workloads.hh"

namespace txrace::campaign {

namespace {

/**
 * Per-worker workload cache. Building an AppModel (program synthesis
 * + optional calibration) dwarfs many short runs, and the same app
 * recurs across seeds; each worker keeps its own cache so no lock
 * sits between the fleet and the registry.
 */
class WorkerCache
{
  public:
    const workloads::AppModel &
    get(const std::string &app, uint32_t workers, uint64_t scale,
        bool calibrate)
    {
        Key key{app, workers, scale};
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        workloads::WorkloadParams params;
        params.nWorkers = workers;
        params.scale = scale;
        params.calibrate = calibrate;
        return cache_.emplace(key, workloads::makeApp(app, params))
            .first->second;
    }

  private:
    using Key = std::tuple<std::string, uint32_t, uint64_t>;
    std::map<Key, workloads::AppModel> cache_;
};

JobOutcome
executeJob(const JobSpec &spec, WorkerCache &cache, bool calibrate)
{
    const workloads::AppModel &app =
        cache.get(spec.app, spec.workers, spec.scale, calibrate);

    core::RunConfig rc;
    rc.mode = spec.mode;
    rc.machine = app.machine;
    rc.machine.seed = spec.seed;
    rc.machine.interruptPerStep *= spec.interruptScale;
    rc.governor.enabled = spec.governor;

    core::RunIdentity identity;
    identity.target = core::RunTarget::App;
    identity.name = spec.app;
    identity.mode = core::cliModeName(spec.mode);
    identity.workers = spec.workers;
    identity.scale = spec.scale;
    identity.seed = spec.seed;
    identity.governor = spec.governor;
    identity.irqScale = spec.interruptScale;
    identity.calibrated = calibrate;

    JobOutcome outcome;
    outcome.spec = spec;
    outcome.configDigest = core::configDigest(rc);
    outcome.repro = core::reproCommand(identity);

    auto t0 = std::chrono::steady_clock::now();
    core::RunResult result = core::runProgram(app.program, rc);
    auto t1 = std::chrono::steady_clock::now();
    outcome.wallMicros = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());

    outcome.ok = result.error.ok();
    outcome.error = sim::runErrorKindName(result.error.kind);
    outcome.totalCost = result.totalCost;
    outcome.txCommitted = result.stats.get("tx.committed");
    outcome.abortConflict = result.stats.get("tx.abort.conflict");
    outcome.abortCapacity = result.stats.get("tx.abort.capacity");
    outcome.abortUnknown = result.stats.get("tx.abort.unknown");

    // Race ids reference instructions of the source program (passes
    // insert but never renumber), so fingerprinting against
    // app.program is exact. Scope by app name: identical tags exist
    // in different apps.
    for (const auto &[sig, race] :
         core::fingerprintedRaces(app.program, result.races, spec.app)) {
        FoundRace found;
        found.sig = sig;
        found.kind = race.kind;
        found.hits = race.hits;
        found.addr = race.addr;
        outcome.races.push_back(std::move(found));
    }
    return outcome;
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg, std::ostream *progress)
{
    if (cfg.apps.empty())
        fatal("runCampaign: no apps selected");
    if (cfg.jobs == 0)
        fatal("runCampaign: need at least one job slot");

    // Ground truth up front — also validates every app name before
    // any thread spawns.
    std::map<std::string, std::set<std::string>> groundTruth;
    for (const std::string &app : cfg.apps) {
        std::set<std::string> &labels = groundTruth[app];
        for (const workloads::RaceLabel &label :
             workloads::groundTruthRaces(app))
            labels.insert(core::raceLabelKey(label.a, label.b));
    }

    std::vector<WorkerCache> caches(cfg.jobs);
    ResultQueue queue(cfg.queueCapacity);
    bool calibrate = cfg.calibrate;
    WorkStealingPool pool(
        cfg.jobs,
        [&caches, calibrate](const JobSpec &spec, uint32_t worker) {
            return executeJob(spec, caches[worker], calibrate);
        },
        queue);

    std::unique_ptr<Strategy> strategy = makeStrategy(cfg.strategy);
    Aggregator aggregator;
    std::vector<JobOutcome> history;
    uint64_t nextId = 0;
    uint64_t rounds = 0;

    auto wall0 = std::chrono::steady_clock::now();
    for (;;) {
        std::vector<JobSpec> jobs =
            strategy->nextRound(cfg, history, nextId);
        if (jobs.empty())
            break;
        if (progress)
            *progress << "round " << rounds << ": " << jobs.size()
                      << " job(s) [" << strategy->name() << "]\n";
        pool.submit(jobs);

        // Round barrier: exactly one outcome per submitted job.
        for (size_t i = 0; i < jobs.size(); ++i) {
            JobOutcome outcome;
            if (!queue.pop(outcome))
                fatal("runCampaign: result queue closed early");
            aggregator.add(outcome);
            history.push_back(std::move(outcome));
        }
        // Strategies see id order, never completion order.
        std::sort(history.begin(), history.end(),
                  [](const JobOutcome &x, const JobOutcome &y) {
                      return x.spec.id < y.spec.id;
                  });
        ++rounds;
    }
    auto wall1 = std::chrono::steady_clock::now();

    CampaignResult result = aggregator.finalize(cfg, groundTruth);
    result.timing.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    result.timing.runsPerSec =
        result.timing.wallSeconds > 0.0
            ? double(result.runs) / result.timing.wallSeconds
            : 0.0;
    result.timing.jobs = cfg.jobs;
    result.timing.steals = pool.steals();
    return result;
}

} // namespace txrace::campaign
