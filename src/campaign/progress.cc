#include "campaign/progress.hh"

#include "telemetry/json.hh"

namespace txrace::campaign {

void
writeProgressRecord(std::ostream &os, const ProgressRecord &rec)
{
    telemetry::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("schema", "txrace-progress-v1");
    w.field("event", rec.event);
    w.field("round", rec.round);
    w.field("jobs_total", rec.jobsTotal);
    w.field("jobs_done", rec.jobsDone);
    w.field("in_flight", rec.jobsTotal - rec.jobsDone);
    w.field("findings", rec.findings);
    w.field("raw_reports", rec.rawReports);
    w.field("dedup_ratio",
            rec.findings ? double(rec.rawReports) / double(rec.findings)
                         : 1.0);
    w.field("errors", rec.errors);
    w.key("variants");
    w.beginObject();
    for (const auto &[name, runs, raw] : rec.variants) {
        w.key(name);
        w.beginObject();
        w.field("runs", runs);
        w.field("raw_reports", raw);
        w.endObject();
    }
    w.endObject();
    w.key("workers");
    w.beginArray();
    for (size_t i = 0; i < rec.workers.size(); ++i) {
        w.beginObject();
        w.field("worker", uint64_t(i));
        w.field("done", rec.workers[i].first);
        w.field("phase", rec.workers[i].second ? "run" : "idle");
        w.endObject();
    }
    w.endArray();
    if (!rec.service.empty()) {
        w.key("service");
        w.beginObject();
        for (const auto &[name, value] : rec.service)
            w.field(name, value);
        w.endObject();
    }
    w.endObject();
    os << "\n" << std::flush;
}

} // namespace txrace::campaign
