/**
 * @file
 * The campaign engine: many deterministic Machine runs, one
 * deduplicated race-hunting result.
 *
 * TxRace's pitch is overhead low enough to run race detection
 * broadly and continuously; a single run only ever sees one schedule
 * (vips finds ~79 of its 112 races per run, §8.3). A campaign
 * executes a matrix of (workload x seed x config-variant) jobs on a
 * work-stealing pool, funnels outcomes through a bounded queue into
 * one aggregator, dedups findings by static-instruction-pair
 * fingerprint, attaches exact-reproduction metadata to the first
 * sighting of each race, and scores the union against the workload
 * registry's ground-truth annotations.
 *
 * Determinism contract: the aggregate report is a pure function of
 * CampaignConfig. Workers race freely, but every decision — strategy
 * reseeding, first-seen attribution, report order — keys on job ids
 * and fingerprints, never on completion order. `--jobs 1` and
 * `--jobs 8` produce byte-identical JSON; only CampaignTiming (kept
 * out of the report) differs.
 */

#ifndef TXRACE_CAMPAIGN_CAMPAIGN_HH
#define TXRACE_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/job.hh"
#include "support/stats.hh"
#include "telemetry/profile.hh"

namespace txrace::campaign {

/** Everything that defines one campaign. */
struct CampaignConfig
{
    /** Workloads to hunt on (registry names; empty = fatal). */
    std::vector<std::string> apps;
    /** Base seed budget per app (strategies decide how to spend a
     *  total of apps * seedsPerApp run slots; perturb multiplies by
     *  its variant count). */
    uint64_t seedsPerApp = 4;
    /** Master seed: every job seed derives from it deterministically. */
    uint64_t masterSeed = 1;
    /** Exploration strategy: sweep | abort-guided | perturb. */
    std::string strategy = "sweep";
    /** Detection mode for every job. Dyn loop-cut by default: same
     *  detection power, no profiling pre-run per job. */
    core::RunMode mode = core::RunMode::TxRaceDynLoopcut;
    /** Conflict-abort repair for every job (window = replay only the
     *  aborting window; region = the paper's TxFail broadcast). Part
     *  of each job's config digest and repro command. */
    core::SlowPathKind slowpath = core::SlowPathKind::Window;
    /** Simulated worker threads per run. */
    uint32_t workers = 4;
    uint64_t scale = 1;
    /** Pool threads (--jobs). Does not affect the report. */
    uint32_t jobs = 4;
    /** Aggregation shards (--shards). Execution fact like jobs: the
     *  report is byte-identical for any shard count. */
    uint32_t shards = 1;
    /** Run the per-app TSan-overhead calibration (slower; race
     *  hunting does not need calibrated check costs). */
    bool calibrate = false;
    /** Aggregator queue bound (backpressure on the fleet). */
    size_t queueCapacity = 64;
    /** Progress-stream cadence: one heartbeat record every N
     *  completed jobs. Job-count based, never wall clock, so the
     *  record *count* is a pure function of the config; the record
     *  contents reflect live completion order (the stream is an
     *  operational side channel, not part of the report). */
    uint64_t progressEvery = 8;
};

/** One deduplicated race across the whole campaign. */
struct Finding
{
    core::RaceSig sig;
    /** App the race belongs to (fingerprints are app-scoped). */
    std::string app;
    std::string kind;  ///< access-pair kind at first sighting
    /** Distinct runs that reported this race. */
    uint64_t runsSeen = 0;
    /** Dynamic occurrences summed over all runs. */
    uint64_t totalHits = 0;
    /** Ground-truth verdict: does the label match an annotation? */
    bool inGroundTruth = false;
    /** First sighting = lowest job id (NOT completion order). */
    uint64_t firstJob = 0;
    uint64_t firstSeed = 0;
    std::string firstVariant;
    uint64_t firstConfigDigest = 0;
    /** Exact txrace_run command reproducing the first sighting. */
    std::string repro;
};

/** Precision/recall of the campaign union for one app. */
struct AppScore
{
    std::string app;
    uint64_t expected = 0;  ///< ground-truth annotations
    uint64_t found = 0;     ///< unique findings on this app
    uint64_t matched = 0;   ///< distinct annotations found
    uint64_t falsePositives = 0;
    double precision = 1.0;
    double recall = 1.0;
};

/** Contribution of one config variant (per-strategy yield). */
struct VariantYield
{
    std::string variant;
    uint64_t runs = 0;
    uint64_t rawReports = 0;
    /** Findings whose first sighting used this variant. */
    uint64_t firstFound = 0;
};

/** One job's execution span, for the Chrome-trace timeline. Timing
 *  and scheduling facts only — excluded from the deterministic
 *  report. */
struct JobSpan
{
    uint64_t job = 0;
    uint32_t round = 0;
    std::string app;
    std::string variant;
    uint64_t seed = 0;
    uint32_t worker = 0;
    uint64_t startMicros = 0;
    uint64_t wallMicros = 0;
    uint64_t rawReports = 0;
};

/** Wall-clock facts. Excluded from the deterministic report. */
struct CampaignTiming
{
    double wallSeconds = 0.0;
    double runsPerSec = 0.0;
    uint32_t jobs = 0;
    uint64_t steals = 0;
    /** Per-job spans in id order (`txrace_hunt --trace-json`). */
    std::vector<JobSpan> spans;
};

/** The aggregate. Everything except `timing` is deterministic. */
struct CampaignResult
{
    std::vector<Finding> findings;  ///< sorted by fingerprint
    std::vector<AppScore> scores;   ///< config app order
    std::vector<VariantYield> variants;
    uint64_t runs = 0;
    uint64_t rounds = 0;
    uint64_t errors = 0;
    uint64_t rawReports = 0;
    uint64_t txCommitted = 0;
    uint64_t abortConflict = 0;
    uint64_t abortCapacity = 0;
    uint64_t abortUnknown = 0;
    /** rawReports / findings.size() (1.0 when nothing found). */
    double dedupRatio = 1.0;
    /** Fleet union of every job's site profile (txrace-profile-v1).
     *  Deterministic: Profile::merge is commutative and associative,
     *  so completion order and --jobs cannot change it. */
    telemetry::Profile profile;
    /** campaign.* counters (deterministic subset only). */
    StatSet stats;
    CampaignTiming timing;
};

/**
 * Run the campaign. Blocks until complete; spawns cfg.jobs worker
 * threads internally. @p progress (optional) receives one line per
 * round — human chatter, not part of the report. @p progressJson
 * (optional) receives the NDJSON heartbeat stream: one compact
 * txrace-progress-v1 record per cfg.progressEvery completed jobs
 * plus a final `"event":"end"` record.
 */
CampaignResult runCampaign(const CampaignConfig &cfg,
                           std::ostream *progress = nullptr,
                           std::ostream *progressJson = nullptr);

/** Write the versioned deterministic report (txrace-campaign-v1). */
void writeCampaignJson(std::ostream &os, const CampaignConfig &cfg,
                       const CampaignResult &result);

/**
 * Write the campaign's execution timeline as a Chrome trace-event
 * document: one complete ("X") span per job, pool workers as the
 * trace's thread lanes. Load in chrome://tracing or Perfetto.
 */
void writeCampaignTrace(std::ostream &os,
                        const CampaignResult &result);

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_CAMPAIGN_HH
