/**
 * @file
 * The txrace-progress-v1 heartbeat record, shared by the one-shot
 * campaign driver and the hunting service.
 *
 * One compact NDJSON line per record. Cadence is the caller's
 * business (the campaign emits every cfg.progressEvery completions;
 * the service also emits on batch boundaries and checkpoints); this
 * module only owns the wire format so the two producers cannot
 * drift. Core fields are identical for both; service-only gauges
 * ride in a trailing `service` object that one-shot campaigns omit,
 * keeping old consumers' field paths valid.
 */

#ifndef TXRACE_CAMPAIGN_PROGRESS_HH
#define TXRACE_CAMPAIGN_PROGRESS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace txrace::campaign {

/** One heartbeat. Plain data; fill and write. */
struct ProgressRecord
{
    /** "progress", "end", or a service event ("batch", "checkpoint",
     *  "resume", "shutdown"). */
    std::string event = "progress";
    uint64_t round = 0;
    uint64_t jobsTotal = 0;
    uint64_t jobsDone = 0;
    uint64_t findings = 0;
    uint64_t rawReports = 0;
    uint64_t errors = 0;
    /** (variant, runs, raw reports), name-sorted. */
    std::vector<std::tuple<std::string, uint64_t, uint64_t>> variants;
    /** Per-pool-worker (jobs done, busy now) gauges. */
    std::vector<std::pair<uint64_t, bool>> workers;
    /** Service gauges, emitted in the given order when nonempty
     *  (shard depths, checkpoint latency, ingest rate — see
     *  docs/OBSERVABILITY.md). */
    std::vector<std::pair<std::string, uint64_t>> service;
};

/** Write @p rec as one txrace-progress-v1 NDJSON line (flushed). */
void writeProgressRecord(std::ostream &os, const ProgressRecord &rec);

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_PROGRESS_HH
