/**
 * @file
 * Pluggable exploration strategies: how a campaign spends its run
 * budget across the (workload x seed x config-variant) space.
 *
 * A strategy is driven in rounds. Each call to nextRound() sees
 * every outcome so far — sorted by job id, never by completion
 * order — and returns the next batch of jobs (empty = done). The
 * round barrier plus id-sorted history is what lets an *adaptive*
 * strategy stay deterministic under any --jobs count.
 */

#ifndef TXRACE_CAMPAIGN_STRATEGY_HH
#define TXRACE_CAMPAIGN_STRATEGY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/job.hh"

namespace txrace::campaign {

class Strategy
{
  public:
    virtual ~Strategy() = default;

    virtual const char *name() const = 0;

    /**
     * Produce the next round of jobs. @p history holds every outcome
     * of earlier rounds, sorted by job id. @p nextId is the
     * campaign's job-id allocator: consume one id per job, in
     * emission order. Return empty when the campaign is complete.
     */
    virtual std::vector<JobSpec>
    nextRound(const CampaignConfig &cfg,
              const std::vector<JobOutcome> &history,
              uint64_t &nextId) = 0;

    /**
     * Serialize resumable progress as a flat name → u64 map — every
     * strategy's state machine is a handful of counters, and a flat
     * map keeps the checkpoint schema strategy-agnostic. A resumed
     * strategy must continue the campaign exactly where the saved
     * one stopped (kill-and-resume determinism test pins this).
     */
    virtual void saveState(std::map<std::string, uint64_t> &out) const
    {
        (void)out;
    }

    /** Restore saveState() output. Unknown keys are ignored; missing
     *  keys keep the freshly constructed state. */
    virtual void restoreState(const std::map<std::string, uint64_t> &in)
    {
        (void)in;
    }
};

/**
 * Derive job seed @p index of stream @p stream for @p app from the
 * master seed. Pure mixing — collisions across (app, stream, index)
 * are as unlikely as SplitMix64 allows.
 */
uint64_t deriveSeed(uint64_t masterSeed, const std::string &app,
                    uint32_t stream, uint64_t index);

/** Factory: sweep | abort-guided | perturb. fatal()s on unknown. */
std::unique_ptr<Strategy> makeStrategy(const std::string &name);

/** All strategy names (CLI listings). */
const std::vector<std::string> &strategyNames();

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_STRATEGY_HH
