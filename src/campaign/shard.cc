#include "campaign/shard.hh"

#include <algorithm>
#include <map>

#include "support/log.hh"

namespace txrace::campaign {

ShardedAggregator::ShardedAggregator(uint32_t shards)
{
    if (shards == 0)
        fatal("ShardedAggregator: need at least one shard");
    shards_.reserve(shards);
    for (uint32_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

bool
ShardedAggregator::add(const JobOutcome &outcome,
                       std::vector<const FoundRace *> *newFindings)
{
    const size_t n = shards_.size();
    // The owner shard holds the job's ledger entry and all job-level
    // counters; taking its lock first makes the duplicate check and
    // the counter fold one atomic step.
    Shard &owner = *shards_[outcome.spec.id % n];
    {
        std::lock_guard<std::mutex> lock(owner.mu);
        if (!owner.agg.seenJobs_.insert(outcome.spec.id).second)
            return false;
        owner.agg.foldCounters(outcome);
    }
    for (const FoundRace &race : outcome.races) {
        Shard &s = *shards_[race.sig.hash % n];
        std::lock_guard<std::mutex> lock(s.mu);
        if (s.agg.foldRace(outcome, race) && newFindings)
            newFindings->push_back(&race);
    }
    return true;
}

void
ShardedAggregator::seed(const Aggregator &base)
{
    const size_t n = shards_.size();
    for (const auto &[key, acc] : base.findings_)
        shards_[acc.sig.hash % n]->agg.findings_.emplace(key, acc);
    for (uint64_t id : base.seenJobs_)
        shards_[id % n]->agg.seenJobs_.insert(id);

    Aggregator &z = shards_[0]->agg;
    z.apps_.insert(base.apps_.begin(), base.apps_.end());
    z.runs_ += base.runs_;
    z.errors_ += base.errors_;
    z.rawReports_ += base.rawReports_;
    z.txCommitted_ += base.txCommitted_;
    z.abortConflict_ += base.abortConflict_;
    z.abortCapacity_ += base.abortCapacity_;
    z.abortUnknown_ += base.abortUnknown_;
    z.maxRound_ = std::max(z.maxRound_, base.maxRound_);
    for (const auto &[name, va] : base.variants_) {
        auto &into = z.variants_[name];
        into.runs += va.runs;
        into.rawReports += va.rawReports;
    }
    z.profile_.merge(base.profile_);
}

bool
ShardedAggregator::seen(uint64_t id) const
{
    const Shard &owner = *shards_[id % shards_.size()];
    std::lock_guard<std::mutex> lock(owner.mu);
    return owner.agg.seen(id);
}

std::vector<uint64_t>
ShardedAggregator::shardDepths() const
{
    std::vector<uint64_t> depths;
    depths.reserve(shards_.size());
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        depths.push_back(s->agg.findingCount());
    }
    return depths;
}

uint64_t
ShardedAggregator::runs() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->agg.runs();
    }
    return total;
}

uint64_t
ShardedAggregator::findingCount() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->agg.findingCount();
    }
    return total;
}

uint64_t
ShardedAggregator::rawReports() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->agg.rawReports();
    }
    return total;
}

uint64_t
ShardedAggregator::errorCount() const
{
    uint64_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->agg.errorCount();
    }
    return total;
}

std::vector<std::tuple<std::string, uint64_t, uint64_t>>
ShardedAggregator::variantCounters() const
{
    std::map<std::string, std::pair<uint64_t, uint64_t>> sums;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        for (const auto &[name, runs, raw] : s->agg.variantCounters()) {
            sums[name].first += runs;
            sums[name].second += raw;
        }
    }
    std::vector<std::tuple<std::string, uint64_t, uint64_t>> out;
    for (const auto &[name, v] : sums)
        out.emplace_back(name, v.first, v.second);
    return out;
}

Aggregator
ShardedAggregator::collapse() const
{
    Aggregator total;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total.merge(s->agg);
    }
    return total;
}

} // namespace txrace::campaign
