#include "campaign/aggregate.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/repro.hh"
#include "support/log.hh"
#include "telemetry/json.hh"

namespace txrace::campaign {

namespace {

const char *
kindName(detector::RaceKind kind)
{
    switch (kind) {
      case detector::RaceKind::WriteWrite: return "write-write";
      case detector::RaceKind::ReadWrite: return "read-write";
      case detector::RaceKind::WriteRead: return "write-read";
    }
    return "unknown";
}

std::string
hex64(uint64_t v)
{
    std::ostringstream ss;
    ss << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
    return ss.str();
}

} // namespace

void
Aggregator::add(const JobOutcome &outcome)
{
    ++runs_;
    maxRound_ = std::max<uint64_t>(maxRound_, outcome.spec.round);
    if (!outcome.ok)
        ++errors_;
    txCommitted_ += outcome.txCommitted;
    abortConflict_ += outcome.abortConflict;
    abortCapacity_ += outcome.abortCapacity;
    abortUnknown_ += outcome.abortUnknown;

    VariantAcc &va = variants_[outcome.spec.variant];
    ++va.runs;
    va.rawReports += outcome.races.size();
    rawReports_ += outcome.races.size();
    profile_.merge(outcome.profile);

    for (const FoundRace &race : outcome.races) {
        Acc &acc = findings_[race.sig.key];
        if (acc.runsSeen == 0) {
            acc.sig = race.sig;
            acc.app = outcome.spec.app;
        }
        ++acc.runsSeen;
        acc.totalHits += race.hits;
        // First sighting is the LOWEST job id ever to report the
        // race, regardless of the order outcomes reach us.
        if (outcome.spec.id < acc.firstJob) {
            acc.firstJob = outcome.spec.id;
            acc.firstKind = race.kind;
            acc.firstSeed = outcome.spec.seed;
            acc.firstVariant = outcome.spec.variant;
            acc.firstConfigDigest = outcome.configDigest;
            acc.firstRepro = outcome.repro;
        }
    }
}

std::vector<std::tuple<std::string, uint64_t, uint64_t>>
Aggregator::variantCounters() const
{
    std::vector<std::tuple<std::string, uint64_t, uint64_t>> out;
    for (const auto &[name, va] : variants_)
        out.emplace_back(name, va.runs, va.rawReports);
    return out;
}

CampaignResult
Aggregator::finalize(const CampaignConfig &cfg,
                     const std::map<std::string, std::set<std::string>>
                         &groundTruth) const
{
    CampaignResult result;
    result.runs = runs_;
    result.rounds = runs_ ? maxRound_ + 1 : 0;
    result.errors = errors_;
    result.rawReports = rawReports_;
    result.txCommitted = txCommitted_;
    result.abortConflict = abortConflict_;
    result.abortCapacity = abortCapacity_;
    result.abortUnknown = abortUnknown_;

    // Per-app tallies of distinct matched annotations (recall needs
    // distinct labels: several findings may share one annotation when
    // an init-idiom pair also races plainly).
    std::map<std::string, std::set<std::string>> matched;
    std::map<std::string, uint64_t> foundPerApp, fpPerApp;

    for (const auto &[key, acc] : findings_) {
        Finding f;
        f.sig = acc.sig;
        f.app = acc.app;
        f.kind = kindName(acc.firstKind);
        f.runsSeen = acc.runsSeen;
        f.totalHits = acc.totalHits;
        f.firstJob = acc.firstJob;
        f.firstSeed = acc.firstSeed;
        f.firstVariant = acc.firstVariant;
        f.firstConfigDigest = acc.firstConfigDigest;
        f.repro = acc.firstRepro;

        auto gt = groundTruth.find(acc.app);
        f.inGroundTruth =
            gt != groundTruth.end() && gt->second.count(acc.sig.label);
        ++foundPerApp[acc.app];
        if (f.inGroundTruth)
            matched[acc.app].insert(acc.sig.label);
        else
            ++fpPerApp[acc.app];

        result.findings.push_back(std::move(f));
    }
    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &x, const Finding &y) {
                  if (x.sig.hash != y.sig.hash)
                      return x.sig.hash < y.sig.hash;
                  return x.sig.key < y.sig.key;
              });

    for (const std::string &app : cfg.apps) {
        AppScore score;
        score.app = app;
        auto gt = groundTruth.find(app);
        score.expected = gt == groundTruth.end() ? 0 : gt->second.size();
        score.found = foundPerApp.count(app) ? foundPerApp.at(app) : 0;
        score.matched =
            matched.count(app) ? matched.at(app).size() : 0;
        score.falsePositives =
            fpPerApp.count(app) ? fpPerApp.at(app) : 0;
        // True positives for precision are findings whose label
        // matches an annotation (may exceed `matched` when two
        // distinct instruction pairs share a label).
        uint64_t tp = score.found - score.falsePositives;
        score.precision =
            score.found ? double(tp) / double(score.found) : 1.0;
        score.recall = score.expected
                           ? double(score.matched) /
                                 double(score.expected)
                           : 1.0;
        result.scores.push_back(score);
    }

    for (const auto &[name, va] : variants_) {
        VariantYield vy;
        vy.variant = name;
        vy.runs = va.runs;
        vy.rawReports = va.rawReports;
        result.variants.push_back(vy);
    }
    for (const Finding &f : result.findings)
        for (VariantYield &vy : result.variants)
            if (vy.variant == f.firstVariant)
                ++vy.firstFound;

    result.dedupRatio =
        result.findings.empty()
            ? 1.0
            : double(result.rawReports) /
                  double(result.findings.size());
    result.profile = profile_;

    StatSet &st = result.stats;
    st.set("campaign.runs", result.runs);
    st.set("campaign.rounds", result.rounds);
    st.set("campaign.errors", result.errors);
    st.set("campaign.raw_reports", result.rawReports);
    st.set("campaign.unique_findings", result.findings.size());
    st.set("campaign.tx_committed", result.txCommitted);
    st.set("campaign.abort_conflict", result.abortConflict);
    st.set("campaign.abort_capacity", result.abortCapacity);
    st.set("campaign.abort_unknown", result.abortUnknown);
    uint64_t totalMatched = 0, totalExpected = 0, totalFp = 0;
    for (const AppScore &s : result.scores) {
        totalMatched += s.matched;
        totalExpected += s.expected;
        totalFp += s.falsePositives;
    }
    st.set("campaign.gt_matched", totalMatched);
    st.set("campaign.gt_expected", totalExpected);
    st.set("campaign.false_positives", totalFp);

    return result;
}

void
writeCampaignJson(std::ostream &os, const CampaignConfig &cfg,
                  const CampaignResult &result)
{
    telemetry::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "txrace-campaign-v1");

    // Campaign identity: everything that determines the report.
    // Deliberately NOT here: jobs, wall time, steals — execution
    // facts that must not leak into the deterministic artifact.
    w.key("campaign");
    w.beginObject();
    w.field("master_seed", cfg.masterSeed);
    w.field("strategy", cfg.strategy);
    w.field("mode", core::cliModeName(cfg.mode));
    w.key("apps");
    w.beginArray();
    for (const std::string &app : cfg.apps)
        w.value(app);
    w.endArray();
    w.field("seeds_per_app", cfg.seedsPerApp);
    w.field("workers", uint64_t(cfg.workers));
    w.field("scale", cfg.scale);
    w.endObject();

    w.key("totals");
    w.beginObject();
    w.field("runs", result.runs);
    w.field("rounds", result.rounds);
    w.field("errors", result.errors);
    w.field("raw_reports", result.rawReports);
    w.field("unique_findings", uint64_t(result.findings.size()));
    w.field("dedup_ratio", result.dedupRatio);
    w.field("tx_committed", result.txCommitted);
    w.field("abort_conflict", result.abortConflict);
    w.field("abort_capacity", result.abortCapacity);
    w.field("abort_unknown", result.abortUnknown);
    w.endObject();

    w.key("findings");
    w.beginArray();
    for (const Finding &f : result.findings) {
        w.beginObject();
        w.field("fingerprint", hex64(f.sig.hash));
        w.field("app", f.app);
        w.field("a", f.sig.a);
        w.field("b", f.sig.b);
        w.field("kind", f.kind);
        w.field("runs_seen", f.runsSeen);
        w.field("total_hits", f.totalHits);
        w.field("in_ground_truth", f.inGroundTruth);
        w.key("first_seen");
        w.beginObject();
        w.field("job", f.firstJob);
        w.field("seed", f.firstSeed);
        w.field("variant", f.firstVariant);
        w.field("config", hex64(f.firstConfigDigest));
        w.field("repro", f.repro);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("scores");
    w.beginArray();
    for (const AppScore &s : result.scores) {
        w.beginObject();
        w.field("app", s.app);
        w.field("expected", s.expected);
        w.field("found", s.found);
        w.field("matched", s.matched);
        w.field("false_positives", s.falsePositives);
        w.field("precision", s.precision);
        w.field("recall", s.recall);
        w.endObject();
    }
    w.endArray();

    w.key("variants");
    w.beginArray();
    for (const VariantYield &vy : result.variants) {
        w.beginObject();
        w.field("variant", vy.variant);
        w.field("runs", vy.runs);
        w.field("raw_reports", vy.rawReports);
        w.field("first_found", vy.firstFound);
        w.endObject();
    }
    w.endArray();

    w.key("stats");
    w.beginObject();
    for (const auto &[name, value] : result.stats.all())
        w.field(name, value);
    w.endObject();

    w.endObject();
    os << "\n";
}

void
writeCampaignTrace(std::ostream &os, const CampaignResult &result)
{
    // Chrome trace-event format: one complete ("X") event per job
    // span, the pool worker id as the trace's thread lane.
    telemetry::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const JobSpan &s : result.timing.spans) {
        std::ostringstream name;
        name << s.app << " seed=" << s.seed;
        if (s.variant != "base")
            name << " [" << s.variant << "]";
        w.beginObject();
        w.field("name", name.str());
        w.field("cat", "job");
        w.field("ph", "X");
        w.field("ts", s.startMicros);
        w.field("dur", s.wallMicros);
        w.field("pid", uint64_t(0));
        w.field("tid", uint64_t(s.worker));
        w.key("args");
        w.beginObject();
        w.field("job", s.job);
        w.field("round", uint64_t(s.round));
        w.field("raw_reports", s.rawReports);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    os << "\n";
}

} // namespace txrace::campaign
