#include "campaign/aggregate.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/repro.hh"
#include "support/log.hh"
#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"

namespace txrace::campaign {

namespace {

std::string
hex64(uint64_t v)
{
    std::ostringstream ss;
    ss << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
    return ss.str();
}

uint64_t
getU64(const telemetry::JsonValue &obj, std::string_view key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v ? v->asU64() : 0;
}

std::string
getStr(const telemetry::JsonValue &obj, std::string_view key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v && v->isString() ? v->str : std::string();
}

} // namespace

bool
Aggregator::add(const JobOutcome &outcome)
{
    // At-least-once delivery (service resume re-submits jobs whose
    // outcomes may already be checkpointed): a duplicate id folds
    // nothing.
    if (!seenJobs_.insert(outcome.spec.id).second)
        return false;
    foldCounters(outcome);
    for (const FoundRace &race : outcome.races)
        foldRace(outcome, race);
    return true;
}

void
Aggregator::foldCounters(const JobOutcome &outcome)
{
    ++runs_;
    maxRound_ = std::max<uint64_t>(maxRound_, outcome.spec.round);
    if (!outcome.ok)
        ++errors_;
    txCommitted_ += outcome.txCommitted;
    abortConflict_ += outcome.abortConflict;
    abortCapacity_ += outcome.abortCapacity;
    abortUnknown_ += outcome.abortUnknown;
    apps_.insert(outcome.spec.app);

    VariantAcc &va = variants_[outcome.spec.variant];
    ++va.runs;
    va.rawReports += outcome.races.size();
    rawReports_ += outcome.races.size();
    profile_.merge(outcome.profile);
}

bool
Aggregator::foldRace(const JobOutcome &outcome, const FoundRace &race)
{
    Acc &acc = findings_[race.sig.key];
    const bool fresh = acc.runsSeen == 0;
    if (fresh) {
        acc.sig = race.sig;
        acc.app = outcome.spec.app;
    }
    ++acc.runsSeen;
    acc.totalHits += race.hits;
    // First sighting is the LOWEST job id ever to report the
    // race, regardless of the order outcomes reach us.
    if (outcome.spec.id < acc.firstJob) {
        acc.firstJob = outcome.spec.id;
        acc.firstKind = race.kind;
        acc.firstSeed = outcome.spec.seed;
        acc.firstVariant = outcome.spec.variant;
        acc.firstConfigDigest = outcome.configDigest;
        acc.firstRepro = outcome.repro;
    }
    return fresh;
}

void
Aggregator::merge(const Aggregator &o)
{
    seenJobs_.insert(o.seenJobs_.begin(), o.seenJobs_.end());
    apps_.insert(o.apps_.begin(), o.apps_.end());
    runs_ += o.runs_;
    errors_ += o.errors_;
    rawReports_ += o.rawReports_;
    txCommitted_ += o.txCommitted_;
    abortConflict_ += o.abortConflict_;
    abortCapacity_ += o.abortCapacity_;
    abortUnknown_ += o.abortUnknown_;
    maxRound_ = std::max(maxRound_, o.maxRound_);
    for (const auto &[name, va] : o.variants_) {
        VariantAcc &into = variants_[name];
        into.runs += va.runs;
        into.rawReports += va.rawReports;
    }
    profile_.merge(o.profile_);

    // Deterministic total order on first-sighting metadata. In the
    // shard/resume paths equal job ids carry identical metadata
    // (job execution is a pure function of the spec), so the
    // fallthrough comparisons only matter for unions of unrelated
    // stores — there they keep merge commutative.
    auto sightingLess = [](const Acc &x, const Acc &y) {
        if (x.firstJob != y.firstJob)
            return x.firstJob < y.firstJob;
        if (x.firstVariant != y.firstVariant)
            return x.firstVariant < y.firstVariant;
        if (x.firstSeed != y.firstSeed)
            return x.firstSeed < y.firstSeed;
        if (x.firstConfigDigest != y.firstConfigDigest)
            return x.firstConfigDigest < y.firstConfigDigest;
        if (x.firstRepro != y.firstRepro)
            return x.firstRepro < y.firstRepro;
        return uint8_t(x.firstKind) < uint8_t(y.firstKind);
    };
    for (const auto &[key, theirs] : o.findings_) {
        Acc &ours = findings_[key];
        if (ours.runsSeen == 0) {
            ours = theirs;
            continue;
        }
        ours.runsSeen += theirs.runsSeen;
        ours.totalHits += theirs.totalHits;
        if (sightingLess(theirs, ours)) {
            ours.firstJob = theirs.firstJob;
            ours.firstKind = theirs.firstKind;
            ours.firstSeed = theirs.firstSeed;
            ours.firstVariant = theirs.firstVariant;
            ours.firstConfigDigest = theirs.firstConfigDigest;
            ours.firstRepro = theirs.firstRepro;
        }
    }
}

void
Aggregator::writeState(telemetry::JsonWriter &w) const
{
    w.beginObject();
    w.field("runs", runs_);
    w.field("errors", errors_);
    w.field("raw_reports", rawReports_);
    w.field("tx_committed", txCommitted_);
    w.field("abort_conflict", abortConflict_);
    w.field("abort_capacity", abortCapacity_);
    w.field("abort_unknown", abortUnknown_);
    w.field("max_round", maxRound_);
    w.key("seen_jobs");
    w.beginArray();
    for (uint64_t id : seenJobs_)
        w.value(id);
    w.endArray();
    w.key("apps");
    w.beginArray();
    for (const std::string &app : apps_)
        w.value(app);
    w.endArray();
    w.key("findings");
    w.beginArray();
    for (const auto &[key, acc] : findings_) {
        w.beginObject();
        w.key("sig");
        core::writeRaceSig(w, acc.sig);
        w.field("app", acc.app);
        w.field("runs_seen", acc.runsSeen);
        w.field("total_hits", acc.totalHits);
        w.field("first_job", acc.firstJob);
        w.field("first_kind", detector::raceKindName(acc.firstKind));
        w.field("first_seed", acc.firstSeed);
        w.field("first_config", acc.firstConfigDigest);
        w.field("first_variant", acc.firstVariant);
        w.field("first_repro", acc.firstRepro);
        w.endObject();
    }
    w.endArray();
    w.key("variants");
    w.beginObject();
    for (const auto &[name, va] : variants_) {
        w.key(name);
        w.beginObject();
        w.field("runs", va.runs);
        w.field("raw_reports", va.rawReports);
        w.endObject();
    }
    w.endObject();
    w.key("profile");
    w.beginObject();
    profile_.writeBody(w);
    w.endObject();
    w.endObject();
}

bool
Aggregator::loadState(const telemetry::JsonValue &v, std::string &error)
{
    *this = Aggregator{};
    if (!v.isObject()) {
        error = "aggregate state is not an object";
        return false;
    }
    runs_ = getU64(v, "runs");
    errors_ = getU64(v, "errors");
    rawReports_ = getU64(v, "raw_reports");
    txCommitted_ = getU64(v, "tx_committed");
    abortConflict_ = getU64(v, "abort_conflict");
    abortCapacity_ = getU64(v, "abort_capacity");
    abortUnknown_ = getU64(v, "abort_unknown");
    maxRound_ = getU64(v, "max_round");

    const telemetry::JsonValue *seen = v.find("seen_jobs");
    if (!seen || !seen->isArray()) {
        error = "aggregate state: missing seen_jobs array";
        return false;
    }
    for (const telemetry::JsonValue &id : seen->array)
        seenJobs_.insert(id.asU64());

    if (const telemetry::JsonValue *apps = v.find("apps");
        apps && apps->isArray())
        for (const telemetry::JsonValue &app : apps->array)
            if (app.isString())
                apps_.insert(app.str);

    const telemetry::JsonValue *findings = v.find("findings");
    if (!findings || !findings->isArray()) {
        error = "aggregate state: missing findings array";
        return false;
    }
    for (const telemetry::JsonValue &f : findings->array) {
        if (!f.isObject()) {
            error = "aggregate state: finding entry is not an object";
            return false;
        }
        const telemetry::JsonValue *sigv = f.find("sig");
        Acc acc;
        if (!sigv || !core::readRaceSig(*sigv, acc.sig, error)) {
            if (error.empty())
                error = "aggregate state: finding without sig";
            return false;
        }
        acc.app = getStr(f, "app");
        acc.runsSeen = getU64(f, "runs_seen");
        acc.totalHits = getU64(f, "total_hits");
        if (acc.runsSeen == 0) {
            error = "aggregate state: finding '" + acc.sig.a +
                    "' with zero runs_seen";
            return false;
        }
        acc.firstJob = getU64(f, "first_job");
        if (!detector::raceKindFromName(getStr(f, "first_kind"),
                                        acc.firstKind)) {
            error = "aggregate state: bad first_kind '" +
                    getStr(f, "first_kind") + "'";
            return false;
        }
        acc.firstSeed = getU64(f, "first_seed");
        acc.firstConfigDigest = getU64(f, "first_config");
        acc.firstVariant = getStr(f, "first_variant");
        acc.firstRepro = getStr(f, "first_repro");
        if (!findings_.emplace(acc.sig.key, std::move(acc)).second) {
            error = "aggregate state: duplicate finding key";
            return false;
        }
    }

    if (const telemetry::JsonValue *vars = v.find("variants");
        vars && vars->isObject()) {
        for (const auto &[name, entry] : vars->object) {
            if (!entry.isObject()) {
                error = "aggregate state: variant '" + name +
                        "' is not an object";
                return false;
            }
            VariantAcc &va = variants_[name];
            va.runs = getU64(entry, "runs");
            va.rawReports = getU64(entry, "raw_reports");
        }
    }

    if (const telemetry::JsonValue *prof = v.find("profile")) {
        if (!telemetry::Profile::parseBody(*prof, profile_, error))
            return false;
    }
    return true;
}

std::vector<std::tuple<std::string, uint64_t, uint64_t>>
Aggregator::variantCounters() const
{
    std::vector<std::tuple<std::string, uint64_t, uint64_t>> out;
    for (const auto &[name, va] : variants_)
        out.emplace_back(name, va.runs, va.rawReports);
    return out;
}

std::vector<std::string>
Aggregator::appsSeen() const
{
    return std::vector<std::string>(apps_.begin(), apps_.end());
}

CampaignResult
Aggregator::finalize(const CampaignConfig &cfg,
                     const std::map<std::string, std::set<std::string>>
                         &groundTruth) const
{
    CampaignResult result;
    result.runs = runs_;
    result.rounds = runs_ ? maxRound_ + 1 : 0;
    result.errors = errors_;
    result.rawReports = rawReports_;
    result.txCommitted = txCommitted_;
    result.abortConflict = abortConflict_;
    result.abortCapacity = abortCapacity_;
    result.abortUnknown = abortUnknown_;

    // Per-app tallies of distinct matched annotations (recall needs
    // distinct labels: several findings may share one annotation when
    // an init-idiom pair also races plainly).
    std::map<std::string, std::set<std::string>> matched;
    std::map<std::string, uint64_t> foundPerApp, fpPerApp;

    for (const auto &[key, acc] : findings_) {
        Finding f;
        f.sig = acc.sig;
        f.app = acc.app;
        f.kind = detector::raceKindName(acc.firstKind);
        f.runsSeen = acc.runsSeen;
        f.totalHits = acc.totalHits;
        f.firstJob = acc.firstJob;
        f.firstSeed = acc.firstSeed;
        f.firstVariant = acc.firstVariant;
        f.firstConfigDigest = acc.firstConfigDigest;
        f.repro = acc.firstRepro;

        auto gt = groundTruth.find(acc.app);
        f.inGroundTruth =
            gt != groundTruth.end() && gt->second.count(acc.sig.label);
        ++foundPerApp[acc.app];
        if (f.inGroundTruth)
            matched[acc.app].insert(acc.sig.label);
        else
            ++fpPerApp[acc.app];

        result.findings.push_back(std::move(f));
    }
    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &x, const Finding &y) {
                  if (x.sig.hash != y.sig.hash)
                      return x.sig.hash < y.sig.hash;
                  return x.sig.key < y.sig.key;
              });

    for (const std::string &app : cfg.apps) {
        AppScore score;
        score.app = app;
        auto gt = groundTruth.find(app);
        score.expected = gt == groundTruth.end() ? 0 : gt->second.size();
        score.found = foundPerApp.count(app) ? foundPerApp.at(app) : 0;
        score.matched =
            matched.count(app) ? matched.at(app).size() : 0;
        score.falsePositives =
            fpPerApp.count(app) ? fpPerApp.at(app) : 0;
        // True positives for precision are findings whose label
        // matches an annotation (may exceed `matched` when two
        // distinct instruction pairs share a label).
        uint64_t tp = score.found - score.falsePositives;
        score.precision =
            score.found ? double(tp) / double(score.found) : 1.0;
        score.recall = score.expected
                           ? double(score.matched) /
                                 double(score.expected)
                           : 1.0;
        result.scores.push_back(score);
    }

    for (const auto &[name, va] : variants_) {
        VariantYield vy;
        vy.variant = name;
        vy.runs = va.runs;
        vy.rawReports = va.rawReports;
        result.variants.push_back(vy);
    }
    for (const Finding &f : result.findings)
        for (VariantYield &vy : result.variants)
            if (vy.variant == f.firstVariant)
                ++vy.firstFound;

    result.dedupRatio =
        result.findings.empty()
            ? 1.0
            : double(result.rawReports) /
                  double(result.findings.size());
    result.profile = profile_;

    StatSet &st = result.stats;
    st.set("campaign.runs", result.runs);
    st.set("campaign.rounds", result.rounds);
    st.set("campaign.errors", result.errors);
    st.set("campaign.raw_reports", result.rawReports);
    st.set("campaign.unique_findings", result.findings.size());
    st.set("campaign.tx_committed", result.txCommitted);
    st.set("campaign.abort_conflict", result.abortConflict);
    st.set("campaign.abort_capacity", result.abortCapacity);
    st.set("campaign.abort_unknown", result.abortUnknown);
    uint64_t totalMatched = 0, totalExpected = 0, totalFp = 0;
    for (const AppScore &s : result.scores) {
        totalMatched += s.matched;
        totalExpected += s.expected;
        totalFp += s.falsePositives;
    }
    st.set("campaign.gt_matched", totalMatched);
    st.set("campaign.gt_expected", totalExpected);
    st.set("campaign.false_positives", totalFp);

    return result;
}

void
writeCampaignJson(std::ostream &os, const CampaignConfig &cfg,
                  const CampaignResult &result)
{
    telemetry::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "txrace-campaign-v1");

    // Campaign identity: everything that determines the report.
    // Deliberately NOT here: jobs, shards, wall time, steals —
    // execution facts that must not leak into the deterministic
    // artifact.
    w.key("campaign");
    w.beginObject();
    w.field("master_seed", cfg.masterSeed);
    w.field("strategy", cfg.strategy);
    w.field("mode", core::cliModeName(cfg.mode));
    w.key("apps");
    w.beginArray();
    for (const std::string &app : cfg.apps)
        w.value(app);
    w.endArray();
    w.field("seeds_per_app", cfg.seedsPerApp);
    w.field("workers", uint64_t(cfg.workers));
    w.field("scale", cfg.scale);
    w.endObject();

    w.key("totals");
    w.beginObject();
    w.field("runs", result.runs);
    w.field("rounds", result.rounds);
    w.field("errors", result.errors);
    w.field("raw_reports", result.rawReports);
    w.field("unique_findings", uint64_t(result.findings.size()));
    w.field("dedup_ratio", result.dedupRatio);
    w.field("tx_committed", result.txCommitted);
    w.field("abort_conflict", result.abortConflict);
    w.field("abort_capacity", result.abortCapacity);
    w.field("abort_unknown", result.abortUnknown);
    w.endObject();

    w.key("findings");
    w.beginArray();
    for (const Finding &f : result.findings) {
        w.beginObject();
        w.field("fingerprint", hex64(f.sig.hash));
        w.field("app", f.app);
        w.field("a", f.sig.a);
        w.field("b", f.sig.b);
        w.field("kind", f.kind);
        w.field("runs_seen", f.runsSeen);
        w.field("total_hits", f.totalHits);
        w.field("in_ground_truth", f.inGroundTruth);
        w.key("first_seen");
        w.beginObject();
        w.field("job", f.firstJob);
        w.field("seed", f.firstSeed);
        w.field("variant", f.firstVariant);
        w.field("config", hex64(f.firstConfigDigest));
        w.field("repro", f.repro);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("scores");
    w.beginArray();
    for (const AppScore &s : result.scores) {
        w.beginObject();
        w.field("app", s.app);
        w.field("expected", s.expected);
        w.field("found", s.found);
        w.field("matched", s.matched);
        w.field("false_positives", s.falsePositives);
        w.field("precision", s.precision);
        w.field("recall", s.recall);
        w.endObject();
    }
    w.endArray();

    w.key("variants");
    w.beginArray();
    for (const VariantYield &vy : result.variants) {
        w.beginObject();
        w.field("variant", vy.variant);
        w.field("runs", vy.runs);
        w.field("raw_reports", vy.rawReports);
        w.field("first_found", vy.firstFound);
        w.endObject();
    }
    w.endArray();

    w.key("stats");
    w.beginObject();
    for (const auto &[name, value] : result.stats.all())
        w.field(name, value);
    w.endObject();

    w.endObject();
    os << "\n";
}

void
writeCampaignTrace(std::ostream &os, const CampaignResult &result)
{
    // Chrome trace-event format: one complete ("X") event per job
    // span, the pool worker id as the trace's thread lane.
    telemetry::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const JobSpan &s : result.timing.spans) {
        std::ostringstream name;
        name << s.app << " seed=" << s.seed;
        if (s.variant != "base")
            name << " [" << s.variant << "]";
        w.beginObject();
        w.field("name", name.str());
        w.field("cat", "job");
        w.field("ph", "X");
        w.field("ts", s.startMicros);
        w.field("dur", s.wallMicros);
        w.field("pid", uint64_t(0));
        w.field("tid", uint64_t(s.worker));
        w.key("args");
        w.beginObject();
        w.field("job", s.job);
        w.field("round", uint64_t(s.round));
        w.field("raw_reports", s.rawReports);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    os << "\n";
}

} // namespace txrace::campaign
