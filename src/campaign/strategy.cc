#include "campaign/strategy.hh"

#include <algorithm>
#include <map>

#include "support/log.hh"
#include "support/rng.hh"

namespace txrace::campaign {

namespace {

uint64_t
stateOr(const std::map<std::string, uint64_t> &in, const char *key,
        uint64_t fallback)
{
    auto it = in.find(key);
    return it == in.end() ? fallback : it->second;
}

JobSpec
baseJob(const CampaignConfig &cfg, uint64_t &nextId, uint32_t round,
        const std::string &app, uint64_t seed)
{
    JobSpec job;
    job.id = nextId++;
    job.round = round;
    job.app = app;
    job.seed = seed;
    job.mode = cfg.mode;
    job.workers = cfg.workers;
    job.scale = cfg.scale;
    return job;
}

/**
 * Plain seed sweep: every app gets seedsPerApp derived seeds, one
 * round, no adaptation. The baseline every other strategy is
 * measured against.
 */
class SeedSweep final : public Strategy
{
  public:
    const char *name() const override { return "sweep"; }

    std::vector<JobSpec>
    nextRound(const CampaignConfig &cfg,
              const std::vector<JobOutcome> &history,
              uint64_t &nextId) override
    {
        std::vector<JobSpec> jobs;
        if (!history.empty() || done_)
            return jobs;
        done_ = true;
        for (const std::string &app : cfg.apps)
            for (uint64_t i = 0; i < cfg.seedsPerApp; ++i)
                jobs.push_back(baseJob(
                    cfg, nextId, 0, app,
                    deriveSeed(cfg.masterSeed, app, 0, i)));
        return jobs;
    }

    void
    saveState(std::map<std::string, uint64_t> &out) const override
    {
        out["done"] = done_ ? 1 : 0;
    }

    void
    restoreState(const std::map<std::string, uint64_t> &in) override
    {
        done_ = stateOr(in, "done", 0) != 0;
    }

  private:
    bool done_ = false;
};

/**
 * Abort-guided adaptive reseeding. Round 0 spends half the budget as
 * a uniform probe; round 1 spends the remainder where HTM conflict
 * aborts cluster — conflict aborts are the fast path *noticing*
 * cross-thread line sharing, so they are the cheapest observable
 * proxy for "schedule-sensitive races may hide here" (vips-style
 * narrow windows need many schedules; blackscholes needs none).
 * Weights come from the id-sorted round-0 outcomes only, so the
 * allocation is identical under any worker count.
 */
class AbortGuided final : public Strategy
{
  public:
    const char *name() const override { return "abort-guided"; }

    std::vector<JobSpec>
    nextRound(const CampaignConfig &cfg,
              const std::vector<JobOutcome> &history,
              uint64_t &nextId) override
    {
        std::vector<JobSpec> jobs;
        if (round_ == 0) {
            probePerApp_ = std::max<uint64_t>(1, cfg.seedsPerApp / 2);
            for (const std::string &app : cfg.apps)
                for (uint64_t i = 0; i < probePerApp_; ++i)
                    jobs.push_back(baseJob(
                        cfg, nextId, 0, app,
                        deriveSeed(cfg.masterSeed, app, 0, i)));
            round_ = 1;
            return jobs;
        }
        if (round_ != 1)
            return jobs;
        round_ = 2;

        uint64_t total_budget = cfg.apps.size() * cfg.seedsPerApp;
        uint64_t spent = cfg.apps.size() * probePerApp_;
        uint64_t budget = total_budget > spent ? total_budget - spent
                                               : 0;
        if (budget == 0)
            return jobs;

        // Conflict-abort mass per app from the probe round (+1
        // smoothing so every app keeps a nonzero share and the
        // weights never degenerate).
        std::map<std::string, uint64_t> weight;
        for (const std::string &app : cfg.apps)
            weight[app] = 1;
        for (const JobOutcome &o : history)
            weight[o.spec.app] += o.abortConflict;
        uint64_t wsum = 0;
        for (const std::string &app : cfg.apps)
            wsum += weight[app];

        // Largest-remainder apportionment, ties broken by app order:
        // deterministic and exactly exhausts the budget.
        struct Share
        {
            size_t appIdx;
            uint64_t seats;
            uint64_t remainder;
        };
        std::vector<Share> shares;
        uint64_t given = 0;
        for (size_t a = 0; a < cfg.apps.size(); ++a) {
            uint64_t num = weight[cfg.apps[a]] * budget;
            shares.push_back({a, num / wsum, num % wsum});
            given += num / wsum;
        }
        std::vector<size_t> order(shares.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t x, size_t y) {
                             return shares[x].remainder >
                                    shares[y].remainder;
                         });
        for (size_t i = 0; given < budget && i < order.size();
             ++i, ++given)
            ++shares[order[i]].seats;

        for (const Share &s : shares) {
            const std::string &app = cfg.apps[s.appIdx];
            for (uint64_t i = 0; i < s.seats; ++i) {
                JobSpec job = baseJob(
                    cfg, nextId, 1, app,
                    deriveSeed(cfg.masterSeed, app, 1, i));
                job.variant = "reseed";
                jobs.push_back(job);
            }
        }
        return jobs;
    }

    void
    saveState(std::map<std::string, uint64_t> &out) const override
    {
        out["round"] = round_;
        out["probe_per_app"] = probePerApp_;
    }

    void
    restoreState(const std::map<std::string, uint64_t> &in) override
    {
        round_ = uint32_t(stateOr(in, "round", 0));
        probePerApp_ = stateOr(in, "probe_per_app", 0);
    }

  private:
    uint32_t round_ = 0;
    uint64_t probePerApp_ = 0;
};

/**
 * Interrupt/oversubscription perturbation sweep: the full cross
 * product of apps x variants x seeds, one round. Interrupt storms
 * shake transactional windows apart (different overlap sets);
 * oversubscription beyond the physical cores reproduces the paper's
 * 8-thread unknown-abort spike and the schedule churn that comes
 * with it. Detection-window diversity, bought with config instead
 * of seeds.
 */
class PerturbSweep final : public Strategy
{
  public:
    const char *name() const override { return "perturb"; }

    std::vector<JobSpec>
    nextRound(const CampaignConfig &cfg,
              const std::vector<JobOutcome> &history,
              uint64_t &nextId) override
    {
        std::vector<JobSpec> jobs;
        if (!history.empty() || done_)
            return jobs;
        done_ = true;

        struct Variant
        {
            const char *name;
            double interruptScale;
            bool oversub;
            bool governor;
        };
        // Workload programs support at most 8 workers (idiom row
        // limits), so oversubscription doubles up to that cap.
        const Variant kVariants[] = {
            {"base", 1.0, false, false},
            {"irq-x4", 4.0, false, false},
            {"irq-x16", 16.0, false, false},
            {"oversub", 1.0, true, false},
            {"oversub-gov", 4.0, true, true},
        };
        uint32_t stream = 0;
        for (const Variant &v : kVariants) {
            ++stream;
            for (const std::string &app : cfg.apps) {
                for (uint64_t i = 0; i < cfg.seedsPerApp; ++i) {
                    JobSpec job = baseJob(
                        cfg, nextId, 0, app,
                        deriveSeed(cfg.masterSeed, app, stream, i));
                    job.variant = v.name;
                    job.interruptScale = v.interruptScale;
                    if (v.oversub)
                        job.workers =
                            std::min<uint32_t>(8, cfg.workers * 2);
                    job.governor = v.governor;
                    jobs.push_back(job);
                }
            }
        }
        return jobs;
    }

    void
    saveState(std::map<std::string, uint64_t> &out) const override
    {
        out["done"] = done_ ? 1 : 0;
    }

    void
    restoreState(const std::map<std::string, uint64_t> &in) override
    {
        done_ = stateOr(in, "done", 0) != 0;
    }

  private:
    bool done_ = false;
};

} // namespace

uint64_t
deriveSeed(uint64_t masterSeed, const std::string &app,
           uint32_t stream, uint64_t index)
{
    uint64_t state = masterSeed;
    state ^= core::fnv1a64(app);
    state ^= (uint64_t(stream) + 1) * 0x9e3779b97f4a7c15ULL;
    state += index * 0xbf58476d1ce4e5b9ULL;
    return splitmix64(state);
}

std::unique_ptr<Strategy>
makeStrategy(const std::string &name)
{
    if (name == "sweep")
        return std::make_unique<SeedSweep>();
    if (name == "abort-guided")
        return std::make_unique<AbortGuided>();
    if (name == "perturb")
        return std::make_unique<PerturbSweep>();
    fatal("unknown strategy '%s' (sweep, abort-guided, perturb)",
          name.c_str());
}

const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names = {
        "sweep", "abort-guided", "perturb"};
    return names;
}

} // namespace txrace::campaign
