/**
 * @file
 * Sharded aggregation: the single Aggregator partitioned by
 * fingerprint hash into N independently locked shards.
 *
 * The single-threaded aggregator is fine behind a round barrier, but
 * a continuous service ingesting outcomes from many threads (or many
 * spool files) serializes on it. A ShardedAggregator splits the work
 * two ways:
 *
 *  - JOB-level facts (run counters, idempotence ledger, variants,
 *    profile) fold into the job's OWNER shard, `spec.id % N` — one
 *    shard owns each job, so the duplicate check is a single
 *    lock acquisition and counters are never split.
 *  - Each RACE folds into the shard `sig.hash % N` — the same key
 *    always lands on the same shard, so per-shard findings maps hold
 *    disjoint key sets and dedup needs no cross-shard coordination.
 *
 * Because every Aggregator fold is commutative and associative,
 * collapse() — merging the shards in any order — yields byte-for-byte
 * the state the single aggregator would have built: N and the merge
 * order are execution facts, invisible in the report. That is the
 * shard-determinism contract the campaign tests pin
 * (`--shards 1/4/16` byte-identical).
 */

#ifndef TXRACE_CAMPAIGN_SHARD_HH
#define TXRACE_CAMPAIGN_SHARD_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/aggregate.hh"

namespace txrace::campaign {

class ShardedAggregator
{
  public:
    /** @p shards >= 1 enforced (fatal on 0). */
    explicit ShardedAggregator(uint32_t shards = 1);

    /**
     * Fold one outcome in. Thread-safe and idempotent on job id:
     * concurrent or repeated adds of the same id fold exactly once.
     * Returns false for duplicates. When @p newFindings is non-null
     * it receives pointers (into @p outcome) to the races that
     * created a NEW finding — the service's incremental delta feed.
     */
    bool add(const JobOutcome &outcome,
             std::vector<const FoundRace *> *newFindings = nullptr);

    /** Whether job @p id has been folded (checks the owner shard). */
    bool seen(uint64_t id) const;

    /**
     * Pre-load restored state (service resume) before any add().
     * Findings scatter to their hash-owned shards and seen ids to
     * their id-owned shards — both placements are what add() will
     * probe — while the indivisible job-level sums land on shard 0
     * (merge commutativity makes the placement invisible). NOT
     * thread-safe; call before the fleet starts.
     */
    void seed(const Aggregator &base);

    uint32_t shardCount() const { return uint32_t(shards_.size()); }

    /**
     * Direct shard access for explicit merge-order tests and the
     * shard-depth gauges. NOT safe concurrently with add().
     */
    const Aggregator &shard(uint32_t i) const { return shards_[i]->agg; }

    /** Findings held per shard (service telemetry gauge). */
    std::vector<uint64_t> shardDepths() const;

    // Live snapshot accessors for the progress stream: sum across
    // shards under the shard locks. Deterministic at any point where
    // a fixed set of outcomes has been folded.
    uint64_t runs() const;
    uint64_t findingCount() const;
    uint64_t rawReports() const;
    uint64_t errorCount() const;
    std::vector<std::tuple<std::string, uint64_t, uint64_t>>
    variantCounters() const;

    /**
     * Merge every shard into one Aggregator. Deterministic for ANY
     * shard count and internal merge order (Aggregator::merge is
     * commutative/associative and shard key sets are disjoint).
     */
    Aggregator collapse() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        Aggregator agg;
    };
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_SHARD_HH
