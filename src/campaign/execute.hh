/**
 * @file
 * Job execution: one JobSpec in, one JobOutcome out.
 *
 * Extracted from the campaign loop so both drivers share it: the
 * one-shot campaign (campaign.cc) and the continuous hunting service
 * (src/service) execute jobs identically, which is what makes a
 * resumed service campaign reproduce the uninterrupted run — an
 * outcome is a pure function of its spec (plus the calibrate /
 * slow-path knobs that are part of the campaign identity).
 */

#ifndef TXRACE_CAMPAIGN_EXECUTE_HH
#define TXRACE_CAMPAIGN_EXECUTE_HH

#include <map>
#include <string>
#include <tuple>

#include "campaign/job.hh"
#include "core/runmode.hh"
#include "workloads/workloads.hh"

namespace txrace::campaign {

/**
 * Per-worker workload cache. Building an AppModel (program synthesis
 * + optional calibration) dwarfs many short runs, and the same app
 * recurs across seeds; each worker keeps its own cache so no lock
 * sits between the fleet and the registry.
 */
class WorkerCache
{
  public:
    const workloads::AppModel &get(const std::string &app,
                                   uint32_t workers, uint64_t scale,
                                   bool calibrate);

  private:
    using Key = std::tuple<std::string, uint32_t, uint64_t>;
    std::map<Key, workloads::AppModel> cache_;
};

/**
 * Execute @p spec. Deterministic: the returned outcome (minus the
 * wall-clock fields) depends only on the spec and the two knobs.
 */
JobOutcome executeJob(const JobSpec &spec, WorkerCache &cache,
                      bool calibrate, core::SlowPathKind slowpath);

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_EXECUTE_HH
