#include "campaign/execute.hh"

#include <chrono>

#include "core/driver.hh"
#include "core/metrics_export.hh"
#include "core/repro.hh"

namespace txrace::campaign {

const workloads::AppModel &
WorkerCache::get(const std::string &app, uint32_t workers,
                 uint64_t scale, bool calibrate)
{
    Key key{app, workers, scale};
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    workloads::WorkloadParams params;
    params.nWorkers = workers;
    params.scale = scale;
    params.calibrate = calibrate;
    return cache_.emplace(key, workloads::makeApp(app, params))
        .first->second;
}

JobOutcome
executeJob(const JobSpec &spec, WorkerCache &cache, bool calibrate,
           core::SlowPathKind slowpath)
{
    const workloads::AppModel &app =
        cache.get(spec.app, spec.workers, spec.scale, calibrate);

    core::RunConfig rc;
    rc.mode = spec.mode;
    rc.machine = app.machine;
    rc.machine.seed = spec.seed;
    rc.machine.interruptPerStep *= spec.interruptScale;
    rc.governor.enabled = spec.governor;
    rc.slowpath = slowpath;

    core::RunIdentity identity;
    identity.target = core::RunTarget::App;
    identity.name = spec.app;
    identity.mode = core::cliModeName(spec.mode);
    identity.workers = spec.workers;
    identity.scale = spec.scale;
    identity.seed = spec.seed;
    identity.governor = spec.governor;
    identity.irqScale = spec.interruptScale;
    identity.calibrated = calibrate;
    identity.slowpath = slowpath;

    JobOutcome outcome;
    outcome.spec = spec;
    outcome.configDigest = core::configDigest(rc);
    outcome.repro = core::reproCommand(identity);

    auto t0 = std::chrono::steady_clock::now();
    core::RunResult result = core::runProgram(app.program, rc);
    auto t1 = std::chrono::steady_clock::now();
    outcome.wallMicros = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());

    outcome.ok = result.error.ok();
    outcome.error = sim::runErrorKindName(result.error.kind);
    outcome.totalCost = result.totalCost;
    outcome.txCommitted = result.stats.get("tx.committed");
    outcome.abortConflict = result.stats.get("tx.abort.conflict");
    outcome.abortCapacity = result.stats.get("tx.abort.capacity");
    outcome.abortUnknown = result.stats.get("tx.abort.unknown");

    // Race ids reference instructions of the source program (passes
    // insert but never renumber), so fingerprinting against
    // app.program is exact. Scope by app name: identical tags exist
    // in different apps.
    for (const auto &[sig, race] :
         core::fingerprintedRaces(app.program, result.races, spec.app)) {
        FoundRace found;
        found.sig = sig;
        found.kind = race.kind;
        found.hits = race.hits;
        found.addr = race.addr;
        outcome.races.push_back(std::move(found));
    }
    outcome.profile = core::buildRunProfile(spec.app, result);
    return outcome;
}

} // namespace txrace::campaign
