#include "campaign/pool.hh"

#include "support/log.hh"

namespace txrace::campaign {

WorkStealingPool::WorkStealingPool(uint32_t nWorkers, Runner runner,
                                   ResultQueue &out)
    : runner_(std::move(runner)), out_(out)
{
    if (nWorkers == 0)
        fatal("WorkStealingPool: need at least one worker");
    workers_.reserve(nWorkers);
    for (uint32_t i = 0; i < nWorkers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(nWorkers);
    for (uint32_t i = 0; i < nWorkers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

void
WorkStealingPool::stopAndJoin()
{
    abandon_.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(wakeMu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

void
WorkStealingPool::submit(const std::vector<JobSpec> &jobs)
{
    for (size_t i = 0; i < jobs.size(); ++i) {
        Worker &w = *workers_[i % workers_.size()];
        std::lock_guard<std::mutex> lock(w.mu);
        w.q.push_back(jobs[i]);
    }
    // Empty lock/unlock pairs with the predicate check in workerLoop:
    // a worker that saw empty deques is either still holding wakeMu_
    // (and will be notified) or has not yet re-checked (and will see
    // the jobs).
    { std::lock_guard<std::mutex> lock(wakeMu_); }
    wake_.notify_all();
}

bool
WorkStealingPool::takeJob(uint32_t self, JobSpec &job, bool &stolen)
{
    {
        Worker &own = *workers_[self];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.q.empty()) {
            job = std::move(own.q.front());
            own.q.pop_front();
            stolen = false;
            return true;
        }
    }
    for (size_t k = 1; k < workers_.size(); ++k) {
        Worker &victim = *workers_[(self + k) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.q.empty()) {
            job = std::move(victim.q.back());
            victim.q.pop_back();
            stolen = true;
            return true;
        }
    }
    return false;
}

bool
WorkStealingPool::anyQueued()
{
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->q.empty())
            return true;
    }
    return false;
}

void
WorkStealingPool::workerLoop(uint32_t self)
{
    for (;;) {
        if (abandon_.load(std::memory_order_relaxed))
            return;
        JobSpec job;
        bool stolen = false;
        if (takeJob(self, job, stolen)) {
            if (stolen)
                steals_.fetch_add(1);
            out_.push(runner_(job, self));
            continue;
        }
        std::unique_lock<std::mutex> lock(wakeMu_);
        wake_.wait(lock, [&] { return stop_ || anyQueued(); });
        if (stop_)
            return;
    }
}

} // namespace txrace::campaign
