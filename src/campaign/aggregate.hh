/**
 * @file
 * The campaign aggregator: folds job outcomes — arriving in
 * arbitrary completion order — into the deterministic campaign
 * result.
 *
 * Dedup is by RaceSig *key* (the full app-scoped endpoint-pair
 * string); the 64-bit fingerprint hash is a display/sort handle
 * only, so a hash collision degrades nothing but cosmetics. The
 * "first sighting" of a finding is the outcome with the LOWEST JOB
 * ID that reported it — a min-fold, order-independent — and its
 * seed/variant/config digest/repro command are what the report
 * carries as reproduction metadata.
 *
 * Delivery contract: add() is idempotent on job id. The service
 * layer re-submits jobs whose outcomes may or may not have been
 * checkpointed (at-least-once delivery across kill/resume), so a
 * duplicate fold must change nothing. State is also a commutative
 * monoid under merge(): shard aggregators and independently
 * produced findings stores union into the same bytes no matter the
 * merge order.
 */

#ifndef TXRACE_CAMPAIGN_AGGREGATE_HH
#define TXRACE_CAMPAIGN_AGGREGATE_HH

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/job.hh"
#include "telemetry/profile.hh"

namespace txrace::telemetry {
class JsonWriter;
struct JsonValue;
} // namespace txrace::telemetry

namespace txrace::campaign {

class Aggregator
{
  public:
    /**
     * Fold one outcome in. Any order; idempotent on the job id — a
     * second add of an id already folded (including via merge() of a
     * checkpointed state) is a no-op. Returns false for such
     * duplicates, true when the outcome was folded.
     */
    bool add(const JobOutcome &outcome);

    /** Whether job @p id has already been folded in. */
    bool seen(uint64_t id) const { return seenJobs_.count(id) != 0; }

    /** Outcomes folded so far. */
    uint64_t runs() const { return runs_; }

    // Snapshot accessors for the progress stream: cheap, callable
    // between add()s, and pure functions of the outcomes folded so
    // far (hence deterministic at every round barrier).
    /** Distinct deduplicated races so far. */
    uint64_t findingCount() const { return findings_.size(); }
    /** Pre-dedup race reports so far. */
    uint64_t rawReports() const { return rawReports_; }
    /** Abnormally-ended jobs so far. */
    uint64_t errorCount() const { return errors_; }
    /** Per-variant (runs, raw reports) so far, name-ordered. */
    std::vector<std::tuple<std::string, uint64_t, uint64_t>>
    variantCounters() const;
    /** Apps that contributed at least one outcome, sorted. */
    std::vector<std::string> appsSeen() const;

    /**
     * Commutative, associative fold of another aggregator's state
     * into this one: counters sum, first sightings min-fold by job
     * id, variant and finding maps union, seen-job sets union. The
     * shard merge and the cross-host findings-store union both rely
     * on merge(A, B) == merge(B, A). Callers union states holding
     * DISJOINT job sets (shards of one campaign, hosts covering
     * different parts of a matrix); overlapping sets would double
     * count the jobs both sides folded.
     */
    void merge(const Aggregator &o);

    /**
     * Serialize the accumulated state as the `aggregate` object of a
     * txrace-findings-v1 document (docs/OBSERVABILITY.md).
     * Byte-deterministic: sorted maps and integer-only counters, so
     * checkpoint → load → checkpoint round-trips exactly.
     */
    void writeState(telemetry::JsonWriter &w) const;

    /**
     * Restore state from a parsed `aggregate` object, replacing the
     * current contents. Returns false with a description in
     * @p error on malformed input; the aggregator is left empty.
     */
    bool loadState(const telemetry::JsonValue &v, std::string &error);

    /**
     * Produce the deterministic result (no timing filled in).
     * @p groundTruth maps app name -> set of raceLabelKey() strings;
     * scoring uses cfg.apps order.
     */
    CampaignResult finalize(const CampaignConfig &cfg,
                            const std::map<std::string,
                                           std::set<std::string>>
                                &groundTruth) const;

  private:
    friend class ShardedAggregator;

    /** Accumulating state of one deduplicated race. */
    struct Acc
    {
        core::RaceSig sig;
        std::string app;
        uint64_t runsSeen = 0;
        uint64_t totalHits = 0;
        /** First sighting = minimal job id seen so far. */
        uint64_t firstJob = ~0ull;
        detector::RaceKind firstKind = detector::RaceKind::WriteWrite;
        uint64_t firstSeed = 0;
        std::string firstVariant;
        uint64_t firstConfigDigest = 0;
        std::string firstRepro;
    };

    /** Job-level tallies of @p outcome (everything but the races). */
    void foldCounters(const JobOutcome &outcome);
    /** One race report of @p outcome into the findings map. Returns
     *  true when the race key was new (a finding delta). */
    bool foldRace(const JobOutcome &outcome, const FoundRace &race);

    /** Keyed by RaceSig::key (full identity, not the hash). */
    std::map<std::string, Acc> findings_;

    struct VariantAcc
    {
        uint64_t runs = 0;
        uint64_t rawReports = 0;
    };
    std::map<std::string, VariantAcc> variants_;

    /** Fleet profile union (commutative merge ⇒ order-free). */
    telemetry::Profile profile_;

    /** Job ids already folded (the idempotence ledger). */
    std::set<uint64_t> seenJobs_;
    /** Apps that contributed at least one outcome. */
    std::set<std::string> apps_;

    uint64_t runs_ = 0;
    uint64_t errors_ = 0;
    uint64_t rawReports_ = 0;
    uint64_t txCommitted_ = 0;
    uint64_t abortConflict_ = 0;
    uint64_t abortCapacity_ = 0;
    uint64_t abortUnknown_ = 0;
    uint64_t maxRound_ = 0;
};

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_AGGREGATE_HH
