/**
 * @file
 * The campaign aggregator: folds job outcomes — arriving in
 * arbitrary completion order — into the deterministic campaign
 * result.
 *
 * Dedup is by RaceSig *key* (the full app-scoped endpoint-pair
 * string); the 64-bit fingerprint hash is a display/sort handle
 * only, so a hash collision degrades nothing but cosmetics. The
 * "first sighting" of a finding is the outcome with the LOWEST JOB
 * ID that reported it — a min-fold, order-independent — and its
 * seed/variant/config digest/repro command are what the report
 * carries as reproduction metadata.
 */

#ifndef TXRACE_CAMPAIGN_AGGREGATE_HH
#define TXRACE_CAMPAIGN_AGGREGATE_HH

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/job.hh"
#include "telemetry/profile.hh"

namespace txrace::campaign {

class Aggregator
{
  public:
    /** Fold one outcome in. Any order; idempotence NOT assumed —
     *  each job must be added exactly once. */
    void add(const JobOutcome &outcome);

    /** Outcomes folded so far. */
    uint64_t runs() const { return runs_; }

    // Snapshot accessors for the progress stream: cheap, callable
    // between add()s, and pure functions of the outcomes folded so
    // far (hence deterministic at every round barrier).
    /** Distinct deduplicated races so far. */
    uint64_t findingCount() const { return findings_.size(); }
    /** Pre-dedup race reports so far. */
    uint64_t rawReports() const { return rawReports_; }
    /** Abnormally-ended jobs so far. */
    uint64_t errorCount() const { return errors_; }
    /** Per-variant (runs, raw reports) so far, name-ordered. */
    std::vector<std::tuple<std::string, uint64_t, uint64_t>>
    variantCounters() const;

    /**
     * Produce the deterministic result (no timing filled in).
     * @p groundTruth maps app name -> set of raceLabelKey() strings;
     * scoring uses cfg.apps order.
     */
    CampaignResult finalize(const CampaignConfig &cfg,
                            const std::map<std::string,
                                           std::set<std::string>>
                                &groundTruth) const;

  private:
    /** Accumulating state of one deduplicated race. */
    struct Acc
    {
        core::RaceSig sig;
        std::string app;
        uint64_t runsSeen = 0;
        uint64_t totalHits = 0;
        /** First sighting = minimal job id seen so far. */
        uint64_t firstJob = ~0ull;
        detector::RaceKind firstKind = detector::RaceKind::WriteWrite;
        uint64_t firstSeed = 0;
        std::string firstVariant;
        uint64_t firstConfigDigest = 0;
        std::string firstRepro;
    };

    /** Keyed by RaceSig::key (full identity, not the hash). */
    std::map<std::string, Acc> findings_;

    struct VariantAcc
    {
        uint64_t runs = 0;
        uint64_t rawReports = 0;
    };
    std::map<std::string, VariantAcc> variants_;

    /** Fleet profile union (commutative merge ⇒ order-free). */
    telemetry::Profile profile_;

    uint64_t runs_ = 0;
    uint64_t errors_ = 0;
    uint64_t rawReports_ = 0;
    uint64_t txCommitted_ = 0;
    uint64_t abortConflict_ = 0;
    uint64_t abortCapacity_ = 0;
    uint64_t abortUnknown_ = 0;
    uint64_t maxRound_ = 0;
};

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_AGGREGATE_HH
