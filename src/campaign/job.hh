/**
 * @file
 * Units of campaign work: one JobSpec describes one deterministic
 * Machine run out of the (workload x seed x config-variant) matrix,
 * and one JobOutcome is everything the aggregator keeps of it.
 *
 * The engine is free to execute jobs in any order on any worker —
 * outcomes carry the job id, and every consumer (strategies, the
 * aggregator) re-sorts by id before acting, which is what makes the
 * campaign a pure function of its config regardless of --jobs.
 */

#ifndef TXRACE_CAMPAIGN_JOB_HH
#define TXRACE_CAMPAIGN_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/fingerprint.hh"
#include "core/runmode.hh"
#include "detector/report.hh"
#include "ir/addr.hh"
#include "telemetry/profile.hh"

namespace txrace::campaign {

/** One run of the matrix. Plain data; fully determines the run. */
struct JobSpec
{
    /** Dense campaign-wide id; ties every ordering decision. */
    uint64_t id = 0;
    /** Exploration round that emitted the job (0 = base matrix). */
    uint32_t round = 0;
    std::string app;
    uint64_t seed = 1;
    core::RunMode mode = core::RunMode::TxRaceDynLoopcut;
    uint32_t workers = 4;
    uint64_t scale = 1;
    /** Config-variant handle (perturbation sweeps). "base" = the
     *  registry's calibrated machine config untouched. */
    std::string variant = "base";
    /** Multiplier on the app's interruptPerStep (variant knob). */
    double interruptScale = 1.0;
    /** Adaptive fallback governor on/off (variant knob). */
    bool governor = false;
};

/** One race as found by one job, with its stable identity. */
struct FoundRace
{
    core::RaceSig sig;
    detector::RaceKind kind = detector::RaceKind::WriteWrite;
    uint64_t hits = 0;
    ir::Addr addr = 0;
};

/** What one finished job contributes to the aggregate. */
struct JobOutcome
{
    JobSpec spec;
    bool ok = true;
    /** RunError kind name on abnormal end ("none" otherwise). */
    std::string error = "none";
    uint64_t totalCost = 0;
    uint64_t txCommitted = 0;
    uint64_t abortConflict = 0;
    uint64_t abortCapacity = 0;
    uint64_t abortUnknown = 0;
    /** Races sorted by fingerprint (scope = app name). */
    std::vector<FoundRace> races;
    /** Digest of the exact RunConfig executed. */
    uint64_t configDigest = 0;
    /** Exact txrace_run command replaying this job. */
    std::string repro;
    /** This run's site profile (txrace-profile-v1 contribution).
     *  Merge is commutative, so the fleet union is deterministic
     *  no matter which worker ran what. */
    telemetry::Profile profile;
    /** Pool worker that executed the job. Timing/attribution only —
     *  never part of the deterministic report. */
    uint32_t worker = 0;
    /** Start offset from campaign begin, microseconds. Timing only. */
    uint64_t startMicros = 0;
    /** Wall-clock cost of the run in microseconds. Timing only —
     *  never part of the deterministic report. */
    uint64_t wallMicros = 0;
};

} // namespace txrace::campaign

#endif // TXRACE_CAMPAIGN_JOB_HH
