/**
 * @file
 * Symbolic address expressions for memory-access instructions.
 *
 * A static Load/Store instruction computes its dynamic address from
 * the executing thread's identity, the enclosing loop indices, and an
 * optional seeded random component:
 *
 *   addr = base + threadStride * threadIndex
 *               + loopStride   * loopIndex(loopDepth)
 *               + randomStride * uniform(0, randomCount)
 *
 * This is expressive enough to model private per-thread arrays,
 * streaming loops, strided sharing, contended hot words, and
 * false-sharing neighbours, which together cover the access patterns
 * of the paper's workloads.
 */

#ifndef TXRACE_IR_ADDR_HH
#define TXRACE_IR_ADDR_HH

#include <cstdint>

namespace txrace::ir {

/** Byte address in the simulated flat address space. */
using Addr = uint64_t;

/**
 * Static classification of an address expression by which terms of the
 * evaluation rule are live. The simulator's decoder uses it to select
 * a specialized evaluation path: a constant address needs no runtime
 * work at all, a thread-strided one a single multiply, and only the
 * randomized shape pays for an RNG draw. Shapes are cumulative — each
 * later shape may also carry the earlier terms.
 */
enum class AddrShape : uint8_t {
    Constant,       ///< base only
    ThreadStrided,  ///< + threadStride * tid
    LoopIndexed,    ///< + loopStride * loopIndex (maybe thread-strided)
    Randomized,     ///< + randomStride * uniform (any other terms too)
};

/** Symbolic address; see file comment for the evaluation rule. */
struct AddrExpr
{
    Addr base = 0;              ///< constant component
    uint64_t threadStride = 0;  ///< multiplied by the worker index
    uint64_t loopStride = 0;    ///< multiplied by a loop index
    uint32_t loopDepth = 0;     ///< 0 = innermost enclosing loop
    uint64_t randomCount = 0;   ///< >0 enables the random component
    uint64_t randomStride = 0;  ///< stride of the random component

    /** Convenience: a fixed absolute address. */
    static AddrExpr
    absolute(Addr a)
    {
        AddrExpr e;
        e.base = a;
        return e;
    }

    /** Convenience: base + threadIndex * stride. */
    static AddrExpr
    perThread(Addr base, uint64_t stride)
    {
        AddrExpr e;
        e.base = base;
        e.threadStride = stride;
        return e;
    }

    /** Convenience: base + innermostLoopIndex * stride. */
    static AddrExpr
    perIter(Addr base, uint64_t stride)
    {
        AddrExpr e;
        e.base = base;
        e.loopStride = stride;
        return e;
    }

    /** Convenience: base + uniform(0, count) * stride. */
    static AddrExpr
    randomIn(Addr base, uint64_t count, uint64_t stride)
    {
        AddrExpr e;
        e.base = base;
        e.randomCount = count;
        e.randomStride = stride;
        return e;
    }

    /** Classify which evaluation terms this expression uses. */
    AddrShape
    shape() const
    {
        if (randomCount != 0)
            return AddrShape::Randomized;
        if (loopStride != 0)
            return AddrShape::LoopIndexed;
        if (threadStride != 0)
            return AddrShape::ThreadStrided;
        return AddrShape::Constant;
    }

    bool operator==(const AddrExpr &other) const = default;
};

} // namespace txrace::ir

#endif // TXRACE_IR_ADDR_HH
