/**
 * @file
 * Textual dumping of mini-IR programs for debugging and golden tests.
 */

#ifndef TXRACE_IR_PRINTER_HH
#define TXRACE_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/program.hh"

namespace txrace::ir {

/** Render one instruction as a single line (no trailing newline). */
std::string formatInstr(const Instruction &ins);

/** Dump @p prog, one indented instruction per line, to @p os. */
void printProgram(const Program &prog, std::ostream &os);

} // namespace txrace::ir

#endif // TXRACE_IR_PRINTER_HH
