/**
 * @file
 * A single static instruction of the TxRace mini-IR.
 */

#ifndef TXRACE_IR_INSTRUCTION_HH
#define TXRACE_IR_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "ir/addr.hh"
#include "ir/opcode.hh"

namespace txrace::ir {

/** Globally unique static instruction id, assigned at finalize(). */
using InstrId = uint32_t;

/** Sentinel for "no instruction". */
constexpr InstrId kNoInstr = ~0u;

/** Function index within a Program. */
using FuncId = uint32_t;

/** A static IR instruction. */
struct Instruction
{
    OpCode op = OpCode::Nop;

    /** Address expression; meaningful for Load/Store only. */
    AddrExpr addr;

    /**
     * First operand. Interpretation by opcode: Compute/Syscall cost;
     * lock/condvar/barrier object id; ThreadCreate
     * function id; ThreadJoin spawn index (~0ull joins all);
     * LoopBegin base trip count; LoopCut static loop id;
     * TxBegin 0 (regular).
     */
    uint64_t arg0 = 0;

    /**
     * Second operand. LoopBegin: maximum random extra trips; Barrier:
     * participant count; TxBegin: 1 forces the region onto the slow
     * path (small-region heuristic).
     */
    uint64_t arg1 = 0;

    /** Globally unique id; kNoInstr until Program::finalize(). */
    InstrId id = kNoInstr;

    /**
     * Structural partner pc within the same function: LoopBegin points
     * at its LoopEnd and vice versa. -1 until finalize().
     */
    int32_t match = -1;

    /**
     * Whether a software race detector would instrument this access
     * (Load/Store only). The privatization pass clears this for
     * accesses falling entirely inside regions declared thread-private,
     * mirroring TSan's static race-free elision that the paper reuses;
     * the elision pipeline (passes/elide.cc) clears it for accesses it
     * proves redundant or thread-disjoint.
     */
    bool instrumented = true;

    /**
     * When the elision pipeline demoted this access because an earlier
     * access in the same sync-free segment dominates it, the id of
     * that surviving representative: any race the elided access could
     * have exhibited is reported against the representative instead.
     * kNoInstr for accesses that are instrumented, or that were elided
     * as provably race-free (no representative needed).
     */
    InstrId elisionRep = kNoInstr;

    /** Optional human-readable source tag (for race reports). */
    std::string tag;
};

} // namespace txrace::ir

#endif // TXRACE_IR_INSTRUCTION_HH
