#include "ir/text.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "ir/printer.hh"
#include "support/log.hh"

namespace txrace::ir {

// --------------------------------------------------------------------
// Serialization (instruction syntax shared with the printer)
// --------------------------------------------------------------------

void
writeProgramText(const Program &prog, std::ostream &os)
{
    if (prog.addrSpaceSize() > 0)
        os << "space 0x" << std::hex << prog.addrSpaceSize()
           << std::dec << "\n";
    for (const AddrRange &range : prog.privateRanges())
        os << "private 0x" << std::hex << range.lo << " 0x" << range.hi
           << std::dec << "\n";
    for (FuncId f = 0; f < prog.numFunctions(); ++f) {
        const Function &fn = prog.function(f);
        os << "func @" << fn.name << "\n";
        int indent = 1;
        for (const Instruction &ins : fn.body) {
            if (ins.op == OpCode::LoopEnd)
                --indent;
            for (int i = 0; i < indent; ++i)
                os << "  ";
            os << formatInstr(ins) << "\n";
            if (ins.op == OpCode::LoopBegin)
                ++indent;
        }
        os << "end\n";
    }
    os << "entry @" << prog.function(prog.entry()).name << "\n";
}

// --------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------

namespace {

/** Minimal cursor over one line. */
class LineCursor
{
  public:
    LineCursor(const std::string &text, int line_no)
        : text_(text), lineNo_(line_no)
    {
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t'))
            ++pos_;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    /** Consume @p literal if present. */
    bool
    accept(const std::string &literal)
    {
        skipSpace();
        if (text_.compare(pos_, literal.size(), literal) == 0) {
            pos_ += literal.size();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &literal)
    {
        if (!accept(literal))
            fail("expected '" + literal + "'");
    }

    /** Parse an unsigned integer (decimal or 0x-hex). */
    uint64_t
    number()
    {
        skipSpace();
        size_t start = pos_;
        int base = 10;
        if (text_.compare(pos_, 2, "0x") == 0) {
            base = 16;
            pos_ += 2;
            start = pos_;
        }
        uint64_t value = 0;
        bool any = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (base == 16 && c >= 'a' && c <= 'f')
                digit = 10 + (c - 'a');
            else if (base == 16 && c >= 'A' && c <= 'F')
                digit = 10 + (c - 'A');
            else
                break;
            value = value * static_cast<uint64_t>(base) +
                    static_cast<uint64_t>(digit);
            any = true;
            ++pos_;
        }
        if (!any) {
            pos_ = start;
            fail("expected a number");
        }
        return value;
    }

    /** Parse a bare word (identifier-ish token). */
    std::string
    word()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ' ' &&
               text_[pos_] != '\t')
            ++pos_;
        if (pos_ == start)
            fail("expected a word");
        return text_.substr(start, pos_ - start);
    }

    /** Rest of the line, trimmed. */
    std::string
    rest()
    {
        skipSpace();
        std::string out = text_.substr(pos_);
        while (!out.empty() &&
               (out.back() == ' ' || out.back() == '\t' ||
                out.back() == '\r'))
            out.pop_back();
        pos_ = text_.size();
        return out;
    }

    [[noreturn]] void
    fail(const std::string &what)
    {
        fatal("program text line %d: %s (at '%s')", lineNo_,
              what.c_str(), text_.substr(pos_, 24).c_str());
    }

  private:
    const std::string &text_;
    int lineNo_;
    size_t pos_ = 0;
};

AddrExpr
parseAddr(LineCursor &cur)
{
    AddrExpr a;
    cur.expect("[");
    a.base = cur.number();
    while (cur.accept("+")) {
        if (cur.accept("tid*")) {
            a.threadStride = cur.number();
        } else if (cur.accept("i")) {
            a.loopDepth = static_cast<uint32_t>(cur.number());
            cur.expect("*");
            a.loopStride = cur.number();
        } else if (cur.accept("rnd(")) {
            a.randomCount = cur.number();
            cur.expect(")");
            cur.expect("*");
            a.randomStride = cur.number();
        } else {
            cur.fail("expected tid*, iN* or rnd(..)* term");
        }
    }
    cur.expect("]");
    return a;
}

/** Strip a trailing "; tag" comment into ins.tag, if present. */
void
takeTag(LineCursor &cur, Instruction &ins)
{
    if (cur.accept(";"))
        ins.tag = cur.rest();
    else if (!cur.atEnd())
        cur.fail("unexpected trailing text");
}

Instruction
parseInstr(const std::string &mnemonic, LineCursor &cur)
{
    static const std::map<std::string, OpCode> kOps = {
        {"nop", OpCode::Nop},
        {"load", OpCode::Load},
        {"store", OpCode::Store},
        {"compute", OpCode::Compute},
        {"lock", OpCode::LockAcquire},
        {"unlock", OpCode::LockRelease},
        {"signal", OpCode::CondSignal},
        {"wait", OpCode::CondWait},
        {"barrier", OpCode::Barrier},
        {"create", OpCode::ThreadCreate},
        {"join", OpCode::ThreadJoin},
        {"syscall", OpCode::Syscall},
        {"loop.begin", OpCode::LoopBegin},
        {"loop.end", OpCode::LoopEnd},
        {"tx.begin", OpCode::TxBegin},
        {"tx.end", OpCode::TxEnd},
        {"loop.cut", OpCode::LoopCut},
    };
    auto it = kOps.find(mnemonic);
    if (it == kOps.end())
        cur.fail("unknown mnemonic '" + mnemonic + "'");

    Instruction ins;
    ins.op = it->second;
    switch (ins.op) {
      case OpCode::Load:
      case OpCode::Store:
        ins.addr = parseAddr(cur);
        if (cur.accept("!noinstr"))
            ins.instrumented = false;
        break;
      case OpCode::Compute:
      case OpCode::Syscall:
        cur.expect("cost=");
        ins.arg0 = cur.number();
        break;
      case OpCode::LockAcquire:
      case OpCode::LockRelease:
      case OpCode::CondSignal:
      case OpCode::CondWait:
        cur.expect("id=");
        ins.arg0 = cur.number();
        break;
      case OpCode::Barrier:
        cur.expect("id=");
        ins.arg0 = cur.number();
        cur.expect("n=");
        ins.arg1 = cur.number();
        break;
      case OpCode::ThreadCreate:
        cur.expect("fn=");
        ins.arg0 = cur.number();
        break;
      case OpCode::ThreadJoin:
        if (cur.accept("all")) {
            ins.arg0 = ~0ull;
        } else {
            cur.expect("idx=");
            ins.arg0 = cur.number();
        }
        break;
      case OpCode::LoopBegin:
        cur.expect("trips=");
        ins.arg0 = cur.number();
        if (cur.accept("+rnd(")) {
            ins.arg1 = cur.number();
            cur.expect(")");
        }
        break;
      case OpCode::TxBegin:
        if (cur.accept("slow"))
            ins.arg1 = 1;
        break;
      case OpCode::LoopCut:
        cur.expect("loop=");
        ins.arg0 = cur.number();
        break;
      default:
        break;
    }
    takeTag(cur, ins);
    return ins;
}

} // namespace

Program
parseProgramText(std::istream &is)
{
    Program prog;
    std::map<std::string, FuncId> by_name;
    Function current;
    bool in_func = false;
    bool entry_set = false;
    std::string entry_name;
    std::string line;
    int line_no = 0;

    while (std::getline(is, line)) {
        ++line_no;
        LineCursor cur(line, line_no);
        if (cur.atEnd() || cur.accept("#"))
            continue;

        if (cur.accept("space ")) {
            prog.setAddrSpaceSize(cur.number());
            continue;
        }
        if (cur.accept("private ")) {
            AddrRange range;
            range.lo = cur.number();
            range.hi = cur.number();
            prog.addPrivateRange(range);
            continue;
        }
        if (cur.accept("func @")) {
            if (in_func)
                cur.fail("func inside func");
            current = Function{};
            current.name = cur.word();
            in_func = true;
            continue;
        }
        if (!in_func && cur.accept("entry @")) {
            entry_name = cur.word();
            entry_set = true;
            continue;
        }
        if (cur.accept("end")) {
            if (!cur.atEnd())
                cur.fail("unexpected text after 'end'");
            if (!in_func)
                cur.fail("end outside func");
            std::string fn_name = current.name;
            by_name[fn_name] = prog.addFunction(std::move(current));
            in_func = false;
            continue;
        }
        if (!in_func)
            cur.fail("instruction outside func");
        std::string mnemonic = cur.word();
        current.body.push_back(parseInstr(mnemonic, cur));
    }
    if (in_func)
        fatal("program text: missing 'end' for func @%s",
              current.name.c_str());
    if (prog.numFunctions() == 0)
        fatal("program text: no functions");
    if (entry_set) {
        auto it = by_name.find(entry_name);
        if (it == by_name.end())
            fatal("program text: entry @%s not defined",
                  entry_name.c_str());
        prog.setEntry(it->second);
    } else {
        prog.setEntry(static_cast<FuncId>(prog.numFunctions() - 1));
    }
    prog.finalize();
    return prog;
}

Program
loadProgramFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open program file '%s'", path.c_str());
    return parseProgramText(in);
}

} // namespace txrace::ir
