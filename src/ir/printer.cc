#include "ir/printer.hh"

#include <sstream>

#include "support/log.hh"

namespace txrace::ir {

namespace {

std::string
formatAddr(const AddrExpr &a)
{
    std::ostringstream ss;
    ss << "[0x" << std::hex << a.base << std::dec;
    if (a.threadStride)
        ss << " + tid*" << a.threadStride;
    if (a.loopStride)
        ss << " + i" << a.loopDepth << "*" << a.loopStride;
    if (a.randomCount)
        ss << " + rnd(" << a.randomCount << ")*" << a.randomStride;
    ss << "]";
    return ss.str();
}

} // namespace

std::string
formatInstr(const Instruction &ins)
{
    std::ostringstream ss;
    ss << opName(ins.op);
    switch (ins.op) {
      case OpCode::Load:
      case OpCode::Store:
        ss << " " << formatAddr(ins.addr);
        if (!ins.instrumented)
            ss << " !noinstr";
        break;
      case OpCode::Compute:
      case OpCode::Syscall:
        ss << " cost=" << ins.arg0;
        break;
      case OpCode::LockAcquire:
      case OpCode::LockRelease:
      case OpCode::CondSignal:
      case OpCode::CondWait:
        ss << " id=" << ins.arg0;
        break;
      case OpCode::Barrier:
        ss << " id=" << ins.arg0 << " n=" << ins.arg1;
        break;
      case OpCode::ThreadCreate:
        ss << " fn=" << ins.arg0;
        break;
      case OpCode::ThreadJoin:
        if (ins.arg0 == ~0ull)
            ss << " all";
        else
            ss << " idx=" << ins.arg0;
        break;
      case OpCode::LoopBegin:
        ss << " trips=" << ins.arg0;
        if (ins.arg1)
            ss << "+rnd(" << ins.arg1 << ")";
        break;
      case OpCode::TxBegin:
        if (ins.arg1)
            ss << " slow";
        break;
      case OpCode::LoopCut:
        ss << " loop=" << ins.arg0;
        break;
      default:
        break;
    }
    if (!ins.tag.empty())
        ss << "  ; " << ins.tag;
    return ss.str();
}

void
printProgram(const Program &prog, std::ostream &os)
{
    for (FuncId f = 0; f < prog.numFunctions(); ++f) {
        const auto &fn = prog.function(f);
        os << "func @" << fn.name << " (#" << f << ")"
           << (f == prog.entry() ? " [entry]" : "") << "\n";
        int indent = 1;
        for (const auto &ins : fn.body) {
            if (ins.op == OpCode::LoopEnd)
                --indent;
            for (int i = 0; i < indent; ++i)
                os << "  ";
            os << formatInstr(ins) << "\n";
            if (ins.op == OpCode::LoopBegin)
                ++indent;
        }
    }
}

} // namespace txrace::ir
