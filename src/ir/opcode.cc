#include "ir/opcode.hh"

namespace txrace::ir {

const char *
opName(OpCode op)
{
    switch (op) {
      case OpCode::Nop:          return "nop";
      case OpCode::Load:         return "load";
      case OpCode::Store:        return "store";
      case OpCode::Compute:      return "compute";
      case OpCode::LockAcquire:  return "lock";
      case OpCode::LockRelease:  return "unlock";
      case OpCode::CondSignal:   return "signal";
      case OpCode::CondWait:     return "wait";
      case OpCode::Barrier:      return "barrier";
      case OpCode::ThreadCreate: return "create";
      case OpCode::ThreadJoin:   return "join";
      case OpCode::Syscall:      return "syscall";
      case OpCode::LoopBegin:    return "loop.begin";
      case OpCode::LoopEnd:      return "loop.end";
      case OpCode::TxBegin:      return "tx.begin";
      case OpCode::TxEnd:        return "tx.end";
      case OpCode::LoopCut:      return "loop.cut";
    }
    return "<bad-op>";
}

} // namespace txrace::ir
