/**
 * @file
 * Fluent construction of mini-IR programs.
 *
 * ProgramBuilder is the primary user-facing way to express a program
 * under test: workloads, examples, and tests all use it. It couples an
 * instruction emitter with a bump-pointer address-space allocator so
 * that data layout (who shares a cache line with whom) is explicit.
 */

#ifndef TXRACE_IR_BUILDER_HH
#define TXRACE_IR_BUILDER_HH

#include <functional>
#include <string>

#include "ir/program.hh"

namespace txrace::ir {

/**
 * Builds a Program function-by-function.
 *
 * Typical shape:
 * @code
 *   ProgramBuilder b;
 *   Addr shared = b.alloc("counter", 8);
 *   FuncId worker = b.beginFunction("worker");
 *   b.loop(100, [&] {
 *       b.lock(0);
 *       b.store(AddrExpr::absolute(shared), "counter++");
 *       b.unlock(0);
 *   });
 *   b.endFunction();
 *   b.beginFunction("main");
 *   b.spawn(worker, 4);
 *   b.joinAll();
 *   b.endFunction();   // last-defined function becomes the entry
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    ProgramBuilder();

    /**
     * Reserve @p bytes of address space aligned to @p align and return
     * the base address. @p name is recorded for diagnostics.
     */
    Addr alloc(const std::string &name, uint64_t bytes,
               uint64_t align = 64);

    /** Like alloc() but declares the range thread-private. */
    Addr allocPrivate(const std::string &name, uint64_t bytes,
                      uint64_t align = 64);

    /** Start defining a function; returns its eventual id. */
    FuncId beginFunction(const std::string &name);

    /** Finish the current function. */
    void endFunction();

    /** @name Instruction emitters (valid between begin/endFunction) */
    /** @{ */
    void load(const AddrExpr &addr, const std::string &tag = "");
    void store(const AddrExpr &addr, const std::string &tag = "");
    /** An access TSan's static analysis would prove race-free. */
    void loadPrivate(const AddrExpr &addr);
    void storePrivate(const AddrExpr &addr);
    void compute(uint64_t cost);
    void lock(uint64_t lock_id);
    void unlock(uint64_t lock_id);
    void signal(uint64_t cond_id);
    void wait(uint64_t cond_id);
    void barrier(uint64_t barrier_id, uint64_t participants);
    void spawn(FuncId fn, uint64_t count = 1);
    void join(uint64_t spawn_index);
    void joinAll();
    void syscall(uint64_t cost = 8);
    void loopBegin(uint64_t trips, uint64_t random_extra = 0);
    void loopEnd();
    /** Structured loop: emits loopBegin, @p body, loopEnd. */
    void loop(uint64_t trips, const std::function<void()> &body);
    /** Structured loop with random extra trips. */
    void loopJitter(uint64_t trips, uint64_t random_extra,
                    const std::function<void()> &body);
    /** Escape hatch used by pass tests. */
    void raw(Instruction ins);
    /** @} */

    /** Mark the entry function by id (default: last defined). */
    void setEntry(FuncId id);

    /**
     * Finalize and return the program. The builder is left empty and
     * may be reused.
     */
    Program build();

  private:
    Instruction &emit(OpCode op);

    Program prog_;
    Function current_;
    bool inFunction_ = false;
    bool entrySet_ = false;
    int openLoops_ = 0;
    Addr bump_ = 64;  // keep address 0 unused as a poison value
};

} // namespace txrace::ir

#endif // TXRACE_IR_BUILDER_HH
