/**
 * @file
 * Opcode set of the TxRace mini-IR.
 *
 * Programs under test are expressed in a small structured IR (no
 * arbitrary branches; loops are structured LoopBegin/LoopEnd pairs).
 * This mirrors the subset of LLVM IR shapes that the paper's
 * transactionalization pass cares about: memory accesses,
 * synchronization operations, system calls, and loops.
 */

#ifndef TXRACE_IR_OPCODE_HH
#define TXRACE_IR_OPCODE_HH

#include <cstdint>

namespace txrace::ir {

/** Operation kinds executable by the simulator. */
enum class OpCode : uint8_t {
    Nop,          ///< no effect (placeholder produced by passes)
    Load,         ///< read memory at the instruction's address expr
    Store,        ///< write memory at the instruction's address expr
    Compute,      ///< arg0 units of raceless local work
    LockAcquire,  ///< acquire mutex arg0 (blocking)
    LockRelease,  ///< release mutex arg0
    CondSignal,   ///< post semaphore/condvar arg0 (release semantics)
    CondWait,     ///< wait on semaphore/condvar arg0 (acquire semantics)
    Barrier,      ///< barrier arg0 with arg1 participants
    ThreadCreate, ///< spawn a thread running function arg0
    ThreadJoin,   ///< join spawned thread by spawn index arg0 (~0 = all)
    Syscall,      ///< system call costing arg0 (forces privilege change)
    LoopBegin,    ///< loop with arg0 (+ up to arg1 random) iterations
    LoopEnd,      ///< back-edge of the matching LoopBegin
    TxBegin,      ///< pass-inserted region begin (arg1: 1 = forced slow)
    TxEnd,        ///< pass-inserted region end
    LoopCut,      ///< pass-inserted loop-cut check (arg0 = static loop id)
};

/** Human-readable mnemonic for @p op. */
const char *opName(OpCode op);

/** True for Load and Store. */
constexpr bool
isMemAccess(OpCode op)
{
    return op == OpCode::Load || op == OpCode::Store;
}

/**
 * True for operations the transactionalizer treats as region
 * boundaries: synchronization primitives and thread lifecycle events.
 * System calls are boundaries too but are handled separately because
 * the transaction must be *cut* (end + begin) around them rather than
 * ended at them.
 */
constexpr bool
isSyncOp(OpCode op)
{
    switch (op) {
      case OpCode::LockAcquire:
      case OpCode::LockRelease:
      case OpCode::CondSignal:
      case OpCode::CondWait:
      case OpCode::Barrier:
      case OpCode::ThreadCreate:
      case OpCode::ThreadJoin:
        return true;
      default:
        return false;
    }
}

/** True for sync ops that can block the executing thread. */
constexpr bool
isBlockingOp(OpCode op)
{
    switch (op) {
      case OpCode::LockAcquire:
      case OpCode::CondWait:
      case OpCode::Barrier:
      case OpCode::ThreadJoin:
        return true;
      default:
        return false;
    }
}

} // namespace txrace::ir

#endif // TXRACE_IR_OPCODE_HH
