#include "ir/program.hh"

#include <algorithm>

#include "support/log.hh"

namespace txrace::ir {

FuncId
Program::addFunction(Function fn)
{
    funcs_.push_back(std::move(fn));
    return static_cast<FuncId>(funcs_.size() - 1);
}

Function &
Program::function(FuncId id)
{
    if (id >= funcs_.size())
        panic("Program::function: bad id %u", id);
    return funcs_[id];
}

const Function &
Program::function(FuncId id) const
{
    if (id >= funcs_.size())
        panic("Program::function: bad id %u", id);
    return funcs_[id];
}

void
Program::finalize()
{
    if (finalized_)
        panic("Program::finalize called twice; use refinalize()");
    assignIdsAndMatch(false);
    validateStructure();
    finalized_ = true;
}

void
Program::refinalize()
{
    if (!finalized_)
        panic("Program::refinalize before finalize");
    assignIdsAndMatch(true);
    validateStructure();
}

void
Program::assignIdsAndMatch(bool keep_existing_ids)
{
    if (!keep_existing_ids)
        nextId_ = 0;

    // First pass: hand out ids.
    for (auto &fn : funcs_) {
        for (auto &ins : fn.body) {
            if (!keep_existing_ids || ins.id == kNoInstr)
                ins.id = nextId_++;
            else
                nextId_ = std::max(nextId_, ins.id + 1);
        }
    }

    // Rebuild the id index.
    idIndex_.assign(nextId_, {~0u, 0});
    for (FuncId f = 0; f < funcs_.size(); ++f) {
        auto &body = funcs_[f].body;
        for (uint32_t pc = 0; pc < body.size(); ++pc) {
            InstrId id = body[pc].id;
            if (id >= idIndex_.size() || idIndex_[id].first != ~0u)
                fatal("Program: duplicate or out-of-range instruction id");
            idIndex_[id] = {f, pc};
        }
    }

    // Second pass: match loops.
    for (auto &fn : funcs_) {
        std::vector<uint32_t> stack;
        for (uint32_t pc = 0; pc < fn.body.size(); ++pc) {
            auto &ins = fn.body[pc];
            if (ins.op == OpCode::LoopBegin) {
                stack.push_back(pc);
            } else if (ins.op == OpCode::LoopEnd) {
                if (stack.empty())
                    fatal("Program: unmatched LoopEnd in %s",
                          fn.name.c_str());
                uint32_t begin = stack.back();
                stack.pop_back();
                fn.body[begin].match = static_cast<int32_t>(pc);
                ins.match = static_cast<int32_t>(begin);
            }
        }
        if (!stack.empty())
            fatal("Program: unmatched LoopBegin in %s", fn.name.c_str());
    }
}

void
Program::validateStructure() const
{
    if (funcs_.empty())
        fatal("Program: no functions");
    if (entry_ >= funcs_.size())
        fatal("Program: entry function %u out of range", entry_);
    for (const auto &fn : funcs_) {
        for (const auto &ins : fn.body) {
            switch (ins.op) {
              case OpCode::ThreadCreate:
                if (ins.arg0 >= funcs_.size())
                    fatal("Program: ThreadCreate of unknown function "
                          "%llu in %s",
                          static_cast<unsigned long long>(ins.arg0),
                          fn.name.c_str());
                break;
              case OpCode::Barrier:
                if (ins.arg1 < 1)
                    fatal("Program: Barrier with %llu participants in %s",
                          static_cast<unsigned long long>(ins.arg1),
                          fn.name.c_str());
                break;
              case OpCode::Load:
              case OpCode::Store:
                if (addrSpaceSize_ > 0) {
                    // Static bound check on the maximal reachable
                    // address: base only (dynamic components checked
                    // at runtime by the machine).
                    if (ins.addr.base >= addrSpaceSize_)
                        fatal("Program: access base 0x%llx beyond "
                              "address space",
                              static_cast<unsigned long long>(
                                  ins.addr.base));
                }
                break;
              default:
                break;
            }
        }
    }
}

size_t
Program::numInstructions() const
{
    size_t n = 0;
    for (const auto &fn : funcs_)
        n += fn.body.size();
    return n;
}

const Instruction &
Program::instr(InstrId id) const
{
    if (id >= idIndex_.size() || idIndex_[id].first == ~0u)
        panic("Program::instr: unknown id %u", id);
    auto [f, pc] = idIndex_[id];
    return funcs_[f].body[pc];
}

FuncId
Program::funcOf(InstrId id) const
{
    if (id >= idIndex_.size() || idIndex_[id].first == ~0u)
        panic("Program::funcOf: unknown id %u", id);
    return idIndex_[id].first;
}

std::string
Program::checkTransactionalForm() const
{
    for (const auto &fn : funcs_) {
        bool in_tx = false;
        // Transaction state observed at each open LoopBegin.
        std::vector<bool> loop_state;
        for (uint32_t pc = 0; pc < fn.body.size(); ++pc) {
            const auto &ins = fn.body[pc];
            switch (ins.op) {
              case OpCode::TxBegin:
                if (in_tx)
                    return strprintf("%s:%u nested TxBegin",
                                     fn.name.c_str(), pc);
                in_tx = true;
                break;
              case OpCode::TxEnd:
                if (!in_tx)
                    return strprintf("%s:%u TxEnd outside transaction",
                                     fn.name.c_str(), pc);
                in_tx = false;
                break;
              case OpCode::Syscall:
                if (in_tx)
                    return strprintf("%s:%u system call inside "
                                     "transaction",
                                     fn.name.c_str(), pc);
                break;
              case OpCode::LoopBegin:
                loop_state.push_back(in_tx);
                break;
              case OpCode::LoopEnd:
                if (loop_state.empty())
                    return strprintf("%s:%u stray LoopEnd",
                                     fn.name.c_str(), pc);
                if (loop_state.back() != in_tx)
                    return strprintf("%s:%u transaction state not "
                                     "loop-invariant",
                                     fn.name.c_str(), pc);
                loop_state.pop_back();
                break;
              case OpCode::LoopCut:
                if (loop_state.empty())
                    return strprintf("%s:%u LoopCut outside loop",
                                     fn.name.c_str(), pc);
                break;
              default:
                if (isSyncOp(ins.op) && in_tx)
                    return strprintf("%s:%u %s inside transaction",
                                     fn.name.c_str(), pc,
                                     opName(ins.op));
                break;
            }
        }
        if (in_tx)
            return strprintf("%s falls off end inside transaction",
                             fn.name.c_str());
    }
    return "";
}

} // namespace txrace::ir
