/**
 * @file
 * Program container of the TxRace mini-IR: a set of functions, an
 * entry point, and the address-space layout metadata the passes and
 * the simulator need.
 */

#ifndef TXRACE_IR_PROGRAM_HH
#define TXRACE_IR_PROGRAM_HH

#include <string>
#include <utility>
#include <vector>

#include "ir/instruction.hh"

namespace txrace::ir {

/** A named straight-line-plus-loops instruction sequence. */
struct Function
{
    std::string name;
    std::vector<Instruction> body;
};

/** Half-open byte range [lo, hi) in the simulated address space. */
struct AddrRange
{
    Addr lo = 0;
    Addr hi = 0;

    bool
    contains(Addr a) const
    {
        return a >= lo && a < hi;
    }
};

/**
 * A complete program. Thread 0 executes the entry function; further
 * threads are created by ThreadCreate instructions.
 *
 * finalize() must be called (once) after construction: it assigns
 * globally unique instruction ids, resolves LoopBegin/LoopEnd partner
 * offsets, and structurally validates the program. Passes that insert
 * instructions call refinalize() to renumber while preserving the ids
 * of pre-existing instructions where possible (ids of original
 * instructions are stable because passes only insert, never reorder).
 */
class Program
{
  public:
    /** Append a function; returns its id. */
    FuncId addFunction(Function fn);

    /** Number of functions. */
    size_t numFunctions() const { return funcs_.size(); }

    /** Mutable access (passes). @p id must be valid. */
    Function &function(FuncId id);
    const Function &function(FuncId id) const;

    /** Entry function id (default 0). */
    FuncId entry() const { return entry_; }
    void setEntry(FuncId id) { entry_ = id; }

    /** Total bytes of simulated address space the program touches. */
    Addr addrSpaceSize() const { return addrSpaceSize_; }
    void setAddrSpaceSize(Addr size) { addrSpaceSize_ = size; }

    /** Ranges the workload declares thread-private (pass input). */
    const std::vector<AddrRange> &privateRanges() const { return private_; }
    void addPrivateRange(AddrRange range) { private_.push_back(range); }

    /**
     * Assign instruction ids, resolve loop matches, and validate.
     * Calls fatal() on structurally invalid programs.
     */
    void finalize();

    /** True once finalize() has run. */
    bool finalized() const { return finalized_; }

    /**
     * Re-run id assignment and validation after a pass mutated the
     * program. Instructions that already carry an id keep it; new
     * instructions receive fresh ids above the previous maximum.
     */
    void refinalize();

    /** Total number of static instructions across all functions. */
    size_t numInstructions() const;

    /** Locate an instruction by id. Panics on unknown ids. */
    const Instruction &instr(InstrId id) const;

    /** Function containing @p id. Panics on unknown ids. */
    FuncId funcOf(InstrId id) const;

    /**
     * Validate the TxBegin/TxEnd discipline a correct
     * transactionalization must establish (used by tests and by the
     * pass pipeline as a post-condition):
     *  - TxBegin/TxEnd strictly alternate along each function,
     *  - no synchronization op or system call inside a transaction,
     *  - transaction state is loop-invariant (equal at LoopBegin and
     *    its matching LoopEnd),
     *  - every function begins outside and ends outside a transaction,
     *  - LoopCut appears only inside loops.
     * Returns an empty string if valid, else a diagnostic.
     */
    std::string checkTransactionalForm() const;

  private:
    void assignIdsAndMatch(bool keep_existing_ids);
    void validateStructure() const;

    std::vector<Function> funcs_;
    FuncId entry_ = 0;
    Addr addrSpaceSize_ = 0;
    std::vector<AddrRange> private_;
    bool finalized_ = false;
    uint32_t nextId_ = 0;

    /** id -> (func, pc) lookup built at (re)finalize. */
    std::vector<std::pair<FuncId, uint32_t>> idIndex_;
};

} // namespace txrace::ir

#endif // TXRACE_IR_PROGRAM_HH
