#include "ir/builder.hh"

#include "support/log.hh"

namespace txrace::ir {

ProgramBuilder::ProgramBuilder() = default;

Addr
ProgramBuilder::alloc(const std::string &name, uint64_t bytes,
                      uint64_t align)
{
    if (bytes == 0)
        fatal("alloc(%s): zero size", name.c_str());
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("alloc(%s): alignment must be a power of two",
              name.c_str());
    bump_ = (bump_ + align - 1) & ~(align - 1);
    Addr base = bump_;
    bump_ += bytes;
    prog_.setAddrSpaceSize(bump_);
    return base;
}

Addr
ProgramBuilder::allocPrivate(const std::string &name, uint64_t bytes,
                             uint64_t align)
{
    Addr base = alloc(name, bytes, align);
    prog_.addPrivateRange({base, base + bytes});
    return base;
}

FuncId
ProgramBuilder::beginFunction(const std::string &name)
{
    if (inFunction_)
        panic("beginFunction(%s) while %s still open", name.c_str(),
              current_.name.c_str());
    current_ = Function{};
    current_.name = name;
    inFunction_ = true;
    return static_cast<FuncId>(prog_.numFunctions());
}

void
ProgramBuilder::endFunction()
{
    if (!inFunction_)
        panic("endFunction without beginFunction");
    if (openLoops_ != 0)
        panic("endFunction(%s) with %d open loops",
              current_.name.c_str(), openLoops_);
    prog_.addFunction(std::move(current_));
    inFunction_ = false;
}

Instruction &
ProgramBuilder::emit(OpCode op)
{
    if (!inFunction_)
        panic("emit(%s) outside a function", opName(op));
    current_.body.emplace_back();
    current_.body.back().op = op;
    return current_.body.back();
}

void
ProgramBuilder::load(const AddrExpr &addr, const std::string &tag)
{
    auto &ins = emit(OpCode::Load);
    ins.addr = addr;
    ins.tag = tag;
}

void
ProgramBuilder::store(const AddrExpr &addr, const std::string &tag)
{
    auto &ins = emit(OpCode::Store);
    ins.addr = addr;
    ins.tag = tag;
}

void
ProgramBuilder::loadPrivate(const AddrExpr &addr)
{
    auto &ins = emit(OpCode::Load);
    ins.addr = addr;
    ins.instrumented = false;
}

void
ProgramBuilder::storePrivate(const AddrExpr &addr)
{
    auto &ins = emit(OpCode::Store);
    ins.addr = addr;
    ins.instrumented = false;
}

void
ProgramBuilder::compute(uint64_t cost)
{
    emit(OpCode::Compute).arg0 = cost;
}

void
ProgramBuilder::lock(uint64_t lock_id)
{
    emit(OpCode::LockAcquire).arg0 = lock_id;
}

void
ProgramBuilder::unlock(uint64_t lock_id)
{
    emit(OpCode::LockRelease).arg0 = lock_id;
}

void
ProgramBuilder::signal(uint64_t cond_id)
{
    emit(OpCode::CondSignal).arg0 = cond_id;
}

void
ProgramBuilder::wait(uint64_t cond_id)
{
    emit(OpCode::CondWait).arg0 = cond_id;
}

void
ProgramBuilder::barrier(uint64_t barrier_id, uint64_t participants)
{
    auto &ins = emit(OpCode::Barrier);
    ins.arg0 = barrier_id;
    ins.arg1 = participants;
}

void
ProgramBuilder::spawn(FuncId fn, uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i)
        emit(OpCode::ThreadCreate).arg0 = fn;
}

void
ProgramBuilder::join(uint64_t spawn_index)
{
    emit(OpCode::ThreadJoin).arg0 = spawn_index;
}

void
ProgramBuilder::joinAll()
{
    emit(OpCode::ThreadJoin).arg0 = ~0ull;
}

void
ProgramBuilder::syscall(uint64_t cost)
{
    emit(OpCode::Syscall).arg0 = cost;
}

void
ProgramBuilder::loopBegin(uint64_t trips, uint64_t random_extra)
{
    if (trips == 0 && random_extra == 0)
        fatal("loopBegin: zero-trip loops are not supported");
    auto &ins = emit(OpCode::LoopBegin);
    ins.arg0 = trips;
    ins.arg1 = random_extra;
    ++openLoops_;
}

void
ProgramBuilder::loopEnd()
{
    if (openLoops_ == 0)
        panic("loopEnd without loopBegin");
    emit(OpCode::LoopEnd);
    --openLoops_;
}

void
ProgramBuilder::loop(uint64_t trips, const std::function<void()> &body)
{
    loopBegin(trips);
    body();
    loopEnd();
}

void
ProgramBuilder::loopJitter(uint64_t trips, uint64_t random_extra,
                           const std::function<void()> &body)
{
    loopBegin(trips, random_extra);
    body();
    loopEnd();
}

void
ProgramBuilder::raw(Instruction ins)
{
    if (!inFunction_)
        panic("raw() outside a function");
    current_.body.push_back(std::move(ins));
    if (current_.body.back().op == OpCode::LoopBegin)
        ++openLoops_;
    if (current_.body.back().op == OpCode::LoopEnd)
        --openLoops_;
}

void
ProgramBuilder::setEntry(FuncId id)
{
    prog_.setEntry(id);
    entrySet_ = true;
}

Program
ProgramBuilder::build()
{
    if (inFunction_)
        panic("build() with function %s still open",
              current_.name.c_str());
    if (prog_.numFunctions() == 0)
        fatal("build(): empty program");
    if (!entrySet_)
        prog_.setEntry(static_cast<FuncId>(prog_.numFunctions() - 1));
    Program out = std::move(prog_);
    prog_ = Program{};
    entrySet_ = false;
    bump_ = 64;
    out.finalize();
    return out;
}

} // namespace txrace::ir
