/**
 * @file
 * Textual program format (.txr): a serializer and parser for the
 * mini-IR, so programs under test can live in files and be driven by
 * the CLI without writing C++. The instruction syntax matches the
 * printer's, extended with a small header for the address-space
 * layout:
 *
 *     # comment
 *     space 0x4000
 *     private 0x1000 0x2000
 *     func @worker
 *       loop.begin trips=10+rnd(2)
 *         load [0x40 + tid*8 + i0*16 + rnd(4)*64]  ; my tag
 *         store [0x80] !noinstr
 *         compute cost=5
 *         lock id=0
 *         unlock id=0
 *         signal id=1
 *         wait id=1
 *         barrier id=2 n=4
 *         syscall cost=1
 *       loop.end
 *     end
 *     func @main
 *       create fn=0
 *       create fn=0
 *       join all
 *     end
 *     entry @main
 *
 * writeProgramText() and parseProgramText() round-trip exactly
 * (asserted by property tests). TxBegin/TxEnd/LoopCut are accepted
 * too, so instrumented programs can be dumped and reloaded.
 */

#ifndef TXRACE_IR_TEXT_HH
#define TXRACE_IR_TEXT_HH

#include <istream>
#include <ostream>
#include <string>

#include "ir/program.hh"

namespace txrace::ir {

/** Serialize @p prog (including layout header) to @p os. */
void writeProgramText(const Program &prog, std::ostream &os);

/**
 * Parse a program from @p is. The returned program is finalized.
 * fatal()s with a line-numbered diagnostic on malformed input.
 */
Program parseProgramText(std::istream &is);

/** Convenience: parse a .txr file by path. */
Program loadProgramFile(const std::string &path);

} // namespace txrace::ir

#endif // TXRACE_IR_TEXT_HH
