#include "htm/htm.hh"

#include "support/log.hh"

namespace txrace::htm {

std::string
abortToString(AbortStatus s)
{
    if (isUnknownAbort(s))
        return "unknown";
    std::string out;
    auto append = [&](const char *name) {
        if (!out.empty())
            out += "|";
        out += name;
    };
    if (s & kAbortRetry)
        append("retry");
    if (s & kAbortConflict)
        append("conflict");
    if (s & kAbortCapacity)
        append("capacity");
    if (s & kAbortDebug)
        append("debug");
    if (s & kAbortNested)
        append("nested");
    if (s & kAbortExplicit)
        append("explicit");
    return out;
}

HtmEngine::HtmEngine(const HtmConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed ^ 0xca9ac117ULL)
{
    if (cfg_.l1Sets == 0 || (cfg_.l1Sets & (cfg_.l1Sets - 1)) != 0)
        fatal("HtmEngine: l1Sets must be a nonzero power of two");
    if (cfg_.l1Ways == 0)
        fatal("HtmEngine: l1Ways must be nonzero");
    if (cfg_.maxConcurrentTx == 0)
        fatal("HtmEngine: maxConcurrentTx must be nonzero");
}

void
HtmEngine::reset()
{
    tx_.clear();
    inFlight_ = 0;
    counters_ = HtmCounters{};
}

StatSet
HtmEngine::stats() const
{
    StatSet out;
    auto put = [&](const char *name, uint64_t v) {
        if (v)
            out.set(name, v);
    };
    put("htm.begins", counters_.begins);
    put("htm.commits", counters_.commits);
    put("htm.aborts.conflict", counters_.abortsConflict);
    put("htm.aborts.capacity", counters_.abortsCapacity);
    put("htm.aborts.unknown", counters_.abortsUnknown);
    put("htm.aborts.other", counters_.abortsOther);
    return out;
}

bool
HtmEngine::canBegin() const
{
    return inFlight_ < cfg_.maxConcurrentTx;
}

HtmEngine::TxState &
HtmEngine::state(Tid t)
{
    if (t >= tx_.size())
        tx_.resize(t + 1);
    return tx_[t];
}

const HtmEngine::TxState *
HtmEngine::stateIfAny(Tid t) const
{
    return t < tx_.size() ? &tx_[t] : nullptr;
}

void
HtmEngine::begin(Tid t)
{
    if (!canBegin())
        panic("HtmEngine::begin beyond concurrent-transaction limit");
    TxState &s = state(t);
    if (s.active)
        panic("HtmEngine::begin: thread %u already transactional", t);
    s.active = true;
    s.readLines.clear();
    s.writeLines.clear();
    s.setOccupancy.assign(cfg_.l1Sets, 0);
    ++inFlight_;
    ++counters_.begins;
}

bool
HtmEngine::inTx(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s && s->active;
}

void
HtmEngine::collectVictims(Tid requester, uint64_t line, bool is_write,
                          std::vector<Tid> &victims)
{
    for (Tid u = 0; u < tx_.size(); ++u) {
        if (u == requester || !tx_[u].active)
            continue;
        bool conflicts = is_write
            ? (tx_[u].readLines.count(line) ||
               tx_[u].writeLines.count(line))
            : tx_[u].writeLines.count(line) > 0;
        if (conflicts) {
            ir::InstrId victim_instr = ir::kNoInstr;
            if (cfg_.trackInstructions) {
                auto it = tx_[u].lineInstr.find(line);
                if (it != tx_[u].lineInstr.end())
                    victim_instr = it->second;
            }
            abortTx(u, kAbortConflict | kAbortRetry);
            tx_[u].lastConflictLine = line;
            tx_[u].lastConflictInstr = victim_instr;
            victims.push_back(u);
        }
    }
}

AccessResult
HtmEngine::access(Tid t, Addr addr, bool is_write)
{
    AccessResult result;
    const uint64_t line = mem::lineOf(addr);
    TxState *self = t < tx_.size() ? &tx_[t] : nullptr;
    const bool self_tx = self && self->active;

    if (self_tx) {
        // Capacity is checked before the request is issued: an
        // overflowing transaction dies without disturbing others.
        if (is_write && !self->writeLines.count(line)) {
            uint32_t set = static_cast<uint32_t>(line) &
                           (cfg_.l1Sets - 1);
            // Fault injection (capacity cliff) removes ways first;
            // jitter then nibbles at whatever remains.
            uint32_t ways = waysPenalty_ < cfg_.l1Ways
                ? cfg_.l1Ways - waysPenalty_
                : 1;
            if (cfg_.capacityJitter > 0.0 && ways > 2 &&
                rng_.chance(cfg_.capacityJitter)) {
                // One or two ways transiently occupied by others
                // (victim lines, the hyperthread twin, prefetch).
                ways -= 1 + static_cast<uint32_t>(rng_.below(2));
            }
            if (self->setOccupancy[set] + 1u > ways) {
                abortTx(t, kAbortCapacity);
                result.selfCapacity = true;
                return result;
            }
        }
        if (!is_write && !self->readLines.count(line) &&
            self->readLines.size() + 1 > cfg_.readSetMaxLines) {
            abortTx(t, kAbortCapacity);
            result.selfCapacity = true;
            return result;
        }
    }

    collectVictims(t, line, is_write, result.victims);

    if (self_tx) {
        if (is_write) {
            if (self->writeLines.insert(line).second) {
                uint32_t set = static_cast<uint32_t>(line) &
                               (cfg_.l1Sets - 1);
                ++self->setOccupancy[set];
            }
        } else {
            self->readLines.insert(line);
        }
    }
    return result;
}

void
HtmEngine::commit(Tid t)
{
    TxState &s = state(t);
    if (!s.active)
        panic("HtmEngine::commit: thread %u not transactional", t);
    s.active = false;
    s.readLines.clear();
    s.writeLines.clear();
    s.lineInstr.clear();
    --inFlight_;
    ++counters_.commits;
}

void
HtmEngine::abortTx(Tid t, AbortStatus status)
{
    TxState &s = state(t);
    if (!s.active)
        panic("HtmEngine::abortTx: thread %u not transactional", t);
    s.active = false;
    s.readLines.clear();
    s.writeLines.clear();
    s.lineInstr.clear();
    s.lastAbort = status;
    --inFlight_;
    if (status & kAbortCapacity)
        ++counters_.abortsCapacity;
    else if (status & kAbortConflict)
        ++counters_.abortsConflict;
    else if (isUnknownAbort(status))
        ++counters_.abortsUnknown;
    else
        ++counters_.abortsOther;
}

AbortStatus
HtmEngine::lastAbortStatus(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s ? s->lastAbort : 0;
}

uint64_t
HtmEngine::lastConflictLine(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s ? s->lastConflictLine : kNoLine;
}

ir::InstrId
HtmEngine::lastConflictVictimInstr(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s ? s->lastConflictInstr : ir::kNoInstr;
}

void
HtmEngine::noteAccessInstr(Tid t, Addr addr, ir::InstrId instr)
{
    if (!cfg_.trackInstructions)
        return;
    TxState *s = t < tx_.size() ? &tx_[t] : nullptr;
    if (s && s->active)
        s->lineInstr[mem::lineOf(addr)] = instr;
}

std::vector<Tid>
HtmEngine::inFlightTids() const
{
    std::vector<Tid> out;
    for (Tid t = 0; t < tx_.size(); ++t)
        if (tx_[t].active)
            out.push_back(t);
    return out;
}

size_t
HtmEngine::readSetLines(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s && s->active ? s->readLines.size() : 0;
}

size_t
HtmEngine::writeSetLines(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s && s->active ? s->writeLines.size() : 0;
}

} // namespace txrace::htm
