#include "htm/htm.hh"

#include <algorithm>
#include <bit>

#include "support/log.hh"

namespace txrace::htm {

std::string
abortToString(AbortStatus s)
{
    if (isUnknownAbort(s))
        return "unknown";
    std::string out;
    auto append = [&](const char *name) {
        if (!out.empty())
            out += "|";
        out += name;
    };
    if (s & kAbortRetry)
        append("retry");
    if (s & kAbortConflict)
        append("conflict");
    if (s & kAbortCapacity)
        append("capacity");
    if (s & kAbortDebug)
        append("debug");
    if (s & kAbortNested)
        append("nested");
    if (s & kAbortExplicit)
        append("explicit");
    return out;
}

HtmEngine::HtmEngine(const HtmConfig &cfg)
    : cfg_(cfg),
      filterEnabled_(cfg.accessFilter),
      rng_(cfg.seed ^ 0xca9ac117ULL),
      vlog_(cfg.versionLogEntries)
{
    if (cfg_.versionLog && cfg_.versionLogEntries == 0)
        fatal("HtmEngine: versionLogEntries must be nonzero when the "
              "version log is enabled");
    if (cfg_.engine != ConflictEngine::Directory)
        fatal("HtmEngine: the LegacyScan engine was removed; use "
              "ConflictEngine::Directory");
    if (cfg_.l1Sets == 0 || (cfg_.l1Sets & (cfg_.l1Sets - 1)) != 0)
        fatal("HtmEngine: l1Sets must be a nonzero power of two");
    if (cfg_.l1Ways == 0)
        fatal("HtmEngine: l1Ways must be nonzero");
    if (cfg_.maxConcurrentTx == 0)
        fatal("HtmEngine: maxConcurrentTx must be nonzero");
    if (cfg_.maxConcurrentTx > 64)
        fatal("HtmEngine: maxConcurrentTx must be <= 64 (one "
              "directory bitmask bit per in-flight transaction)");
}

void
HtmEngine::reset()
{
    tx_.clear();
    dir_ = LineDirectory();
    slotsUsed_ = 0;
    inFlight_ = 0;
    counters_ = HtmCounters{};
    vlog_.reset();
}

StatSet
HtmEngine::stats() const
{
    StatSet out;
    auto put = [&](const char *name, uint64_t v) {
        if (v)
            out.set(name, v);
    };
    put("htm.begins", counters_.begins);
    put("htm.commits", counters_.commits);
    put("htm.aborts.conflict", counters_.abortsConflict);
    put("htm.aborts.capacity", counters_.abortsCapacity);
    put("htm.aborts.unknown", counters_.abortsUnknown);
    put("htm.aborts.other", counters_.abortsOther);
    return out;
}

bool
HtmEngine::canBegin() const
{
    return inFlight_ < cfg_.maxConcurrentTx;
}

HtmEngine::TxState &
HtmEngine::state(Tid t)
{
    if (t >= tx_.size())
        tx_.resize(t + 1);
    return tx_[t];
}

void
HtmEngine::beginOccupancy(TxState &s)
{
    if (s.setOccupancy.empty()) {
        s.setOccupancy.resize(cfg_.l1Sets, 0);
        s.setStamp.resize(cfg_.l1Sets, 0);
    }
    if (++s.occEpoch == 0) {
        // Stamp wraparound: pay one memset every 2^32 transactions so
        // pre-wrap stamps cannot read as current. The owned-line
        // filter is stamped with the same epoch, so it wraps too.
        std::fill(s.setStamp.begin(), s.setStamp.end(), 0u);
        s.filterStamp.fill(0u);
        s.occEpoch = 1;
    }
}

void
HtmEngine::begin(Tid t)
{
    if (!canBegin())
        panic("HtmEngine::begin beyond concurrent-transaction limit");
    TxState &s = state(t);
    if (s.active)
        panic("HtmEngine::begin: thread %u already transactional", t);
    s.active = true;
    uint32_t slot =
        static_cast<uint32_t>(std::countr_zero(~slotsUsed_));
    slotsUsed_ |= uint64_t{1} << slot;
    s.slot = slot;
    slotTid_[slot] = t;
    s.lines.clear();
    s.readLineCount = 0;
    s.writeLineCount = 0;
    beginOccupancy(s);
    if (cfg_.versionLog)
        vlog_.beginTx(t);
    ++inFlight_;
    ++counters_.begins;
}

uint32_t
HtmEngine::effectiveWays()
{
    // Fault injection (capacity cliff) removes ways first; jitter
    // then nibbles at whatever remains.
    uint32_t ways = waysPenalty_ < cfg_.l1Ways
        ? cfg_.l1Ways - waysPenalty_
        : 1;
    if (cfg_.capacityJitter > 0.0 && ways > 2 &&
        rng_.chance(cfg_.capacityJitter)) {
        // One or two ways transiently occupied by others (victim
        // lines, the hyperthread twin, prefetch).
        ways -= 1 + static_cast<uint32_t>(rng_.below(2));
    }
    return ways;
}

void
HtmEngine::abortVictim(Tid u, uint64_t line)
{
    ir::InstrId victim_instr = ir::kNoInstr;
    if (cfg_.trackInstructions) {
        auto it = tx_[u].lineInstr.find(line);
        if (it != tx_[u].lineInstr.end())
            victim_instr = it->second;
    }
    abortTx(u, kAbortConflict | kAbortRetry);
    tx_[u].lastConflictLine = line;
    tx_[u].lastConflictInstr = victim_instr;
}

void
HtmEngine::accessDirectory(uint64_t line, bool is_write, TxState *self,
                           bool self_tx, AccessResult &result)
{
    // One probe serves the capacity membership test, the victim mask,
    // and the insertion. Only a transactional requester inserts the
    // key; non-transactional accesses just look (no bit to set, and
    // dead keys would bloat the table under slow-path episodes).
    LineDirectory::Entry *e =
        self_tx ? &dir_.findOrInsert(line) : dir_.find(line);
    const uint64_t selfBit =
        self_tx ? uint64_t{1} << self->slot : 0;

    if (self_tx) {
        // Capacity is checked before the request is issued: an
        // overflowing transaction dies without disturbing others.
        if (is_write && !(e->writers & selfBit)) {
            uint32_t set = static_cast<uint32_t>(line) &
                           (cfg_.l1Sets - 1);
            if (occupancyOf(*self, set) + 1u > effectiveWays()) {
                abortTx(slotTid_[self->slot], kAbortCapacity);
                result.selfCapacity = true;
                return;
            }
        }
        if (!is_write && !(e->readers & selfBit) &&
            self->readLineCount + 1 > cfg_.readSetMaxLines) {
            abortTx(slotTid_[self->slot], kAbortCapacity);
            result.selfCapacity = true;
            return;
        }
    }

    // Requester-wins: every other transaction holding the line in a
    // conflicting mode aborts. One bitmask intersection, O(1) in the
    // number of open transactions.
    if (e && inFlight_ > (self_tx ? 1u : 0u)) {
        uint64_t mask = is_write ? (e->readers | e->writers)
                                 : e->writers;
        mask &= ~selfBit;
        if (mask) {
            for (uint64_t m = mask; m; m &= m - 1)
                result.victims.push_back(
                    slotTid_[std::countr_zero(m)]);
            // Deterministic ascending tid order.
            std::sort(result.victims.begin(), result.victims.end());
            for (Tid u : result.victims)
                abortVictim(u, line);
        }
    }

    if (self_tx) {
        bool hadAny = ((e->readers | e->writers) & selfBit) != 0;
        if (is_write) {
            if (!(e->writers & selfBit)) {
                e->writers |= selfBit;
                ++self->writeLineCount;
                bumpOccupancy(*self,
                              static_cast<uint32_t>(line) &
                                  (cfg_.l1Sets - 1));
            }
        } else {
            if (!(e->readers & selfBit)) {
                e->readers |= selfBit;
                ++self->readLineCount;
            }
        }
        if (!hadAny)
            self->lines.push_back(line);
    }
}

void
HtmEngine::release(TxState &s)
{
    --inFlight_;
    slotsUsed_ &= ~(uint64_t{1} << s.slot);
    if (inFlight_ == 0) {
        // Last transaction out: drop the whole directory with one
        // epoch bump instead of walking the line list.
        dir_.bulkClear();
    } else {
        for (uint64_t line : s.lines)
            dir_.clearSlot(line, s.slot);
    }
    s.lines.clear();
    s.readLineCount = 0;
    s.writeLineCount = 0;
    if (cfg_.trackInstructions)
        s.lineInstr.clear();
}

void
HtmEngine::commit(Tid t)
{
    TxState &s = state(t);
    if (!s.active)
        panic("HtmEngine::commit: thread %u not transactional", t);
    s.active = false;
    release(s);
    if (cfg_.versionLog)
        vlog_.commitTx(t);
    ++counters_.commits;
}

bool
HtmEngine::logAccess(Tid t, Addr addr, ir::InstrId site,
                     uint64_t step, bool is_write)
{
    TxState &s = state(t);
    if (!s.active)
        panic("HtmEngine::logAccess: thread %u not transactional", t);
    // The log rides in a dedicated per-thread ring (mem-record
    // style), not in the transactional write set: log lines are
    // write-only streaming stores the cache can retire without
    // holding them for conflict detection. The ring is still a hard
    // capacity bound — filling it aborts the transaction exactly
    // like an overflowing write set. It must never truncate: a
    // truncated window would replay an incomplete access order and
    // silently miss races.
    if (!vlog_.append(t, addr, site, step, is_write)) {
        abortTx(t, kAbortCapacity);
        return false;
    }
    return true;
}

void
HtmEngine::abortTx(Tid t, AbortStatus status)
{
    TxState &s = state(t);
    if (!s.active)
        panic("HtmEngine::abortTx: thread %u not transactional", t);
    s.active = false;
    release(s);
    s.lastAbort = status;
    if (status & kAbortCapacity)
        ++counters_.abortsCapacity;
    else if (status & kAbortConflict)
        ++counters_.abortsConflict;
    else if (isUnknownAbort(status))
        ++counters_.abortsUnknown;
    else
        ++counters_.abortsOther;
}

AbortStatus
HtmEngine::lastAbortStatus(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s ? s->lastAbort : 0;
}

uint64_t
HtmEngine::lastConflictLine(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s ? s->lastConflictLine : kNoLine;
}

ir::InstrId
HtmEngine::lastConflictVictimInstr(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s ? s->lastConflictInstr : ir::kNoInstr;
}

void
HtmEngine::noteAccessInstr(Tid t, Addr addr, ir::InstrId instr)
{
    if (!cfg_.trackInstructions)
        return;
    TxState *s = t < tx_.size() ? &tx_[t] : nullptr;
    if (s && s->active)
        s->lineInstr[mem::lineOf(addr)] = instr;
}

std::vector<Tid>
HtmEngine::inFlightTids() const
{
    std::vector<Tid> out;
    for (Tid t = 0; t < tx_.size(); ++t)
        if (tx_[t].active)
            out.push_back(t);
    return out;
}

size_t
HtmEngine::readSetLines(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s && s->active ? s->readLineCount : 0;
}

size_t
HtmEngine::writeSetLines(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s && s->active ? s->writeLineCount : 0;
}

} // namespace txrace::htm
