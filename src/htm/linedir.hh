/**
 * @file
 * The reverse line directory: one open-addressing hash table mapping
 * cache line -> {reader bitmask, writer bitmask} over the in-flight
 * transaction slots (<= 64, one bit per slot).
 *
 * This inverts the legacy per-thread line-set representation. Where
 * the scan engine asked every in-flight transaction "do you hold this
 * line?" (O(threads) hash probes per access), the directory answers
 * "who holds this line?" with a single probe and two bitmask
 * intersections — the same trick a snooping cache directory plays,
 * and the property that keeps per-access cost constant no matter how
 * many transactions are open.
 *
 * Lifetime tricks that keep the hot paths allocation-free:
 *  - cells are validated by an epoch stamp, so dropping the whole
 *    directory (the common case: the last transaction closed) is one
 *    counter increment, not a table walk;
 *  - per-transaction clears flip bits off in place and leave the key
 *    behind; dead keys keep probe chains intact (no tombstone logic)
 *    and are dropped wholesale at the next rehash or epoch clear;
 *  - the table only grows; rehashing re-inserts live keys.
 */

#ifndef TXRACE_HTM_LINEDIR_HH
#define TXRACE_HTM_LINEDIR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/metric.hh"

namespace txrace::htm {

/** Observable behavior of the directory for telemetry (htm.dir.*). */
struct LineDirStats
{
    /** Probe-chain length distribution, one observation per lookup. */
    telemetry::LogHistogram probeLen;
    /** O(1) whole-directory drops (last transaction closed). */
    uint64_t epochClears = 0;
    /** Per-line bit clears walked at commit/abort line lists. */
    uint64_t lineWalkClears = 0;
    /** Times the table grew or compacted away dead keys. */
    uint64_t rehashes = 0;
    /** High-water mark of occupied keys (live + dead this epoch). */
    size_t occupiedPeak = 0;
};

class LineDirectory
{
  public:
    /** Reader/writer slot bitmasks of one cache line. */
    struct Entry
    {
        uint64_t readers = 0;
        uint64_t writers = 0;
    };

    /** @p initialCapacity must be a power of two. */
    explicit LineDirectory(size_t initialCapacity = 256);

    /**
     * Probe for @p line without inserting. Returns nullptr when the
     * line has no entry this epoch. The pointer stays valid until the
     * next findOrInsert/bulkClear (bit mutation never moves cells).
     */
    Entry *find(uint64_t line);

    /**
     * Probe for @p line, inserting an empty entry if absent. May
     * rehash (invalidating previous Entry pointers).
     */
    Entry &findOrInsert(uint64_t line);

    /**
     * Clear slot bit @p slotBit out of @p line's masks (commit/abort
     * line-list walk). Missing entries are ignored: the line may have
     * died with an earlier epoch clear.
     */
    void clearSlot(uint64_t line, uint32_t slotBit);

    /** Drop every entry at once (epoch bump; O(1) amortized). */
    void bulkClear();

    /** Keys occupied this epoch (live + dead-awaiting-rehash). */
    size_t occupied() const { return occupied_; }

    /** Current cell count of the table. */
    size_t capacity() const { return cells_.size(); }

    /**
     * Stats snapshot. Zero-length probes (the overwhelmingly common
     * case) are counted in a plain scalar on the hot path and folded
     * into the histogram here, at read time.
     */
    LineDirStats
    stats() const
    {
        LineDirStats out = stats_;
        out.probeLen.observeMany(0, probeZero_);
        return out;
    }

    /** Test hook: jump the epoch counter to @p e to exercise
     *  wraparound without 2^32 bulkClear calls. */
    void debugSetEpoch(uint32_t e) { epoch_ = e; }
    uint32_t debugEpoch() const { return epoch_; }

  private:
    struct Cell
    {
        uint64_t line = 0;
        uint32_t epoch = 0;  ///< valid iff == directory epoch
        Entry e;
    };

    static uint64_t
    mix(uint64_t line)
    {
        // SplitMix64 finalizer as a stateless hash of the line index.
        uint64_t z = line + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Grow/compact: re-insert live keys, drop dead ones. */
    void rehash();

    /** Insert @p line into a table known to have room (post-rehash). */
    Entry &insertFresh(uint64_t line);

    void
    recordProbe(uint64_t len)
    {
        if (len == 0)
            ++probeZero_;
        else
            stats_.probeLen.observe(len);
    }

    std::vector<Cell> cells_;
    size_t mask_;  ///< capacity - 1
    uint32_t epoch_ = 1;
    size_t occupied_ = 0;
    /** Count of probe chains of length 0 (folded in by stats()). */
    uint64_t probeZero_ = 0;
    LineDirStats stats_;
};

// The probe pair is the engine's per-access hot path; defined here so
// it inlines into HtmEngine::accessDirectory instead of paying a
// cross-TU call per memory access.

inline LineDirectory::Entry *
LineDirectory::find(uint64_t line)
{
    size_t idx = mix(line) & mask_;
    uint64_t len = 0;
    while (true) {
        Cell &c = cells_[idx];
        if (c.epoch != epoch_) {
            recordProbe(len);
            return nullptr;
        }
        if (c.line == line) {
            recordProbe(len);
            return &c.e;
        }
        idx = (idx + 1) & mask_;
        ++len;
    }
}

inline LineDirectory::Entry &
LineDirectory::findOrInsert(uint64_t line)
{
    size_t idx = mix(line) & mask_;
    uint64_t len = 0;
    while (true) {
        Cell &c = cells_[idx];
        if (c.epoch != epoch_) {
            // The load-factor check only matters when actually
            // inserting, so the (dominant) found case never pays it.
            // Growing happens before the insert, so the returned
            // reference always points into the current table.
            if ((occupied_ + 1) * 4 > cells_.size() * 3) {
                rehash();
                return insertFresh(line);
            }
            c.line = line;
            c.epoch = epoch_;
            c.e = Entry{};
            ++occupied_;
            if (occupied_ > stats_.occupiedPeak)
                stats_.occupiedPeak = occupied_;
            recordProbe(len);
            return c.e;
        }
        if (c.line == line) {
            recordProbe(len);
            return c.e;
        }
        idx = (idx + 1) & mask_;
        ++len;
    }
}

} // namespace txrace::htm

#endif // TXRACE_HTM_LINEDIR_HH
