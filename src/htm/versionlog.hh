/**
 * @file
 * Per-thread version log recorded inside the HTM fast path, the
 * substrate of the windowed slow path (mem-record-rtmseq idiom:
 * version vectors stamped inside the transaction, bounded per-thread
 * ring, versions published at commit).
 *
 * Each transactional access appends one 16-byte entry carrying the
 * address, static site, global step, and the line's last *published*
 * version — the version a committed writer stamped on it. On a
 * conflict abort the policy merges the victim's and requester's
 * pending windows by (step, tid) — the offline `infer`-style order
 * reconstruction, trivial here because the simulator's scheduler
 * already serializes accesses — and replays exactly that window under
 * the happens-before detector, then clears the logs and resumes the
 * fast path in place.
 *
 * The log streams into a dedicated per-thread ring (write-only
 * streaming stores the cache retires without holding the lines for
 * conflict detection), so it does not tighten the transactional
 * write-set boundary — but the ring itself is a hard capacity bound.
 * A window that would overflow it surfaces as a CapacityAbort — never
 * silent truncation, which would make the replayed window a lie.
 */

#ifndef TXRACE_HTM_VERSIONLOG_HH
#define TXRACE_HTM_VERSIONLOG_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/instruction.hh"
#include "mem/layout.hh"
#include "support/types.hh"

namespace txrace::htm {

/** One logged transactional access (16 bytes packed on hardware). */
struct VersionLogEntry
{
    ir::Addr addr = 0;
    uint64_t step = 0;
    ir::InstrId site = ir::kNoInstr;
    /** Owning thread (merge key; replay issues the check as it). */
    Tid tid = 0;
    /** Published version of the line at access time (seqlock-style
     *  stamp; lets offline consumers validate the merge order). */
    uint32_t version = 0;
    bool isWrite = false;
};

/** Lifetime counters, exported as htm.vlog.* by the machine. */
struct VersionLogCounters
{
    /** Entries appended across all transactions. */
    uint64_t entries = 0;
    /** Appends refused because the per-thread ring was full (the
     *  transaction died with a capacity abort). */
    uint64_t ringOverflows = 0;
    /** Line versions published by committing writers. */
    uint64_t published = 0;
};

/**
 * The per-thread rings plus the shared published-version table.
 * Owned by HtmEngine when HtmConfig::versionLog is set; the policy
 * reads pending windows through the engine on conflict aborts.
 */
class VersionLog
{
  public:
    explicit VersionLog(uint32_t max_entries)
        : maxEntries_(max_entries)
    {
    }

    /** Start @p t's window: clear its ring and replay watermark. */
    void
    beginTx(Tid t)
    {
        ThreadLog &l = log(t);
        l.entries.clear();
        l.replayedUpTo = 0;
    }

    /**
     * Append one access. Returns false when the ring is full — the
     * caller must abort the transaction (capacity), because dropping
     * the entry would silently truncate the replay window.
     */
    bool
    append(Tid t, ir::Addr addr, ir::InstrId site, uint64_t step,
           bool is_write)
    {
        ThreadLog &l = log(t);
        if (l.entries.size() >= maxEntries_) {
            ++counters_.ringOverflows;
            return false;
        }
        VersionLogEntry e;
        e.addr = addr;
        e.step = step;
        e.site = site;
        e.tid = t;
        e.version = versionOf(mem::lineOf(addr));
        e.isWrite = is_write;
        l.entries.push_back(e);
        ++counters_.entries;
        return true;
    }

    /** Entries appended since beginTx (capacity accounting). */
    size_t
    entryCount(Tid t) const
    {
        return t < logs_.size() ? logs_[t].entries.size() : 0;
    }

    /** @p t's not-yet-replayed window, oldest first. */
    std::vector<VersionLogEntry>
    pendingWindow(Tid t) const
    {
        if (t >= logs_.size())
            return {};
        const ThreadLog &l = logs_[t];
        return {l.entries.begin() +
                    static_cast<ptrdiff_t>(l.replayedUpTo),
                l.entries.end()};
    }

    /** Advance @p t's watermark past everything logged so far (its
     *  window was just replayed; keep the entries so a later abort in
     *  the same transaction does not re-replay them). */
    void
    markReplayed(Tid t)
    {
        ThreadLog &l = log(t);
        l.replayedUpTo = l.entries.size();
    }

    /** Commit: publish new versions for every written line, then
     *  drop the window (it can no longer abort). */
    void
    commitTx(Tid t)
    {
        ThreadLog &l = log(t);
        for (const VersionLogEntry &e : l.entries) {
            if (!e.isWrite)
                continue;
            ++lineVersion_[mem::lineOf(e.addr)];
            ++counters_.published;
        }
        l.entries.clear();
        l.replayedUpTo = 0;
    }

    /** Drop @p t's window without publishing (abort fully replayed,
     *  or region-mode demotion took over). */
    void
    clear(Tid t)
    {
        if (t < logs_.size()) {
            logs_[t].entries.clear();
            logs_[t].replayedUpTo = 0;
        }
    }

    /** Published version of @p line (0 until a writer commits). */
    uint32_t
    versionOf(uint64_t line) const
    {
        auto it = lineVersion_.find(line);
        return it == lineVersion_.end() ? 0 : it->second;
    }

    const VersionLogCounters &counters() const { return counters_; }

    /** Forget everything (new run). */
    void
    reset()
    {
        logs_.clear();
        lineVersion_.clear();
        counters_ = VersionLogCounters{};
    }

  private:
    struct ThreadLog
    {
        std::vector<VersionLogEntry> entries;
        /** Entries below this index were already replayed through the
         *  detector by an earlier abort of the same transaction. */
        size_t replayedUpTo = 0;
    };

    ThreadLog &
    log(Tid t)
    {
        if (t >= logs_.size())
            logs_.resize(t + 1);
        return logs_[t];
    }

    uint32_t maxEntries_;
    std::vector<ThreadLog> logs_;
    /** line -> last published (committed) version. */
    std::unordered_map<uint64_t, uint32_t> lineVersion_;
    VersionLogCounters counters_;
};

} // namespace txrace::htm

#endif // TXRACE_HTM_VERSIONLOG_HH
