/**
 * @file
 * Software model of a best-effort hardware transactional memory in
 * the mold of Intel's Restricted Transactional Memory (TSX/RTM), the
 * commodity HTM the paper builds on. This is the substitution for the
 * hardware the reproduction environment lacks; see DESIGN.md.
 *
 * Faithfully modeled properties (each is load-bearing for TxRace):
 *  - conflict detection at cache-line (64 B) granularity, so false
 *    sharing raises conflicts exactly like true sharing;
 *  - requester-wins conflict resolution: the requesting access always
 *    succeeds and every conflicting *transaction* aborts;
 *  - strong isolation: non-transactional accesses participate in
 *    conflict detection and abort conflicting transactions (this is
 *    what makes the TxFail flag protocol work);
 *  - bounded capacity shaped like an L1d: the write set is limited by
 *    per-set associativity (32 KiB / 64 B lines / 8 ways), the read
 *    set by a larger secondary bound;
 *  - a cap on concurrently executing transactions equal to the number
 *    of hardware threads;
 *  - an Intel-style abort status word, with all-zero meaning unknown.
 *
 * The engine tracks read/write line ownership and decides who aborts;
 * the simulator performs the actual rollback of thread state (the
 * write buffering lives in the interpreter's transactional store
 * queue).
 *
 * Conflict detection runs on a reverse line directory — one
 * open-addressing table mapping cache line -> reader/writer slot
 * bitmasks — answering every access with a single probe and a bitmask
 * intersection, O(1) in the number of open transactions. (The
 * original per-thread line-set scan survived PR 3 for one PR as the
 * differential-testing oracle and was removed once the directory
 * property/differential suite took over that role.)
 *
 * On top of the directory sits a per-transaction owned-line filter: a
 * small direct-mapped cache of lines the transaction already holds in
 * the required mode. A hit skips the probe entirely — while a
 * transaction holds a line, requester-wins guarantees no conflicting
 * remote holder can coexist (acquiring the line would have aborted
 * one side), so the probe, victim collection, capacity check, and set
 * update are all provably no-ops. Invalidated wholesale by the
 * occupancy-epoch bump at begin(); never allocates.
 */

#ifndef TXRACE_HTM_HTM_HH
#define TXRACE_HTM_HTM_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "htm/abort.hh"
#include "htm/linedir.hh"
#include "htm/versionlog.hh"
#include "ir/instruction.hh"
#include "mem/layout.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace txrace::htm {

using ir::Addr;

/** Which conflict-detection data structure the engine runs on. */
enum class ConflictEngine : uint8_t {
    /** Reverse line directory; O(1) per access. */
    Directory,
    /** Retired: the per-thread line-set scan oracle, deleted after
     *  serving as the directory's differential baseline. Selecting it
     *  is a configuration error (HtmEngine's constructor fatal()s)
     *  kept as an enumerator so old configs fail loudly instead of
     *  silently meaning something else. */
    LegacyScan,
};

/** Geometry and limits of the modeled HTM. */
struct HtmConfig
{
    /** L1d sets (32 KiB / 64 B lines / 8 ways = 64 sets). */
    uint32_t l1Sets = 64;
    /** L1d associativity; bounds write-set lines per cache set. */
    uint32_t l1Ways = 8;
    /** Total read-set lines trackable (secondary structure). */
    uint32_t readSetMaxLines = 4096;
    /** Maximum concurrently open transactions (hardware threads). */
    uint32_t maxConcurrentTx = 8;
    /**
     * Probability that a new write-set line finds one way of its set
     * unavailable (interference from non-transactional data, the
     * hyperthread twin, prefetchers...). Real TSX capacity boundaries
     * are noisy in exactly this way, which is why the paper's
     * loop-cut optimization reduces but never eliminates capacity
     * aborts. 0 = deterministic boundary (unit tests).
     */
    double capacityJitter = 0.0;
    /** Seed for the jitter RNG (set from the machine seed). */
    uint64_t seed = 1;
    /**
     * Track the last instruction that touched each line of every
     * transaction — RaceTM's proposed per-line debug-bit extension
     * (§9), used by the RaceTM comparison policy. Off for the
     * commodity model (real RTM exposes nothing).
     */
    bool trackInstructions = false;
    /**
     * Conflict-detection engine. Only Directory is implemented; it
     * requires maxConcurrentTx <= 64 (one bitmask bit per in-flight
     * transaction) and the constructor fatal()s on anything else —
     * there is no silent fallback.
     */
    ConflictEngine engine = ConflictEngine::Directory;
    /**
     * Per-transaction owned-line filter: skip the directory probe for
     * repeat accesses to a line the transaction already holds in the
     * required mode (read hits need the line read-held, write hits
     * write-held — a read of a merely write-held line still probes,
     * because it charges the read-set capacity bound). Behavior-
     * identical to probing by the requester-wins invariant; off only
     * for ablation (txrace_run --no-elide) and differential tests.
     */
    bool accessFilter = true;
    /**
     * Record a per-thread version log inside transactions (the
     * windowed slow path's replay substrate). The log streams into a
     * dedicated per-thread ring — see logAccess() — whose fixed bound
     * (versionLogEntries) is a capacity limit of its own: overflowing
     * it aborts the transaction with kAbortCapacity.
     */
    bool versionLog = false;
    /** Per-thread ring bound (entries); a window that would exceed it
     *  aborts with CapacityAbort rather than truncate. */
    uint32_t versionLogEntries = 1024;
};

/**
 * Fixed-layout engine counters. The begin/commit/abort paths are the
 * hottest code in the model, so they bump plain integers; stats()
 * materializes the string-keyed compatibility view on demand.
 */
struct HtmCounters
{
    uint64_t begins = 0;
    uint64_t commits = 0;
    uint64_t abortsConflict = 0;
    uint64_t abortsCapacity = 0;
    uint64_t abortsUnknown = 0;
    uint64_t abortsOther = 0;
    /** Accesses answered by the owned-line filter (probe skipped).
     *  Exported as htm.dir.filter_hit by the machine's run-end
     *  telemetry transfer, NOT by stats() — the driver merges both
     *  stats() and the machine export, and StatSet::merge sums. */
    uint64_t filterHits = 0;
};

/** Outcome of routing one memory access through the HTM. */
struct AccessResult
{
    /** The requesting transaction overflowed and must abort. */
    bool selfCapacity = false;
    /** Transactions aborted by this access (requester-wins),
     *  ascending tid order under both engines. */
    std::vector<Tid> victims;
};

/**
 * The HTM conflict/capacity engine. One instance per simulated
 * machine; thread ids index its per-thread transaction state.
 */
class HtmEngine
{
  public:
    explicit HtmEngine(const HtmConfig &cfg = {});

    /** Forget all transactional state (new run). */
    void reset();

    /** True if a new transaction may begin (hardware-thread limit). */
    bool canBegin() const;

    /** Open a transaction for @p t. Caller must check canBegin(). */
    void begin(Tid t);

    /** True if @p t has an open transaction. */
    bool inTx(Tid t) const;

    /**
     * Route an access through conflict detection, updating @p t's
     * read/write sets if it is transactional.
     *
     * Requester-wins: the access itself always succeeds unless the
     * requester overflows its own capacity; every *other* in-flight
     * transaction whose line sets conflict with it is returned as a
     * victim and has been marked aborted (conflict|retry) by the
     * engine. The caller rolls the victims back.
     *
     * On selfCapacity the requester's transaction has been marked
     * aborted (capacity) and no victims are produced (the request
     * never reached the coherence fabric).
     *
     * Defined inline below: this is the single hottest call in the
     * simulator (once per interpreted memory access), and the wrapper
     * — line extraction, state lookup, native-mode early-out — must
     * not cost a cross-TU call before the engine body even starts.
     */
    AccessResult access(Tid t, Addr addr, bool is_write);

    /**
     * Append one instrumented access to @p t's version log (valid
     * only while inTx(t), with versionLog configured). Returns false
     * when the per-thread ring is full — the transaction has already
     * been aborted with kAbortCapacity and the caller must take the
     * abort path. The ring never truncates: a truncated window would
     * replay an incomplete access order and silently miss races.
     */
    bool logAccess(Tid t, Addr addr, ir::InstrId site, uint64_t step,
                   bool is_write);

    /** The version log, or nullptr when not configured. */
    VersionLog *versionLog()
    {
        return cfg_.versionLog ? &vlog_ : nullptr;
    }
    const VersionLog *
    versionLog() const
    {
        return cfg_.versionLog ? &vlog_ : nullptr;
    }

    /** Commit @p t's transaction. Panics if none is open. */
    void commit(Tid t);

    /**
     * Abort @p t's transaction with @p status (used by the simulator
     * for interrupt-induced unknown aborts and by access() internally).
     */
    void abortTx(Tid t, AbortStatus status);

    /** Status recorded at @p t's most recent abort. */
    AbortStatus lastAbortStatus(Tid t) const;

    /** Cache line whose conflict caused @p t's most recent conflict
     *  abort (kNoLine otherwise). Commodity RTM does not expose this;
     *  it models the TxIntro-style hint the paper's §9 envisions for
     *  a cheaper slow path. */
    static constexpr uint64_t kNoLine = ~0ull;
    uint64_t lastConflictLine(Tid t) const;

    /** With trackInstructions: the instructions that last accessed
     *  @p line in @p t's transaction at its most recent conflict
     *  abort, and the requester instruction that hit it (RaceTM's
     *  extended report). kNoInstr when unavailable. */
    ir::InstrId lastConflictVictimInstr(Tid t) const;

    /** Record the requester-side instruction for attribution (called
     *  by the access path's caller, which knows the instruction). */
    void noteAccessInstr(Tid t, Addr addr, ir::InstrId instr);

    /**
     * Make @p penalty L1d ways transiently unavailable to
     * transactional write sets (fault injection: a capacity cliff).
     * Effective associativity is clamped to at least one way; applies
     * to capacity checks from now on, including open transactions.
     */
    void setWaysPenalty(uint32_t penalty) { waysPenalty_ = penalty; }
    uint32_t waysPenalty() const { return waysPenalty_; }

    /** Number of currently open transactions. */
    size_t inFlightCount() const { return inFlight_; }

    /** All threads with open transactions. */
    std::vector<Tid> inFlightTids() const;

    /** Read/write set sizes of @p t's open transaction (lines). */
    size_t readSetLines(Tid t) const;
    size_t writeSetLines(Tid t) const;

    /** Raw engine counters (begins, commits, aborts by cause). */
    const HtmCounters &counters() const { return counters_; }

    /** True when the reverse-directory engine is active (always, now
     *  that the legacy scan oracle is gone; kept for call sites that
     *  gate on engine kind). */
    bool usesDirectory() const { return true; }

    /** The directory, for telemetry export and tests. */
    const LineDirectory *lineDirectory() const { return &dir_; }

    /** String-keyed view of counters() under the htm.* names
     *  (compatibility surface for dumps and tests; zero-valued
     *  counters are omitted, matching StatSet's first-touch shape). */
    StatSet stats() const;

  private:
    struct TxState
    {
        bool active = false;

        /** @name Directory representation */
        /** @{ */
        /** Directory bitmask bit index while active. */
        uint32_t slot = 0;
        /** Lines holding any of this tx's bits (commit/abort clear
         *  list; reused across transactions, no per-begin alloc). */
        std::vector<uint64_t> lines;
        uint32_t readLineCount = 0;
        uint32_t writeLineCount = 0;
        /** @} */

        /** @name Owned-line filter (direct-mapped, occEpoch-stamped)
         * Entries are valid only when their stamp equals the current
         * occupancy epoch, so begin() invalidates the whole filter
         * with the same epoch bump that resets the occupancy table —
         * no per-begin clearing, no allocation, ever. */
        /** @{ */
        static constexpr uint32_t kFilterSize = 16;
        static constexpr uint8_t kFilterRead = 1;
        static constexpr uint8_t kFilterWrite = 2;
        std::array<uint64_t, kFilterSize> filterLine{};
        std::array<uint32_t, kFilterSize> filterStamp{};
        std::array<uint8_t, kFilterSize> filterMode{};
        /** @} */

        /** @name Epoch-stamped per-set write occupancy (both engines)
         * Sized once at the thread's first begin; begin() bumps
         * occEpoch instead of zeroing the arrays, so the begin path
         * never allocates or memsets after warmup. */
        /** @{ */
        std::vector<uint8_t> setOccupancy;
        std::vector<uint32_t> setStamp;
        uint32_t occEpoch = 0;
        /** @} */

        AbortStatus lastAbort = 0;
        uint64_t lastConflictLine = kNoLine;
        ir::InstrId lastConflictInstr = ir::kNoInstr;
        /** line -> last instruction of THIS tx touching it (RaceTM). */
        std::unordered_map<uint64_t, ir::InstrId> lineInstr;
    };

    TxState &state(Tid t);
    const TxState *stateIfAny(Tid t) const;

    /** Directory access body (probe + bitmask intersection). */
    void accessDirectory(uint64_t line, bool is_write, TxState *self,
                         bool self_tx, AccessResult &result);

    /** Mark one conflict victim aborted and record the blame line. */
    void abortVictim(Tid u, uint64_t line);

    /** Tear down @p s's line footprint (commit or abort). Decrements
     *  inFlight_ and, in directory mode, frees the slot and clears
     *  the tx's lines (or the whole directory when it was the last
     *  open transaction — one epoch bump instead of a walk). */
    void release(TxState &s);

    /** Write-set ways available right now; consumes the jitter RNG
     *  exactly when both engines would (new write line, jitter on). */
    uint32_t effectiveWays();

    /** Start a fresh occupancy epoch for @p s (no allocation after
     *  the thread's first transaction). */
    void beginOccupancy(TxState &s);

    uint32_t
    occupancyOf(const TxState &s, uint32_t set) const
    {
        return s.setStamp[set] == s.occEpoch ? s.setOccupancy[set] : 0;
    }

    void
    bumpOccupancy(TxState &s, uint32_t set)
    {
        if (s.setStamp[set] != s.occEpoch) {
            s.setStamp[set] = s.occEpoch;
            s.setOccupancy[set] = 1;
        } else {
            ++s.setOccupancy[set];
        }
    }

    HtmConfig cfg_;
    bool filterEnabled_;
    Rng rng_;
    VersionLog vlog_;
    std::vector<TxState> tx_;
    LineDirectory dir_;
    /** In-use directory slot bits; slot i belongs to slotTid_[i]. */
    uint64_t slotsUsed_ = 0;
    std::array<Tid, 64> slotTid_{};
    size_t inFlight_ = 0;
    uint32_t waysPenalty_ = 0;
    HtmCounters counters_;
};

inline const HtmEngine::TxState *
HtmEngine::stateIfAny(Tid t) const
{
    return t < tx_.size() ? &tx_[t] : nullptr;
}

// Inline: the decoded step loop asks per op (phase attribution, tx
// store buffering), so this must be a bounds check and a load.
inline bool
HtmEngine::inTx(Tid t) const
{
    const TxState *s = stateIfAny(t);
    return s && s->active;
}

inline AccessResult
HtmEngine::access(Tid t, Addr addr, bool is_write)
{
    AccessResult result;
    const uint64_t line = mem::lineOf(addr);
    TxState *self = t < tx_.size() ? &tx_[t] : nullptr;
    const bool self_tx = self && self->active;

    // Early-out: a non-transactional access with no transaction in
    // flight has nothing to check and nothing to record. This is the
    // whole story for native-mode runs, which used to pay the full
    // victim scan on every access.
    if (!self_tx && inFlight_ == 0)
        return result;

    // Owned-line filter: while this transaction holds `line` in the
    // required mode, requester-wins guarantees no conflicting remote
    // holder exists and the directory entry already carries our bit,
    // so the probe would change nothing. Read hits require the line
    // read-held (a read of a write-held line still probes: the full
    // path charges it against the read-set capacity bound).
    if (self_tx && filterEnabled_) {
        const uint32_t idx = line & (TxState::kFilterSize - 1);
        if (self->filterStamp[idx] == self->occEpoch &&
            self->filterLine[idx] == line &&
            (self->filterMode[idx] &
             (is_write ? TxState::kFilterWrite : TxState::kFilterRead))) {
            ++counters_.filterHits;
            return result;
        }
    }

    accessDirectory(line, is_write, self, self_tx, result);

    // Record the now-held mode — only if the transaction survived the
    // access (a selfCapacity abort clears `active` inside the call).
    if (self_tx && filterEnabled_ && self->active) {
        const uint32_t idx = line & (TxState::kFilterSize - 1);
        const uint8_t mode =
            is_write ? TxState::kFilterWrite : TxState::kFilterRead;
        if (self->filterStamp[idx] == self->occEpoch &&
            self->filterLine[idx] == line) {
            self->filterMode[idx] |= mode;
        } else {
            self->filterStamp[idx] = self->occEpoch;
            self->filterLine[idx] = line;
            self->filterMode[idx] = mode;
        }
    }
    return result;
}

} // namespace txrace::htm

#endif // TXRACE_HTM_HTM_HH
