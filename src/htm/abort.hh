/**
 * @file
 * Transaction abort status word, modeled on the EAX status bits Intel
 * RTM delivers to the fallback handler (Intel SDM Vol. 1 ch. 16 /
 * optimization manual ch. 12). An all-zero status is the "unknown"
 * abort the paper's runtime has to handle conservatively.
 */

#ifndef TXRACE_HTM_ABORT_HH
#define TXRACE_HTM_ABORT_HH

#include <cstdint>
#include <string>

namespace txrace::htm {

/** Abort cause bits; combinable, as on real hardware. */
enum AbortBit : uint32_t {
    kAbortRetry    = 1u << 0,  ///< retry may succeed (set with conflict)
    kAbortConflict = 1u << 1,  ///< data conflict with another agent
    kAbortCapacity = 1u << 2,  ///< transactional buffering overflowed
    kAbortDebug    = 1u << 3,  ///< debug breakpoint hit
    kAbortNested   = 1u << 4,  ///< abort during a nested transaction
    kAbortExplicit = 1u << 5,  ///< xabort executed
};

/** Status word; 0 means "aborted for an unspecified (unknown) reason". */
using AbortStatus = uint32_t;

/** True if the status carries no architectural cause — unknown abort. */
constexpr bool
isUnknownAbort(AbortStatus s)
{
    return s == 0;
}

/** Render a status like "conflict|retry" (or "unknown"). */
std::string abortToString(AbortStatus s);

} // namespace txrace::htm

#endif // TXRACE_HTM_ABORT_HH
