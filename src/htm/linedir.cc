#include "htm/linedir.hh"

#include "support/log.hh"

namespace txrace::htm {

LineDirectory::LineDirectory(size_t initialCapacity)
    : cells_(initialCapacity), mask_(initialCapacity - 1)
{
    if (initialCapacity == 0 ||
        (initialCapacity & (initialCapacity - 1)) != 0)
        fatal("LineDirectory: capacity must be a nonzero power of two");
}

LineDirectory::Entry &
LineDirectory::insertFresh(uint64_t line)
{
    size_t idx = mix(line) & mask_;
    uint64_t len = 0;
    while (cells_[idx].epoch == epoch_) {
        idx = (idx + 1) & mask_;
        ++len;
    }
    Cell &c = cells_[idx];
    c.line = line;
    c.epoch = epoch_;
    c.e = Entry{};
    ++occupied_;
    if (occupied_ > stats_.occupiedPeak)
        stats_.occupiedPeak = occupied_;
    recordProbe(len);
    return c.e;
}

void
LineDirectory::clearSlot(uint64_t line, uint32_t slotBit)
{
    if (Entry *e = find(line)) {
        uint64_t bit = ~(uint64_t{1} << slotBit);
        e->readers &= bit;
        e->writers &= bit;
        ++stats_.lineWalkClears;
    }
}

void
LineDirectory::bulkClear()
{
    ++epoch_;
    if (epoch_ == 0) {
        // Epoch wraparound: stale cells stamped with the pre-wrap
        // value would otherwise read as valid. Pay one table wipe
        // every 2^32 clears.
        for (Cell &c : cells_)
            c = Cell{};
        epoch_ = 1;
    }
    occupied_ = 0;
    ++stats_.epochClears;
}

void
LineDirectory::rehash()
{
    // Count keys that still hold members; dead keys (all bits cleared
    // by commit/abort walks) are dropped instead of copied.
    size_t live = 0;
    for (const Cell &c : cells_)
        if (c.epoch == epoch_ && (c.e.readers | c.e.writers))
            ++live;
    size_t newCap = cells_.size();
    while ((live + 1) * 2 > newCap)
        newCap *= 2;

    std::vector<Cell> old = std::move(cells_);
    cells_.assign(newCap, Cell{});
    mask_ = newCap - 1;
    uint32_t oldEpoch = epoch_;
    epoch_ = 1;
    occupied_ = 0;
    for (const Cell &c : old) {
        if (c.epoch != oldEpoch || !(c.e.readers | c.e.writers))
            continue;
        size_t idx = mix(c.line) & mask_;
        while (cells_[idx].epoch == epoch_)
            idx = (idx + 1) & mask_;
        cells_[idx].line = c.line;
        cells_[idx].epoch = epoch_;
        cells_[idx].e = c.e;
        ++occupied_;
    }
    if (occupied_ > stats_.occupiedPeak)
        stats_.occupiedPeak = occupied_;
    ++stats_.rehashes;
}

} // namespace txrace::htm
