#include <algorithm>
#include <vector>

#include "passes/passes.hh"
#include "support/log.hh"

namespace txrace::passes {

using ir::Instruction;
using ir::OpCode;
using ir::Program;

namespace {

Instruction
makeOp(OpCode op)
{
    Instruction ins;
    ins.op = op;
    return ins;
}

/** True if the transactionalizer must cut a transaction around @p op. */
bool
isBoundary(OpCode op)
{
    return ir::isSyncOp(op) || op == OpCode::Syscall;
}

/** Phase 1: wrap everything, cutting at boundaries. */
void
insertBoundaries(ir::Function &fn)
{
    std::vector<Instruction> out;
    out.reserve(fn.body.size() + 16);
    out.push_back(makeOp(OpCode::TxBegin));
    for (auto &ins : fn.body) {
        if (isBoundary(ins.op)) {
            out.push_back(makeOp(OpCode::TxEnd));
            out.push_back(std::move(ins));
            out.push_back(makeOp(OpCode::TxBegin));
        } else {
            out.push_back(std::move(ins));
        }
    }
    out.push_back(makeOp(OpCode::TxEnd));
    fn.body = std::move(out);
}

/** Phase 2: drop syntactically empty TxBegin/TxEnd pairs. */
void
removeAdjacentPairs(ir::Function &fn)
{
    std::vector<Instruction> out;
    out.reserve(fn.body.size());
    for (auto &ins : fn.body) {
        if (ins.op == OpCode::TxEnd && !out.empty() &&
            out.back().op == OpCode::TxBegin) {
            out.pop_back();
            continue;
        }
        out.push_back(std::move(ins));
    }
    fn.body = std::move(out);
}

/** Phase 3: LoopCut before the LoopEnd of transactional loops whose
 *  body contains at least one instrumented memory access. */
void
insertLoopCuts(ir::Function &fn)
{
    // Match loops on the current (post-insertion) body.
    std::vector<size_t> stack;
    std::vector<std::pair<size_t, size_t>> loops;  // (begin, end)
    for (size_t pc = 0; pc < fn.body.size(); ++pc) {
        if (fn.body[pc].op == OpCode::LoopBegin) {
            stack.push_back(pc);
        } else if (fn.body[pc].op == OpCode::LoopEnd) {
            loops.emplace_back(stack.back(), pc);
            stack.pop_back();
        }
    }

    // Transaction state at each pc (linear alternation).
    std::vector<bool> in_tx(fn.body.size(), false);
    bool cur = false;
    for (size_t pc = 0; pc < fn.body.size(); ++pc) {
        if (fn.body[pc].op == OpCode::TxBegin)
            cur = true;
        else if (fn.body[pc].op == OpCode::TxEnd)
            cur = false;
        in_tx[pc] = cur;
    }

    std::vector<size_t> cut_before;  // LoopEnd positions to precede
    std::vector<uint64_t> cut_ids;
    for (auto [begin, end] : loops) {
        if (!in_tx[begin])
            continue;
        bool has_access = false;
        for (size_t pc = begin + 1; pc < end && !has_access; ++pc)
            has_access = ir::isMemAccess(fn.body[pc].op) &&
                         fn.body[pc].instrumented;
        if (!has_access)
            continue;
        cut_before.push_back(end);
        cut_ids.push_back(fn.body[begin].id);
    }

    if (cut_before.empty())
        return;
    std::vector<Instruction> out;
    out.reserve(fn.body.size() + cut_before.size());
    for (size_t pc = 0; pc < fn.body.size(); ++pc) {
        auto it = std::find(cut_before.begin(), cut_before.end(), pc);
        if (it != cut_before.end()) {
            Instruction cut = makeOp(OpCode::LoopCut);
            cut.arg0 = cut_ids[static_cast<size_t>(
                it - cut_before.begin())];
            out.push_back(cut);
        }
        out.push_back(std::move(fn.body[pc]));
    }
    fn.body = std::move(out);
}

/**
 * Phase 4: classify well-nested linear regions. Regions whose span
 * from TxBegin to the next TxEnd stays at or above the starting loop
 * depth are "well nested"; only those are safe to remove or to force
 * slow without disturbing regions that dynamically wrap around loop
 * back-edges.
 */
void
classifyRegions(ir::Function &fn, const PassConfig &cfg)
{
    // Local loop matching on the current (post-insertion) body.
    std::vector<size_t> match_of(fn.body.size(), 0);
    {
        std::vector<size_t> stack;
        for (size_t pc = 0; pc < fn.body.size(); ++pc) {
            if (fn.body[pc].op == OpCode::LoopBegin) {
                stack.push_back(pc);
            } else if (fn.body[pc].op == OpCode::LoopEnd) {
                match_of[pc] = stack.back();
                match_of[stack.back()] = pc;
                stack.pop_back();
            }
        }
    }

    std::vector<bool> remove(fn.body.size(), false);
    for (size_t i = 0; i < fn.body.size(); ++i) {
        if (fn.body[i].op != OpCode::TxBegin)
            continue;

        // Locate the region's end and check well-nestedness. A region
        // that runs into the LoopEnd of an enclosing loop continues
        // dynamically at the loop top (wrap-around).
        int depth = 0;
        int end_depth = 0;
        bool well_nested = true;
        size_t end = fn.body.size();
        size_t wrap_loop_end = fn.body.size();
        for (size_t j = i + 1; j < fn.body.size(); ++j) {
            OpCode op = fn.body[j].op;
            if (op == OpCode::TxEnd) {
                end = j;
                end_depth = depth;
                break;
            }
            if (op == OpCode::LoopBegin) {
                ++depth;
            } else if (op == OpCode::LoopEnd) {
                if (--depth < 0) {
                    well_nested = false;
                    wrap_loop_end = j;
                    break;
                }
            }
        }
        if (!well_nested) {
            // Wrap-around region: count the tail (TxBegin up to the
            // back edge) once, then the head of the loop body up to
            // its first TxEnd. Bail to "fast" on anything more
            // complicated (a nested loop before the region ends).
            double est = 0.0;
            bool simple = true;
            for (size_t j = i + 1; j < wrap_loop_end && simple; ++j) {
                OpCode op = fn.body[j].op;
                if (op == OpCode::LoopBegin || op == OpCode::LoopEnd)
                    simple = false;
                else if (ir::isMemAccess(op) && fn.body[j].instrumented)
                    est += 1.0;
            }
            size_t head = match_of[wrap_loop_end] + 1;
            bool closed = false;
            for (size_t j = head; j < wrap_loop_end && simple; ++j) {
                OpCode op = fn.body[j].op;
                if (op == OpCode::TxEnd) {
                    closed = true;
                    break;
                }
                if (op == OpCode::LoopBegin || op == OpCode::LoopEnd ||
                    op == OpCode::TxBegin)
                    simple = false;
                else if (ir::isMemAccess(op) && fn.body[j].instrumented)
                    est += 1.0;
            }
            if (simple && closed &&
                est < static_cast<double>(cfg.smallRegionK))
                fn.body[i].arg1 = 1;  // force slow path
            continue;
        }
        if (end == fn.body.size())
            continue;

        // Which loops close inside the region? Only those multiply
        // the per-entry execution count; a loop the region leaves
        // through its TxEnd runs its prefix exactly once per entry.
        std::vector<size_t> open_stack;
        std::vector<bool> closes(fn.body.size(), false);
        for (size_t j = i + 1; j < end; ++j) {
            if (fn.body[j].op == OpCode::LoopBegin)
                open_stack.push_back(j);
            else if (fn.body[j].op == OpCode::LoopEnd) {
                closes[open_stack.back()] = true;
                open_stack.pop_back();
            }
        }

        // Estimated dynamic instrumented accesses per region entry.
        double est = 0.0;
        double mult = 1.0;
        std::vector<double> mult_stack;
        for (size_t j = i + 1; j < end; ++j) {
            OpCode op = fn.body[j].op;
            if (op == OpCode::LoopBegin) {
                mult_stack.push_back(mult);
                if (closes[j]) {
                    double trips =
                        static_cast<double>(fn.body[j].arg0) +
                        static_cast<double>(fn.body[j].arg1) / 2.0;
                    mult = std::min(mult * std::max(trips, 1.0), 1e12);
                }
            } else if (op == OpCode::LoopEnd) {
                if (!mult_stack.empty()) {
                    mult = mult_stack.back();
                    mult_stack.pop_back();
                }
            } else if (ir::isMemAccess(op) &&
                       fn.body[j].instrumented) {
                est += mult;
            }
        }
        if (est == 0.0 && cfg.removeUninstrumented && end_depth == 0) {
            // Safe to drop only when the TxEnd sits at the TxBegin's
            // loop depth — otherwise the TxEnd also terminates the
            // wrap-around region entered over the loop back-edge.
            remove[i] = true;
            remove[end] = true;
        } else if (est < static_cast<double>(cfg.smallRegionK)) {
            fn.body[i].arg1 = 1;  // force slow path
        }
    }

    std::vector<Instruction> out;
    out.reserve(fn.body.size());
    for (size_t pc = 0; pc < fn.body.size(); ++pc)
        if (!remove[pc])
            out.push_back(std::move(fn.body[pc]));
    fn.body = std::move(out);
}

} // namespace

void
transactionalize(Program &prog, const PassConfig &cfg)
{
    if (!prog.finalized())
        fatal("transactionalize: program not finalized");
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f) {
        ir::Function &fn = prog.function(f);
        insertBoundaries(fn);
        removeAdjacentPairs(fn);
        if (cfg.insertLoopCuts)
            insertLoopCuts(fn);
        classifyRegions(fn, cfg);
    }
    prog.refinalize();
    std::string err = prog.checkTransactionalForm();
    if (!err.empty())
        panic("transactionalize post-condition failed: %s",
              err.c_str());
}

ir::Program
preparedForTxRace(const Program &prog, const PassConfig &cfg,
                  ElisionStats *elision)
{
    Program copy = prog;
    privatize(copy);
    transactionalize(copy, cfg);
    // Elision runs last, on the final instruction stream: it only
    // clears `instrumented` bits, so the prepared program is
    // position-for-position identical with elision on and off (same
    // ids, same region structure, same RNG consumption) — the
    // property the differential soundness test rests on.
    ElisionStats stats = elide(copy, cfg.elide);
    if (elision)
        *elision = stats;
    return copy;
}

ir::Program
preparedForTSan(const Program &prog)
{
    Program copy = prog;
    privatize(copy);
    return copy;
}

} // namespace txrace::passes
