/**
 * @file
 * Static access-elision pipeline (the reproduction of the
 * "Compiling Away the Overhead of Race Detection" / HardRace idea the
 * paper's §7 points at: most dynamic checks are statically redundant).
 *
 * Three passes, all running AFTER transactionalize() and all only
 * clearing `instrumented` bits — never inserting, removing, or
 * reordering instructions. That discipline is what keeps an elided
 * and a non-elided build schedule-identical (same step counts, same
 * RNG draws, same transaction boundaries), so the differential
 * soundness test can assert byte-identical race-fingerprint sets.
 *
 * 1. Dominance elision. Within one *elision segment* — a maximal run
 *    of instructions free of synchronization, system calls, loop
 *    boundaries, loop cuts, and transaction markers — a second access
 *    with the same address expression, opcode, and source tag is
 *    redundant: the surviving first access (the representative)
 *    executes at the same vector-clock epoch and therefore records
 *    exactly the same race pairs, and slow-path episodes always
 *    re-execute from a segment boundary (TxBegin and LoopCut both
 *    snapshot at boundary positions), so the representative is never
 *    skipped. Elided accesses carry `elisionRep` pointing at their
 *    representative; its fingerprint (func|op|tag) equals theirs, so
 *    the report the developer sees is unchanged.
 *
 * 2. Read-after-write downgrade. A load dominated by a *store* to the
 *    same address in the same segment adds no new racy location: the
 *    store's shadow-cell write entry is checked by every subsequent
 *    conflicting access at the same epoch. The racing *endpoint* can
 *    move from the load to the store (the opcode differs), so unlike
 *    pass 1 this is not fingerprint-identical by construction; it is
 *    validated empirically by the differential test across every
 *    registry workload and seed.
 *
 * 3. Thread-disjointness (extended escape/privatization). The
 *    simulator evaluates `addr = base + threadStride*tid +
 *    loopStride*loopIdx + randomStride*uniform`, so an access's
 *    dynamic footprint is a per-thread interval. If every access
 *    whose global footprint can overlap lives in the same
 *    "slot family" — common thread stride ts (granule-aligned), each
 *    member's in-slot extent contained in one slot, all members in
 *    the same slot phase — then two different threads can never touch
 *    a common granule, under any schedule, so no member can ever
 *    race and all of them can be elided outright (no representative
 *    needed). This generalizes privatize.cc beyond declared ranges.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mem/layout.hh"
#include "passes/passes.hh"
#include "support/log.hh"

namespace txrace::passes {

using ir::AddrExpr;
using ir::Instruction;
using ir::OpCode;
using ir::Program;

namespace {

/** Opcodes that end an elision segment. Everything the runtime can
 *  resume, re-execute, or synchronize at is a boundary; Compute and
 *  Nop are transparent. */
bool
isSegmentBoundary(OpCode op)
{
    switch (op) {
      case OpCode::Syscall:
      case OpCode::LoopBegin:
      case OpCode::LoopEnd:
      case OpCode::LoopCut:
      case OpCode::TxBegin:
      case OpCode::TxEnd:
        return true;
      default:
        return ir::isSyncOp(op);
    }
}

/** Straight-line dominance + read-after-write downgrade over one
 *  function. Returns via @p stats. */
void
elideDominated(ir::Function &fn, const ElideConfig &cfg,
               ElisionStats &stats, uint64_t &fn_elided)
{
    struct Rep
    {
        const AddrExpr *addr;
        OpCode op;
        const std::string *tag;
        ir::InstrId id;
    };
    std::vector<Rep> window;

    for (Instruction &ins : fn.body) {
        if (isSegmentBoundary(ins.op)) {
            window.clear();
            continue;
        }
        if (!ir::isMemAccess(ins.op) || !ins.instrumented)
            continue;
        // A random address component makes the dynamic address differ
        // between executions of the same static instruction: such an
        // access can neither be dominated nor dominate.
        if (ins.addr.randomCount != 0)
            continue;

        const Rep *same_op = nullptr;
        const Rep *store_rep = nullptr;
        for (const Rep &r : window) {
            if (!(*r.addr == ins.addr))
                continue;
            // Same-op dominance demands an equal tag: the survivor
            // must be the same report endpoint. The store behind a
            // RAW downgrade need not share the load's tag — the
            // endpoint moves to the store by design.
            if (r.op == ins.op && *r.tag == ins.tag) {
                same_op = &r;
                break;
            }
            if (r.op == OpCode::Store)
                store_rep = &r;
        }

        if (cfg.dominance && same_op) {
            ins.instrumented = false;
            ins.elisionRep = same_op->id;
            ++stats.dominated;
            ++fn_elided;
            continue;
        }
        if (cfg.rawDowngrade && ins.op == OpCode::Load && store_rep) {
            ins.instrumented = false;
            ins.elisionRep = store_rep->id;
            ++stats.rawDowngraded;
            ++fn_elided;
            continue;
        }
        window.push_back({&ins.addr, ins.op, &ins.tag, ins.id});
    }
}

/** One instrumented access with its footprint summary. */
struct Footprint
{
    ir::FuncId func = 0;
    uint32_t pc = 0;
    /** threadStride. */
    uint64_t ts = 0;
    uint64_t base = 0;
    /** Max byte offset beyond base + ts*tid (loop + random extent). */
    uint64_t span = 0;
    /** Whole-program footprint interval [lo, hi], inclusive. */
    uint64_t lo = 0;
    uint64_t hi = 0;
    /** False when the extent could not be bounded (unknown loop
     *  nesting); such an access blocks its whole overlap group. */
    bool analyzable = true;
};

/**
 * Upper bound on simulated thread ids: 1 (root) + every ThreadCreate,
 * with creations inside loops multiplied by the loops' maximum trip
 * counts. Returns 0 when no sound bound exists (thread creation
 * outside the entry function, or absurd loop products), which
 * disables the privatization pass.
 */
uint64_t
maxThreadBound(const Program &prog)
{
    constexpr uint64_t kCap = 1u << 20;
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f) {
        if (f == prog.entry())
            continue;
        for (const Instruction &ins : prog.function(f).body)
            if (ins.op == OpCode::ThreadCreate)
                return 0;  // transitive spawning: no easy bound
    }
    uint64_t total = 1;
    uint64_t mult = 1;
    std::vector<uint64_t> mult_stack;
    for (const Instruction &ins :
         prog.function(prog.entry()).body) {
        if (ins.op == OpCode::LoopBegin) {
            mult_stack.push_back(mult);
            uint64_t trips = ins.arg0 + ins.arg1;
            if (trips == 0)
                trips = 1;
            if (mult > kCap / trips)
                return 0;
            mult *= trips;
        } else if (ins.op == OpCode::LoopEnd) {
            mult = mult_stack.back();
            mult_stack.pop_back();
        } else if (ins.op == OpCode::ThreadCreate) {
            total += mult;
            if (total > kCap)
                return 0;
        }
    }
    return total;
}

/**
 * Thread-disjointness elision. Collects the footprint of every still-
 * instrumented access, groups accesses whose global footprints can
 * overlap, and elides every member of a group proven per-thread
 * disjoint (see file comment). Sound regardless of schedule: the
 * detector can never pair two different threads on a common granule
 * of such a group, so removing the checks removes no race.
 */
void
elidePrivate(Program &prog, ElisionStats &stats,
             std::vector<uint64_t> &fn_elided)
{
    const uint64_t max_threads = maxThreadBound(prog);
    if (max_threads == 0)
        return;

    std::vector<Footprint> fps;
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f) {
        const ir::Function &fn = prog.function(f);
        // Static stack of enclosing LoopBegin pcs while scanning.
        std::vector<uint32_t> loop_stack;
        for (uint32_t pc = 0; pc < fn.body.size(); ++pc) {
            const Instruction &ins = fn.body[pc];
            if (ins.op == OpCode::LoopBegin) {
                loop_stack.push_back(pc);
                continue;
            }
            if (ins.op == OpCode::LoopEnd) {
                loop_stack.pop_back();
                continue;
            }
            if (!ir::isMemAccess(ins.op) || !ins.instrumented)
                continue;

            Footprint fp;
            fp.func = f;
            fp.pc = pc;
            fp.ts = ins.addr.threadStride;
            fp.base = ins.addr.base;
            uint64_t span = 0;
            if (ins.addr.loopStride != 0) {
                if (ins.addr.loopDepth >= loop_stack.size()) {
                    fp.analyzable = false;
                } else {
                    const Instruction &loop =
                        fn.body[loop_stack[loop_stack.size() - 1 -
                                           ins.addr.loopDepth]];
                    uint64_t max_idx = loop.arg0 + loop.arg1;
                    max_idx = max_idx > 0 ? max_idx - 1 : 0;
                    span += ins.addr.loopStride * max_idx;
                }
            }
            if (ins.addr.randomCount > 0)
                span += ins.addr.randomStride *
                        (ins.addr.randomCount - 1);
            fp.span = span;
            if (fp.analyzable) {
                fp.lo = fp.base;
                fp.hi = fp.base + span + mem::kGranuleSize - 1 +
                        (fp.ts > 0 ? fp.ts * (max_threads - 1) : 0);
            } else {
                fp.lo = 0;
                fp.hi = ~0ull;
            }
            fps.push_back(fp);
        }
    }
    if (fps.empty())
        return;

    std::sort(fps.begin(), fps.end(),
              [](const Footprint &a, const Footprint &b) {
                  return a.lo < b.lo;
              });

    // Sweep: maximal groups of transitively overlapping intervals.
    size_t group_start = 0;
    uint64_t group_hi = fps[0].hi;
    auto flush = [&](size_t end) {
        // Safe iff all members form one slot family: common
        // granule-aligned thread stride, each member's in-slot extent
        // contained in a single slot, and a common slot phase (equal
        // base/ts), so thread t only ever touches slot block t+q.
        const uint64_t ts = fps[group_start].ts;
        bool safe = ts > 0 && ts % mem::kGranuleSize == 0;
        uint64_t q0 = safe ? fps[group_start].base / ts : 0;
        for (size_t i = group_start; safe && i < end; ++i) {
            const Footprint &fp = fps[i];
            safe = fp.analyzable && fp.ts == ts &&
                   fp.base / ts == q0 &&
                   fp.base % ts + fp.span + mem::kGranuleSize <= ts;
        }
        if (!safe)
            return;
        for (size_t i = group_start; i < end; ++i) {
            Instruction &ins = prog.function(fps[i].func)
                                   .body[fps[i].pc];
            ins.instrumented = false;
            ++stats.privatized;
            ++fn_elided[fps[i].func];
        }
    };
    for (size_t i = 1; i < fps.size(); ++i) {
        if (fps[i].lo > group_hi) {
            flush(i);
            group_start = i;
            group_hi = fps[i].hi;
        } else {
            group_hi = std::max(group_hi, fps[i].hi);
        }
    }
    flush(fps.size());
}

} // namespace

ElisionStats
elide(Program &prog, const ElideConfig &cfg)
{
    ElisionStats stats;
    if (!cfg.enabled)
        return stats;
    if (!prog.finalized())
        fatal("elide: program not finalized");

    std::vector<uint64_t> fn_elided(prog.numFunctions(), 0);
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f) {
        ir::Function &fn = prog.function(f);
        for (const Instruction &ins : fn.body)
            if (ir::isMemAccess(ins.op) && ins.instrumented)
                ++stats.candidates;
        if (cfg.dominance || cfg.rawDowngrade)
            elideDominated(fn, cfg, stats, fn_elided[f]);
    }
    if (cfg.privatize)
        elidePrivate(prog, stats, fn_elided);

    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f)
        if (fn_elided[f] > 0)
            stats.perFunction.emplace_back(prog.function(f).name,
                                           fn_elided[f]);
    return stats;
}

} // namespace txrace::passes
