/**
 * @file
 * Compile-time instrumentation passes — the reproduction of the
 * paper's LLVM transformation (§4.1, §4.3, §7).
 *
 * The pipeline mirrors what TxRace's LLVM pass does to real IR:
 *
 *  1. privatize(): clear the `instrumented` bit on accesses that fall
 *     in ranges the program declares thread-private — the stand-in
 *     for reusing TSan's static "provably race-free" elision.
 *  2. transactionalize(): insert TxBegin at thread entry points and
 *     after every synchronization operation or system call; insert
 *     TxEnd at thread exit points and before every synchronization
 *     operation or system call (system calls must not execute inside
 *     a transaction on RTM — privilege-level changes abort).
 *     Then, as the paper's optimizations:
 *       - drop transactions around regions with no instrumented
 *         memory operations (TSan would not instrument them either);
 *       - force regions with fewer than K (=5) estimated dynamic
 *         memory operations onto the slow path, where the software
 *         detector is cheaper than transaction management;
 *       - insert LoopCut checks at the end of loop bodies that
 *         execute inside transactions, enabling the DynLoopcut /
 *         ProfLoopcut capacity-abort avoidance schemes.
 *
 * Post-condition (asserted): Program::checkTransactionalForm()
 * passes, i.e. transactions alternate correctly on every dynamic
 * path and never contain a system call or synchronization operation.
 */

#ifndef TXRACE_PASSES_PASSES_HH
#define TXRACE_PASSES_PASSES_HH

#include "ir/program.hh"

namespace txrace::passes {

/** Tunables of the instrumentation pipeline. */
struct PassConfig
{
    /** Regions with < K estimated dynamic instrumented accesses are
     *  forced onto the slow path (paper §4.3, K = 5). */
    uint32_t smallRegionK = 5;
    /** Insert LoopCut instrumentation (off for TxRace-NoOpt). */
    bool insertLoopCuts = true;
    /** Drop transactions around uninstrumented regions. */
    bool removeUninstrumented = true;
};

/** Clear `instrumented` on accesses inside declared private ranges. */
void privatize(ir::Program &prog);

/** Insert TxBegin/TxEnd/LoopCut per the rules above. The program is
 *  refinalized; panics if the post-condition fails. */
void transactionalize(ir::Program &prog, const PassConfig &cfg = {});

/** Copy @p prog and run the full TxRace pipeline on the copy. */
ir::Program preparedForTxRace(const ir::Program &prog,
                              const PassConfig &cfg = {});

/** Copy @p prog and run only privatize() (TSan baseline build). */
ir::Program preparedForTSan(const ir::Program &prog);

} // namespace txrace::passes

#endif // TXRACE_PASSES_PASSES_HH
