/**
 * @file
 * Compile-time instrumentation passes — the reproduction of the
 * paper's LLVM transformation (§4.1, §4.3, §7).
 *
 * The pipeline mirrors what TxRace's LLVM pass does to real IR:
 *
 *  1. privatize(): clear the `instrumented` bit on accesses that fall
 *     in ranges the program declares thread-private — the stand-in
 *     for reusing TSan's static "provably race-free" elision.
 *  2. transactionalize(): insert TxBegin at thread entry points and
 *     after every synchronization operation or system call; insert
 *     TxEnd at thread exit points and before every synchronization
 *     operation or system call (system calls must not execute inside
 *     a transaction on RTM — privilege-level changes abort).
 *     Then, as the paper's optimizations:
 *       - drop transactions around regions with no instrumented
 *         memory operations (TSan would not instrument them either);
 *       - force regions with fewer than K (=5) estimated dynamic
 *         memory operations onto the slow path, where the software
 *         detector is cheaper than transaction management;
 *       - insert LoopCut checks at the end of loop bodies that
 *         execute inside transactions, enabling the DynLoopcut /
 *         ProfLoopcut capacity-abort avoidance schemes.
 *
 * Post-condition (asserted): Program::checkTransactionalForm()
 * passes, i.e. transactions alternate correctly on every dynamic
 * path and never contain a system call or synchronization operation.
 */

#ifndef TXRACE_PASSES_PASSES_HH
#define TXRACE_PASSES_PASSES_HH

#include <string>
#include <utility>
#include <vector>

#include "ir/program.hh"

namespace txrace::passes {

/**
 * Tunables of the static elision pipeline (passes/elide.cc). All
 * elision passes run strictly after transactionalize() and only clear
 * `instrumented` bits: the instruction stream, region boundaries, and
 * every RNG draw are identical with elision on and off, which is what
 * makes the soundness contract ("elision never changes which races
 * are reported") checkable by a bitwise differential test.
 */
struct ElideConfig
{
    /** Master switch (txrace_run --no-elide clears it). */
    bool enabled = true;
    /** Straight-line dominance elision: a second access with the same
     *  address expression, opcode, and tag inside one sync-free
     *  segment is redundant — the surviving first access reaches the
     *  detector in the same epoch and reproduces every race pair. */
    bool dominance = true;
    /** Read-after-write downgrade: a load dominated by a store to the
     *  same address in the same segment. Any race with the load is
     *  also a race with the store on the same variable, but the
     *  reported endpoint moves to the store, so this is validated
     *  empirically by the differential test rather than proven
     *  fingerprint-identical. */
    bool rawDowngrade = true;
    /** Extended escape/privatization: elide accesses whose per-thread
     *  footprints are provably disjoint across threads (granule-
     *  aligned per-slot containment) and that share no granule with
     *  any other instrumented access. Such accesses cannot race under
     *  any schedule. */
    bool privatize = true;
};

/** Tunables of the instrumentation pipeline. */
struct PassConfig
{
    /** Regions with < K estimated dynamic instrumented accesses are
     *  forced onto the slow path (paper §4.3, K = 5). */
    uint32_t smallRegionK = 5;
    /** Insert LoopCut instrumentation (off for TxRace-NoOpt). */
    bool insertLoopCuts = true;
    /** Drop transactions around uninstrumented regions. */
    bool removeUninstrumented = true;
    /** Static access-elision pipeline (TxRace modes only). */
    ElideConfig elide;
};

/** What the elision pipeline did, for telemetry (pass.elide.*). */
struct ElisionStats
{
    /** Instrumented memory accesses entering the pipeline. */
    uint64_t candidates = 0;
    /** Demoted by straight-line dominance (same expr/op/tag). */
    uint64_t dominated = 0;
    /** Loads downgraded behind a dominating same-address store. */
    uint64_t rawDowngraded = 0;
    /** Elided as provably thread-disjoint (cannot race). */
    uint64_t privatized = 0;
    /** Per-function elided counts, in function order. */
    std::vector<std::pair<std::string, uint64_t>> perFunction;

    uint64_t
    elided() const
    {
        return dominated + rawDowngraded + privatized;
    }
};

/** Clear `instrumented` on accesses inside declared private ranges. */
void privatize(ir::Program &prog);

/** Insert TxBegin/TxEnd/LoopCut per the rules above. The program is
 *  refinalized; panics if the post-condition fails. */
void transactionalize(ir::Program &prog, const PassConfig &cfg = {});

/**
 * Static elision pipeline: dominance elision, read-after-write
 * downgrade, and the thread-disjointness (escape/privatization)
 * analysis, per @p cfg. Must run after transactionalize() — segment
 * boundaries include the inserted TxBegin/TxEnd/LoopCut markers, so
 * every slow-path re-execution replays the surviving representative
 * before any access elided under it. Only `instrumented` bits change.
 */
ElisionStats elide(ir::Program &prog, const ElideConfig &cfg = {});

/** Copy @p prog and run the full TxRace pipeline on the copy.
 *  @p elision, when non-null, receives the elision statistics. */
ir::Program preparedForTxRace(const ir::Program &prog,
                              const PassConfig &cfg = {},
                              ElisionStats *elision = nullptr);

/** Copy @p prog and run only privatize() (TSan baseline build). The
 *  elision pipeline is not applied: TSan/Eraser baselines measure the
 *  paper's unmodified instrumentation. */
ir::Program preparedForTSan(const ir::Program &prog);

} // namespace txrace::passes

#endif // TXRACE_PASSES_PASSES_HH
