#include "passes/passes.hh"
#include "support/log.hh"

namespace txrace::passes {

void
privatize(ir::Program &prog)
{
    if (!prog.finalized())
        fatal("privatize: program not finalized");
    if (prog.privateRanges().empty())
        return;
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f) {
        for (auto &ins : prog.function(f).body) {
            if (!ir::isMemAccess(ins.op) || !ins.instrumented)
                continue;
            for (const auto &range : prog.privateRanges()) {
                if (range.contains(ins.addr.base)) {
                    ins.instrumented = false;
                    break;
                }
            }
        }
    }
}

} // namespace txrace::passes
