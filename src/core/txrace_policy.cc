#include "core/policies.hh"

#include <algorithm>

#include "support/log.hh"

namespace txrace::core {

using sim::Bucket;
using sim::Machine;
using sim::PathMode;

namespace {

/** Sentinel: the current transaction is not a loop segment. */
constexpr uint64_t kNoCutLoop = ~0ull;

using SpanKind = telemetry::TraceBuffer::SpanKind;
using telemetry::FrAbort;
using telemetry::FrBudget;
using telemetry::FrKind;

/** Flight-record helper; note() itself no-ops when disabled. */
void
flightNote(Machine &m, Tid t, FrKind k, uint32_t site = ir::kNoInstr,
           uint64_t arg = 0, uint8_t flags = 0)
{
    m.tel().flight.note(t, k, m.currentStep(), site, arg, flags);
}

/** Open the thread's transaction span in the telemetry trace. */
void
traceTxBegin(Machine &m, Tid t)
{
    m.tel().trace.beginSpan(t, SpanKind::Tx, m.currentStep(), "tx",
                            "tx");
}

/** Close the thread's transaction span with an outcome label. */
void
traceTxEnd(Machine &m, Tid t, const char *outcome)
{
    m.tel().trace.endSpan(t, SpanKind::Tx, m.currentStep(), outcome);
}

/** Open a slow-path episode span; @p why must be a string literal. */
void
traceSlowBegin(Machine &m, Tid t, const char *why)
{
    m.tel().trace.beginSpan(t, SpanKind::Slow, m.currentStep(), why,
                            "slow");
}

/** Close the thread's slow-path span. */
void
traceSlowEnd(Machine &m, Tid t, const char *outcome)
{
    m.tel().trace.endSpan(t, SpanKind::Slow, m.currentStep(), outcome);
}

} // namespace

TxRacePolicy::TxRacePolicy(Scheme scheme, const LoopCutTable *preloaded,
                           uint64_t dyn_initial, uint32_t max_retries,
                           bool addr_hints, const GovernorConfig &gov,
                           uint64_t gov_seed, const BudgetConfig &budget,
                           SlowPathKind slowpath)
    : scheme_(scheme), loopcuts_(dyn_initial),
      maxRetries_(max_retries), addrHints_(addr_hints),
      slowpath_(slowpath),
      governor_(gov, gov_seed), budget_(budget, gov_seed)
{
    if (preloaded) {
        for (const auto &[loop, entry] : preloaded->all())
            loopcuts_.preload(loop, entry.threshold);
    }
}

void
TxRacePolicy::onRunStart(Machine &m)
{
    const auto &prog = m.program();
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f)
        for (const auto &ins : prog.function(f).body)
            if (ins.op == ir::OpCode::LoopCut)
                cutLoops_.insert(ins.arg0);
    governor_.setShortTxUseful(!cutLoops_.empty());

    // Intern every hot-path counter once; the per-access and
    // per-abort paths below then update by integer id. Registration
    // order is fixed by this code, so ids — and the exported dump —
    // are deterministic across runs.
    auto &reg = m.tel().registry;
    met_.txBegins = reg.counter("tx.begins");
    met_.txCommitted = reg.counter("tx.committed");
    met_.abortConflict = reg.counter("tx.abort.conflict");
    met_.abortCapacity = reg.counter("tx.abort.capacity");
    met_.abortUnknown = reg.counter("tx.abort.unknown");
    met_.abortRetry = reg.counter("tx.abort.retry");
    met_.smallSlowRegions = reg.counter("txrace.small_slow_regions");
    met_.elided = reg.counter("txrace.elided");
    met_.slowRegions = reg.counter("txrace.slow_regions");
    met_.hwlimitAborts = reg.counter("txrace.hwlimit_aborts");
    met_.loopCuts = reg.counter("txrace.loop_cuts");
    met_.artificialAborts = reg.counter("txrace.artificial_aborts");
    met_.txfailDelaySteps = reg.counter("txrace.txfail_delay_steps");
    met_.txfailWrites = reg.counter("txrace.txfail_writes");
    met_.retries = reg.counter("txrace.retries");
    met_.retryExhausted = reg.counter("txrace.retry_exhausted");
    met_.hintFiltered = reg.counter("txrace.hint_filtered");
    met_.govSampledRegions = reg.counter("txrace.gov.sampled_regions");
    met_.govForcedSlowRegions =
        reg.counter("txrace.gov.forced_slow_regions");
    met_.govSampleSkipped = reg.counter("txrace.gov.sample_skipped");
    met_.govSampledChecks = reg.counter("txrace.gov.sampled_checks");
    met_.govTightenedCuts = reg.counter("txrace.gov.tightened_cuts");
    met_.accessInstrumented =
        reg.counter("txrace.access.instrumented");
    met_.accessUninstrumented =
        reg.counter("txrace.access.uninstrumented");
    met_.windowReplays = reg.counter("txrace.window.replays");
    met_.windowFallbacks = reg.counter("txrace.window.fallbacks");
    met_.windowWatchChecks = reg.counter("txrace.window.watch_checks");
    met_.windowLen = reg.histogram("slowpath.window.len");
    met_.windowReplayCost =
        reg.histogram("slowpath.window.replay_cost");
    governor_.bindMetrics(reg);
    budget_.bindMetrics(reg);
    if (budget_.enabled())
        governor_.setBudget(&budget_);
    budget_.onRunStart(m);

    // Forensics hook: when the flight recorder is live, drain the
    // involved threads' event windows at the instant the detector
    // reports a *new* static race. First-detection-only keeps the
    // capture set deterministic and bounded.
    if (m.tel().flight.enabled())
        m.det().setRaceObserver(
            [this, &m](const detector::Race &race, Tid cur, Tid other) {
                captureRaceForensics(m, race, cur, other);
            });
}

void
TxRacePolicy::captureRaceForensics(Machine &m, const detector::Race &race,
                                   Tid current, Tid other)
{
    auto &tel = m.tel();
    if (tel.forensics.size() >= telemetry::Telemetry::kMaxForensics)
        return;
    telemetry::ForensicsCapture cap;
    cap.trigger = "race";
    cap.step = m.currentStep();
    cap.siteA = race.first;
    cap.siteB = race.second;
    cap.kind = detector::raceKindName(race.kind);
    cap.granule = mem::granuleOf(race.addr);
    std::vector<Tid> tids{std::min(current, other)};
    if (current != other)
        tids.push_back(std::max(current, other));
    for (Tid tid : tids) {
        telemetry::ForensicsThread ft =
            telemetry::drainThread(tel.flight, tid);
        if (governor_.enabled())
            ft.govLevel = governor_.level(tid);
        if (budget_.enabled()) {
            // The deepest sampling shift either racing site carries:
            // how close monitor-mode sampling came to hiding this race.
            for (const auto &[site, shift] : budget_.report().siteShifts)
                if (site == race.first || site == race.second)
                    ft.siteShift =
                        std::max<uint64_t>(ft.siteShift, shift);
        }
        cap.threads.push_back(std::move(ft));
    }
    cap.lastWriters =
        telemetry::lastWriterChain(cap.threads, cap.granule);
    tel.forensics.push_back(std::move(cap));
}

void
TxRacePolicy::onRunEnd(Machine &m)
{
    if (!budget_.enabled())
        return;
    // Monitor-mode observability (exported through the registry after
    // this hook returns): the ladder's final resting level per thread,
    // the distribution of per-site sampling shifts, and how much of
    // the last complete window's budget was left. Registration order
    // here is fixed, so the dump stays deterministic.
    auto &reg = m.tel().registry;
    for (Tid t = 0; t < m.numThreads(); ++t)
        reg.set(reg.gauge(strprintf("txrace.gov.level.t%u", t)),
                governor_.level(t));
    BudgetReport rep = budget_.report();
    telemetry::MetricId shifts =
        reg.histogram("budget.site_rate_shift");
    for (const auto &[site, shift] : rep.siteShifts) {
        (void)site;
        reg.observe(shifts, shift);
    }
    uint64_t allowed = static_cast<uint64_t>(
        rep.budgetPct / 100.0 * static_cast<double>(rep.windowBase));
    uint64_t headroom = allowed;
    if (!rep.windows.empty()) {
        uint64_t oh = rep.windows.back().overhead;
        headroom = oh >= allowed ? 0 : allowed - oh;
    }
    reg.set(reg.gauge("budget.headroom"), headroom);
}

void
TxRacePolicy::enterFastTx(Machine &m, Tid t, uint64_t segment_loop)
{
    auto &ctx = m.context(t);
    m.htm().begin(t);
    // Every transaction reads TxFail right after xbegin so that a
    // non-transactional write to it aborts all in-flight transactions
    // (strong isolation + requester-wins).
    m.htm().access(t, Machine::kTxFailAddr, false);
    ctx.baseSinceTxBegin = 0;
    ctx.lastLoopCutId = segment_loop == kNoCutLoop
        ? ir::kNoInstr
        : static_cast<uint32_t>(segment_loop);
    // Fresh segment, fresh windowed-replay allowance (the in-place
    // re-begin after a replay deliberately does NOT go through here,
    // so repeated conflicts on one attempt still hit the cap).
    ctx.windowReplays = 0;
    // tx.begins counts every xbegin issued — region entries, loop-cut
    // segments, and the in-place re-begins below — so it can never
    // undercount tx.committed (the profile invariant).
    m.tel().registry.add(met_.txBegins);
    traceTxBegin(m, t);
    flightNote(m, t, FrKind::TxBegin);
}

void
TxRacePolicy::onTxBegin(Machine &m, Tid t, const ir::Instruction &ins)
{
    auto &ctx = m.context(t);
    if (ctx.path == PathMode::Slow)
        panic("TxRacePolicy: TxBegin while on the slow path");

    if (ins.arg1 == 1) {
        // Small region (< K memory ops): the software check is
        // cheaper than transaction management (§4.3).
        ctx.path = PathMode::Slow;
        ctx.slowReason = Bucket::Txn;
        m.tel().registry.add(met_.smallSlowRegions);
        traceSlowBegin(m, t, "slow:small-region");
        flightNote(m, t, FrKind::SlowEnter, ins.id,
                   static_cast<uint64_t>(ctx.slowReason));
        return;
    }
    if (m.liveThreads() <= 1) {
        // Single-threaded mode: no races are possible; skip HTM.
        m.tel().registry.add(met_.elided);
        return;
    }
    if (budget_.enabled() &&
        !budget_.admitRegion(m, t, m.config().cost.txBeginCost +
                                       m.config().cost.txEndCost)) {
        // Out of budget for this window: the region runs entirely
        // uninstrumented (the same shape as single-threaded elision —
        // no transaction, no slow path, no checks). Recall is traded;
        // precision cannot be (we only ever skip work).
        flightNote(m, t, FrKind::Budget, ins.id,
                   static_cast<uint64_t>(FrBudget::RegionGated));
        if (budget_.unsatisfiable()) {
            flightNote(m, t, FrKind::Budget, ins.id,
                       static_cast<uint64_t>(FrBudget::Unsatisfiable));
            m.requestStop(sim::RunError::Kind::Budget);
        }
        if (m.events().enabled())
            m.events().record(m.currentStep(), t, "budget-gate",
                              "region admitted uninstrumented");
        return;
    }
    if (governor_.enabled()) {
        uint32_t level = governor_.levelForRegion(m, t);
        if (level >= FallbackGovernor::kSlowStart) {
            // Degraded: the region starts directly on the slow path
            // (full detection, none of the xbegin/abort/rollback
            // churn the storm would turn into wasted work). Level 3
            // additionally samples the checks to bound their cost.
            ctx.path = PathMode::Slow;
            ctx.slowReason = governor_.demoteReasonFor(t);
            ctx.sampleMode = level >= FallbackGovernor::kSampling;
            ctx.govForced = true;
            m.tel().registry.add(ctx.sampleMode
                                     ? met_.govSampledRegions
                                     : met_.govForcedSlowRegions);
            traceSlowBegin(m, t, "slow:governor");
            flightNote(m, t, FrKind::Gov, ins.id, level);
            flightNote(m, t, FrKind::SlowEnter, ins.id,
                       static_cast<uint64_t>(ctx.slowReason));
            if (m.events().enabled())
                m.events().record(m.currentStep(), t, "slow-enter",
                                  ctx.sampleMode
                                      ? "governor: sampling mode"
                                      : "governor: region demoted");
            return;
        }
    }
    const auto &cost = m.config().cost;
    if (!m.htm().canBegin()) {
        // More live transactions than hardware threads: the xbegin
        // aborts immediately with an unspecified status (§6, reason
        // four). Fall back to the slow path for this region.
        m.addCost(t, cost.txBeginCost, Bucket::Txn);
        m.tel().registry.add(met_.abortUnknown);
        m.tel().registry.add(met_.hwlimitAborts);
        ctx.path = PathMode::Slow;
        ctx.slowReason = Bucket::Unknown;
        traceSlowBegin(m, t, "slow:hwlimit");
        flightNote(m, t, FrKind::TxAbort, ins.id,
                   static_cast<uint64_t>(FrAbort::HwLimit));
        flightNote(m, t, FrKind::SlowEnter, ins.id,
                   static_cast<uint64_t>(ctx.slowReason));
        return;
    }
    m.addCost(t, cost.txBeginCost, Bucket::Txn);
    enterFastTx(m, t, kNoCutLoop);
    ctx.takeSnapshot(ctx.pc + 1);
    ctx.retryCount = 0;
    if (m.events().enabled())
        m.events().record(m.currentStep(), t, "xbegin");
}

void
TxRacePolicy::onTxEnd(Machine &m, Tid t, const ir::Instruction &)
{
    auto &ctx = m.context(t);
    if (m.htm().inTx(t)) {
        m.commitTx(t);
        m.addCost(t, m.config().cost.txEndCost, Bucket::Txn);
        m.tel().registry.add(met_.txCommitted);
        traceTxEnd(m, t, "commit");
        flightNote(m, t, FrKind::TxCommit, ir::kNoInstr,
                   ctx.baseSinceTxBegin);
        governor_.onCommit(t);
        if (m.events().enabled())
            m.events().record(m.currentStep(), t, "commit");
        if (scheme_ != Scheme::NoOpt &&
            ctx.lastLoopCutId != ir::kNoInstr)
            loopcuts_.onCommit(ctx.lastLoopCutId);
        ctx.lastLoopCutId = ir::kNoInstr;
        ctx.snap.valid = false;
        ctx.baseSinceTxBegin = 0;
    } else if (ctx.path == PathMode::Slow) {
        // The slow-path episode covered the whole region; resume the
        // fast path for the next region.
        ctx.path = PathMode::Fast;
        ctx.sampleMode = false;
        ctx.govForced = false;
        ctx.slowHintLine = htm::HtmEngine::kNoLine;
        m.tel().registry.add(met_.slowRegions);
        traceSlowEnd(m, t, "region-end");
        flightNote(m, t, FrKind::SlowExit);
        if (m.events().enabled())
            m.events().record(m.currentStep(), t, "slow-exit",
                              "region finished; back to fast path");
    }
    // else: region was elided (single-threaded mode).
}

void
TxRacePolicy::onLoopCut(Machine &m, Tid t, const ir::Instruction &ins)
{
    if (scheme_ == Scheme::NoOpt || !m.htm().inTx(t))
        return;
    auto &ctx = m.context(t);
    if (ctx.loops.empty())
        panic("TxRacePolicy: LoopCut outside any loop");
    sim::LoopFrame &frame = ctx.loops.back();
    ++frame.itersInTx;

    uint64_t thr = loopcuts_.threshold(ins.arg0);
    if (thr > 1 && governor_.enabled()) {
        // ShortTx degradation: tighter cuts mean less work lost per
        // abort while a storm lasts.
        uint64_t div = governor_.loopcutDivisorFor(t);
        if (div > 1) {
            thr = std::max<uint64_t>(1, thr / div);
            m.tel().registry.add(met_.govTightenedCuts);
        }
    }
    if (thr == 0 || frame.itersInTx < thr)
        return;

    // Cut: end the transaction here and immediately start the next
    // segment, so the write set never reaches the capacity limit.
    const auto &cost = m.config().cost;
    m.commitTx(t);
    m.tel().registry.add(met_.txCommitted);
    m.tel().registry.add(met_.loopCuts);
    traceTxEnd(m, t, "loop-cut");
    flightNote(m, t, FrKind::TxCommit, ins.id, ctx.baseSinceTxBegin);
    m.tel().trace.instant(t, m.currentStep(), "loop-cut", "tx");
    debugLog("cut t%u loop=%llu at iters=%llu thr=%llu", t,
             (unsigned long long)ins.arg0,
             (unsigned long long)frame.itersInTx,
             (unsigned long long)thr);
    m.addCost(t, cost.txEndCost + cost.txBeginCost, Bucket::Txn);
    if (m.events().enabled())
        m.events().record(m.currentStep(), t, "loop-cut",
                          "segment committed mid-loop");
    // Growth is credited once per region (at TxEnd), not per segment:
    // per-segment growth overshoots the capacity boundary every few
    // iterations and thrashes.
    frame.itersInTx = 0;
    if (!m.htm().canBegin()) {
        m.tel().registry.add(met_.abortUnknown);
        m.tel().registry.add(met_.hwlimitAborts);
        ctx.path = PathMode::Slow;
        ctx.slowReason = Bucket::Unknown;
        traceSlowBegin(m, t, "slow:hwlimit");
        flightNote(m, t, FrKind::TxAbort, ins.id,
                   static_cast<uint64_t>(FrAbort::HwLimit));
        flightNote(m, t, FrKind::SlowEnter, ins.id,
                   static_cast<uint64_t>(ctx.slowReason));
        return;
    }
    enterFastTx(m, t, ins.arg0);
    ctx.takeSnapshot(ctx.pc + 1);
}

uint64_t
TxRacePolicy::innermostCutLoop(Machine &m, Tid t,
                               uint64_t &iters_in_tx) const
{
    const auto &ctx = m.context(t);
    const auto &body = m.program().function(ctx.func).body;
    for (auto it = ctx.loops.rbegin(); it != ctx.loops.rend(); ++it) {
        uint64_t loop_id = body[it->beginPc].id;
        if (cutLoops_.count(loop_id)) {
            iters_in_tx = it->itersInTx;
            return loop_id;
        }
    }
    iters_in_tx = 0;
    return kNoCutLoop;
}

void
TxRacePolicy::handleConflictVictim(Machine &m, Tid v)
{
    m.tel().registry.add(met_.abortConflict);
    traceTxEnd(m, v, "conflict");
    flightNote(m, v, FrKind::TxAbort, m.currentSite(v),
               static_cast<uint64_t>(FrAbort::Conflict));
    m.tel().trace.instant(v, m.currentStep(), "conflict-abort",
                          "abort");
    if (m.events().enabled())
        m.events().record(m.currentStep(), v, "conflict-abort",
                          "will publish TxFail");
    uint64_t hint = addrHints_ ? m.htm().lastConflictLine(v)
                               : htm::HtmEngine::kNoLine;
    m.rollback(v, Bucket::Conflict);
    // Feed the governor's abort window and livelock detector; the
    // TxFail protocol always runs regardless (the other side of the
    // race must be re-checked).
    governor_.onAbort(m, v, Bucket::Conflict, /*primary=*/true);
    auto &vctx = m.context(v);
    vctx.slowHintLine = hint;
    vctx.snap.valid = false;
    vctx.lastLoopCutId = ir::kNoInstr;
    // The victim publishes TxFail at its next step (§3 step 3); the
    // delay is what lets concurrent winners commit first and escape
    // re-execution — false-negative source two (§6). Fault injection
    // can stretch that delay further (TxFailDelay episodes).
    vctx.mustWriteTxFail = true;
    vctx.txFailDelay = m.faults().txFailDelaySteps();
}

void
TxRacePolicy::handleConflictVictimWindowed(Machine &m, Tid v,
                                           Tid requester,
                                           ir::InstrId req_site,
                                           uint64_t conflict_line)
{
    auto &vctx = m.context(v);
    htm::VersionLog *vl = m.htm().versionLog();
    // The conflicting line stays software-checked from here on (see
    // watchedLines_): that is the scoped stand-in for region mode's
    // broadcast demotion, catching third threads that touch the line
    // after the conflicting transaction commits.
    watchedLines_.insert(conflict_line);
    m.tel().registry.add(met_.abortConflict);
    traceTxEnd(m, v, "conflict");
    flightNote(m, v, FrKind::TxAbort, m.currentSite(v),
               static_cast<uint64_t>(FrAbort::Conflict));
    m.tel().trace.instant(v, m.currentStep(), "conflict-abort",
                          "abort");

    if (!vl || vctx.windowReplays >= kMaxWindowReplays) {
        // No version log, or this attempt keeps getting hit: replaying
        // the same window over and over is livelock, not repair.
        // Surrender only THIS region to a solo slow episode — still no
        // TxFail broadcast, the concurrent fast+slow shape of Fig. 5.
        m.tel().registry.add(met_.windowFallbacks);
        if (m.events().enabled())
            m.events().record(m.currentStep(), v, "window-fallback",
                              "replay cap hit; region goes slow");
        uint64_t hint = addrHints_ ? m.htm().lastConflictLine(v)
                                   : htm::HtmEngine::kNoLine;
        if (vl)
            vl->clear(v);
        m.rollback(v, Bucket::Conflict);
        governor_.onAbort(m, v, Bucket::Conflict, /*primary=*/true);
        vctx.slowHintLine = hint;
        vctx.snap.valid = false;
        vctx.lastLoopCutId = ir::kNoInstr;
        vctx.path = PathMode::Slow;
        vctx.slowReason = Bucket::Conflict;
        traceSlowBegin(m, v, "slow:window-fallback");
        flightNote(m, v, FrKind::SlowEnter, m.currentSite(v),
                   static_cast<uint64_t>(vctx.slowReason));
        return;
    }

    // Reconstruct the inter-thread order of the aborting window: the
    // victim's pending (not-yet-replayed) log merged with the
    // requester's — which already contains the conflicting access
    // itself, logged before victim handling. Sorting by (step, tid)
    // is the offline infer-style merge; it is exact here because the
    // scheduler serializes accesses, and the per-entry version stamps
    // let offline consumers cross-check it.
    std::vector<htm::VersionLogEntry> window = vl->pendingWindow(v);
    const bool reqLogged = m.htm().inTx(requester);
    if (reqLogged) {
        auto rw = vl->pendingWindow(requester);
        window.insert(window.end(), rw.begin(), rw.end());
    }
    std::sort(window.begin(), window.end(),
              [](const htm::VersionLogEntry &a,
                 const htm::VersionLogEntry &b) {
                  return a.step != b.step ? a.step < b.step
                                          : a.tid < b.tid;
              });

    // Replay only that window under the happens-before detector.
    // Replayed checks feed the same persistent shadow state as slow-
    // path checks, so detection accumulates across replays exactly as
    // across regions. The victim pays the replay (its abort handler
    // does the work), under the Conflict bucket.
    uint64_t replay_cost = m.replayWindow(v, window);
    m.tel().registry.add(met_.windowReplays);
    m.tel().registry.observe(met_.windowLen, window.size());
    m.tel().registry.observe(met_.windowReplayCost, replay_cost);
    if (req_site != ir::kNoInstr)
        ++m.tel().siteStats[req_site].windowReplays;
    flightNote(m, v, FrKind::WindowReplay, req_site, window.size());
    if (m.events().enabled())
        m.events().record(m.currentStep(), v, "window-replay",
                          strprintf("%zu entries replayed",
                                    window.size()));

    m.rollback(v, Bucket::Conflict);
    governor_.onAbort(m, v, Bucket::Conflict, /*primary=*/true);

    // The requester's entries (including the conflicting access) are
    // now in the shadow; don't replay them again on a later abort.
    // The victim's log restarts with its re-begun transaction.
    if (reqLogged)
        vl->markReplayed(requester);
    vl->clear(v);

    // Re-begin in place: the snapshot still describes the resume
    // point, the region stays fast, and lastLoopCutId survives (the
    // same segment re-executes). The victim's directory slot was
    // freed by its abort, so begin() cannot hit the hardware limit.
    ++vctx.windowReplays;
    m.addCost(v, m.config().cost.txBeginCost, Bucket::Txn);
    m.htm().begin(v);
    m.htm().access(v, Machine::kTxFailAddr, false);
    vctx.baseSinceTxBegin = 0;
    m.tel().registry.add(met_.txBegins);
    traceTxBegin(m, v);
    flightNote(m, v, FrKind::TxBegin);
}

bool
TxRacePolicy::beforeStep(Machine &m, Tid t)
{
    auto &ctx = m.context(t);
    if (!ctx.mustWriteTxFail)
        return false;
    if (ctx.txFailDelay > 0) {
        // Injected publication delay: the flag write has not become
        // visible yet; the victim stalls while concurrent winners get
        // more room to commit and escape re-execution.
        --ctx.txFailDelay;
        m.tel().registry.add(met_.txfailDelaySteps);
        return true;
    }
    ctx.mustWriteTxFail = false;
    m.tel().registry.add(met_.txfailWrites);
    m.tel().trace.instant(t, m.currentStep(), "txfail-write", "txfail");
    if (m.events().enabled())
        m.events().record(m.currentStep(), t, "txfail-write",
                          "aborting all in-flight transactions");

    // Non-transactional write to the TxFail flag: strong isolation
    // aborts every in-flight transaction (they all read the flag at
    // begin). They resume on the slow path without re-publishing
    // (their abort handler observes the flag already set).
    auto res = m.htm().access(t, Machine::kTxFailAddr, true);
    for (Tid v : res.victims) {
        m.tel().registry.add(met_.abortConflict);
        m.tel().registry.add(met_.artificialAborts);
        traceTxEnd(m, v, "txfail");
        flightNote(m, v, FrKind::TxAbort, m.currentSite(v),
                   static_cast<uint64_t>(FrAbort::TxFail));
        m.rollback(v, Bucket::Conflict);
        // Collateral casualties of the broadcast: they feed the abort
        // window but not the livelock detector.
        governor_.onAbort(m, v, Bucket::Conflict, /*primary=*/false);
        auto &vctx = m.context(v);
        vctx.snap.valid = false;
        vctx.lastLoopCutId = ir::kNoInstr;
        vctx.path = PathMode::Slow;
        vctx.slowReason = Bucket::Conflict;
        traceSlowBegin(m, v, "slow:txfail");
        // The future-HTM protocol shares the conflicting address with
        // everyone forced into the slow path.
        vctx.slowHintLine = ctx.slowHintLine;
        flightNote(m, v, FrKind::SlowEnter, m.currentSite(v),
                   static_cast<uint64_t>(vctx.slowReason));
        if (m.events().enabled())
            m.events().record(m.currentStep(), v, "slow-enter",
                              "artificially aborted by TxFail");
    }
    m.addCost(t, m.config().cost.storeCost, Bucket::Conflict);
    ctx.path = PathMode::Slow;
    ctx.slowReason = Bucket::Conflict;
    traceSlowBegin(m, t, "slow:conflict");
    flightNote(m, t, FrKind::SlowEnter, m.currentSite(t),
               static_cast<uint64_t>(ctx.slowReason));
    return true;
}

void
TxRacePolicy::handleSelfCapacity(Machine &m, Tid t, ir::InstrId site)
{
    m.tel().registry.add(met_.abortCapacity);
    if (site != ir::kNoInstr)
        ++m.tel().siteStats[site].capacityAborts;
    traceTxEnd(m, t, "capacity");
    flightNote(m, t, FrKind::TxAbort, site,
               static_cast<uint64_t>(FrAbort::Capacity));
    m.tel().trace.instant(t, m.currentStep(), "capacity-abort",
                          "abort");
    // Attribute the abort to the innermost loop-cut loop *before*
    // rolling back the loop stack (the stand-in for LBR attribution).
    uint64_t iters_in_tx = 0;
    uint64_t loop = innermostCutLoop(m, t, iters_in_tx);
    if (scheme_ != Scheme::NoOpt && loop != kNoCutLoop) {
        // Governed = the transaction died before reaching this loop's
        // active cut point; only then is the threshold too large.
        uint64_t thr = loopcuts_.threshold(loop);
        bool governed = thr > 0 && iters_in_tx < thr;
        loopcuts_.onCapacityAbort(loop, governed);
        debugLog("capacity abort t%u loop=%llu governed=%d thr->%llu",
                 t, (unsigned long long)loop, governed ? 1 : 0,
                 (unsigned long long)loopcuts_.threshold(loop));
    }
    m.rollback(t, Bucket::Capacity);
    // Capacity aborts never retry in place (the region would hit the
    // same wall), but they count toward the governor's abort rate —
    // a capacity cliff should demote just like an interrupt storm.
    governor_.onAbort(m, t, Bucket::Capacity);
    auto &ctx = m.context(t);
    ctx.snap.valid = false;
    ctx.lastLoopCutId = ir::kNoInstr;
    ctx.slowHintLine = htm::HtmEngine::kNoLine;
    // Only this thread falls back; concurrent transactions keep
    // running (no TxFail write) — Fig. 5's concurrent fast+slow.
    ctx.path = PathMode::Slow;
    ctx.slowReason = Bucket::Capacity;
    traceSlowBegin(m, t, "slow:capacity");
    flightNote(m, t, FrKind::SlowEnter, site,
               static_cast<uint64_t>(ctx.slowReason));
    if (m.events().enabled())
        m.events().record(m.currentStep(), t, "capacity-abort",
                          "falling back to the slow path alone");
}

void
TxRacePolicy::onInterruptAbort(Machine &m, Tid t)
{
    m.tel().registry.add(met_.abortUnknown);
    if (ir::InstrId site = m.currentSite(t); site != ir::kNoInstr)
        ++m.tel().siteStats[site].otherAborts;
    m.rollback(t, Bucket::Unknown);
    auto &ctx = m.context(t);
    if (governor_.enabled() && m.htm().canBegin() &&
        governor_.onAbort(m, t, Bucket::Unknown) ==
            GovernorAction::RetryBackoff) {
        // Ride the storm out in place: re-enter the transaction at
        // the restored resume point after the backoff stall the
        // governor charged, instead of surrendering the whole region
        // to an expensive slow-path episode.
        m.addCost(t, m.config().cost.txBeginCost, Bucket::Txn);
        m.htm().begin(t);
        m.htm().access(t, Machine::kTxFailAddr, false);
        ctx.baseSinceTxBegin = 0;
        m.tel().registry.add(met_.txBegins);
        traceTxBegin(m, t);
        flightNote(m, t, FrKind::TxBegin);
        if (m.events().enabled())
            m.events().record(m.currentStep(), t, "gov-backoff",
                              "retrying after unknown abort");
        return;
    }
    ctx.snap.valid = false;
    ctx.lastLoopCutId = ir::kNoInstr;
    ctx.slowHintLine = htm::HtmEngine::kNoLine;
    ctx.path = PathMode::Slow;
    ctx.slowReason = Bucket::Unknown;
    traceSlowBegin(m, t, "slow:interrupt");
    flightNote(m, t, FrKind::SlowEnter, m.currentSite(t),
               static_cast<uint64_t>(ctx.slowReason));
}

void
TxRacePolicy::onRetryAbort(Machine &m, Tid t)
{
    // Retry bit without conflict (§4.2): retry the transaction in
    // place, a bounded number of times per region; then treat it like
    // an unknown abort and fall back to the slow path.
    m.tel().registry.add(met_.abortRetry);
    if (ir::InstrId site = m.currentSite(t); site != ir::kNoInstr)
        ++m.tel().siteStats[site].otherAborts;
    auto &ctx = m.context(t);
    m.rollback(t, Bucket::Txn);
    // Retry-bit glitches feed the abort-rate window: a sticky glitch
    // (fault injection) exhausts the bounded retries below over and
    // over, and the governor is what keeps that from thrashing.
    governor_.onAbort(m, t, Bucket::Txn);
    if (ctx.retryCount < maxRetries_ && m.htm().canBegin()) {
        ++ctx.retryCount;
        m.tel().registry.add(met_.retries);
        m.addCost(t, m.config().cost.txBeginCost, Bucket::Txn);
        // Re-enter at the restored resume point; the existing
        // snapshot still describes it.
        m.htm().begin(t);
        m.htm().access(t, Machine::kTxFailAddr, false);
        ctx.baseSinceTxBegin = 0;
        m.tel().registry.add(met_.txBegins);
        traceTxBegin(m, t);
        flightNote(m, t, FrKind::TxBegin);
        return;
    }
    ctx.snap.valid = false;
    ctx.lastLoopCutId = ir::kNoInstr;
    ctx.path = PathMode::Slow;
    ctx.slowReason = Bucket::Unknown;
    m.tel().registry.add(met_.retryExhausted);
    traceSlowBegin(m, t, "slow:retry-exhausted");
    flightNote(m, t, FrKind::SlowEnter, m.currentSite(t),
               static_cast<uint64_t>(ctx.slowReason));
}

bool
TxRacePolicy::onMemAccess(Machine &m, Tid t, const ir::Instruction &ins,
                          ir::Addr addr, bool is_write)
{
    const auto &cost = m.config().cost;
    m.tel().registry.add(ins.instrumented ? met_.accessInstrumented
                                          : met_.accessUninstrumented);
    if (ins.instrumented && cost.fastHookCost > 0)
        m.addCost(t, cost.fastHookCost, Bucket::Txn);
    // Flight window: instrumented accesses with site + granule. The
    // access is logged before the HTM/detector verdict, so a window
    // also shows accesses whose transaction later rolled back — what
    // a real post-mortem ring contains.
    if (ins.instrumented)
        flightNote(m, t, FrKind::Access, ins.id, mem::granuleOf(addr),
                   is_write ? 1 : 0);

    // Route through the HTM: conflict detection for transactional
    // accesses, strong isolation for non-transactional ones.
    auto res = m.htm().access(t, addr, is_write);
    // Windowed slow path: record the access into the requester's
    // version log BEFORE victim handling, so the conflicting access
    // itself is part of the merged replay window. The log's cache
    // footprint counts against capacity; an overflow aborts this
    // transaction exactly like a data-line overflow.
    bool log_overflow = false;
    if (slowpath_ == SlowPathKind::Window && !res.selfCapacity &&
        ins.instrumented && m.htm().versionLog() && m.htm().inTx(t)) {
        log_overflow = !m.htm().logAccess(t, addr, ins.id,
                                          m.currentStep(), is_write);
    }
    for (Tid v : res.victims) {
        // Attribute the conflict to the requester's cache line,
        // granule, and instruction: the top-N heatmap separates true
        // sharing from false-sharing candidates (>1 granule per line).
        m.tel().conflicts.record(mem::lineOf(addr),
                                 mem::granuleOf(addr), ins.id);
        ++m.tel().siteStats[ins.id].conflictAborts;
        // The same attribution feeds the budget controller: a site
        // whose conflicts keep rolling transactions back is a spender
        // just like a hot slow-path site, and gets cut first.
        budget_.chargeSite(ins.id, cost.rollbackCost);
        if (slowpath_ == SlowPathKind::Window)
            handleConflictVictimWindowed(m, v, t, ins.id,
                                         mem::lineOf(addr));
        else
            handleConflictVictim(m, v);
    }
    if (res.selfCapacity || log_overflow) {
        handleSelfCapacity(m, t, ins.id);
        return false;  // the access did not complete
    }

    auto &ctx = m.context(t);
    if (ctx.path == PathMode::Slow && ins.instrumented) {
        if (addrHints_ && ctx.slowHintLine != htm::HtmEngine::kNoLine &&
            mem::lineOf(addr) != ctx.slowHintLine) {
            // Hinted episode: accesses off the conflicting line only
            // pay a cheap filter.
            m.addCost(t, 1, ctx.slowReason);
            m.tel().registry.add(met_.hintFiltered);
            return true;
        }
        if (ctx.sampleMode && !governor_.sampleThisAccess(t)) {
            // Level-3 degradation: unsampled accesses only pay the
            // sampling branch.
            m.addCost(t, 1, ctx.slowReason);
            m.tel().registry.add(met_.govSampleSkipped);
            return true;
        }
        // Slow-path stall episodes inflate the software check cost;
        // computed before admission so the gate sees the true price.
        uint64_t check = cost.effectiveCheckCost();
        double stall = m.faults().slowPathCostMult();
        if (stall > 1.0)
            check = static_cast<uint64_t>(
                static_cast<double>(check) * stall);
        if (budget_.enabled() &&
            !budget_.admitCheck(m, t, ins.id, check)) {
            // Monitor mode: the window is out of admission budget,
            // the check's (possibly storm-inflated) cost would cross
            // the hard line, or this site's deterministic sampling
            // draw missed. Either way the access pays only the gate
            // branch.
            flightNote(m, t, FrKind::Budget, ins.id,
                       static_cast<uint64_t>(FrBudget::CheckGated));
            if (budget_.unsatisfiable()) {
                flightNote(m, t, FrKind::Budget, ins.id,
                           static_cast<uint64_t>(
                               FrBudget::Unsatisfiable));
                m.requestStop(sim::RunError::Kind::Budget);
            }
            m.addCost(t, 1, ctx.slowReason);
            return true;
        }
        m.addCost(t, check, ctx.slowReason);
        budget_.chargeSite(ins.id, check);
        {
            auto &ss = m.tel().siteStats[ins.id];
            ++ss.slowChecks;
            ss.slowCost += check;
        }
        if (ctx.sampleMode)
            m.tel().registry.add(met_.govSampledChecks);
        else
            governor_.onSlowCheckCost(m, t, check);
        if (is_write)
            m.det().write(t, addr, ins.id);
        else
            m.det().read(t, addr, ins.id);
    } else if (slowpath_ == SlowPathKind::Window && ins.instrumented &&
               !watchedLines_.empty() &&
               watchedLines_.count(mem::lineOf(addr)) != 0) {
        // Watched-line check: this line produced a conflict abort
        // earlier, so fast-path accesses to it keep feeding the
        // detector. Replays cover the aborting window; the watch
        // covers everything after it — together they match region
        // mode's coverage at O(accesses-to-hot-lines) instead of
        // O(region) cost. Off-watch accesses (the common case) pay
        // nothing here.
        uint64_t check = cost.effectiveCheckCost();
        double stall = m.faults().slowPathCostMult();
        if (stall > 1.0)
            check = static_cast<uint64_t>(
                static_cast<double>(check) * stall);
        if (budget_.enabled() &&
            !budget_.admitCheck(m, t, ins.id, check)) {
            flightNote(m, t, FrKind::Budget, ins.id,
                       static_cast<uint64_t>(FrBudget::CheckGated));
            m.addCost(t, 1, Bucket::Conflict);
            return true;
        }
        m.addCost(t, check, Bucket::Conflict);
        budget_.chargeSite(ins.id, check);
        m.tel().registry.add(met_.windowWatchChecks);
        if (is_write)
            m.det().write(t, addr, ins.id);
        else
            m.det().read(t, addr, ins.id);
    }
    return true;
}

void
TxRacePolicy::trackSync(Machine &m, Tid t, const ir::Instruction &ins)
{
    auto &det = m.det();
    switch (ins.op) {
      case ir::OpCode::LockAcquire:
        det.lockAcquire(t, ins.arg0);
        break;
      case ir::OpCode::LockRelease:
        det.lockRelease(t, ins.arg0);
        break;
      case ir::OpCode::CondSignal:
        det.condSignal(t, ins.arg0);
        break;
      case ir::OpCode::CondWait:
        det.condWait(t, ins.arg0);
        break;
      default:
        panic("TxRacePolicy: unexpected sync op %s", opName(ins.op));
    }
    m.addCost(t, m.config().cost.syncTrackCost, Bucket::Txn);
}

void
TxRacePolicy::onSyncPerformed(Machine &m, Tid t,
                              const ir::Instruction &ins)
{
    // Happens-before order of synchronization is tracked on both
    // paths, so slow-path episodes never report stale false warnings
    // (§5, Figure 6).
    flightNote(m, t, FrKind::Sync, ins.id);
    trackSync(m, t, ins);
}

void
TxRacePolicy::onThreadCreated(Machine &m, Tid parent, Tid child)
{
    m.det().threadCreated(parent, child);
    m.addCost(parent, m.config().cost.syncTrackCost, Bucket::Txn);
}

void
TxRacePolicy::onThreadJoined(Machine &m, Tid joiner, Tid joined)
{
    m.det().threadJoined(joiner, joined);
    m.addCost(joiner, m.config().cost.syncTrackCost, Bucket::Txn);
}

void
TxRacePolicy::onBarrierRelease(Machine &m,
                               const std::vector<Tid> &parts)
{
    m.det().barrierRelease(parts);
    for (Tid p : parts)
        m.addCost(p, m.config().cost.syncTrackCost, Bucket::Txn);
}

void
TxRacePolicy::onThreadExit(Machine &m, Tid t)
{
    auto &ctx = m.context(t);
    if (m.htm().inTx(t)) {
        // The pass inserts TxEnd at every exit point, so this only
        // fires if a workload bypassed the pipeline.
        warn("TxRacePolicy: thread %u exiting inside a transaction", t);
        m.commitTx(t);
        m.tel().registry.add(met_.txCommitted);
        traceTxEnd(m, t, "thread-exit");
    }
    if (ctx.path == PathMode::Slow) {
        ctx.path = PathMode::Fast;
        traceSlowEnd(m, t, "thread-exit");
    }
    ctx.sampleMode = false;
    ctx.govForced = false;
}

} // namespace txrace::core
