#include "core/governor.hh"

#include <algorithm>

#include "core/budget.hh"
#include "support/log.hh"

namespace txrace::core {

using sim::Bucket;
using sim::Machine;

FallbackGovernor::FallbackGovernor(const GovernorConfig &cfg,
                                   uint64_t seed)
    : cfg_(cfg), seed_(seed)
{
}

void
FallbackGovernor::bindMetrics(telemetry::MetricRegistry &reg)
{
    reg_ = &reg;
    met_.failedProbes = reg.counter("txrace.gov.failed_probes");
    met_.demotions = reg.counter("txrace.gov.demotions");
    met_.probeSuccesses = reg.counter("txrace.gov.probe_successes");
    met_.reprobations = reg.counter("txrace.gov.reprobations");
    met_.livelockEscalations =
        reg.counter("txrace.gov.livelock_escalations");
    met_.backoffRetries = reg.counter("txrace.gov.backoff_retries");
    met_.stallPromotions = reg.counter("txrace.gov.stall_promotions");
    met_.budgetVetoes = reg.counter("txrace.gov.budget_vetoes");
}

void
FallbackGovernor::count(Machine &m, telemetry::MetricId id,
                        const char *name)
{
    if (reg_)
        reg_->add(id);
    else
        m.stats().add(name);
}

FallbackGovernor::ThreadGov &
FallbackGovernor::state(Tid t)
{
    if (t >= threads_.size())
        threads_.resize(t + 1);
    ThreadGov &g = threads_[t];
    if (!g.initialized) {
        uint64_t s = seed_ ^ 0x60bea40aULL;
        g.sampleRng = Rng(splitmix64(s) ^
                          (0x9e3779b97f4a7c15ULL * (t + 1)));
        g.initialized = true;
    }
    return g;
}

uint64_t
FallbackGovernor::now(Machine &m, Tid t) const
{
    // Windows are measured in the thread's own virtual time: a thread
    // parked on a lock does not "cool down" its abort window merely
    // because wall-clock passed.
    return m.context(t).myCost;
}

uint32_t
FallbackGovernor::level(Tid t) const
{
    return t < threads_.size() ? threads_[t].level : kFast;
}

void
FallbackGovernor::demote(Machine &m, Tid t, uint32_t to,
                         const char *why, Bucket reason)
{
    ThreadGov &g = state(t);
    if (g.probing) {
        // The storm outlived our optimism: probe failed, back off.
        g.probing = false;
        g.probeBackoffExp = std::min(g.probeBackoffExp + 1,
                                     cfg_.maxProbeBackoffExp);
        count(m, met_.failedProbes, "txrace.gov.failed_probes");
    }
    to = std::min(to, static_cast<uint32_t>(kSampling));
    if (to <= g.level)
        return;
    g.level = to;
    g.demoteReason = reason;
    g.lastTransition = now(m, t);
    g.windowStart = g.lastTransition;
    g.windowAborts = 0;
    g.windowSlowCost = 0;
    g.windowSlowChecks = 0;
    count(m, met_.demotions, "txrace.gov.demotions");
    if (m.events().enabled())
        m.events().record(m.currentStep(), t, "gov-demote",
                          strprintf("to level %u (%s)", to, why));
}

uint32_t
FallbackGovernor::levelForRegion(Machine &m, Tid t)
{
    if (!cfg_.enabled)
        return kFast;
    ThreadGov &g = state(t);
    uint64_t n = now(m, t);

    // A probe that survived two full windows without demotion is a
    // success: the storm has passed, forget the backoff.
    if (g.probing && n - g.lastTransition >= 2 * cfg_.windowCost) {
        g.probing = false;
        g.probeBackoffExp = 0;
        count(m, met_.probeSuccesses, "txrace.gov.probe_successes");
    }

    // Re-probation: after a cooldown (exponentially longer for every
    // recently failed probe) optimistically climb one rung.
    if (g.level > kFast) {
        uint64_t delay = cfg_.reprobateAfterCost
                         << std::min(g.probeBackoffExp,
                                     cfg_.maxProbeBackoffExp);
        if (n - g.lastTransition >= delay &&
            budget_ && budget_->underPressure()) {
            // Monitor mode composes on top of the ladder: a promotion
            // means more instrumentation, and the budget controller
            // says the current window cannot afford what it already
            // runs. The budget wins; restart the cooldown.
            g.lastTransition = n;
            count(m, met_.budgetVetoes, "txrace.gov.budget_vetoes");
        } else if (n - g.lastTransition >= delay) {
            --g.level;
            g.lastTransition = n;
            g.windowStart = n;
            g.windowAborts = 0;
            g.windowSlowCost = 0;
            g.windowSlowChecks = 0;
            g.probing = true;
            count(m, met_.reprobations, "txrace.gov.reprobations");
            if (m.events().enabled())
                m.events().record(m.currentStep(), t, "gov-probe",
                                  strprintf("probing level %u",
                                            g.level));
        }
    }
    return g.level;
}

GovernorAction
FallbackGovernor::onAbort(Machine &m, Tid t, Bucket reason,
                          bool primary)
{
    if (!cfg_.enabled)
        return GovernorAction::FallBack;
    ThreadGov &g = state(t);
    uint64_t n = now(m, t);

    // Roll the abort-rate window.
    if (n - g.windowStart > cfg_.windowCost) {
        g.windowStart = n;
        g.windowAborts = 0;
        g.windowSlowCost = 0;
        g.windowSlowChecks = 0;
    }
    ++g.windowAborts;

    // Livelock: the same thread's regions conflict-abort over and
    // over — escalate straight to slow-start instead of ping-ponging
    // TxFail broadcasts through the whole machine.
    if (reason == Bucket::Conflict && primary) {
        if (++g.consecConflicts >= cfg_.livelockK) {
            g.consecConflicts = 0;
            count(m, met_.livelockEscalations,
                  "txrace.gov.livelock_escalations");
            if (m.events().enabled())
                m.events().record(m.currentStep(), t, "gov-livelock",
                                  "K consecutive conflict aborts");
            demote(m, t, kSlowStart, "livelock", reason);
            return GovernorAction::FallBack;
        }
    }

    if (g.windowAborts >= cfg_.demoteAbortsPerWindow) {
        // Which rung helps depends on what is killing us. Capacity
        // pressure shrinks with shorter transactions, so take one
        // step down the ladder. Interrupt-driven unknown aborts do
        // not care how short the transaction is -- re-beginning just
        // re-arms the roulette -- so skip straight to slow-start.
        // The ShortTx rung shrinks write sets, so it is the right
        // first response to capacity pressure -- and only to that.
        // Interrupt and retry aborts strike per step regardless of
        // transaction length (shortening just adds xbegin/xend), and
        // without loop cuts nothing can be shortened at all.
        uint32_t to = reason == Bucket::Capacity && shortTxUseful_
            ? g.level + 1
            : std::max(g.level + 1,
                       static_cast<uint32_t>(kSlowStart));
        demote(m, t, to, "abort rate", reason);
    }

    // Transient-looking aborts are worth riding out in place a
    // bounded number of times before surrendering the region to the
    // slow path -- but only while the window is otherwise quiet: an
    // isolated interrupt is a transient, a busy abort window is a
    // storm, and re-arming the transaction inside a storm just pays
    // the stall and the xbegin to abort again. Conflicts never retry
    // in place: the TxFail protocol must run so the other side of
    // the race gets re-checked.
    if (reason == Bucket::Unknown && g.level == kFast &&
        g.windowAborts <= 1 &&
        g.backoffsUsed < cfg_.maxBackoffRetries) {
        uint64_t stall = cfg_.backoffBaseCost << g.backoffsUsed;
        ++g.backoffsUsed;
        // The stall is degradation overhead, not fast-path work: the
        // thread reads as "fast" (its transaction is being re-armed)
        // but these cycles exist only because the governor chose to
        // wait, so budget accounting files them under degraded.
        m.addCost(t, stall, reason, telemetry::Phase::Degraded);
        count(m, met_.backoffRetries, "txrace.gov.backoff_retries");
        return GovernorAction::RetryBackoff;
    }
    return GovernorAction::FallBack;
}

void
FallbackGovernor::onCommit(Tid t)
{
    if (!cfg_.enabled || t >= threads_.size())
        return;
    ThreadGov &g = threads_[t];
    g.consecConflicts = 0;
    g.backoffsUsed = 0;
}

void
FallbackGovernor::onSlowCheckCost(Machine &m, Tid t, uint64_t cost)
{
    if (!cfg_.enabled)
        return;
    ThreadGov &g = state(t);
    if (g.level != kSlowStart)
        return;
    uint64_t n = now(m, t);
    if (n - g.windowStart > cfg_.windowCost) {
        g.windowStart = n;
        g.windowAborts = 0;
        g.windowSlowCost = 0;
        g.windowSlowChecks = 0;
    }
    g.windowSlowCost += cost;
    ++g.windowSlowChecks;
    // Even the fallback can be pathological (slow-path stall fault):
    // bound it by degrading to sampled checking. Dense-but-healthy
    // slow traffic is the fallback doing its job, so the rung only
    // trips when the observed per-check cost is well above the
    // configured baseline -- i.e. the slow path itself is stalling.
    uint64_t base = m.config().cost.effectiveCheckCost();
    if (g.windowSlowCost >= cfg_.demoteSlowCostPerWindow &&
        g.windowSlowCost > 2 * base * g.windowSlowChecks) {
        if (g.windowAborts == 0) {
            // The slow path is the expensive part and the hardware
            // has been quiet all window: the cheapest escape is back
            // UP the ladder, not further down it.
            --g.level;
            g.lastTransition = n;
            g.windowStart = n;
            g.windowAborts = 0;
            g.windowSlowCost = 0;
            g.windowSlowChecks = 0;
            g.probing = true;
            count(m, met_.stallPromotions,
                  "txrace.gov.stall_promotions");
            if (m.events().enabled())
                m.events().record(m.currentStep(), t, "gov-probe",
                                  "stalled slow path, probing up");
        } else {
            // Aborting hardware AND a stalled slow path: cornered;
            // sampled checking is the only bounded option left.
            demote(m, t, kSampling, "slow-path cost",
                   threads_[t].demoteReason);
        }
    }
}

sim::Bucket
FallbackGovernor::demoteReasonFor(Tid t) const
{
    return t < threads_.size() ? threads_[t].demoteReason
                               : Bucket::Unknown;
}

bool
FallbackGovernor::sampleThisAccess(Tid t)
{
    return state(t).sampleRng.chance(cfg_.sampleRate);
}

uint64_t
FallbackGovernor::loopcutDivisorFor(Tid t) const
{
    return level(t) >= kShortTx ? 2 : 1;
}

} // namespace txrace::core
