#include "core/metrics_export.hh"

#include <sstream>

#include "core/fingerprint.hh"
#include "ir/printer.hh"
#include "sim/costmodel.hh"
#include "telemetry/json.hh"

namespace txrace::core {

namespace {

using telemetry::JsonWriter;
using telemetry::LogHistogram;
using telemetry::MetricKind;
using telemetry::Phase;

std::string
siteDescription(const ir::Program *prog, uint32_t site)
{
    if (!prog)
        return "";
    const ir::Instruction &ins = prog->instr(site);
    std::ostringstream ss;
    ss << ir::formatInstr(ins) << " (in @"
       << prog->function(prog->funcOf(site)).name << ")";
    return ss.str();
}

void
writeHistogram(JsonWriter &w, const LogHistogram &h)
{
    w.beginObject();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("max", h.max());
    w.field("mean", h.mean());
    w.key("buckets");
    w.beginArray();
    for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
        if (h.bucketCount(i) == 0)
            continue;
        w.beginObject();
        w.field("lo", LogHistogram::bucketLo(i));
        w.field("hi", LogHistogram::bucketHi(i));
        w.field("count", h.bucketCount(i));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writePhases(JsonWriter &w, const telemetry::PhaseProfiler &phases)
{
    w.beginObject();
    w.field("total_steps", phases.total());
    for (size_t p = 0; p < telemetry::kNumPhases; ++p)
        w.field(telemetry::phaseName(static_cast<Phase>(p)),
                phases.count(static_cast<Phase>(p)));
    w.key("per_thread");
    w.beginArray();
    const auto &per = phases.perThread();
    for (size_t t = 0; t < per.size(); ++t) {
        w.beginObject();
        w.field("tid", static_cast<uint64_t>(t));
        for (size_t p = 0; p < telemetry::kNumPhases; ++p)
            w.field(telemetry::phaseName(static_cast<Phase>(p)),
                    per[t][p]);
        w.endObject();
    }
    w.endArray();
    // The cost dimension of the same partition (step counts above,
    // virtual-time units here), nested so the step keys — which CI's
    // partition assertion sums — stay untouched.
    w.key("cost");
    w.beginObject();
    w.field("total", phases.totalCost());
    for (size_t p = 0; p < telemetry::kNumPhases; ++p)
        w.field(telemetry::phaseName(static_cast<Phase>(p)),
                phases.costOf(static_cast<Phase>(p)));
    w.endObject();
    w.endObject();
}

void
writeMonitor(JsonWriter &w, const BudgetReport &b)
{
    w.beginObject();
    w.field("budget_pct", b.budgetPct);
    w.field("window_base", b.windowBase);
    w.field("gated_regions", b.gatedRegions);
    w.field("gated_checks", b.gatedChecks);
    w.field("sampled_skips", b.sampledSkips);
    w.field("site_cuts", b.siteCuts);
    w.field("site_probes", b.siteProbes);
    w.key("windows");
    w.beginArray();
    for (const BudgetWindow &win : b.windows) {
        w.beginObject();
        w.field("base", win.base);
        w.field("overhead", win.overhead);
        w.field("hard_over", win.hardOver);
        w.field("refused", win.refused);
        w.endObject();
    }
    w.endArray();
    w.key("site_rates");
    w.beginArray();
    for (const auto &[site, shift] : b.siteShifts) {
        w.beginObject();
        w.field("instr", static_cast<uint64_t>(site));
        w.field("shift", static_cast<uint64_t>(shift));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeConflicts(JsonWriter &w, const ir::Program *prog,
               const telemetry::ConflictMap &conflicts, size_t top_n)
{
    w.beginObject();
    w.field("total", conflicts.total());
    w.field("distinct_lines",
            static_cast<uint64_t>(conflicts.lineCount()));
    w.key("top_lines");
    w.beginArray();
    for (const auto &hot : conflicts.topN(top_n)) {
        w.beginObject();
        w.field("line", hot.line);
        w.field("conflicts", hot.conflicts);
        w.field("distinct_granules", hot.distinctGranules);
        w.field("false_sharing_candidate", hot.falseSharingCandidate);
        w.key("sites");
        w.beginArray();
        for (const auto &[site, count] : hot.sites) {
            w.beginObject();
            w.field("instr", static_cast<uint64_t>(site));
            w.field("count", count);
            if (prog)
                w.field("desc", siteDescription(prog, site));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeMetricsJson(std::ostream &os, const MetricsMeta &meta,
                 const ir::Program *prog, const RunResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "txrace-metrics-v1");

    w.key("run");
    w.beginObject();
    w.field("app", meta.app);
    w.field("mode", meta.mode);
    w.field("seed", meta.seed);
    w.field("workers", static_cast<uint64_t>(meta.workers));
    w.field("scale", meta.scale);
    w.field("total_cost", result.totalCost);
    w.field("error", sim::runErrorKindName(result.error.kind));
    w.field("steps", result.error.stepsExecuted);
    w.endObject();

    // Virtual-time cost attribution (the Figure 7 overhead breakdown).
    w.key("cost_buckets");
    w.beginObject();
    for (size_t b = 0; b < sim::kNumBuckets; ++b)
        w.field(sim::bucketName(static_cast<sim::Bucket>(b)),
                result.buckets[b]);
    w.endObject();

    // The merged string-keyed counter set: machine + HTM + detector +
    // policy, exactly the names `--stats` prints (StatSet iterates its
    // map in name order — deterministic).
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : result.stats.all())
        w.field(name, value);
    w.endObject();

    // Histograms live only in the typed registry (not exported into
    // the StatSet); emitted in registration-id order.
    w.key("histograms");
    w.beginObject();
    const auto &reg = result.telemetry.registry;
    for (telemetry::MetricId id = 0; id < reg.size(); ++id) {
        const auto &info = reg.metrics()[id];
        if (info.kind != MetricKind::Histogram)
            continue;
        w.key(info.name);
        writeHistogram(w, reg.hist(id));
    }
    w.endObject();

    w.key("phases");
    writePhases(w, result.telemetry.phases);

    // Abort causes as a flat object (mirrors the htm.aborts.* and
    // tx.abort.* counters for consumers that only want this block).
    w.key("abort_causes");
    w.beginObject();
    for (const auto &[name, value] : result.stats.all()) {
        if (name.rfind("tx.abort.", 0) == 0 ||
            name.rfind("htm.aborts.", 0) == 0)
            w.field(name, value);
    }
    w.endObject();

    w.key("conflicts");
    writeConflicts(w, prog, result.telemetry.conflicts, 10);

    // Monitor-mode budget ledger: every complete window's overhead
    // against the budget, plus the per-site sampling state. Absent
    // entirely outside monitor mode, so existing consumers see a
    // byte-identical document.
    if (result.budget.enabled) {
        w.key("monitor");
        writeMonitor(w, result.budget);
    }

    // Race list in fingerprint order: byte-stable across runs and
    // directly joinable with campaign findings (same fingerprints).
    w.key("races");
    w.beginObject();
    w.field("count", static_cast<uint64_t>(result.races.count()));
    w.key("list");
    w.beginArray();
    if (prog) {
        for (const auto &[sig, race] :
             fingerprintedRaces(*prog, result.races)) {
            std::ostringstream fp;
            fp << "0x" << std::hex << sig.hash;
            w.beginObject();
            w.field("fingerprint", fp.str());
            w.field("a", sig.a);
            w.field("b", sig.b);
            w.field("hits", race.hits);
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();

    w.endObject();
    os << "\n";
}

} // namespace txrace::core
