#include "core/metrics_export.hh"

#include <sstream>

#include "core/fingerprint.hh"
#include "ir/printer.hh"
#include "sim/costmodel.hh"
#include "telemetry/json.hh"

namespace txrace::core {

namespace {

using telemetry::JsonWriter;
using telemetry::LogHistogram;
using telemetry::MetricKind;
using telemetry::Phase;

std::string
siteDescription(const ir::Program *prog, uint32_t site)
{
    if (!prog)
        return "";
    const ir::Instruction &ins = prog->instr(site);
    std::ostringstream ss;
    ss << ir::formatInstr(ins) << " (in @"
       << prog->function(prog->funcOf(site)).name << ")";
    return ss.str();
}

void
writeHistogram(JsonWriter &w, const LogHistogram &h)
{
    w.beginObject();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("max", h.max());
    w.field("mean", h.mean());
    w.key("buckets");
    w.beginArray();
    for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
        if (h.bucketCount(i) == 0)
            continue;
        w.beginObject();
        w.field("lo", LogHistogram::bucketLo(i));
        w.field("hi", LogHistogram::bucketHi(i));
        w.field("count", h.bucketCount(i));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writePhases(JsonWriter &w, const telemetry::PhaseProfiler &phases)
{
    w.beginObject();
    w.field("total_steps", phases.total());
    for (size_t p = 0; p < telemetry::kNumPhases; ++p)
        w.field(telemetry::phaseName(static_cast<Phase>(p)),
                phases.count(static_cast<Phase>(p)));
    w.key("per_thread");
    w.beginArray();
    const auto &per = phases.perThread();
    for (size_t t = 0; t < per.size(); ++t) {
        w.beginObject();
        w.field("tid", static_cast<uint64_t>(t));
        for (size_t p = 0; p < telemetry::kNumPhases; ++p)
            w.field(telemetry::phaseName(static_cast<Phase>(p)),
                    per[t][p]);
        w.endObject();
    }
    w.endArray();
    // The cost dimension of the same partition (step counts above,
    // virtual-time units here), nested so the step keys — which CI's
    // partition assertion sums — stay untouched.
    w.key("cost");
    w.beginObject();
    w.field("total", phases.totalCost());
    for (size_t p = 0; p < telemetry::kNumPhases; ++p)
        w.field(telemetry::phaseName(static_cast<Phase>(p)),
                phases.costOf(static_cast<Phase>(p)));
    w.endObject();
    w.endObject();
}

void
writeMonitor(JsonWriter &w, const BudgetReport &b)
{
    w.beginObject();
    w.field("budget_pct", b.budgetPct);
    w.field("window_base", b.windowBase);
    w.field("gated_regions", b.gatedRegions);
    w.field("gated_checks", b.gatedChecks);
    w.field("sampled_skips", b.sampledSkips);
    w.field("site_cuts", b.siteCuts);
    w.field("site_probes", b.siteProbes);
    w.key("windows");
    w.beginArray();
    for (const BudgetWindow &win : b.windows) {
        w.beginObject();
        w.field("base", win.base);
        w.field("overhead", win.overhead);
        w.field("hard_over", win.hardOver);
        w.field("refused", win.refused);
        w.endObject();
    }
    w.endArray();
    w.key("site_rates");
    w.beginArray();
    for (const auto &[site, shift] : b.siteShifts) {
        w.beginObject();
        w.field("instr", static_cast<uint64_t>(site));
        w.field("shift", static_cast<uint64_t>(shift));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeConflicts(JsonWriter &w, const ir::Program *prog,
               const telemetry::ConflictMap &conflicts, size_t top_n)
{
    w.beginObject();
    w.field("total", conflicts.total());
    w.field("distinct_lines",
            static_cast<uint64_t>(conflicts.lineCount()));
    w.key("top_lines");
    w.beginArray();
    for (const auto &hot : conflicts.topN(top_n)) {
        w.beginObject();
        w.field("line", hot.line);
        w.field("conflicts", hot.conflicts);
        w.field("distinct_granules", hot.distinctGranules);
        w.field("false_sharing_candidate", hot.falseSharingCandidate);
        w.key("sites");
        w.beginArray();
        for (const auto &[site, count] : hot.sites) {
            w.beginObject();
            w.field("instr", static_cast<uint64_t>(site));
            w.field("count", count);
            if (prog)
                w.field("desc", siteDescription(prog, site));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

/** One flight event inside a forensics thread window. */
void
writeFlightEvent(JsonWriter &w, const telemetry::FrEvent &e)
{
    using telemetry::FrKind;
    w.beginObject();
    w.field("step", static_cast<uint64_t>(e.step));
    w.field("kind", telemetry::frKindName(e.kind()));
    if (e.site() != ir::kNoInstr)
        w.field("site", static_cast<uint64_t>(e.site()));
    switch (e.kind()) {
      case FrKind::Access:
        w.field("granule", e.arg);
        w.field("write", e.isWrite());
        break;
      case FrKind::TxAbort:
        w.field("reason", telemetry::frAbortName(
                              static_cast<telemetry::FrAbort>(e.arg)));
        break;
      case FrKind::Budget:
        w.field("detail", telemetry::frBudgetName(
                              static_cast<telemetry::FrBudget>(e.arg)));
        break;
      case FrKind::SlowEnter:
        w.field("reason",
                sim::bucketName(static_cast<sim::Bucket>(e.arg)));
        break;
      case FrKind::Gov:
        w.field("level", e.arg);
        break;
      case FrKind::TxCommit:
        w.field("base_cost", e.arg);
        break;
      case FrKind::WindowReplay:
        w.field("entries", e.arg);
        break;
      default:
        break;
    }
    w.endObject();
}

/** The txrace-forensics-v1 block: every capture with its drained
 *  windows, footprints, and last-writer chain. */
void
writeForensics(JsonWriter &w, const ir::Program *prog,
               const std::vector<telemetry::ForensicsCapture> &caps)
{
    w.beginObject();
    w.field("schema", "txrace-forensics-v1");
    w.key("captures");
    w.beginArray();
    for (const auto &cap : caps) {
        w.beginObject();
        w.field("trigger", cap.trigger);
        w.field("step", cap.step);
        if (cap.siteA != ir::kNoInstr) {
            w.field("kind", cap.kind);
            w.field("granule", cap.granule);
            w.field("site_a", static_cast<uint64_t>(cap.siteA));
            w.field("site_b", static_cast<uint64_t>(cap.siteB));
            if (prog) {
                w.field("site_a_desc",
                        siteDescription(prog, cap.siteA));
                w.field("site_b_desc",
                        siteDescription(prog, cap.siteB));
            }
        }
        w.key("last_writers");
        w.beginArray();
        for (const auto &lw : cap.lastWriters) {
            w.beginObject();
            w.field("step", lw.step);
            w.field("tid", static_cast<uint64_t>(lw.tid));
            w.field("site", static_cast<uint64_t>(lw.site));
            if (prog)
                w.field("desc", siteDescription(prog, lw.site));
            w.endObject();
        }
        w.endArray();
        w.key("threads");
        w.beginArray();
        for (const auto &ft : cap.threads) {
            w.beginObject();
            w.field("tid", static_cast<uint64_t>(ft.tid));
            w.field("gov_level", ft.govLevel);
            w.field("site_shift", ft.siteShift);
            w.key("read_granules");
            w.beginArray();
            for (uint64_t g : ft.readGranules)
                w.value(g);
            w.endArray();
            w.key("write_granules");
            w.beginArray();
            for (uint64_t g : ft.writeGranules)
                w.value(g);
            w.endArray();
            w.key("window");
            w.beginArray();
            for (const auto &e : ft.window)
                writeFlightEvent(w, e);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeMetricsJson(std::ostream &os, const MetricsMeta &meta,
                 const ir::Program *prog, const RunResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "txrace-metrics-v1");

    w.key("run");
    w.beginObject();
    w.field("app", meta.app);
    w.field("mode", meta.mode);
    w.field("seed", meta.seed);
    w.field("workers", static_cast<uint64_t>(meta.workers));
    w.field("scale", meta.scale);
    w.field("total_cost", result.totalCost);
    w.field("error", sim::runErrorKindName(result.error.kind));
    w.field("steps", result.error.stepsExecuted);
    w.endObject();

    // Virtual-time cost attribution (the Figure 7 overhead breakdown).
    w.key("cost_buckets");
    w.beginObject();
    for (size_t b = 0; b < sim::kNumBuckets; ++b)
        w.field(sim::bucketName(static_cast<sim::Bucket>(b)),
                result.buckets[b]);
    w.endObject();

    // The merged string-keyed counter set: machine + HTM + detector +
    // policy, exactly the names `--stats` prints (StatSet iterates its
    // map in name order — deterministic).
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : result.stats.all())
        w.field(name, value);
    w.endObject();

    // Histograms live only in the typed registry (not exported into
    // the StatSet); emitted in registration-id order.
    w.key("histograms");
    w.beginObject();
    const auto &reg = result.telemetry.registry;
    for (telemetry::MetricId id = 0; id < reg.size(); ++id) {
        const auto &info = reg.metrics()[id];
        if (info.kind != MetricKind::Histogram)
            continue;
        w.key(info.name);
        writeHistogram(w, reg.hist(id));
    }
    w.endObject();

    w.key("phases");
    writePhases(w, result.telemetry.phases);

    // Abort causes as a flat object (mirrors the htm.aborts.* and
    // tx.abort.* counters for consumers that only want this block).
    w.key("abort_causes");
    w.beginObject();
    for (const auto &[name, value] : result.stats.all()) {
        if (name.rfind("tx.abort.", 0) == 0 ||
            name.rfind("htm.aborts.", 0) == 0)
            w.field(name, value);
    }
    w.endObject();

    w.key("conflicts");
    writeConflicts(w, prog, result.telemetry.conflicts, 10);

    // Event-log accounting: stored vs offered (high-water) is the
    // datum ring/log capacities are sized from.
    w.key("events");
    w.beginObject();
    w.field("enabled", result.events.enabled());
    w.field("capacity",
            static_cast<uint64_t>(sim::EventLog::kMaxEvents));
    w.field("stored",
            static_cast<uint64_t>(result.events.events().size()));
    w.field("dropped", result.events.dropped());
    w.field("high_water", result.events.highWater());
    w.endObject();

    // Forensics captures (flight-recorder drains at race detections
    // and abnormal run ends). Absent when nothing was captured, so
    // recorder-off runs emit a byte-identical document.
    if (!result.telemetry.forensics.empty()) {
        w.key("forensics");
        writeForensics(w, prog, result.telemetry.forensics);
    }

    // Monitor-mode budget ledger: every complete window's overhead
    // against the budget, plus the per-site sampling state. Absent
    // entirely outside monitor mode, so existing consumers see a
    // byte-identical document.
    if (result.budget.enabled) {
        w.key("monitor");
        writeMonitor(w, result.budget);
    }

    // Race list in fingerprint order: byte-stable across runs and
    // directly joinable with campaign findings (same fingerprints).
    w.key("races");
    w.beginObject();
    w.field("count", static_cast<uint64_t>(result.races.count()));
    w.key("list");
    w.beginArray();
    if (prog) {
        for (const auto &[sig, race] :
             fingerprintedRaces(*prog, result.races)) {
            std::ostringstream fp;
            fp << "0x" << std::hex << sig.hash;
            w.beginObject();
            w.field("fingerprint", fp.str());
            w.field("a", sig.a);
            w.field("b", sig.b);
            w.field("hits", race.hits);
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();

    w.endObject();
    os << "\n";
}

telemetry::Profile
buildRunProfile(const std::string &app, const RunResult &result)
{
    telemetry::Profile p;
    telemetry::AppProfile &a = p.apps[app];
    a.runs = 1;
    a.filterHits = result.stats.get("htm.dir.filter_hit");
    a.txBegins = result.stats.get("tx.begins");
    a.txCommitted = result.stats.get("tx.committed");
    a.slowRegions = result.stats.get("txrace.slow_regions");
    a.windowReplays = result.stats.get("txrace.window.replays");
    a.windowFallbacks = result.stats.get("txrace.window.fallbacks");
    if (result.budget.enabled) {
        a.monitorSiteCuts = result.budget.siteCuts;
        a.monitorSiteProbes = result.budget.siteProbes;
        a.monitorGatedChecks = result.budget.gatedChecks;
        a.monitorSampledSkips = result.budget.sampledSkips;
    }
    for (const auto &[site, ss] : result.telemetry.siteStats) {
        telemetry::SiteProfile &sp = a.sites[site];
        sp.conflictAborts = ss.conflictAborts;
        sp.capacityAborts = ss.capacityAborts;
        sp.otherAborts = ss.otherAborts;
        sp.slowChecks = ss.slowChecks;
        sp.slowCost = ss.slowCost;
        sp.windowReplays = ss.windowReplays;
    }
    for (const auto &[site, shift] : result.budget.siteShifts)
        a.sites[site].monitorShiftMax = shift;
    return p;
}

} // namespace txrace::core
