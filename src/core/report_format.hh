/**
 * @file
 * Human-readable rendering of race reports: the developer-facing
 * output a race detector ultimately exists for. Maps static
 * instruction ids back to their source tags and access kinds.
 */

#ifndef TXRACE_CORE_REPORT_FORMAT_HH
#define TXRACE_CORE_REPORT_FORMAT_HH

#include <ostream>
#include <string>

#include "core/driver.hh"
#include "core/repro.hh"
#include "detector/report.hh"
#include "ir/program.hh"

namespace txrace::core {

/** One race as a multi-line, ThreadSanitizer-flavoured report. */
std::string formatRace(const ir::Program &prog,
                       const detector::Race &race);

/**
 * Write a full report for @p result to @p os: a summary line, then
 * every distinct race with its fingerprint, instruction pair, tags,
 * access kinds, first-seen address, and dynamic hit count. Races are
 * ordered by fingerprint, so the report is byte-stable across any
 * two runs that find the same races.
 */
void printRaceReport(const ir::Program &prog, const RunResult &result,
                     std::ostream &os);

/**
 * Same, plus a one-line exact-reproduction command per race (the
 * run's identity and config digest) so any finding can be replayed
 * with a copy-paste.
 */
void printRaceReport(const ir::Program &prog, const RunResult &result,
                     std::ostream &os, const RunIdentity &identity,
                     uint64_t configDigest);

/**
 * Render the run's forensics captures (txrace_run --explain): per
 * capture the racing site pair, the last-writer chain on the racing
 * granule, and each involved thread's recent flight window with its
 * read/write footprint and governor/budget state. Prints a short
 * notice when the run carried no captures (recorder off or nothing
 * triggered).
 */
void printForensics(const ir::Program &prog, const RunResult &result,
                    std::ostream &os);

} // namespace txrace::core

#endif // TXRACE_CORE_REPORT_FORMAT_HH
