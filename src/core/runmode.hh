/**
 * @file
 * The detection configurations the evaluation compares.
 */

#ifndef TXRACE_CORE_RUNMODE_HH
#define TXRACE_CORE_RUNMODE_HH

#include <cstdint>

namespace txrace::core {

/** Which tool monitors the execution. */
enum class RunMode {
    Native,             ///< uninstrumented (the overhead baseline)
    TSan,               ///< always-on happens-before detection
    TSanSampling,       ///< TSan checking a fraction of accesses
    Eraser,             ///< lockset detection (ablation baseline)
    RaceTM,             ///< hardware-only HTM reporting (§9 ablation)
    TxRaceNoOpt,        ///< two-phase, no loop-cut optimization
    TxRaceDynLoopcut,   ///< loop-cut threshold learned online (§4.3)
    TxRaceProfLoopcut,  ///< loop-cut threshold profiled beforehand
};

/** Display name, matching the paper's legends. */
const char *runModeName(RunMode mode);

/** How a conflict abort is repaired before the fast path resumes. */
enum class SlowPathKind : uint8_t {
    /** Replay only the aborting window (victim + requester version
     *  logs) through the detector, then re-begin in place. */
    Window,
    /** Globally abort all in-flight transactions via the TxFail flag
     *  and re-execute the whole region under FastTrack (the paper's
     *  original scheme; kept as the differential oracle). */
    Region,
};

constexpr const char *
slowPathKindName(SlowPathKind k)
{
    return k == SlowPathKind::Window ? "window" : "region";
}

/** True for the three TxRace variants. */
constexpr bool
isTxRaceMode(RunMode mode)
{
    return mode == RunMode::TxRaceNoOpt ||
           mode == RunMode::TxRaceDynLoopcut ||
           mode == RunMode::TxRaceProfLoopcut;
}

} // namespace txrace::core

#endif // TXRACE_CORE_RUNMODE_HH
