/**
 * @file
 * Loop-cut threshold table (paper §4.3).
 *
 * A transaction containing a high-trip loop overflows the HTM write
 * set; the loop-cut optimization ends the transaction mid-loop every
 * `threshold` iterations so each segment fits. The threshold cannot
 * be counted inside the transaction (updates would be rolled back),
 * so it lives here, outside transactional state, and is adjusted when
 * segment transactions commit (+1) or capacity-abort (-1, floored at
 * 1) — converging on the largest segment length that still commits.
 * A capacity abort also records a ceiling one below the failing
 * threshold, so commit-driven growth stops at the learned capacity
 * instead of oscillating across it.
 *
 * TxRace-DynLoopcut starts at a small initial estimate on the first
 * capacity abort of a loop; TxRace-ProfLoopcut preloads thresholds
 * (and their ceilings) from a profiling run — the stand-in for the
 * paper's LBR-based profiling — and so avoids even the first
 * capacity abort.
 */

#ifndef TXRACE_CORE_LOOPCUT_HH
#define TXRACE_CORE_LOOPCUT_HH

#include <cstdint>
#include <unordered_map>

namespace txrace::core {

/** Per-static-loop cutting thresholds with commit/abort learning. */
class LoopCutTable
{
  public:
    static constexpr uint64_t kMaxThreshold = 1ull << 20;

    /** Learned state of one loop. */
    struct Entry
    {
        uint64_t threshold = 0;
        uint64_t ceiling = kMaxThreshold;
    };

    /** @p initial is the Dyn scheme's first-abort estimate. */
    explicit LoopCutTable(uint64_t initial = 2) : initial_(initial) {}

    /** Threshold for @p loop_id; 0 means "not cutting this loop". */
    uint64_t
    threshold(uint64_t loop_id) const
    {
        auto it = entries_.find(loop_id);
        return it == entries_.end() ? 0 : it->second.threshold;
    }

    /** Preload a profiled threshold (ProfLoopcut). The profiled value
     *  is trusted as the capacity ceiling, avoiding even the first
     *  capacity abort of the loop. */
    void
    preload(uint64_t loop_id, uint64_t threshold)
    {
        if (threshold == 0)
            return;
        entries_[loop_id] = Entry{threshold, threshold};
    }

    /** A segment transaction of @p loop_id committed: grow, but never
     *  beyond the learned ceiling. */
    void
    onCommit(uint64_t loop_id)
    {
        auto it = entries_.find(loop_id);
        if (it == entries_.end())
            return;
        Entry &e = it->second;
        if (e.threshold < e.ceiling)
            ++e.threshold;
    }

    /**
     * A transaction containing @p loop_id capacity-aborted. Activates
     * the loop at the initial estimate on first sight (Dyn). If the
     * aborted transaction was actually *governed* by the current
     * threshold (it started after the threshold was active and died
     * before reaching the cut point), the threshold was too large:
     * shrink it and pin the ceiling. Aborts of stale transactions
     * that predate the learned threshold carry no evidence and are
     * ignored — without this distinction, a second thread's
     * first-iteration abort would collapse a freshly learned
     * threshold to 1 and pin it there.
     */
    void
    onCapacityAbort(uint64_t loop_id, bool governed = true)
    {
        auto it = entries_.find(loop_id);
        if (it == entries_.end()) {
            entries_[loop_id] = Entry{initial_, kMaxThreshold};
            return;
        }
        if (!governed)
            return;
        Entry &e = it->second;
        if (e.threshold > 1)
            --e.threshold;
        e.ceiling = e.threshold;
    }

    /** All learned entries (exported by profiling runs). */
    const std::unordered_map<uint64_t, Entry> &all() const
    {
        return entries_;
    }

  private:
    uint64_t initial_;
    std::unordered_map<uint64_t, Entry> entries_;
};

} // namespace txrace::core

#endif // TXRACE_CORE_LOOPCUT_HH
