/**
 * @file
 * The execution policies: Native (baseline), TSan (always-on
 * happens-before detection, with optional sampling), and the TxRace
 * two-phase runtime.
 */

#ifndef TXRACE_CORE_POLICIES_HH
#define TXRACE_CORE_POLICIES_HH

#include <set>
#include <unordered_set>

#include "core/budget.hh"
#include "core/governor.hh"
#include "core/loopcut.hh"
#include "detector/lockset.hh"
#include "core/runmode.hh"
#include "sim/machine.hh"
#include "sim/policy.hh"
#include "support/rng.hh"

namespace txrace::core {

/** No instrumentation at all: defines the overhead baseline. */
class NativePolicy : public sim::ExecutionPolicy
{
};

/**
 * The TSan baseline (and its sampling variant): every instrumented
 * access is happens-before checked against shadow memory; sync ops
 * always maintain vector clocks. With sampleRate < 1, an access is
 * fully processed with that probability and otherwise only pays a
 * cheap sampling-branch cost — modeling LiteRace-style sampling the
 * paper compares against (§8.4).
 */
class TsanPolicy : public sim::ExecutionPolicy
{
  public:
    explicit TsanPolicy(double sample_rate = 1.0, uint64_t seed = 7);

    void onThreadCreated(sim::Machine &m, Tid parent,
                         Tid child) override;
    void onThreadJoined(sim::Machine &m, Tid joiner,
                        Tid joined) override;
    void onSyncPerformed(sim::Machine &m, Tid t,
                         const ir::Instruction &ins) override;
    void onBarrierRelease(sim::Machine &m,
                          const std::vector<Tid> &parts) override;
    bool onMemAccess(sim::Machine &m, Tid t,
                     const ir::Instruction &ins, ir::Addr addr,
                     bool is_write) override;

  private:
    double sampleRate_;
    Rng rng_;
};

/**
 * Eraser-style lockset baseline (ablation; paper §9). Checks every
 * instrumented access against the candidate-lockset state machine.
 * Deliberately blind to condvars, barriers, and join edges beyond
 * initialization — the incompleteness the paper contrasts with
 * happens-before detection.
 */
class EraserPolicy : public sim::ExecutionPolicy
{
  public:
    void onSyncPerformed(sim::Machine &m, Tid t,
                         const ir::Instruction &ins) override;
    bool onMemAccess(sim::Machine &m, Tid t,
                     const ir::Instruction &ins, ir::Addr addr,
                     bool is_write) override;

    const detector::LocksetDetector &lockset() const
    {
        return lockset_;
    }

  private:
    detector::LocksetDetector lockset_;
};

/**
 * RaceTM-style comparison policy (paper §9): hardware-extended HTM
 * with per-line debug bits reports races directly in the fast path —
 * no software slow path at all. Fast, but reports at cache-line
 * granularity, so false sharing produces false positives (the
 * problem TxRace's two-phase design exists to solve). Requires
 * HtmConfig::trackInstructions.
 */
class RaceTmPolicy : public sim::ExecutionPolicy
{
  public:
    void onRunStart(sim::Machine &m) override;
    void onThreadExit(sim::Machine &m, Tid t) override;
    void onTxBegin(sim::Machine &m, Tid t,
                   const ir::Instruction &ins) override;
    void onTxEnd(sim::Machine &m, Tid t,
                 const ir::Instruction &ins) override;
    bool onMemAccess(sim::Machine &m, Tid t,
                     const ir::Instruction &ins, ir::Addr addr,
                     bool is_write) override;
    void onInterruptAbort(sim::Machine &m, Tid t) override;

    const detector::RaceSet &races() const { return races_; }

  private:
    detector::RaceSet races_;
};

/**
 * The TxRace two-phase runtime (paper §3-§5).
 *
 * Fast path: synchronization-free regions run as transactions in the
 * HTM model; every transaction reads the TxFail flag at begin. Sync
 * operations keep updating vector clocks so later slow-path episodes
 * see correct happens-before order (§5, Fig. 6).
 *
 * Abort dispatch (§4.2):
 *  - conflict: roll back; the victim publishes TxFail (next step),
 *    whose strong-isolation write aborts all in-flight transactions;
 *    everyone re-executes their region on the slow path under the
 *    software detector, which pinpoints races and filters false
 *    sharing;
 *  - capacity: only this thread falls back to the slow path
 *    (concurrent fast+slow, Fig. 5), with loop-cut learning;
 *  - unknown (interrupts): same fallback as capacity;
 *  - retry-only: retry the transaction a bounded number of times;
 *  - debug/nested: cannot arise from our transactionalization.
 *
 * Optimizations (§4.3): single-threaded elision, small regions
 * pre-marked slow by the pass, and the loop-cut schemes.
 */
class TxRacePolicy : public sim::ExecutionPolicy
{
  public:
    /** Loop-cut scheme selection. */
    enum class Scheme { NoOpt, Dyn, Prof };

    /**
     * @param scheme loop-cut handling
     * @param preloaded profiled thresholds (Prof scheme); merged in
     * @param dyn_initial Dyn scheme first-abort estimate (paper: 2)
     * @param max_retries bound on retry-only re-executions
     */
    /**
     * @param addr_hints enable the §9 "future HTM" extension: the
     *        conflicting cache line is reported to the runtime, and
     *        conflict-triggered slow episodes only software-check
     *        accesses to that line instead of the whole region.
     * @param gov adaptive fallback governor configuration; disabled
     *        by default (the paper's unconditional-fallback runtime).
     * @param gov_seed seed for the governor's sampling stream (set
     *        from the machine seed by the driver).
     * @param budget monitor-mode overhead budget; disabled by default.
     *        The controller shares gov_seed for its sampling hash.
     * @param slowpath conflict-abort repair scheme. Window replays
     *        only the aborting window from the version logs (the
     *        machine's HtmConfig::versionLog must be on); Region is
     *        the paper's TxFail-broadcast whole-region re-execution,
     *        kept as the differential oracle. Defaults to Region so
     *        directly-constructed policies (tests) keep the original
     *        behavior; the driver selects Window.
     */
    explicit TxRacePolicy(Scheme scheme,
                          const LoopCutTable *preloaded = nullptr,
                          uint64_t dyn_initial = 2,
                          uint32_t max_retries = 4,
                          bool addr_hints = false,
                          const GovernorConfig &gov = {},
                          uint64_t gov_seed = 1,
                          const BudgetConfig &budget = {},
                          SlowPathKind slowpath = SlowPathKind::Region);

    /** Windowed replays one transaction attempt may pay before the
     *  policy surrenders the region to a solo slow episode. One: a
     *  re-begun window that conflicts again is contending on a hot
     *  line, and each further replay costs a rollback re-execution —
     *  at that point a solo slow episode is strictly cheaper. */
    static constexpr uint32_t kMaxWindowReplays = 1;

    void onRunStart(sim::Machine &m) override;
    void onRunEnd(sim::Machine &m) override;
    void onThreadExit(sim::Machine &m, Tid t) override;
    bool beforeStep(sim::Machine &m, Tid t) override;
    void onTxBegin(sim::Machine &m, Tid t,
                   const ir::Instruction &ins) override;
    void onTxEnd(sim::Machine &m, Tid t,
                 const ir::Instruction &ins) override;
    void onLoopCut(sim::Machine &m, Tid t,
                   const ir::Instruction &ins) override;
    bool onMemAccess(sim::Machine &m, Tid t,
                     const ir::Instruction &ins, ir::Addr addr,
                     bool is_write) override;
    void onSyncPerformed(sim::Machine &m, Tid t,
                         const ir::Instruction &ins) override;
    void onThreadCreated(sim::Machine &m, Tid parent,
                         Tid child) override;
    void onThreadJoined(sim::Machine &m, Tid joiner,
                        Tid joined) override;
    void onBarrierRelease(sim::Machine &m,
                          const std::vector<Tid> &parts) override;
    void onInterruptAbort(sim::Machine &m, Tid t) override;
    void onRetryAbort(sim::Machine &m, Tid t) override;

    /** Final thresholds (exported by profiling runs). */
    const LoopCutTable &loopcuts() const { return loopcuts_; }

    /** The adaptive fallback governor (read-only inspection). */
    const FallbackGovernor &governor() const { return governor_; }

    /** The monitor-mode budget controller (read-only inspection). */
    const BudgetController &budget() const { return budget_; }

    /** End-of-run budget summary (the driver copies it into
     *  RunResult when monitor mode is on). */
    BudgetReport budgetReport() const { return budget_.report(); }

  private:
    /** Begin a fast-path transaction at the current point. */
    void enterFastTx(sim::Machine &m, Tid t, uint64_t segment_loop);

    /** Conflict-abort handling for a victim of a real data conflict
     *  (region mode: roll back, then publish TxFail next step). */
    void handleConflictVictim(sim::Machine &m, Tid v);

    /** Windowed mode: merge the victim's and requester's pending
     *  version-log windows, replay them through the detector, roll
     *  the victim back, and re-begin its transaction in place — no
     *  TxFail broadcast, no region demotion. Past kMaxWindowReplays
     *  (or without a version log) the victim falls back to a solo
     *  slow region instead. @p req_site attributes the replay and
     *  @p conflict_line joins the watched-line set either way. */
    void handleConflictVictimWindowed(sim::Machine &m, Tid v,
                                      Tid requester,
                                      ir::InstrId req_site,
                                      uint64_t conflict_line);

    /** Capacity abort of @p t's own transaction; @p site is the
     *  access instruction that overflowed (abort attribution for the
     *  persistent profile). */
    void handleSelfCapacity(sim::Machine &m, Tid t, ir::InstrId site);

    /** Drain flight windows into a forensics capture for a freshly
     *  detected static race. */
    void captureRaceForensics(sim::Machine &m, const detector::Race &r,
                              Tid current, Tid other);

    /** Walk @p t's loop stack for the innermost loop-cut loop;
     *  @p iters_in_tx receives that frame's in-transaction iteration
     *  count (governance evidence for the learning rule). */
    uint64_t innermostCutLoop(sim::Machine &m, Tid t,
                              uint64_t &iters_in_tx) const;

    /** Apply vector-clock updates for one sync instruction. */
    void trackSync(sim::Machine &m, Tid t, const ir::Instruction &ins);

    Scheme scheme_;
    LoopCutTable loopcuts_;
    uint32_t maxRetries_;
    bool addrHints_;
    SlowPathKind slowpath_;
    FallbackGovernor governor_;
    BudgetController budget_;
    /** Static loop ids that carry LoopCut instrumentation. */
    std::set<uint64_t> cutLoops_;
    /** Windowed mode: cache lines that ever produced a conflict
     *  abort. The replay covers the aborting window itself; keeping
     *  the line software-checked afterwards covers the accesses that
     *  region mode would have caught via its broadcast demotion —
     *  third threads touching the same line after the conflicting
     *  transaction committed. Lines never leave the set: a line that
     *  conflicted once is exactly where a detector should keep
     *  looking, and the set stays tiny (contended lines only). */
    std::unordered_set<uint64_t> watchedLines_;

    /** Interned ids of the policy's hot-path counters (onRunStart
     *  registers them in the machine's metric registry; updates are
     *  then one vector index instead of a string-map lookup). */
    struct Metrics
    {
        telemetry::MetricId txBegins, txCommitted;
        telemetry::MetricId abortConflict, abortCapacity;
        telemetry::MetricId abortUnknown, abortRetry;
        telemetry::MetricId smallSlowRegions, elided, slowRegions;
        telemetry::MetricId hwlimitAborts, loopCuts;
        telemetry::MetricId artificialAborts;
        telemetry::MetricId txfailDelaySteps, txfailWrites;
        telemetry::MetricId retries, retryExhausted, hintFiltered;
        telemetry::MetricId govSampledRegions, govForcedSlowRegions;
        telemetry::MetricId govSampleSkipped, govSampledChecks;
        telemetry::MetricId govTightenedCuts;
        /** Dynamic accesses that still carry instrumentation vs. those
         *  the static elision pipeline demoted — the "fraction of
         *  accesses monitored" statistic HardRace reports. */
        telemetry::MetricId accessInstrumented, accessUninstrumented;
        /** Windowed slow path: replays performed, replay-cap (or
         *  missing-log) fallbacks to a solo slow region, and the
         *  window length / replay cost distributions. */
        telemetry::MetricId windowReplays, windowFallbacks;
        telemetry::MetricId windowWatchChecks;
        telemetry::MetricId windowLen, windowReplayCost;
    };
    Metrics met_{};
};

} // namespace txrace::core

#endif // TXRACE_CORE_POLICIES_HH
