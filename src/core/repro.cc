#include "core/repro.hh"

#include <cstdlib>
#include <sstream>

#include "core/fingerprint.hh"
#include "support/log.hh"

namespace txrace::core {

namespace {

/** Digest accumulator: hash a tagged field stream so that field
 *  order matters and adjacent fields cannot alias. */
class Digest
{
  public:
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            step(static_cast<unsigned char>(v >> (8 * i)));
        step(0x5e);
    }

    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        for (unsigned char c : s)
            step(c);
        step(0x1f);
    }

    uint64_t value() const { return h_; }

  private:
    void
    step(unsigned char c)
    {
        h_ ^= c;
        h_ *= 0x100000001b3ULL;
    }

    uint64_t h_ = 0xcbf29ce484222325ULL;
};

} // namespace

const char *
cliModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Native:            return "native";
      case RunMode::TSan:              return "tsan";
      case RunMode::TSanSampling:      return "sampling";
      case RunMode::Eraser:            return "eraser";
      case RunMode::RaceTM:            return "racetm";
      case RunMode::TxRaceNoOpt:       return "txrace-noopt";
      case RunMode::TxRaceDynLoopcut:  return "txrace-dyn";
      case RunMode::TxRaceProfLoopcut: return "txrace";
    }
    return "?";
}

bool
cliModeFromName(const std::string &name, RunMode &out)
{
    for (int m = 0; m <= int(RunMode::TxRaceProfLoopcut); ++m) {
        if (name == cliModeName(RunMode(m))) {
            out = RunMode(m);
            return true;
        }
    }
    return false;
}

bool
slowPathKindFromName(const std::string &name, SlowPathKind &out)
{
    for (SlowPathKind k : {SlowPathKind::Window, SlowPathKind::Region}) {
        if (name == slowPathKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

uint64_t
configDigest(const RunConfig &cfg)
{
    Digest d;
    d.u64(static_cast<uint64_t>(cfg.mode));
    // Inert outside TSanSampling; hashing it anyway would make the
    // digest disagree between front ends that default it differently.
    d.f64(cfg.mode == RunMode::TSanSampling ? cfg.sampleRate : 1.0);
    d.u64(cfg.dynLoopcutInitial);
    d.u64(cfg.conflictAddressHints ? 1 : 0);
    d.u64(static_cast<uint64_t>(cfg.slowpath));
    d.u64(cfg.profileSeedDelta);

    const sim::MachineConfig &m = cfg.machine;
    d.u64(m.seed);
    d.u64(m.nCores);
    d.u64(m.hwThreads);
    d.f64(m.interruptPerStep);
    d.f64(m.oversubInterruptFactor);
    d.f64(m.retryAbortPerStep);
    d.u64(m.maxSteps);

    const sim::CostModel &c = m.cost;
    d.u64(c.loadCost);
    d.u64(c.storeCost);
    d.u64(c.syncCost);
    d.u64(c.syscallCost);
    d.u64(c.threadOpCost);
    d.u64(c.txBeginCost);
    d.u64(c.txEndCost);
    d.u64(c.fastHookCost);
    d.u64(c.syncTrackCost);
    d.u64(c.checkCost);
    d.f64(c.checkScale);
    d.u64(c.windowReplaySetupCost);

    const htm::HtmConfig &h = m.htm;
    d.u64(h.l1Sets);
    d.u64(h.l1Ways);
    d.u64(h.readSetMaxLines);
    d.u64(h.maxConcurrentTx);
    d.f64(h.capacityJitter);
    d.u64(h.trackInstructions ? 1 : 0);
    d.u64(static_cast<uint64_t>(h.engine));
    d.u64(h.accessFilter ? 1 : 0);
    d.u64(h.versionLog ? 1 : 0);
    d.u64(h.versionLogEntries);

    const detector::DetectorConfig &det = m.det;
    d.u64(det.maxShadowCells);
    d.u64(det.epochFastPath ? 1 : 0);

    d.u64(cfg.passes.smallRegionK);
    d.u64(cfg.passes.insertLoopCuts ? 1 : 0);
    d.u64(cfg.passes.removeUninstrumented ? 1 : 0);
    const passes::ElideConfig &e = cfg.passes.elide;
    d.u64(e.enabled ? 1 : 0);
    d.u64(e.dominance ? 1 : 0);
    d.u64(e.rawDowngrade ? 1 : 0);
    d.u64(e.privatize ? 1 : 0);

    const GovernorConfig &g = cfg.governor;
    d.u64(g.enabled ? 1 : 0);
    d.u64(g.maxBackoffRetries);
    d.u64(g.backoffBaseCost);
    d.u64(g.livelockK);
    d.u64(g.windowCost);
    d.u64(g.demoteAbortsPerWindow);
    d.u64(g.demoteSlowCostPerWindow);
    d.u64(g.reprobateAfterCost);
    d.u64(g.maxProbeBackoffExp);
    d.f64(g.sampleRate);

    const BudgetConfig &b = cfg.budget;
    d.u64(b.enabled ? 1 : 0);
    d.f64(b.budgetPct);
    d.u64(b.windowBase);
    d.f64(b.softFactor);
    d.u64(b.cutShift);
    d.u64(b.floorShift);
    d.u64(b.reprobeWindows);
    d.u64(b.maxProbeBackoffExp);
    d.u64(b.unsatisfiableWindows);

    const fault::FaultPlan &plan = m.faults;
    d.str(plan.name);
    d.u64(plan.episodes.size());
    for (const fault::FaultEpisode &ep : plan.episodes) {
        d.u64(static_cast<uint64_t>(ep.kind));
        d.u64(ep.start);
        d.u64(ep.duration);
        d.f64(ep.magnitude);
        d.f64(ep.addProb);
        d.u64(ep.param);
    }
    return d.value();
}

std::string
reproCommand(const RunIdentity &id)
{
    std::ostringstream ss;
    ss << "txrace_run";
    switch (id.target) {
      case RunTarget::App:         ss << " --app ";     break;
      case RunTarget::Pattern:     ss << " --pattern "; break;
      case RunTarget::ProgramFile: ss << " --program "; break;
    }
    ss << id.name << " --mode " << id.mode;
    if (id.target == RunTarget::App)
        ss << " --workers " << id.workers << " --scale " << id.scale;
    ss << " --seed " << id.seed;
    if (!id.fault.empty()) {
        ss << " --fault " << id.fault;
        if (id.faultHorizon != 0)
            ss << " --fault-horizon " << id.faultHorizon;
    }
    if (id.governor)
        ss << " --governor";
    if (id.monitor) {
        ss << " --monitor";
        if (id.budgetPct != 5.0)
            ss << " --budget-pct " << id.budgetPct;
    }
    if (!id.elide)
        ss << " --no-elide";
    if (id.irqScale != 1.0)
        ss << " --irq-scale " << id.irqScale;
    if (!id.calibrated && id.target == RunTarget::App)
        ss << " --no-calibrate";
    if (id.slowpath == SlowPathKind::Region)
        ss << " --slowpath region";
    return ss.str();
}

std::vector<uint64_t>
parseSeedList(const std::string &list)
{
    std::vector<uint64_t> seeds;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string item = list.substr(pos, comma - pos);
        if (item.empty())
            fatal("--seed-list: empty entry in '%s'", list.c_str());
        char *end = nullptr;
        uint64_t seed = std::strtoull(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0')
            fatal("--seed-list: bad seed '%s'", item.c_str());
        seeds.push_back(seed);
        pos = comma + 1;
    }
    if (seeds.empty())
        fatal("--seed-list: no seeds given");
    return seeds;
}

} // namespace txrace::core
