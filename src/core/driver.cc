#include "core/driver.hh"

#include "core/policies.hh"
#include "support/log.hh"

namespace txrace::core {

RunResult
runProgram(const ir::Program &prog, const RunConfig &cfg)
{
    if (!prog.finalized())
        fatal("runProgram: program not finalized");

    RunResult result;
    result.mode = cfg.mode;

    switch (cfg.mode) {
      case RunMode::Native: {
        NativePolicy policy;
        sim::Machine machine(prog, cfg.machine, policy);
        result.error = machine.run();
        result.totalCost = machine.totalCost();
        result.buckets = machine.buckets();
        result.stats.merge(machine.stats());
        result.telemetry = std::move(machine.tel());
        break;
      }

      case RunMode::Eraser: {
        ir::Program prepared = passes::preparedForTSan(prog);
        EraserPolicy policy;
        sim::Machine machine(prepared, cfg.machine, policy);
        result.error = machine.run();
        result.totalCost = machine.totalCost();
        result.buckets = machine.buckets();
        result.stats.merge(machine.stats());
        result.stats.merge(policy.lockset().stats());
        result.races = policy.lockset().races();
        result.telemetry = std::move(machine.tel());
        break;
      }

      case RunMode::RaceTM: {
        // RaceTM needs the transactionalized program (it uses the
        // same region markers) and the extended debug-bit hardware.
        // The elision pipeline stays off: RaceTM detects races from
        // raw HTM conflicts, and its comparison point is the paper's
        // unmodified instrumentation.
        passes::PassConfig pass_cfg = cfg.passes;
        pass_cfg.elide.enabled = false;
        ir::Program prepared =
            passes::preparedForTxRace(prog, pass_cfg);
        sim::MachineConfig mcfg = cfg.machine;
        mcfg.htm.trackInstructions = true;
        RaceTmPolicy policy;
        sim::Machine machine(prepared, mcfg, policy);
        result.error = machine.run();
        result.totalCost = machine.totalCost();
        result.buckets = machine.buckets();
        result.stats.merge(machine.stats());
        result.stats.merge(machine.htm().stats());
        result.races = policy.races();
        result.events = std::move(machine.events());
        result.telemetry = std::move(machine.tel());
        break;
      }

      case RunMode::TSan:
      case RunMode::TSanSampling: {
        double rate =
            cfg.mode == RunMode::TSan ? 1.0 : cfg.sampleRate;
        ir::Program prepared = passes::preparedForTSan(prog);
        TsanPolicy policy(rate, cfg.machine.seed ^ 0x7a57eULL);
        sim::Machine machine(prepared, cfg.machine, policy);
        result.error = machine.run();
        result.totalCost = machine.totalCost();
        result.buckets = machine.buckets();
        result.stats.merge(machine.stats());
        result.stats.merge(machine.det().stats());
        result.races = machine.det().races();
        result.telemetry = std::move(machine.tel());
        break;
      }

      case RunMode::TxRaceNoOpt:
      case RunMode::TxRaceDynLoopcut:
      case RunMode::TxRaceProfLoopcut: {
        passes::PassConfig pass_cfg = cfg.passes;
        if (cfg.mode == RunMode::TxRaceNoOpt)
            pass_cfg.insertLoopCuts = false;
        passes::ElisionStats elision;
        ir::Program prepared =
            passes::preparedForTxRace(prog, pass_cfg, &elision);

        TxRacePolicy::Scheme scheme = TxRacePolicy::Scheme::NoOpt;
        if (cfg.mode == RunMode::TxRaceDynLoopcut)
            scheme = TxRacePolicy::Scheme::Dyn;
        else if (cfg.mode == RunMode::TxRaceProfLoopcut)
            scheme = TxRacePolicy::Scheme::Prof;

        // Windowed slow path needs the engine-side version log; the
        // flag is part of the run's identity (capacity model changes),
        // so it is set from the slowpath choice, never independently.
        sim::MachineConfig mcfg = cfg.machine;
        mcfg.htm.versionLog = cfg.slowpath == SlowPathKind::Window;

        LoopCutTable profiled(cfg.dynLoopcutInitial);
        if (scheme == TxRacePolicy::Scheme::Prof) {
            // Offline profiling run on a "representative input"
            // (perturbed seed): learn thresholds the Dyn way, keep
            // only the table. Profiling cost is not part of the
            // measured run, as in the paper.
            TxRacePolicy profiler(TxRacePolicy::Scheme::Dyn, nullptr,
                                  cfg.dynLoopcutInitial, 4, false, {},
                                  1, {}, cfg.slowpath);
            sim::MachineConfig prof_cfg = mcfg;
            prof_cfg.seed ^= cfg.profileSeedDelta;
            sim::Machine machine(prepared, prof_cfg, profiler);
            machine.run();
            profiled = profiler.loopcuts();
        }

        TxRacePolicy policy(scheme,
                            scheme == TxRacePolicy::Scheme::Prof
                                ? &profiled
                                : nullptr,
                            cfg.dynLoopcutInitial, 4,
                            cfg.conflictAddressHints, cfg.governor,
                            cfg.machine.seed ^ 0x9075ea1ULL,
                            cfg.budget, cfg.slowpath);
        sim::Machine machine(prepared, mcfg, policy);
        result.error = machine.run();
        result.budget = policy.budgetReport();
        result.totalCost = machine.totalCost();
        result.buckets = machine.buckets();
        result.stats.merge(machine.stats());
        result.stats.merge(machine.htm().stats());
        result.stats.merge(machine.det().stats());
        // Static-elision accounting (zero-valued entries omitted to
        // keep the first-touch dump shape).
        auto put = [&](const char *name, uint64_t v) {
            if (v)
                result.stats.add(name, v);
        };
        put("pass.elide.candidates", elision.candidates);
        put("pass.elide.dominated", elision.dominated);
        put("pass.elide.raw_downgraded", elision.rawDowngraded);
        put("pass.elide.privatized", elision.privatized);
        put("pass.elide.total", elision.elided());
        for (const auto &[fn, n] : elision.perFunction)
            result.stats.add("pass.elide.fn." + fn, n);
        result.races = machine.det().races();
        result.events = std::move(machine.events());
        result.telemetry = std::move(machine.tel());
        break;
      }
    }
    return result;
}

double
recallOf(const detector::RaceSet &tool,
         const detector::RaceSet &reference)
{
    if (reference.count() == 0)
        return 1.0;
    return static_cast<double>(tool.intersectCount(reference)) /
           static_cast<double>(reference.count());
}

} // namespace txrace::core
