/**
 * @file
 * The adaptive fallback governor: graceful degradation for the TxRace
 * runtime when the HTM misbehaves.
 *
 * The baseline policy answers every non-retry abort with a slow-path
 * episode. Under a sustained pathology (interrupt storm, capacity
 * cliff, conflict ping-pong — the very storms §8 measures) that
 * silently degenerates into always-on TSan *plus* the wasted work of
 * endlessly re-attempted transactions. The governor bounds that
 * damage with a per-thread degradation ladder:
 *
 *   level 0  Fast        normal two-phase operation
 *   level 1  ShortTx     loop-cut thresholds halved: shorter
 *                        transactions lose less work per abort
 *   level 2  SlowStart   regions start directly on the slow path —
 *                        full detection, but no xbegin/abort/rollback
 *                        churn while the storm lasts
 *   level 3  Sampling    regions run untransacted with sampled
 *                        software checks: bounded cost even when the
 *                        slow path itself is pathologically slow
 *
 * Demotion is driven by an abort-rate window (aborts per virtual-time
 * window) and, at level 2, by a slow-path cost budget. A livelock
 * detector escalates immediately when the same thread's regions
 * conflict-abort K times in a row (the ping-pong case). Re-probation
 * periodically promotes one level; failed probes back off
 * exponentially so a persistent storm is probed ever more rarely.
 *
 * All transitions are counted in the policy's StatSet and recorded in
 * the EventLog, so `--trace` shows the ladder in action.
 */

#ifndef TXRACE_CORE_GOVERNOR_HH
#define TXRACE_CORE_GOVERNOR_HH

#include <cstdint>
#include <vector>

#include "sim/machine.hh"
#include "support/rng.hh"

namespace txrace::core {

class BudgetController;

/** Tunables of the degradation ladder. */
struct GovernorConfig
{
    /** Master switch; disabled reproduces the paper's behaviour. */
    bool enabled = false;

    /** @name Bounded retry with backoff (retry/unknown aborts) */
    /** @{ */
    /** In-place re-executions of a region before falling back. */
    uint32_t maxBackoffRetries = 1;
    /** Stall cost of the first backoff; doubles per retry. */
    uint64_t backoffBaseCost = 16;
    /** @} */

    /** @name Livelock detection */
    /** @{ */
    /** Consecutive conflict-aborted regions that escalate. */
    uint32_t livelockK = 4;
    /** @} */

    /** @name Abort-rate-driven demotion */
    /** @{ */
    /** Virtual-time window (cost units) for the abort counter. */
    uint64_t windowCost = 600;
    /** Aborts within one window that trigger a demotion. */
    uint32_t demoteAbortsPerWindow = 3;
    /** Slow-path check cost within one window that demotes a
     *  level-2 thread to sampling (level 3) -- but only when the
     *  per-check cost is actually inflated (see onSlowCheckCost). */
    uint64_t demoteSlowCostPerWindow = 500;
    /** @} */

    /** @name Re-probation */
    /** @{ */
    /** Virtual time at a degraded level before probing one level up. */
    uint64_t reprobateAfterCost = 800;
    /** Cap on the exponential probe backoff (doublings). */
    uint32_t maxProbeBackoffExp = 3;
    /** @} */

    /** Fraction of accesses software-checked at level 3. */
    double sampleRate = 0.25;
};

/** What the policy should do with an abort the governor examined. */
enum class GovernorAction : uint8_t {
    FallBack,      ///< baseline behaviour: slow-path episode
    RetryBackoff,  ///< re-execute in place after a backoff stall
};

/**
 * Per-thread adaptive state machine. Owned by a TxRacePolicy; all
 * state derives from observed aborts and virtual time, so runs stay
 * deterministic.
 */
class FallbackGovernor
{
  public:
    /** Ladder levels (order is the degradation direction). */
    enum Level : uint32_t {
        kFast = 0,
        kShortTx = 1,
        kSlowStart = 2,
        kSampling = 3,
    };

    FallbackGovernor(const GovernorConfig &cfg, uint64_t seed);

    bool enabled() const { return cfg_.enabled; }
    const GovernorConfig &config() const { return cfg_; }

    /** The policy reports whether the program carries loop-cut
     *  instrumentation at all. Without it the ShortTx rung cannot
     *  shorten anything, so demotions skip straight past it instead
     *  of wasting a window on a no-op level. */
    void setShortTxUseful(bool useful) { shortTxUseful_ = useful; }

    /** Compose with monitor mode: while @p budget reports overhead
     *  pressure, re-probation promotions are vetoed (counted as
     *  txrace.gov.budget_vetoes) — the hard budget outranks the
     *  ladder's optimism. Null (the default) restores pure ladder
     *  behaviour. */
    void setBudget(const BudgetController *budget) { budget_ = budget; }

    /** Intern the governor's counters in @p reg (the owning policy
     *  calls this at run start). Transition counting then goes through
     *  interned ids; unbound, it falls back to the machine's
     *  string-keyed StatSet (standalone unit-test use). */
    void bindMetrics(telemetry::MetricRegistry &reg);

    /**
     * Called at every region entry (TxBegin). Performs due
     * re-probation and returns the level the region should run at.
     */
    uint32_t levelForRegion(sim::Machine &m, Tid t);

    /** Current level without side effects. */
    uint32_t level(Tid t) const;

    /**
     * An abort of kind @p reason hit thread @p t (all causes feed the
     * abort-rate window). Returns what to do: retry in place with a
     * backoff stall (the governor already charged it) or fall back to
     * the slow path. Conflict aborts also feed the livelock detector
     * and never retry in place (the TxFail protocol must run);
     * @p primary distinguishes the victim of a real data conflict
     * from collateral TxFail-broadcast aborts, which do not count
     * toward livelock.
     */
    GovernorAction onAbort(sim::Machine &m, Tid t, sim::Bucket reason,
                           bool primary = true);

    /** A transaction of @p t committed (resets livelock/backoff). */
    void onCommit(Tid t);

    /** Slow-path check cost charged to @p t (level-2 budget). */
    void onSlowCheckCost(sim::Machine &m, Tid t, uint64_t cost);

    /** Deterministic Bernoulli draw for level-3 sampling. */
    bool sampleThisAccess(Tid t);

    /** Divisor applied to loop-cut thresholds at level >= ShortTx. */
    uint64_t loopcutDivisorFor(Tid t) const;

    /** Abort bucket that drove @p t's current demotion (cost
     *  attribution of forced-slow regions). */
    sim::Bucket demoteReasonFor(Tid t) const;

  private:
    struct ThreadGov
    {
        uint32_t level = kFast;
        /** Virtual-time start of the current abort-rate window. */
        uint64_t windowStart = 0;
        uint32_t windowAborts = 0;
        uint64_t windowSlowCost = 0;
        uint64_t windowSlowChecks = 0;
        /** Virtual time of the last level transition. */
        uint64_t lastTransition = 0;
        /** Consecutive conflict-aborted regions (livelock). */
        uint32_t consecConflicts = 0;
        /** Backoff retries spent on the current region. */
        uint32_t backoffsUsed = 0;
        /** Failed probes since the last stable stretch. */
        uint32_t probeBackoffExp = 0;
        /** A probe promotion is being evaluated. */
        bool probing = false;
        /** Abort bucket that caused the current demotion. */
        sim::Bucket demoteReason = sim::Bucket::Unknown;
        Rng sampleRng{0};
        bool initialized = false;
    };

    ThreadGov &state(Tid t);
    /** Thread-time clock the windows are measured in. */
    uint64_t now(sim::Machine &m, Tid t) const;
    void demote(sim::Machine &m, Tid t, uint32_t to, const char *why,
                sim::Bucket reason);
    /** Bump a transition counter: interned id when bound, string
     *  fallback otherwise. */
    void count(sim::Machine &m, telemetry::MetricId id,
               const char *name);

    GovernorConfig cfg_;
    uint64_t seed_;
    bool shortTxUseful_ = true;
    const BudgetController *budget_ = nullptr;
    std::vector<ThreadGov> threads_;

    /** Interned transition-counter ids (valid when reg_ is set). */
    struct Metrics
    {
        telemetry::MetricId failedProbes, demotions, probeSuccesses;
        telemetry::MetricId reprobations, livelockEscalations;
        telemetry::MetricId backoffRetries, stallPromotions;
        telemetry::MetricId budgetVetoes;
    };
    telemetry::MetricRegistry *reg_ = nullptr;
    Metrics met_{};
};

} // namespace txrace::core

#endif // TXRACE_CORE_GOVERNOR_HH
