#include "core/policies.hh"

namespace txrace::core {

using sim::Bucket;
using sim::Machine;

void
EraserPolicy::onSyncPerformed(Machine &m, Tid t,
                              const ir::Instruction &ins)
{
    switch (ins.op) {
      case ir::OpCode::LockAcquire:
        lockset_.lockAcquire(t, ins.arg0);
        break;
      case ir::OpCode::LockRelease:
        lockset_.lockRelease(t, ins.arg0);
        break;
      default:
        // Condvars (and barriers, handled elsewhere) carry no lockset
        // meaning: Eraser's blind spot.
        break;
    }
    m.addCost(t, m.config().cost.syncTrackCost, Bucket::Check);
}

bool
EraserPolicy::onMemAccess(Machine &m, Tid t, const ir::Instruction &ins,
                          ir::Addr addr, bool is_write)
{
    if (!ins.instrumented)
        return true;
    // Lockset checks are cheaper than vector-clock comparisons; the
    // classic Eraser overhead ratio vs happens-before is roughly 1/2.
    m.addCost(t, std::max<uint64_t>(
                     1, m.config().cost.effectiveCheckCost() / 2),
              Bucket::Check);
    if (is_write)
        lockset_.write(t, addr, ins.id);
    else
        lockset_.read(t, addr, ins.id);
    return true;
}

} // namespace txrace::core
