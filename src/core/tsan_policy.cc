#include "core/policies.hh"

#include "support/log.hh"

namespace txrace::core {

using sim::Bucket;
using sim::Machine;

TsanPolicy::TsanPolicy(double sample_rate, uint64_t seed)
    : sampleRate_(sample_rate), rng_(seed)
{
    if (sample_rate < 0.0 || sample_rate > 1.0)
        fatal("TsanPolicy: sample rate %f out of [0,1]", sample_rate);
}

void
TsanPolicy::onThreadCreated(Machine &m, Tid parent, Tid child)
{
    m.det().threadCreated(parent, child);
    m.addCost(parent, m.config().cost.syncTrackCost, Bucket::Check);
}

void
TsanPolicy::onThreadJoined(Machine &m, Tid joiner, Tid joined)
{
    m.det().threadJoined(joiner, joined);
    m.addCost(joiner, m.config().cost.syncTrackCost, Bucket::Check);
}

void
TsanPolicy::onSyncPerformed(Machine &m, Tid t,
                            const ir::Instruction &ins)
{
    auto &det = m.det();
    switch (ins.op) {
      case ir::OpCode::LockAcquire:
        det.lockAcquire(t, ins.arg0);
        break;
      case ir::OpCode::LockRelease:
        det.lockRelease(t, ins.arg0);
        break;
      case ir::OpCode::CondSignal:
        det.condSignal(t, ins.arg0);
        break;
      case ir::OpCode::CondWait:
        det.condWait(t, ins.arg0);
        break;
      default:
        panic("TsanPolicy: unexpected sync op %s", opName(ins.op));
    }
    m.addCost(t, m.config().cost.syncTrackCost, Bucket::Check);
}

void
TsanPolicy::onBarrierRelease(Machine &m, const std::vector<Tid> &parts)
{
    m.det().barrierRelease(parts);
    for (Tid p : parts)
        m.addCost(p, m.config().cost.syncTrackCost, Bucket::Check);
}

bool
TsanPolicy::onMemAccess(Machine &m, Tid t, const ir::Instruction &ins,
                        ir::Addr addr, bool is_write)
{
    if (!ins.instrumented)
        return true;
    if (sampleRate_ >= 1.0 || rng_.chance(sampleRate_)) {
        // Slow-path stall fault episodes inflate the check cost for
        // the software detector no matter which policy runs it.
        uint64_t check = m.config().cost.effectiveCheckCost();
        double stall = m.faults().slowPathCostMult();
        if (stall > 1.0)
            check = static_cast<uint64_t>(
                static_cast<double>(check) * stall);
        m.addCost(t, check, Bucket::Check);
        if (is_write)
            m.det().write(t, addr, ins.id);
        else
            m.det().read(t, addr, ins.id);
    } else {
        // Unsampled accesses still pay the sampling branch.
        m.addCost(t, 1, Bucket::Check);
    }
    return true;
}

} // namespace txrace::core
