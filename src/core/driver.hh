/**
 * @file
 * One-call experiment driver: build the right instrumented program,
 * run it under the right policy, and package the results. This is the
 * primary public entry point of the library.
 */

#ifndef TXRACE_CORE_DRIVER_HH
#define TXRACE_CORE_DRIVER_HH

#include <array>

#include "core/budget.hh"
#include "core/governor.hh"
#include "core/runmode.hh"
#include "detector/report.hh"
#include "ir/program.hh"
#include "passes/passes.hh"
#include "sim/eventlog.hh"
#include "sim/machine.hh"
#include "support/stats.hh"

namespace txrace::core {

/** Everything that defines one run. */
struct RunConfig
{
    RunMode mode = RunMode::TxRaceProfLoopcut;
    /** Fraction of accesses checked in TSanSampling mode. */
    double sampleRate = 1.0;
    /** Machine parameters (seed, cores, costs, HTM geometry...). */
    sim::MachineConfig machine;
    /** Instrumentation-pass parameters. */
    passes::PassConfig passes;
    /** Dyn loop-cut first-abort estimate (paper: 2). */
    uint64_t dynLoopcutInitial = 2;
    /** Enable the §9 future-HTM extension: conflict-address hints
     *  restrict conflict-triggered slow episodes to the conflicting
     *  cache line (TxRace modes only). */
    bool conflictAddressHints = false;
    /** Seed perturbation for the ProfLoopcut profiling pre-run
     *  ("representative input" differs from the measured input). */
    uint64_t profileSeedDelta = 0x50f11eULL;
    /** Adaptive fallback governor (TxRace modes only). Disabled by
     *  default: the paper's runtime answers every non-retry abort
     *  with an unconditional slow-path episode. Fault scenarios are
     *  configured separately via machine.faults. */
    GovernorConfig governor;
    /** Monitor-mode overhead budget (TxRace modes only). Disabled by
     *  default; txrace_run --monitor --budget-pct=N enables it and
     *  turns the governor on alongside (they compose). */
    BudgetConfig budget;
    /** Conflict-abort repair (TxRace modes only). Window records a
     *  per-line version log in the fast path and replays only the
     *  aborting window through the detector; Region is the paper's
     *  TxFail-broadcast whole-region re-execution, kept as the
     *  differential oracle (txrace_run --slowpath=region). */
    SlowPathKind slowpath = SlowPathKind::Window;
};

/** Results of one run. */
struct RunResult
{
    RunMode mode = RunMode::Native;
    /** Total virtual time. */
    uint64_t totalCost = 0;
    /** Per-bucket cost attribution (Figure 7 breakdown). */
    std::array<uint64_t, sim::kNumBuckets> buckets{};
    /** Merged machine + HTM + detector + policy counters. */
    StatSet stats;
    /** Distinct static races reported. */
    detector::RaceSet races;
    /** Structured event timeline (only populated when
     *  machine.recordEvents was set). */
    sim::EventLog events;
    /** Telemetry bundle: metric registry, per-thread phase breakdown,
     *  conflict attribution, and (when machine.recordTrace was set)
     *  the Chrome-trace span buffer. */
    telemetry::Telemetry telemetry;
    /** Abnormal-end report: deadlock or maxSteps truncation, with
     *  per-thread blocked-on state. error.ok() on a clean run. */
    sim::RunError error;
    /** Monitor-mode budget summary (budget.enabled mirrors whether
     *  the run had a budget at all). */
    BudgetReport budget;

    /** Runtime overhead factor relative to a native run. */
    double
    overheadVs(const RunResult &native) const
    {
        return native.totalCost == 0
            ? 0.0
            : static_cast<double>(totalCost) /
                  static_cast<double>(native.totalCost);
    }
};

/**
 * Run @p prog (an uninstrumented, finalized program) under @p cfg.
 * The driver applies the appropriate instrumentation pipeline
 * internally; for ProfLoopcut it performs the profiling pre-run
 * (whose cost is offline and not included in the result).
 */
RunResult runProgram(const ir::Program &prog, const RunConfig &cfg);

/** Recall of @p tool against @p reference (paper §8.4):
 *  |reported ∩ reference| / |reference|; 1.0 when reference is empty. */
double recallOf(const detector::RaceSet &tool,
                const detector::RaceSet &reference);

} // namespace txrace::core

#endif // TXRACE_CORE_DRIVER_HH
