/**
 * @file
 * The monitor-mode budget controller: a hard overhead budget enforced
 * by per-site adaptive sampling.
 *
 * Production monitors must promise "≤ N% over native, always" — a
 * property the FallbackGovernor's global per-thread ladder cannot
 * give, because it reacts to abort storms, not to spend. The budget
 * controller closes that gap:
 *
 * - The run is divided into *windows* of `windowBase` units of native
 *   virtual time (the Base cost bucket, which by the accounting
 *   invariant equals what an uninstrumented run would have paid).
 * - Within each window, detection overhead (total cost minus Base) is
 *   compared against the budget `budgetPct% × windowBase`. Admission
 *   is gated at a *soft* fraction of that (softFactor), leaving
 *   headroom for overhead that cannot be refused mid-flight (sync
 *   happens-before tracking, regions already under way).
 * - Degradation is *per IR site*, not global: each instrumented
 *   site carries a power-of-two sampling shift (rate 2^-shift).
 *   When a window overruns the soft level, the sites that dominated
 *   the window's attributed spend — slow-path checks plus
 *   conflict-abort waste from the heatmap's winning sites — are cut
 *   deeper; cheap sites stay fully instrumented. Cut sites are
 *   periodically re-probed one step back up, with exponential backoff
 *   per failed probe, so recovery after a storm is automatic.
 * - If the budget is exceeded hard for `unsatisfiableWindows`
 *   consecutive windows even while the controller is refusing all it
 *   can, the budget is declared unsatisfiable: the run ends with a
 *   structured RunError::Kind::Budget instead of silently thrashing.
 *
 * Sampling decisions derive from a counter-hash over the run seed —
 * never wall clock — so monitor runs stay byte-deterministic.
 *
 * Soundness: the controller only ever *skips* checks and region
 * instrumentation. Skipping trades recall; it can never invent a
 * race, so precision is untouched (asserted by the monitor soak).
 */

#ifndef TXRACE_CORE_BUDGET_HH
#define TXRACE_CORE_BUDGET_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ir/instruction.hh"
#include "sim/machine.hh"

namespace txrace::core {

/** Tunables of monitor mode (txrace_run --monitor --budget-pct). */
struct BudgetConfig
{
    /** Master switch (txrace_run --monitor). */
    bool enabled = false;
    /** Hard overhead budget: detection cost per window must stay
     *  within this percentage of the window's native base cost. */
    double budgetPct = 5.0;
    /** Window length in units of native (Base-bucket) virtual time. */
    uint64_t windowBase = 20000;
    /** Admission gates close at softFactor × budget, reserving the
     *  rest for overhead that cannot be refused once started. */
    double softFactor = 0.6;
    /** Shift added to a site's sampling exponent per cut. */
    uint32_t cutShift = 2;
    /** Deepest sampling shift (floor rate = 2^-floorShift). */
    uint32_t floorShift = 6;
    /** Clean windows before a cut site is probed one step back up. */
    uint32_t reprobeWindows = 3;
    /** Cap on the per-site probe backoff (doublings of the interval). */
    uint32_t maxProbeBackoffExp = 4;
    /** Consecutive hard-over windows (while refusing work) that
     *  declare the budget unsatisfiable. */
    uint32_t unsatisfiableWindows = 6;
};

/** One closed budget window, for reports and the soak assertions. */
struct BudgetWindow
{
    /** Native base cost spent in the window (== windowBase). */
    uint64_t base = 0;
    /** Detection overhead accrued during the window. */
    uint64_t overhead = 0;
    /** Overhead exceeded the hard budget. */
    bool hardOver = false;
    /** Admissions were refused inside this window. */
    bool refused = false;
};

/** End-of-run summary the driver copies into RunResult. */
struct BudgetReport
{
    bool enabled = false;
    double budgetPct = 0.0;
    uint64_t windowBase = 0;
    /** Every *complete* window, in order. The trailing partial-window
     *  fragment is not recorded: the budget is a windowed SLO. */
    std::vector<BudgetWindow> windows;
    /** Final sampling shift per site that was ever cut (site id →
     *  shift; shift 0 means fully recovered). */
    std::vector<std::pair<ir::InstrId, uint32_t>> siteShifts;
    uint64_t gatedRegions = 0;
    uint64_t gatedChecks = 0;
    uint64_t sampledSkips = 0;
    uint64_t siteCuts = 0;
    uint64_t siteProbes = 0;
};

/**
 * Owned by a TxRacePolicy; all state derives from the machine's cost
 * buckets and the seeded draw hash, so monitor runs stay
 * deterministic.
 */
class BudgetController
{
  public:
    BudgetController(const BudgetConfig &cfg, uint64_t seed);

    bool enabled() const { return cfg_.enabled; }
    const BudgetConfig &config() const { return cfg_; }

    /** Intern the controller's counters (policy calls at run start,
     *  right after the governor binds). */
    void bindMetrics(telemetry::MetricRegistry &reg);

    /** Snapshot the cost baseline at run start. */
    void onRunStart(sim::Machine &m);

    /**
     * Region-entry admission (TxBegin). False = the region must run
     * uninstrumented (no transaction, no slow path): the current
     * window has already spent its admission budget, or admitting
     * @p cost more would cross the soft line. Admission is
     * prospective — the entire soft-to-hard gap stays reserved for
     * overhead no gate can refuse (sync tracking, gate branches).
     */
    bool admitRegion(sim::Machine &m, Tid t, uint64_t cost = 0);

    /**
     * Slow-path check admission for @p site, whose check would cost
     * @p cost units. False = skip the check (hard-gated when the
     * window is out of budget or when @p cost would push it over the
     * soft line — storms inflate check cost mid-window — otherwise a
     * deterministic per-site sampling draw).
     */
    bool admitCheck(sim::Machine &m, Tid t, ir::InstrId site,
                    uint64_t cost = 0);

    /** Attribute @p cost units of overhead to @p site (slow-path
     *  check cost; conflict-abort waste from the heatmap winner). */
    void chargeSite(ir::InstrId site, uint64_t cost);

    /** True while the current window is at or past the soft admission
     *  level — the governor defers promotions while this holds. */
    bool underPressure() const { return pressure_; }

    /** Budget declared unsatisfiable (the policy turns this into
     *  RunError::Kind::Budget via Machine::requestStop). */
    bool unsatisfiable() const { return unsatisfiable_; }

    /** Current sampling shift of @p site (0 = fully instrumented). */
    uint32_t siteShift(ir::InstrId site) const;

    /** Close the books (no trailing partial window is recorded) and
     *  return the report. */
    BudgetReport report() const;

  private:
    struct SiteState
    {
        uint32_t shift = 0;
        /** Overhead attributed to the site this window. */
        uint64_t windowCost = 0;
        /** Failed up-probes since the last full recovery. */
        uint32_t probeBackoffExp = 0;
        /** Window index at which the next up-probe is due. */
        uint64_t nextProbeWindow = 0;
        /** An up-probe is being evaluated. */
        bool probing = false;
        /** Per-site draw counter feeding the sampling hash. */
        uint64_t draws = 0;
        /** The site was cut at least once (reported even if it has
         *  recovered to shift 0 by end of run). */
        bool everCut = false;
    };

    uint64_t baseNow(const sim::Machine &m) const;
    uint64_t overheadNow(const sim::Machine &m) const;
    /** Close every window boundary the base clock has crossed. */
    void rollWindows(sim::Machine &m);
    void closeWindow(sim::Machine &m, uint64_t base_end);
    bool sampleDraw(SiteState &s, ir::InstrId site);
    void count(sim::Machine &m, telemetry::MetricId id,
               const char *name, uint64_t delta = 1);

    BudgetConfig cfg_;
    uint64_t seed_;

    uint64_t hardAllowed_ = 0;  ///< per-window overhead budget
    uint64_t softAllowed_ = 0;  ///< per-window admission gate

    uint64_t windowStartBase_ = 0;
    uint64_t windowStartOverhead_ = 0;
    uint64_t windowIndex_ = 0;
    bool windowRefused_ = false;
    bool pressure_ = false;
    bool unsatisfiable_ = false;
    uint32_t consecUnsat_ = 0;

    /** std::map: deterministic iteration order for cut decisions. */
    std::map<ir::InstrId, SiteState> sites_;
    std::vector<BudgetWindow> windows_;

    uint64_t gatedRegions_ = 0;
    uint64_t gatedChecks_ = 0;
    uint64_t sampledSkips_ = 0;
    uint64_t siteCuts_ = 0;
    uint64_t siteProbes_ = 0;

    struct Metrics
    {
        telemetry::MetricId windows, windowsOver, windowsSoftOver;
        telemetry::MetricId gatedRegions, gatedChecks, sampledSkips;
        telemetry::MetricId siteCuts, siteProbes, probeFailures;
    };
    telemetry::MetricRegistry *reg_ = nullptr;
    Metrics met_{};
};

} // namespace txrace::core

#endif // TXRACE_CORE_BUDGET_HH
