#include "core/report_format.hh"

#include <iomanip>
#include <sstream>

#include "core/fingerprint.hh"
#include "ir/printer.hh"
#include "sim/costmodel.hh"
#include "telemetry/flightrec.hh"

namespace txrace::core {

namespace {

std::string
describeInstr(const ir::Program &prog, ir::InstrId id)
{
    const ir::Instruction &ins = prog.instr(id);
    std::ostringstream ss;
    ss << "#" << id << " " << ir::formatInstr(ins) << " (in @"
       << prog.function(prog.funcOf(id)).name << ")";
    return ss.str();
}

} // namespace

std::string
formatRace(const ir::Program &prog, const detector::Race &race)
{
    std::ostringstream ss;
    ss << "WARNING: data race (" << detector::raceKindName(race.kind)
       << ", first seen at address 0x" << std::hex << race.addr
       << std::dec << ", " << race.hits << " dynamic occurrence"
       << (race.hits == 1 ? "" : "s") << ")\n";
    ss << "  between " << describeInstr(prog, race.first) << "\n";
    if (race.second == race.first)
        ss << "  and itself on another thread\n";
    else
        ss << "  and     " << describeInstr(prog, race.second) << "\n";
    return ss.str();
}

namespace {

void
printReport(const ir::Program &prog, const RunResult &result,
            std::ostream &os, const RunIdentity *identity,
            uint64_t digest)
{
    os << runModeName(result.mode) << ": " << result.races.count()
       << " distinct data race(s), total cost " << result.totalCost
       << " units\n";
    for (const auto &[sig, race] : fingerprintedRaces(prog,
                                                      result.races)) {
        os << formatRace(prog, race);
        os << "  fingerprint 0x" << std::hex << std::setw(16)
           << std::setfill('0') << sig.hash << std::dec
           << std::setfill(' ') << "\n";
        if (identity)
            os << "  reproduce: " << reproCommand(*identity)
               << "  # config 0x" << std::hex << digest << std::dec
               << "\n";
    }
}

} // namespace

void
printRaceReport(const ir::Program &prog, const RunResult &result,
                std::ostream &os)
{
    printReport(prog, result, os, nullptr, 0);
}

void
printRaceReport(const ir::Program &prog, const RunResult &result,
                std::ostream &os, const RunIdentity &identity,
                uint64_t configDigest)
{
    printReport(prog, result, os, &identity, configDigest);
}

namespace {

/** One flight event on one compact line. */
void
printFlightEvent(std::ostream &os, const telemetry::FrEvent &e)
{
    using telemetry::FrKind;
    os << "[" << e.step << "] " << telemetry::frKindName(e.kind());
    if (e.site() != ir::kNoInstr)
        os << " #" << e.site();
    switch (e.kind()) {
      case FrKind::Access:
        os << " g=0x" << std::hex << e.arg << std::dec
           << (e.isWrite() ? " W" : " R");
        break;
      case FrKind::TxAbort:
        os << " ("
           << telemetry::frAbortName(
                  static_cast<telemetry::FrAbort>(e.arg))
           << ")";
        break;
      case FrKind::Budget:
        os << " ("
           << telemetry::frBudgetName(
                  static_cast<telemetry::FrBudget>(e.arg))
           << ")";
        break;
      case FrKind::SlowEnter:
        os << " (" << sim::bucketName(static_cast<sim::Bucket>(e.arg))
           << ")";
        break;
      case FrKind::Gov:
        os << " level=" << e.arg;
        break;
      case FrKind::TxCommit:
        os << " cost=" << e.arg;
        break;
      case FrKind::WindowReplay:
        os << " entries=" << e.arg;
        break;
      default:
        break;
    }
}

} // namespace

void
printForensics(const ir::Program &prog, const RunResult &result,
               std::ostream &os)
{
    const auto &caps = result.telemetry.forensics;
    if (caps.empty()) {
        os << "forensics: no captures (flight recorder disabled, or "
              "no race/run-error triggered)\n";
        return;
    }
    os << "=== forensics (txrace-forensics-v1): " << caps.size()
       << " capture(s) ===\n";
    size_t n = 0;
    for (const auto &cap : caps) {
        os << "capture " << ++n << ": " << cap.trigger;
        if (!cap.kind.empty())
            os << " (" << cap.kind << ")";
        os << " at step " << cap.step;
        if (cap.siteA != ir::kNoInstr)
            os << ", granule 0x" << std::hex << cap.granule
               << std::dec;
        os << "\n";
        if (cap.siteA != ir::kNoInstr) {
            os << "  racing sites:\n";
            os << "    A: " << describeInstr(prog, cap.siteA) << "\n";
            os << "    B: " << describeInstr(prog, cap.siteB) << "\n";
        }
        if (!cap.lastWriters.empty()) {
            os << "  last-writer chain on granule 0x" << std::hex
               << cap.granule << std::dec << ":\n";
            for (const auto &lw : cap.lastWriters)
                os << "    [step " << lw.step << "] t" << lw.tid
                   << " wrote via " << describeInstr(prog, lw.site)
                   << "\n";
        }
        for (const auto &ft : cap.threads) {
            os << "  thread t" << ft.tid << ": gov level "
               << ft.govLevel << ", sampling shift " << ft.siteShift
               << ", window " << ft.window.size() << " event(s), read "
               << ft.readGranules.size() << " / wrote "
               << ft.writeGranules.size() << " granule(s)\n";
            // The newest events are the causally interesting ones;
            // the full window is in the JSON export.
            constexpr size_t kShow = 12;
            size_t start = ft.window.size() > kShow
                ? ft.window.size() - kShow
                : 0;
            for (size_t i = start; i < ft.window.size(); ++i) {
                os << "    ";
                printFlightEvent(os, ft.window[i]);
                os << "\n";
            }
        }
    }
}

} // namespace txrace::core
