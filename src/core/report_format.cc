#include "core/report_format.hh"

#include <iomanip>
#include <sstream>

#include "core/fingerprint.hh"
#include "ir/printer.hh"

namespace txrace::core {

namespace {

const char *
kindName(detector::RaceKind kind)
{
    switch (kind) {
      case detector::RaceKind::WriteWrite: return "write-write";
      case detector::RaceKind::ReadWrite:  return "read-write";
      case detector::RaceKind::WriteRead:  return "write-read";
    }
    return "?";
}

std::string
describeInstr(const ir::Program &prog, ir::InstrId id)
{
    const ir::Instruction &ins = prog.instr(id);
    std::ostringstream ss;
    ss << "#" << id << " " << ir::formatInstr(ins) << " (in @"
       << prog.function(prog.funcOf(id)).name << ")";
    return ss.str();
}

} // namespace

std::string
formatRace(const ir::Program &prog, const detector::Race &race)
{
    std::ostringstream ss;
    ss << "WARNING: data race (" << kindName(race.kind)
       << ", first seen at address 0x" << std::hex << race.addr
       << std::dec << ", " << race.hits << " dynamic occurrence"
       << (race.hits == 1 ? "" : "s") << ")\n";
    ss << "  between " << describeInstr(prog, race.first) << "\n";
    if (race.second == race.first)
        ss << "  and itself on another thread\n";
    else
        ss << "  and     " << describeInstr(prog, race.second) << "\n";
    return ss.str();
}

namespace {

void
printReport(const ir::Program &prog, const RunResult &result,
            std::ostream &os, const RunIdentity *identity,
            uint64_t digest)
{
    os << runModeName(result.mode) << ": " << result.races.count()
       << " distinct data race(s), total cost " << result.totalCost
       << " units\n";
    for (const auto &[sig, race] : fingerprintedRaces(prog,
                                                      result.races)) {
        os << formatRace(prog, race);
        os << "  fingerprint 0x" << std::hex << std::setw(16)
           << std::setfill('0') << sig.hash << std::dec
           << std::setfill(' ') << "\n";
        if (identity)
            os << "  reproduce: " << reproCommand(*identity)
               << "  # config 0x" << std::hex << digest << std::dec
               << "\n";
    }
}

} // namespace

void
printRaceReport(const ir::Program &prog, const RunResult &result,
                std::ostream &os)
{
    printReport(prog, result, os, nullptr, 0);
}

void
printRaceReport(const ir::Program &prog, const RunResult &result,
                std::ostream &os, const RunIdentity &identity,
                uint64_t configDigest)
{
    printReport(prog, result, os, &identity, configDigest);
}

} // namespace txrace::core
