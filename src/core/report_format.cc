#include "core/report_format.hh"

#include <sstream>

#include "ir/printer.hh"

namespace txrace::core {

namespace {

const char *
kindName(detector::RaceKind kind)
{
    switch (kind) {
      case detector::RaceKind::WriteWrite: return "write-write";
      case detector::RaceKind::ReadWrite:  return "read-write";
      case detector::RaceKind::WriteRead:  return "write-read";
    }
    return "?";
}

std::string
describeInstr(const ir::Program &prog, ir::InstrId id)
{
    const ir::Instruction &ins = prog.instr(id);
    std::ostringstream ss;
    ss << "#" << id << " " << ir::formatInstr(ins) << " (in @"
       << prog.function(prog.funcOf(id)).name << ")";
    return ss.str();
}

} // namespace

std::string
formatRace(const ir::Program &prog, const detector::Race &race)
{
    std::ostringstream ss;
    ss << "WARNING: data race (" << kindName(race.kind)
       << ", first seen at address 0x" << std::hex << race.addr
       << std::dec << ", " << race.hits << " dynamic occurrence"
       << (race.hits == 1 ? "" : "s") << ")\n";
    ss << "  between " << describeInstr(prog, race.first) << "\n";
    if (race.second == race.first)
        ss << "  and itself on another thread\n";
    else
        ss << "  and     " << describeInstr(prog, race.second) << "\n";
    return ss.str();
}

void
printRaceReport(const ir::Program &prog, const RunResult &result,
                std::ostream &os)
{
    os << runModeName(result.mode) << ": " << result.races.count()
       << " distinct data race(s), total cost " << result.totalCost
       << " units\n";
    for (const detector::Race &race : result.races.all())
        os << formatRace(prog, race);
}

} // namespace txrace::core
