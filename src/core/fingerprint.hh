/**
 * @file
 * Stable fingerprints for race reports.
 *
 * A RaceSet identifies races by InstrId pairs, which are only
 * meaningful within one prepared program: instrumentation variants
 * (loop-cut on/off, privatization) renumber instructions, so ids
 * cannot be compared across run configurations, and certainly not
 * across campaign runs mixing config variants. A RaceSig instead
 * names each endpoint by what the developer sees in the report —
 * enclosing function, opcode, and source tag — and hashes the
 * canonical (order-independent) pair. That identity survives
 * re-instrumentation, seed changes, and config variants, which is
 * what the campaign aggregator dedups on and what the ground-truth
 * annotations in the workload registry are written against.
 */

#ifndef TXRACE_CORE_FINGERPRINT_HH
#define TXRACE_CORE_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "detector/report.hh"
#include "ir/program.hh"

namespace txrace::telemetry {
class JsonWriter;
struct JsonValue;
} // namespace txrace::telemetry

namespace txrace::core {

/** FNV-1a 64-bit hash (the fingerprint primitive). */
uint64_t fnv1a64(std::string_view data,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/** Stable identity of one race, independent of instruction numbering. */
struct RaceSig
{
    /** 64-bit fingerprint: fnv1a64(key). Display/sort handle. */
    uint64_t hash = 0;
    /**
     * Full dedup identity: the two endpoint descriptors
     * ("func|op|tag"), lexicographically ordered and joined, plus the
     * scope prefix. Dedup MUST compare keys, not hashes — the hash is
     * a 64-bit summary and may collide.
     */
    std::string key;
    /**
     * Ground-truth matching label: the two source tags,
     * lexicographically ordered, joined by '\x1f'. Matches
     * workloads::raceLabelKey().
     */
    std::string label;
    /** Human-readable endpoint descriptors, in key order. */
    std::string a, b;
};

/** Canonical unordered pair of source tags (shared with the workload
 *  ground-truth annotations). */
std::string raceLabelKey(const std::string &tagA,
                         const std::string &tagB);

/**
 * Fingerprint @p race as reported against @p prog. @p scope
 * namespaces the key (and hash) — campaigns pass the application
 * name so identically-tagged sites in different apps (both apps
 * plant "boundary write 0" in @worker) stay distinct findings.
 */
RaceSig raceSig(const ir::Program &prog, const detector::Race &race,
                const std::string &scope = "");

/**
 * All races of @p races fingerprinted and sorted by (hash, key):
 * the canonical export order. Printing and JSON export go through
 * this so cross-run and cross-worker-count diffs are byte-stable.
 */
std::vector<std::pair<RaceSig, detector::Race>>
fingerprintedRaces(const ir::Program &prog,
                   const detector::RaceSet &races,
                   const std::string &scope = "");

/**
 * Serialize @p sig as a JSON object (hash in decimal; key and label
 * round-trip their separator control bytes via \\u00XX escapes).
 * Used by the txrace-findings-v1 store.
 */
void writeRaceSig(telemetry::JsonWriter &w, const RaceSig &sig);

/**
 * Restore a RaceSig written by writeRaceSig. The hash is recomputed
 * from the key (and cross-checked against the stored value) so a
 * corrupted store cannot smuggle in an inconsistent fingerprint.
 * Returns false with a message in @p error on malformed input.
 */
bool readRaceSig(const telemetry::JsonValue &v, RaceSig &out,
                 std::string &error);

} // namespace txrace::core

#endif // TXRACE_CORE_FINGERPRINT_HH
